(* The serving harness: a real Serve.Server on a loopback TCP socket,
   many concurrent NDJSON sessions pumped from this process, plus an
   in-process adaptive-vs-frozen scenario under an injected plant
   drift.

     dune exec bench/main.exe -- serve                 -- 8 sessions
     dune exec bench/main.exe -- serve --smoke --json OUT
     dune exec bench/main.exe -- serve --sessions 16 --requests 20

   Headline numbers: aggregate streamed frames per wall second across
   all sessions, p50/p99 step-request latency, the detection-to-swap
   latency of the adaptive scenario, and adaptive vs frozen E x D
   under the drift. The adaptive block depends on wall-clock timing
   (the background synthesis races the paced run), so unlike the other
   bench documents it is not byte-reproducible; the frozen numbers
   are. Schema yukta.bench-serve/v1, documented in BENCHMARKS.md. *)

module Json = Obs.Json

let usage () =
  prerr_endline
    "usage: bench serve [--smoke] [--json OUT] [--sessions N] [--requests N]\n\
    \                   [--chunk N] [--scheme S] [--severity F] [--pace MS]";
  2

(* ------------------------------------------------------------------ *)
(* Throughput / latency: concurrent sessions against a live server     *)
(* ------------------------------------------------------------------ *)

type client_phase =
  | Greeting
  | Configuring
  | Stepping
  | Closing
  | Finished

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable partial : string;
  mutable phase : client_phase;
  mutable outstanding : bool; (* A step request awaits its last frame. *)
  mutable sent_at : float;
  mutable frames_req : int; (* Frames received for the current request. *)
  mutable reqs_left : int;
  mutable run_done : bool;
  mutable frames : int; (* Total frames over the client lifetime. *)
  mutable latencies : float list;
}

let obj fields = Json.to_string (Json.Obj fields)

let send c line =
  let line = line ^ "\n" in
  let n = String.length line in
  let sent = ref 0 in
  while !sent < n do
    match Unix.write_substring c.fd line !sent (n - !sent) with
    | k -> sent := !sent + k
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ c.fd ] [] 0.05)
  done

let send_step c ~chunk =
  send c (obj [ ("type", Json.String "step"); ("count", Json.Int chunk) ]);
  c.outstanding <- true;
  c.sent_at <- Obs.Collector.now ();
  c.frames_req <- 0

let handle_line c ~scheme ~chunk line =
  let json = try Some (Json.of_string line) with Json.Parse_error _ -> None in
  let typ =
    match json with
    | Some j -> (
      match Option.bind (Json.member "type" j) Json.to_string_opt with
      | Some t -> t
      | None -> "?")
    | None -> "?"
  in
  match (c.phase, typ) with
  | Greeting, "welcome" ->
    c.phase <- Configuring;
    send c
      (obj
         [
           ("type", Json.String "configure");
           ("scheme", Json.String scheme);
           ("app", Json.String "blackscholes");
           ("adapt", Json.Bool false);
         ])
  | Configuring, "configured" ->
    c.phase <- Stepping;
    send_step c ~chunk
  | Stepping, "frame" ->
    c.frames <- c.frames + 1;
    c.frames_req <- c.frames_req + 1;
    let done_ =
      match json with
      | Some j -> Json.member "done" j = Some (Json.Bool true)
      | None -> false
    in
    if done_ then c.run_done <- true;
    if c.frames_req >= chunk || done_ then begin
      c.outstanding <- false;
      c.latencies <- (Obs.Collector.now () -. c.sent_at) :: c.latencies;
      c.reqs_left <- c.reqs_left - 1;
      if c.reqs_left > 0 && not c.run_done then send_step c ~chunk
      else begin
        c.phase <- Closing;
        send c (obj [ ("type", Json.String "close") ])
      end
    end
  | Stepping, "end" ->
    (* The run finished under an earlier request's epoch count. *)
    c.outstanding <- false;
    c.run_done <- true;
    c.phase <- Closing;
    send c (obj [ ("type", Json.String "close") ])
  | Stepping, "busy" -> send_step c ~chunk
  | _, "closed" -> c.phase <- Finished
  | _, "error" ->
    prerr_endline ("bench serve: server error: " ^ line);
    c.phase <- Finished
  | _ -> ()

let pump c ~scheme ~chunk =
  let bytes = Bytes.create 8192 in
  let rec read_all () =
    match Unix.read c.fd bytes 0 8192 with
    | 0 -> c.phase <- Finished (* Server went away. *)
    | n ->
      Buffer.add_subbytes c.buf bytes 0 n;
      read_all ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  read_all ();
  let data = c.partial ^ Buffer.contents c.buf in
  Buffer.clear c.buf;
  let parts = String.split_on_char '\n' data in
  let rec consume = function
    | [] -> c.partial <- ""
    | [ tail ] -> c.partial <- tail
    | line :: rest ->
      if line <> "" then handle_line c ~scheme ~chunk line;
      consume rest
  in
  consume parts

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let run_throughput ~sessions ~requests ~chunk ~scheme =
  let server = Serve.Server.create ~step_budget:512 (Serve.Server.Tcp ("", 0)) in
  let port = Option.get (Serve.Server.port server) in
  let connect () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.set_nonblock fd;
    {
      fd;
      buf = Buffer.create 4096;
      partial = "";
      phase = Greeting;
      outstanding = false;
      sent_at = 0.0;
      frames_req = 0;
      reqs_left = requests;
      run_done = false;
      frames = 0;
      latencies = [];
    }
  in
  let clients = List.init sessions (fun _ -> connect ()) in
  List.iter
    (fun c ->
      send c
        (obj [ ("type", Json.String "hello"); ("client", Json.String "bench") ]))
    clients;
  let t0 = Obs.Collector.now () in
  let deadline = t0 +. 120.0 in
  while
    List.exists (fun c -> c.phase <> Finished) clients
    && Obs.Collector.now () < deadline
  do
    Serve.Server.iterate ~timeout:0.002 server;
    List.iter
      (fun c -> if c.phase <> Finished then pump c ~scheme ~chunk)
      clients
  done;
  let wall = Obs.Collector.now () -. t0 in
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) clients;
  Serve.Server.stop server;
  Serve.Server.iterate ~timeout:0.0 server;
  (* Shutdown: run with stop already requested closes everything. *)
  Serve.Server.run server;
  let frames = List.fold_left (fun a c -> a + c.frames) 0 clients in
  let latencies =
    List.concat_map (fun c -> c.latencies) clients |> Array.of_list
  in
  Array.sort compare latencies;
  (frames, wall, latencies)

(* ------------------------------------------------------------------ *)
(* Adaptive vs frozen under drift (in-process, same path as a session) *)
(* ------------------------------------------------------------------ *)

type arm = {
  epochs : int;
  completed : bool;
  exd : float;
  energy : float;
  trips : int;
}

let injector ~severity () =
  Fault.Injector.hooks
    (Fault.Injector.make
       [
         Fault.Spec.make ~start:20.0 ~duration:Float.infinity
           (Fault.Spec.Power_gain_drift severity);
       ])

let arm_of_stepper s n =
  let m = Board.Xu3.metrics (Yukta.Stack.board s) in
  {
    epochs = n;
    completed = Yukta.Stack.finished s;
    exd = m.Board.Xu3.energy_delay;
    energy = m.Board.Xu3.total_energy;
    trips = m.Board.Xu3.trips;
  }

let max_arm_epochs = 30_000

let run_frozen ~scheme ~severity =
  let stack = Yukta.Schemes.stack (Yukta.Schemes.find_exn scheme) in
  let s =
    Yukta.Stack.stepper ~injector:(injector ~severity ()) stack
      [ Board.Workload.by_name "blackscholes" ]
  in
  let n = ref 0 in
  while Yukta.Stack.step_epoch s <> None && !n < max_arm_epochs do
    incr n
  done;
  arm_of_stepper s !n

(* The adaptive arm is paced (wall sleep per epoch) until the swap
   lands: the background synthesis needs wall seconds, and an unpaced
   simulation finishes before any redesign could. After the swap the
   rest free-runs — pacing does not affect simulated quantities. *)
let run_adaptive ~scheme ~severity ~pace_s =
  let stack = Yukta.Schemes.stack (Yukta.Schemes.find_exn scheme) in
  let s =
    Yukta.Stack.stepper ~injector:(injector ~severity ()) stack
      [ Board.Workload.by_name "blackscholes" ]
  in
  let engine =
    match Serve.Adapt.for_stack (Yukta.Stack.stack s) with
    | Some e -> e
    | None ->
      Printf.eprintf "bench serve: scheme %s has no adaptable hw layer\n"
        scheme;
      exit 2
  in
  let board = Yukta.Stack.board s in
  let n = ref 0 in
  let stop = ref false in
  let swap = ref None in
  while (not !stop) && !n < max_arm_epochs do
    Serve.Adapt.pre_step engine board;
    match Yukta.Stack.step_epoch s with
    | None -> stop := true
    | Some o ->
      incr n;
      List.iter
        (fun ev ->
          match ev with
          | Serve.Adapt.Swapped { epoch; latency_epochs; latency_s; mu_peak }
            ->
            swap := Some (epoch, latency_epochs, latency_s, mu_peak)
          | Serve.Adapt.Drift_detected _ | Serve.Adapt.Synthesis_failed _ ->
            ())
        (Serve.Adapt.observe engine ~epoch:!n board o);
      if Serve.Adapt.swaps engine = 0 then Unix.sleepf pace_s
  done;
  Serve.Adapt.finish engine;
  (arm_of_stepper s !n, !swap)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let arm_json (a : arm) =
  Json.Obj
    [
      ("epochs", Json.Int a.epochs);
      ("completed", Json.Bool a.completed);
      ("exd", Json.Float a.exd);
      ("energy", Json.Float a.energy);
      ("trips", Json.Int a.trips);
    ]

let main args =
  let smoke = ref false in
  let json_path = ref None in
  let sessions = ref 0 in
  let requests = ref 0 in
  let chunk = ref 25 in
  let scheme = ref "hw-ssv" in
  let severity = ref 1.5 in
  let pace_ms = ref 25 in
  let bad fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline m;
        exit 2)
      fmt
  in
  let int_value flag n k =
    match int_of_string_opt n with
    | Some v when v >= 1 -> k v
    | _ -> bad "bench serve: %s expects an integer >= 1, got %S" flag n
  in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--sessions" :: n :: rest ->
      int_value "--sessions" n (fun v -> sessions := v);
      parse rest
    | "--requests" :: n :: rest ->
      int_value "--requests" n (fun v -> requests := v);
      parse rest
    | "--chunk" :: n :: rest ->
      int_value "--chunk" n (fun v -> chunk := v);
      parse rest
    | "--scheme" :: s :: rest ->
      scheme := s;
      parse rest
    | "--severity" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f > 0.0 -> severity := f
      | _ -> bad "bench serve: --severity expects a positive float");
      parse rest
    | "--pace" :: n :: rest ->
      int_value "--pace" n (fun v -> pace_ms := v);
      parse rest
    | [ ("--json" | "--sessions" | "--requests" | "--chunk" | "--scheme"
        | "--severity" | "--pace") ] ->
      prerr_endline "bench serve: missing value after last flag";
      exit 2
    | a :: _ ->
      Printf.eprintf "bench serve: unknown argument %S\n" a;
      exit (usage ())
  in
  parse args;
  if Yukta.Schemes.find !scheme = None then
    bad "bench serve: unknown scheme %S (see yukta_cli schemes)" !scheme;
  let sessions = if !sessions > 0 then !sessions else if !smoke then 2 else 8 in
  let requests =
    if !requests > 0 then !requests else if !smoke then 4 else 12
  in
  Printf.printf "serve: %d sessions x %d step requests x %d epochs, %s\n%!"
    sessions requests !chunk !scheme;
  let t0 = Obs.Collector.now () in
  let frames, wall, latencies =
    run_throughput ~sessions ~requests ~chunk:!chunk ~scheme:!scheme
  in
  let p50 = percentile latencies 0.50 *. 1000.0 in
  let p99 = percentile latencies 0.99 *. 1000.0 in
  let throughput = if wall > 0.0 then float_of_int frames /. wall else 0.0 in
  Printf.printf
    "  %d frames in %.2f s  (%.0f frames/s)  step latency p50 %.2f ms  p99 \
     %.2f ms\n%!"
    frames wall throughput p50 p99;
  Printf.printf "adaptive vs frozen: power_gain %.1f on %s (pace %d ms)\n%!"
    !severity !scheme !pace_ms;
  let frozen = run_frozen ~scheme:!scheme ~severity:!severity in
  Printf.printf "  frozen:   %5d epochs  ExD %12.1f  trips %d\n%!"
    frozen.epochs frozen.exd frozen.trips;
  let adaptive, swap =
    run_adaptive ~scheme:!scheme ~severity:!severity
      ~pace_s:(float_of_int !pace_ms /. 1000.0)
  in
  Printf.printf "  adaptive: %5d epochs  ExD %12.1f  trips %d\n%!"
    adaptive.epochs adaptive.exd adaptive.trips;
  (match swap with
  | Some (epoch, lat_e, lat_s, mu) ->
    Printf.printf
      "  swap at epoch %d: drift->swap latency %d epochs (%.1f sim s), mu \
       %.2f\n\
       %!"
      epoch lat_e lat_s mu
  | None -> Printf.printf "  no swap landed (run ended first)\n%!");
  if frozen.exd > 0.0 then
    Printf.printf "# adaptive ExD x%.3f vs frozen\n%!"
      (adaptive.exd /. frozen.exd);
  (match !json_path with
  | None -> ()
  | Some path ->
    let doc =
      Json.Obj
        [
          ("schema", Json.String "yukta.bench-serve/v1");
          ("smoke", Json.Bool !smoke);
          ( "serve",
            Json.Obj
              [
                ("sessions", Json.Int sessions);
                ("requests_per_session", Json.Int requests);
                ("epochs_per_request", Json.Int !chunk);
                ("scheme", Json.String !scheme);
                ("frames", Json.Int frames);
              ] );
          ( "adaptive",
            Json.Obj
              [
                ("drift_kind", Json.String "power_gain");
                ("drift_severity", Json.Float !severity);
                ("frozen", arm_json frozen);
                ("adaptive", arm_json adaptive);
                ( "exd_ratio",
                  Json.Float
                    (if frozen.exd > 0.0 then adaptive.exd /. frozen.exd
                     else 0.0) );
                ( "swap",
                  match swap with
                  | None -> Json.Null
                  | Some (epoch, lat_e, lat_s, mu) ->
                    Json.Obj
                      [
                        ("epoch", Json.Int epoch);
                        ("latency_epochs", Json.Int lat_e);
                        ("latency_s", Json.Float lat_s);
                        ("mu_peak", Json.Float mu);
                      ] );
              ] );
          ( "bench",
            Json.Obj
              [
                ("wall_s", Json.Float (Obs.Collector.now () -. t0));
                ("throughput_frames_per_s", Json.Float throughput);
                ("step_latency_ms_p50", Json.Float p50);
                ("step_latency_ms_p99", Json.Float p99);
              ] );
        ]
    in
    let oc = open_out path in
    output_string oc (Json.to_string ~pretty:true doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n%!" path);
  0
