(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (Section VI) on the simulated board.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- --fig9 --fig10 ...   -- selected pieces
     dune exec bench/main.exe -- -j 4 ...             -- domain-parallel grids
     dune exec bench/main.exe -- fleet ...            -- rack-level fleet runs

   Flags, the --json document schema, and the parallelism/cache rules
   are documented in BENCHMARKS.md.

   Absolute numbers differ from the paper (the substrate is a simulator,
   not the authors' ODROID XU3); the reproduction targets are the shapes:
   which scheme wins, rough factors, where sensitivities bend. See
   EXPERIMENTS.md for the side-by-side reading. *)

open Yukta

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Machine-readable results, accumulated by each figure when [--json OUT]
   is given and written as one JSON document at exit (the BENCH_*.json
   trajectory seed). *)
let json_out : (string * Obs.Json.t) list ref = ref []

let json_record key v = json_out := (key, v) :: !json_out

(* [-j N]: the evaluation grids fan out to a domain pool. Serial by
   default; every figure's output is byte-identical at any job count. *)
let jobs = ref 1

let pool : Parallel.Pool.t option ref = ref None

(* Wall time per generated figure, keyed like the JSON document, in run
   order. These (and [jobs]) land in the document's "bench" block — the
   only fields expected to differ between [-j 1] and [-j N] runs. *)
let started_at = Obs.Collector.now ()

let walls : (string * float) list ref = ref []

let timed key f =
  let t0 = Obs.Collector.now () in
  let v = f () in
  walls := (key, Obs.Collector.now () -. t0) :: !walls;
  v

let bench_json () =
  Obs.Json.Obj
    [
      ("jobs", Obs.Json.Int !jobs);
      ( "wall_s",
        Obs.Json.Obj
          (List.rev_map (fun (k, s) -> (k, Obs.Json.Float s)) !walls) );
      ("total_wall_s", Obs.Json.Float (Obs.Collector.now () -. started_at));
    ]

let write_json path =
  let doc =
    Obs.Json.Obj
      (("schema", Obs.Json.String "yukta.bench/v1")
      :: ("bench", bench_json ())
      :: List.rev !json_out)
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* All naming comes from the scheme registry; the harness keeps no
   tables of its own. *)
let scheme_abbrev (s : Schemes.info) = s.Schemes.abbrev

let scheme key = Schemes.find_exn key

(* [--smoke]: a CI-sized run — two suite entries, capped simulated time.
   Shapes are meaningless at this size; the point is exercising every
   code path and the JSON schema. *)
let smoke = ref false

let run_max_time () = if !smoke then Some 120.0 else None

let suite_entries () =
  let entries = Experiment.suite_entries () in
  if !smoke then
    match entries with a :: b :: _ -> [ a; b ] | short -> short
  else entries

let mix_entries () =
  let entries = Experiment.mix_entries () in
  if !smoke then
    match entries with a :: _ -> [ a ] | [] -> []
  else entries

(* ------------------------------------------------------------------ *)
(* Tables II-IV: the controller specifications                         *)
(* ------------------------------------------------------------------ *)

let print_signal_table (spec : Design.spec) =
  Printf.printf "inputs (signal, range, step, weight):\n";
  Array.iter
    (fun (i : Signal.input) ->
      Printf.printf "  %-14s [%.1f, %.1f] step %.1f  weight %.0f\n"
        i.Signal.name i.Signal.channel.Control.Quantize.minimum
        i.Signal.channel.Control.Quantize.maximum
        i.Signal.channel.Control.Quantize.step i.Signal.weight)
    spec.Design.inputs;
  Printf.printf "outputs (signal, range, bound):\n";
  Array.iter
    (fun (o : Signal.output) ->
      Printf.printf "  %-18s [%.2f, %.2f]  +-%.0f%%%s\n" o.Signal.name
        o.Signal.lo o.Signal.hi
        (100.0 *. o.Signal.bound_fraction)
        (if o.Signal.critical then "  (critical)" else ""))
    spec.Design.outputs;
  Printf.printf "external signals: %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (fun e -> e.Signal.name) spec.Design.externals)));
  Printf.printf "uncertainty guardband: +-%.0f%%\n"
    (100.0 *. spec.Design.uncertainty)

let table2 () =
  section "Table II: hardware controller parameters";
  Printf.printf
    "goal: minimize ExD subject to Pbig < %.2f W, Plittle < %.2f W, T < %.0f C\n"
    Hw_layer.power_limit_big Hw_layer.power_limit_little Hw_layer.temp_limit;
  print_signal_table (Hw_layer.spec ())

let table3 () =
  section "Table III: software controller parameters";
  Printf.printf "goal: minimize ExD (caps delegated to the hardware layer)\n";
  print_signal_table (Sw_layer.spec ())

let table4 () =
  section "Table IV: the registered schemes";
  List.iter
    (fun (s : Schemes.info) ->
      Printf.printf "  %-12s %-26s %d layers  [%s]\n" s.Schemes.abbrev
        s.Schemes.name
        (List.length s.Schemes.layers)
        s.Schemes.citation)
    Schemes.all

(* ------------------------------------------------------------------ *)
(* Figure 9: ExD and execution time, 4 schemes x full suite            *)
(* ------------------------------------------------------------------ *)

let fig9_schemes =
  [ scheme "coord"; scheme "decoupled"; scheme "hw-ssv"; scheme "yukta" ]

let suite_rows schemes =
  Experiment.run_suite ?max_time:(run_max_time ()) ?pool:!pool ~schemes
    (suite_entries ())

let print_rows title rows schemes value =
  section title;
  Printf.printf "%-14s" "app";
  List.iter (fun s -> Printf.printf " %12s" (scheme_abbrev s)) schemes;
  Printf.printf "\n";
  List.iter
    (fun (r : Experiment.normalized_row) ->
      Printf.printf "%-14s" r.Experiment.name;
      List.iter
        (fun s -> Printf.printf " %12.3f" (List.assoc s (value r)))
        schemes;
      Printf.printf "\n")
    rows;
  let spec_names = List.map (fun w -> w.Board.Workload.name) Board.Workload.spec in
  let parsec_names =
    List.map (fun w -> w.Board.Workload.name) Board.Workload.parsec
  in
  let avg = Experiment.averages rows ~spec_names ~parsec_names ~value in
  let has_spec = List.exists (fun r -> List.mem r.Experiment.name spec_names) rows in
  let has_parsec =
    List.exists (fun r -> List.mem r.Experiment.name parsec_names) rows
  in
  let labels =
    (if has_spec then [ ("SAv", fun (x, _, _) -> x) ] else [])
    @ (if has_parsec then [ ("PAv", fun (_, x, _) -> x) ] else [])
    @ [ ("Avg", fun (_, _, x) -> x) ]
  in
  List.iter
    (fun label_pick ->
      let label, pick = label_pick in
      Printf.printf "%-14s" label;
      List.iter
        (fun s ->
          let sav, pav, a = avg s in
          Printf.printf " %12.3f" (pick (sav, pav, a)))
        schemes;
      Printf.printf "\n")
    labels

let fig9 ?rows () =
  let rows = match rows with Some r -> r | None -> suite_rows fig9_schemes in
  print_rows "Figure 9(a): ExD normalized to Coordinated heuristic" rows
    fig9_schemes (fun r -> r.Experiment.exd);
  print_rows "Figure 9(b): execution time normalized to Coordinated heuristic"
    rows fig9_schemes (fun r -> r.Experiment.time);
  json_record "fig9" (Experiment.suite_json rows);
  (* Fleet health over the same grid: per-scheme merged Obs.Health
     aggregates — byte-identical at any -j by construction. *)
  json_record "health" (Experiment.suite_health_json rows);
  rows

(* ------------------------------------------------------------------ *)
(* Figures 10 and 11: blackscholes traces                              *)
(* ------------------------------------------------------------------ *)

(* The time label of a row is the simulated timestamp recorded in the
   trace itself (taken from the longest trace available at that index),
   not [index * epoch]: trace points are sampled at the *end* of each
   epoch, so the first point sits at 0.5 s, not 0.0 s. *)
let row_time traces i =
  List.find_map
    (fun t -> if i < Array.length t then Some t.(i).Stack.time else None)
    traces

let print_trace key title pick schemes =
  section title;
  let traces =
    List.map
      (fun s ->
        let r =
          Schemes.run ?max_time:(run_max_time ()) ~collect_trace:true s
            [ Board.Workload.by_name "blackscholes" ]
        in
        (s, r))
      schemes
  in
  Printf.printf "%-8s" "time(s)";
  List.iter (fun (s, _) -> Printf.printf " %12s" (scheme_abbrev s)) traces;
  Printf.printf "\n";
  let len =
    List.fold_left
      (fun acc (_, r) -> max acc (Array.length r.Stack.trace))
      0 traces
  in
  let stride = max 1 (len / 40) in
  let i = ref 0 in
  while !i < len do
    let t =
      match row_time (List.map (fun (_, r) -> r.Stack.trace) traces) !i with
      | Some t -> t
      | None -> Float.of_int (!i + 1) *. 0.5
    in
    Printf.printf "%-8.1f" t;
    List.iter
      (fun (_, r) ->
        if !i < Array.length r.Stack.trace then
          Printf.printf " %12.2f" (pick r.Stack.trace.(!i))
        else Printf.printf " %12s" "-")
      traces;
    Printf.printf "\n";
    i := !i + stride
  done;
  List.iter
    (fun (s, r) ->
      let m = r.Stack.metrics in
      Printf.printf "# %-14s completes at %.0f s (energy %.0f J, %d trips)\n"
        (scheme_abbrev s) m.Board.Xu3.execution_time m.Board.Xu3.total_energy
        m.Board.Xu3.trips)
    traces;
  json_record key
    (Obs.Json.Obj
       (List.map
          (fun (s, r) ->
            let m = r.Stack.metrics in
            ( scheme_abbrev s,
              Obs.Json.Obj
                [
                  ("execution_time_s", Obs.Json.Float m.Board.Xu3.execution_time);
                  ("energy_j", Obs.Json.Float m.Board.Xu3.total_energy);
                  ("exd_js", Obs.Json.Float m.Board.Xu3.energy_delay);
                  ("trips", Obs.Json.Int m.Board.Xu3.trips);
                ] ))
          traces))

let fig10 () =
  print_trace "fig10"
    "Figure 10: big-cluster power (W) vs time, blackscholes (limit 3.3 W)"
    (fun p -> p.Stack.power_big)
    fig9_schemes

let fig11 () =
  print_trace "fig11" "Figure 11: performance (BIPS) vs time, blackscholes"
    (fun p -> p.Stack.bips)
    fig9_schemes

(* ------------------------------------------------------------------ *)
(* Figures 12-13: LQG comparison                                       *)
(* ------------------------------------------------------------------ *)

let lqg_schemes =
  [ scheme "coord"; scheme "lqg-dec"; scheme "lqg-mono"; scheme "yukta" ]

let fig12_13 () =
  let rows = suite_rows lqg_schemes in
  print_rows "Figure 12: ExD, LQG-based designs vs Yukta" rows lqg_schemes
    (fun r -> r.Experiment.exd);
  print_rows "Figure 13: execution time, LQG-based designs vs Yukta" rows
    lqg_schemes (fun r -> r.Experiment.time);
  json_record "fig12_13" (Experiment.suite_json rows)

(* ------------------------------------------------------------------ *)
(* Figure 14: heterogeneous workloads                                  *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  let schemes = fig9_schemes @ [ scheme "lqg-dec"; scheme "lqg-mono" ] in
  let rows =
    Experiment.run_suite ?max_time:(run_max_time ()) ?pool:!pool ~schemes
      (mix_entries ())
  in
  print_rows "Figure 14: ExD on heterogeneous mixes" rows schemes (fun r ->
      r.Experiment.exd);
  json_record "fig14" (Experiment.suite_json rows)

(* Wall-clock cost of forcing the two controller designs (cache load or
   full identify+synthesize, whichever the cache state implies), plus the
   certified mu/gamma of the result — the "synthesis timings" block of
   the --json document. *)
let synthesis_json () =
  let timed layer force =
    let t0 = Obs.Collector.now () in
    let d = force () in
    let dt = Obs.Collector.now () -. t0 in
    ( layer,
      Obs.Json.Obj
        [
          ("wall_s", Obs.Json.Float dt);
          ("mu_peak", Obs.Json.Float d.Design.mu_peak);
          ("gamma", Obs.Json.Float d.Design.gamma);
          ("controller_order", Obs.Json.Int (Controller.order d.Design.controller));
        ] )
  in
  json_record "synthesis"
    (Obs.Json.Obj [ timed "hw" Designs.hw; timed "sw" Designs.sw ])

(* ------------------------------------------------------------------ *)
(* Section VI-D: controller implementation cost                        *)
(* ------------------------------------------------------------------ *)

let cost () =
  section "Section VI-D: hardware controller implementation cost";
  let hw = Designs.hw () in
  let c = Controller.cost hw.Design.controller in
  Printf.printf
    "state dimension N = %d, inputs I = %d, outputs+externals O+E = %d\n"
    c.Controller.states c.Controller.inputs c.Controller.outputs_and_externals;
  Printf.printf "multiply-accumulates per invocation: %d (~%d operations)\n"
    c.Controller.multiply_accumulates
    (2 * c.Controller.multiply_accumulates);
  Printf.printf "coefficient + state storage: %d bytes (~%.1f KB)\n"
    c.Controller.storage_bytes
    (Float.of_int c.Controller.storage_bytes /. 1024.0);
  (* Wall-clock cost of one invocation, measured with Bechamel. *)
  let open Bechamel in
  let ctrl = hw.Design.controller in
  let measurements = [| 5.0; 2.5; 0.25; 65.0 |] in
  let targets = [| 6.0; 3.0; 0.3; 77.0 |] in
  let externals = [| 6.0; 1.5; 1.0 |] in
  let step_test =
    Test.make ~name:"controller step"
      (Staged.stage (fun () ->
           ignore (Controller.step ctrl ~measurements ~targets ~externals)))
  in
  let mu_test =
    let m =
      Linalg.Cmat.of_real (Linalg.Mat.random ~seed:3 7 7)
    in
    let s = [ Control.Ssv.Full (4, 4); Control.Ssv.Full (3, 3) ] in
    Test.make ~name:"mu upper bound (7x7)"
      (Staged.stage (fun () -> ignore (Control.Ssv.mu_upper s m)))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                     ~predictors:[| Measure.run |])
        (Toolkit.Instance.monotonic_clock) raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
          Printf.printf "  %-24s %10.2f ns/invocation\n" name est
        | _ -> Printf.printf "  %-24s (no estimate)\n" name)
      results
  in
  benchmark step_test;
  benchmark mu_test

(* ------------------------------------------------------------------ *)
(* Figure 15: sensitivity to output deviation bounds                   *)
(* ------------------------------------------------------------------ *)

let bound_variants = [ (0.20, "+-20% (+-1 BIPS)"); (0.30, "+-30% (+-1.5 BIPS)"); (0.50, "+-50% (+-2.5 BIPS)") ]

let variant_designs perf_bound =
  let hw = Designs.design_hw_with (Hw_layer.spec ~perf_bound ()) in
  (* The OS controller bounds scale proportionally (Section VI-E1). *)
  let sw = Designs.design_sw_with (Sw_layer.spec ~bound:perf_bound ()) in
  (hw, sw)

let fig15 () =
  section "Figure 15(a): performance under fixed targets, varying bounds";
  (* Fixed, mutually consistent targets (the performance this board
     delivers at 2.5 W): perf 8 BIPS, Pbig 2.5 W, Plittle 0.2 W, T 70 C;
     OS: perf_little 1.5, perf_big 6.5, dSC 1. *)
  let hw_targets = [| 8.0; 2.5; 0.2; 70.0 |] in
  let sw_targets = [| 1.5; 6.5; 1.0 |] in
  let traces =
    List.map
      (fun (b, label) ->
        let hw, sw = variant_designs b in
        let tr =
          Runtime.run_fixed_targets ~max_time:100.0 ~hw_design:hw ~sw_design:sw
            ~hw_targets ~sw_targets
            [ Board.Workload.by_name "blackscholes" ]
        in
        (label, tr))
      bound_variants
  in
  Printf.printf "%-8s" "time(s)";
  List.iter (fun (l, _) -> Printf.printf " %20s" l) traces;
  Printf.printf "   (target 8.0 BIPS)\n";
  let len =
    List.fold_left (fun acc (_, t) -> max acc (Array.length t)) 0 traces
  in
  let stride = max 1 (len / 25) in
  let i = ref 0 in
  while !i < len do
    let t_lbl =
      match row_time (List.map snd traces) !i with
      | Some t -> t
      | None -> Float.of_int (!i + 1) *. 0.5
    in
    Printf.printf "%-8.1f" t_lbl;
    List.iter
      (fun (_, t) ->
        if !i < Array.length t then
          Printf.printf " %20.2f" t.(!i).Stack.bips
        else Printf.printf " %20s" "-")
      traces;
    Printf.printf "\n";
    i := !i + stride
  done;
  (* Tracking-quality summary: rms deviation from the target in steady
     state (after 25 s). *)
  List.iter
    (fun (l, t) ->
      let sum = ref 0.0 and n = ref 0 in
      Array.iteri
        (fun i p ->
          if i > 50 then begin
            let d = p.Stack.bips -. 8.0 in
            sum := !sum +. (d *. d);
            incr n
          end)
        t;
      if !n > 0 then
        Printf.printf "# %-22s rms deviation %.3f BIPS\n" l
          (Float.sqrt (!sum /. Float.of_int !n)))
    traces;
  section "Figure 15(b): ExD vs bounds (suite average, normalized)";
  List.iter
    (fun (b, label) ->
      let hw, sw = variant_designs b in
      (* Run Yukta-full with the variant designs against the baseline. *)
      let total_ratio = ref 0.0 and n = ref 0 in
      List.iter
        (fun (_, workloads) ->
          let base =
            (Schemes.run (scheme "coord") workloads).Stack.metrics
          in
          let r = Stack.run (Schemes.yukta_full_stack hw sw) workloads in
          total_ratio :=
            !total_ratio
            +. (r.Stack.metrics.Board.Xu3.energy_delay
                /. base.Board.Xu3.energy_delay);
          incr n)
        (Experiment.suite_entries ());
      Printf.printf "  bounds %-22s normalized ExD = %.3f\n" label
        (!total_ratio /. Float.of_int !n))
    bound_variants

(* ------------------------------------------------------------------ *)
(* Figure 16: sensitivity to the uncertainty guardband                 *)
(* ------------------------------------------------------------------ *)

let guardbands = [ 0.40; 1.0; 2.5; 5.0 ]

let fig16 () =
  section "Figure 16(a): guaranteed deviation bounds vs guardband";
  Printf.printf
    "%-12s %10s %10s  (bounds normalized to the +-40%% design)\n"
    "guardband" "mu peak" "bound xN";
  let reference = ref None in
  List.iter
    (fun g ->
      let hw = Designs.design_hw_with (Hw_layer.spec ~uncertainty:g ()) in
      let scale = Float.max 1.0 hw.Design.mu_peak in
      let ref_scale =
        match !reference with
        | None ->
          reference := Some scale;
          scale
        | Some s -> s
      in
      Printf.printf "+-%-10.0f%% %10.3f %10.3f\n" (100.0 *. g)
        hw.Design.mu_peak (scale /. ref_scale))
    guardbands;
  section "Figure 16(b): ExD vs guardband (suite average, normalized)";
  List.iter
    (fun g ->
      let hw = Designs.design_hw_with (Hw_layer.spec ~uncertainty:g ()) in
      let sw = Designs.sw () in
      let total_ratio = ref 0.0 and n = ref 0 in
      List.iter
        (fun (_, workloads) ->
          let base =
            (Schemes.run (scheme "coord") workloads).Stack.metrics
          in
          let r = Stack.run (Schemes.yukta_full_stack hw sw) workloads in
          total_ratio :=
            !total_ratio
            +. (r.Stack.metrics.Board.Xu3.energy_delay
                /. base.Board.Xu3.energy_delay);
          incr n)
        (Experiment.suite_entries ());
      Printf.printf "  guardband +-%-6.0f%% normalized ExD = %.3f\n"
        (100.0 *. g)
        (!total_ratio /. Float.of_int !n))
    guardbands

(* ------------------------------------------------------------------ *)
(* Figure 17: sensitivity to input weights                             *)
(* ------------------------------------------------------------------ *)

let fig17 () =
  section "Figure 17: big-cluster power vs time for input weights (target 2.5 W)";
  let weights = [ 0.5; 1.0; 2.0 ] in
  let hw_targets = [| 5.5; 2.5; 0.2; 70.0 |] in
  let sw_targets = [| 1.0; 4.5; 1.0 |] in
  let traces =
    List.map
      (fun w ->
        let hw = Designs.design_hw_with (Hw_layer.spec ~input_weight:w ()) in
        let sw = Designs.sw () in
        let tr =
          Runtime.run_fixed_targets ~max_time:100.0 ~hw_design:hw ~sw_design:sw
            ~hw_targets ~sw_targets
            [ Board.Workload.by_name "blackscholes" ]
        in
        (w, tr))
      weights
  in
  Printf.printf "%-8s" "time(s)";
  List.iter (fun (w, _) -> Printf.printf " %12s" (Printf.sprintf "weight %.1f" w)) traces;
  Printf.printf "   (target 2.5 W)\n";
  let len =
    List.fold_left (fun acc (_, t) -> max acc (Array.length t)) 0 traces
  in
  let stride = max 1 (len / 30) in
  let i = ref 0 in
  while !i < len do
    let t_lbl =
      match row_time (List.map snd traces) !i with
      | Some t -> t
      | None -> Float.of_int (!i + 1) *. 0.5
    in
    Printf.printf "%-8.1f" t_lbl;
    List.iter
      (fun (_, t) ->
        if !i < Array.length t then
          Printf.printf " %12.2f" t.(!i).Stack.power_big
        else Printf.printf " %12s" "-")
      traces;
    Printf.printf "\n";
    i := !i + stride
  done;
  List.iter
    (fun (w, t) ->
      (* Oscillation measure: mean absolute epoch-to-epoch power change in
         steady state. *)
      let acc = ref 0.0 and n = ref 0 in
      Array.iteri
        (fun i p ->
          if i > 40 && i < Array.length t then begin
            acc := !acc +. Float.abs (p.Stack.power_big -. t.(i - 1).Stack.power_big);
            incr n
          end)
        t;
      if !n > 0 then
        Printf.printf "# weight %.1f: mean |dP| per epoch = %.3f W\n" w
          (!acc /. Float.of_int !n))
    traces

(* ------------------------------------------------------------------ *)
(* Robustness: fault campaigns (DESIGN.md section 8)                   *)
(* ------------------------------------------------------------------ *)

(* The regenerable form of the paper's robustness claim (Section V):
   replay one seeded fault schedule against every scheme, in-guardband
   (plant drifts inside the synthesis' uncertainty ball) and
   out-of-guardband. Everything here runs on simulated time only, so
   the JSON block is byte-for-byte reproducible across runs. *)

let robustness_seed = 42

let robustness_schemes () =
  if !smoke then
    [ scheme "coord"; scheme "decoupled"; scheme "lqg-dec"; scheme "yukta" ]
  else
    [
      scheme "coord";
      scheme "decoupled";
      scheme "hw-ssv";
      scheme "lqg-dec";
      scheme "lqg-mono";
      scheme "yukta";
    ]

(* The campaign horizon is matched to the slowest scheme's clean
   makespan: every scheme's whole execution is exposed to the fault
   window, so exposure does not depend on how fast a scheme finishes.
   An over-long workload would concentrate faults in the early phase
   and weight the verdict by scheme speed rather than robustness. *)
let robustness_workloads () =
  [ Board.Workload.scale ~ginsts:400.0 (Board.Workload.by_name "blackscholes") ]

let print_campaign title (outcomes : Fault.Campaign.outcome list) =
  Printf.printf "\n%s\n" title;
  Printf.printf "%-14s %12s %12s %10s %7s %11s %9s\n" "scheme" "clean ExD"
    "faulted ExD" "inflation" "+trips" "recover(s)" "survived";
  List.iter
    (fun (o : Fault.Campaign.outcome) ->
      Printf.printf "%-14s %12.1f %12.1f %10.3f %7d %11s %9b\n"
        (scheme_abbrev o.Fault.Campaign.scheme)
        o.Fault.Campaign.clean.Board.Xu3.energy_delay
        o.Fault.Campaign.faulted.Board.Xu3.energy_delay
        o.Fault.Campaign.exd_inflation o.Fault.Campaign.extra_trips
        (match o.Fault.Campaign.recovery_s with
        | Some s -> Printf.sprintf "%.1f" s
        | None -> "never")
        o.Fault.Campaign.survived)
    outcomes;
  match Fault.Campaign.least_inflated outcomes with
  | Some o ->
    Printf.printf "# least degraded: %s (ExD x%.3f)\n"
      (scheme_abbrev o.Fault.Campaign.scheme)
      o.Fault.Campaign.exd_inflation
  | None -> ()

let robustness () =
  section "Robustness: scheme degradation under fault campaigns";
  let horizon = 60.0 in
  let count = 6 in
  let workloads = robustness_workloads () in
  let campaign title profile =
    let schedule = Fault.Schedule.generate ~seed:robustness_seed profile in
    Printf.printf "\n%s schedule (seed %d):\n" title robustness_seed;
    List.iter (fun f -> Printf.printf "  %s\n" (Fault.Spec.describe f)) schedule;
    let outcomes =
      Fault.Campaign.run ?max_time:(run_max_time ()) ?pool:!pool
        ~schemes:(robustness_schemes ()) ~workloads schedule
    in
    print_campaign (title ^ " campaign:") outcomes;
    Fault.Campaign.to_json ~schedule outcomes
  in
  let in_g =
    campaign "In-guardband" (Fault.Schedule.in_guardband ~horizon ~count ())
  in
  let out_g =
    campaign "Out-of-guardband"
      (Fault.Schedule.out_of_guardband ~horizon ~count ())
  in
  json_record "robustness"
    (Obs.Json.Obj
       [
         ("seed", Obs.Json.Int robustness_seed);
         ("in_guardband", in_g);
         ("out_of_guardband", out_g);
       ])

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 4)                                     *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: value of coordination, optimizer, and sensors";
  let entries = Experiment.suite_entries () in
  let avg_ratio stack =
    let total = ref 0.0 and n = ref 0 in
    List.iter
      (fun (_, workloads) ->
        let base =
          (Schemes.run (scheme "coord") workloads).Stack.metrics
        in
        let r = Stack.run (stack ()) workloads in
        total :=
          !total
          +. (r.Stack.metrics.Board.Xu3.energy_delay
              /. base.Board.Xu3.energy_delay);
        incr n)
      entries;
    !total /. Float.of_int !n
  in
  let full () = Schemes.yukta_full_stack (Designs.hw ()) (Designs.sw ()) in
  Printf.printf "  Yukta full:                         ExD = %.3f\n"
    (avg_ratio full);
  (* Without external signals: controllers synthesized with the externals
     zeroed at runtime (the information channel is cut). *)
  let no_ext () =
    Schemes.yukta_no_externals_stack (Designs.hw ()) (Designs.sw ())
  in
  Printf.printf "  ... external signals zeroed:        ExD = %.3f\n"
    (avg_ratio no_ext);
  let no_opt () =
    Schemes.yukta_fixed_targets_stack (Designs.hw ()) (Designs.sw ())
  in
  Printf.printf "  ... optimizer off (fixed targets):  ExD = %.3f\n"
    (avg_ratio no_opt);
  (* Quantization-aware synthesis vs the continuous-input assumption of
     the non-SSV designs (the Section VI-B failure mode). *)
  let hw_no_quant =
    let r = Designs.get_records () in
    let spec = Hw_layer.spec () in
    let model =
      Design.identify spec ~u:r.Training.hw_u ~y:r.Training.hw_y
    in
    Design.synthesize ~ignore_quantization:true spec ~model
  in
  let no_quant () = Schemes.yukta_full_stack hw_no_quant (Designs.sw ()) in
  Printf.printf "  ... quantization-unaware HW design: ExD = %.3f\n"
    (avg_ratio no_quant);
  (* Power-sensor refresh period. *)
  let avg_ratio_period period =
    let total = ref 0.0 and n = ref 0 in
    List.iter
      (fun (_, workloads) ->
        let base =
          (Schemes.run (scheme "coord") workloads).Stack.metrics
        in
        let r = Stack.run ~sensor_period:period (full ()) workloads in
        total :=
          !total
          +. (r.Stack.metrics.Board.Xu3.energy_delay
              /. base.Board.Xu3.energy_delay);
        incr n)
      entries;
    !total /. Float.of_int !n
  in
  Printf.printf "  ... ideal power sensor (10 ms):     ExD = %.3f\n"
    (avg_ratio_period 0.01);
  Printf.printf "  ... slow power sensor (1 s):        ExD = %.3f\n"
    (avg_ratio_period 1.0)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let raw = Array.to_list Sys.argv |> List.tl in
  (* The kernel micro-benchmark suite is its own subcommand with its own
     flags (see bench/micro.ml and BENCHMARKS.md). *)
  (match raw with
  | "micro" :: rest ->
    Micro.main rest;
    exit 0
  (* The perf-regression gate: diff two bench-micro documents. *)
  | "compare" :: rest -> exit (Compare.main rest)
  (* The fleet harness: N boards under one rack budget (bench/fleetbench.ml). *)
  | "fleet" :: rest -> exit (Fleetbench.main rest)
  (* The serving harness: concurrent sessions + adaptation (bench/servebench.ml). *)
  | "serve" :: rest -> exit (Servebench.main rest)
  (* The design-space exploration farm (bench/sweepbench.ml). *)
  | "sweep" :: rest -> exit (Sweepbench.main rest)
  | _ -> ());
  (* [--json OUT] and [-j N] consume their values; everything else is a
     flag. *)
  let json_path = ref None in
  let rec split_valued acc = function
    | "--json" :: path :: rest ->
      json_path := Some path;
      split_valued acc rest
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        split_valued acc rest
      | _ ->
        Printf.eprintf "bench: -j expects an integer >= 1, got %S\n" n;
        exit 2)
    | [ ("-j" | "--jobs" | "--json") ] ->
      prerr_endline "bench: missing value after -j/--jobs/--json";
      exit 2
    | a :: rest -> split_valued (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = split_valued [] raw in
  let args =
    List.filter
      (fun a ->
        if a = "--smoke" then begin
          smoke := true;
          false
        end
        else true)
      args
  in
  if !jobs > 1 then pool := Some (Parallel.Pool.create ~jobs:!jobs);
  let has f = List.mem f args in
  let all = args = [] || has "--all" in
  if all || has "--tables" then timed "tables" (fun () ->
      table2 ();
      table3 ();
      table4 ());
  (* Synthesis timings are wall-clock and therefore nondeterministic;
     they join the JSON document only on full runs so that selective
     invocations (notably --robustness) stay byte-for-byte reproducible. *)
  if !json_path <> None && all then synthesis_json ();
  if all || has "--fig9" then timed "fig9" (fun () -> ignore (fig9 ()));
  if all || has "--fig10" then timed "fig10" fig10;
  if all || has "--fig11" then timed "fig11" fig11;
  if all || has "--fig12" || has "--fig13" then timed "fig12_13" fig12_13;
  if all || has "--fig14" then timed "fig14" fig14;
  if all || has "--cost" then timed "cost" cost;
  if all || has "--fig15" then timed "fig15" fig15;
  if all || has "--fig16" then timed "fig16" fig16;
  if all || has "--fig17" then timed "fig17" fig17;
  if all || has "--robustness" then timed "robustness" robustness;
  if all || has "--ablation" then timed "ablation" ablation;
  (match !json_path with None -> () | Some path -> write_json path);
  match !pool with None -> () | Some p -> Parallel.Pool.shutdown p
