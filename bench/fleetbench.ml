(* The fleet harness: N boards, each under its own per-board stack, one
   shared rack power budget apportioned by the Fleet.Rack policies, all
   streamed over the domain pool (no per-board result list is ever
   materialized — see lib/fleet/sim.ml).

     dune exec bench/main.exe -- fleet                  -- 64 boards, 3 policies
     dune exec bench/main.exe -- fleet --boards 1024 -j 8
     dune exec bench/main.exe -- fleet --smoke -j 2 --json OUT
     dune exec bench/main.exe -- fleet --policy feedback --cap 1.2

   Headline numbers: fleet E x D per rack policy (normalized to the
   static even split) and streaming throughput in board epochs per wall
   second. The --json document's "fleet" block holds only simulated
   quantities, so it is byte-identical at any -j; wall clock and
   throughput land in the "bench" block. Schema in BENCHMARKS.md. *)

let policies =
  [ Fleet.Rack.Even_split; Fleet.Rack.Proportional; Fleet.Rack.Feedback ]

let usage () =
  prerr_endline
    "usage: bench fleet [--smoke] [-j N] [--json OUT] [--boards N]\n\
    \                   [--cap W_PER_BOARD] [--policy P] [--scheme S] [--seed N]";
  2

let main args =
  let smoke = ref false in
  let jobs = ref 1 in
  let json_path = ref None in
  let boards = ref 0 in
  let cap = ref None in
  let policy = ref None in
  let scheme = ref "coord" in
  let seed = ref 42 in
  let bad fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
  let int_value flag n k =
    match int_of_string_opt n with
    | Some v when v >= 1 -> k v
    | _ -> bad "bench fleet: %s expects an integer >= 1, got %S" flag n
  in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | ("-j" | "--jobs") :: n :: rest ->
      int_value "-j" n (fun v -> jobs := v);
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--boards" :: n :: rest ->
      int_value "--boards" n (fun v -> boards := v);
      parse rest
    | "--cap" :: w :: rest ->
      (match float_of_string_opt w with
      | Some v when v > 0.0 -> cap := Some v
      | _ -> bad "bench fleet: --cap expects a positive per-board wattage");
      parse rest
    | "--policy" :: p :: rest ->
      (match Fleet.Rack.policy_of_string p with
      | Some v -> policy := Some v
      | None -> bad "bench fleet: unknown policy %S (even-split, proportional, feedback)" p);
      parse rest
    | "--scheme" :: s :: rest ->
      scheme := s;
      parse rest
    | "--seed" :: n :: rest ->
      int_value "--seed" n (fun v -> seed := v);
      parse rest
    | [ ("-j" | "--jobs" | "--json" | "--boards" | "--cap" | "--policy"
        | "--scheme" | "--seed") ] ->
      prerr_endline "bench fleet: missing value after last flag";
      exit 2
    | a :: _ ->
      Printf.eprintf "bench fleet: unknown argument %S\n" a;
      exit (usage ())
  in
  parse args;
  if Yukta.Schemes.find !scheme = None then
    bad "bench fleet: unknown scheme %S (see yukta_cli schemes)" !scheme;
  let boards = if !boards > 0 then !boards else if !smoke then 8 else 64 in
  let max_time = if !smoke then 60.0 else 240.0 in
  let ginsts = if !smoke then 20.0 else 60.0 in
  let config policy =
    Fleet.Sim.config ?cap_per_board:!cap ~policy ~scheme:!scheme ~seed:!seed
      ~max_time ~ginsts ~boards ()
  in
  let run_policies = match !policy with Some p -> [ p ] | None -> policies in
  let pool =
    if !jobs > 1 then Some (Parallel.Pool.create ~jobs:!jobs) else None
  in
  let c0 = config (List.hd run_policies) in
  Printf.printf
    "fleet: %d boards x %s, budget %.1f W (%.2f W/board), %s, seed %d, -j %d\n"
    boards !scheme c0.Fleet.Sim.cap
    (c0.Fleet.Sim.cap /. float_of_int boards)
    (if !smoke then "smoke horizon" else "full horizon")
    !seed !jobs;
  Printf.printf "%-14s %6s %6s %10s %10s %12s %8s %6s %12s\n" "policy"
    "racks" "done" "makespan" "energy(J)" "ExD(J.s)" "over(s)" "trips"
    "epochs/s";
  let results =
    List.map
      (fun p ->
        let t0 = Obs.Collector.now () in
        let r = Fleet.Sim.run ?pool (config p) in
        let wall = Obs.Collector.now () -. t0 in
        let throughput =
          if wall > 0.0 then float_of_int r.Fleet.Sim.board_epochs /. wall
          else 0.0
        in
        Printf.printf "%-14s %6d %4d/%d %9.1fs %10.1f %12.1f %8.1f %6d %12.1f\n%!"
          (Fleet.Rack.policy_name p) r.Fleet.Sim.rack_epochs
          r.Fleet.Sim.completed boards r.Fleet.Sim.makespan
          r.Fleet.Sim.energy r.Fleet.Sim.exd r.Fleet.Sim.cap_violation_s
          r.Fleet.Sim.trips throughput;
        (p, r, wall, throughput))
      run_policies
  in
  (match
     List.find_opt (fun (p, _, _, _) -> p = Fleet.Rack.Even_split) results
   with
  | Some (_, base, _, _) when base.Fleet.Sim.exd > 0.0 ->
    List.iter
      (fun (p, r, _, _) ->
        if p <> Fleet.Rack.Even_split then
          Printf.printf "# %-14s fleet ExD x%.3f vs even-split\n"
            (Fleet.Rack.policy_name p)
            (r.Fleet.Sim.exd /. base.Fleet.Sim.exd))
      results
  | _ -> ());
  (match !json_path with
  | None -> ()
  | Some path ->
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.String "yukta.bench-fleet/v1");
          ("smoke", Obs.Json.Bool !smoke);
          ( "fleet",
            Obs.Json.Obj
              (List.map
                 (fun (p, r, _, _) ->
                   (Fleet.Rack.policy_name p, Fleet.Sim.json r))
                 results) );
          ( "bench",
            Obs.Json.Obj
              [
                ("jobs", Obs.Json.Int !jobs);
                ( "wall_s",
                  Obs.Json.Obj
                    (List.map
                       (fun (p, _, wall, _) ->
                         (Fleet.Rack.policy_name p, Obs.Json.Float wall))
                       results) );
                ( "board_epochs_per_s",
                  Obs.Json.Obj
                    (List.map
                       (fun (p, _, _, tp) ->
                         (Fleet.Rack.policy_name p, Obs.Json.Float tp))
                       results) );
              ] );
        ]
    in
    let oc = open_out path in
    output_string oc (Obs.Json.to_string ~pretty:true doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nwrote %s\n" path);
  (match pool with None -> () | Some p -> Parallel.Pool.shutdown p);
  0
