(* Kernel micro-benchmarks: the hot-path primitives behind synthesis and
   simulation, timed in isolation so the perf trajectory has a stable,
   regression-friendly baseline (BENCH_micro.json).

     dune exec bench/main.exe -- micro                 -- full suite
     dune exec bench/main.exe -- micro --smoke         -- CI-sized run
     dune exec bench/main.exe -- micro --json OUT      -- output path
     dune exec bench/main.exe -- micro gemm xu3        -- name filter

   Each kernel runs [warmup] throwaway invocations and then [reps] timed
   repetitions (a repetition may batch several invocations so that tiny
   kernels get above timer noise); the per-invocation median and p90 of
   the repetitions are printed, observed into an Obs.Metrics histogram
   ("micro.<kernel>"), and written to the JSON document. Schema in
   BENCHMARKS.md. *)

open Yukta

type spec = {
  kernel : string;      (* Stable name, the JSON/regression key. *)
  size : string;        (* Human-readable problem size, e.g. "16x16". *)
  batch : int;          (* Invocations per timed repetition. *)
  reps : int;           (* Timed repetitions (full run). *)
  smoke_reps : int;     (* Timed repetitions under --smoke. *)
  prepare : unit -> unit -> unit;
      (* [prepare () ] builds the kernel's inputs once (untimed) and
         returns the closure that is timed. *)
}

(* ------------------------------------------------------------------ *)
(* Kernel definitions                                                  *)
(* ------------------------------------------------------------------ *)

let gemm n =
  {
    kernel = Printf.sprintf "gemm%d" n;
    size = Printf.sprintf "%dx%d" n n;
    batch = max 1 (65536 / (n * n));
    reps = 30;
    smoke_reps = 15;
    prepare =
      (fun () ->
        let a = Linalg.Mat.random ~seed:1 n n in
        let b = Linalg.Mat.random ~seed:2 n n in
        let dst = Linalg.Mat.create n n in
        fun () -> Linalg.Mat.mul_into ~dst a b);
  }

let eig n =
  {
    kernel = Printf.sprintf "eig%d" n;
    size = Printf.sprintf "%dx%d" n n;
    batch = 8;
    reps = 30;
    smoke_reps = 15;
    prepare =
      (fun () ->
        let a = Linalg.Mat.random ~seed:5 n n in
        fun () -> ignore (Linalg.Eig.eigenvalues a));
  }

let svd m n =
  {
    kernel = Printf.sprintf "svd%dx%d" m n;
    size = Printf.sprintf "%dx%d" m n;
    batch = 8;
    reps = 30;
    smoke_reps = 15;
    prepare =
      (fun () ->
        let a = Linalg.Mat.random ~seed:6 m n in
        fun () -> ignore (Linalg.Svd.decompose a));
  }

let care n =
  {
    kernel = Printf.sprintf "care%d" n;
    size = Printf.sprintf "%dx%d" n n;
    batch = 4;
    reps = 30;
    smoke_reps = 15;
    prepare =
      (fun () ->
        let a = Linalg.Mat.random ~seed:32 n n in
        let b = Linalg.Mat.random ~seed:33 n 2 in
        let q =
          Linalg.Mat.add
            (Linalg.Mat.symmetrize (Linalg.Mat.random ~seed:34 n n))
            (Linalg.Mat.scalar n 5.0)
        in
        let r = Linalg.Mat.identity 2 in
        fun () -> ignore (Control.Care.solve ~a ~b ~q ~r));
  }

(* One full D-K synthesis on the mixed-sensitivity test plant (unstable
   x' = x + u + d with weighted z and noisy y): small, but it exercises
   the whole gamma-bisection + mu-sweep pipeline that dominates design
   wall time. *)
let dk_plant () =
  let open Linalg in
  let open Control in
  let a = Mat.of_lists [ [ 1.0 ] ] in
  let b = Mat.of_lists [ [ 1.0; 0.0; 1.0 ] ] in
  let c = Mat.of_lists [ [ 1.0 ]; [ 0.0 ]; [ 1.0 ] ] in
  let d =
    Mat.of_lists [ [ 0.0; 0.0; 0.0 ]; [ 0.0; 0.0; 0.3 ]; [ 0.0; 0.1; 0.0 ] ]
  in
  {
    Hinf.sys = Ss.make ~a ~b ~c ~d ();
    part = { Hinf.nw = 2; nu = 1; nz = 2; ny = 1 };
  }

let dk_design =
  {
    kernel = "dk_design";
    size = "1-state plant, 3 iters";
    batch = 1;
    reps = 10;
    smoke_reps = 5;
    prepare =
      (fun () ->
        let plant = dk_plant () in
        let structure = [ Control.Ssv.Full (1, 1); Control.Ssv.Full (1, 1) ] in
        fun () ->
          ignore
            (Control.Dk.synthesize ~iterations:3 ~mu_points:20 ~plant
               ~structure ()));
  }

(* 1000 board epochs (0.5 s each, 10 ms internal ticks = 50k ticks) on a
   workload scaled so it never finishes: the per-domain constant factor
   of every evaluation grid cell. *)
let xu3_epochs =
  {
    kernel = "xu3_1000epochs";
    size = "1000 x 0.5s epochs";
    batch = 1;
    reps = 10;
    smoke_reps = 5;
    prepare =
      (fun () ->
        fun () ->
          let w =
            Board.Workload.scale ~ginsts:1e6
              (Board.Workload.by_name "blackscholes")
          in
          let board = Board.Xu3.create [ w ] in
          for _ = 1 to 1000 do
            ignore (Board.Xu3.run_epoch board 0.5)
          done);
  }

(* One Yukta controller invocation (the Section VI-D cost figure) on a
   synthetic discrete controller with the hardware layer's signal
   dimensions. *)
let controller_step =
  {
    kernel = "controller_step";
    size = "6 states, 7 in, 4 out";
    batch = 20000;
    reps = 30;
    smoke_reps = 15;
    prepare =
      (fun () ->
        let open Linalg in
        let n = 6 in
        let inputs = Hw_layer.inputs () in
        let outputs = Hw_layer.outputs () in
        let externals = Hw_layer.externals () in
        let n_meas = Array.length outputs + Array.length externals in
        let core =
          Control.Ss.make ~domain:(Control.Ss.Discrete 0.5)
            ~a:(Mat.scale 0.3 (Mat.random ~seed:11 n n))
            ~b:(Mat.random ~seed:12 n n_meas)
            ~c:(Mat.random ~seed:13 (Array.length inputs) n)
            ~d:(Mat.random ~seed:14 (Array.length inputs) n_meas)
            ()
        in
        let ctrl = Controller.make ~controller:core ~inputs ~outputs ~externals in
        let measurements = [| 5.0; 2.5; 0.25; 65.0 |] in
        let targets = [| 6.0; 3.0; 0.3; 77.0 |] in
        let ext = [| 6.0; 1.5; 1.0 |] in
        fun () ->
          ignore (Controller.step ctrl ~measurements ~targets ~externals:ext));
  }

(* The collector.mli claim — "a disabled instrumentation site pays one
   branch" — as a measured pair instead of prose: one controlled
   [Layer.step] (the instrumented site wrapping [Controller.step]) with
   collection off vs on (null sink, so encoding is paid but IO is not).
   The controller, signals and inputs match the [controller_step]
   kernel; the board exists only to give the layer something to read. *)
let obs_layer () =
  let open Linalg in
  let n = 6 in
  let inputs = Hw_layer.inputs () in
  let outputs = Hw_layer.outputs () in
  let externals = Hw_layer.externals () in
  let n_meas = Array.length outputs + Array.length externals in
  let core =
    Control.Ss.make ~domain:(Control.Ss.Discrete 0.5)
      ~a:(Mat.scale 0.3 (Mat.random ~seed:11 n n))
      ~b:(Mat.random ~seed:12 n n_meas)
      ~c:(Mat.random ~seed:13 (Array.length inputs) n)
      ~d:(Mat.random ~seed:14 (Array.length inputs) n_meas)
      ()
  in
  let ctrl = Controller.make ~controller:core ~inputs ~outputs ~externals in
  let meas = [| 5.0; 2.5; 0.25; 65.0 |] in
  let ext = [| 6.0; 1.5; 1.0 |] in
  let layer =
    Layer.controlled ~label:"bench-obs" ~controller:ctrl
      ~targets:(Layer.Fixed [| 6.0; 3.0; 0.3; 77.0 |])
      ~measure:(fun _ -> meas)
      ~externals:(fun _ -> ext)
      ~actuate:(fun _ _ -> ())
      ()
  in
  let w =
    Board.Workload.scale ~ginsts:1e6 (Board.Workload.by_name "blackscholes")
  in
  let board = Board.Xu3.create [ w ] in
  let o = Board.Xu3.run_epoch board 0.5 in
  (layer, board, o)

let obs_overhead_off =
  {
    kernel = "obs_overhead_off";
    size = "layer step, collector off";
    batch = 20000;
    reps = 30;
    smoke_reps = 15;
    prepare =
      (fun () ->
        let layer, board, o = obs_layer () in
        Obs.Collector.disable ();
        fun () -> Layer.step layer board o);
  }

(* Enables the collector at prepare time; [main] disables it and
   restores the buffer sink after the whole run, and the pair sits last
   in [all_kernels] so the enabled flag cannot leak into another
   kernel's timing. *)
let obs_overhead_on =
  {
    kernel = "obs_overhead_on";
    size = "layer step, null sink";
    batch = 2000;
    reps = 30;
    smoke_reps = 15;
    prepare =
      (fun () ->
        let layer, board, o = obs_layer () in
        Obs.Collector.set_sink (fun _ -> ());
        Obs.Collector.enable ();
        fun () -> Layer.step layer board o);
  }

(* One fleet slice: 64 boards under the feedback rack policy, 16 s of
   simulated time (8 rack epochs), serial, on a workload scaled so no
   board finishes — the per-rack-epoch constant factor behind
   [bench fleet], board construction included. *)
let fleet_64boards =
  {
    kernel = "fleet_64boards";
    size = "64 boards x 16 s";
    batch = 1;
    reps = 10;
    smoke_reps = 5;
    prepare =
      (fun () ->
        let cfg =
          Fleet.Sim.config ~policy:Fleet.Rack.Feedback ~max_time:16.0
            ~ginsts:1e3 ~boards:64 ()
        in
        fun () -> ignore (Fleet.Sim.run cfg));
  }

let all_kernels =
  [
    gemm 4;
    gemm 8;
    gemm 16;
    gemm 32;
    gemm 64;
    eig 16;
    eig 32;
    svd 16 8;
    care 4;
    dk_design;
    xu3_epochs;
    controller_step;
    fleet_64boards;
    obs_overhead_off;
    obs_overhead_on;
  ]

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else begin
    let rank = q *. Float.of_int (n - 1) in
    let lo = int_of_float (Float.of_int (int_of_float rank)) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. Float.of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

type measurement = {
  m_kernel : string;
  m_size : string;
  m_reps : int;
  m_batch : int;
  m_median_s : float;
  m_p90_s : float;
}

let run_spec ~smoke spec =
  let reps = if smoke then spec.smoke_reps else spec.reps in
  let warmup = max 1 (reps / 5) in
  let f = spec.prepare () in
  for _ = 1 to warmup * spec.batch do
    f ()
  done;
  let hist = Obs.Metrics.histogram ("micro." ^ spec.kernel) in
  let samples =
    Array.init reps (fun _ ->
        let t0 = Obs.Collector.now () in
        for _ = 1 to spec.batch do
          f ()
        done;
        let per_invocation =
          (Obs.Collector.now () -. t0) /. Float.of_int spec.batch
        in
        Obs.Metrics.observe hist per_invocation;
        per_invocation)
  in
  Array.sort Float.compare samples;
  {
    m_kernel = spec.kernel;
    m_size = spec.size;
    m_reps = reps;
    m_batch = spec.batch;
    m_median_s = percentile samples 0.5;
    m_p90_s = percentile samples 0.9;
  }

let json_of_measurement m =
  Obs.Json.Obj
    [
      ("kernel", Obs.Json.String m.m_kernel);
      ("size", Obs.Json.String m.m_size);
      ("reps", Obs.Json.Int m.m_reps);
      ("batch", Obs.Json.Int m.m_batch);
      ("median_s", Obs.Json.Float m.m_median_s);
      ("p90_s", Obs.Json.Float m.m_p90_s);
    ]

let pretty_time s =
  if s < 1e-6 then Printf.sprintf "%8.1f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%8.2f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%8.2f ms" (s *. 1e3)
  else Printf.sprintf "%8.3f s " s

let main args =
  let smoke = ref false in
  let json_path = ref "BENCH_micro.json" in
  let filters = ref [] in
  let rec parse = function
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--json" :: path :: rest ->
      json_path := path;
      parse rest
    | [ "--json" ] ->
      prerr_endline "bench micro: missing value after --json";
      exit 2
    | name :: rest ->
      filters := name :: !filters;
      parse rest
    | [] -> ()
  in
  parse args;
  let selected =
    match !filters with
    | [] -> all_kernels
    | names ->
      let matches s =
        List.exists
          (fun n ->
            (* Substring match so "gemm" selects every gemm size. *)
            let ls = String.length s.kernel and ln = String.length n in
            let rec scan i =
              i + ln <= ls && (String.sub s.kernel i ln = n || scan (i + 1))
            in
            scan 0)
          names
      in
      List.filter matches all_kernels
  in
  if selected = [] then begin
    Printf.eprintf "bench micro: no kernel matches %s\n"
      (String.concat ", " !filters);
    exit 2
  end;
  Printf.printf "%-18s %-22s %5s %12s %12s\n" "kernel" "size" "reps"
    "median" "p90";
  let results =
    List.map
      (fun spec ->
        let m = run_spec ~smoke:!smoke spec in
        Printf.printf "%-18s %-22s %5d %12s %12s\n%!" m.m_kernel m.m_size
          m.m_reps (pretty_time m.m_median_s) (pretty_time m.m_p90_s);
        m)
      selected
  in
  (* obs_overhead_on leaves the collector enabled on a null sink;
     restore the default disabled state whatever subset ran. *)
  Obs.Collector.disable ();
  Obs.Collector.buffer_sink ();
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "yukta.bench-micro/v1");
        ("smoke", Obs.Json.Bool !smoke);
        ( "kernels",
          Obs.Json.List (List.map json_of_measurement results) );
      ]
  in
  let oc = open_out !json_path in
  output_string oc (Obs.Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" !json_path
