(* The design-space exploration farm: `bench sweep`.

     dune exec bench/main.exe -- sweep --smoke -j 2 --json OUT
     dune exec bench/main.exe -- sweep --points 64 --seed 7 -j 8
     dune exec bench/main.exe -- sweep --smoke --shard 1/2 --json S1
     dune exec bench/main.exe -- sweep --merge S1 S2 --json OUT

   Each point of the sampled grid synthesizes its controllers (through
   .yukta_cache/) and runs a short probe; results stream into a Pareto
   frontier over (mu peak, E x D, controller MACs). The --json document
   ("yukta.bench-sweep/v1") keeps the deterministic frontier separate
   from wall-clock metadata; schema in BENCHMARKS.md, architecture in
   DESIGN.md section 14. *)

let usage () =
  prerr_endline
    "usage: bench sweep [--smoke] [-j N] [--json OUT] [--points N] [--seed N]\n\
    \                   [--shard I/N] [--dir DIR]\n\
    \       bench sweep --merge FILE... [--json OUT]";
  2

let read_doc path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Obs.Json.of_string s with
  | doc -> doc
  | exception Obs.Json.Parse_error msg ->
    Printf.eprintf "bench sweep: %s: %s\n" path msg;
    exit 2

let write_doc path doc =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let merge_main files json_path =
  if files = [] then exit (usage ());
  let docs = List.map read_doc files in
  let merged =
    match Sweep.Run.merge docs with
    | doc -> doc
    | exception Invalid_argument msg ->
      Printf.eprintf "bench sweep: %s\n" msg;
      exit 2
  in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "yukta.bench-sweep/v1");
        ("merged_shards", Obs.Json.Int (List.length files));
        ("frontier", merged);
      ]
  in
  (match Obs.Json.member "members" merged with
  | Some (Obs.Json.List ms) ->
    Printf.printf "merged %d shard documents: frontier of %d points\n"
      (List.length files) (List.length ms)
  | _ -> ());
  (match json_path with
  | Some path -> write_doc path doc
  | None -> print_endline (Obs.Json.to_string ~pretty:true doc));
  0

let main args =
  let smoke = ref false in
  let jobs = ref 1 in
  let json_path = ref None in
  let points = ref None in
  let seed = ref 42 in
  let shard = ref Sweep.Run.{ index = 1; shards = 1 } in
  let dir = ref ".yukta_sweep" in
  let merge_files = ref None in
  let bad fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
  let int_value flag n k =
    match int_of_string_opt n with
    | Some v when v >= 1 -> k v
    | _ -> bad "bench sweep: %s expects an integer >= 1, got %S" flag n
  in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | ("-j" | "--jobs") :: n :: rest ->
      int_value "-j" n (fun v -> jobs := v);
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--points" :: n :: rest ->
      int_value "--points" n (fun v -> points := Some v);
      parse rest
    | "--seed" :: n :: rest ->
      int_value "--seed" n (fun v -> seed := v);
      parse rest
    | "--shard" :: s :: rest ->
      (match String.split_on_char '/' s with
      | [ i; n ] -> (
        match (int_of_string_opt i, int_of_string_opt n) with
        | Some i, Some n when n >= 1 && i >= 1 && i <= n ->
          shard := Sweep.Run.{ index = i; shards = n }
        | _ -> bad "bench sweep: --shard expects I/N with 1 <= I <= N, got %S" s)
      | _ -> bad "bench sweep: --shard expects I/N, got %S" s);
      parse rest
    | "--dir" :: d :: rest ->
      dir := d;
      parse rest
    | "--merge" :: rest ->
      (* Everything after --merge that is not a flag is a shard document. *)
      let rec files acc = function
        | [] -> List.rev acc
        | "--json" :: path :: rest ->
          json_path := Some path;
          files acc rest
        | [ "--json" ] ->
          prerr_endline "bench sweep: missing value after --json";
          exit 2
        | f :: rest -> files (f :: acc) rest
      in
      merge_files := Some (files [] rest)
    | [ ("-j" | "--jobs" | "--json" | "--points" | "--seed" | "--shard"
        | "--dir") ] ->
      prerr_endline "bench sweep: missing value after last flag";
      exit 2
    | a :: _ ->
      Printf.eprintf "bench sweep: unknown argument %S\n" a;
      exit (usage ())
  in
  parse args;
  match !merge_files with
  | Some files -> merge_main files !json_path
  | None ->
    let space = if !smoke then Sweep.Space.smoke else Sweep.Space.default in
    let probe =
      if !smoke then Sweep.Run.smoke_probe else Sweep.Run.default_probe
    in
    let plan =
      Sweep.Run.plan ~space ~seed:!seed
        ?points:!points ~probe ()
    in
    let pool =
      if !jobs > 1 then Some (Parallel.Pool.create ~jobs:!jobs) else None
    in
    Printf.printf
      "sweep: %d of %d points, seed %d, shard %d/%d, probe %s @ %.0f Ginsts, \
       -j %d\n\
       fingerprint %s, checkpoints under %s/\n\
       %!"
      (Sweep.Run.sample_size plan)
      (Sweep.Space.cardinality space)
      !seed !shard.Sweep.Run.index !shard.Sweep.Run.shards
      plan.Sweep.Run.probe.Sweep.Run.app
      plan.Sweep.Run.probe.Sweep.Run.ginsts !jobs
      (Sweep.Run.fingerprint plan)
      !dir;
    let t0 = Obs.Collector.now () in
    let outcome = Sweep.Run.run ?pool ~dir:!dir ~shard:!shard plan in
    let wall = Obs.Collector.now () -. t0 in
    (match pool with None -> () | Some p -> Parallel.Pool.shutdown p);
    Printf.printf
      "shard %d/%d: %d points (%d resumed, %d evaluated), frontier %d, \
       %.1fs wall (%.1fs synthesis)\n"
      outcome.Sweep.Run.shard.Sweep.Run.index
      outcome.Sweep.Run.shard.Sweep.Run.shards
      outcome.Sweep.Run.shard_points outcome.Sweep.Run.resumed
      outcome.Sweep.Run.evaluated
      (Sweep.Frontier.size outcome.Sweep.Run.frontier)
      wall outcome.Sweep.Run.synth_wall_s;
    List.iter
      (fun (e : Sweep.Frontier.entry) ->
        Printf.printf
          "  #%-3d %-7s d=%.2f w=%.2f b=%.2f e=%.2fs  mu=%.3f ExD=%.1f \
           macs=%d\n"
          e.Sweep.Frontier.point.Sweep.Space.id
          (Sweep.Space.arrangement_name
             e.Sweep.Frontier.point.Sweep.Space.arrangement)
          e.Sweep.Frontier.point.Sweep.Space.delta
          e.Sweep.Frontier.point.Sweep.Space.weight
          e.Sweep.Frontier.point.Sweep.Space.bound
          e.Sweep.Frontier.point.Sweep.Space.epoch e.Sweep.Frontier.mu
          e.Sweep.Frontier.exd e.Sweep.Frontier.macs)
      (Sweep.Frontier.members outcome.Sweep.Run.frontier);
    (match !json_path with
    | None -> ()
    | Some path ->
      write_doc path
        (Sweep.Run.artifact ~smoke:!smoke ~jobs:!jobs ~wall_s:wall outcome));
    0
