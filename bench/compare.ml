(* bench compare: diff two yukta.bench-micro/v1 documents and render a
   verdict — the CI perf-regression gate.

     dune exec bench/main.exe -- compare BASELINE CANDIDATE
     dune exec bench/main.exe -- compare --tolerance 0.25 --json verdict.json a b

   Per kernel, the candidate/baseline ratio of per-invocation medians is
   classified against the tolerance band: within it "ok", above it
   "regression", below it "improved". Kernels present in the baseline
   but absent from the candidate are "missing" (a gate must not pass
   because a kernel silently stopped running); kernels only in the
   candidate are "new". Exit codes: 0 pass, 1 regression or missing
   kernel, 2 usage/IO/schema errors. Verdict schema
   (yukta.bench-compare/v1) in BENCHMARKS.md. *)

let schema = "yukta.bench-micro/v1"

let verdict_schema = "yukta.bench-compare/v1"

type case = {
  kernel : string;
  baseline_s : float option; (* Median per invocation. *)
  candidate_s : float option;
  ratio : float option;
  status : string; (* ok | regression | improved | missing | new *)
}

let usage () =
  prerr_endline
    "usage: bench compare [--tolerance T] [--json OUT] BASELINE CANDIDATE"

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("bench compare: " ^ s); exit 2) fmt

(* Kernel -> median list from a bench-micro document, in document order. *)
let load path =
  let text =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> fail "%s" msg
  in
  let json =
    match Obs.Json.of_string text with
    | j -> j
    | exception Obs.Json.Parse_error msg -> fail "%s: %s" path msg
  in
  (match Option.bind (Obs.Json.member "schema" json) Obs.Json.to_string_opt with
  | Some s when s = schema -> ()
  | Some s -> fail "%s: schema %S, expected %S" path s schema
  | None -> fail "%s: missing \"schema\" field" path);
  let kernels =
    match Option.bind (Obs.Json.member "kernels" json) Obs.Json.to_list_opt with
    | Some l -> l
    | None -> fail "%s: missing \"kernels\" list" path
  in
  List.filter_map
    (fun k ->
      match
        ( Option.bind (Obs.Json.member "kernel" k) Obs.Json.to_string_opt,
          Option.bind (Obs.Json.member "median_s" k) Obs.Json.to_float_opt )
      with
      | Some name, Some median -> Some (name, median)
      | _ -> fail "%s: kernel entry lacks \"kernel\"/\"median_s\"" path)
    kernels

let classify ~tolerance baseline candidate =
  let base_cases =
    List.map
      (fun (kernel, base) ->
        match List.assoc_opt kernel candidate with
        | None ->
          {
            kernel;
            baseline_s = Some base;
            candidate_s = None;
            ratio = None;
            status = "missing";
          }
        | Some cand ->
          let ratio = cand /. base in
          let status =
            if ratio > 1.0 +. tolerance then "regression"
            else if ratio < 1.0 -. tolerance then "improved"
            else "ok"
          in
          {
            kernel;
            baseline_s = Some base;
            candidate_s = Some cand;
            ratio = Some ratio;
            status;
          })
      baseline
  in
  let new_cases =
    List.filter_map
      (fun (kernel, cand) ->
        if List.mem_assoc kernel baseline then None
        else
          Some
            {
              kernel;
              baseline_s = None;
              candidate_s = Some cand;
              ratio = None;
              status = "new";
            })
      candidate
  in
  base_cases @ new_cases

let float_opt = function
  | Some f -> Obs.Json.Float f
  | None -> Obs.Json.Null

let case_json c =
  Obs.Json.Obj
    [
      ("kernel", Obs.Json.String c.kernel);
      ("baseline_median_s", float_opt c.baseline_s);
      ("candidate_median_s", float_opt c.candidate_s);
      ("ratio", float_opt c.ratio);
      ("status", Obs.Json.String c.status);
    ]

let count status cases =
  List.length (List.filter (fun c -> c.status = status) cases)

let pretty_time = function
  | None -> "        -"
  | Some s ->
    if s < 1e-6 then Printf.sprintf "%7.1f ns" (s *. 1e9)
    else if s < 1e-3 then Printf.sprintf "%7.2f us" (s *. 1e6)
    else if s < 1.0 then Printf.sprintf "%7.2f ms" (s *. 1e3)
    else Printf.sprintf "%7.3f s " s

let main args =
  let tolerance = ref 0.25 in
  let json_out = ref None in
  let positional = ref [] in
  let rec parse = function
    | "--tolerance" :: t :: rest -> (
      match float_of_string_opt t with
      | Some t when t > 0.0 ->
        tolerance := t;
        parse rest
      | _ -> fail "--tolerance expects a positive number, got %S" t)
    | "--json" :: path :: rest ->
      json_out := Some path;
      parse rest
    | [ ("--tolerance" | "--json") ] -> fail "missing value after last flag"
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | a :: rest ->
      positional := a :: !positional;
      parse rest
    | [] -> ()
  in
  parse args;
  let base_path, cand_path =
    match List.rev !positional with
    | [ b; c ] -> (b, c)
    | _ ->
      usage ();
      exit 2
  in
  let cases =
    classify ~tolerance:!tolerance (load base_path) (load cand_path)
  in
  let regressions = count "regression" cases in
  let missing = count "missing" cases in
  let pass = regressions = 0 && missing = 0 in
  Printf.printf "%-20s %10s %10s %8s  %s\n" "kernel" "baseline" "candidate"
    "ratio" "status";
  List.iter
    (fun c ->
      Printf.printf "%-20s %10s %10s %8s  %s\n" c.kernel
        (pretty_time c.baseline_s)
        (pretty_time c.candidate_s)
        (match c.ratio with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-")
        c.status)
    cases;
  Printf.printf "\n%s: %d kernels, %d regression(s), %d missing, %d new \
                 (tolerance %.0f%%)\n"
    (if pass then "PASS" else "FAIL")
    (List.length cases) regressions missing (count "new" cases)
    (100.0 *. !tolerance);
  (match !json_out with
  | None -> ()
  | Some path ->
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.String verdict_schema);
          ("baseline", Obs.Json.String base_path);
          ("candidate", Obs.Json.String cand_path);
          ("tolerance", Obs.Json.Float !tolerance);
          ("pass", Obs.Json.Bool pass);
          ("regressions", Obs.Json.Int regressions);
          ("missing", Obs.Json.Int missing);
          ("new", Obs.Json.Int (count "new" cases));
          ("kernels", Obs.Json.List (List.map case_json cases));
        ]
    in
    let oc = open_out path in
    output_string oc (Obs.Json.to_string ~pretty:true doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" path);
  if pass then 0 else 1
