(* Full-precision metrics for every registered scheme on a fixed short
   workload.

   The output is meant to be diffed across refactors of the runtime: any
   change in a scheme's stepping order, optimizer cadence, or signal
   wiring shows up as a bit-level difference in these numbers.

     dune exec bin/parity.exe            -- every scheme
     dune exec bin/parity.exe -- mcf     -- another workload *)

let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "blackscholes" in
  let w = Board.Workload.scale ~ginsts:150.0 (Board.Workload.by_name app) in
  List.iter
    (fun (scheme : Yukta.Schemes.info) ->
      let r = Yukta.Schemes.run ~max_time:1000.0 scheme [ w ] in
      let m = r.Yukta.Stack.metrics in
      Printf.printf "%-28s time=%.17g energy=%.17g exd=%.17g trips=%d done=%b\n%!"
        scheme.Yukta.Schemes.name m.Board.Xu3.execution_time
        m.Board.Xu3.total_energy m.Board.Xu3.energy_delay m.Board.Xu3.trips
        r.Yukta.Stack.completed)
    Yukta.Schemes.all
