(* Command-line driver for the Yukta reproduction.

     yukta_cli apps                      list workloads
     yukta_cli schemes                   list registered schemes
     yukta_cli run -s yukta -a mcf       run a scheme on a workload
     yukta_cli run -s three-layer        run the 3-layer demo stack
     yukta_cli run -s yukta -s coord -j 2  two schemes on a domain pool
     yukta_cli run --jsonl out.jsonl ... run with the Obs collector on
     yukta_cli run --health ...          append controller-health tables
     yukta_cli run --recorder 64 ...     flight recorder (dump on trip)
     yukta_cli csv -s coord -a x264      CSV trace to stdout
     yukta_cli trace out.jsonl           summarize an Obs JSONL trace
     yukta_cli trace --counters f.jsonl  also counters + recorder dumps
     yukta_cli design                    synthesize & describe the designs
     yukta_cli faults                    show a deterministic fault schedule
     yukta_cli faults --run -s yukta     replay it against a scheme
     yukta_cli fleet --boards 256 -j 4   rack-capped fleet run
     yukta_cli fleet --policy even-split --cap 1.2  the static baseline *)

open Cmdliner
open Yukta

(* Scheme names come from the registry: canonical keys, their aliases,
   and (case-insensitively) abbreviations and display names all parse. *)
let scheme_conv =
  let parse s =
    match Schemes.find s with
    | Some info -> Ok info
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown scheme %S (one of: %s)" s
              (String.concat ", "
                 (List.map (fun (i : Schemes.info) -> i.Schemes.key) Schemes.all))))
  in
  let print fmt (i : Schemes.info) = Format.pp_print_string fmt i.Schemes.key in
  Arg.conv (parse, print)

let workloads_of_name name =
  match List.assoc_opt name Board.Workload.mixes with
  | Some jobs -> jobs
  | None -> [ Board.Workload.by_name name ]

let app_arg =
  let doc = "Workload: a PARSEC/SPEC name (see `apps`) or a mix (blmc, ...)." in
  Arg.(value & opt string "blackscholes" & info [ "a"; "app" ] ~docv:"APP" ~doc)

let scheme_arg =
  let doc = "Controller scheme (see `schemes`)." in
  Arg.(
    value
    & opt scheme_conv (Schemes.find_exn "yukta")
    & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let apps_cmd =
  let run () =
    print_endline "evaluation suite:";
    List.iter
      (fun w ->
        Printf.printf "  %-14s %6.0f Ginst, up to %d threads\n"
          w.Board.Workload.name
          (Board.Workload.total_ginsts w)
          (Board.Workload.max_threads w))
      Board.Workload.evaluation_suite;
    print_endline "heterogeneous mixes: blmc, stga, blst, mcga";
    print_endline
      "training set: swaptions, vips, astar, perlbench, milc, namd"
  in
  Cmd.v (Cmd.info "apps" ~doc:"List workloads") Term.(const run $ const ())

let schemes_cmd =
  let run () =
    List.iter
      (fun (i : Schemes.info) ->
        Printf.printf "  %-12s %-14s [%s] %s\n" i.Schemes.key i.Schemes.abbrev
          (String.concat ">" i.Schemes.layers)
          i.Schemes.description;
        Printf.printf "  %-12s %s%s\n" "" i.Schemes.citation
          (match i.Schemes.aliases with
          | [] -> ""
          | a -> "; aliases: " ^ String.concat ", " a))
      Schemes.all
  in
  Cmd.v (Cmd.info "schemes" ~doc:"List registered schemes")
    Term.(const run $ const ())

let jsonl_arg =
  let doc =
    "Enable the Obs collector for the run and write the JSONL trace \
     (spans, events, metric dumps) to $(docv). Summarize it afterwards \
     with `yukta_cli trace $(docv)`."
  in
  Arg.(
    value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Evaluate the schemes on $(docv) parallel domains (default 1: \
     serial). Results print in scheme order either way, byte-identical \
     to the serial run; with a single -s the flag has no effect."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let schemes_arg =
  let doc =
    "Controller scheme (see `schemes`). Repeatable: each -s adds a \
     scheme to evaluate on the same workload."
  in
  Arg.(value & opt_all scheme_conv [] & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let health_arg =
  let doc =
    "Print each scheme's controller-health summary (per-layer tracking \
     error and saturation duty, guardband channels, trips) after its \
     metrics."
  in
  Arg.(value & flag & info [ "health" ] ~doc)

let recorder_arg =
  let doc =
    "Enable the flight recorder with a $(docv)-event window: emergency \
     trips and fault injections dump the preceding event window (into \
     the --jsonl trace when given), and the dump count is reported."
  in
  Arg.(value & opt (some int) None & info [ "recorder" ] ~docv:"N" ~doc)

let run_cmd =
  let print_result ~banner ~health ((scheme : Schemes.info), (r : Stack.result))
      =
    if banner then
      Printf.printf "\n== %s (%s) ==\n" scheme.Schemes.name
        (String.concat ">" scheme.Schemes.layers);
    let m = r.Stack.metrics in
    Printf.printf "completed: %b\n" r.Stack.completed;
    Printf.printf "execution time: %.1f s\n" m.Board.Xu3.execution_time;
    Printf.printf "energy:         %.1f J\n" m.Board.Xu3.total_energy;
    Printf.printf "E x D:          %.0f J.s\n" m.Board.Xu3.energy_delay;
    Printf.printf "emergency trips: %d\n" m.Board.Xu3.trips;
    if health then print_string (Obs.Health.render r.Stack.health)
  in
  let run (schemes : Schemes.info list) app jsonl jobs health recorder =
    if jobs < 1 then begin
      prerr_endline "yukta_cli run: -j expects an integer >= 1";
      exit 2
    end;
    (match recorder with
    | None -> ()
    | Some n when n >= 1 ->
      Obs.Recorder.clear ();
      Obs.Recorder.enable ~capacity:n ()
    | Some _ ->
      prerr_endline "yukta_cli run: --recorder expects an integer >= 1";
      exit 2);
    let schemes =
      match schemes with [] -> [ Schemes.find_exn "yukta" ] | l -> l
    in
    let workloads = workloads_of_name app in
    let banner = List.length schemes > 1 in
    let eval (s : Schemes.info) = (s, Schemes.run s workloads) in
    let go () =
      if jobs > 1 && banner then begin
        Printf.printf "running %d schemes on %s (%d jobs)...\n%!"
          (List.length schemes) app jobs;
        Parallel.Pool.with_pool ~jobs (fun pool ->
            (* Single-force before fan-out: warm the design memos. *)
            List.iter (fun s -> ignore (Schemes.stack s)) schemes;
            Experiment.map_cells ~pool eval schemes)
        |> List.iter (print_result ~banner ~health)
      end
      else
        List.iter
          (fun (s : Schemes.info) ->
            Printf.printf "running %s (%s) on %s...\n%!" s.Schemes.name
              (String.concat ">" s.Schemes.layers)
              app;
            print_result ~banner ~health (eval s))
          schemes
    in
    (match jsonl with
    | None -> go ()
    | Some file -> Obs.Collector.with_collection ~file go);
    if recorder <> None then begin
      Printf.printf "recorder dumps: %d\n" (Obs.Recorder.dump_count ());
      Obs.Recorder.disable ()
    end;
    match jsonl with
    | Some file -> Printf.printf "trace written to %s\n" file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one or more schemes (-s, repeatable) on one workload; -j N \
          evaluates them in parallel")
    Term.(
      const run $ schemes_arg $ app_arg $ jsonl_arg $ jobs_arg $ health_arg
      $ recorder_arg)

let csv_cmd =
  let run scheme app =
    let workloads = workloads_of_name app in
    let r = Schemes.run ~collect_trace:true scheme workloads in
    print_endline
      "time_s,power_big_w,power_big_sensor_w,power_little_w,bips,temp_c,freq_big_ghz,big_cores";
    Array.iter
      (fun (p : Stack.trace_point) ->
        Printf.printf "%.1f,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f,%d\n" p.Stack.time
          p.Stack.power_big p.Stack.power_big_sensor p.Stack.power_little
          p.Stack.bips p.Stack.temperature p.Stack.freq_big
          p.Stack.big_cores)
      r.Stack.trace
  in
  Cmd.v
    (Cmd.info "csv" ~doc:"Run one scheme and print a CSV trace to stdout")
    Term.(const run $ scheme_arg $ app_arg)

let trace_cmd =
  let file_arg =
    let doc = "JSONL trace file produced by `run --jsonl` or bench." in
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc)
  in
  let counters_arg =
    let doc =
      "Also list final counter values and one line per flight-recorder \
       dump (simulated time, reason, window size)."
    in
    Arg.(value & flag & info [ "counters" ] ~doc)
  in
  let run file counters =
    match Obs.Trace.read_file file with
    | entries ->
      print_string (Obs.Trace.render ~counters (Obs.Trace.summarize entries))
    | exception Obs.Trace.Bad_trace msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Summarize an Obs JSONL trace (span timings, event counts)")
    Term.(const run $ file_arg $ counters_arg)

let design_cmd =
  let run () =
    Printf.printf "synthesizing (cached under .yukta_cache)...\n%!";
    let describe name (syn : Design.synthesis) =
      let c = Controller.cost syn.Design.controller in
      Printf.printf
        "%s: %d states, %d inputs, %d outputs+externals; mu peak %.3f, gamma %.3f\n"
        name c.Controller.states c.Controller.inputs
        c.Controller.outputs_and_externals syn.Design.mu_peak syn.Design.gamma
    in
    describe "hardware layer" (Designs.hw ());
    describe "software layer" (Designs.sw ())
  in
  Cmd.v
    (Cmd.info "design" ~doc:"Synthesize and describe the default controllers")
    Term.(const run $ const ())

let faults_cmd =
  let seed_arg =
    let doc = "Schedule seed: same seed, same schedule." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let out_arg =
    let doc =
      "Draw the out-of-guardband profile (plant drifts leave the \
       certified uncertainty ball) instead of the in-guardband one."
    in
    Arg.(value & flag & info [ "out-of-guardband"; "out" ] ~doc)
  in
  let horizon_arg =
    let doc = "Campaign horizon in simulated seconds." in
    Arg.(value & opt float 120.0 & info [ "horizon" ] ~docv:"S" ~doc)
  in
  let count_arg =
    let doc = "Number of faults drawn." in
    Arg.(value & opt int 6 & info [ "count" ] ~docv:"N" ~doc)
  in
  let run_arg =
    let doc =
      "Also replay the schedule against the selected scheme (-s) and \
       workload (-a): one clean run, one faulted run, and the \
       degradation between them."
    in
    Arg.(value & flag & info [ "run" ] ~doc)
  in
  let run seed out horizon count do_run (scheme : Schemes.info) app =
    let profile =
      if out then Fault.Schedule.out_of_guardband ~horizon ~count ()
      else Fault.Schedule.in_guardband ~horizon ~count ()
    in
    let schedule = Fault.Schedule.generate ~seed profile in
    Printf.printf "%s schedule (seed %d, %d faults over %.0f s):\n"
      profile.Fault.Schedule.label seed count horizon;
    List.iter
      (fun f -> Printf.printf "  %s\n" (Fault.Spec.describe f))
      schedule;
    if do_run then begin
      let workloads = workloads_of_name app in
      Printf.printf "\nreplaying against %s on %s...\n%!"
        scheme.Schemes.name app;
      match
        Fault.Campaign.run ~schemes:[ scheme ] ~workloads schedule
      with
      | [] -> ()
      | o :: _ ->
        let open Fault.Campaign in
        Printf.printf "clean   E x D: %10.1f J.s   trips: %d\n"
          o.clean.Board.Xu3.energy_delay o.clean.Board.Xu3.trips;
        Printf.printf "faulted E x D: %10.1f J.s   trips: %d\n"
          o.faulted.Board.Xu3.energy_delay o.faulted.Board.Xu3.trips;
        Printf.printf "inflation: x%.3f   extra trips: %d   survived: %b\n"
          o.exd_inflation o.extra_trips o.survived;
        Printf.printf "faults injected: %d   recovery: %s\n" o.injections
          (match o.recovery_s with
          | Some s -> Printf.sprintf "%.1f s after last clear" s
          | None -> "never")
    end
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Show a deterministic fault schedule; with --run, replay it \
          against a scheme and report degradation")
    Term.(
      const run $ seed_arg $ out_arg $ horizon_arg $ count_arg $ run_arg
      $ scheme_arg $ app_arg)

let fleet_cmd =
  let policy_conv =
    let parse s =
      match Fleet.Rack.policy_of_string s with
      | Some p -> Ok p
      | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown policy %S (even-split, proportional, feedback)" s))
    in
    let print fmt p = Format.pp_print_string fmt (Fleet.Rack.policy_name p) in
    Arg.conv (parse, print)
  in
  let boards_arg =
    let doc = "Number of boards in the fleet." in
    Arg.(value & opt int 64 & info [ "boards" ] ~docv:"N" ~doc)
  in
  let cap_arg =
    let doc =
      "Shared rack budget per board, watts (the rack apportions \
       $(docv) x boards over the fleet; the uncapped per-board budget \
       is 3.63 W)."
    in
    Arg.(value & opt (some float) None & info [ "cap" ] ~docv:"W" ~doc)
  in
  let policy_arg =
    let doc = "Rack apportionment policy: even-split, proportional or feedback." in
    Arg.(
      value
      & opt policy_conv Fleet.Rack.Feedback
      & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)
  in
  let seed_arg =
    let doc = "Fleet seed; per-board seeds derive deterministically." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let fleet_scheme_arg =
    let doc = "Per-board controller scheme (see `schemes`)." in
    Arg.(
      value
      & opt scheme_conv (Schemes.find_exn "coord")
      & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let run boards cap policy (scheme : Schemes.info) seed jobs =
    if jobs < 1 then begin
      prerr_endline "yukta_cli fleet: -j expects an integer >= 1";
      exit 2
    end;
    let cfg =
      match
        Fleet.Sim.config ?cap_per_board:cap ~policy ~scheme:scheme.Schemes.key
          ~seed ~boards ()
      with
      | cfg -> cfg
      | exception Invalid_argument msg ->
        prerr_endline ("yukta_cli fleet: " ^ msg);
        exit 2
    in
    Printf.printf
      "fleet: %d boards x %s, budget %.1f W (%.2f W/board), %s policy, seed %d...\n%!"
      boards scheme.Schemes.key cfg.Fleet.Sim.cap
      (cfg.Fleet.Sim.cap /. float_of_int boards)
      (Fleet.Rack.policy_name policy)
      seed;
    let r =
      if jobs > 1 then
        Parallel.Pool.with_pool ~jobs (fun pool -> Fleet.Sim.run ~pool cfg)
      else Fleet.Sim.run cfg
    in
    Printf.printf "rack epochs:    %d (%.0f s each)\n" r.Fleet.Sim.rack_epochs
      cfg.Fleet.Sim.rack_epoch;
    Printf.printf "board epochs:   %d\n" r.Fleet.Sim.board_epochs;
    Printf.printf "completed:      %d/%d boards\n" r.Fleet.Sim.completed boards;
    Printf.printf "makespan:       %.1f s\n" r.Fleet.Sim.makespan;
    Printf.printf "fleet energy:   %.1f J\n" r.Fleet.Sim.energy;
    Printf.printf "fleet E x D:    %.0f J.s\n" r.Fleet.Sim.exd;
    Printf.printf "over budget:    %.1f s\n" r.Fleet.Sim.cap_violation_s;
    Printf.printf "emergency trips: %d\n" r.Fleet.Sim.trips
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run N boards under one shared rack power budget; the rack \
          policy re-apportions per-board caps each rack epoch")
    Term.(
      const run $ boards_arg $ cap_arg $ policy_arg $ fleet_scheme_arg
      $ seed_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "yukta_cli" ~version:"1.0"
      ~doc:"Multilayer SSV resource control on a simulated big.LITTLE board"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            apps_cmd;
            schemes_cmd;
            run_cmd;
            csv_cmd;
            trace_cmd;
            design_cmd;
            faults_cmd;
            fleet_cmd;
          ]))
