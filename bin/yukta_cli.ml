(* Command-line driver for the Yukta reproduction.

     yukta_cli apps                      list workloads
     yukta_cli schemes                   list registered schemes
     yukta_cli run -s yukta -a mcf       run a scheme on a workload
     yukta_cli run -s three-layer        run the 3-layer demo stack
     yukta_cli run -s yukta -s coord -j 2  two schemes on a domain pool
     yukta_cli run --jsonl out.jsonl ... run with the Obs collector on
     yukta_cli run --health ...          append controller-health tables
     yukta_cli run --recorder 64 ...     flight recorder (dump on trip)
     yukta_cli csv -s coord -a x264      CSV trace to stdout
     yukta_cli trace out.jsonl           summarize an Obs JSONL trace
     yukta_cli trace --counters f.jsonl  also counters + recorder dumps
     yukta_cli design                    synthesize & describe the designs
     yukta_cli faults                    show a deterministic fault schedule
     yukta_cli faults --run -s yukta     replay it against a scheme
     yukta_cli fleet --boards 256 -j 4   rack-capped fleet run
     yukta_cli fleet --policy even-split --cap 1.2  the static baseline
     yukta_cli trace -f out.jsonl        tail a live trace (poll+seek)
     yukta_cli cache                     list the on-disk design cache
     yukta_cli cache --clear             wipe it
     yukta_cli serve --port 7077         NDJSON session server
     yukta_cli serve --socket y.sock --once   CI smoke mode *)

open Cmdliner
open Yukta

(* Scheme names come from the registry: canonical keys, their aliases,
   and (case-insensitively) abbreviations and display names all parse. *)
let scheme_conv =
  let parse s =
    match Schemes.find s with
    | Some info -> Ok info
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown scheme %S (one of: %s)" s
              (String.concat ", "
                 (List.map (fun (i : Schemes.info) -> i.Schemes.key) Schemes.all))))
  in
  let print fmt (i : Schemes.info) = Format.pp_print_string fmt i.Schemes.key in
  Arg.conv (parse, print)

let workloads_of_name name =
  match List.assoc_opt name Board.Workload.mixes with
  | Some jobs -> jobs
  | None -> [ Board.Workload.by_name name ]

let app_arg =
  let doc = "Workload: a PARSEC/SPEC name (see `apps`) or a mix (blmc, ...)." in
  Arg.(value & opt string "blackscholes" & info [ "a"; "app" ] ~docv:"APP" ~doc)

let scheme_arg =
  let doc = "Controller scheme (see `schemes`)." in
  Arg.(
    value
    & opt scheme_conv (Schemes.find_exn "yukta")
    & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let apps_cmd =
  let run () =
    print_endline "evaluation suite:";
    List.iter
      (fun w ->
        Printf.printf "  %-14s %6.0f Ginst, up to %d threads\n"
          w.Board.Workload.name
          (Board.Workload.total_ginsts w)
          (Board.Workload.max_threads w))
      Board.Workload.evaluation_suite;
    print_endline "heterogeneous mixes: blmc, stga, blst, mcga";
    print_endline
      "training set: swaptions, vips, astar, perlbench, milc, namd"
  in
  Cmd.v (Cmd.info "apps" ~doc:"List workloads") Term.(const run $ const ())

let schemes_cmd =
  let run () =
    List.iter
      (fun (i : Schemes.info) ->
        Printf.printf "  %-12s %-14s [%s] %s\n" i.Schemes.key i.Schemes.abbrev
          (String.concat ">" i.Schemes.layers)
          i.Schemes.description;
        Printf.printf "  %-12s %s%s\n" "" i.Schemes.citation
          (match i.Schemes.aliases with
          | [] -> ""
          | a -> "; aliases: " ^ String.concat ", " a))
      Schemes.all
  in
  Cmd.v (Cmd.info "schemes" ~doc:"List registered schemes")
    Term.(const run $ const ())

let jsonl_arg =
  let doc =
    "Enable the Obs collector for the run and write the JSONL trace \
     (spans, events, metric dumps) to $(docv). Summarize it afterwards \
     with `yukta_cli trace $(docv)`."
  in
  Arg.(
    value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Evaluate the schemes on $(docv) parallel domains (default 1: \
     serial). Results print in scheme order either way, byte-identical \
     to the serial run; with a single -s the flag has no effect."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let schemes_arg =
  let doc =
    "Controller scheme (see `schemes`). Repeatable: each -s adds a \
     scheme to evaluate on the same workload."
  in
  Arg.(value & opt_all scheme_conv [] & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let health_arg =
  let doc =
    "Print each scheme's controller-health summary (per-layer tracking \
     error and saturation duty, guardband channels, trips) after its \
     metrics."
  in
  Arg.(value & flag & info [ "health" ] ~doc)

let recorder_arg =
  let doc =
    "Enable the flight recorder with a $(docv)-event window: emergency \
     trips and fault injections dump the preceding event window (into \
     the --jsonl trace when given), and the dump count is reported."
  in
  Arg.(value & opt (some int) None & info [ "recorder" ] ~docv:"N" ~doc)

let run_cmd =
  let print_result ~banner ~health ((scheme : Schemes.info), (r : Stack.result))
      =
    if banner then
      Printf.printf "\n== %s (%s) ==\n" scheme.Schemes.name
        (String.concat ">" scheme.Schemes.layers);
    let m = r.Stack.metrics in
    Printf.printf "completed: %b\n" r.Stack.completed;
    Printf.printf "execution time: %.1f s\n" m.Board.Xu3.execution_time;
    Printf.printf "energy:         %.1f J\n" m.Board.Xu3.total_energy;
    Printf.printf "E x D:          %.0f J.s\n" m.Board.Xu3.energy_delay;
    Printf.printf "emergency trips: %d\n" m.Board.Xu3.trips;
    if health then print_string (Obs.Health.render r.Stack.health)
  in
  let run (schemes : Schemes.info list) app jsonl jobs health recorder =
    if jobs < 1 then begin
      prerr_endline "yukta_cli run: -j expects an integer >= 1";
      exit 2
    end;
    (match recorder with
    | None -> ()
    | Some n when n >= 1 ->
      Obs.Recorder.clear ();
      Obs.Recorder.enable ~capacity:n ()
    | Some _ ->
      prerr_endline "yukta_cli run: --recorder expects an integer >= 1";
      exit 2);
    let schemes =
      match schemes with [] -> [ Schemes.find_exn "yukta" ] | l -> l
    in
    let workloads = workloads_of_name app in
    let banner = List.length schemes > 1 in
    let eval (s : Schemes.info) = (s, Schemes.run s workloads) in
    let go () =
      if jobs > 1 && banner then begin
        Printf.printf "running %d schemes on %s (%d jobs)...\n%!"
          (List.length schemes) app jobs;
        Parallel.Pool.with_pool ~jobs (fun pool ->
            (* Single-force before fan-out: warm the design memos. *)
            List.iter (fun s -> ignore (Schemes.stack s)) schemes;
            Experiment.map_cells ~pool eval schemes)
        |> List.iter (print_result ~banner ~health)
      end
      else
        List.iter
          (fun (s : Schemes.info) ->
            Printf.printf "running %s (%s) on %s...\n%!" s.Schemes.name
              (String.concat ">" s.Schemes.layers)
              app;
            print_result ~banner ~health (eval s))
          schemes
    in
    (match jsonl with
    | None -> go ()
    | Some file -> Obs.Collector.with_collection ~file go);
    if recorder <> None then begin
      Printf.printf "recorder dumps: %d\n" (Obs.Recorder.dump_count ());
      Obs.Recorder.disable ()
    end;
    match jsonl with
    | Some file -> Printf.printf "trace written to %s\n" file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one or more schemes (-s, repeatable) on one workload; -j N \
          evaluates them in parallel")
    Term.(
      const run $ schemes_arg $ app_arg $ jsonl_arg $ jobs_arg $ health_arg
      $ recorder_arg)

let csv_cmd =
  let run scheme app =
    let workloads = workloads_of_name app in
    let r = Schemes.run ~collect_trace:true scheme workloads in
    print_endline
      "time_s,power_big_w,power_big_sensor_w,power_little_w,bips,temp_c,freq_big_ghz,big_cores";
    Array.iter
      (fun (p : Stack.trace_point) ->
        Printf.printf "%.1f,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f,%d\n" p.Stack.time
          p.Stack.power_big p.Stack.power_big_sensor p.Stack.power_little
          p.Stack.bips p.Stack.temperature p.Stack.freq_big
          p.Stack.big_cores)
      r.Stack.trace
  in
  Cmd.v
    (Cmd.info "csv" ~doc:"Run one scheme and print a CSV trace to stdout")
    Term.(const run $ scheme_arg $ app_arg)

(* trace --follow: a poll+seek tail. New complete lines are printed as
   the producer appends them; partial trailing lines wait in the buffer
   until their newline arrives. Truncation rewinds to the start. *)
let follow_file file ~poll ~idle_exit =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let buf = Buffer.create 4096 in
      let pos = ref 0 in
      let idle = ref 0.0 in
      let stop = ref false in
      while not !stop do
        let size = (Unix.stat file).Unix.st_size in
        if size < !pos then begin
          (* Truncated/rotated: start over. *)
          pos := 0;
          Buffer.clear buf
        end;
        if size > !pos then begin
          seek_in ic !pos;
          Buffer.add_string buf (really_input_string ic (size - !pos));
          pos := size;
          idle := 0.0;
          let data = Buffer.contents buf in
          Buffer.clear buf;
          let parts = String.split_on_char '\n' data in
          let rec emit = function
            | [] -> ()
            | [ rest ] -> Buffer.add_string buf rest
            | line :: tl ->
              print_endline line;
              emit tl
          in
          emit parts;
          flush stdout
        end
        else begin
          Unix.sleepf poll;
          idle := !idle +. poll;
          match idle_exit with
          | Some limit when !idle >= limit -> stop := true
          | _ -> ()
        end
      done)

let trace_cmd =
  let file_arg =
    let doc = "JSONL trace file produced by `run --jsonl` or bench." in
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc)
  in
  let counters_arg =
    let doc =
      "Also list final counter values and one line per flight-recorder \
       dump (simulated time, reason, window size)."
    in
    Arg.(value & flag & info [ "counters" ] ~doc)
  in
  let follow_arg =
    let doc =
      "Tail mode: print new trace lines as they are appended (poll + \
       seek) instead of summarizing. Interrupt to stop."
    in
    Arg.(value & flag & info [ "f"; "follow" ] ~doc)
  in
  let poll_arg =
    let doc = "Polling interval for --follow, seconds." in
    Arg.(value & opt float 0.2 & info [ "poll" ] ~docv:"S" ~doc)
  in
  let idle_exit_arg =
    let doc =
      "With --follow, exit once the file has been quiet for $(docv) \
       seconds (default: follow forever)."
    in
    Arg.(value & opt (some float) None & info [ "idle-exit" ] ~docv:"S" ~doc)
  in
  let run file counters follow poll idle_exit =
    if follow then begin
      if poll <= 0.0 then begin
        prerr_endline "yukta_cli trace: --poll expects a positive interval";
        exit 2
      end;
      match follow_file file ~poll ~idle_exit with
      | () -> ()
      | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "%s: %s\n" file (Unix.error_message e);
        exit 1
    end
    else
      match Obs.Trace.read_file file with
      | entries ->
        print_string (Obs.Trace.render ~counters (Obs.Trace.summarize entries))
      | exception Obs.Trace.Bad_trace msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Summarize an Obs JSONL trace (span timings, event counts), or \
          tail it live with --follow")
    Term.(
      const run $ file_arg $ counters_arg $ follow_arg $ poll_arg
      $ idle_exit_arg)

let design_cmd =
  let run () =
    Printf.printf "synthesizing (cached under .yukta_cache)...\n%!";
    let describe name (syn : Design.synthesis) =
      let c = Controller.cost syn.Design.controller in
      Printf.printf
        "%s: %d states, %d inputs, %d outputs+externals; mu peak %.3f, gamma %.3f\n"
        name c.Controller.states c.Controller.inputs
        c.Controller.outputs_and_externals syn.Design.mu_peak syn.Design.gamma
    in
    describe "hardware layer" (Designs.hw ());
    describe "software layer" (Designs.sw ())
  in
  Cmd.v
    (Cmd.info "design" ~doc:"Synthesize and describe the default controllers")
    Term.(const run $ const ())

let faults_cmd =
  let seed_arg =
    let doc = "Schedule seed: same seed, same schedule." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let out_arg =
    let doc =
      "Draw the out-of-guardband profile (plant drifts leave the \
       certified uncertainty ball) instead of the in-guardband one."
    in
    Arg.(value & flag & info [ "out-of-guardband"; "out" ] ~doc)
  in
  let horizon_arg =
    let doc = "Campaign horizon in simulated seconds." in
    Arg.(value & opt float 120.0 & info [ "horizon" ] ~docv:"S" ~doc)
  in
  let count_arg =
    let doc = "Number of faults drawn." in
    Arg.(value & opt int 6 & info [ "count" ] ~docv:"N" ~doc)
  in
  let run_arg =
    let doc =
      "Also replay the schedule against the selected scheme (-s) and \
       workload (-a): one clean run, one faulted run, and the \
       degradation between them."
    in
    Arg.(value & flag & info [ "run" ] ~doc)
  in
  let run seed out horizon count do_run (scheme : Schemes.info) app =
    let profile =
      if out then Fault.Schedule.out_of_guardband ~horizon ~count ()
      else Fault.Schedule.in_guardband ~horizon ~count ()
    in
    let schedule = Fault.Schedule.generate ~seed profile in
    Printf.printf "%s schedule (seed %d, %d faults over %.0f s):\n"
      profile.Fault.Schedule.label seed count horizon;
    List.iter
      (fun f -> Printf.printf "  %s\n" (Fault.Spec.describe f))
      schedule;
    if do_run then begin
      let workloads = workloads_of_name app in
      Printf.printf "\nreplaying against %s on %s...\n%!"
        scheme.Schemes.name app;
      match
        Fault.Campaign.run ~schemes:[ scheme ] ~workloads schedule
      with
      | [] -> ()
      | o :: _ ->
        let open Fault.Campaign in
        Printf.printf "clean   E x D: %10.1f J.s   trips: %d\n"
          o.clean.Board.Xu3.energy_delay o.clean.Board.Xu3.trips;
        Printf.printf "faulted E x D: %10.1f J.s   trips: %d\n"
          o.faulted.Board.Xu3.energy_delay o.faulted.Board.Xu3.trips;
        Printf.printf "inflation: x%.3f   extra trips: %d   survived: %b\n"
          o.exd_inflation o.extra_trips o.survived;
        Printf.printf "faults injected: %d   recovery: %s\n" o.injections
          (match o.recovery_s with
          | Some s -> Printf.sprintf "%.1f s after last clear" s
          | None -> "never")
    end
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Show a deterministic fault schedule; with --run, replay it \
          against a scheme and report degradation")
    Term.(
      const run $ seed_arg $ out_arg $ horizon_arg $ count_arg $ run_arg
      $ scheme_arg $ app_arg)

let cache_cmd =
  let clear_arg =
    let doc = "Delete every cache entry instead of listing." in
    Arg.(value & flag & info [ "clear" ] ~doc)
  in
  let run clear =
    let dir = Designs.cache_dir in
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      Printf.printf "cache %s: empty (directory absent)\n" dir
    else begin
      let files = Array.to_list (Sys.readdir dir) in
      let bins =
        List.sort compare
          (List.filter (fun f -> Filename.check_suffix f ".bin") files)
      in
      if clear then begin
        List.iter
          (fun f ->
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          files;
        Printf.printf "cache %s: removed %d entries\n" dir (List.length bins)
      end
      else if bins = [] then Printf.printf "cache %s: empty\n" dir
      else begin
        Printf.printf "cache %s: %d entries\n" dir (List.length bins);
        List.iter
          (fun f ->
            let path = Filename.concat dir f in
            let digest = Filename.chop_suffix f ".bin" in
            let label =
              let meta = Filename.concat dir (digest ^ ".meta") in
              if Sys.file_exists meta then begin
                let ic = open_in meta in
                let l = try input_line ic with End_of_file -> "" in
                close_in ic;
                l
              end
              else "(unlabeled)"
            in
            let st = Unix.stat path in
            let tm = Unix.localtime st.Unix.st_mtime in
            Printf.printf "  %-12s %8d B  %04d-%02d-%02d %02d:%02d  %s\n"
              (String.sub digest 0 (min 12 (String.length digest)))
              st.Unix.st_size (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
              tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min label)
          bins
      end
    end
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "List the on-disk design cache (.yukta_cache: entry, size, \
          mtime, what it holds), or wipe it with --clear")
    Term.(const run $ clear_arg)

let serve_cmd =
  let socket_arg =
    let doc = "Serve on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Serve on loopback TCP port $(docv) (0 picks a free port)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let once_arg =
    let doc =
      "Exit after the first accepted connection (and any concurrent \
       ones) disconnect — the CI smoke mode."
    in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let idle_arg =
    let doc = "Disconnect silent clients after $(docv) seconds." in
    Arg.(value & opt float 30.0 & info [ "idle-timeout" ] ~docv:"S" ~doc)
  in
  let budget_arg =
    let doc =
      "Per-session epoch budget per loop iteration (fairness between \
       concurrent sessions)."
    in
    Arg.(value & opt int 256 & info [ "step-budget" ] ~docv:"N" ~doc)
  in
  let run socket port once idle budget =
    let address =
      match (socket, port) with
      | Some _, Some _ ->
        prerr_endline "yukta_cli serve: give either --socket or --port";
        exit 2
      | Some path, None -> Serve.Server.Unix_path path
      | None, Some p -> Serve.Server.Tcp ("", p)
      | None, None -> Serve.Server.Unix_path "yukta.sock"
    in
    let server =
      match Serve.Server.create ~idle_timeout:idle ~step_budget:budget address with
      | s -> s
      | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "yukta_cli serve: bind failed: %s\n"
          (Unix.error_message e);
        exit 1
      | exception Invalid_argument msg ->
        prerr_endline ("yukta_cli serve: " ^ msg);
        exit 2
    in
    (match Serve.Server.address server with
    | Unix.ADDR_UNIX path -> Printf.printf "serving on unix socket %s\n%!" path
    | Unix.ADDR_INET (_, p) -> Printf.printf "serving on tcp port %d\n%!" p);
    let stop _ = Serve.Server.stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Serve.Server.run ~once server;
    let accepted, _, frames, swaps, errors = Serve.Server.stats server in
    Printf.printf
      "server done: %d sessions, %d frames, %d controller swaps, %d errors\n"
      accepted frames swaps errors
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve scheme sessions over newline-delimited JSON on a Unix \
          or TCP socket (streaming observations in, decisions out, with \
          optional online adaptation)")
    Term.(const run $ socket_arg $ port_arg $ once_arg $ idle_arg $ budget_arg)

let sweep_cmd =
  let file_arg =
    let doc =
      "A yukta.bench-sweep/v1 document, as written by `bench sweep --json` \
       (a single shard or a --merge result)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let doc =
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.of_string s with
      | doc -> doc
      | exception Obs.Json.Parse_error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
    in
    (match
       Option.bind (Obs.Json.member "schema" doc) Obs.Json.to_string_opt
     with
    | Some "yukta.bench-sweep/v1" -> ()
    | Some s ->
      Printf.eprintf "%s: schema %s is not yukta.bench-sweep/v1\n" file s;
      exit 1
    | None ->
      Printf.eprintf "%s: no schema field\n" file;
      exit 1);
    let frontier =
      match Obs.Json.member "frontier" doc with
      | Some f -> f
      | None ->
        Printf.eprintf "%s: no frontier block\n" file;
        exit 1
    in
    let str key =
      match Option.bind (Obs.Json.member key frontier) Obs.Json.to_string_opt with
      | Some s -> s
      | None -> "?"
    in
    let int key =
      match Option.bind (Obs.Json.member key frontier) Obs.Json.to_int_opt with
      | Some n -> n
      | None -> 0
    in
    Printf.printf "sweep %s: %d of %d points (seed %s)\n" (str "fingerprint")
      (int "points") (int "cardinality")
      (match Option.bind (Obs.Json.member "seed" frontier) Obs.Json.to_int_opt with
      | Some s -> string_of_int s
      | None -> "?");
    (match Obs.Json.member "probe" frontier with
    | Some probe ->
      let p key =
        Option.bind (Obs.Json.member key probe) Obs.Json.to_float_opt
      in
      (match
         ( Option.bind (Obs.Json.member "app" probe) Obs.Json.to_string_opt,
           p "ginsts",
           p "max_time_s" )
       with
      | Some app, Some g, Some t ->
        Printf.printf "probe: %s @ %.0f Ginsts, %.0f s horizon\n" app g t
      | _ -> ())
    | None -> ());
    match Obs.Json.member "members" frontier with
    | Some (Obs.Json.List members) ->
      Printf.printf "frontier: %d non-dominated points\n\n"
        (List.length members);
      Printf.printf "%5s  %-8s %6s %6s %6s %8s  %8s %12s %8s\n" "id"
        "layers" "delta" "weight" "bound" "epoch" "mu-peak" "ExD(J.s)"
        "macs";
      List.iter
        (fun m ->
          match Sweep.Frontier.entry_of_json m with
          | Some (e : Sweep.Frontier.entry) ->
            Printf.printf
              "%5d  %-8s %6.2f %6.2f %6.2f %7.2fs  %8.3f %12.2f %8d\n"
              e.Sweep.Frontier.point.Sweep.Space.id
              (Sweep.Space.arrangement_name
                 e.Sweep.Frontier.point.Sweep.Space.arrangement)
              e.Sweep.Frontier.point.Sweep.Space.delta
              e.Sweep.Frontier.point.Sweep.Space.weight
              e.Sweep.Frontier.point.Sweep.Space.bound
              e.Sweep.Frontier.point.Sweep.Space.epoch e.Sweep.Frontier.mu
              e.Sweep.Frontier.exd e.Sweep.Frontier.macs
          | None ->
            Printf.eprintf "%s: malformed frontier member\n" file;
            exit 1)
        members
    | _ ->
      Printf.eprintf "%s: frontier block has no members list\n" file;
      exit 1
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Print the Pareto frontier of a `bench sweep` artifact as a \
          table (one row per non-dominated design point)")
    Term.(const run $ file_arg)

let fleet_cmd =
  let policy_conv =
    let parse s =
      match Fleet.Rack.policy_of_string s with
      | Some p -> Ok p
      | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown policy %S (even-split, proportional, feedback)" s))
    in
    let print fmt p = Format.pp_print_string fmt (Fleet.Rack.policy_name p) in
    Arg.conv (parse, print)
  in
  let boards_arg =
    let doc = "Number of boards in the fleet." in
    Arg.(value & opt int 64 & info [ "boards" ] ~docv:"N" ~doc)
  in
  let cap_arg =
    let doc =
      "Shared rack budget per board, watts (the rack apportions \
       $(docv) x boards over the fleet; the uncapped per-board budget \
       is 3.63 W)."
    in
    Arg.(value & opt (some float) None & info [ "cap" ] ~docv:"W" ~doc)
  in
  let policy_arg =
    let doc = "Rack apportionment policy: even-split, proportional or feedback." in
    Arg.(
      value
      & opt policy_conv Fleet.Rack.Feedback
      & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)
  in
  let seed_arg =
    let doc = "Fleet seed; per-board seeds derive deterministically." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let fleet_scheme_arg =
    let doc = "Per-board controller scheme (see `schemes`)." in
    Arg.(
      value
      & opt scheme_conv (Schemes.find_exn "coord")
      & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let run boards cap policy (scheme : Schemes.info) seed jobs =
    if jobs < 1 then begin
      prerr_endline "yukta_cli fleet: -j expects an integer >= 1";
      exit 2
    end;
    let cfg =
      match
        Fleet.Sim.config ?cap_per_board:cap ~policy ~scheme:scheme.Schemes.key
          ~seed ~boards ()
      with
      | cfg -> cfg
      | exception Invalid_argument msg ->
        prerr_endline ("yukta_cli fleet: " ^ msg);
        exit 2
    in
    Printf.printf
      "fleet: %d boards x %s, budget %.1f W (%.2f W/board), %s policy, seed %d...\n%!"
      boards scheme.Schemes.key cfg.Fleet.Sim.cap
      (cfg.Fleet.Sim.cap /. float_of_int boards)
      (Fleet.Rack.policy_name policy)
      seed;
    let r =
      if jobs > 1 then
        Parallel.Pool.with_pool ~jobs (fun pool -> Fleet.Sim.run ~pool cfg)
      else Fleet.Sim.run cfg
    in
    Printf.printf "rack epochs:    %d (%.0f s each)\n" r.Fleet.Sim.rack_epochs
      cfg.Fleet.Sim.rack_epoch;
    Printf.printf "board epochs:   %d\n" r.Fleet.Sim.board_epochs;
    Printf.printf "completed:      %d/%d boards\n" r.Fleet.Sim.completed boards;
    Printf.printf "makespan:       %.1f s\n" r.Fleet.Sim.makespan;
    Printf.printf "fleet energy:   %.1f J\n" r.Fleet.Sim.energy;
    Printf.printf "fleet E x D:    %.0f J.s\n" r.Fleet.Sim.exd;
    Printf.printf "over budget:    %.1f s\n" r.Fleet.Sim.cap_violation_s;
    Printf.printf "emergency trips: %d\n" r.Fleet.Sim.trips
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run N boards under one shared rack power budget; the rack \
          policy re-apportions per-board caps each rack epoch")
    Term.(
      const run $ boards_arg $ cap_arg $ policy_arg $ fleet_scheme_arg
      $ seed_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "yukta_cli" ~version:"1.0"
      ~doc:"Multilayer SSV resource control on a simulated big.LITTLE board"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            apps_cmd;
            schemes_cmd;
            run_cmd;
            csv_cmd;
            trace_cmd;
            design_cmd;
            faults_cmd;
            fleet_cmd;
            cache_cmd;
            serve_cmd;
            sweep_cmd;
          ]))
