(* Scripted NDJSON client for the yukta session server.

   Drives one complete session — hello, configure (optionally with an
   injected plant drift and adaptation enabled), step, drain, close —
   printing every server response line to stdout, so a CI smoke job can
   grep the output for frames, adapt.swap notices, and the clean
   [closed] shutdown. Exercises backpressure handling: a [busy]
   response sleeps for the advertised retry hint and re-sends.

     serve_client --port 7077 --scheme yukta --steps 50
     serve_client --socket y.sock --adapt --drift-start 3 \
       --drift-severity 1.5 --steps 400 *)

open Cmdliner
module Json = Obs.Json

let connect ~socket ~port =
  let addr =
    match (socket, port) with
    | Some path, None -> Unix.ADDR_UNIX path
    | None, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    | _ ->
      prerr_endline "serve_client: give exactly one of --socket or --port";
      exit 2
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "serve_client: connect failed: %s\n"
       (Unix.error_message e);
     exit 1);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let field_type line =
  match Json.of_string line with
  | json -> (
    match Option.bind (Json.member "type" json) Json.to_string_opt with
    | Some t -> t
    | None -> "?")
  | exception Json.Parse_error _ -> "?"

let retry_after line =
  match Json.of_string line with
  | json -> (
    match Option.bind (Json.member "retry_after_ms" json) Json.to_int_opt with
    | Some ms -> float_of_int ms /. 1000.0
    | None -> 0.05)
  | exception Json.Parse_error _ -> 0.05

(* Send [request] and consume responses until [until] says the exchange
   is complete; every received line is echoed to stdout. A [busy]
   rejection sleeps for the server's retry hint and re-sends. *)
let exchange ic oc request ~until =
  let rec go () =
    send oc request;
    let rec read () =
      match input_line ic with
      | line ->
        print_endline line;
        let t = field_type line in
        if t = "busy" then begin
          Unix.sleepf (retry_after line);
          `Retry
        end
        else if until t line then `Done
        else read ()
      | exception End_of_file ->
        prerr_endline "serve_client: server closed the connection";
        exit 1
    in
    match read () with `Done -> () | `Retry -> go ()
  in
  go ()

let obj fields = Json.to_string (Json.Obj fields)

let run socket port scheme app adapt steps chunk pace_ms until_swap
    drift_start drift_severity drift_kind =
  let ic, oc = connect ~socket ~port in
  exchange ic oc
    (obj
       [
         ("type", Json.String "hello"); ("client", Json.String "serve_client");
       ])
    ~until:(fun t _ -> t = "welcome" || t = "error");
  let drift =
    match drift_start with
    | None -> []
    | Some start ->
      [
        ( "drift",
          Json.Obj
            [
              ("start", Json.Float start);
              ("severity", Json.Float drift_severity);
              ("kind", Json.String drift_kind);
            ] );
      ]
  in
  exchange ic oc
    (obj
       ([
          ("type", Json.String "configure");
          ("scheme", Json.String scheme);
          ("app", Json.String app);
          ("adapt", Json.Bool adapt);
        ]
       @ drift))
    ~until:(fun t _ -> t = "configured" || t = "error");
  let remaining = ref steps in
  let finished = ref false in
  let swapped = ref false in
  while !remaining > 0 && (not !finished) && not (until_swap && !swapped) do
    let count = min chunk !remaining in
    let frames = ref 0 in
    exchange ic oc
      (obj [ ("type", Json.String "step"); ("count", Json.Int count) ])
      ~until:(fun t line ->
        match t with
        | "frame" ->
          incr frames;
          let done_ =
            match Json.of_string line with
            | json -> Json.member "done" json = Some (Json.Bool true)
            | exception Json.Parse_error _ -> false
          in
          if done_ then finished := true;
          done_ || !frames >= count
        | "adapt" ->
          (match Json.of_string line with
          | json ->
            if Json.member "name" json = Some (Json.String "adapt.swap") then
              swapped := true
          | exception Json.Parse_error _ -> ());
          false
        | "end" ->
          finished := true;
          true
        | "error" -> true
        | _ -> false);
    remaining := !remaining - count;
    if pace_ms > 0 then Unix.sleepf (float_of_int pace_ms /. 1000.0)
  done;
  exchange ic oc
    (obj [ ("type", Json.String "health") ])
    ~until:(fun t _ -> t = "health" || t = "error");
  exchange ic oc
    (obj [ ("type", Json.String "drain") ])
    ~until:(fun t _ -> t = "drained" || t = "error");
  exchange ic oc
    (obj [ ("type", Json.String "close") ])
    ~until:(fun t _ -> t = "closed" || t = "error");
  close_out_noerr oc

let () =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Connect to a Unix socket.")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Connect to loopback TCP $(docv).")
  in
  let scheme_arg =
    Arg.(
      value & opt string "yukta"
      & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc:"Scheme to run.")
  in
  let app_arg =
    Arg.(
      value & opt string "blackscholes"
      & info [ "a"; "app" ] ~docv:"APP" ~doc:"Workload or mix.")
  in
  let adapt_arg =
    Arg.(
      value & flag
      & info [ "adapt" ] ~doc:"Enable online identification + re-synthesis.")
  in
  let steps_arg =
    Arg.(
      value & opt int 50
      & info [ "steps" ] ~docv:"N" ~doc:"Total epochs to stream.")
  in
  let chunk_arg =
    Arg.(
      value & opt int 25
      & info [ "chunk" ] ~docv:"N" ~doc:"Epochs per step request.")
  in
  let pace_arg =
    Arg.(
      value & opt int 0
      & info [ "pace" ] ~docv:"MS"
          ~doc:
            "Sleep $(docv) milliseconds between step requests — emulates \
             real-time sensor streaming, giving a background re-synthesis \
             wall time to land mid-run.")
  in
  let until_swap_arg =
    Arg.(
      value & flag
      & info [ "until-swap" ]
          ~doc:
            "Stop stepping (and drain) as soon as an adapt.swap notice \
             arrives; --steps then only bounds the wait.")
  in
  let drift_start_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "drift-start" ] ~docv:"S"
          ~doc:"Inject a plant drift at $(docv) simulated seconds.")
  in
  let drift_severity_arg =
    Arg.(
      value & opt float 1.5
      & info [ "drift-severity" ] ~docv:"F"
          ~doc:"Drift severity as a fraction of the guardband (>1 leaves \
                the certified ball).")
  in
  let drift_kind_arg =
    Arg.(
      value & opt string "power_gain"
      & info [ "drift-kind" ] ~docv:"KIND"
          ~doc:"power_gain, thermal_gain or perf_gain.")
  in
  let info_ =
    Cmd.info "serve_client" ~version:"1.0"
      ~doc:"Scripted NDJSON client for `yukta_cli serve` (CI smoke driver)"
  in
  exit
    (Cmd.eval
       (Cmd.v info_
          Term.(
            const run $ socket_arg $ port_arg $ scheme_arg $ app_arg
            $ adapt_arg $ steps_arg $ chunk_arg $ pace_arg $ until_swap_arg
            $ drift_start_arg $ drift_severity_arg $ drift_kind_arg)))
