(* Scalability to several layers (Section III-D).

     dune exec examples/three_layers.exe

   The paper envisions each layer's controller talking only to its
   neighbours: an application-layer controller above the OS reads the
   hardware frequency as an external signal (which already embodies the
   layers below it) and actuates an application knob. Here a video
   pipeline adjusts its quality level (work per frame) to hold a frame
   target while the two-layer Yukta system underneath manages power,
   placement and thermals — three coordinated SSV controllers in total.

   The registry ships a ready-made version of this arrangement
   (`yukta_cli run -s three-layer`, built on Schemes.qos_layer); this
   example goes one step further and trains the application controller
   on the live system before wiring it in as a Layer. *)

open Yukta
open Board

(* Frames cost work proportional to the quality level; the frame rate is
   whatever the board's throughput sustains at that cost. *)
let ginst_per_frame quality = 0.04 +. (0.05 *. quality)

let fps ~bips ~quality = bips /. ginst_per_frame quality

let quality_knob =
  Signal.input ~name:"quality" ~minimum:1.0 ~maximum:5.0 ~step:0.5 ~weight:1.0

let fps_output =
  Signal.output ~name:"fps" ~lo:0.0 ~hi:120.0 ~bound_fraction:0.1 ()

let app_spec =
  {
    Design.layer = "application";
    inputs = [| quality_knob |];
    outputs = [| fps_output |];
    externals =
      [|
        {
          Signal.name = "freq_big";
          info =
            Signal.From_input
              (Control.Quantize.make ~minimum:0.2 ~maximum:2.0 ~step:0.1);
        };
      |];
    uncertainty = 0.45;  (* two layers of interference below us *)
    period = 0.5;
  }

let () =
  Printf.printf "loading the two lower-layer designs (cached)...\n%!";
  let hw = Designs.hw () and sw = Designs.sw () in
  let lower = Schemes.yukta_full_stack hw sw in

  (* --- Train the application layer on the live two-layer stack. --- *)
  Printf.printf "training the application layer on the running system...\n%!";
  let board = Xu3.create [ Workload.by_name "x264" ] in
  Stack.reset lower;
  let exc = { Sysid.Excitation.seed = 11; hold = 3 } in
  let quality_seq =
    Sysid.Excitation.multilevel exc
      ~levels:(Control.Quantize.levels quality_knob.Signal.channel)
      ~length:200
  in
  let u_rec = ref [] and y_rec = ref [] in
  Array.iter
    (fun q ->
      if not (Xu3.finished board) then begin
        let o = Xu3.run_epoch board 0.5 in
        Stack.step lower board o;
        let f = (Xu3.effective_config board).Xu3.freq_big in
        u_rec := [| q; f |] :: !u_rec;
        y_rec := [| fps ~bips:o.Xu3.bips ~quality:q |] :: !y_rec
      end)
    quality_seq;
  let u = Array.of_list (List.rev !u_rec) in
  let y = Array.of_list (List.rev !y_rec) in
  Printf.printf "  %d training epochs\n%!" (Array.length u);

  Printf.printf "mu-synthesis of the application controller...\n%!";
  let app = Design.design ~order:2 ~dk_iterations:2 app_spec ~u ~y in
  Printf.printf "  %d states, mu peak %.2f\n"
    (Controller.order app.Design.controller)
    app.Design.mu_peak;

  (* --- Wire the trained controller in as a third Layer and run the
     closed loop as one Stack. --- *)
  let target_fps = 30.0 in
  let quality = ref 3.0 in
  let app_layer =
    Layer.controlled ~label:"app" ~measures:[| "fps" |]
      ~actuates:[| "quality" |]
      ~on_reset:(fun () -> quality := 3.0)
      ~controller:app.Design.controller
      ~targets:(Layer.Fixed [| target_fps |])
      ~measure:(fun o -> [| fps ~bips:o.Xu3.bips ~quality:!quality |])
      ~externals:(fun board -> [| (Xu3.effective_config board).Xu3.freq_big |])
      ~actuate:(fun _board u -> quality := u.(0))
      ()
  in
  let stack =
    Stack.make ~label:"three-layer" (Stack.layers lower @ [ app_layer ])
  in
  Printf.printf "\nrunning three layers (frame target %.0f fps):\n" target_fps;
  Printf.printf "%8s %8s %8s %8s %8s\n" "time(s)" "fps" "quality" "Pbig(W)"
    "freq";
  let board = Xu3.create [ Workload.by_name "x264" ] in
  Stack.reset stack;
  let epoch = ref 0 in
  while (not (Xu3.finished board)) && !epoch < 200 do
    incr epoch;
    let o = Xu3.run_epoch board 0.5 in
    Stack.step stack board o;
    if !epoch mod 12 = 0 then
      Printf.printf "%8.1f %8.1f %8.1f %8.2f %8.1f\n" (Xu3.time board)
        (fps ~bips:o.Xu3.bips ~quality:!quality)
        !quality o.Xu3.power_big
        (Xu3.effective_config board).Xu3.freq_big
  done;
  Printf.printf
    "\nThe application layer only ever talked to its neighbour (freq_big);\n\
     the hardware limits were enforced two layers down, unseen from here.\n"
