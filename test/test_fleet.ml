(* Tests for the fleet layer: per-board seed derivation, rack
   apportionment (all three policies), the cap surface's no-cap parity
   contract, and the streaming fleet driver's serial/parallel
   byte-identity. *)

open Board
open Yukta

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Seed derivation                                                     *)
(* ------------------------------------------------------------------ *)

let test_seed_derivation () =
  let d = Fleet.Seed.derive in
  check_int "pure function" (d ~fleet_seed:42 ~board:7 ~stream:0)
    (d ~fleet_seed:42 ~board:7 ~stream:0);
  check_bool "non-negative" true
    (List.for_all
       (fun b -> d ~fleet_seed:42 ~board:b ~stream:1 >= 0)
       (List.init 64 Fun.id));
  (* Distinctness across boards, streams and fleet seeds: one collision
     among a few thousand 30-bit draws would be suspicious mixing. *)
  let seen = Hashtbl.create 4096 in
  for fleet_seed = 0 to 3 do
    for board = 0 to 255 do
      for stream = 0 to 1 do
        Hashtbl.replace seen (d ~fleet_seed ~board ~stream) ()
      done
    done
  done;
  check_int "no collisions across (seed, board, stream)" (4 * 256 * 2)
    (Hashtbl.length seen);
  check_bool "negative board rejected" true
    (raises_invalid (fun () -> d ~fleet_seed:1 ~board:(-1) ~stream:0))

(* ------------------------------------------------------------------ *)
(* Rack apportionment                                                  *)
(* ------------------------------------------------------------------ *)

let near ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let sum = Array.fold_left ( +. ) 0.0

let test_rack_even_split_static () =
  let r = Fleet.Rack.make ~policy:Fleet.Rack.Even_split ~boards:4 ~cap:8.0 () in
  check_bool "initial apportionment is fair" true
    (Array.for_all (near 2.0) (Fleet.Rack.caps r));
  (* Wildly skewed measurements must not move the static baseline. *)
  Fleet.Rack.step r ~power:[| 4.0; 0.1; 0.1; 0.1 |]
    ~progress:[| 0.1; 0.9; 0.9; 0.9 |]
    ~active:[| true; true; true; true |];
  check_bool "even split never moves" true
    (Array.for_all (near 2.0) (Fleet.Rack.caps r))

let test_rack_proportional_tracks_demand () =
  let r =
    Fleet.Rack.make ~policy:Fleet.Rack.Proportional ~boards:2 ~cap:4.0 ()
  in
  for _ = 1 to 6 do
    Fleet.Rack.step r ~power:[| 3.0; 0.5 |] ~progress:[| 0.2; 0.2 |]
      ~active:[| true; true |]
  done;
  let caps = Fleet.Rack.caps r in
  check_bool "hungry board gets the larger share" true (caps.(0) > caps.(1));
  check_bool "budget fully distributed" true (near ~eps:1e-6 (sum caps) 4.0);
  check_bool "floor respected" true (Array.for_all (fun c -> c >= 0.45) caps)

let test_rack_waterfill_ceiling () =
  (* With far more budget than two boards can draw, each allocation
     saturates at the sustained board ceiling instead of absorbing the
     surplus. *)
  let r =
    Fleet.Rack.make ~policy:Fleet.Rack.Proportional ~boards:2 ~cap:100.0 ()
  in
  Fleet.Rack.step r ~power:[| 3.0; 2.0 |] ~progress:[| 0.5; 0.5 |]
    ~active:[| true; true |];
  check_bool "allocations saturate at the board ceiling" true
    (Array.for_all (near Fleet.Rack.board_ceiling) (Fleet.Rack.caps r))

let test_rack_feedback_trim () =
  let r =
    Fleet.Rack.make ~gain:0.2 ~policy:Fleet.Rack.Feedback ~boards:2 ~cap:6.0 ()
  in
  check_bool "trim starts neutral" true (near (Fleet.Rack.trim r) 1.0);
  (* Sustained underdraw: measured total well below the budget, so the
     trim integrates upward (capped at 1.3). *)
  for _ = 1 to 20 do
    Fleet.Rack.step r ~power:[| 1.0; 1.0 |] ~progress:[| 0.3; 0.3 |]
      ~active:[| true; true |]
  done;
  let high = Fleet.Rack.trim r in
  check_bool "underdraw raises the trim" true (high > 1.0 && high <= 1.3);
  (* Sustained overdraw pulls it back down (floored at 0.8). *)
  for _ = 1 to 40 do
    Fleet.Rack.step r ~power:[| 5.0; 5.0 |] ~progress:[| 0.5; 0.5 |]
      ~active:[| true; true |]
  done;
  let low = Fleet.Rack.trim r in
  check_bool "overdraw lowers the trim" true (low < high && low >= 0.8)

let test_rack_inactive_boards_release_budget () =
  let r =
    Fleet.Rack.make ~policy:Fleet.Rack.Proportional ~boards:3 ~cap:4.5 ()
  in
  Fleet.Rack.step r ~power:[| 1.4; 1.4; 0.0 |] ~progress:[| 0.5; 0.5; 1.0 |]
    ~active:[| true; true; false |];
  let caps = Fleet.Rack.caps r in
  check_bool "finished board drops to the floor" true (near caps.(2) 0.45);
  check_bool "running boards inherit the released budget" true
    (caps.(0) > 1.5 && caps.(1) > 1.5)

let test_rack_validation () =
  check_bool "boards = 0 rejected" true
    (raises_invalid (fun () ->
         Fleet.Rack.make ~policy:Fleet.Rack.Even_split ~boards:0 ~cap:1.0 ()));
  check_bool "cap = 0 rejected" true
    (raises_invalid (fun () ->
         Fleet.Rack.make ~policy:Fleet.Rack.Even_split ~boards:1 ~cap:0.0 ()));
  let r = Fleet.Rack.make ~policy:Fleet.Rack.Proportional ~boards:2 ~cap:2.0 () in
  check_bool "mismatched measurement arrays rejected" true
    (raises_invalid (fun () ->
         Fleet.Rack.step r ~power:[| 1.0 |] ~progress:[| 0.0; 0.0 |]
           ~active:[| true; true |]))

let test_policy_names_round_trip () =
  List.iter
    (fun p ->
      check_bool "name parses back" true
        (Fleet.Rack.policy_of_string (Fleet.Rack.policy_name p) = Some p))
    [ Fleet.Rack.Even_split; Fleet.Rack.Proportional; Fleet.Rack.Feedback ];
  check_bool "aliases parse" true
    (Fleet.Rack.policy_of_string "static" = Some Fleet.Rack.Even_split
    && Fleet.Rack.policy_of_string "prop" = Some Fleet.Rack.Proportional
    && Fleet.Rack.policy_of_string "LQG" = Some Fleet.Rack.Feedback);
  check_bool "junk rejected" true (Fleet.Rack.policy_of_string "rr" = None)

(* ------------------------------------------------------------------ *)
(* The cap surface: no-cap parity and enforcement                      *)
(* ------------------------------------------------------------------ *)

let cap_workloads () =
  [ Workload.scale ~ginsts:30.0 (Workload.by_name "blackscholes") ]

let test_cap_absent_is_bit_identical () =
  let stack = Schemes.stack (Schemes.find_exn "coord") in
  let bare =
    Stack.reset stack;
    Stack.run ~max_time:120.0 stack (cap_workloads ())
  in
  let none_stream =
    Stack.reset stack;
    Stack.run ~max_time:120.0 ~cap:(fun _ -> None) stack (cap_workloads ())
  in
  let huge =
    Stack.reset stack;
    Stack.run ~max_time:120.0 ~cap:(fun _ -> Some 1000.0) stack (cap_workloads ())
  in
  check_bool "always-None cap stream is bit-identical" true
    (bare.Stack.metrics = none_stream.Stack.metrics);
  (* A cap far above what the board can draw never trips the limiter,
     and the heuristic stack ignores it: same trajectory. *)
  check_bool "unreachable cap is bit-identical" true
    (bare.Stack.metrics = huge.Stack.metrics)

let test_tight_cap_enforced () =
  let stack = Schemes.stack (Schemes.find_exn "coord") in
  let bare =
    Stack.reset stack;
    Stack.run ~max_time:120.0 stack (cap_workloads ())
  in
  let capped =
    Stack.reset stack;
    Stack.run ~max_time:120.0 ~cap:(fun _ -> Some 1.0) stack (cap_workloads ())
  in
  check_bool "tight cap trips the power_cap limiter" true
    (capped.Stack.metrics.Xu3.trips > bare.Stack.metrics.Xu3.trips);
  check_bool "tight cap slows the run" true
    (capped.Stack.metrics.Xu3.execution_time
    > bare.Stack.metrics.Xu3.execution_time)

let test_cap_targets_identity () =
  let targets = [| 8.0; 3.3; 0.33; 79.0 |] in
  check_bool "cap at the budget returns the same vector" true
    (Hw_layer.cap_targets ~cap:Hw_layer.board_power_budget targets == targets);
  let scaled = Hw_layer.cap_targets ~cap:1.8 targets in
  check_bool "tight cap returns a fresh vector" true (scaled != targets);
  check_bool "power targets scale down" true
    (scaled.(1) < targets.(1) && scaled.(2) < targets.(2));
  check_bool "non-power targets untouched" true
    (scaled.(0) = targets.(0) && scaled.(3) = targets.(3))

(* ------------------------------------------------------------------ *)
(* The streaming fleet driver                                          *)
(* ------------------------------------------------------------------ *)

let small_cfg ?(policy = Fleet.Rack.Feedback) () =
  Fleet.Sim.config ~policy ~ginsts:20.0 ~max_time:60.0 ~boards:8 ()

let test_sim_completes () =
  let r = Fleet.Sim.run (small_cfg ()) in
  check_int "every board finishes" 8 r.Fleet.Sim.completed;
  check_bool "work happened" true
    (r.Fleet.Sim.board_epochs > 0
    && r.Fleet.Sim.rack_epochs > 0
    && r.Fleet.Sim.makespan > 0.0
    && r.Fleet.Sim.energy > 0.0)

let test_sim_serial_parallel_byte_identical () =
  (* The acceptance contract: the folded fleet aggregates — everything
     in the "fleet" JSON block — are byte-identical at any job count. *)
  let doc r = Obs.Json.to_string (Fleet.Sim.json r) in
  let serial = doc (Fleet.Sim.run (small_cfg ())) in
  let j4 =
    Parallel.Pool.with_pool ~jobs:4 (fun pool ->
        doc (Fleet.Sim.run ~pool (small_cfg ())))
  in
  let j1 =
    Parallel.Pool.with_pool ~jobs:1 (fun pool ->
        doc (Fleet.Sim.run ~pool (small_cfg ())))
  in
  Alcotest.(check string) "-j4 equals serial" serial j4;
  Alcotest.(check string) "-j1 equals serial" serial j1

let test_feedback_beats_even_split () =
  (* The rack-layer headline at the bench-default scale: under a
     contended shared budget the feedback policy reallocates stranded
     headroom and finishes the fleet cheaper than the static split. *)
  let cfg policy = Fleet.Sim.config ~policy ~boards:64 () in
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let even = Fleet.Sim.run ~pool (cfg Fleet.Rack.Even_split) in
      let feedback = Fleet.Sim.run ~pool (cfg Fleet.Rack.Feedback) in
      check_int "even split completes the fleet" 64 even.Fleet.Sim.completed;
      check_int "feedback completes the fleet" 64 feedback.Fleet.Sim.completed;
      check_bool "feedback lowers fleet ExD" true
        (feedback.Fleet.Sim.exd < even.Fleet.Sim.exd))

let test_sim_config_validation () =
  check_bool "boards = 0 rejected" true
    (raises_invalid (fun () -> Fleet.Sim.config ~boards:0 ()));
  check_bool "negative budget rejected" true
    (raises_invalid (fun () ->
         Fleet.Sim.config ~cap_per_board:(-1.0) ~boards:2 ()));
  check_bool "epoch above rack epoch rejected" true
    (raises_invalid (fun () ->
         Fleet.Sim.config ~epoch:3.0 ~rack_epoch:2.0 ~boards:2 ()))

let () =
  Alcotest.run "fleet"
    [
      ( "seed",
        [ Alcotest.test_case "derivation" `Quick test_seed_derivation ] );
      ( "rack",
        [
          Alcotest.test_case "even split is static" `Quick
            test_rack_even_split_static;
          Alcotest.test_case "proportional tracks demand" `Quick
            test_rack_proportional_tracks_demand;
          Alcotest.test_case "water-fill saturates at the ceiling" `Quick
            test_rack_waterfill_ceiling;
          Alcotest.test_case "feedback trim integrates headroom" `Quick
            test_rack_feedback_trim;
          Alcotest.test_case "inactive boards release budget" `Quick
            test_rack_inactive_boards_release_budget;
          Alcotest.test_case "validation" `Quick test_rack_validation;
          Alcotest.test_case "policy names round-trip" `Quick
            test_policy_names_round_trip;
        ] );
      ( "cap",
        [
          Alcotest.test_case "no cap is bit-identical" `Quick
            test_cap_absent_is_bit_identical;
          Alcotest.test_case "tight cap enforced" `Quick
            test_tight_cap_enforced;
          Alcotest.test_case "cap_targets identity above budget" `Quick
            test_cap_targets_identity;
        ] );
      ( "sim",
        [
          Alcotest.test_case "fleet completes" `Quick test_sim_completes;
          Alcotest.test_case "-j1/-j4 byte-identity" `Quick
            test_sim_serial_parallel_byte_identical;
          Alcotest.test_case "feedback beats even split" `Quick
            test_feedback_beats_even_split;
          Alcotest.test_case "config validation" `Quick
            test_sim_config_validation;
        ] );
    ]
