(* Unit and property tests for the dense linear algebra substrate. *)

open Linalg

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mat = Alcotest.testable Mat.pp (Mat.approx_equal ~tol:1e-8)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basic () =
  let v = Vec.of_list [ 1.0; -2.0; 3.0 ] in
  check_int "dim" 3 (Vec.dim v);
  check_float "dot" 14.0 (Vec.dot v v);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 v);
  check_float "norm1" 6.0 (Vec.norm1 v);
  check_float "norm_inf" 3.0 (Vec.norm_inf v);
  check_int "max_abs_index" 2 (Vec.max_abs_index v)

let test_vec_arith () =
  let a = Vec.of_list [ 1.0; 2.0 ] and b = Vec.of_list [ 3.0; -1.0 ] in
  check_bool "add" true
    (Vec.approx_equal (Vec.add a b) (Vec.of_list [ 4.0; 1.0 ]));
  check_bool "sub" true
    (Vec.approx_equal (Vec.sub a b) (Vec.of_list [ -2.0; 3.0 ]));
  check_bool "axpy" true
    (Vec.approx_equal (Vec.axpy 2.0 a b) (Vec.of_list [ 5.0; 3.0 ]));
  check_bool "scale" true
    (Vec.approx_equal (Vec.scale (-1.0) a) (Vec.neg a))

let test_vec_basis () =
  let e1 = Vec.basis 3 1 in
  check_float "entry" 1.0 e1.(1);
  check_float "norm" 1.0 (Vec.norm2 e1);
  Alcotest.check_raises "out of range" (Invalid_argument "Vec.basis: index out of range")
    (fun () -> ignore (Vec.basis 3 3))

let test_vec_norm2_overflow () =
  let v = Vec.of_list [ 1e160; 1e160 ] in
  check_bool "no overflow" true (Float.is_finite (Vec.norm2 v));
  check_float_loose "value" (sqrt 2.0)
    (Vec.norm2 v /. 1e160)

let test_vec_slice_concat () =
  let v = Vec.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  let a = Vec.slice v 1 2 in
  check_bool "slice" true (Vec.approx_equal a (Vec.of_list [ 2.0; 3.0 ]));
  check_bool "concat" true
    (Vec.approx_equal
       (Vec.concat (Vec.slice v 0 2) (Vec.slice v 2 2))
       v)

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mat_identity_mul () =
  let a = Mat.random ~seed:1 4 4 in
  Alcotest.check mat "I*a = a" a (Mat.mul (Mat.identity 4) a);
  Alcotest.check mat "a*I = a" a (Mat.mul a (Mat.identity 4))

let test_mat_transpose () =
  let a = Mat.random ~seed:2 3 5 in
  let t = Mat.transpose a in
  check_int "rows" 5 t.Mat.rows;
  check_int "cols" 3 t.Mat.cols;
  Alcotest.check mat "involution" a (Mat.transpose t)

let test_mat_mul_known () =
  let a = Mat.of_lists [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let b = Mat.of_lists [ [ 5.0; 6.0 ]; [ 7.0; 8.0 ] ] in
  let expected = Mat.of_lists [ [ 19.0; 22.0 ]; [ 43.0; 50.0 ] ] in
  Alcotest.check mat "2x2 product" expected (Mat.mul a b)

let test_mat_blocks () =
  let a = Mat.of_lists [ [ 1.0 ] ] in
  let b = Mat.of_lists [ [ 2.0 ] ] in
  let c = Mat.of_lists [ [ 3.0 ] ] in
  let d = Mat.of_lists [ [ 4.0 ] ] in
  let m = Mat.blocks [ [ a; b ]; [ c; d ] ] in
  let expected = Mat.of_lists [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  Alcotest.check mat "2x2 block assembly" expected m

let test_mat_block_roundtrip () =
  let a = Mat.random ~seed:3 6 6 in
  let tl = Mat.sub_matrix a 0 0 3 3
  and tr = Mat.sub_matrix a 0 3 3 3
  and bl = Mat.sub_matrix a 3 0 3 3
  and br = Mat.sub_matrix a 3 3 3 3 in
  Alcotest.check mat "split/assemble roundtrip" a
    (Mat.blocks [ [ tl; tr ]; [ bl; br ] ])

let test_mat_hcat_vcat () =
  let a = Mat.random ~seed:4 2 3 and b = Mat.random ~seed:5 2 2 in
  let h = Mat.hcat a b in
  check_int "hcat cols" 5 h.Mat.cols;
  Alcotest.check mat "hcat left" a (Mat.sub_matrix h 0 0 2 3);
  Alcotest.check mat "hcat right" b (Mat.sub_matrix h 0 3 2 2);
  let c = Mat.random ~seed:6 3 4 and d = Mat.random ~seed:7 1 4 in
  let v = Mat.vcat c d in
  check_int "vcat rows" 4 v.Mat.rows;
  Alcotest.check mat "vcat bottom" d (Mat.sub_matrix v 3 0 1 4)

let test_mat_trace_norms () =
  let a = Mat.of_lists [ [ 1.0; -2.0 ]; [ 3.0; 4.0 ] ] in
  check_float "trace" 5.0 (Mat.trace a);
  check_float "norm_inf" 7.0 (Mat.norm_inf a);
  check_float "norm1" 6.0 (Mat.norm1 a);
  check_float "max_abs" 4.0 (Mat.max_abs a);
  check_float "fro" (sqrt 30.0) (Mat.norm_fro a)

let test_mat_pow () =
  let a = Mat.of_lists [ [ 1.0; 1.0 ]; [ 0.0; 1.0 ] ] in
  let a5 = Mat.pow a 5 in
  check_float "shear power" 5.0 (Mat.get a5 0 1);
  Alcotest.check mat "pow 0" (Mat.identity 2) (Mat.pow a 0)

let test_mat_symmetrize () =
  let a = Mat.random ~seed:8 5 5 in
  check_bool "symmetric" true (Mat.is_symmetric (Mat.symmetrize a))

let test_mat_mul_vec () =
  let a = Mat.of_lists [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let v = Vec.of_list [ 1.0; 1.0 ] in
  check_bool "a*v" true
    (Vec.approx_equal (Mat.mul_vec a v) (Vec.of_list [ 3.0; 7.0 ]))

let test_mat_dim_mismatch () =
  let a = Mat.create 2 3 and b = Mat.create 2 3 in
  Alcotest.check_raises "mul mismatch"
    (Invalid_argument "Mat.mul: dimension mismatch") (fun () ->
      ignore (Mat.mul a b))

(* ------------------------------------------------------------------ *)
(* LU                                                                  *)
(* ------------------------------------------------------------------ *)

let test_lu_solve_known () =
  let a = Mat.of_lists [ [ 4.0; 3.0 ]; [ 6.0; 3.0 ] ] in
  let b = Vec.of_list [ 10.0; 12.0 ] in
  let x = Lu.solve_vec (Lu.factorize a) b in
  check_bool "solution" true (Vec.approx_equal x (Vec.of_list [ 1.0; 2.0 ]))

let test_lu_inverse () =
  let a = Mat.random ~seed:9 6 6 in
  let a = Mat.add a (Mat.scalar 6 3.0) in
  Alcotest.check mat "a * inv a" (Mat.identity 6) (Mat.mul a (Lu.inv a))

let test_lu_det () =
  let a = Mat.of_lists [ [ 2.0; 0.0 ]; [ 0.0; 3.0 ] ] in
  check_float "diag det" 6.0 (Lu.det a);
  let perm = Mat.of_lists [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ] in
  check_float "swap det" (-1.0) (Lu.det perm)

let test_lu_singular () =
  let a = Mat.of_lists [ [ 1.0; 2.0 ]; [ 2.0; 4.0 ] ] in
  check_float "singular det" 0.0 (Lu.det a);
  Alcotest.check_raises "raises" Lu.Singular (fun () -> ignore (Lu.inv a))

let test_lu_solve_right () =
  let a = Mat.add (Mat.random ~seed:10 4 4) (Mat.scalar 4 3.0) in
  let b = Mat.random ~seed:11 2 4 in
  let x = Lu.solve_right b a in
  Alcotest.check mat "x*a = b" b (Mat.mul x a)

let test_lu_cond () =
  check_bool "well conditioned" true (Lu.cond_estimate (Mat.identity 3) < 1.5);
  check_bool "singular -> inf" true
    (Lu.cond_estimate (Mat.of_lists [ [ 1.0; 1.0 ]; [ 1.0; 1.0 ] ]) = infinity)

(* ------------------------------------------------------------------ *)
(* QR                                                                  *)
(* ------------------------------------------------------------------ *)

let test_qr_reconstruct () =
  let a = Mat.random ~seed:12 6 4 in
  let { Qr.q; r } = Qr.factorize a in
  Alcotest.check mat "a = qr" a (Mat.mul q r);
  check_bool "q orthonormal" true (Qr.orthonormal_columns q)

let test_qr_full () =
  let a = Mat.random ~seed:13 5 3 in
  let { Qr.q; r } = Qr.factorize_full a in
  check_int "square q" 5 q.Mat.cols;
  Alcotest.check mat "a = qr" a (Mat.mul q r);
  check_bool "q orthonormal" true (Qr.orthonormal_columns q)

let test_qr_r_triangular () =
  let a = Mat.random ~seed:14 5 5 in
  let { Qr.r; _ } = Qr.factorize a in
  let ok = ref true in
  for i = 1 to 4 do
    for j = 0 to i - 1 do
      if Mat.get r i j <> 0.0 then ok := false
    done
  done;
  check_bool "strictly triangular" true !ok

let test_qr_least_squares () =
  (* Fit y = 2x + 1 exactly: residual zero. *)
  let xs = [ 0.0; 1.0; 2.0; 3.0 ] in
  let a = Mat.of_lists (List.map (fun x -> [ x; 1.0 ]) xs) in
  let b = Vec.of_list (List.map (fun x -> (2.0 *. x) +. 1.0) xs) in
  let sol = Qr.solve_least_squares a b in
  check_float "slope" 2.0 sol.(0);
  check_float "intercept" 1.0 sol.(1)

let test_qr_least_squares_residual_orthogonal () =
  let a = Mat.random ~seed:15 8 3 in
  let b = Vec.init 8 (fun i -> Float.of_int i) in
  let x = Qr.solve_least_squares a b in
  let res = Vec.sub (Mat.mul_vec a x) b in
  (* Residual of LS solution is orthogonal to the column space. *)
  let proj = Mat.mul_vec (Mat.transpose a) res in
  check_bool "normal equations" true (Vec.norm_inf proj < 1e-8)

(* ------------------------------------------------------------------ *)
(* Eig                                                                 *)
(* ------------------------------------------------------------------ *)

let sorted_real_parts zs =
  let l = Array.to_list zs in
  List.sort compare (List.map (fun (z : Complex.t) -> z.re) l)

let test_eig_diag () =
  let a = Mat.diag (Vec.of_list [ 3.0; -1.0; 0.5 ]) in
  let es = sorted_real_parts (Eig.eigenvalues a) in
  (match es with
  | [ x; y; z ] ->
    check_float_loose "e1" (-1.0) x;
    check_float_loose "e2" 0.5 y;
    check_float_loose "e3" 3.0 z
  | _ -> Alcotest.fail "expected 3 eigenvalues");
  check_float_loose "radius" 3.0 (Eig.spectral_radius a)

let test_eig_rotation_complex () =
  (* Rotation by 90 degrees has eigenvalues +-i. *)
  let a = Mat.of_lists [ [ 0.0; -1.0 ]; [ 1.0; 0.0 ] ] in
  let es = Eig.eigenvalues a in
  let ims = List.sort compare (List.map (fun (z : Complex.t) -> z.im) (Array.to_list es)) in
  (match ims with
  | [ x; y ] ->
    check_float_loose "im -1" (-1.0) x;
    check_float_loose "im +1" 1.0 y
  | _ -> Alcotest.fail "expected 2 eigenvalues");
  check_float_loose "radius" 1.0 (Eig.spectral_radius a)

let test_eig_known_3x3 () =
  (* Companion matrix of (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6. *)
  let a =
    Mat.of_lists
      [ [ 6.0; -11.0; 6.0 ]; [ 1.0; 0.0; 0.0 ]; [ 0.0; 1.0; 0.0 ] ]
  in
  match sorted_real_parts (Eig.eigenvalues a) with
  | [ x; y; z ] ->
    check_float_loose "root 1" 1.0 x;
    check_float_loose "root 2" 2.0 y;
    check_float_loose "root 3" 3.0 z
  | _ -> Alcotest.fail "expected 3 eigenvalues"

let test_eig_trace_sum () =
  let a = Mat.random ~seed:16 8 8 in
  let es = Eig.eigenvalues a in
  let sum_re = Array.fold_left (fun acc (z : Complex.t) -> acc +. z.re) 0.0 es in
  let sum_im = Array.fold_left (fun acc (z : Complex.t) -> acc +. z.im) 0.0 es in
  check_float_loose "sum = trace" (Mat.trace a) sum_re;
  check_float_loose "imaginary parts cancel" 0.0 sum_im

let test_eig_stability_predicates () =
  let stable = Mat.diag (Vec.of_list [ 0.5; -0.9 ]) in
  let unstable = Mat.diag (Vec.of_list [ 0.5; -1.1 ]) in
  check_bool "discrete stable" true (Eig.is_stable_discrete stable);
  check_bool "discrete unstable" false (Eig.is_stable_discrete unstable);
  let cs = Mat.diag (Vec.of_list [ -0.1; -2.0 ]) in
  let cu = Mat.diag (Vec.of_list [ -0.1; 0.3 ]) in
  check_bool "continuous stable" true (Eig.is_stable_continuous cs);
  check_bool "continuous unstable" false (Eig.is_stable_continuous cu)

let test_eig_hessenberg_preserves_spectrum () =
  let a = Mat.random ~seed:17 6 6 in
  let h = Eig.hessenberg a in
  (* Hessenberg form: zero below the first subdiagonal. *)
  let ok = ref true in
  for i = 2 to 5 do
    for j = 0 to i - 2 do
      if Float.abs (Mat.get h i j) > 1e-12 then ok := false
    done
  done;
  check_bool "structure" true !ok;
  check_float_loose "same trace" (Mat.trace a) (Mat.trace h)

let test_eig_symmetric () =
  let a = Mat.of_lists [ [ 2.0; 1.0 ]; [ 1.0; 2.0 ] ] in
  let values, vectors = Eig.symmetric a in
  check_float_loose "lambda min" 1.0 values.(0);
  check_float_loose "lambda max" 3.0 values.(1);
  (* Reconstruct a = V diag V^T. *)
  let recon = Mat.mul3 vectors (Mat.diag values) (Mat.transpose vectors) in
  Alcotest.check mat "reconstruction" a recon

let test_eig_psd () =
  let a = Mat.of_lists [ [ 2.0; 1.0 ]; [ 1.0; 2.0 ] ] in
  check_bool "pd" true (Eig.is_positive_definite a);
  let b = Mat.of_lists [ [ 1.0; 2.0 ]; [ 2.0; 1.0 ] ] in
  check_bool "indefinite" false (Eig.is_positive_semidefinite b);
  let c = Mat.of_lists [ [ 1.0; 1.0 ]; [ 1.0; 1.0 ] ] in
  check_bool "psd boundary" true (Eig.is_positive_semidefinite c);
  check_bool "not pd" false (Eig.is_positive_definite c)

(* ------------------------------------------------------------------ *)
(* SVD                                                                 *)
(* ------------------------------------------------------------------ *)

let test_svd_reconstruct () =
  let a = Mat.random ~seed:18 5 3 in
  let u, s, v = Svd.decompose a in
  let recon = Mat.mul3 u (Mat.diag s) (Mat.transpose v) in
  Alcotest.check mat "u s v^T" a recon;
  check_bool "u orthonormal" true (Qr.orthonormal_columns u);
  check_bool "v orthonormal" true (Qr.orthonormal_columns v)

let test_svd_wide () =
  let a = Mat.random ~seed:19 3 6 in
  let u, s, v = Svd.decompose a in
  let recon = Mat.mul3 u (Mat.diag s) (Mat.transpose v) in
  Alcotest.check mat "wide reconstruction" a recon

let test_svd_descending () =
  let s = Svd.singular_values (Mat.random ~seed:20 6 6) in
  let ok = ref true in
  for i = 0 to Vec.dim s - 2 do
    if s.(i) < s.(i + 1) then ok := false
  done;
  check_bool "descending" true !ok;
  check_bool "non-negative" true (Array.for_all (fun x -> x >= 0.0) s)

let test_svd_known () =
  let a = Mat.diag (Vec.of_list [ 3.0; -4.0 ]) in
  let s = Svd.singular_values a in
  check_float_loose "sv max" 4.0 s.(0);
  check_float_loose "sv min" 3.0 s.(1);
  check_float_loose "norm2" 4.0 (Svd.norm2 a)

let test_svd_rank () =
  let a = Mat.of_lists [ [ 1.0; 2.0 ]; [ 2.0; 4.0 ] ] in
  check_int "rank deficient" 1 (Svd.rank a);
  check_int "full rank" 2 (Svd.rank (Mat.identity 2));
  check_bool "cond inf" true (Svd.cond a = infinity)

let test_svd_pinv () =
  let a = Mat.random ~seed:21 5 3 in
  let p = Svd.pinv a in
  (* Moore-Penrose: a p a = a. *)
  Alcotest.check mat "a p a = a" a (Mat.mul3 a p a);
  Alcotest.check mat "p a p = p" p (Mat.mul3 p a p)

let test_svd_norm2_complex () =
  let c = Cmat.diag [| { Complex.re = 0.0; im = 5.0 }; { re = 1.0; im = 0.0 } |] in
  check_float_loose "complex norm" 5.0 (Svd.norm2_complex c)

(* ------------------------------------------------------------------ *)
(* Cmat                                                                *)
(* ------------------------------------------------------------------ *)

let test_cmat_mul_inv () =
  let a =
    Cmat.init 3 3 (fun i j ->
        {
          Complex.re = Float.of_int ((i * 3) + j + 1);
          im = (if i = j then 2.0 else -1.0);
        })
  in
  let ai = Cmat.inv a in
  check_bool "a * inv a = I" true
    (Cmat.approx_equal ~tol:1e-9 (Cmat.mul a ai) (Cmat.identity 3))

let test_cmat_conj_transpose () =
  let z = { Complex.re = 1.0; im = 2.0 } in
  let a = Cmat.init 1 2 (fun _ j -> if j = 0 then z else Complex.one) in
  let h = Cmat.conj_transpose a in
  let z' = Cmat.get h 0 0 in
  check_float "re" 1.0 z'.Complex.re;
  check_float "im" (-2.0) z'.Complex.im

let test_cmat_real_roundtrip () =
  let m = Mat.random ~seed:22 3 4 in
  Alcotest.check mat "of_real/real_part" m (Cmat.real_part (Cmat.of_real m));
  check_bool "imag zero" true
    (Mat.approx_equal (Cmat.imag_part (Cmat.of_real m)) (Mat.create 3 4))

let test_cmat_solve () =
  let a = Cmat.of_real (Mat.add (Mat.random ~seed:23 4 4) (Mat.scalar 4 3.0)) in
  let b = Cmat.of_real (Mat.random ~seed:24 4 2) in
  let x = Cmat.solve a b in
  check_bool "a x = b" true (Cmat.approx_equal ~tol:1e-9 (Cmat.mul a x) b)

(* ------------------------------------------------------------------ *)
(* Expm                                                                *)
(* ------------------------------------------------------------------ *)

let test_expm_zero () =
  Alcotest.check mat "e^0 = I" (Mat.identity 3) (Expm.expm (Mat.create 3 3))

let test_expm_diag () =
  let a = Mat.diag (Vec.of_list [ 1.0; -2.0 ]) in
  let e = Expm.expm a in
  check_float_loose "e^1" (exp 1.0) (Mat.get e 0 0);
  check_float_loose "e^-2" (exp (-2.0)) (Mat.get e 1 1);
  check_float_loose "off-diagonal" 0.0 (Mat.get e 0 1)

let test_expm_nilpotent () =
  (* exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly. *)
  let a = Mat.of_lists [ [ 0.0; 1.0 ]; [ 0.0; 0.0 ] ] in
  Alcotest.check mat "shear" (Mat.of_lists [ [ 1.0; 1.0 ]; [ 0.0; 1.0 ] ])
    (Expm.expm a)

let test_expm_rotation () =
  (* exp(theta * [[0,-1],[1,0]]) is rotation by theta. *)
  let theta = 0.7 in
  let a = Mat.scale theta (Mat.of_lists [ [ 0.0; -1.0 ]; [ 1.0; 0.0 ] ]) in
  let e = Expm.expm a in
  check_float_loose "cos" (cos theta) (Mat.get e 0 0);
  check_float_loose "sin" (sin theta) (Mat.get e 1 0)

let test_expm_inverse_property () =
  let a = Mat.random ~seed:25 4 4 in
  let e = Expm.expm a and em = Expm.expm (Mat.neg a) in
  check_bool "e^a e^-a = I" true
    (Mat.approx_equal ~tol:1e-7 (Mat.mul e em) (Mat.identity 4))

(* ------------------------------------------------------------------ *)
(* In-place kernels and workspace                                      *)
(* ------------------------------------------------------------------ *)

(* Exact (bit-level) equality: the in-place kernels promise the same
   float ops in the same order as their allocating counterparts. *)
let mat_exact =
  Alcotest.testable Mat.pp (fun a b ->
      a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols
      && a.Mat.data = b.Mat.data)

(* Destination prefilled with garbage: the kernels must overwrite fully. *)
let garbage m n = Mat.map (fun x -> (x *. 17.0) +. 3.0) (Mat.random ~seed:99 m n)

let elementwise_shapes = [ (3, 3); (2, 5); (5, 2); (1, 1); (0, 0); (0, 3) ]

let test_inplace_elementwise_matches_pure () =
  List.iter
    (fun (m, n) ->
      let seed = (31 * m) + n in
      let a = Mat.random ~seed m n in
      let b = Mat.random ~seed:(seed + 1) m n in
      let dst = garbage m n in
      Mat.copy_into ~dst a;
      Alcotest.check mat_exact "copy_into" a dst;
      Mat.add_into ~dst a b;
      Alcotest.check mat_exact "add_into" (Mat.add a b) dst;
      Mat.sub_into ~dst a b;
      Alcotest.check mat_exact "sub_into" (Mat.sub a b) dst;
      Mat.scale_into ~dst 1.7 a;
      Alcotest.check mat_exact "scale_into" (Mat.scale 1.7 a) dst;
      Mat.copy_into ~dst a;
      Mat.axpy ~dst 0.3 b;
      Alcotest.check mat_exact "axpy" (Mat.add a (Mat.scale 0.3 b)) dst)
    elementwise_shapes

let test_inplace_mul_matches_pure () =
  List.iter
    (fun (m, k, n) ->
      let seed = (7 * m) + (5 * k) + n in
      let a = Mat.random ~seed m k in
      let b = Mat.random ~seed:(seed + 1) k n in
      let dst = garbage m n in
      Mat.mul_into ~dst a b;
      Alcotest.check mat_exact "mul_into" (Mat.mul a b) dst;
      let v = (Mat.random ~seed:(seed + 2) 1 k).Mat.data in
      let vdst = Array.make m Float.nan in
      Mat.mul_vec_into ~dst:vdst a v;
      check_bool "mul_vec_into" true (Mat.mul_vec a v = vdst))
    [ (3, 3, 3); (2, 5, 4); (5, 2, 1); (1, 1, 1); (0, 3, 2); (3, 0, 2) ]

let test_inplace_permutation_matches_pure () =
  List.iter
    (fun (m, n) ->
      let a = Mat.random ~seed:((13 * m) + n) m n in
      let dst = garbage n m in
      Mat.transpose_into ~dst a;
      Alcotest.check mat_exact "transpose_into" (Mat.transpose a) dst;
      if m = n then begin
        let sdst = garbage n n in
        Mat.symmetrize_into ~dst:sdst a;
        Alcotest.check mat_exact "symmetrize_into" (Mat.symmetrize a) sdst
      end)
    elementwise_shapes

let test_inplace_aliasing_rules () =
  let a = Mat.random ~seed:3 3 3 and b = Mat.random ~seed:4 3 3 in
  Alcotest.check_raises "mul_into dst==a"
    (Invalid_argument "Mat.mul_into: dst aliases a source matrix") (fun () ->
      Mat.mul_into ~dst:a a b);
  Alcotest.check_raises "mul_into dst==b"
    (Invalid_argument "Mat.mul_into: dst aliases a source matrix") (fun () ->
      Mat.mul_into ~dst:b a b);
  Alcotest.check_raises "transpose_into dst==a"
    (Invalid_argument "Mat.transpose_into: dst aliases a source matrix")
    (fun () -> Mat.transpose_into ~dst:a a);
  Alcotest.check_raises "symmetrize_into dst==a"
    (Invalid_argument "Mat.symmetrize_into: dst aliases a source matrix")
    (fun () -> Mat.symmetrize_into ~dst:a a);
  let v = [| 1.0; 2.0; 3.0 |] in
  Alcotest.check_raises "mul_vec_into dst==v"
    (Invalid_argument "Mat.mul_vec_into: dst aliases a source") (fun () ->
      Mat.mul_vec_into ~dst:v a v);
  (* Elementwise kernels accept aliasing: each entry is read before
     written. *)
  let c = Mat.copy a in
  Mat.add_into ~dst:c c b;
  Alcotest.check mat_exact "aliased add_into" (Mat.add a b) c;
  (* Zero-length storage is shared by the runtime, so empty in-place ops
     must not trip the aliasing check. *)
  let e1 = Mat.create 0 3 and e2 = Mat.create 3 0 in
  Mat.mul_into ~dst:(Mat.create 0 0) e1 e2

let test_workspace_reuses_buffers () =
  let ws = Workspace.create () in
  let m1 = Workspace.mat ws 3 4 in
  let m2 = Workspace.mat ws 3 4 in
  check_bool "distinct leases" true (not (m1.Mat.data == m2.Mat.data));
  let v1 = Workspace.vec ws 5 in
  Workspace.reset ws;
  let m1' = Workspace.mat ws 3 4 in
  let m2' = Workspace.mat ws 3 4 in
  let v1' = Workspace.vec ws 5 in
  check_bool "mat buffer reused" true
    (m1'.Mat.data == m1.Mat.data || m1'.Mat.data == m2.Mat.data);
  check_bool "second mat reused" true
    (m2'.Mat.data == m1.Mat.data || m2'.Mat.data == m2.Mat.data);
  check_bool "vec buffer reused" true (v1' == v1);
  (* Composite leases match the pure operations bit-for-bit. *)
  Workspace.reset ws;
  let a = Mat.random ~seed:21 3 4
  and b = Mat.random ~seed:22 4 2
  and c = Mat.random ~seed:23 2 5 in
  Alcotest.check mat_exact "ws transpose" (Mat.transpose a)
    (Workspace.transpose ws a);
  Alcotest.check mat_exact "ws mul" (Mat.mul a b) (Workspace.mul ws a b);
  Alcotest.check mat_exact "ws mul3" (Mat.mul3 a b c)
    (Workspace.mul3 ws a b c)

let test_workspace_leak_check () =
  let ws = Workspace.create () in
  Workspace.set_leak_check true;
  Fun.protect
    ~finally:(fun () -> Workspace.set_leak_check false)
    (fun () ->
      (* Iteration-stable lease pattern: allocates on the first pass,
         re-leases forever after — never trips the check. *)
      for _pass = 1 to 4 do
        Workspace.reset ws;
        ignore (Workspace.mat ws 3 3);
        ignore (Workspace.vec ws 4)
      done;
      (* Growing pattern: a second 3x3 lease appearing only after the
         pool has warmed up is exactly the leak the check exists for. *)
      Workspace.reset ws;
      ignore (Workspace.mat ws 3 3);
      (match Workspace.mat ws 3 3 with
      | _ -> Alcotest.fail "leaky matrix lease pattern not detected"
      | exception Failure _ -> ());
      (match Workspace.vec ws 9 with
      | _ -> Alcotest.fail "leaky vector lease pattern not detected"
      | exception Failure _ -> ());
      (* A fresh workspace still warms up freely with the check on. *)
      let ws2 = Workspace.create () in
      Workspace.reset ws2;
      ignore (Workspace.mat ws2 2 2))

let contains_substring s sub =
  let ls = String.length s and lb = String.length sub in
  let rec scan i = i + lb <= ls && (String.sub s i lb = sub || scan (i + 1)) in
  scan 0

let test_svd_unconverged_reported () =
  (* A dense random 8x8 cannot be column-orthogonalized in one Jacobi
     sweep; with the cap forced to 1 the run must report rather than
     silently return. *)
  let a = Mat.random ~seed:77 8 8 in
  let ctr = Obs.Metrics.counter "svd.unconverged" in
  let before = Obs.Metrics.count ctr in
  Obs.Collector.enable ();
  let s, lines =
    Obs.Collector.capture (fun () -> Svd.singular_values ~max_sweeps:1 a)
  in
  Obs.Collector.disable ();
  check_bool "unconverged counter bumped" true (Obs.Metrics.count ctr > before);
  check_bool "debug record emitted" true
    (List.exists (fun l -> contains_substring l "svd.unconverged") lines);
  check_int "capped run still returns values" 8 (Vec.dim s);
  (* The default cap does converge on the same matrix and reports
     nothing. *)
  let before2 = Obs.Metrics.count ctr in
  Obs.Collector.enable ();
  let s_full, lines2 =
    Obs.Collector.capture (fun () -> Svd.singular_values a)
  in
  Obs.Collector.disable ();
  check_int "no further unconverged" before2 (Obs.Metrics.count ctr);
  check_bool "no debug record" true
    (not (List.exists (fun l -> contains_substring l "svd.unconverged") lines2));
  check_bool "descending" true
    (Array.for_all (fun x -> x <= s_full.(0)) s_full)

(* ------------------------------------------------------------------ *)
(* Francis real QR vs the complex-arithmetic reference                 *)
(* ------------------------------------------------------------------ *)

(* Greedy nearest-match pairing. Sorting eigenvalues lexicographically
   mispairs conjugate partners that differ by one ulp in the real part,
   so instead match each reference eigenvalue to its closest remaining
   computed one and report the worst matched distance. *)
let max_pair_distance reference computed =
  let used = Array.make (Array.length computed) false in
  Array.fold_left
    (fun worst (z : Complex.t) ->
      let best = ref (-1) and bestd = ref infinity in
      Array.iteri
        (fun i (w : Complex.t) ->
          if not used.(i) then begin
            let d = Complex.norm (Complex.sub z w) in
            if d < !bestd then begin
              bestd := d;
              best := i
            end
          end)
        computed;
      used.(!best) <- true;
      Float.max worst !bestd)
    0.0 reference

let francis_matches_ref ?(tol = 1e-6) a =
  let reference = Eig.eigenvalues_complex_ref a in
  let computed = Eig.eigenvalues a in
  Array.length computed = Array.length reference
  && max_pair_distance reference computed
     <= tol *. Float.max 1.0 (Mat.norm_inf a)

let random_orthogonal ~seed n =
  let { Qr.q; _ } = Qr.factorize (Mat.random ~seed n n) in
  q

let test_eig_francis_repeated () =
  (* Dense matrix orthogonally similar to a triangular one carrying
     eigenvalue 2 with multiplicity 4 and eigenvalue 5 with
     multiplicity 2. The defective cluster perturbs like eps^(1/4), so
     the per-eigenvalue tolerance is loose; the trace identity stays
     tight. *)
  let n = 6 in
  let t =
    Mat.init n n (fun i j ->
        if i = j then if i < 4 then 2.0 else 5.0
        else if j > i then 0.7
        else 0.0)
  in
  let q = random_orthogonal ~seed:31 n in
  let a = Mat.mul3 q t (Mat.transpose q) in
  let es = Eig.eigenvalues a in
  check_int "count" n (Array.length es);
  let near c (z : Complex.t) = Complex.norm { re = z.re -. c; im = z.im } < 5e-3 in
  check_int "multiplicity of 2" 4
    (Array.length (Array.of_list (List.filter (near 2.0) (Array.to_list es))));
  check_int "multiplicity of 5" 2
    (Array.length (Array.of_list (List.filter (near 5.0) (Array.to_list es))));
  let sum = Array.fold_left (fun acc (z : Complex.t) -> acc +. z.re) 0.0 es in
  check_float_loose "trace" (Mat.trace a) sum

let test_eig_francis_interior_deflation () =
  (* Exactly block-triangular Hessenberg input: the zero at (4,3) splits
     the 8x8 into two independent 4x4 problems, so Francis must deflate
     at the interior zero instead of chasing bulges across it. *)
  let n = 8 in
  let h =
    Mat.init n n (fun i j ->
        if i > j + 1 then 0.0
        else if i = 4 && j = 3 then 0.0
        else Float.of_int (((i * n) + j) mod 7 - 3) /. 2.0)
  in
  check_bool "matches complex reference" true
    (francis_matches_ref ~tol:1e-7 h);
  (* And with several committed zero subdiagonals at once. *)
  let h2 =
    Mat.init n n (fun i j ->
        if i > j + 1 then 0.0
        else if i = j + 1 && (i = 2 || i = 5) then 0.0
        else Float.of_int (((3 * i) + (2 * j)) mod 5 - 2))
  in
  check_bool "multiple splits" true (francis_matches_ref ~tol:1e-7 h2)

let test_eig_francis_clustered_symmetric () =
  (* Tight spectral clusters (gaps of 1e-8) are the classic stall case
     for naive shift strategies; the exact spectrum is known by
     construction. *)
  let d =
    Vec.of_list [ 1.0; 1.0 +. 1e-8; 1.0 +. 2e-8; 4.0; 4.0 +. 1e-8; 7.0 ]
  in
  let n = Vec.dim d in
  let q = random_orthogonal ~seed:57 n in
  let a = Mat.mul3 q (Mat.diag d) (Mat.transpose q) in
  let reference = Array.map (fun x -> { Complex.re = x; im = 0.0 }) d in
  let computed = Eig.eigenvalues a in
  check_int "count" n (Array.length computed);
  check_bool "clustered spectrum recovered" true
    (max_pair_distance reference computed < 1e-6)

(* ------------------------------------------------------------------ *)
(* Properties (qcheck)                                                 *)
(* ------------------------------------------------------------------ *)

let small_float = QCheck.Gen.float_range (-5.0) 5.0

let gen_mat n =
  QCheck.Gen.(
    array_size (return (n * n)) small_float
    |> map (fun data -> { Mat.rows = n; cols = n; data }))

let arb_mat3 = QCheck.make ~print:(Format.asprintf "%a" Mat.pp) (gen_mat 3)

let arb_mat_pair =
  QCheck.make
    ~print:(fun (a, b) -> Format.asprintf "%a@.%a" Mat.pp a Mat.pp b)
    QCheck.Gen.(pair (gen_mat 3) (gen_mat 3))

let arb_mat_sized =
  QCheck.make
    ~print:(Format.asprintf "%a" Mat.pp)
    QCheck.Gen.(int_range 4 16 >>= gen_mat)

let prop_francis_matches_reference =
  QCheck.Test.make ~name:"francis real qr = complex qr reference" ~count:60
    arb_mat_sized francis_matches_ref

let prop_transpose_product =
  QCheck.Test.make ~name:"(ab)^T = b^T a^T" ~count:100 arb_mat_pair
    (fun (a, b) ->
      Mat.approx_equal ~tol:1e-8
        (Mat.transpose (Mat.mul a b))
        (Mat.mul (Mat.transpose b) (Mat.transpose a)))

let prop_add_commutative =
  QCheck.Test.make ~name:"a+b = b+a" ~count:100 arb_mat_pair (fun (a, b) ->
      Mat.approx_equal (Mat.add a b) (Mat.add b a))

let prop_trace_similarity =
  QCheck.Test.make ~name:"trace(ab) = trace(ba)" ~count:100 arb_mat_pair
    (fun (a, b) ->
      Float.abs (Mat.trace (Mat.mul a b) -. Mat.trace (Mat.mul b a)) < 1e-7)

let prop_lu_solve =
  QCheck.Test.make ~name:"lu solve residual" ~count:100 arb_mat3 (fun a ->
      (* Shift to ensure invertibility. *)
      let a = Mat.add a (Mat.scalar 3 20.0) in
      let b = Vec.of_list [ 1.0; -2.0; 0.5 ] in
      let x = Lu.solve_vec (Lu.factorize a) b in
      Vec.norm_inf (Vec.sub (Mat.mul_vec a x) b) < 1e-7)

let prop_qr_orthonormal =
  QCheck.Test.make ~name:"qr q orthonormal" ~count:60 arb_mat3 (fun a ->
      let { Qr.q; r } = Qr.factorize a in
      Qr.orthonormal_columns ~tol:1e-7 q
      && Mat.approx_equal ~tol:1e-7 (Mat.mul q r) a)

let prop_svd_norm_bounds =
  QCheck.Test.make ~name:"fro >= 2-norm >= fro/sqrt(n)" ~count:60 arb_mat3
    (fun a ->
      let two = Svd.norm2 a and fro = Mat.norm_fro a in
      two <= fro +. 1e-7 && fro <= (two *. sqrt 3.0) +. 1e-7)

let prop_spectral_radius_bounded =
  QCheck.Test.make ~name:"rho(a) <= ||a||_inf" ~count:60 arb_mat3 (fun a ->
      Eig.spectral_radius a <= Mat.norm_inf a +. 1e-6)

let prop_symmetric_eig_bounds =
  QCheck.Test.make ~name:"symmetric eig within gershgorin" ~count:60 arb_mat3
    (fun a ->
      let s = Mat.symmetrize a in
      let values = Eig.symmetric_values s in
      let bound = Mat.norm_inf s +. 1e-7 in
      Array.for_all (fun x -> Float.abs x <= bound) values)

let prop_expm_det =
  (* det(e^A) = e^trace(A). *)
  QCheck.Test.make ~name:"det expm = exp trace" ~count:40 arb_mat3 (fun a ->
      let a = Mat.scale 0.3 a in
      let lhs = Lu.det (Expm.expm a) in
      let rhs = exp (Mat.trace a) in
      Float.abs (lhs -. rhs) <= 1e-5 *. Float.max 1.0 (Float.abs rhs))

let prop_inplace_mul_exact =
  QCheck.Test.make ~name:"mul_into bitwise equals mul" ~count:100 arb_mat_pair
    (fun (a, b) ->
      let dst = Mat.create 3 3 in
      Mat.mul_into ~dst a b;
      dst.Mat.data = (Mat.mul a b).Mat.data)

let prop_inplace_add_sub_exact =
  QCheck.Test.make ~name:"add_into/sub_into bitwise equal add/sub" ~count:100
    arb_mat_pair (fun (a, b) ->
      let dst = Mat.create 3 3 in
      Mat.add_into ~dst a b;
      let add_ok = dst.Mat.data = (Mat.add a b).Mat.data in
      Mat.sub_into ~dst a b;
      add_ok && dst.Mat.data = (Mat.sub a b).Mat.data)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_transpose_product;
      prop_add_commutative;
      prop_trace_similarity;
      prop_lu_solve;
      prop_qr_orthonormal;
      prop_svd_norm_bounds;
      prop_spectral_radius_bounded;
      prop_symmetric_eig_bounds;
      prop_francis_matches_reference;
      prop_expm_det;
      prop_inplace_mul_exact;
      prop_inplace_add_sub_exact;
    ]


(* ------------------------------------------------------------------ *)
(* Round 2: degenerate shapes and numerical edges                      *)
(* ------------------------------------------------------------------ *)

let test_empty_matrix_ops () =
  let e = Mat.create 0 0 in
  check_int "rows" 0 e.Mat.rows;
  let p = Mat.mul e e in
  check_int "product empty" 0 p.Mat.rows;
  check_float "trace" 0.0 (Mat.trace e);
  check_float "fro" 0.0 (Mat.norm_fro e)

let test_one_by_one () =
  let a = Mat.of_lists [ [ 4.0 ] ] in
  check_float "det" 4.0 (Lu.det a);
  check_float "inv" 0.25 (Mat.get (Lu.inv a) 0 0);
  let s = Svd.singular_values a in
  check_float "sv" 4.0 s.(0);
  let es = Eig.eigenvalues a in
  check_float "eig" 4.0 es.(0).Complex.re

let test_mat_pow_negative_rejected () =
  Alcotest.check_raises "negative power"
    (Invalid_argument "Mat.pow: negative exponent") (fun () ->
      ignore (Mat.pow (Mat.identity 2) (-1)))

let test_lu_ill_conditioned_solve () =
  (* Hilbert-like 4x4: ill conditioned but solvable; residual must stay
     small even if the error grows. *)
  let a = Mat.init 4 4 (fun i j -> 1.0 /. Float.of_int (i + j + 1)) in
  let x_true = Vec.of_list [ 1.0; -1.0; 2.0; 0.5 ] in
  let b = Mat.mul_vec a x_true in
  let x = Lu.solve_vec (Lu.factorize a) b in
  let resid = Vec.norm_inf (Vec.sub (Mat.mul_vec a x) b) in
  check_bool "residual tiny" true (resid < 1e-10);
  check_bool "condition detected" true (Lu.cond_estimate a > 1e3)

let test_eig_repeated_eigenvalues () =
  (* Jordan-ish block: repeated eigenvalue 2. *)
  let a = Mat.of_lists [ [ 2.0; 1.0 ]; [ 0.0; 2.0 ] ] in
  let es = Eig.eigenvalues a in
  Array.iter
    (fun (z : Complex.t) ->
      check_bool "eigenvalue 2" true
        (Float.abs (z.re -. 2.0) < 1e-6 && Float.abs z.im < 1e-6))
    es

let test_svd_zero_matrix () =
  let s = Svd.singular_values (Mat.create 3 2) in
  check_bool "all zero" true (Array.for_all (fun x -> x = 0.0) s);
  check_float "norm2" 0.0 (Svd.norm2 (Mat.create 3 2));
  check_int "rank" 0 (Svd.rank (Mat.create 3 2))

let test_expm_large_norm_scaling () =
  (* Large-norm input exercises the squaring phase. *)
  let a = Mat.scale 8.0 (Mat.of_lists [ [ 0.0; -1.0 ]; [ 1.0; 0.0 ] ]) in
  let e = Expm.expm a in
  (* Rotation by 8 rad. *)
  check_bool "cos" true (Float.abs (Mat.get e 0 0 -. cos 8.0) < 1e-6);
  (* And e^a is orthogonal: |det| = 1. *)
  check_bool "det 1" true (Float.abs (Lu.det e -. 1.0) < 1e-6)

let test_cmat_singular_solve_raises () =
  let z = Cmat.create 2 2 in
  Alcotest.check_raises "singular" Lu.Singular (fun () ->
      ignore (Cmat.solve z (Cmat.identity 2)))

let round2_cases =
  [
    Alcotest.test_case "empty matrices" `Quick test_empty_matrix_ops;
    Alcotest.test_case "1x1" `Quick test_one_by_one;
    Alcotest.test_case "pow negative" `Quick test_mat_pow_negative_rejected;
    Alcotest.test_case "ill conditioned" `Quick test_lu_ill_conditioned_solve;
    Alcotest.test_case "repeated eigenvalues" `Quick
      test_eig_repeated_eigenvalues;
    Alcotest.test_case "svd zero" `Quick test_svd_zero_matrix;
    Alcotest.test_case "expm large norm" `Quick test_expm_large_norm_scaling;
    Alcotest.test_case "cmat singular" `Quick test_cmat_singular_solve_raises;
  ]

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "arith" `Quick test_vec_arith;
          Alcotest.test_case "basis" `Quick test_vec_basis;
          Alcotest.test_case "norm2 overflow" `Quick test_vec_norm2_overflow;
          Alcotest.test_case "slice/concat" `Quick test_vec_slice_concat;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity mul" `Quick test_mat_identity_mul;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "mul known" `Quick test_mat_mul_known;
          Alcotest.test_case "blocks" `Quick test_mat_blocks;
          Alcotest.test_case "block roundtrip" `Quick test_mat_block_roundtrip;
          Alcotest.test_case "hcat/vcat" `Quick test_mat_hcat_vcat;
          Alcotest.test_case "trace and norms" `Quick test_mat_trace_norms;
          Alcotest.test_case "pow" `Quick test_mat_pow;
          Alcotest.test_case "symmetrize" `Quick test_mat_symmetrize;
          Alcotest.test_case "mul_vec" `Quick test_mat_mul_vec;
          Alcotest.test_case "dim mismatch" `Quick test_mat_dim_mismatch;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve known" `Quick test_lu_solve_known;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "solve_right" `Quick test_lu_solve_right;
          Alcotest.test_case "cond estimate" `Quick test_lu_cond;
        ] );
      ( "qr",
        [
          Alcotest.test_case "reconstruct" `Quick test_qr_reconstruct;
          Alcotest.test_case "full" `Quick test_qr_full;
          Alcotest.test_case "r triangular" `Quick test_qr_r_triangular;
          Alcotest.test_case "least squares exact" `Quick test_qr_least_squares;
          Alcotest.test_case "ls residual orthogonal" `Quick
            test_qr_least_squares_residual_orthogonal;
        ] );
      ( "eig",
        [
          Alcotest.test_case "diagonal" `Quick test_eig_diag;
          Alcotest.test_case "rotation complex pair" `Quick
            test_eig_rotation_complex;
          Alcotest.test_case "companion 3x3" `Quick test_eig_known_3x3;
          Alcotest.test_case "trace = sum" `Quick test_eig_trace_sum;
          Alcotest.test_case "stability predicates" `Quick
            test_eig_stability_predicates;
          Alcotest.test_case "hessenberg" `Quick
            test_eig_hessenberg_preserves_spectrum;
          Alcotest.test_case "symmetric" `Quick test_eig_symmetric;
          Alcotest.test_case "psd checks" `Quick test_eig_psd;
          Alcotest.test_case "francis repeated eigenvalues" `Quick
            test_eig_francis_repeated;
          Alcotest.test_case "francis interior deflation" `Quick
            test_eig_francis_interior_deflation;
          Alcotest.test_case "francis clustered symmetric" `Quick
            test_eig_francis_clustered_symmetric;
        ] );
      ( "svd",
        [
          Alcotest.test_case "reconstruct tall" `Quick test_svd_reconstruct;
          Alcotest.test_case "reconstruct wide" `Quick test_svd_wide;
          Alcotest.test_case "descending" `Quick test_svd_descending;
          Alcotest.test_case "known values" `Quick test_svd_known;
          Alcotest.test_case "rank" `Quick test_svd_rank;
          Alcotest.test_case "pinv" `Quick test_svd_pinv;
          Alcotest.test_case "complex norm" `Quick test_svd_norm2_complex;
        ] );
      ( "cmat",
        [
          Alcotest.test_case "mul/inv" `Quick test_cmat_mul_inv;
          Alcotest.test_case "conj transpose" `Quick test_cmat_conj_transpose;
          Alcotest.test_case "real roundtrip" `Quick test_cmat_real_roundtrip;
          Alcotest.test_case "solve" `Quick test_cmat_solve;
        ] );
      ( "expm",
        [
          Alcotest.test_case "zero" `Quick test_expm_zero;
          Alcotest.test_case "diagonal" `Quick test_expm_diag;
          Alcotest.test_case "nilpotent" `Quick test_expm_nilpotent;
          Alcotest.test_case "rotation" `Quick test_expm_rotation;
          Alcotest.test_case "inverse property" `Quick
            test_expm_inverse_property;
        ] );
      ( "inplace",
        [
          Alcotest.test_case "elementwise = pure" `Quick
            test_inplace_elementwise_matches_pure;
          Alcotest.test_case "mul = pure" `Quick test_inplace_mul_matches_pure;
          Alcotest.test_case "transpose/symmetrize = pure" `Quick
            test_inplace_permutation_matches_pure;
          Alcotest.test_case "aliasing rules" `Quick test_inplace_aliasing_rules;
          Alcotest.test_case "workspace reuse" `Quick
            test_workspace_reuses_buffers;
          Alcotest.test_case "workspace leak check" `Quick
            test_workspace_leak_check;
          Alcotest.test_case "svd unconverged reported" `Quick
            test_svd_unconverged_reported;
        ] );
      ("edge cases", round2_cases);
      ("properties", qcheck_cases);
    ]
