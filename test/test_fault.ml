(* Tests for the fault-injection subsystem: the schedule generator's
   determinism, the injector's strict pass-through on an empty schedule
   (bit-identical metrics), campaign degradation on a smoke-sized run,
   the configurable stepping epoch, and the sensor RNG reset. *)

open Board
open Yukta

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A workload small enough that a full scheme run is test-sized but
   long enough for a 60 s fault campaign to land inside it. *)
let small_workload () =
  [ Workload.scale ~ginsts:400.0 (Workload.by_name "blackscholes") ]

(* Heuristic schemes only: no SSV synthesis in the test suite. *)
let coord () = Schemes.find_exn "coord"
let decoupled () = Schemes.find_exn "decoupled"

(* ------------------------------------------------------------------ *)
(* Spec                                                                *)
(* ------------------------------------------------------------------ *)

let test_spec_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "negative start" true
    (raises (fun () ->
         Fault.Spec.make ~start:(-1.0) ~duration:1.0
           (Fault.Spec.Power_gain_drift 0.5)));
  check_bool "zero duration" true
    (raises (fun () ->
         Fault.Spec.make ~start:1.0 ~duration:0.0
           (Fault.Spec.Power_gain_drift 0.5)));
  check_bool "bad severity" true
    (raises (fun () ->
         Fault.Spec.make ~start:1.0 ~duration:1.0
           (Fault.Spec.Power_gain_drift 0.0)));
  let ok =
    Fault.Spec.make ~start:1.0 ~duration:2.0
      (Fault.Spec.Sensor (Fault.Spec.Perf, Fault.Spec.Dropout))
  in
  Alcotest.(check (float 1e-12)) "stop" 3.0 (Fault.Spec.stop ok)

(* ------------------------------------------------------------------ *)
(* Schedule determinism                                                *)
(* ------------------------------------------------------------------ *)

let test_schedule_deterministic () =
  let profile = Fault.Schedule.in_guardband ~horizon:90.0 ~count:8 () in
  let a = Fault.Schedule.generate ~seed:123 profile in
  let b = Fault.Schedule.generate ~seed:123 profile in
  check_bool "same seed, same schedule" true (a = b);
  check_int "count honored" 8 (List.length a);
  let c = Fault.Schedule.generate ~seed:124 profile in
  check_bool "different seed, different schedule" true (a <> c);
  (* Sorted by start, inside the horizon window. *)
  let sorted = ref true and prev = ref neg_infinity in
  List.iter
    (fun f ->
      if f.Fault.Spec.start < !prev then sorted := false;
      prev := f.Fault.Spec.start;
      check_bool "start in window" true
        (f.Fault.Spec.start >= 0.0 && f.Fault.Spec.start <= 90.0);
      check_bool "positive duration" true (f.Fault.Spec.duration > 0.0))
    a;
  check_bool "sorted by start" true !sorted

(* ------------------------------------------------------------------ *)
(* Injector pass-through                                               *)
(* ------------------------------------------------------------------ *)

(* An injector over an empty schedule must be bitwise invisible: the
   identity hooks and gain-1.0 multiplications change nothing, so the
   metrics match an uninjected run exactly (not approximately). *)
let test_empty_schedule_passthrough () =
  let workloads = small_workload () in
  let bare = Schemes.run (coord ()) workloads in
  let injector = Fault.Injector.make [] in
  let injected =
    Schemes.run ~injector:(Fault.Injector.hooks injector) (coord ()) workloads
  in
  let mb = bare.Stack.metrics and mi = injected.Stack.metrics in
  check_bool "execution time bit-identical" true
    (mb.Xu3.execution_time = mi.Xu3.execution_time);
  check_bool "energy bit-identical" true
    (mb.Xu3.total_energy = mi.Xu3.total_energy);
  check_bool "E x D bit-identical" true
    (mb.Xu3.energy_delay = mi.Xu3.energy_delay);
  check_int "trips identical" mb.Xu3.trips mi.Xu3.trips;
  check_int "no injections" 0 (Fault.Injector.injections injector)

(* An injection event is a dump trigger: with the flight recorder armed,
   the moment a fault lands the preceding event window is snapshotted. *)
let test_injection_dumps_recorder () =
  Obs.Collector.disable ();
  Obs.Recorder.clear ();
  Obs.Recorder.enable ~capacity:16 ();
  let fault =
    Fault.Spec.make ~start:2.0 ~duration:3.0 (Fault.Spec.Power_gain_drift 0.5)
  in
  let injector = Fault.Injector.make [ fault ] in
  ignore
    (Schemes.run ~max_time:30.0 ~injector:(Fault.Injector.hooks injector)
       (coord ()) (small_workload ()));
  check_int "fault fired once" 1 (Fault.Injector.injections injector);
  check_int "one dump per injection" 1 (Obs.Recorder.dump_count ());
  let reasons =
    List.filter_map
      (fun d ->
        Option.bind
          (Option.bind (Obs.Json.member "fields" d)
             (Obs.Json.member "reason"))
          Obs.Json.to_string_opt)
      (Obs.Recorder.dumps ())
  in
  check_bool "dump reason is fault.inject" true (reasons = [ "fault.inject" ]);
  Obs.Recorder.disable ();
  Obs.Recorder.clear ()

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let test_campaign_degradation () =
  let profile = Fault.Schedule.out_of_guardband ~horizon:60.0 ~count:4 () in
  let schedule = Fault.Schedule.generate ~seed:42 profile in
  let outcomes =
    Fault.Campaign.run ~max_time:120.0
      ~schemes:[ coord (); decoupled () ]
      ~workloads:(small_workload ()) schedule
  in
  check_int "one outcome per scheme" 2 (List.length outcomes);
  List.iter
    (fun (o : Fault.Campaign.outcome) ->
      check_bool "faults actually fired" true (o.Fault.Campaign.injections > 0);
      check_bool "out-of-guardband faults degrade E x D" true
        (o.Fault.Campaign.exd_inflation > 1.0);
      check_bool "inflation is finite" true
        (Float.is_finite o.Fault.Campaign.exd_inflation))
    outcomes;
  match Fault.Campaign.least_inflated outcomes with
  | None -> Alcotest.fail "least_inflated on non-empty outcomes"
  | Some best ->
    List.iter
      (fun (o : Fault.Campaign.outcome) ->
        check_bool "least_inflated is minimal" true
          (best.Fault.Campaign.exd_inflation
          <= o.Fault.Campaign.exd_inflation))
      outcomes

(* ------------------------------------------------------------------ *)
(* Stepping epoch                                                      *)
(* ------------------------------------------------------------------ *)

let test_epoch_configurable () =
  let workloads = small_workload () in
  let fast = Schemes.run ~epoch:0.25 (coord ()) workloads in
  check_bool "quarter-second epoch completes" true fast.Stack.completed;
  let default = Schemes.run (coord ()) workloads in
  check_bool "explicit default matches implicit" true
    ((Schemes.run ~epoch:Stack.default_epoch (coord ()) workloads)
       .Stack.metrics
       .Xu3.energy_delay
    = default.Stack.metrics.Xu3.energy_delay)

let test_epoch_validated () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "zero epoch rejected" true
    (raises (fun () -> Schemes.run ~epoch:0.0 (coord ()) (small_workload ())));
  check_bool "negative epoch rejected" true
    (raises (fun () ->
         Schemes.run ~epoch:(-0.5) (coord ()) (small_workload ())))

(* ------------------------------------------------------------------ *)
(* Sensor RNG reset                                                    *)
(* ------------------------------------------------------------------ *)

let test_sensor_reset_replays_noise () =
  let s = Sensors.create ~noise:0.05 ~seed:11 () in
  let sample t =
    Sensors.observe_power s ~time:t ~power_big:3.0 ~power_little:0.4
  in
  let first = List.map sample [ 0.0; 0.3; 0.6; 0.9; 1.2 ] in
  Sensors.reset s;
  let second = List.map sample [ 0.0; 0.3; 0.6; 0.9; 1.2 ] in
  check_bool "reset replays the identical noise sequence" true
    (first = second)

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [ Alcotest.test_case "validation" `Quick test_spec_validation ] );
      ( "schedule",
        [
          Alcotest.test_case "deterministic" `Quick
            test_schedule_deterministic;
        ] );
      ( "injector",
        [
          Alcotest.test_case "empty schedule pass-through" `Quick
            test_empty_schedule_passthrough;
          Alcotest.test_case "injection dumps the flight recorder" `Quick
            test_injection_dumps_recorder;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "degradation" `Quick test_campaign_degradation;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "configurable" `Quick test_epoch_configurable;
          Alcotest.test_case "validated" `Quick test_epoch_validated;
        ] );
      ( "sensors",
        [
          Alcotest.test_case "reset replays noise" `Quick
            test_sensor_reset_replays_noise;
        ] );
    ]
