(* Tests for the serving subsystem: the transport-free session state
   machine (purity, backpressure, budget split, drain, crash isolation)
   and the select-loop server (disconnect isolation, idle sweep). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

module Json = Obs.Json

let jtype line =
  match Option.bind (Json.member "type" (Json.of_string line)) Json.to_string_opt with
  | Some t -> t
  | None -> Alcotest.failf "response without type: %s" line

let jint key line =
  match Option.bind (Json.member key (Json.of_string line)) Json.to_int_opt with
  | Some v -> v
  | None -> Alcotest.failf "response without int %S: %s" key line

let jbool key line =
  match Json.member key (Json.of_string line) with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "response without bool %S: %s" key line

(* All session tests run over the heuristic "coord" scheme: the full
   Layer/Stack machinery with no mu-synthesis, so they are fast and
   deterministic. *)
let configure_line = {|{"type":"configure","scheme":"coord","app":"blackscholes"}|}

let enqueue_ok t line =
  match Serve.Session.enqueue t line with
  | `Accepted -> ()
  | `Rejected r -> Alcotest.failf "unexpected rejection: %s" r

let fresh_session ?max_queue ?retry_after_ms () =
  Serve.Session.create ?max_queue ?retry_after_ms ~id:1 ()

let configured_session () =
  let t = fresh_session () in
  enqueue_ok t configure_line;
  (match Serve.Session.process t with
  | [ line ] -> check_string "configured" "configured" (jtype line)
  | other -> Alcotest.failf "expected one configured line, got %d" (List.length other));
  t

(* ------------------------------------------------------------------ *)
(* Purity: a served run is bit-identical to a batch stepper run        *)
(* ------------------------------------------------------------------ *)

(* The acceptance bar for the serve subsystem: with no drift, the
   frames a session streams are byte-for-byte the frames a locally
   driven [Stack.stepper] over the same scheme and workload would
   produce. Comparing encoded lines (not parsed floats) makes any
   divergence — ordering, formatting, decision values — fail loudly. *)
let batch_frames () =
  let info = Yukta.Schemes.find_exn "coord" in
  let stepper =
    Yukta.Stack.stepper (Yukta.Schemes.stack info)
      [ Board.Workload.by_name "blackscholes" ]
  in
  let lines = ref [] in
  let continue = ref true in
  while !continue do
    match Yukta.Stack.step_epoch stepper with
    | None -> continue := false
    | Some o ->
      let board = Yukta.Stack.board stepper in
      lines :=
        Serve.Protocol.frame
          ~epoch:(Yukta.Stack.epoch_count stepper)
          ~sim:(Yukta.Stack.time stepper)
          ~o
          ~config:(Board.Xu3.effective_config board)
          ~placement:(Board.Xu3.placement board)
          ~done_:(Yukta.Stack.finished stepper)
        :: !lines
  done;
  List.rev !lines

let test_session_bit_identical_to_batch () =
  let expected = batch_frames () in
  let n = List.length expected in
  check_bool "batch run has epochs" true (n > 100);
  let t = configured_session () in
  enqueue_ok t
    (Printf.sprintf {|{"type":"step","count":%d}|} (n + 10));
  let lines = Serve.Session.process t in
  let frames, rest =
    List.partition (fun l -> jtype l = "frame") lines
  in
  check_int "one epoch one frame" n (List.length frames);
  List.iteri
    (fun i (e, g) ->
      if e <> g then
        Alcotest.failf "frame %d diverged:\nbatch: %s\nserved: %s" i e g)
    (List.combine expected frames);
  (* Stepping past the end answers with the end-of-run summary. *)
  (match rest with
  | [ e ] ->
    check_string "end summary" "end" (jtype e);
    check_bool "completed" true (jbool "completed" e)
  | _ -> Alcotest.failf "expected exactly one end line, got %d" (List.length rest));
  check_int "frames served" n (Serve.Session.frames_served t)

(* ------------------------------------------------------------------ *)
(* Crash isolation and backpressure                                    *)
(* ------------------------------------------------------------------ *)

let test_session_malformed_is_nonfatal () =
  let t = configured_session () in
  enqueue_ok t "this is not json";
  enqueue_ok t {|{"type":"warp"}|};
  enqueue_ok t {|{"type":"step","count":1}|};
  (match Serve.Session.process t with
  | [ e1; e2; frame ] ->
    check_string "parse error" "error" (jtype e1);
    check_bool "non-fatal" false (jbool "fatal" e1);
    check_string "unknown type error" "error" (jtype e2);
    check_string "still serving" "frame" (jtype frame)
  | other -> Alcotest.failf "expected 3 lines, got %d" (List.length other));
  check_int "errors counted" 2 (Serve.Session.errors t);
  check_bool "not closed" false (Serve.Session.closed t)

let test_session_requires_configure () =
  let t = fresh_session () in
  enqueue_ok t {|{"type":"step","count":1}|};
  (match Serve.Session.process t with
  | [ e ] ->
    check_string "error" "error" (jtype e);
    check_bool "non-fatal" false (jbool "fatal" e)
  | _ -> Alcotest.fail "expected one error line")

let test_session_backpressure () =
  let t = fresh_session ~max_queue:2 ~retry_after_ms:7 () in
  enqueue_ok t configure_line;
  enqueue_ok t {|{"type":"step","count":1}|};
  (match Serve.Session.enqueue t {|{"type":"step","count":1}|} with
  | `Accepted -> Alcotest.fail "queue should be full"
  | `Rejected line ->
    check_string "busy" "busy" (jtype line);
    check_int "retry hint" 7 (jint "retry_after_ms" line));
  (* Processing the queue makes room again. *)
  ignore (Serve.Session.process t);
  enqueue_ok t {|{"type":"step","count":1}|}

let test_session_closed_rejects () =
  let t = configured_session () in
  enqueue_ok t {|{"type":"close"}|};
  (match Serve.Session.process t with
  | [ line ] -> check_string "closed" "closed" (jtype line)
  | _ -> Alcotest.fail "expected closed line");
  check_bool "closed" true (Serve.Session.closed t);
  match Serve.Session.enqueue t {|{"type":"step","count":1}|} with
  | `Accepted -> Alcotest.fail "closed session must reject"
  | `Rejected line ->
    check_string "fatal error" "error" (jtype line);
    check_bool "fatal" true (jbool "fatal" line)

(* ------------------------------------------------------------------ *)
(* Epoch budget: split, carry, drain                                   *)
(* ------------------------------------------------------------------ *)

let test_session_budget_carry () =
  let t = configured_session () in
  enqueue_ok t {|{"type":"step","count":10}|};
  let first = Serve.Session.process ~budget:4 t in
  check_int "budget bounds the chunk" 4 (List.length first);
  check_bool "remainder pending" true (Serve.Session.pending t > 0);
  let second = Serve.Session.process ~budget:4 t in
  check_int "carry resumes" 4 (List.length second);
  let third = Serve.Session.process ~budget:4 t in
  check_int "tail" 2 (List.length third);
  check_int "nothing pending" 0 (Serve.Session.pending t);
  (* Frame epochs are contiguous across the splits. *)
  let epochs = List.map (jint "epoch") (first @ second @ third) in
  List.iteri (fun i e -> check_int "contiguous epoch" (i + 1) e) epochs

let test_session_drain_streams_under_budget () =
  let expected = List.length (batch_frames ()) in
  let t = configured_session () in
  enqueue_ok t {|{"type":"drain"}|};
  let lines = ref [] in
  let rounds = ref 0 in
  let chunk = 50 in
  lines := Serve.Session.process ~budget:chunk t;
  while Serve.Session.pending t > 0 do
    incr rounds;
    if !rounds > (expected / chunk) + 3 then
      Alcotest.fail "drain did not converge";
    let more = Serve.Session.process ~budget:chunk t in
    check_bool "drain makes progress" true (more <> []);
    lines := !lines @ more
  done;
  check_bool "drain spans process calls" true (!rounds >= expected / chunk);
  let frames = List.filter (fun l -> jtype l = "frame") !lines in
  check_int "full run drained" expected (List.length frames);
  match List.rev !lines with
  | last :: _ ->
    check_string "drained summary" "drained" (jtype last);
    check_bool "completed" true (jbool "completed" last);
    check_int "epochs" expected (jint "epochs" last)
  | [] -> Alcotest.fail "no drain output"

(* ------------------------------------------------------------------ *)
(* Server loop: isolation and idle sweep                               *)
(* ------------------------------------------------------------------ *)

(* Minimal inline client: blocking connect, nonblocking reads, the
   server loop driven by [Server.iterate] between polls. *)
let connect srv =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Serve.Server.address srv);
  Unix.set_nonblock fd;
  fd

let send_line srv fd line =
  let payload = Bytes.of_string (line ^ "\n") in
  let off = ref 0 in
  while !off < Bytes.length payload do
    match Unix.write fd payload !off (Bytes.length payload - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Serve.Server.iterate ~timeout:0.01 srv
  done

exception Disconnected

(* Read until [want] complete lines arrived (driving the server loop),
   or fail after ~2 s of no progress. *)
let read_lines srv fd ~want =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let lines = ref [] in
  let idle = ref 0 in
  while List.length !lines < want do
    Serve.Server.iterate ~timeout:0.005 srv;
    (match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> raise Disconnected
    | n ->
      idle := 0;
      Buffer.add_subbytes buf chunk 0 n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      incr idle;
      if !idle > 400 then
        Alcotest.failf "timed out waiting for %d lines (got %d)" want
          (List.length !lines));
    let rec split () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | Some i ->
        lines := String.sub s 0 i :: !lines;
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        split ()
      | None -> ()
    in
    split ()
  done;
  List.rev !lines

let with_server ?idle_timeout f =
  let srv =
    Serve.Server.create ?idle_timeout ~step_budget:64 (Serve.Server.Tcp ("", 0))
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop srv;
      Serve.Server.run srv)
    (fun () -> f srv)

let greet srv fd =
  send_line srv fd {|{"type":"hello","client":"test"}|};
  match read_lines srv fd ~want:1 with
  | [ w ] -> check_string "welcome" "welcome" (jtype w)
  | _ -> Alcotest.fail "expected welcome"

let configure srv fd =
  send_line srv fd configure_line;
  match read_lines srv fd ~want:1 with
  | [ c ] -> check_string "configured" "configured" (jtype c)
  | _ -> Alcotest.fail "expected configured"

(* A mid-stream disconnect of one client must not disturb a concurrent
   session: the survivor keeps streaming correct, contiguous frames. *)
let test_server_disconnect_isolation () =
  with_server (fun srv ->
      let a = connect srv and b = connect srv in
      greet srv a;
      greet srv b;
      configure srv a;
      configure srv b;
      send_line srv b {|{"type":"step","count":3}|};
      let before = read_lines srv b ~want:3 in
      (* A dies mid-stream, with a large step in flight. *)
      send_line srv a {|{"type":"step","count":10000}|};
      Serve.Server.iterate ~timeout:0.01 srv;
      Unix.close a;
      for _ = 1 to 10 do
        Serve.Server.iterate ~timeout:0.005 srv
      done;
      (* B is unaffected: its frames continue exactly where they left
         off. *)
      send_line srv b {|{"type":"step","count":3}|};
      let after = read_lines srv b ~want:3 in
      List.iteri
        (fun i l -> check_int "contiguous epochs" (i + 1) (jint "epoch" l))
        (before @ after);
      let accepted, active, frames, _, _ = Serve.Server.stats srv in
      check_int "two accepted" 2 accepted;
      check_int "one still active" 1 active;
      check_bool "frames flowed" true (frames >= 6);
      send_line srv b {|{"type":"close"}|};
      (match read_lines srv b ~want:1 with
      | [ c ] -> check_string "closed" "closed" (jtype c)
      | _ -> Alcotest.fail "expected closed");
      Unix.close b)

let test_server_idle_sweep () =
  with_server ~idle_timeout:0.05 (fun srv ->
      let fd = connect srv in
      greet srv fd;
      Unix.sleepf 0.12;
      (* The sweep sends a fatal idle-timeout error and closes. *)
      (match read_lines srv fd ~want:1 with
      | [ e ] ->
        check_string "error" "error" (jtype e);
        check_bool "fatal" true (jbool "fatal" e)
      | _ -> Alcotest.fail "expected idle error");
      (match read_lines srv fd ~want:1 with
      | exception Disconnected -> ()
      | _ -> Alcotest.fail "connection should be closed");
      let _, active, _, _, _ = Serve.Server.stats srv in
      check_int "swept" 0 active;
      Unix.close fd)

let () =
  Alcotest.run "serve"
    [
      ( "session",
        [
          Alcotest.test_case "bit-identical to batch" `Quick
            test_session_bit_identical_to_batch;
          Alcotest.test_case "malformed is non-fatal" `Quick
            test_session_malformed_is_nonfatal;
          Alcotest.test_case "requires configure" `Quick
            test_session_requires_configure;
          Alcotest.test_case "backpressure" `Quick test_session_backpressure;
          Alcotest.test_case "closed rejects" `Quick test_session_closed_rejects;
          Alcotest.test_case "budget carry" `Quick test_session_budget_carry;
          Alcotest.test_case "drain streams" `Quick
            test_session_drain_streams_under_budget;
        ] );
      ( "server",
        [
          Alcotest.test_case "disconnect isolation" `Quick
            test_server_disconnect_isolation;
          Alcotest.test_case "idle sweep" `Quick test_server_idle_sweep;
        ] );
    ]
