(* Tests for the board simulator: DVFS tables, power/thermal models, the
   performance model, workloads, sensors, emergency heuristics, and the
   integrated board dynamics. *)

open Board

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-4))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Dvfs                                                                *)
(* ------------------------------------------------------------------ *)

let test_dvfs_tables () =
  check_int "big levels" 19 (Array.length (Dvfs.levels Dvfs.Big));
  check_int "little levels" 13 (Array.length (Dvfs.levels Dvfs.Little));
  check_float "big max" 2.0 (Dvfs.f_max Dvfs.Big);
  check_float "little max" 1.4 (Dvfs.f_max Dvfs.Little);
  check_float "min" 0.2 (Dvfs.f_min Dvfs.Big)

let test_dvfs_quantize () =
  check_float "snap" 1.3 (Dvfs.quantize Dvfs.Big 1.34);
  check_float "clamp high" 1.4 (Dvfs.quantize Dvfs.Little 1.9);
  check_float "clamp low" 0.2 (Dvfs.quantize Dvfs.Big 0.0)

let test_dvfs_voltage_monotone () =
  let increasing kind =
    let l = Dvfs.levels kind in
    let ok = ref true in
    for i = 1 to Array.length l - 1 do
      if Dvfs.voltage kind l.(i) <= Dvfs.voltage kind l.(i - 1) then ok := false
    done;
    !ok
  in
  check_bool "big monotone" true (increasing Dvfs.Big);
  check_bool "little monotone" true (increasing Dvfs.Little);
  check_bool "plausible range" true
    (Dvfs.voltage Dvfs.Big 2.0 < 1.3 && Dvfs.voltage Dvfs.Big 0.2 > 0.8)

(* ------------------------------------------------------------------ *)
(* Power                                                               *)
(* ------------------------------------------------------------------ *)

let full_load kind =
  {
    Power.cores_on = 4;
    freq = Dvfs.f_max kind;
    utilization = 1.0;
    temperature = 70.0;
  }

let test_power_calibration () =
  (* Full big cluster must exceed the paper's 3.3 W limit; full little the
     0.33 W limit — otherwise the power caps would never bind. *)
  check_bool "big exceeds limit" true
    (Power.cluster_power Dvfs.Big (full_load Dvfs.Big) > 3.3);
  check_bool "little exceeds limit" true
    (Power.cluster_power Dvfs.Little (full_load Dvfs.Little) > 0.33);
  check_bool "big below 8W" true (Power.max_power Dvfs.Big < 8.0)

let test_power_monotone_freq () =
  let p f =
    Power.cluster_power Dvfs.Big
      { Power.cores_on = 4; freq = f; utilization = 1.0; temperature = 60.0 }
  in
  check_bool "increasing in f" true (p 1.0 < p 1.5 && p 1.5 < p 2.0)

let test_power_monotone_cores () =
  let p n =
    Power.cluster_power Dvfs.Big
      { Power.cores_on = n; freq = 1.5; utilization = 1.0; temperature = 60.0 }
  in
  check_bool "increasing in cores" true (p 1 < p 2 && p 3 < p 4)

let test_power_zero_cores () =
  check_float "gated cluster draws nothing" 0.0
    (Power.cluster_power Dvfs.Little
       { Power.cores_on = 0; freq = 1.0; utilization = 0.5; temperature = 60.0 })

let test_power_leakage_grows_with_temp () =
  let p temp =
    Power.cluster_power Dvfs.Big
      { Power.cores_on = 4; freq = 1.0; utilization = 0.0; temperature = temp }
  in
  check_bool "hotter leaks more" true (p 80.0 > p 40.0)

let test_power_idle_below_busy () =
  let busy =
    Power.cluster_power Dvfs.Big
      { Power.cores_on = 4; freq = 1.0; utilization = 1.0; temperature = 60.0 }
  in
  let idle =
    Power.cluster_power Dvfs.Big
      { Power.cores_on = 4; freq = 1.0; utilization = 0.0; temperature = 60.0 }
  in
  check_bool "idle cheaper" true (idle < busy);
  check_bool "idle not free" true (idle > 0.0)

(* ------------------------------------------------------------------ *)
(* Thermal                                                             *)
(* ------------------------------------------------------------------ *)

let test_thermal_starts_ambient () =
  let th = Thermal.create () in
  check_float "ambient" Thermal.ambient (Thermal.temperature th)

let test_thermal_steady_state_at_limits () =
  (* Running exactly at the paper's limits must settle just below 79 C. *)
  let s = Thermal.steady_state ~power_big:3.3 ~power_little:0.33 in
  check_bool "below 79" true (s < 79.0);
  check_bool "above 74" true (s > 74.0)

let test_thermal_overshoot_at_full_power () =
  let s =
    Thermal.steady_state ~power_big:(Power.max_power Dvfs.Big)
      ~power_little:(Power.max_power Dvfs.Little)
  in
  check_bool "full power overheats" true (s > Emergency.thermal_trip)

let test_thermal_convergence () =
  let th = Thermal.create () in
  for _ = 1 to 100_000 do
    Thermal.step th ~power_big:2.0 ~power_little:0.2 ~dt:0.01
  done;
  check_float_loose "converges to steady state"
    (Thermal.steady_state ~power_big:2.0 ~power_little:0.2)
    (Thermal.temperature th)

let test_thermal_monotone_step () =
  let th = Thermal.create () in
  Thermal.step th ~power_big:3.0 ~power_little:0.3 ~dt:1.0;
  let t1 = Thermal.temperature th in
  Thermal.step th ~power_big:3.0 ~power_little:0.3 ~dt:1.0;
  let t2 = Thermal.temperature th in
  check_bool "heating" true (t2 > t1 && t1 > Thermal.ambient)

let test_thermal_copy_independent () =
  let th = Thermal.create () in
  let snapshot = Thermal.copy th in
  Thermal.step th ~power_big:5.0 ~power_little:0.5 ~dt:10.0;
  check_float "copy unchanged" Thermal.ambient (Thermal.temperature snapshot)

(* ------------------------------------------------------------------ *)
(* Perf                                                                *)
(* ------------------------------------------------------------------ *)

let test_perf_zero_threads () =
  check_float "no threads no work" 0.0
    (Perf.core_throughput ~kind:Dvfs.Big ~freq:2.0 ~mem_intensity:0.2
       ~ipc_scale:1.0 ~threads_on_core:0.0)

let test_perf_big_faster () =
  let big =
    Perf.core_throughput ~kind:Dvfs.Big ~freq:2.0 ~mem_intensity:0.1
      ~ipc_scale:1.0 ~threads_on_core:1.0
  in
  let little =
    Perf.core_throughput ~kind:Dvfs.Little ~freq:1.4 ~mem_intensity:0.1
      ~ipc_scale:1.0 ~threads_on_core:1.0
  in
  check_bool "big wins on compute" true (big > 2.0 *. little)

let test_perf_memory_flattens_scaling () =
  (* For memory-bound work doubling frequency must gain much less than 2x. *)
  let gain mem =
    let t1 =
      Perf.core_throughput ~kind:Dvfs.Big ~freq:1.0 ~mem_intensity:mem
        ~ipc_scale:1.0 ~threads_on_core:1.0
    in
    let t2 =
      Perf.core_throughput ~kind:Dvfs.Big ~freq:2.0 ~mem_intensity:mem
        ~ipc_scale:1.0 ~threads_on_core:1.0
    in
    t2 /. t1
  in
  check_bool "compute-bound scales" true (gain 0.0 > 1.95);
  check_bool "memory-bound saturates" true (gain 0.9 < 1.75)

let test_perf_multiplexing_penalty () =
  let one =
    Perf.core_throughput ~kind:Dvfs.Big ~freq:1.5 ~mem_intensity:0.2
      ~ipc_scale:1.0 ~threads_on_core:1.0
  in
  let two =
    Perf.core_throughput ~kind:Dvfs.Big ~freq:1.5 ~mem_intensity:0.2
      ~ipc_scale:1.0 ~threads_on_core:2.0
  in
  check_bool "sharing costs a little" true (two < one && two > 0.75 *. one)

let test_perf_cluster_spreading () =
  (* 4 threads at 1 thread/core on 4 cores: 4 busy cores. *)
  let gips4, busy4 =
    Perf.cluster_throughput ~kind:Dvfs.Big ~freq:1.5 ~cores_on:4 ~threads:4
      ~threads_per_core:1.0 ~mem_intensity:0.2 ~ipc_scale:1.0
  in
  check_int "all busy" 4 busy4;
  (* Packed 2-per-core: only 2 busy cores, lower aggregate. *)
  let gips2, busy2 =
    Perf.cluster_throughput ~kind:Dvfs.Big ~freq:1.5 ~cores_on:4 ~threads:4
      ~threads_per_core:2.0 ~mem_intensity:0.2 ~ipc_scale:1.0
  in
  check_int "packed" 2 busy2;
  check_bool "packing costs throughput" true (gips2 < gips4);
  (* But packing cannot be worse than half. *)
  check_bool "bounded loss" true (gips2 > 0.4 *. gips4)

let test_perf_cluster_clamps () =
  let _, busy =
    Perf.cluster_throughput ~kind:Dvfs.Big ~freq:1.5 ~cores_on:2 ~threads:8
      ~threads_per_core:1.0 ~mem_intensity:0.2 ~ipc_scale:1.0
  in
  check_int "cannot exceed cores_on" 2 busy

let test_perf_speedup_ratio () =
  let compute = Perf.speedup_big_over_little ~mem_intensity:0.0 in
  let memory = Perf.speedup_big_over_little ~mem_intensity:0.9 in
  check_bool "big advantage shrinks when memory-bound" true (memory < compute);
  check_bool "big always at least as fast" true (memory > 1.0)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_suite_composition () =
  check_int "parsec count" 8 (List.length Workload.parsec);
  check_int "spec count" 6 (List.length Workload.spec);
  check_int "suite" 14 (List.length Workload.evaluation_suite);
  check_int "training" 6 (List.length Workload.training);
  check_int "mixes" 4 (List.length Workload.mixes)

let test_workload_by_name () =
  let bl = Workload.by_name "blackscholes" in
  check_int "serial then parallel" 2 (List.length bl.Workload.phases);
  check_int "max threads" 8 (Workload.max_threads bl);
  check_bool "not found" true
    (match Workload.by_name "quake3" with
    | exception Not_found -> true
    | _ -> false)

let test_workload_training_disjoint () =
  let eval_names =
    List.map (fun w -> w.Workload.name) Workload.evaluation_suite
  in
  check_bool "training disjoint from evaluation" true
    (List.for_all
       (fun w -> not (List.mem w.Workload.name eval_names))
       Workload.training)

let test_workload_scale () =
  let bl = Workload.by_name "blackscholes" in
  let h = Workload.scale ~threads:4 ~ginsts:100.0 bl in
  check_int "threads capped" 4 (Workload.max_threads h);
  check_float_loose "budget scaled" 100.0 (Workload.total_ginsts h)

let test_workload_memory_spread () =
  (* The suite must span compute-bound and memory-bound extremes. *)
  let mem w =
    List.fold_left
      (fun acc p -> Float.max acc p.Workload.mem_intensity)
      0.0 w.Workload.phases
  in
  let suite = Workload.evaluation_suite in
  check_bool "has compute-bound" true (List.exists (fun w -> mem w < 0.15) suite);
  check_bool "has memory-bound" true (List.exists (fun w -> mem w > 0.7) suite)

(* ------------------------------------------------------------------ *)
(* Sensors                                                             *)
(* ------------------------------------------------------------------ *)

let test_sensor_holds_between_updates () =
  let s = Sensors.create () in
  let b0, _ = Sensors.observe_power s ~time:0.0 ~power_big:2.0 ~power_little:0.2 in
  check_float "initial sample" 2.0 b0;
  (* 0.1 s later the sensor has not refreshed: still holds 2.0. *)
  let b1, _ = Sensors.observe_power s ~time:0.1 ~power_big:5.0 ~power_little:0.5 in
  check_float "held" 2.0 b1;
  (* After the 260 ms period it picks up the new value. *)
  let b2, _ = Sensors.observe_power s ~time:0.3 ~power_big:5.0 ~power_little:0.5 in
  check_float "refreshed" 5.0 b2

let test_sensor_read_is_pure () =
  let s = Sensors.create () in
  ignore (Sensors.observe_power s ~time:0.0 ~power_big:1.0 ~power_little:0.1);
  let b, l = Sensors.read s in
  check_float "read big" 1.0 b;
  check_float "read little" 0.1 l;
  let b', _ = Sensors.read s in
  check_float "still held" 1.0 b'

let test_sensor_noise_bounded () =
  let s = Sensors.create ~noise:0.05 ~seed:3 () in
  let worst = ref 0.0 in
  for i = 0 to 99 do
    Sensors.reset s;
    let b, _ =
      Sensors.observe_power s ~time:(Float.of_int i) ~power_big:3.0
        ~power_little:0.3
    in
    worst := Float.max !worst (Float.abs (b -. 3.0) /. 3.0)
  done;
  check_bool "noise around 5 percent" true (!worst < 0.35 && !worst > 0.001)

(* ------------------------------------------------------------------ *)
(* Emergency                                                           *)
(* ------------------------------------------------------------------ *)

let test_emergency_quiet_below_limits () =
  let e = Emergency.create () in
  let a =
    Emergency.step e ~dt:1.0 ~temperature:70.0 ~power_big:3.0 ~power_little:0.3 ()
  in
  check_bool "no caps" true
    (a.Emergency.cap_freq_big = None && a.Emergency.cap_freq_little = None);
  check_bool "not tripped" false (Emergency.tripped e)

let test_emergency_thermal_trip () =
  let e = Emergency.create () in
  let a =
    Emergency.step e ~dt:0.01 ~temperature:86.0 ~power_big:2.0 ~power_little:0.2 ()
  in
  check_bool "freq clamped" true (a.Emergency.cap_freq_big = Some 0.5);
  check_bool "cores clamped" true (a.Emergency.cap_big_cores = Some 2);
  check_bool "tripped" true (Emergency.tripped e);
  check_int "counted" 1 (Emergency.trip_count e)

let test_emergency_power_needs_sustained_overage () =
  let e = Emergency.create () in
  (* A short spike does not trip. *)
  let a =
    Emergency.step e ~dt:0.3 ~temperature:70.0 ~power_big:5.0 ~power_little:0.2 ()
  in
  check_bool "spike tolerated" true (a.Emergency.cap_freq_big = None);
  (* Sustained overage does. *)
  let a2 =
    Emergency.step e ~dt:0.5 ~temperature:70.0 ~power_big:5.0 ~power_little:0.2 ()
  in
  check_bool "sustained trips" true (a2.Emergency.cap_freq_big <> None)

let test_emergency_recovers () =
  let e = Emergency.create () in
  ignore
    (Emergency.step e ~dt:0.01 ~temperature:86.0 ~power_big:2.0
       ~power_little:0.2 ());
  (* After the cooldown elapses with a cool chip, caps lift. *)
  let a =
    Emergency.step e ~dt:5.0 ~temperature:70.0 ~power_big:2.0 ~power_little:0.2 ()
  in
  check_bool "caps lifted" true (a.Emergency.cap_freq_big = None);
  check_bool "recovered" false (Emergency.tripped e)

let test_emergency_trip_dumps_recorder () =
  (* A trip with the flight recorder armed snapshots the event window
     that led up to it — including the trip event itself, last. *)
  Obs.Collector.disable ();
  Obs.Recorder.clear ();
  Obs.Recorder.enable ~capacity:8 ();
  (* Pre-trip context lands in the ring even though tracing is off. *)
  Obs.Collector.event ~name:"pre.context" ~sim:0.0 (fun () ->
      [ ("k", Obs.Json.Int 1) ]);
  let e = Emergency.create () in
  ignore
    (Emergency.step e ~dt:0.01 ~temperature:86.0 ~power_big:2.0
       ~power_little:0.2 ());
  check_int "one dump per trip" 1 (Obs.Recorder.dump_count ());
  (match Obs.Recorder.dumps () with
  | [ d ] ->
    let fields = Obs.Json.member "fields" d in
    Alcotest.(check (option string)) "dump reason"
      (Some "emergency.trip:thermal")
      (Option.bind (Option.bind fields (Obs.Json.member "reason"))
         Obs.Json.to_string_opt);
    let names =
      Option.bind (Option.bind fields (Obs.Json.member "window"))
        Obs.Json.to_list_opt
      |> Option.value ~default:[]
      |> List.filter_map (fun j ->
             Option.bind (Obs.Json.member "name" j) Obs.Json.to_string_opt)
    in
    check_bool "window holds the preceding context" true
      (names = [ "pre.context"; "emergency.trip" ])
  | ds -> Alcotest.failf "expected 1 dump, got %d" (List.length ds));
  Obs.Recorder.disable ();
  Obs.Recorder.clear ()

(* ------------------------------------------------------------------ *)
(* Board integration                                                   *)
(* ------------------------------------------------------------------ *)

let fresh_board () = Xu3.create [ Workload.by_name "blackscholes" ]

let test_board_config_quantized () =
  let b = fresh_board () in
  Xu3.set_config b
    { big_cores = 9; little_cores = 0; freq_big = 1.77; freq_little = 3.0 };
  let c = Xu3.config b in
  check_int "cores clamped" 4 c.big_cores;
  check_int "at least one little" 1 c.little_cores;
  check_float "freq snapped" 1.8 c.freq_big;
  check_float "freq clamped" 1.4 c.freq_little

let test_board_runs_to_completion () =
  let b = Xu3.create [ Workload.by_name "mcf" ] in
  Xu3.set_config b
    { big_cores = 4; little_cores = 4; freq_big = 1.4; freq_little = 1.0 };
  Xu3.set_placement b { threads_big = 8; tpc_big = 2.0; tpc_little = 1.0 };
  let guard = ref 0 in
  while (not (Xu3.finished b)) && !guard < 10_000 do
    incr guard;
    Xu3.step b 0.5
  done;
  check_bool "finished" true (Xu3.finished b);
  let m = Xu3.metrics b in
  check_bool "nonzero time" true (m.execution_time > 1.0);
  check_bool "nonzero energy" true (m.total_energy > 1.0);
  check_float_loose "exd consistent"
    (m.execution_time *. m.total_energy)
    m.energy_delay;
  check_float_loose "progress complete" 1.0 (Xu3.progress b)

let test_board_higher_freq_is_faster () =
  let run freq =
    let b = Xu3.create [ Workload.by_name "gamess" ] in
    Xu3.set_config b
      { big_cores = 4; little_cores = 1; freq_big = freq; freq_little = 0.2 };
    Xu3.set_placement b { threads_big = 8; tpc_big = 2.0; tpc_little = 1.0 };
    let guard = ref 0 in
    while (not (Xu3.finished b)) && !guard < 20_000 do
      incr guard;
      Xu3.step b 0.5
    done;
    (Xu3.metrics b).execution_time
  in
  (* Compare two settings that both stay below the emergency thresholds. *)
  check_bool "1.3 GHz beats 0.9 GHz" true (run 1.3 < run 0.9)

let test_board_decoupled_trips_emergency () =
  (* Max everything: power exceeds the trip level, the board fights back. *)
  let b = Xu3.create [ Workload.by_name "gamess" ] in
  Xu3.set_config b
    { big_cores = 4; little_cores = 4; freq_big = 2.0; freq_little = 1.4 };
  Xu3.set_placement b { threads_big = 8; tpc_big = 2.0; tpc_little = 1.0 };
  Xu3.step b 30.0;
  check_bool "emergency fired" true (Xu3.trip_count b > 0);
  let eff = Xu3.effective_config b in
  check_bool "sane effective freq" true (eff.freq_big <= 2.0)

let test_board_epoch_outputs () =
  let b = fresh_board () in
  Xu3.set_config b
    { big_cores = 2; little_cores = 2; freq_big = 1.0; freq_little = 0.8 };
  Xu3.set_placement b { threads_big = 1; tpc_big = 1.0; tpc_little = 1.0 };
  let o = Xu3.run_epoch b 0.5 in
  check_bool "bips positive" true (o.bips > 0.0);
  check_bool "power plausible" true (o.power_big > 0.0 && o.power_big < 8.0);
  check_bool "temp above ambient" true (o.temperature > Thermal.ambient);
  (* blackscholes starts single-threaded. *)
  check_int "one thread" 1 o.threads_active

let test_board_thread_count_changes () =
  let b = fresh_board () in
  Xu3.set_config b
    { big_cores = 4; little_cores = 4; freq_big = 1.6; freq_little = 1.0 };
  Xu3.set_placement b { threads_big = 8; tpc_big = 1.0; tpc_little = 1.0 };
  (* Run until the serial phase (18 Ginst) completes; threads become 8. *)
  let seen_8 = ref false in
  for _ = 1 to 400 do
    let o = Xu3.run_epoch b 0.5 in
    if o.threads_active = 8 then seen_8 := true
  done;
  check_bool "parallel phase reached" true !seen_8

let test_board_packing_powers_off_cores () =
  (* With 8 threads packed 2-per-core, spare capacity formula says the
     cluster could idle cores: SC = idle_on - (threads - cores_on). *)
  check_float "sc packed" (-2.0)
    (Xu3.spare_capacity ~cores_on:2 ~busy:2 ~threads:4);
  check_float "sc spread" 0.0
    (Xu3.spare_capacity ~cores_on:4 ~busy:4 ~threads:4);
  check_float "sc idle" 6.0
    (Xu3.spare_capacity ~cores_on:4 ~busy:1 ~threads:1)

let test_board_mix_jobs_both_finish () =
  let b = Xu3.create (List.assoc "blmc" Workload.mixes) in
  Xu3.set_config b
    { big_cores = 4; little_cores = 4; freq_big = 1.4; freq_little = 1.0 };
  Xu3.set_placement b { threads_big = 4; tpc_big = 1.0; tpc_little = 1.0 };
  let guard = ref 0 in
  while (not (Xu3.finished b)) && !guard < 20_000 do
    incr guard;
    Xu3.step b 0.5
  done;
  check_bool "mix finished" true (Xu3.finished b)

let test_board_energy_accumulates () =
  let b = fresh_board () in
  Xu3.step b 1.0;
  let e1 = Xu3.energy b in
  Xu3.step b 1.0;
  check_bool "monotone" true (Xu3.energy b > e1 && e1 > 0.0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_power_bounded =
  QCheck.Test.make ~name:"power within physical bounds" ~count:200
    QCheck.(
      quad (int_range 0 4) (float_range 0.2 2.0) (float_range 0.0 1.0)
        (float_range 30.0 95.0))
    (fun (cores, f, util, temp) ->
      let p =
        Power.cluster_power Dvfs.Big
          { Power.cores_on = cores; freq = f; utilization = util; temperature = temp }
      in
      p >= 0.0 && p <= 8.0)

let prop_thermal_bounded_by_steady_state =
  QCheck.Test.make ~name:"thermal never exceeds steady state" ~count:50
    QCheck.(pair (float_range 0.0 6.0) (float_range 0.0 0.6))
    (fun (pb, pl) ->
      let th = Thermal.create () in
      let ok = ref true in
      let ss = Thermal.steady_state ~power_big:pb ~power_little:pl in
      for _ = 1 to 1000 do
        Thermal.step th ~power_big:pb ~power_little:pl ~dt:0.1;
        if Thermal.temperature th > ss +. 1e-6 then ok := false
      done;
      !ok)

let prop_perf_monotone_in_freq =
  QCheck.Test.make ~name:"throughput monotone in frequency" ~count:100
    QCheck.(pair (float_range 0.0 1.0) (float_range 0.2 1.9))
    (fun (mem, f) ->
      let t1 =
        Perf.core_throughput ~kind:Dvfs.Big ~freq:f ~mem_intensity:mem
          ~ipc_scale:1.0 ~threads_on_core:1.0
      in
      let t2 =
        Perf.core_throughput ~kind:Dvfs.Big ~freq:(f +. 0.1) ~mem_intensity:mem
          ~ipc_scale:1.0 ~threads_on_core:1.0
      in
      t2 > t1)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_power_bounded;
      prop_thermal_bounded_by_steady_state;
      prop_perf_monotone_in_freq;
    ]


(* ------------------------------------------------------------------ *)
(* Round 2: edge cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_emergency_escalation () =
  let e = Emergency.create () in
  (* First trip: clamp lasts the base duration. *)
  ignore
    (Emergency.step e ~dt:0.01 ~temperature:86.0 ~power_big:2.0
       ~power_little:0.2 ());
  (* Cool down fully, then trip again quickly: the clamp escalates, so
     after the base duration it is still active. *)
  ignore
    (Emergency.step e ~dt:3.1 ~temperature:70.0 ~power_big:2.0
       ~power_little:0.2 ());
  ignore
    (Emergency.step e ~dt:0.01 ~temperature:86.0 ~power_big:2.0
       ~power_little:0.2 ());
  let a =
    Emergency.step e ~dt:3.5 ~temperature:70.0 ~power_big:2.0
      ~power_little:0.2 ()
  in
  check_bool "escalated clamp outlasts base duration" true
    (a.Emergency.cap_freq_big <> None);
  check_int "two trips" 2 (Emergency.trip_count e)

let test_board_placement_clamped () =
  let b = Xu3.create [ Workload.by_name "gamess" ] in
  Xu3.set_placement b { Xu3.threads_big = -3; tpc_big = 0.2; tpc_little = 0.0 };
  let p = Xu3.placement b in
  check_int "threads non-negative" 0 p.Xu3.threads_big;
  check_bool "tpc at least 1" true (p.Xu3.tpc_big >= 1.0 && p.Xu3.tpc_little >= 1.0)

let test_board_observe_resets_window () =
  let b = Xu3.create [ Workload.by_name "gamess" ] in
  Xu3.set_placement b { Xu3.threads_big = 8; tpc_big = 2.0; tpc_little = 1.0 };
  Xu3.step b 1.0;
  let o1 = Xu3.observe b in
  (* Without advancing time, the window is empty: near-zero BIPS. *)
  let o2 = Xu3.observe b in
  check_bool "first window has work" true (o1.Xu3.bips > 0.0);
  check_bool "second window empty" true (o2.Xu3.bips <= o1.Xu3.bips)

let test_board_step_after_finish_is_noop () =
  let tiny = Workload.scale ~ginsts:5.0 (Workload.by_name "gamess") in
  let b = Xu3.create [ tiny ] in
  Xu3.set_config b
    { Xu3.big_cores = 4; little_cores = 4; freq_big = 1.4; freq_little = 1.0 };
  Xu3.set_placement b { Xu3.threads_big = 8; tpc_big = 2.0; tpc_little = 1.0 };
  let guard = ref 0 in
  while (not (Xu3.finished b)) && !guard < 10000 do
    incr guard;
    Xu3.step b 0.5
  done;
  let t1 = Xu3.time b in
  Xu3.step b 5.0;
  check_float "time frozen after completion" t1 (Xu3.time b)

let test_board_true_power_vs_sensor () =
  let b = Xu3.create [ Workload.by_name "gamess" ] in
  Xu3.step b 2.0;
  let pb, pl = Xu3.true_power b in
  check_bool "true power positive" true (pb > 0.0 && pl > 0.0);
  check_bool "plausible" true (pb < 8.0 && pl < 1.0)

let test_workload_mix_thread_count () =
  List.iter
    (fun (name, jobs) ->
      let total =
        List.fold_left (fun acc w -> acc + Workload.max_threads w) 0 jobs
      in
      check_int (name ^ " is 4+4") 8 total)
    Workload.mixes

let test_dvfs_transition_costs_positive () =
  check_bool "dvfs cost" true (Dvfs.transition_cost_s > 0.0);
  check_bool "hotplug cost" true (Dvfs.hotplug_cost_s > Dvfs.transition_cost_s)


let test_synthetic_workload_valid () =
  for seed = 1 to 10 do
    let w = Workload.synthetic ~seed () in
    Workload.validate w;
    check_bool "threads bounded" true (Workload.max_threads w <= 8);
    check_bool "budget positive" true (Workload.total_ginsts w > 0.0)
  done;
  (* Deterministic for a seed. *)
  let a = Workload.synthetic ~seed:3 () and b = Workload.synthetic ~seed:3 () in
  check_bool "deterministic" true (a = b)

let round2_cases =
  [
    Alcotest.test_case "emergency escalation" `Quick test_emergency_escalation;
    Alcotest.test_case "placement clamped" `Quick test_board_placement_clamped;
    Alcotest.test_case "observe window reset" `Quick
      test_board_observe_resets_window;
    Alcotest.test_case "step after finish" `Quick
      test_board_step_after_finish_is_noop;
    Alcotest.test_case "true power" `Quick test_board_true_power_vs_sensor;
    Alcotest.test_case "mix thread counts" `Quick test_workload_mix_thread_count;
    Alcotest.test_case "transition costs" `Quick
      test_dvfs_transition_costs_positive;
    Alcotest.test_case "synthetic workloads" `Quick
      test_synthetic_workload_valid;
  ]

let () =
  Alcotest.run "board"
    [
      ( "dvfs",
        [
          Alcotest.test_case "tables" `Quick test_dvfs_tables;
          Alcotest.test_case "quantize" `Quick test_dvfs_quantize;
          Alcotest.test_case "voltage" `Quick test_dvfs_voltage_monotone;
        ] );
      ( "power",
        [
          Alcotest.test_case "calibration" `Quick test_power_calibration;
          Alcotest.test_case "monotone freq" `Quick test_power_monotone_freq;
          Alcotest.test_case "monotone cores" `Quick test_power_monotone_cores;
          Alcotest.test_case "zero cores" `Quick test_power_zero_cores;
          Alcotest.test_case "leakage vs temp" `Quick
            test_power_leakage_grows_with_temp;
          Alcotest.test_case "idle below busy" `Quick test_power_idle_below_busy;
        ] );
      ( "thermal",
        [
          Alcotest.test_case "ambient" `Quick test_thermal_starts_ambient;
          Alcotest.test_case "steady at limits" `Quick
            test_thermal_steady_state_at_limits;
          Alcotest.test_case "overshoot" `Quick
            test_thermal_overshoot_at_full_power;
          Alcotest.test_case "convergence" `Quick test_thermal_convergence;
          Alcotest.test_case "monotone heating" `Quick
            test_thermal_monotone_step;
          Alcotest.test_case "copy" `Quick test_thermal_copy_independent;
        ] );
      ( "perf",
        [
          Alcotest.test_case "zero threads" `Quick test_perf_zero_threads;
          Alcotest.test_case "big faster" `Quick test_perf_big_faster;
          Alcotest.test_case "memory saturation" `Quick
            test_perf_memory_flattens_scaling;
          Alcotest.test_case "multiplexing" `Quick
            test_perf_multiplexing_penalty;
          Alcotest.test_case "cluster spreading" `Quick
            test_perf_cluster_spreading;
          Alcotest.test_case "cluster clamps" `Quick test_perf_cluster_clamps;
          Alcotest.test_case "speedup ratio" `Quick test_perf_speedup_ratio;
        ] );
      ( "workload",
        [
          Alcotest.test_case "suite composition" `Quick
            test_workload_suite_composition;
          Alcotest.test_case "by name" `Quick test_workload_by_name;
          Alcotest.test_case "training disjoint" `Quick
            test_workload_training_disjoint;
          Alcotest.test_case "scale" `Quick test_workload_scale;
          Alcotest.test_case "memory spread" `Quick test_workload_memory_spread;
        ] );
      ( "sensors",
        [
          Alcotest.test_case "hold" `Quick test_sensor_holds_between_updates;
          Alcotest.test_case "pure read" `Quick test_sensor_read_is_pure;
          Alcotest.test_case "noise" `Quick test_sensor_noise_bounded;
        ] );
      ( "emergency",
        [
          Alcotest.test_case "quiet" `Quick test_emergency_quiet_below_limits;
          Alcotest.test_case "thermal trip" `Quick test_emergency_thermal_trip;
          Alcotest.test_case "sustained power" `Quick
            test_emergency_power_needs_sustained_overage;
          Alcotest.test_case "recovers" `Quick test_emergency_recovers;
          Alcotest.test_case "trip dumps the flight recorder" `Quick
            test_emergency_trip_dumps_recorder;
        ] );
      ( "board",
        [
          Alcotest.test_case "config quantized" `Quick
            test_board_config_quantized;
          Alcotest.test_case "runs to completion" `Quick
            test_board_runs_to_completion;
          Alcotest.test_case "faster at higher freq" `Quick
            test_board_higher_freq_is_faster;
          Alcotest.test_case "decoupled trips" `Quick
            test_board_decoupled_trips_emergency;
          Alcotest.test_case "epoch outputs" `Quick test_board_epoch_outputs;
          Alcotest.test_case "thread changes" `Quick
            test_board_thread_count_changes;
          Alcotest.test_case "spare capacity" `Quick
            test_board_packing_powers_off_cores;
          Alcotest.test_case "mix finishes" `Quick
            test_board_mix_jobs_both_finish;
          Alcotest.test_case "energy accumulates" `Quick
            test_board_energy_accumulates;
        ] );
      ("edge cases", round2_cases);
      ("properties", qcheck_cases);
    ]
