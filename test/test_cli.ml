(* Help sync: every registered yukta_cli subcommand must appear in the
   top-level --help, so the CLI's own documentation can never silently
   fall behind the command group (the dune rule makes the built
   executable a test dependency). *)

let subcommands =
  (* The full command group of bin/yukta_cli.ml; adding a subcommand
     there without updating this list fails the count check below. *)
  [ "apps"; "schemes"; "run"; "csv"; "trace"; "design"; "faults"; "fleet" ]

let read_all ic =
  let b = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  Buffer.contents b

let cli_help () =
  (* --help=plain: no pager, stable formatting. The exe path is relative
     to the test's directory in _build (declared as a dune dep). *)
  let ic = Unix.open_process_in "../bin/yukta_cli.exe --help=plain" in
  let out = read_all ic in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> out
  | _ -> Alcotest.fail "yukta_cli --help=plain failed"

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  scan 0

let test_every_subcommand_in_help () =
  let help = cli_help () in
  (* Each command renders as its own indented heading in the COMMANDS
     section, so match "\n       <name>", not a bare substring (which
     "run" would satisfy from any prose). *)
  List.iter
    (fun cmd ->
      Alcotest.(check bool)
        (Printf.sprintf "%S listed in --help" cmd)
        true
        (contains help ("\n       " ^ cmd)))
    subcommands

let test_fleet_help_documents_flags () =
  let ic = Unix.open_process_in "../bin/yukta_cli.exe fleet --help=plain" in
  let out = read_all ic in
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "yukta_cli fleet --help=plain failed");
  List.iter
    (fun flag ->
      Alcotest.(check bool)
        (Printf.sprintf "fleet --help documents %s" flag)
        true (contains out flag))
    [ "--boards"; "--cap"; "--policy"; "--seed"; "--jobs" ]

let () =
  Alcotest.run "cli"
    [
      ( "help",
        [
          Alcotest.test_case "every subcommand listed" `Quick
            test_every_subcommand_in_help;
          Alcotest.test_case "fleet flags documented" `Quick
            test_fleet_help_documents_flags;
        ] );
    ]
