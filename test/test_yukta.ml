(* Tests for the Yukta core library: signal descriptors, the interface
   exchange, the runtime SSV controller, the target optimizer, the
   generalized-plant construction, the heuristic baselines, and the
   multilayer runtime. *)

open Linalg
open Yukta

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Signal                                                              *)
(* ------------------------------------------------------------------ *)

let freq_input =
  Signal.input ~name:"freq" ~minimum:0.2 ~maximum:2.0 ~step:0.1 ~weight:1.0

let perf_output =
  Signal.output ~name:"perf" ~lo:0.0 ~hi:10.0 ~bound_fraction:0.2 ()

let test_signal_normalization_roundtrip () =
  let x = 1.3 in
  check_float_loose "input roundtrip" x
    (Signal.denormalize_input freq_input (Signal.normalize_input freq_input x));
  check_float "input center" 0.0 (Signal.normalize_input freq_input 1.1);
  check_float "input extreme" 1.0 (Signal.normalize_input freq_input 2.0);
  check_float "output center" 0.0 (Signal.normalize_output perf_output 5.0);
  check_float "output extreme" (-1.0) (Signal.normalize_output perf_output 0.0)

let test_signal_bounds () =
  check_float "absolute bound" 2.0 (Signal.bound_absolute perf_output);
  check_float "normalized bound" 0.4 (Signal.normalized_bound perf_output);
  check_bool "critical default" false perf_output.Signal.critical;
  check_bool "integral default" true perf_output.Signal.integral

let test_signal_quantization_uncertainty () =
  (* step/2 over half-span: 0.05 / 0.9. *)
  check_float_loose "quantization" (0.05 /. 0.9)
    (Signal.quantization_uncertainty freq_input)

let test_signal_validation () =
  Alcotest.check_raises "empty range"
    (Invalid_argument "Signal.output: empty range") (fun () ->
      ignore (Signal.output ~name:"x" ~lo:1.0 ~hi:1.0 ~bound_fraction:0.1 ()));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Signal.input: weight must be positive") (fun () ->
      ignore
        (Signal.input ~name:"x" ~minimum:0.0 ~maximum:1.0 ~step:0.1 ~weight:0.0))

let test_signal_external_normalization () =
  let e =
    { Signal.name = "threads"; info = Signal.Opaque { lo = 0.0; hi = 8.0 } }
  in
  check_float "center" 0.0 (Signal.normalize_external e 4.0);
  check_float "max" 1.0 (Signal.normalize_external e 8.0)

(* ------------------------------------------------------------------ *)
(* Interface                                                           *)
(* ------------------------------------------------------------------ *)

let hw_spec_small =
  {
    Interface.layer = "hw";
    inputs = [ freq_input ];
    outputs = [ perf_output ];
    wanted_externals = [ ("threads", (0.0, 8.0)) ];
  }

let sw_spec_small =
  {
    Interface.layer = "sw";
    inputs =
      [ Signal.input ~name:"threads" ~minimum:0.0 ~maximum:8.0 ~step:1.0 ~weight:2.0 ];
    outputs = [ Signal.output ~name:"perf" ~lo:0.0 ~hi:8.0 ~bound_fraction:0.1 () ];
    wanted_externals = [ ("freq", (0.2, 2.0)); ("mystery", (0.0, 1.0)) ];
  }

let test_interface_resolves_input () =
  let r = Interface.resolve ~own:hw_spec_small ~peer:sw_spec_small in
  check_int "resolved count" 1 (List.length r.Interface.externals);
  (match (List.hd r.Interface.externals).Signal.info with
  | Signal.From_input ch ->
    check_float "channel max" 8.0 ch.Control.Quantize.maximum
  | _ -> Alcotest.fail "expected From_input");
  check_float "no inflation" 0.0 r.Interface.guardband_inflation

let test_interface_unresolved_inflates () =
  let r = Interface.resolve ~own:sw_spec_small ~peer:hw_spec_small in
  check_int "one unresolved" 1 (List.length r.Interface.unresolved);
  check_bool "inflation positive" true (r.Interface.guardband_inflation > 0.0);
  (* "freq" resolves as the hw input; "mystery" is opaque. *)
  (match (List.hd r.Interface.externals).Signal.info with
  | Signal.From_input _ -> ()
  | _ -> Alcotest.fail "freq should resolve From_input")

let test_interface_common_outputs () =
  let common = Interface.common_outputs hw_spec_small sw_spec_small in
  check_int "perf shared" 1 (List.length common);
  let name, b1, b2 = List.hd common in
  Alcotest.(check string) "name" "perf" name;
  check_float "own bound" 2.0 b1;
  check_float "peer bound" 0.8 b2

(* ------------------------------------------------------------------ *)
(* Controller (runtime state machine)                                  *)
(* ------------------------------------------------------------------ *)

(* A hand-built "controller" whose command equals the (normalized)
   deviation of its single output, plus the external: easy to predict. *)
let toy_controller () =
  let core =
    Control.Ss.make ~domain:(Control.Ss.Discrete 0.5)
      ~a:(Mat.create 0 0) ~b:(Mat.create 0 2)
      ~c:(Mat.create 1 0)
      ~d:(Mat.of_lists [ [ 1.0; 0.5 ] ])
      ()
  in
  Controller.make ~controller:core ~inputs:[| freq_input |]
    ~outputs:[| perf_output |]
    ~externals:
      [| { Signal.name = "e"; info = Signal.Opaque { lo = -1.0; hi = 1.0 } } |]

let test_controller_step_quantizes () =
  let c = toy_controller () in
  (* deviation = (7.5 - 5.0)/5 = 0.5 normalized; external 0; u_norm = 0.5
     -> freq = 1.1 + 0.5*0.9 = 1.55 -> quantized 1.5 or 1.6. *)
  let u =
    Controller.step c ~measurements:[| 7.5 |] ~targets:[| 5.0 |]
      ~externals:[| 0.0 |]
  in
  check_bool "on grid" true (u.(0) = 1.5 || u.(0) = 1.6);
  let raw = Controller.last_raw_command c in
  check_float_loose "raw" 0.5 raw.(0)

let test_controller_external_channel () =
  let c = toy_controller () in
  (* [step] returns a reused buffer; copy to compare across invocations. *)
  let u0 =
    Vec.copy
      (Controller.step c ~measurements:[| 5.0 |] ~targets:[| 5.0 |]
         ~externals:[| 0.0 |])
  in
  let u1 =
    Vec.copy
      (Controller.step c ~measurements:[| 5.0 |] ~targets:[| 5.0 |]
         ~externals:[| 1.0 |])
  in
  (* external normalized to 1.0, weighted 0.5 in D: u_norm = 0.5. *)
  check_float "no external" 1.1 u0.(0);
  check_bool "external moves command" true (u1.(0) > u0.(0))

let test_controller_dimension_checks () =
  let c = toy_controller () in
  Alcotest.check_raises "bad measurement"
    (Invalid_argument "Controller.step: measurement dimension mismatch")
    (fun () ->
      ignore
        (Controller.step c ~measurements:[| 1.0; 2.0 |] ~targets:[| 5.0 |]
           ~externals:[| 0.0 |]))

let test_controller_state_and_reset () =
  (* An integrating controller accumulates; reset clears it. *)
  let core =
    Control.Ss.make ~domain:(Control.Ss.Discrete 0.5)
      ~a:(Mat.of_lists [ [ 1.0 ] ])
      ~b:(Mat.of_lists [ [ 1.0 ] ])
      ~c:(Mat.of_lists [ [ 0.2 ] ])
      ~d:(Mat.create 1 1) ()
  in
  let c =
    Controller.make ~controller:core ~inputs:[| freq_input |]
      ~outputs:[| perf_output |] ~externals:[||]
  in
  let step () =
    (Controller.step c ~measurements:[| 10.0 |] ~targets:[| 5.0 |]
       ~externals:[||]).(0)
  in
  let u1 = step () in
  let u2 = step () in
  let u3 = step () in
  check_bool "integrates upward" true (u3 >= u2 && u2 >= u1);
  Controller.reset c;
  check_float "reset repeats first step" u1 (step ())

let test_controller_cost_matches_paper_shape () =
  (* With N=20, I=4, O+E=7 the paper quotes ~700 operations and ~2.6 KB. *)
  let core =
    Control.Ss.make ~domain:(Control.Ss.Discrete 0.5)
      ~a:(Mat.identity 20)
      ~b:(Mat.create 20 7)
      ~c:(Mat.create 4 20)
      ~d:(Mat.create 4 7) ()
  in
  let inputs = Hw_layer.inputs () in
  let outputs = Hw_layer.outputs () in
  let externals = Hw_layer.externals () in
  let c = Controller.make ~controller:core ~inputs ~outputs ~externals in
  let cost = Controller.cost c in
  check_int "states" 20 cost.Controller.states;
  check_int "macs" ((20 + 4) * (20 + 7)) cost.Controller.multiply_accumulates;
  check_bool "storage ~2.6KB" true
    (cost.Controller.storage_bytes > 2200 && cost.Controller.storage_bytes < 3000)

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let power_output =
  Signal.output ~name:"p" ~lo:0.0 ~hi:6.0 ~bound_fraction:0.1 ~critical:true ()

let test_optimizer_initial_targets () =
  let o =
    Optimizer.make
      ~outputs:[| perf_output; power_output |]
      ~roles:[| Optimizer.Maximize; Optimizer.Limited 3.3 |]
  in
  let t = Optimizer.targets o in
  check_float "perf starts mid" 5.0 t.(0);
  (* cap = 3.3 - 0.4*0.6 = 3.06. *)
  check_float_loose "power starts at cap" 3.06 t.(1)

let test_optimizer_limited_stays_within () =
  let o =
    Optimizer.make ~outputs:[| power_output |] ~roles:[| Optimizer.Limited 3.3 |]
  in
  (* Feed arbitrary objectives; targets must always respect the cap. *)
  let ok = ref true in
  for i = 1 to 60 do
    let obj = 1.0 +. (0.5 *. sin (Float.of_int i)) in
    let t = Optimizer.update o ~objective:obj ~measurements:[| 2.0 |] in
    if t.(0) > 3.0601 || t.(0) < 0.0 then ok := false
  done;
  check_bool "cap respected" true !ok

let test_optimizer_maximize_tracks_measurement () =
  let o =
    Optimizer.make ~outputs:[| perf_output |] ~roles:[| Optimizer.Maximize |]
  in
  let t = Optimizer.update o ~objective:1.0 ~measurements:[| 6.0 |] in
  (* measurement + 1 bound = 6 + 2 = 8. *)
  check_float "leads by one bound" 8.0 t.(0);
  let t2 = Optimizer.update o ~objective:1.0 ~measurements:[| 9.5 |] in
  check_float "clamped to range" 10.0 t2.(0)

let test_optimizer_descends_when_objective_improves_down () =
  let o =
    Optimizer.make ~outputs:[| power_output |] ~roles:[| Optimizer.Limited 3.3 |]
  in
  (* Simulate a world where lower targets give lower (better) objective:
     objective = current target value. After warmup the target must have
     moved below the cap. *)
  let target = ref 3.06 in
  for _ = 1 to 30 do
    let t = Optimizer.update o ~objective:!target ~measurements:[| !target |] in
    target := t.(0)
  done;
  check_bool "descended" true (!target < 3.0)

let test_optimizer_fixed_role () =
  let o =
    Optimizer.make ~outputs:[| perf_output |] ~roles:[| Optimizer.Fixed 7.0 |]
  in
  let t = Optimizer.update o ~objective:0.5 ~measurements:[| 2.0 |] in
  check_float "fixed" 7.0 t.(0);
  check_float "best tracked" 0.5 (Optimizer.best_objective o)

let test_optimizer_reset () =
  let o =
    Optimizer.make ~outputs:[| power_output |] ~roles:[| Optimizer.Limited 3.3 |]
  in
  for i = 1 to 20 do
    ignore
      (Optimizer.update o ~objective:(Float.of_int i) ~measurements:[| 2.0 |])
  done;
  Optimizer.reset o;
  check_float_loose "back to cap" 3.06 (Optimizer.targets o).(0);
  check_bool "best cleared" true (Optimizer.best_objective o = infinity)

(* ------------------------------------------------------------------ *)
(* Design: generalized plant                                           *)
(* ------------------------------------------------------------------ *)

let tiny_spec =
  {
    Design.layer = "tiny";
    inputs = [| freq_input |];
    outputs = [| perf_output |];
    externals =
      [| { Signal.name = "e"; info = Signal.Opaque { lo = -1.0; hi = 1.0 } } |];
    uncertainty = 0.3;
    period = 0.5;
  }

let tiny_model =
  (* One-state stable model: y = 0.8 y^- + 0.5 u + 0.1 e. *)
  Control.Ss.make ~domain:(Control.Ss.Discrete 0.5)
    ~a:(Mat.of_lists [ [ 0.8 ] ])
    ~b:(Mat.of_lists [ [ 0.5; 0.1 ] ])
    ~c:(Mat.of_lists [ [ 1.0 ] ])
    ~d:(Mat.create 1 2) ()

let test_generalized_plant_dimensions () =
  let plant, structure = Design.generalized_plant tiny_spec ~model:tiny_model in
  (* no=1, nu=1, ne=1: nw = 1+1+1+1 = 4, nz = 1+1+1+1 = 4, ny = 2, nu = 1. *)
  check_int "nw" 4 plant.Control.Hinf.part.Control.Hinf.nw;
  check_int "nz" 4 plant.Control.Hinf.part.Control.Hinf.nz;
  check_int "ny" 2 plant.Control.Hinf.part.Control.Hinf.ny;
  check_int "nu" 1 plant.Control.Hinf.part.Control.Hinf.nu;
  Control.Hinf.validate_partition plant;
  (* Structure tiles the z/w channels. *)
  check_int "structure rows" 4 (Control.Ssv.block_rows structure);
  check_int "structure cols" 4 (Control.Ssv.block_cols structure);
  (* Weight states augment the model. *)
  check_int "order" 2 (Control.Ss.order plant.Control.Hinf.sys)

let test_generalized_plant_rejects_mismatch () =
  let bad_model =
    Control.Ss.make ~domain:(Control.Ss.Discrete 0.5)
      ~a:(Mat.of_lists [ [ 0.5 ] ])
      ~b:(Mat.of_lists [ [ 1.0 ] ])
      ~c:(Mat.of_lists [ [ 1.0 ] ])
      ~d:(Mat.create 1 1) ()
  in
  Alcotest.check_raises "input mismatch"
    (Invalid_argument
       "Design.generalized_plant: model inputs <> inputs + externals")
    (fun () -> ignore (Design.generalized_plant tiny_spec ~model:bad_model))

let test_tiny_synthesis_end_to_end () =
  (* mu-synthesis on the one-state layer: must produce a wrapped runtime
     controller with the right signature and a finite certificate. *)
  let syn = Design.synthesize ~dk_iterations:1 ~mu_points:10 tiny_spec ~model:tiny_model in
  check_bool "mu finite" true (Float.is_finite syn.Design.mu_peak);
  check_bool "gamma positive" true (syn.Design.gamma > 0.0);
  let u =
    Controller.step syn.Design.controller ~measurements:[| 4.0 |]
      ~targets:[| 5.0 |] ~externals:[| 0.0 |]
  in
  check_bool "command on the grid" true
    (Float.abs ((u.(0) *. 10.0) -. Float.round (u.(0) *. 10.0)) < 1e-9);
  check_bool "guaranteed bounds scale" true
    (syn.Design.guaranteed_bounds.(0) >= Signal.bound_absolute perf_output -. 1e-9)

let test_identify_recovers_tiny_model () =
  (* Generate data from the tiny model and identify it back. *)
  let exc = { Sysid.Excitation.seed = 2; hold = 2 } in
  let u_norm =
    Sysid.Excitation.channels exc
      ~levels:[| [| -1.0; 0.0; 1.0 |]; [| -1.0; 1.0 |] |]
      ~length:300
  in
  (* Physical u: denormalize channel 0 through the input descriptor,
     channel 1 through the external range. *)
  let u_phys =
    Array.map
      (fun row ->
        [| Signal.denormalize_input freq_input row.(0); row.(1) |])
      u_norm
  in
  let y_norm = Control.Ss.simulate tiny_model u_norm in
  let y_phys =
    Array.map (fun v -> [| Signal.denormalize_output perf_output v.(0) |]) y_norm
  in
  let model = Design.identify ~order:2 tiny_spec ~u:u_phys ~y:y_phys in
  (* The identified model must reproduce the dc gain of the truth. *)
  let dc_true = Mat.get (Control.Ss.dcgain tiny_model) 0 0 in
  let dc_est = Mat.get (Control.Ss.dcgain model) 0 0 in
  check_bool "dc gain recovered" true (Float.abs (dc_true -. dc_est) < 0.15)


let test_synthesis_with_reduction () =
  (* Ask for a 2-state controller on the tiny layer: the option must never
     produce a worse certificate or an unstable loop, and when it applies
     the controller order shrinks. *)
  let full =
    Design.synthesize ~dk_iterations:1 ~mu_points:8 tiny_spec ~model:tiny_model
  in
  let reduced =
    Design.synthesize ~dk_iterations:1 ~mu_points:8 ~reduce_order:2 tiny_spec
      ~model:tiny_model
  in
  check_bool "order never grows" true
    (Controller.order reduced.Design.controller
     <= Controller.order full.Design.controller);
  check_bool "certificate not much worse" true
    (reduced.Design.mu_peak <= (full.Design.mu_peak *. 1.11) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Layer specifications (Tables II and III)                            *)
(* ------------------------------------------------------------------ *)

let test_hw_layer_table2 () =
  let spec = Hw_layer.spec () in
  check_int "4 inputs" 4 (Array.length spec.Design.inputs);
  check_int "4 outputs" 4 (Array.length spec.Design.outputs);
  check_int "3 externals" 3 (Array.length spec.Design.externals);
  check_float "guardband" 0.40 spec.Design.uncertainty;
  check_float "period" 0.5 spec.Design.period;
  check_float "input weight" 1.0 spec.Design.inputs.(0).Signal.weight;
  check_float "perf bound" 0.20 spec.Design.outputs.(0).Signal.bound_fraction;
  check_float "power bound" 0.10 spec.Design.outputs.(1).Signal.bound_fraction;
  check_bool "power critical" true spec.Design.outputs.(1).Signal.critical

let test_sw_layer_table3 () =
  let spec = Sw_layer.spec () in
  check_int "3 inputs" 3 (Array.length spec.Design.inputs);
  check_int "3 outputs" 3 (Array.length spec.Design.outputs);
  check_int "4 externals" 4 (Array.length spec.Design.externals);
  check_float "guardband" 0.50 spec.Design.uncertainty;
  check_float "input weight" 2.0 spec.Design.inputs.(0).Signal.weight

let test_layer_interface_consistency () =
  (* Every hw external must be an sw input and vice versa (Figure 3). *)
  let hw = Hw_layer.spec () and sw = Sw_layer.spec () in
  let sw_input_names =
    Array.to_list
      (Array.map (fun (i : Signal.input) -> i.Signal.name) sw.Design.inputs)
  in
  Array.iter
    (fun e -> check_bool e.Signal.name true (List.mem e.Signal.name sw_input_names))
    hw.Design.externals;
  let hw_input_names =
    Array.to_list
      (Array.map (fun (i : Signal.input) -> i.Signal.name) hw.Design.inputs)
  in
  Array.iter
    (fun e -> check_bool e.Signal.name true (List.mem e.Signal.name hw_input_names))
    sw.Design.externals

let test_hw_command_roundtrip () =
  let c =
    { Board.Xu3.big_cores = 3; little_cores = 2; freq_big = 1.4; freq_little = 0.8 }
  in
  let c' = Hw_layer.config_of_command (Hw_layer.command_of_config c) in
  check_bool "roundtrip" true (c = c')

let test_sw_command_roundtrip () =
  let p = { Board.Xu3.threads_big = 5; tpc_big = 1.5; tpc_little = 1.0 } in
  let p' = Sw_layer.placement_of_command (Sw_layer.command_of_placement p) in
  check_bool "roundtrip" true (p = p')

(* ------------------------------------------------------------------ *)
(* Heuristics                                                          *)
(* ------------------------------------------------------------------ *)

let outputs_with ?(threads = 8) ?(power_big = 2.0) ?(temp = 60.0) () =
  {
    Board.Xu3.bips = 8.0;
    bips_big = 6.0;
    bips_little = 2.0;
    power_big;
    power_little = 0.2;
    temperature = temp;
    threads_active = threads;
    spare_big = 0.0;
    spare_little = 0.0;
  }

let mid_config =
  { Board.Xu3.big_cores = 4; little_cores = 4; freq_big = 1.2; freq_little = 1.0 }

let test_os_coordinated_split () =
  let p =
    Heuristics.os_coordinated ~config:mid_config ~outputs:(outputs_with ())
  in
  (* Big cluster has more capacity: most threads go big, some little. *)
  check_bool "big-leaning" true
    (p.Board.Xu3.threads_big >= 4 && p.Board.Xu3.threads_big <= 7);
  check_bool "tpc sane" true (p.Board.Xu3.tpc_big >= 1.0)

let test_os_round_robin () =
  let p = Heuristics.os_round_robin ~outputs:(outputs_with ~threads:8 ()) in
  check_int "half big" 4 p.Board.Xu3.threads_big;
  let p1 = Heuristics.os_round_robin ~outputs:(outputs_with ~threads:1 ()) in
  check_int "single thread goes big" 1 p1.Board.Xu3.threads_big

let test_hw_coordinated_ladder () =
  let placement = { Board.Xu3.threads_big = 6; tpc_big = 1.5; tpc_little = 1.0 } in
  let st = Heuristics.coordinated_init () in
  (* Low power, cool: frequency may rise (on the epochs the governor moves). *)
  let c1 =
    Heuristics.hw_coordinated ~state:st ~config:mid_config
      ~outputs:(outputs_with ~power_big:1.0 ~temp:50.0 ())
      ~placement ()
  in
  let c2 =
    Heuristics.hw_coordinated ~state:st ~config:mid_config
      ~outputs:(outputs_with ~power_big:1.0 ~temp:50.0 ())
      ~placement ()
  in
  check_bool "rises when safe" true
    (Float.max c1.Board.Xu3.freq_big c2.Board.Xu3.freq_big > 1.2);
  (* High power: backs off. *)
  let st2 = Heuristics.coordinated_init () in
  let _ =
    Heuristics.hw_coordinated ~state:st2 ~config:mid_config
      ~outputs:(outputs_with ~power_big:3.2 ())
      ~placement ()
  in
  let c3 =
    Heuristics.hw_coordinated ~state:st2 ~config:mid_config
      ~outputs:(outputs_with ~power_big:3.2 ())
      ~placement ()
  in
  check_bool "backs off" true (c3.Board.Xu3.freq_big < 1.2)

let test_hw_coordinated_thermal_core_control () =
  let placement = { Board.Xu3.threads_big = 8; tpc_big = 2.0; tpc_little = 1.0 } in
  let st = Heuristics.coordinated_init () in
  let hot =
    Heuristics.hw_coordinated ~state:st ~config:mid_config
      ~outputs:(outputs_with ~temp:70.0 ())
      ~placement ()
  in
  check_bool "cores capped when hot" true (hot.Board.Xu3.big_cores <= 2)

let test_hw_decoupled_max_then_backoff () =
  let st = Heuristics.decoupled_init () in
  let c1 = Heuristics.hw_decoupled st ~outputs:(outputs_with ~power_big:2.0 ()) in
  check_float "max freq" 2.0 c1.Board.Xu3.freq_big;
  (* Needs two consecutive violations before moving. *)
  let c2 = Heuristics.hw_decoupled st ~outputs:(outputs_with ~power_big:4.5 ()) in
  check_float "still max after one" 2.0 c2.Board.Xu3.freq_big;
  let c3 = Heuristics.hw_decoupled st ~outputs:(outputs_with ~power_big:4.5 ()) in
  check_bool "backs off after two" true (c3.Board.Xu3.freq_big < 2.0)

(* ------------------------------------------------------------------ *)
(* Runtime and experiment drivers (heuristic schemes only: fast)       *)
(* ------------------------------------------------------------------ *)

let tiny_workload =
  Board.Workload.scale ~ginsts:40.0 (Board.Workload.by_name "gamess")

let test_runtime_heuristic_schemes_complete () =
  List.iter
    (fun scheme ->
      let r = Runtime.run ~max_time:500.0 scheme [ tiny_workload ] in
      check_bool (Runtime.scheme_name scheme) true r.Runtime.completed;
      check_bool "positive energy" true
        (r.Runtime.metrics.Board.Xu3.total_energy > 0.0))
    [ Runtime.Coordinated_heuristic; Runtime.Decoupled_heuristic ]

let test_runtime_trace_collection () =
  let r =
    Runtime.run ~max_time:500.0 ~collect_trace:true Runtime.Coordinated_heuristic
      [ tiny_workload ]
  in
  check_bool "trace nonempty" true (Array.length r.Runtime.trace > 2);
  let p = r.Runtime.trace.(1) in
  check_bool "trace fields sane" true
    (p.Runtime.time > 0.0 && p.Runtime.power_big >= 0.0 && p.Runtime.big_cores >= 1)

let test_experiment_normalization () =
  let coord = Schemes.find_exn "coord" in
  let dec = Schemes.find_exn "decoupled" in
  let rows =
    Experiment.run_suite ~max_time:500.0 ~schemes:[ coord; dec ]
      [ ("tiny", [ tiny_workload ]) ]
  in
  (match rows with
  | [ row ] ->
    check_float "baseline normalized to 1"
      1.0
      (List.assoc coord row.Experiment.exd);
    check_bool "other scheme positive" true
      (List.assoc dec row.Experiment.exd > 0.0)
  | _ -> Alcotest.fail "expected one row")

let test_scheme_names_distinct () =
  let names = List.map Runtime.scheme_name Runtime.all_schemes in
  check_int "six schemes" 6 (List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)
(* Layer / Stack / scheme registry                                     *)
(* ------------------------------------------------------------------ *)

(* Toy layers over the toy controller: the full Layer/Stack machinery
   without any mu-synthesis. The controlled layer drives freq_big from
   the board's throughput. *)
let toy_controlled_layer ?(label = "toy") ?(targets = Layer.Fixed [| 5.0 |]) ()
    =
  Layer.controlled ~label ~measures:[| "perf" |] ~actuates:[| "freq" |]
    ~controller:(toy_controller ()) ~targets
    ~measure:(fun o -> [| o.Board.Xu3.bips |])
    ~externals:(fun _ -> [| 0.0 |])
    ~actuate:(fun board u ->
      Board.Xu3.set_config board
        { (Board.Xu3.config board) with Board.Xu3.freq_big = u.(0) })
    ()

let toy_heuristic_layer ?(label = "heur") () =
  Layer.heuristic ~label ~act:(fun _ _ -> ()) ()

let test_registry_roundtrip () =
  check_bool "registry nonempty" true (List.length Schemes.all >= 7);
  List.iter
    (fun (i : Schemes.info) ->
      let same via = function
        | Some (j : Schemes.info) ->
          Alcotest.(check string) (via ^ " finds " ^ i.Schemes.key)
            i.Schemes.key j.Schemes.key
        | None -> Alcotest.failf "%s %S did not parse" via i.Schemes.key
      in
      same "key" (Schemes.find i.Schemes.key);
      same "name" (Schemes.find i.Schemes.name);
      same "abbrev" (Schemes.find i.Schemes.abbrev);
      same "abbrev (case)" (Schemes.find (String.lowercase_ascii i.Schemes.abbrev));
      List.iter (fun a -> same "alias" (Schemes.find a)) i.Schemes.aliases;
      check_bool "has layers" true (i.Schemes.layers <> []))
    Schemes.all;
  check_bool "unknown is None" true (Schemes.find "no-such-scheme" = None);
  check_bool "find_exn raises" true
    (match Schemes.find_exn "no-such-scheme" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_three_layer_registered () =
  let i = Schemes.find_exn "three-layer" in
  Alcotest.(check (list string)) "declared layers" [ "qos"; "sw"; "hw" ]
    i.Schemes.layers;
  check_bool "alias qos" true (Schemes.find "qos" = Some i);
  check_bool "in all" true (List.mem i Schemes.all)

let test_average_empty_raises () =
  Alcotest.check_raises "empty average"
    (Invalid_argument "Experiment.average: empty list") (fun () ->
      ignore (Experiment.average []));
  check_float "singleton" 2.0 (Experiment.average [ 2.0 ])

let test_stack_make_validation () =
  check_bool "empty rejected" true
    (match Stack.make [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "duplicate labels rejected" true
    (match
       Stack.make [ toy_heuristic_layer (); toy_heuristic_layer () ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_layer_kind_guards () =
  let h = toy_heuristic_layer () in
  check_bool "heuristic" false (Layer.is_controlled h);
  check_bool "with_externals rejects heuristic" true
    (match Layer.with_externals h (fun _ -> [||]) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "with_fixed_targets rejects heuristic" true
    (match Layer.with_fixed_targets h [| 1.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let c = toy_controlled_layer () in
  check_bool "controlled" true (Layer.is_controlled c);
  Alcotest.(check string) "label" "toy" (Layer.label c)

(* A three-layer stack must step its layers in declared order every
   epoch; the [runtime.decision] event stream is the ground truth. *)
let test_stack_steps_in_declared_order () =
  let stack =
    Stack.make ~label:"test3"
      [
        Schemes.qos_layer ();
        toy_heuristic_layer ~label:"mid" ();
        toy_controlled_layer ~label:"low" ();
      ]
  in
  Obs.Collector.buffer_sink ();
  Obs.Collector.enable ();
  let r = Stack.run ~max_time:3.0 stack [ tiny_workload ] in
  Obs.Collector.disable ();
  check_bool "progressed" true
    (r.Stack.metrics.Board.Xu3.execution_time > 0.0);
  let lines = List.map Obs.Json.of_string (Obs.Collector.drain ()) in
  let decisions =
    List.filter_map
      (fun j ->
        match Option.bind (Obs.Json.member "name" j) Obs.Json.to_string_opt with
        | Some "runtime.decision" ->
          Option.bind (Obs.Json.member "fields" j) (fun f ->
              Option.bind (Obs.Json.member "layer" f) Obs.Json.to_string_opt)
        | _ -> None)
      lines
  in
  check_bool "at least two epochs" true (List.length decisions >= 6);
  List.iteri
    (fun i layer ->
      let expected =
        match i mod 3 with 0 -> "qos" | 1 -> "mid" | _ -> "low"
      in
      Alcotest.(check string)
        (Printf.sprintf "decision %d" i)
        expected layer)
    decisions

(* The ablation combinators (external channels cut, optimizer frozen)
   compose through Layer and run to completion with sane metrics. *)
let test_ablation_stacks_complete () =
  let opt_targets () =
    Layer.Optimized
      (Optimizer.make ~outputs:[| perf_output |] ~roles:[| Optimizer.Maximize |])
  in
  let base label = toy_controlled_layer ~label ~targets:(opt_targets ()) () in
  let stacks =
    [
      ("plain", Stack.make [ base "a"; toy_heuristic_layer ~label:"b" () ]);
      ( "no-externals",
        Stack.make [ Layer.with_externals (base "a") (fun _ -> [| 0.0 |]) ] );
      ( "fixed-targets",
        Stack.make [ Layer.with_fixed_targets (base "a") [| 5.0 |] ] );
    ]
  in
  List.iter
    (fun (name, stack) ->
      let r = Stack.run ~max_time:500.0 stack [ tiny_workload ] in
      check_bool (name ^ " completed") true r.Stack.completed;
      check_bool (name ^ " energy positive") true
        (r.Stack.metrics.Board.Xu3.total_energy > 0.0))
    stacks

(* The reified stepper must reproduce [Stack.run] decision-for-decision:
   driving an identical fresh stack through [step_epoch] with [run]'s
   own loop condition yields bit-identical metrics. This is the batch
   side of the serve-session purity guarantee. *)
let test_stepper_matches_run () =
  let mk () =
    Stack.make [ toy_controlled_layer (); toy_heuristic_layer () ]
  in
  let r = Stack.run ~max_time:500.0 (mk ()) [ tiny_workload ] in
  let s = Stack.stepper (mk ()) [ tiny_workload ] in
  let continue = ref true in
  while !continue && Stack.time s < 500.0 do
    if Stack.step_epoch s = None then continue := false
  done;
  let r' = Stack.result_of_stepper s ~trace:[] in
  let m = r.Stack.metrics and m' = r'.Stack.metrics in
  check_bool "completed matches" r.Stack.completed r'.Stack.completed;
  check_float "execution time" m.Board.Xu3.execution_time
    m'.Board.Xu3.execution_time;
  check_float "total energy" m.Board.Xu3.total_energy
    m'.Board.Xu3.total_energy;
  check_float "energy delay" m.Board.Xu3.energy_delay
    m'.Board.Xu3.energy_delay;
  check_int "trips" m.Board.Xu3.trips m'.Board.Xu3.trips

(* Hot-swapping a controller mid-run is bumpless: the first post-swap
   actuation equals the last pre-swap one exactly (the incoming
   controller's one-step output hold), and the run keeps stepping. *)
let test_swap_controller_bumpless () =
  let layer = toy_controlled_layer () in
  let stack = Stack.make [ layer ] in
  let s = Stack.stepper stack [ tiny_workload ] in
  for _ = 1 to 5 do
    ignore (Stack.step_epoch s)
  done;
  let board = Stack.board s in
  let pre = (Board.Xu3.config board).Board.Xu3.freq_big in
  Layer.swap_controller layer (toy_controller ());
  ignore (Stack.step_epoch s);
  let post = (Board.Xu3.config board).Board.Xu3.freq_big in
  check_float "first post-swap actuation held" pre post;
  (* The hold is one epoch only: the new controller then runs free. *)
  ignore (Stack.step_epoch s);
  check_bool "keeps stepping" true (Stack.epoch_count s = 7);
  (* Dimension mismatch is rejected, heuristic layers are rejected. *)
  check_bool "heuristic rejected" true
    (match Layer.swap_controller (toy_heuristic_layer ()) (toy_controller ()) with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_controller_commands_on_grid =
  QCheck.Test.make ~name:"commands land on the input grid" ~count:100
    QCheck.(pair (float_range (-20.0) 20.0) (float_range (-2.0) 2.0))
    (fun (meas, ext) ->
      let c = toy_controller () in
      let u =
        Controller.step c ~measurements:[| meas |] ~targets:[| 5.0 |]
          ~externals:[| ext |]
      in
      let steps = (u.(0) -. 0.2) /. 0.1 in
      u.(0) >= 0.2 -. 1e-9 && u.(0) <= 2.0 +. 1e-9
      && Float.abs (steps -. Float.round steps) < 1e-6)

let prop_optimizer_targets_in_range =
  QCheck.Test.make ~name:"optimizer targets stay in output ranges" ~count:50
    QCheck.(list_of_size (Gen.return 25) (float_range 0.1 10.0))
    (fun objectives ->
      let o =
        Optimizer.make
          ~outputs:[| perf_output; power_output |]
          ~roles:[| Optimizer.Maximize; Optimizer.Limited 3.3 |]
      in
      List.for_all
        (fun obj ->
          let t = Optimizer.update o ~objective:obj ~measurements:[| 5.0; 2.0 |] in
          t.(0) >= 0.0 && t.(0) <= 10.0 && t.(1) >= 0.0 && t.(1) <= 3.3)
        objectives)

let prop_signal_normalization_inverse =
  QCheck.Test.make ~name:"normalize/denormalize inverse" ~count:200
    QCheck.(float_range (-3.0) 3.0)
    (fun x ->
      let y = Signal.denormalize_output perf_output x in
      Float.abs (Signal.normalize_output perf_output y -. x) < 1e-9)


(* Robustness across random workloads: the heuristic schemes and the
   board protections must keep any synthetic workload finishing without
   runaway behaviour. *)
let prop_schemes_complete_on_random_workloads =
  QCheck.Test.make ~name:"schemes survive random workloads" ~count:6
    QCheck.(int_range 1 1000)
    (fun seed ->
      let w =
        Board.Workload.synthetic ~seed ~phases:(1 + (seed mod 3)) ~ginsts:60.0 ()
      in
      List.for_all
        (fun scheme ->
          let r = Runtime.run ~max_time:600.0 scheme [ w ] in
          r.Runtime.completed
          && r.Runtime.metrics.Board.Xu3.total_energy > 0.0)
        [ Runtime.Coordinated_heuristic; Runtime.Decoupled_heuristic ])

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_controller_commands_on_grid;
      prop_optimizer_targets_in_range;
      prop_signal_normalization_inverse;
      prop_schemes_complete_on_random_workloads;
    ]

let () =
  Alcotest.run "yukta"
    [
      ( "signal",
        [
          Alcotest.test_case "normalization roundtrip" `Quick
            test_signal_normalization_roundtrip;
          Alcotest.test_case "bounds" `Quick test_signal_bounds;
          Alcotest.test_case "quantization uncertainty" `Quick
            test_signal_quantization_uncertainty;
          Alcotest.test_case "validation" `Quick test_signal_validation;
          Alcotest.test_case "external normalization" `Quick
            test_signal_external_normalization;
        ] );
      ( "interface",
        [
          Alcotest.test_case "resolves input" `Quick test_interface_resolves_input;
          Alcotest.test_case "unresolved inflates" `Quick
            test_interface_unresolved_inflates;
          Alcotest.test_case "common outputs" `Quick test_interface_common_outputs;
        ] );
      ( "controller",
        [
          Alcotest.test_case "step quantizes" `Quick test_controller_step_quantizes;
          Alcotest.test_case "external channel" `Quick
            test_controller_external_channel;
          Alcotest.test_case "dimension checks" `Quick
            test_controller_dimension_checks;
          Alcotest.test_case "state and reset" `Quick
            test_controller_state_and_reset;
          Alcotest.test_case "cost (Section VI-D)" `Quick
            test_controller_cost_matches_paper_shape;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "initial targets" `Quick test_optimizer_initial_targets;
          Alcotest.test_case "limited stays within" `Quick
            test_optimizer_limited_stays_within;
          Alcotest.test_case "maximize tracks" `Quick
            test_optimizer_maximize_tracks_measurement;
          Alcotest.test_case "descends downhill" `Quick
            test_optimizer_descends_when_objective_improves_down;
          Alcotest.test_case "fixed role" `Quick test_optimizer_fixed_role;
          Alcotest.test_case "reset" `Quick test_optimizer_reset;
        ] );
      ( "design",
        [
          Alcotest.test_case "generalized plant dims" `Quick
            test_generalized_plant_dimensions;
          Alcotest.test_case "rejects mismatch" `Quick
            test_generalized_plant_rejects_mismatch;
          Alcotest.test_case "tiny synthesis end-to-end" `Slow
            test_tiny_synthesis_end_to_end;
          Alcotest.test_case "identify tiny model" `Quick
            test_identify_recovers_tiny_model;
          Alcotest.test_case "synthesis with reduction" `Slow
            test_synthesis_with_reduction;
        ] );
      ( "layers",
        [
          Alcotest.test_case "table II" `Quick test_hw_layer_table2;
          Alcotest.test_case "table III" `Quick test_sw_layer_table3;
          Alcotest.test_case "interface consistency" `Quick
            test_layer_interface_consistency;
          Alcotest.test_case "hw command roundtrip" `Quick
            test_hw_command_roundtrip;
          Alcotest.test_case "sw command roundtrip" `Quick
            test_sw_command_roundtrip;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "coordinated split" `Quick test_os_coordinated_split;
          Alcotest.test_case "round robin" `Quick test_os_round_robin;
          Alcotest.test_case "coordinated ladder" `Quick
            test_hw_coordinated_ladder;
          Alcotest.test_case "thermal core control" `Quick
            test_hw_coordinated_thermal_core_control;
          Alcotest.test_case "decoupled backoff" `Quick
            test_hw_decoupled_max_then_backoff;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "heuristic schemes complete" `Quick
            test_runtime_heuristic_schemes_complete;
          Alcotest.test_case "trace collection" `Quick test_runtime_trace_collection;
          Alcotest.test_case "experiment normalization" `Quick
            test_experiment_normalization;
          Alcotest.test_case "scheme names" `Quick test_scheme_names_distinct;
        ] );
      ( "stack",
        [
          Alcotest.test_case "registry roundtrip" `Quick test_registry_roundtrip;
          Alcotest.test_case "three-layer registered" `Quick
            test_three_layer_registered;
          Alcotest.test_case "average empty raises" `Quick
            test_average_empty_raises;
          Alcotest.test_case "make validation" `Quick test_stack_make_validation;
          Alcotest.test_case "layer kind guards" `Quick test_layer_kind_guards;
          Alcotest.test_case "steps in declared order" `Quick
            test_stack_steps_in_declared_order;
          Alcotest.test_case "ablation stacks complete" `Quick
            test_ablation_stacks_complete;
          Alcotest.test_case "stepper matches run" `Quick
            test_stepper_matches_run;
          Alcotest.test_case "bumpless controller swap" `Quick
            test_swap_controller_bumpless;
        ] );
      ("properties", qcheck_cases);
    ]
