(* Tests for the design-space sweep farm: point enumeration and
   sampling, frontier dominance properties (qcheck), checkpoint
   load/resume semantics (including the kill-mid-append signature),
   shard striping, shard-document merging, and the end-to-end
   determinism contract (-j1 vs -j4 byte-identity, kill/resume,
   sharded-then-merged vs single-shot). *)

open Sweep

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* A scratch directory per call, under the test's cwd so dune cleans it
   with the build tree. *)
let scratch_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_dir () =
  incr scratch_counter;
  let d = Printf.sprintf "_sweep_test_%d" !scratch_counter in
  rm_rf d;
  d

(* ------------------------------------------------------------------ *)
(* Space                                                               *)
(* ------------------------------------------------------------------ *)

let test_space_cardinality () =
  check_int "default grid" 243 (Space.cardinality Space.default);
  check_int "smoke grid" 8 (Space.cardinality Space.smoke);
  let tiny =
    Space.make ~deltas:[| 1.0 |] ~weights:[| 1.0; 2.0 |] ~bounds:[| 0.2 |]
      ~epochs:[| 0.5 |] ~arrangements:[| Space.Hw_only |] ()
  in
  check_int "product of axis lengths" 2 (Space.cardinality tiny)

let test_space_validation () =
  check_bool "empty axis rejected" true
    (raises_invalid (fun () -> Space.make ~deltas:[||] ()));
  check_bool "non-positive value rejected" true
    (raises_invalid (fun () -> Space.make ~bounds:[| 0.2; 0.0 |] ()));
  check_bool "nan rejected" true
    (raises_invalid (fun () -> Space.make ~epochs:[| Float.nan |] ()))

let test_point_decode () =
  let s = Space.default in
  let n = Space.cardinality s in
  (* Ids are a bijection onto the grid. *)
  let seen = Hashtbl.create n in
  for id = 0 to n - 1 do
    let p = Space.point s id in
    check_int "id round-trips" id p.Space.id;
    Hashtbl.replace seen
      (p.Space.delta, p.Space.weight, p.Space.bound, p.Space.epoch,
       p.Space.arrangement)
      ()
  done;
  check_int "enumeration is a bijection" n (Hashtbl.length seen);
  (* Delta varies fastest. *)
  check_bool "axis order" true
    ((Space.point s 0).Space.delta <> (Space.point s 1).Space.delta);
  check_bool "id out of range rejected" true
    (raises_invalid (fun () -> Space.point s n))

let test_point_fields_roundtrip () =
  let s = Space.default in
  for id = 0 to Space.cardinality s - 1 do
    let p = Space.point s id in
    match Space.point_of_fields (Obs.Json.Obj (Space.point_fields p)) with
    | Some q -> check_bool "fields round-trip" true (p = q)
    | None -> Alcotest.fail "point_of_fields rejected its own encoding"
  done

let test_sample () =
  let s = Space.default in
  let n = Space.cardinality s in
  let full = Space.sample s ~seed:1 ~count:0 in
  check_int "count<=0 selects all" n (List.length full);
  check_bool "full sample is 0..n-1" true (full = List.init n Fun.id);
  check_bool "count>=n selects all" true
    (Space.sample s ~seed:1 ~count:(n + 5) = full);
  let a = Space.sample s ~seed:7 ~count:40 in
  check_bool "deterministic" true (a = Space.sample s ~seed:7 ~count:40);
  check_bool "seed matters" true (a <> Space.sample s ~seed:8 ~count:40);
  check_int "requested count" 40 (List.length a);
  check_bool "ascending" true (List.sort compare a = a);
  check_int "distinct" 40 (List.length (List.sort_uniq compare a));
  check_bool "within grid" true (List.for_all (fun id -> id >= 0 && id < n) a)

let test_space_fingerprint () =
  let fp = Space.fingerprint Space.default in
  check_string "stable" fp (Space.fingerprint Space.default);
  check_bool "axis change changes it" true
    (fp <> Space.fingerprint (Space.make ~deltas:[| 0.4; 1.0 |] ()));
  check_bool "smoke differs from default" true
    (fp <> Space.fingerprint Space.smoke)

(* ------------------------------------------------------------------ *)
(* Frontier                                                            *)
(* ------------------------------------------------------------------ *)

(* Entries over a coarse objective lattice so random draws collide and
   dominate each other often. *)
let entry_gen =
  QCheck.Gen.(
    let* id = int_bound (Space.cardinality Space.default - 1) in
    let* mu = map float_of_int (int_range 1 4) in
    let* exd = map float_of_int (int_range 1 4) in
    let* macs = int_range 1 4 in
    return
      { Frontier.point = Space.point Space.default id; mu; exd; macs })

let arb_entries =
  QCheck.make
    ~print:(fun es ->
      String.concat ";"
        (List.map
           (fun (e : Frontier.entry) ->
             Printf.sprintf "(#%d %g %g %d)" e.Frontier.point.Space.id
               e.Frontier.mu e.Frontier.exd e.Frontier.macs)
           es))
    QCheck.Gen.(list_size (int_range 0 30) entry_gen)

let frontier_of entries =
  let f = Frontier.create () in
  List.iter (fun e -> ignore (Frontier.insert f e)) entries;
  f

let prop_members_mutually_non_dominated =
  QCheck.Test.make ~count:300 ~name:"no member dominates another"
    arb_entries (fun entries ->
      let ms = Frontier.members (frontier_of entries) in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> a == b || not (Frontier.dominates a b))
            ms)
        ms)

let prop_members_cover_input =
  QCheck.Test.make ~count:300
    ~name:"every input is dominated by (or is) a member" arb_entries
    (fun entries ->
      let ms = Frontier.members (frontier_of entries) in
      List.for_all
        (fun e ->
          List.exists (fun m -> m = e || Frontier.dominates m e) ms)
        entries)

let prop_order_independent =
  QCheck.Test.make ~count:300 ~name:"insertion order is irrelevant"
    arb_entries (fun entries ->
      let sorted f =
        List.sort compare (Frontier.members f)
      in
      sorted (frontier_of entries) = sorted (frontier_of (List.rev entries)))

let test_frontier_insert () =
  let e ~mu ~exd ~macs id =
    { Frontier.point = Space.point Space.default id; mu; exd; macs }
  in
  let f = Frontier.create () in
  check_bool "first entry accepted" true
    (Frontier.insert f (e 0 ~mu:2.0 ~exd:2.0 ~macs:2));
  check_bool "dominated entry rejected" false
    (Frontier.insert f (e 1 ~mu:3.0 ~exd:2.0 ~macs:2));
  check_int "rejected entry not kept" 1 (Frontier.size f);
  check_bool "incomparable entry accepted" true
    (Frontier.insert f (e 2 ~mu:1.0 ~exd:3.0 ~macs:2));
  check_int "both kept" 2 (Frontier.size f);
  check_bool "dominating entry evicts" true
    (Frontier.insert f (e 3 ~mu:1.0 ~exd:1.0 ~macs:1));
  check_int "evicts every dominated member" 1 (Frontier.size f);
  check_bool "tie (equal objectives) kept" true
    (Frontier.insert f (e 4 ~mu:1.0 ~exd:1.0 ~macs:1));
  check_int "members sorted by id" 2 (Frontier.size f);
  check_bool "sorted by id" true
    (List.map (fun (m : Frontier.entry) -> m.Frontier.point.Space.id)
       (Frontier.members f)
    = [ 3; 4 ])

let test_entry_json_roundtrip () =
  let e =
    {
      Frontier.point = Space.point Space.default 17;
      mu = 0.93;
      exd = 123.456;
      macs = 1044;
    }
  in
  match Frontier.entry_of_json (Frontier.entry_json e) with
  | Some e' -> check_bool "entry round-trips" true (e = e')
  | None -> Alcotest.fail "entry_of_json rejected its own encoding"

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let record id =
  {
    Checkpoint.entry =
      {
        Frontier.point = Space.point Space.default id;
        mu = 1.0 +. (0.1 *. float_of_int id);
        exd = 10.0 +. float_of_int id;
        macs = 100 + id;
      };
    synth_wall_s = 0.5;
  }

let write_checkpoint ~fingerprint file records =
  let oc = Checkpoint.append_channel ~fingerprint ~existing:false file in
  List.iter (Checkpoint.append oc) records;
  close_out oc

let test_checkpoint_roundtrip () =
  let dir = scratch_dir () in
  let file = Checkpoint.path ~dir ~fingerprint:"fp" ~shard:1 ~shards:2 in
  check_bool "missing file loads empty" true
    (Checkpoint.load ~fingerprint:"fp" file = []);
  let records = List.map record [ 3; 1; 7 ] in
  write_checkpoint ~fingerprint:"fp" file records;
  check_bool "records round-trip in order" true
    (Checkpoint.load ~fingerprint:"fp" file = records);
  (* Appending to an existing file keeps prior records. *)
  let oc = Checkpoint.append_channel ~fingerprint:"fp" ~existing:true file in
  Checkpoint.append oc (record 9);
  close_out oc;
  check_int "append extends" 4
    (List.length (Checkpoint.load ~fingerprint:"fp" file));
  rm_rf dir

let test_checkpoint_partial_tail () =
  let dir = scratch_dir () in
  let file = Checkpoint.path ~dir ~fingerprint:"fp" ~shard:1 ~shards:1 in
  write_checkpoint ~fingerprint:"fp" file (List.map record [ 0; 1 ]);
  (* A kill mid-append leaves a partial final line: tolerated. *)
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc "{\"type\":\"point\",\"id\":2,\"del";
  close_out oc;
  check_int "partial tail dropped" 2
    (List.length (Checkpoint.load ~fingerprint:"fp" file));
  rm_rf dir

let test_checkpoint_corruption () =
  let dir = scratch_dir () in
  let file = Checkpoint.path ~dir ~fingerprint:"fp" ~shard:1 ~shards:1 in
  write_checkpoint ~fingerprint:"fp" file [ record 0 ];
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc "garbage\n";
  close_out oc;
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc (Obs.Json.to_string Obs.Json.Null);
  output_char oc '\n';
  close_out oc;
  check_bool "garbage mid-file raises" true
    (match Checkpoint.load ~fingerprint:"fp" file with
    | _ -> false
    | exception Checkpoint.Mismatch _ -> true);
  rm_rf dir

let test_checkpoint_fingerprint_mismatch () =
  let dir = scratch_dir () in
  let file = Checkpoint.path ~dir ~fingerprint:"old" ~shard:1 ~shards:1 in
  write_checkpoint ~fingerprint:"old" file [ record 0 ];
  check_bool "foreign fingerprint raises" true
    (match Checkpoint.load ~fingerprint:"new" file with
    | _ -> false
    | exception Checkpoint.Mismatch _ -> true);
  let foreign = Filename.concat dir "foreign.jsonl" in
  let oc = open_out foreign in
  output_string oc "not a checkpoint\n";
  close_out oc;
  check_bool "non-checkpoint file raises" true
    (match Checkpoint.load ~fingerprint:"new" foreign with
    | _ -> false
    | exception Checkpoint.Mismatch _ -> true);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Plan, shards, merge (no synthesis needed)                           *)
(* ------------------------------------------------------------------ *)

let test_plan_validation () =
  check_bool "unknown probe app rejected" true
    (raises_invalid (fun () ->
         Run.plan ~probe:{ app = "no-such-app"; ginsts = 1.0; max_time = 1.0 }
           ()));
  check_bool "non-positive ginsts rejected" true
    (raises_invalid (fun () ->
         Run.plan ~probe:{ Run.default_probe with ginsts = 0.0 } ()));
  let p = Run.plan ~points:10 () in
  check_int "sample_size honours points" 10 (Run.sample_size p);
  check_int "points<=0 sweeps the grid" 243
    (Run.sample_size (Run.plan ~points:0 ()))

let test_plan_fingerprint () =
  let base = Run.plan () in
  let fp = Run.fingerprint base in
  check_string "stable" fp (Run.fingerprint (Run.plan ()));
  check_bool "seed changes it" true (fp <> Run.fingerprint (Run.plan ~seed:1 ()));
  check_bool "points changes it" true
    (fp <> Run.fingerprint (Run.plan ~points:10 ()));
  check_bool "space changes it" true
    (fp <> Run.fingerprint (Run.plan ~space:Space.smoke ()));
  check_bool "probe changes it" true
    (fp <> Run.fingerprint (Run.plan ~probe:Run.smoke_probe ()))

let test_shard_ids_partition () =
  let p = Run.plan ~points:50 ~seed:3 () in
  let all = Space.sample p.Run.space ~seed:3 ~count:50 in
  let shards = 3 in
  let parts =
    List.init shards (fun i ->
        Run.shard_ids p { Run.index = i + 1; shards })
  in
  check_bool "shards are disjoint and cover the sample" true
    (List.sort compare (List.concat parts) = all);
  (* Round-robin striping keeps shard loads within one point. *)
  let sizes = List.map List.length parts in
  check_bool "balanced" true
    (List.fold_left max 0 sizes - List.fold_left min max_int sizes <= 1);
  check_bool "invalid shard rejected" true
    (raises_invalid (fun () -> Run.shard_ids p { Run.index = 0; shards = 2 }))

let test_merge_pure () =
  (* Merge is pure frontier math over documents; exercise it on
     synthetic entries without any synthesis. *)
  let p = Run.plan ~points:0 () in
  let entries =
    List.map
      (fun (id, mu, exd, macs) ->
        { Frontier.point = Space.point Space.default id; mu; exd; macs })
      [
        (0, 1.0, 5.0, 3); (1, 2.0, 4.0, 2); (2, 3.0, 3.0, 1);
        (3, 2.5, 4.5, 2); (4, 1.5, 6.0, 9);
      ]
  in
  let doc es =
    Obs.Json.Obj [ ("frontier", Run.frontier_block p (frontier_of es)) ]
  in
  let whole = Run.frontier_block p (frontier_of entries) in
  let left, right =
    List.partition
      (fun (e : Frontier.entry) -> e.Frontier.point.Space.id mod 2 = 0)
      entries
  in
  let merged = Run.merge [ doc left; doc right ] in
  check_string "merge of a split equals the whole"
    (Obs.Json.to_string whole)
    (Obs.Json.to_string merged);
  check_bool "mismatched plans rejected" true
    (raises_invalid (fun () ->
         Run.merge
           [
             doc entries;
             Obs.Json.Obj
               [
                 ( "frontier",
                   Run.frontier_block (Run.plan ~seed:1 ()) (frontier_of []) );
               ];
           ]));
  check_bool "empty list rejected" true
    (raises_invalid (fun () -> Run.merge []));
  check_bool "missing frontier rejected" true
    (raises_invalid (fun () -> Run.merge [ Obs.Json.Obj [] ]))

(* ------------------------------------------------------------------ *)
(* End-to-end determinism (default designs only, so one synthesis      *)
(* serves every test below via the shared .yukta_cache/)               *)
(* ------------------------------------------------------------------ *)

(* Axis values chosen to equal the Hw_layer/Sw_layer spec defaults:
   every point reuses the default designs, so the whole section costs
   one hardware + one software synthesis cold and nothing warm. *)
let e2e_space =
  Space.make ~deltas:[| 0.4 |] ~weights:[| 1.0 |] ~bounds:[| 0.2 |]
    ~epochs:[| 0.5 |]
    ~arrangements:[| Space.Sw_over_hw; Space.Hw_over_sw; Space.Hw_only |] ()

let e2e_plan =
  Run.plan ~space:e2e_space
    ~probe:{ app = "blackscholes"; ginsts = 2.0; max_time = 20.0 } ()

let block outcome =
  Obs.Json.to_string
    (Run.frontier_block outcome.Run.plan outcome.Run.frontier)

let test_e2e_serial_parallel_byte_identical () =
  let serial = Run.run ~dir:(scratch_dir ()) e2e_plan in
  check_int "all points evaluated" 3 serial.Run.evaluated;
  check_bool "frontier non-empty" true (Frontier.size serial.Run.frontier > 0);
  let pool = Parallel.Pool.create ~jobs:4 in
  let parallel = Run.run ~pool ~dir:(scratch_dir ()) e2e_plan in
  Parallel.Pool.shutdown pool;
  check_string "-j1 and -j4 frontier blocks byte-identical" (block serial)
    (block parallel)

let test_e2e_resume_after_kill () =
  let dir = scratch_dir () in
  let first = Run.run ~dir e2e_plan in
  let file = first.Run.checkpoint in
  (* Simulate a kill: drop the last complete record and leave a partial
     line behind. *)
  let ic = open_in_bin file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let kept = List.rev (List.tl !lines) in
  let oc = open_out_bin file in
  List.iter (fun l -> output_string oc (l ^ "\n")) kept;
  output_string oc "{\"type\":\"point\",\"id\"";
  close_out oc;
  let resumed = Run.run ~dir e2e_plan in
  check_int "completed points not recomputed" 2 resumed.Run.resumed;
  check_int "only the lost point re-evaluated" 1 resumed.Run.evaluated;
  check_string "frontier unchanged by the kill" (block first) (block resumed);
  (* A third run resumes everything. *)
  let third = Run.run ~dir e2e_plan in
  check_int "nothing left to evaluate" 0 third.Run.evaluated;
  check_int "all points resumed" 3 third.Run.resumed;
  rm_rf dir

let test_e2e_sharded_merge_equals_single_shot () =
  let whole = Run.run ~dir:(scratch_dir ()) e2e_plan in
  let dir = scratch_dir () in
  let artifact shard =
    Run.artifact ~jobs:1 ~wall_s:0.0 (Run.run ~dir ~shard e2e_plan)
  in
  let docs =
    [ artifact { Run.index = 1; shards = 2 };
      artifact { Run.index = 2; shards = 2 } ]
  in
  check_string "sharded-then-merged equals single-shot" (block whole)
    (Obs.Json.to_string (Run.merge docs));
  rm_rf dir

let test_e2e_checkpoint_fingerprint_guard () =
  let dir = scratch_dir () in
  ignore (Run.run ~dir e2e_plan);
  (* Same checkpoint path shape, different probe: fingerprint differs,
     so the files never collide; forcing a collision raises. *)
  let other =
    Run.plan ~space:e2e_space
      ~probe:{ app = "blackscholes"; ginsts = 3.0; max_time = 20.0 } ()
  in
  check_bool "plans get distinct fingerprints" true
    (Run.fingerprint e2e_plan <> Run.fingerprint other);
  let from = Checkpoint.path ~dir ~fingerprint:(Run.fingerprint e2e_plan)
      ~shard:1 ~shards:1 in
  let to_ = Checkpoint.path ~dir ~fingerprint:(Run.fingerprint other)
      ~shard:1 ~shards:1 in
  Sys.rename from to_;
  check_bool "resume refuses a foreign checkpoint" true
    (match Run.run ~dir other with
    | _ -> false
    | exception Checkpoint.Mismatch _ -> true);
  rm_rf dir

let () =
  Alcotest.run "sweep"
    [
      ( "space",
        [
          Alcotest.test_case "cardinality" `Quick test_space_cardinality;
          Alcotest.test_case "validation" `Quick test_space_validation;
          Alcotest.test_case "point decode" `Quick test_point_decode;
          Alcotest.test_case "point fields round-trip" `Quick
            test_point_fields_roundtrip;
          Alcotest.test_case "sampling" `Quick test_sample;
          Alcotest.test_case "fingerprint" `Quick test_space_fingerprint;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "insert/evict/ties" `Quick test_frontier_insert;
          Alcotest.test_case "entry json round-trip" `Quick
            test_entry_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_members_mutually_non_dominated;
          QCheck_alcotest.to_alcotest prop_members_cover_input;
          QCheck_alcotest.to_alcotest prop_order_independent;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "partial tail tolerated" `Quick
            test_checkpoint_partial_tail;
          Alcotest.test_case "mid-file corruption raises" `Quick
            test_checkpoint_corruption;
          Alcotest.test_case "fingerprint mismatch raises" `Quick
            test_checkpoint_fingerprint_mismatch;
        ] );
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "fingerprint" `Quick test_plan_fingerprint;
          Alcotest.test_case "shard striping partitions" `Quick
            test_shard_ids_partition;
          Alcotest.test_case "merge is exact" `Quick test_merge_pure;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "-j1/-j4 byte-identity" `Slow
            test_e2e_serial_parallel_byte_identical;
          Alcotest.test_case "kill/resume" `Slow test_e2e_resume_after_kill;
          Alcotest.test_case "sharded merge equals single-shot" `Slow
            test_e2e_sharded_merge_equals_single_shot;
          Alcotest.test_case "foreign checkpoint refused" `Slow
            test_e2e_checkpoint_fingerprint_guard;
        ] );
    ]
