(* Tests for the domain pool and the parallel evaluation paths: result
   ordering, exception propagation (no hangs), serial/parallel parity of
   Experiment.run_suite and Fault.Campaign.run, and deterministic
   capture/replay of collector events under fan-out. *)

open Board
open Yukta

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

exception Boom of int

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_ordering () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      check_int "jobs" 4 (Parallel.Pool.jobs pool);
      let xs = List.init 100 Fun.id in
      (* Uneven work so completion order differs from input order. *)
      let f i =
        let n = ref 0 in
        for _ = 1 to (i mod 7) * 10_000 do
          incr n
        done;
        ignore !n;
        i * i
      in
      let ys = Parallel.Pool.map pool f xs in
      check_bool "input order preserved" true
        (ys = List.map (fun i -> i * i) xs);
      check_bool "empty list" true (Parallel.Pool.map pool f [] = []))

let test_pool_serial_degeneration () =
  (* jobs = 1 spawns no domains and runs in the caller. *)
  Parallel.Pool.with_pool ~jobs:1 (fun pool ->
      let d = Domain.self () in
      let ys =
        Parallel.Pool.map pool (fun i -> (i, Domain.self () = d)) [ 1; 2; 3 ]
      in
      check_bool "caller's domain" true (List.for_all snd ys);
      check_bool "values" true (List.map fst ys = [ 1; 2; 3 ]))

let test_pool_exception () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        match
          Parallel.Pool.map pool
            (fun i -> if i mod 3 = 0 then raise (Boom i) else i)
            (List.init 20 succ)
        with
        | _ -> None
        | exception Boom i -> Some i
      in
      (* Earliest failing input (3), not whichever worker lost the race. *)
      check_bool "earliest exception propagates" true (raised = Some 3);
      (* The pool survives a failed batch. *)
      let ys = Parallel.Pool.map pool succ [ 1; 2; 3 ] in
      check_bool "pool usable after exception" true (ys = [ 2; 3; 4 ]))

let test_map_reduce_streams_in_order () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 200 Fun.id in
      (* Uneven work so completion order scrambles; the fold must still
         see results in input (slot) order. *)
      let f i =
        let n = ref 0 in
        for _ = 1 to (i mod 5) * 20_000 do
          incr n
        done;
        ignore !n;
        i
      in
      let folded =
        Parallel.Pool.map_reduce pool ~map:f ~init:[]
          ~reduce:(fun acc v -> v :: acc)
          xs
      in
      check_bool "fold saw slot order" true (List.rev folded = xs);
      check_bool "empty input returns init" true
        (Parallel.Pool.map_reduce pool ~map:f ~init:[ 9 ]
           ~reduce:(fun acc v -> v :: acc)
           []
        = [ 9 ]))

let test_map_reduce_jobs1_degenerates () =
  (* jobs = 1: a straight List.fold_left in the caller's domain — map
     and reduce both run here, strictly interleaved. *)
  Parallel.Pool.with_pool ~jobs:1 (fun pool ->
      let d = Domain.self () in
      let here = ref true in
      let trace = ref [] in
      let sum =
        Parallel.Pool.map_reduce pool
          ~map:(fun i ->
            here := !here && Domain.self () = d;
            trace := ("m" ^ string_of_int i) :: !trace;
            i)
          ~init:0
          ~reduce:(fun acc v ->
            trace := ("r" ^ string_of_int v) :: !trace;
            acc + v)
          [ 1; 2; 3 ]
      in
      check_int "sum" 6 sum;
      check_bool "ran in the caller's domain" true !here;
      check_bool "map and reduce strictly interleaved" true
        (List.rev !trace = [ "m1"; "r1"; "m2"; "r2"; "m3"; "r3" ]))

let test_map_reduce_fold_exception_mid_stream () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let folded = ref 0 in
      let raised =
        match
          Parallel.Pool.map_reduce pool ~map:Fun.id ~init:()
            ~reduce:(fun () v ->
              if v = 5 then raise (Boom v) else incr folded)
            (List.init 64 Fun.id)
        with
        | () -> None
        | exception Boom v -> Some v
      in
      (* The reduce raised mid-stream, after folding exactly inputs
         0..4: the failure surfaces and nothing later was folded. *)
      check_bool "fold exception propagates" true (raised = Some 5);
      check_int "folds before the failure" 5 !folded;
      (* In-flight tasks were drained; the pool takes the next batch. *)
      let ys = Parallel.Pool.map pool succ [ 1; 2; 3 ] in
      check_bool "pool usable after fold failure" true (ys = [ 2; 3; 4 ]))

let test_map_reduce_earliest_map_exception () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        match
          Parallel.Pool.map_reduce pool
            ~map:(fun i -> if i mod 3 = 0 then raise (Boom i) else i)
            ~init:0 ~reduce:( + )
            (List.init 20 succ)
        with
        | _ -> None
        | exception Boom i -> Some i
      in
      check_bool "earliest failing input re-raises" true (raised = Some 3))

let test_map_reduce_window_bounded () =
  (* Issuance is gated on the fold cursor: with jobs = 2 the window is
     8 slots, and slot 0's successor (input 8) is issued only once the
     cursor has retrieved result 0 — so when the first reduce runs, at
     most 9 inputs can ever have started, however long the batch. *)
  Parallel.Pool.with_pool ~jobs:2 (fun pool ->
      let started = Atomic.make 0 in
      let max_seen_at_first_fold = ref (-1) in
      Parallel.Pool.map_reduce pool
        ~map:(fun i ->
          let rec bump () =
            let cur = Atomic.get started in
            let nxt = max cur (i + 1) in
            if not (Atomic.compare_and_set started cur nxt) then bump ()
          in
          bump ();
          i)
        ~init:()
        ~reduce:(fun () i ->
          if i = 0 then max_seen_at_first_fold := Atomic.get started)
        (List.init 100 Fun.id);
      check_bool "issuance gated on the fold cursor" true
        (!max_seen_at_first_fold <= 9 && !max_seen_at_first_fold >= 1))

let test_pool_validation () =
  let raises_invalid f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check_bool "jobs = 0 rejected" true
    (raises_invalid (fun () -> Parallel.Pool.create ~jobs:0));
  let pool = Parallel.Pool.create ~jobs:2 in
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool (* idempotent *);
  check_bool "map after shutdown rejected" true
    (raises_invalid (fun () -> Parallel.Pool.map pool succ [ 1 ]))

(* ------------------------------------------------------------------ *)
(* Suite parity                                                        *)
(* ------------------------------------------------------------------ *)

(* Heuristic schemes only: no SSV synthesis in the test suite. *)
let schemes () = [ Schemes.find_exn "coord"; Schemes.find_exn "decoupled" ]

let entries () =
  [
    ("bs", [ Workload.scale ~ginsts:300.0 (Workload.by_name "blackscholes") ]);
    ("mcf", [ Workload.scale ~ginsts:300.0 (Workload.by_name "mcf") ]);
  ]

let test_run_suite_parity () =
  let serial =
    Experiment.run_suite ~max_time:120.0 ~schemes:(schemes ()) (entries ())
  in
  let parallel =
    Parallel.Pool.with_pool ~jobs:4 (fun pool ->
        Experiment.run_suite ~max_time:120.0 ~pool ~schemes:(schemes ())
          (entries ()))
  in
  check_bool "identical normalized_row lists" true (serial = parallel);
  (* A 1-job pool takes the serial path and agrees too. *)
  let one =
    Parallel.Pool.with_pool ~jobs:1 (fun pool ->
        Experiment.run_suite ~max_time:120.0 ~pool ~schemes:(schemes ())
          (entries ()))
  in
  check_bool "-j 1 equals serial" true (serial = one)

let test_suite_health_identical () =
  (* The fleet-health aggregate folds per-cell accumulators in row
     order, so its JSON must be byte-identical at any job count. *)
  let rows jobs =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Experiment.run_suite ~max_time:120.0 ~pool ~schemes:(schemes ())
          (entries ()))
  in
  let doc jobs =
    Obs.Json.to_string (Experiment.suite_health_json (rows jobs))
  in
  let serial =
    Obs.Json.to_string
      (Experiment.suite_health_json
         (Experiment.run_suite ~max_time:120.0 ~schemes:(schemes ())
            (entries ())))
  in
  Alcotest.(check string) "-j4 health equals serial" serial (doc 4);
  Alcotest.(check string) "-j1 health equals serial" serial (doc 1);
  check_bool "health block is non-trivial" true
    (String.length serial > 2
    && List.for_all
         (fun (s : Schemes.info) ->
           (* Every scheme keys an aggregate. *)
           Obs.Json.member s.Schemes.name (Obs.Json.of_string serial) <> None)
         (schemes ()))

let test_campaign_parity () =
  let workloads =
    [ Workload.scale ~ginsts:300.0 (Workload.by_name "blackscholes") ]
  in
  let schedule =
    Fault.Schedule.generate ~seed:7
      (Fault.Schedule.in_guardband ~horizon:40.0 ~count:3 ())
  in
  let serial =
    Fault.Campaign.run ~max_time:120.0 ~schemes:(schemes ()) ~workloads
      schedule
  in
  let parallel =
    Parallel.Pool.with_pool ~jobs:4 (fun pool ->
        Fault.Campaign.run ~max_time:120.0 ~pool ~schemes:(schemes ())
          ~workloads schedule)
  in
  check_bool "identical campaign outcomes" true (serial = parallel)

let test_worker_exception_propagates () =
  (* A raising cell must surface, not hang the grid. *)
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        match
          Experiment.map_cells ~pool
            (fun i -> if i = 2 then raise (Boom i) else i)
            [ 1; 2; 3; 4 ]
        with
        | _ -> false
        | exception Boom 2 -> true
      in
      check_bool "cell exception propagates" true raised)

(* ------------------------------------------------------------------ *)
(* Capture / replay determinism                                        *)
(* ------------------------------------------------------------------ *)

let emit_cell i =
  Obs.Collector.event ~name:"test.cell" ~sim:(Float.of_int i)
    (fun () -> [ ("cell", Obs.Json.Int i) ]);
  i

let with_buffer_collection f =
  let v =
    Obs.Collector.with_collection (fun () ->
        let v = f () in
        (* Lines so far, before with_collection appends metric dumps. *)
        (v, Obs.Collector.drain ()))
  in
  v

let test_capture_replay_order () =
  let cells = List.init 16 Fun.id in
  let _, serial_lines =
    with_buffer_collection (fun () ->
        List.map emit_cell cells)
  in
  let _, parallel_lines =
    with_buffer_collection (fun () ->
        Parallel.Pool.with_pool ~jobs:4 (fun pool ->
            Experiment.map_cells ~pool emit_cell cells))
  in
  check_int "one line per cell" (List.length cells)
    (List.length parallel_lines);
  check_bool "trace order identical to serial" true
    (serial_lines = parallel_lines)

let test_capture_nests () =
  let (v, inner), outer = Obs.Collector.capture (fun () ->
      Obs.Collector.capture (fun () ->
          Obs.Collector.replay [ "a"; "b" ];
          42))
  in
  check_int "value" 42 v;
  check_bool "inner capture got the replayed lines" true
    (inner = [ "a"; "b" ]);
  check_bool "outer capture empty" true (outer = [])

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "serial degeneration" `Quick
            test_pool_serial_degeneration;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "map_reduce streams in order" `Quick
            test_map_reduce_streams_in_order;
          Alcotest.test_case "map_reduce jobs=1 degenerates" `Quick
            test_map_reduce_jobs1_degenerates;
          Alcotest.test_case "map_reduce fold exception mid-stream" `Quick
            test_map_reduce_fold_exception_mid_stream;
          Alcotest.test_case "map_reduce earliest map exception" `Quick
            test_map_reduce_earliest_map_exception;
          Alcotest.test_case "map_reduce window bounded" `Quick
            test_map_reduce_window_bounded;
          Alcotest.test_case "validation" `Quick test_pool_validation;
        ] );
      ( "suite",
        [
          Alcotest.test_case "run_suite -j1/-j4 parity" `Quick
            test_run_suite_parity;
          Alcotest.test_case "health aggregate -j1/-j4 byte-identity" `Quick
            test_suite_health_identical;
          Alcotest.test_case "campaign parity" `Quick test_campaign_parity;
          Alcotest.test_case "worker exception propagates" `Quick
            test_worker_exception_propagates;
        ] );
      ( "capture",
        [
          Alcotest.test_case "replay order deterministic" `Quick
            test_capture_replay_order;
          Alcotest.test_case "capture nests" `Quick test_capture_nests;
        ] );
    ]
