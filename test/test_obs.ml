(* Tests for the observability stack (lib/obs): the JSON codec, metric
   math, collector semantics, and the runtime instrumentation contract —
   collection enabled emits well-formed per-epoch events, disabled emits
   nothing and allocates nothing in the guard. *)

open Yukta

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Json: encoder / parser                                              *)
(* ------------------------------------------------------------------ *)

let test_json_basic () =
  let open Obs.Json in
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "bool" "true" (to_string (Bool true));
  Alcotest.(check string) "int" "42" (to_string (Int 42));
  Alcotest.(check string)
    "obj" {|{"a":1,"b":[2.5,"x"]}|}
    (to_string (Obj [ ("a", Int 1); ("b", List [ Float 2.5; String "x" ]) ]));
  (* Floats always carry a decimal point or exponent so they parse back
     as Float, not Int. *)
  (match of_string (to_string (Float 3.0)) with
  | Float f -> check_float "float-ness survives" 3.0 f
  | j -> Alcotest.failf "expected Float, got %s" (to_string j));
  (* Non-finite floats have no JSON representation. *)
  Alcotest.(check string) "nan" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "inf" "null" (to_string (Float Float.infinity))

let test_json_escaping () =
  let open Obs.Json in
  let s = "quote\" backslash\\ newline\n tab\t nul\x00 unit\x1f" in
  (match of_string (to_string (String s)) with
  | String s' -> Alcotest.(check string) "escape round-trip" s s'
  | _ -> Alcotest.fail "expected String");
  (* \uXXXX escapes decode to UTF-8, including surrogate pairs. *)
  (match of_string {|"é😀"|} with
  | String s -> Alcotest.(check string) "unicode escapes" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected String");
  match of_string "1 2" with
  | exception Parse_error _ -> ()
  | j -> Alcotest.failf "trailing garbage accepted: %s" (to_string j)

let test_json_accessors () =
  let open Obs.Json in
  let j = of_string {|{"a":{"b":3},"c":[1,2],"s":"x","f":1.5}|} in
  Alcotest.(check (option int))
    "member/int"
    (Some 3)
    (Option.bind (member "a" j) (member "b") |> fun o ->
     Option.bind o to_int_opt);
  Alcotest.(check bool)
    "int widens to float" true
    (Option.bind (member "a" j) (member "b")
     |> fun o -> Option.bind o to_float_opt = Some 3.0);
  Alcotest.(check (option string))
    "member/string" (Some "x")
    (Option.bind (member "s" j) to_string_opt);
  Alcotest.(check bool)
    "list" true
    (match Option.bind (member "c" j) to_list_opt with
    | Some [ Int 1; Int 2 ] -> true
    | _ -> false);
  Alcotest.(check bool) "missing member" true (member "zz" j = None)

(* Property: any string round-trips through encode/parse, whatever
   control characters or high bytes it contains. *)
let json_string_roundtrip =
  QCheck.Test.make ~name:"json string encode/parse round-trip" ~count:500
    QCheck.(string_gen (Gen.char_range '\x00' '\xff'))
    (fun s ->
      match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.String s)) with
      | Obs.Json.String s' -> String.equal s s'
      | _ -> false)

(* Property: int round-trip, including min_int/max_int neighborhoods. *)
let json_int_roundtrip =
  QCheck.Test.make ~name:"json int round-trip" ~count:500
    QCheck.(
      oneof
        [ int; int_range (max_int - 100) max_int; int_range min_int (min_int + 100) ])
    (fun i ->
      match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Int i)) with
      | Obs.Json.Int i' -> i = i'
      | _ -> false)

(* Property: finite floats survive encode/parse exactly (shortest
   round-trip representation). *)
let json_float_roundtrip =
  QCheck.Test.make ~name:"json float round-trip" ~count:500
    QCheck.(map (fun f -> if Float.is_finite f then f else 0.0) float)
    (fun f ->
      match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
      | Obs.Json.Float f' -> Float.equal f f'
      | Obs.Json.Int i -> Float.equal f (Float.of_int i)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  Obs.Metrics.reset_all ();
  let c = Obs.Metrics.counter "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Metrics.count c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  Alcotest.(check int) "incr" 42 (Obs.Metrics.count c);
  (* Same name resolves to the same cell. *)
  Alcotest.(check int) "shared by name" 42
    (Obs.Metrics.count (Obs.Metrics.counter "test.counter"));
  Obs.Metrics.reset_all ();
  Alcotest.(check int) "reset zeroes, instance stays valid" 0
    (Obs.Metrics.count c);
  Obs.Metrics.incr c;
  Alcotest.(check int) "usable after reset" 1 (Obs.Metrics.count c)

let test_gauges () =
  Obs.Metrics.reset_all ();
  let g = Obs.Metrics.gauge "test.gauge" in
  Alcotest.(check bool) "unset is nan" true (Float.is_nan (Obs.Metrics.value g));
  Obs.Metrics.set g 2.5;
  check_float "set/value" 2.5 (Obs.Metrics.value g)

let test_histogram_percentiles () =
  Obs.Metrics.reset_all ();
  (* Unit-width buckets 1..100: percentile interpolation is accurate to
     within one bucket. *)
  let buckets = Array.init 100 (fun i -> Float.of_int (i + 1)) in
  let h = Obs.Metrics.histogram ~buckets "test.hist" in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Obs.Metrics.percentile h 0.5));
  for v = 1 to 100 do
    Obs.Metrics.observe h (Float.of_int v)
  done;
  let s = Obs.Metrics.summarize h in
  Alcotest.(check int) "count" 100 s.Obs.Metrics.count;
  check_float "total" 5050.0 s.Obs.Metrics.total;
  check_float "mean" 50.5 s.Obs.Metrics.mean;
  check_float "min" 1.0 s.Obs.Metrics.min_v;
  check_float "max" 100.0 s.Obs.Metrics.max_v;
  let near q expect =
    let p = Obs.Metrics.percentile h q in
    if Float.abs (p -. expect) > 1.5 then
      Alcotest.failf "p%.0f = %.3f, expected ~%.1f" (100.0 *. q) p expect
  in
  near 0.5 50.0;
  near 0.9 90.0;
  near 0.99 99.0;
  check_float "p0 clamps to min" 1.0 (Obs.Metrics.percentile h 0.0);
  check_float "p100 clamps to max" 100.0 (Obs.Metrics.percentile h 1.0)

let test_histogram_single_and_overflow () =
  Obs.Metrics.reset_all ();
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 2.0 |] "test.hist2" in
  Obs.Metrics.observe h 1.5;
  check_float "single value p50" 1.5 (Obs.Metrics.percentile h 0.5);
  check_float "single value p99" 1.5 (Obs.Metrics.percentile h 0.99);
  (* A value above the last bound lands in the overflow bucket; the
     summary still reports the true max. *)
  Obs.Metrics.observe h 50.0;
  let s = Obs.Metrics.summarize h in
  check_float "overflow max" 50.0 s.Obs.Metrics.max_v;
  check_float "overflow p100" 50.0 (Obs.Metrics.percentile h 1.0)

let test_metrics_dump () =
  Obs.Metrics.reset_all ();
  let c = Obs.Metrics.counter "dump.counter" in
  let _empty = Obs.Metrics.counter "dump.zero" in
  Obs.Metrics.incr ~by:7 c;
  let records = Obs.Metrics.dump () in
  let names =
    List.filter_map
      (fun j -> Option.bind (Obs.Json.member "name" j) Obs.Json.to_string_opt)
      records
  in
  Alcotest.(check bool) "non-zero counter dumped" true
    (List.mem "dump.counter" names);
  Alcotest.(check bool) "zero counter skipped" false
    (List.mem "dump.zero" names)

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

let drain_json () = List.map Obs.Json.of_string (Obs.Collector.drain ())

let field name j = Obs.Json.member name j

let sfield name j = Option.bind (field name j) Obs.Json.to_string_opt

let test_disabled_is_silent () =
  Obs.Collector.disable ();
  Obs.Collector.buffer_sink ();
  Obs.Collector.event ~name:"x" ~sim:1.0 (fun () -> []);
  Obs.Collector.record_span ~name:"y" ~dur_s:0.1 [];
  Alcotest.(check int) "nothing emitted" 0 (List.length (Obs.Collector.drain ()))

let test_span_nesting () =
  Obs.Collector.buffer_sink ();
  Obs.Collector.enable ();
  let r =
    Obs.Collector.span ~name:"outer" (fun () ->
        Obs.Collector.span ~name:"inner" (fun () -> 7) + 1)
  in
  Obs.Collector.disable ();
  Alcotest.(check int) "span returns f's value" 8 r;
  match drain_json () with
  | [ inner; outer ] ->
    (* Inner completes (and is emitted) first. *)
    Alcotest.(check (option string)) "inner name" (Some "inner")
      (sfield "name" inner);
    Alcotest.(check (option string)) "outer name" (Some "outer")
      (sfield "name" outer);
    Alcotest.(check (option int)) "inner depth" (Some 1)
      (Option.bind (field "depth" inner) Obs.Json.to_int_opt);
    Alcotest.(check (option int)) "outer depth" (Some 0)
      (Option.bind (field "depth" outer) Obs.Json.to_int_opt);
    let dur j =
      match Option.bind (field "dur_s" j) Obs.Json.to_float_opt with
      | Some d -> d
      | None -> Alcotest.fail "span without dur_s"
    in
    Alcotest.(check bool) "durations non-negative" true
      (dur inner >= 0.0 && dur outer >= 0.0);
    Alcotest.(check bool) "outer covers inner" true (dur outer >= dur inner)
  | lines -> Alcotest.failf "expected 2 spans, got %d lines" (List.length lines)

let test_span_exception () =
  Obs.Collector.buffer_sink ();
  Obs.Collector.enable ();
  (try
     Obs.Collector.span ~name:"boom" (fun () -> failwith "expected") |> ignore
   with Failure _ -> ());
  Obs.Collector.disable ();
  match drain_json () with
  | [ j ] ->
    Alcotest.(check bool) "raised field present" true
      (Option.bind (field "fields" j) (Obs.Json.member "raised") <> None)
  | _ -> Alcotest.fail "expected one span record"

let test_with_collection () =
  let v =
    Obs.Collector.with_collection (fun () ->
        Obs.Collector.event ~name:"probe" ~sim:2.0 (fun () ->
            [ ("k", Obs.Json.Int 1) ]);
        Obs.Metrics.incr (Obs.Metrics.counter "probe.counter");
        "done")
  in
  Alcotest.(check string) "returns f's value" "done" v;
  Alcotest.(check bool) "disabled after" false (Obs.Collector.enabled ());
  let lines = drain_json () in
  Alcotest.(check bool) "event + metric dump captured" true
    (List.length lines >= 2);
  let kinds = List.filter_map (sfield "type") lines in
  Alcotest.(check bool) "has event" true (List.mem "event" kinds);
  Alcotest.(check bool) "has counter dump" true (List.mem "counter" kinds)

(* ------------------------------------------------------------------ *)
(* Stats: the mergeable core                                           *)
(* ------------------------------------------------------------------ *)

let welford_of_list xs =
  let w = Obs.Stats.Welford.create () in
  List.iter (Obs.Stats.Welford.add w) xs;
  w

(* Property: merging the Welford summaries of a split stream agrees
   with the single-stream summary. Counts and extrema are exact; mean
   and variance agree up to floating-point reassociation, so the
   tolerance scales with the magnitude of the data. *)
let welford_merge_matches_single =
  QCheck.Test.make ~name:"welford merge of split streams = single stream"
    ~count:300
    QCheck.(pair (list_of_size Gen.(0 -- 200) (float_range (-1e6) 1e6))
              (list_of_size Gen.(0 -- 200) (float_range (-1e6) 1e6)))
    (fun (xs, ys) ->
      let whole = welford_of_list (xs @ ys) in
      let merged = welford_of_list xs in
      Obs.Stats.Welford.merge_into ~into:merged (welford_of_list ys);
      let open Obs.Stats.Welford in
      let close a b scale =
        (Float.is_nan a && Float.is_nan b)
        || Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 scale
      in
      count merged = count whole
      && (count whole = 0
          || (min_v merged = min_v whole && max_v merged = max_v whole))
      && close (mean merged) (mean whole)
           (Float.max (Float.abs (mean whole)) 1.0)
      && close (variance merged) (variance whole)
           (Float.max (variance whole) 1.0))

(* Property: histogram merges are exact — integer counts add, so the
   merged histogram is bit-for-bit the single-stream histogram. *)
let hist_merge_exact =
  let bounds = [| -0.5; 0.0; 0.25; 0.5; 1.0 |] in
  QCheck.Test.make ~name:"hist merge of split streams is exact" ~count:300
    QCheck.(pair (list_of_size Gen.(0 -- 200) (float_range (-2.0) 2.0))
              (list_of_size Gen.(0 -- 200) (float_range (-2.0) 2.0)))
    (fun (xs, ys) ->
      let hist_of l =
        let h = Obs.Stats.Hist.create ~buckets:bounds in
        List.iter (Obs.Stats.Hist.observe h) l;
        h
      in
      let whole = hist_of (xs @ ys) in
      let merged = hist_of xs in
      Obs.Stats.Hist.merge_into ~into:merged (hist_of ys);
      Obs.Stats.Hist.count merged = Obs.Stats.Hist.count whole
      && Obs.Stats.Hist.counts merged = Obs.Stats.Hist.counts whole)

let test_welford_basics () =
  let w = welford_of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check int) "count" 8 (Obs.Stats.Welford.count w);
  check_float "mean" 5.0 (Obs.Stats.Welford.mean w);
  check_float "population variance" 4.0 (Obs.Stats.Welford.variance w);
  check_float "std" 2.0 (Obs.Stats.Welford.std w);
  check_float "min" 2.0 (Obs.Stats.Welford.min_v w);
  check_float "max" 9.0 (Obs.Stats.Welford.max_v w);
  (* Merging an empty accumulator either way is the identity. *)
  let empty = Obs.Stats.Welford.create () in
  Obs.Stats.Welford.merge_into ~into:w empty;
  check_float "merge empty src is identity" 5.0 (Obs.Stats.Welford.mean w);
  let into = Obs.Stats.Welford.create () in
  Obs.Stats.Welford.merge_into ~into w;
  check_float "merge into empty adopts" 5.0 (Obs.Stats.Welford.mean into);
  (* The empty accumulator serializes as zeros, not nan. *)
  (match Obs.Stats.Welford.to_json (Obs.Stats.Welford.create ()) with
  | j ->
    Alcotest.(check (option int)) "empty count json" (Some 0)
      (Option.bind (Obs.Json.member "count" j) Obs.Json.to_int_opt);
    Alcotest.(check bool) "empty mean json is 0" true
      (Option.bind (Obs.Json.member "mean" j) Obs.Json.to_float_opt
       = Some 0.0))

let test_hist_basics () =
  let h = Obs.Stats.Hist.create ~buckets:[| 1.0; 2.0 |] in
  List.iter (Obs.Stats.Hist.observe h) [ 0.5; 1.0; 1.5; 2.0; 99.0 ];
  (* Bounds are inclusive upper bounds; 99 lands in the overflow slot. *)
  Alcotest.(check (array int)) "slotting" [| 2; 2; 1 |]
    (Obs.Stats.Hist.counts h);
  Alcotest.(check int) "count" 5 (Obs.Stats.Hist.count h);
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "empty bounds rejected" true
    (raises (fun () -> Obs.Stats.Hist.create ~buckets:[||]));
  Alcotest.(check bool) "non-increasing bounds rejected" true
    (raises (fun () -> Obs.Stats.Hist.create ~buckets:[| 1.0; 1.0 |]));
  Alcotest.(check bool) "layout mismatch rejected" true
    (raises (fun () ->
         Obs.Stats.Hist.merge_into ~into:h
           (Obs.Stats.Hist.create ~buckets:[| 1.0; 3.0 |])))

let test_metrics_dump_sorted () =
  Obs.Metrics.reset_all ();
  (* Register deliberately out of order; dump must come back sorted. *)
  List.iter
    (fun n -> Obs.Metrics.incr (Obs.Metrics.counter n))
    [ "zz.last"; "aa.first"; "mm.middle" ];
  Obs.Metrics.set (Obs.Metrics.gauge "bb.gauge") 1.0;
  let names =
    List.filter_map
      (fun j -> Option.bind (Obs.Json.member "name" j) Obs.Json.to_string_opt)
      (Obs.Metrics.dump ())
  in
  Alcotest.(check (list string)) "dump sorted by name"
    [ "aa.first"; "bb.gauge"; "mm.middle"; "zz.last" ]
    names

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

let note_n n =
  for i = 1 to n do
    Obs.Recorder.note (Obs.Json.Int i)
  done

let test_recorder_ring () =
  Obs.Recorder.clear ();
  Obs.Recorder.enable ~capacity:4 ();
  Alcotest.(check int) "capacity" 4 (Obs.Recorder.capacity ());
  note_n 10;
  (* Only the last [capacity] events survive, oldest first. *)
  Alcotest.(check bool) "window keeps the newest, oldest first" true
    (Obs.Recorder.window ()
    = [ Obs.Json.Int 7; Obs.Json.Int 8; Obs.Json.Int 9; Obs.Json.Int 10 ]);
  Obs.Recorder.disable ();
  Obs.Recorder.clear ();
  (* Disabled notes are dropped. *)
  note_n 3;
  Alcotest.(check bool) "disabled note is a no-op" true
    (Obs.Recorder.window () = []);
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "capacity < 1 rejected" true
    (raises (fun () -> Obs.Recorder.enable ~capacity:0 ()))

let test_recorder_dump () =
  Obs.Recorder.clear ();
  Obs.Recorder.enable ~capacity:8 ();
  note_n 3;
  Obs.Recorder.dump ~reason:"test.trigger" ~sim:1.25;
  Alcotest.(check int) "one dump taken" 1 (Obs.Recorder.dump_count ());
  (match Obs.Recorder.dumps () with
  | [ d ] ->
    Alcotest.(check (option string)) "record name" (Some "recorder.dump")
      (Option.bind (Obs.Json.member "name" d) Obs.Json.to_string_opt);
    let fields = Obs.Json.member "fields" d in
    Alcotest.(check (option string)) "reason" (Some "test.trigger")
      (Option.bind (Option.bind fields (Obs.Json.member "reason"))
         Obs.Json.to_string_opt);
    Alcotest.(check (option int)) "event count" (Some 3)
      (Option.bind (Option.bind fields (Obs.Json.member "events"))
         Obs.Json.to_int_opt);
    Alcotest.(check bool) "window carried verbatim" true
      (Option.bind (Option.bind fields (Obs.Json.member "window"))
         Obs.Json.to_list_opt
      = Some [ Obs.Json.Int 1; Obs.Json.Int 2; Obs.Json.Int 3 ])
  | ds -> Alcotest.failf "expected 1 retained dump, got %d" (List.length ds));
  (* The ring survives a dump: nearby triggers see overlapping windows. *)
  Obs.Recorder.dump ~reason:"again" ~sim:1.5;
  Alcotest.(check int) "second dump" 2 (Obs.Recorder.dump_count ());
  Obs.Recorder.disable ();
  Obs.Recorder.clear ();
  Alcotest.(check int) "clear resets the dump count" 0
    (Obs.Recorder.dump_count ())

let test_recorder_feeds_from_collector () =
  (* Collector.event must feed the ring when only the recorder is on,
     and dump records must reach the collector sink when tracing is on. *)
  Obs.Collector.disable ();
  Obs.Collector.buffer_sink ();
  Obs.Recorder.clear ();
  Obs.Recorder.enable ~capacity:4 ();
  Obs.Collector.event ~name:"quiet" ~sim:0.5 (fun () -> []);
  Alcotest.(check int) "collector disabled: nothing traced" 0
    (List.length (Obs.Collector.drain ()));
  Alcotest.(check int) "...but the ring saw the event" 1
    (List.length (Obs.Recorder.window ()));
  Obs.Collector.enable ();
  Obs.Recorder.dump ~reason:"traced" ~sim:0.75;
  Obs.Collector.disable ();
  let lines = drain_json () in
  Alcotest.(check bool) "dump emitted through the collector sink" true
    (List.exists (fun j -> sfield "name" j = Some "recorder.dump") lines);
  Obs.Recorder.disable ();
  Obs.Recorder.clear ()

let test_recorder_trigger_registry () =
  Obs.Recorder.clear ();
  Obs.Recorder.enable ~capacity:8 ();
  (* Registration is idempotent and order-preserving. *)
  Obs.Recorder.register_trigger "testreg.swap";
  Obs.Recorder.register_trigger ~suffix_field:"cause" "testreg.trip";
  Obs.Recorder.register_trigger "testreg.swap";
  let mine =
    List.filter
      (fun (p, _) -> String.starts_with ~prefix:"testreg." p)
      (Obs.Recorder.triggers ())
  in
  Alcotest.(check bool) "registered once each" true
    (mine = [ ("testreg.swap", None); ("testreg.trip", Some "cause") ]);
  (* A matching event prefix dumps; a non-matching one only notes. *)
  Obs.Recorder.note_event ~name:"testreg.other" ~sim:1.0 (Obs.Json.Int 1);
  Alcotest.(check int) "no dump on other names" 0
    (Obs.Recorder.dump_count ());
  Obs.Recorder.note_event ~name:"testreg.swap" ~sim:1.5 (Obs.Json.Int 2);
  Alcotest.(check int) "prefix match dumps" 1 (Obs.Recorder.dump_count ());
  (* The suffix field decorates the reason. *)
  Obs.Recorder.note_event ~name:"testreg.trip" ~sim:2.0
    (Obs.Json.Obj
       [ ("fields", Obs.Json.Obj [ ("cause", Obs.Json.String "thermal") ]) ]);
  Alcotest.(check int) "suffix trigger dumps" 2 (Obs.Recorder.dump_count ());
  (match List.rev (Obs.Recorder.dumps ()) with
  | last :: _ ->
    let reason =
      Option.bind
        (Option.bind (Obs.Json.member "fields" last)
           (Obs.Json.member "reason"))
        Obs.Json.to_string_opt
    in
    Alcotest.(check (option string)) "reason carries the suffix"
      (Some "testreg.trip:thermal") reason
  | [] -> Alcotest.fail "expected dumps");
  (* The triggering event sits in the dumped window, last. *)
  Alcotest.(check bool) "raise on empty prefix" true
    (match Obs.Recorder.register_trigger "" with
    | exception Invalid_argument _ -> true
    | () -> false);
  Obs.Recorder.disable ();
  Obs.Recorder.clear ()

(* ------------------------------------------------------------------ *)
(* Health                                                              *)
(* ------------------------------------------------------------------ *)

let populate_health ~errs () =
  let h = Obs.Health.create () in
  let l = Obs.Health.layer h "sw" in
  List.iter
    (fun e -> Obs.Health.note_decision l ~err:e ~saturated:(e > 0.5))
    errs;
  let c = Obs.Health.channel h ~name:"power" ~limit:3.3 ~trip:4.2 in
  List.iter
    (fun e -> Obs.Health.observe_channel c ~value:(3.0 +. e) ~dt:0.5)
    errs;
  List.iter (fun _ -> Obs.Health.note_epoch h ~dt:0.5) errs;
  h

let test_health_accumulates () =
  let h = populate_health ~errs:[ 0.1; 0.6; 0.2 ] () in
  let j = Obs.Health.to_json h in
  let layer0 =
    Option.bind (Obs.Json.member "layers" j) Obs.Json.to_list_opt
    |> Option.map List.hd
  in
  Alcotest.(check (option int)) "decisions" (Some 3)
    (Option.bind (Option.bind layer0 (Obs.Json.member "decisions"))
       Obs.Json.to_int_opt);
  (* One of three decisions saturated. *)
  (match
     Option.bind (Option.bind layer0 (Obs.Json.member "saturation_duty"))
       Obs.Json.to_float_opt
   with
  | Some d -> check_float "saturation duty" (1.0 /. 3.0) d
  | None -> Alcotest.fail "saturation_duty missing");
  (* value 3.6 breaches the 3.3 limit: fraction (3.6-3.3)/0.9 = 1/3,
     and 0.5 s accrues to time-in-violation. *)
  let chan0 =
    Option.bind (Obs.Json.member "channels" j) Obs.Json.to_list_opt
    |> Option.map List.hd
  in
  (match
     Option.bind
       (Option.bind chan0 (Obs.Json.member "worst_guardband_fraction"))
       Obs.Json.to_float_opt
   with
  | Some w -> Alcotest.(check (float 1e-9)) "worst fraction" (1.0 /. 3.0) w
  | None -> Alcotest.fail "worst_guardband_fraction missing");
  (match
     Option.bind (Option.bind chan0 (Obs.Json.member "violation_s"))
       Obs.Json.to_float_opt
   with
  | Some v -> check_float "violation time" 0.5 v
  | None -> Alcotest.fail "violation_s missing");
  (* The render path covers every row type without raising. *)
  Alcotest.(check bool) "render mentions the layer" true
    (let s = Obs.Health.render h in
     String.length s > 0)

let test_health_merge () =
  let a = populate_health ~errs:[ 0.1; 0.6 ] () in
  let b = populate_health ~errs:[ 0.2; 0.3; 0.7 ] () in
  let whole = populate_health ~errs:[ 0.1; 0.6; 0.2; 0.3; 0.7 ] () in
  (* A fresh accumulator adopts the first source's layout... *)
  let merged = Obs.Health.create () in
  Obs.Health.merge_into ~into:merged a;
  Obs.Health.merge_into ~into:merged b;
  Alcotest.(check int) "epochs add" (Obs.Health.epochs whole)
    (Obs.Health.epochs merged);
  check_float "sim adds" (Obs.Health.sim_s whole) (Obs.Health.sim_s merged);
  (* Counts, extrema and histograms are exact across the merge; only
     mean/EWMA are subject to reassociation/approximation. *)
  let j = Obs.Health.to_json merged and jw = Obs.Health.to_json whole in
  let hist_counts j =
    Option.bind (Obs.Json.member "channels" j) Obs.Json.to_list_opt
    |> Option.map List.hd
    |> Fun.flip Option.bind (Obs.Json.member "fraction_hist")
    |> Fun.flip Option.bind (Obs.Json.member "counts")
  in
  Alcotest.(check bool) "merged histogram exact" true
    (hist_counts j = hist_counts jw && hist_counts j <> None);
  (* ...and mismatched layouts are rejected once populated. *)
  let other = Obs.Health.create () in
  ignore (Obs.Health.layer other "different");
  Alcotest.(check bool) "layout mismatch rejected" true
    (match Obs.Health.merge_into ~into:other a with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Runtime instrumentation contract                                    *)
(* ------------------------------------------------------------------ *)

let short_run () =
  Runtime.run ~max_time:5.0 Runtime.Coordinated_heuristic
    [ Board.Workload.by_name "blackscholes" ]

let test_runtime_events_enabled () =
  let r = Obs.Collector.with_collection short_run in
  Alcotest.(check bool) "run progressed" true
    (r.Runtime.metrics.Board.Xu3.execution_time > 0.0);
  let lines = drain_json () in
  let epochs =
    List.filter (fun j -> sfield "name" j = Some "runtime.epoch") lines
  in
  (* 5 s of simulated time at 0.5 s epochs: one record per epoch, stamped
     at the *end* of its epoch (0.5, 1.0, ...). The board clock
     accumulates sub-epoch steps, so rounding may admit one extra epoch
     before the [time < max_time] check trips. *)
  let n = List.length epochs in
  if n < 10 || n > 11 then
    Alcotest.failf "expected 10-11 epoch events, got %d" n;
  let sim j =
    match Option.bind (field "sim_s" j) Obs.Json.to_float_opt with
    | Some t -> t
    | None -> Alcotest.fail "epoch event without sim_s"
  in
  List.iteri
    (fun i j ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "epoch %d timestamp" i)
        (0.5 *. Float.of_int (i + 1))
        (sim j);
      let fields =
        match field "fields" j with
        | Some f -> f
        | None -> Alcotest.fail "epoch event without fields"
      in
      List.iter
        (fun key ->
          match Option.bind (Obs.Json.member key fields) Obs.Json.to_float_opt with
          | Some v ->
            if not (Float.is_finite v) then
              Alcotest.failf "epoch field %s not finite" key
          | None -> Alcotest.failf "epoch event missing field %s" key)
        [ "power_big"; "power_little"; "bips"; "temperature"; "freq_big" ])
    epochs;
  (* The run-complete record carries the final metrics. *)
  Alcotest.(check bool) "run_complete emitted" true
    (List.exists (fun j -> sfield "name" j = Some "runtime.run_complete") lines)

let test_runtime_silent_disabled () =
  Obs.Collector.disable ();
  Obs.Collector.buffer_sink ();
  ignore (short_run ());
  Alcotest.(check int) "disabled run emits nothing" 0
    (List.length (Obs.Collector.drain ()))

(* The disabled guard is one atomic load: a tight loop over it must not
   allocate (no minor-heap growth beyond noise). This is the cost every
   instrumentation site pays when collection is off. *)
let test_disabled_guard_no_alloc () =
  Obs.Collector.disable ();
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    if Obs.Collector.enabled () then
      failwith "collector unexpectedly enabled"
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "disabled guard allocated %.0f words over 100k checks" delta

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "basic encoding" `Quick test_json_basic;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ]
        @ qsuite
            [ json_string_roundtrip; json_int_roundtrip; json_float_roundtrip ]
      );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "histogram single/overflow" `Quick
            test_histogram_single_and_overflow;
          Alcotest.test_case "dump" `Quick test_metrics_dump;
          Alcotest.test_case "dump sorted by name" `Quick
            test_metrics_dump_sorted;
        ] );
      ( "stats",
        [
          Alcotest.test_case "welford basics" `Quick test_welford_basics;
          Alcotest.test_case "hist basics" `Quick test_hist_basics;
        ]
        @ qsuite [ welford_merge_matches_single; hist_merge_exact ] );
      ( "recorder",
        [
          Alcotest.test_case "ring semantics" `Quick test_recorder_ring;
          Alcotest.test_case "dump record" `Quick test_recorder_dump;
          Alcotest.test_case "collector feed and emit" `Quick
            test_recorder_feeds_from_collector;
          Alcotest.test_case "trigger registry" `Quick
            test_recorder_trigger_registry;
        ] );
      ( "health",
        [
          Alcotest.test_case "accumulates" `Quick test_health_accumulates;
          Alcotest.test_case "merge" `Quick test_health_merge;
        ] );
      ( "collector",
        [
          Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span exception" `Quick test_span_exception;
          Alcotest.test_case "with_collection" `Quick test_with_collection;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "enabled run emits epoch events" `Quick
            test_runtime_events_enabled;
          Alcotest.test_case "disabled run is silent" `Quick
            test_runtime_silent_disabled;
          Alcotest.test_case "disabled guard allocates nothing" `Quick
            test_disabled_guard_no_alloc;
        ] );
    ]
