(* Tests for the system-identification library: excitation design, ARX
   least squares, Box-Jenkins refinement, realization and validation. *)

open Linalg
open Sysid

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-5))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A known stable 2-output 2-input ARX system used as ground truth. *)
let true_a =
  [|
    Mat.of_lists [ [ 0.5; 0.1 ]; [ 0.0; 0.4 ] ];
    Mat.of_lists [ [ -0.1; 0.0 ]; [ 0.05; -0.2 ] ];
  |]

let true_b =
  [|
    Mat.of_lists [ [ 1.0; 0.0 ]; [ 0.2; 0.5 ] ];
    Mat.of_lists [ [ 0.3; -0.1 ]; [ 0.0; 0.4 ] ];
  |]

let true_model =
  { Arx.na = 2; nb = 2; ny = 2; nu = 2; a = true_a; b = true_b }

let training_data ?(noise = 0.0) ?(length = 400) () =
  let exc = { Excitation.seed = 3; hold = 2 } in
  let u =
    Excitation.channels exc
      ~levels:[| [| -1.0; 0.0; 1.0 |]; [| -1.0; 1.0 |] |]
      ~length
  in
  let y0 = [| Vec.create 2; Vec.create 2 |] in
  let clean = Arx.simulate true_model ~u ~y0 in
  let st = Random.State.make [| 11 |] in
  let y =
    Array.map
      (fun v ->
        Vec.map (fun x -> x +. (noise *. (Random.State.float st 2.0 -. 1.0))) v)
      clean
  in
  (u, y)

(* ------------------------------------------------------------------ *)
(* Excitation                                                          *)
(* ------------------------------------------------------------------ *)

let test_excitation_levels () =
  let exc = { Excitation.seed = 5; hold = 3 } in
  let s = Excitation.multilevel exc ~levels:[| 1.0; 2.0; 3.0 |] ~length:100 in
  check_int "length" 100 (Vec.dim s);
  check_bool "values from levels" true
    (Array.for_all (fun x -> x = 1.0 || x = 2.0 || x = 3.0) s)

let test_excitation_hold () =
  let exc = { Excitation.seed = 5; hold = 4 } in
  let s = Excitation.multilevel exc ~levels:[| 0.0; 1.0 |] ~length:64 in
  (* Within each hold window the value must be constant. *)
  let ok = ref true in
  for i = 0 to 63 do
    if i mod 4 <> 0 && s.(i) <> s.(i - 1) then ok := false
  done;
  check_bool "held" true !ok

let test_excitation_deterministic () =
  let exc = { Excitation.seed = 9; hold = 2 } in
  let s1 = Excitation.prbs exc ~low:0.0 ~high:1.0 ~length:50 in
  let s2 = Excitation.prbs exc ~low:0.0 ~high:1.0 ~length:50 in
  check_bool "same seed same sequence" true (Vec.approx_equal s1 s2)

let test_excitation_channels () =
  let exc = Excitation.default in
  let cs =
    Excitation.channels exc ~levels:[| [| 0.0; 1.0 |]; [| 5.0; 6.0; 7.0 |] |]
      ~length:30
  in
  check_int "time-major" 30 (Array.length cs);
  check_int "two channels" 2 (Vec.dim cs.(0));
  check_bool "channel ranges" true
    (Array.for_all (fun v -> v.(0) <= 1.0 && v.(1) >= 5.0) cs)

(* ------------------------------------------------------------------ *)
(* Arx                                                                 *)
(* ------------------------------------------------------------------ *)

let test_arx_exact_recovery () =
  let u, y = training_data () in
  let m = Arx.fit ~na:2 ~nb:2 ~u ~y in
  (* Noise-free data: coefficients recovered to working precision. *)
  Array.iteri
    (fun i ai ->
      check_bool
        (Printf.sprintf "A%d recovered" (i + 1))
        true
        (Mat.approx_equal ~tol:1e-4 ai m.Arx.a.(i)))
    true_a;
  Array.iteri
    (fun j bj ->
      check_bool
        (Printf.sprintf "B%d recovered" j)
        true
        (Mat.approx_equal ~tol:1e-4 bj m.Arx.b.(j)))
    true_b

let test_arx_prediction_on_training () =
  let u, y = training_data () in
  let m = Arx.fit ~na:2 ~nb:2 ~u ~y in
  let fit = Validate.fit_percent ~actual:y ~predicted:(Arx.predict_one_step m ~u ~y) in
  check_bool "fit > 99.9%" true (Array.for_all (fun f -> f > 99.9) fit)

let test_arx_noisy_recovery () =
  let u, y = training_data ~noise:0.05 ~length:2000 () in
  let m = Arx.fit ~na:2 ~nb:2 ~u ~y in
  Array.iteri
    (fun i ai ->
      check_bool
        (Printf.sprintf "A%d close" (i + 1))
        true
        (Mat.approx_equal ~tol:0.08 ai m.Arx.a.(i)))
    true_a

let test_arx_to_ss_equivalence () =
  let u, y = training_data ~length:120 () in
  let m = Arx.fit ~na:2 ~nb:2 ~u ~y in
  let ss = Arx.to_ss m ~period:0.5 in
  check_int "order" 4 (Control.Ss.order ss);
  (* Zero the first samples of u so that both the polynomial recursion
     (which pins its first max(na, nb-1) outputs to y0 = 0) and the
     state-space realization (which starts at rest) see identical
     histories. *)
  let u = Array.mapi (fun t v -> if t < 2 then Vec.create 2 else v) u in
  (* The realization must reproduce the polynomial model's free run. *)
  let y_poly = Arx.simulate m ~u ~y0:[| Vec.create 2; Vec.create 2 |] in
  let y_ss = Control.Ss.simulate ss u in
  let err = ref 0.0 in
  for t = 2 to 119 do
    err := Float.max !err (Vec.norm_inf (Vec.sub y_poly.(t) y_ss.(t)))
  done;
  check_bool "trajectories match" true (!err < 1e-6)

let test_arx_feedthrough () =
  (* A static system y = 2u is an ARX model with na=0 and only B0. *)
  let u = Array.init 50 (fun i -> Vec.of_list [ Float.of_int (i mod 3) ]) in
  let y = Array.map (fun v -> Vec.scale 2.0 v) u in
  let m = Arx.fit ~na:0 ~nb:1 ~u ~y in
  check_float_loose "b0" 2.0 (Mat.get m.Arx.b.(0) 0 0)

let test_arx_stability_check () =
  check_bool "true model stable" true (Arx.stable true_model);
  let unstable =
    { true_model with Arx.a = [| Mat.scalar 2 1.2; Mat.create 2 2 |] }
  in
  check_bool "unstable detected" false (Arx.stable unstable)

let test_arx_too_short () =
  let u = Array.init 5 (fun _ -> Vec.create 2) in
  let y = Array.init 5 (fun _ -> Vec.create 2) in
  Alcotest.check_raises "short record"
    (Invalid_argument "Arx.fit: record too short for the order") (fun () ->
      ignore (Arx.fit ~na:2 ~nb:2 ~u ~y))

(* ------------------------------------------------------------------ *)
(* Boxjenkins                                                          *)
(* ------------------------------------------------------------------ *)

(* Equation-error noise (the structure GLS is consistent for):
   y(t) = A_1 y(t-1) + A_2 y(t-2) + B_0 u(t) + B_1 u(t-1) + v(t),
   with v(t) = rho v(t-1) + w(t) and white w (rho = 0 gives white
   equation error). *)
let equation_error_data ~rho () =
  let length = 3000 in
  let exc = { Excitation.seed = 3; hold = 2 } in
  let u =
    Excitation.channels exc
      ~levels:[| [| -1.0; 0.0; 1.0 |]; [| -1.0; 1.0 |] |]
      ~length
  in
  let st = Random.State.make [| 13 |] in
  let v = ref (Vec.create 2) in
  let y = Array.make length (Vec.create 2) in
  for t = 2 to length - 1 do
    v :=
      Vec.init 2 (fun c ->
          (rho *. !v.(c)) +. (0.1 *. (Random.State.float st 2.0 -. 1.0)));
    let clean =
      Vec.add
        (Vec.add
           (Linalg.Mat.mul_vec true_a.(0) y.(t - 1))
           (Linalg.Mat.mul_vec true_a.(1) y.(t - 2)))
        (Vec.add
           (Linalg.Mat.mul_vec true_b.(0) u.(t))
           (Linalg.Mat.mul_vec true_b.(1) u.(t - 1)))
    in
    y.(t) <- Vec.add clean !v
  done;
  (u, y)

let test_bj_detects_noise_color () =
  let u, y = equation_error_data ~rho:0.7 () in
  let bj = Boxjenkins.fit ~noise_order:1 ~na:2 ~nb:2 ~u ~y () in
  (* The AR(1) coefficient of the noise should be recovered approximately. *)
  check_bool "noise coefficient near 0.7" true
    (Float.abs (bj.Boxjenkins.noise.(0) -. 0.7) < 0.25)

let test_bj_iterates () =
  let u, y = equation_error_data ~rho:0.7 () in
  let bj = Boxjenkins.fit ~na:2 ~nb:2 ~u ~y () in
  check_bool "performed iterations" true (bj.Boxjenkins.iterations >= 1);
  check_bool "plant stable" true (Arx.stable bj.Boxjenkins.plant)

let test_bj_white_noise_near_zero () =
  let u, y = equation_error_data ~rho:0.0 () in
  let bj = Boxjenkins.fit ~noise_order:2 ~na:2 ~nb:2 ~u ~y () in
  check_bool "noise model small for white residuals" true
    (Vec.norm_inf bj.Boxjenkins.noise < 0.3)

let test_bj_residuals_shape () =
  let u, y = training_data ~length:100 () in
  let m = Arx.fit ~na:2 ~nb:2 ~u ~y in
  let res = Boxjenkins.residuals m ~u ~y in
  check_int "length" 100 (Array.length res);
  check_float "warmup zero" 0.0 (Vec.norm_inf res.(0));
  (* Noise-free: residuals vanish after warmup. *)
  check_bool "tiny residuals" true (Vec.norm_inf res.(50) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)
(* ------------------------------------------------------------------ *)

let test_fit_percent_perfect () =
  let y = Array.init 20 (fun i -> Vec.of_list [ sin (Float.of_int i) ]) in
  let f = Validate.fit_percent ~actual:y ~predicted:y in
  check_float "perfect" 100.0 f.(0)

let test_fit_percent_mean_predictor () =
  (* Predicting the mean gives fit ~ 0. *)
  let y = Array.init 100 (fun i -> Vec.of_list [ sin (0.7 *. Float.of_int i) ]) in
  let mean =
    Array.fold_left (fun acc v -> acc +. v.(0)) 0.0 y /. 100.0
  in
  let pred = Array.map (fun _ -> Vec.of_list [ mean ]) y in
  let f = Validate.fit_percent ~actual:y ~predicted:pred in
  check_bool "near zero" true (Float.abs f.(0) < 1e-6)

let test_autocorrelation_sine () =
  let s = Vec.init 200 (fun i -> sin (0.3 *. Float.of_int i)) in
  let ac = Validate.autocorrelation s 5 in
  (* A sine is strongly autocorrelated at small lags. *)
  check_bool "lag1 large" true (Float.abs ac.(0) > 0.5)

let test_whiteness_of_noise () =
  let st = Random.State.make [| 21 |] in
  let s = Vec.init 1000 (fun _ -> Random.State.float st 2.0 -. 1.0) in
  check_bool "white" true (Validate.whiteness s >= 0.8);
  let sine = Vec.init 1000 (fun i -> sin (0.2 *. Float.of_int i)) in
  check_bool "sine not white" true (Validate.whiteness sine <= 0.5)

let test_channel_extraction () =
  let rec_ = [| Vec.of_list [ 1.0; 2.0 ]; Vec.of_list [ 3.0; 4.0 ] |] in
  let c1 = Validate.channel rec_ 1 in
  check_float "first" 2.0 c1.(0);
  check_float "second" 4.0 c1.(1)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_fit_percent_bounded_above =
  QCheck.Test.make ~name:"fit percent <= 100" ~count:50
    QCheck.(list_of_size (Gen.return 30) (float_range (-2.0) 2.0))
    (fun noise ->
      let y = Array.init 30 (fun i -> Vec.of_list [ cos (0.5 *. Float.of_int i) ]) in
      let noise = Array.of_list noise in
      let pred = Array.mapi (fun i v -> Vec.of_list [ v.(0) +. noise.(i) ]) y in
      let f = Validate.fit_percent ~actual:y ~predicted:pred in
      f.(0) <= 100.0 +. 1e-9)

let prop_arx_recovery_various_orders =
  QCheck.Test.make ~name:"arx one-step fit high on own data" ~count:10
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (na, nb) ->
      let exc = { Excitation.seed = (na * 7) + nb; hold = 2 } in
      let u = Excitation.channels exc ~levels:[| [| -1.0; 1.0 |] |] ~length:300 in
      (* Random stable model of the given order. *)
      let st = Random.State.make [| na; nb |] in
      let a =
        Array.init na (fun _ ->
            Mat.of_lists [ [ 0.5 *. (Random.State.float st 1.0 -. 0.5) ] ])
      in
      let b =
        Array.init nb (fun _ ->
            Mat.of_lists [ [ Random.State.float st 2.0 -. 1.0 ] ])
      in
      let truth = { Arx.na; nb; ny = 1; nu = 1; a; b } in
      let y = Arx.simulate truth ~u ~y0:(Array.init (max na (nb - 1) + 1) (fun _ -> Vec.create 1)) in
      let m = Arx.fit ~na ~nb ~u ~y in
      let pred = Arx.predict_one_step m ~u ~y in
      let f = Validate.fit_percent ~actual:y ~predicted:pred in
      f.(0) > 99.0)

(* ------------------------------------------------------------------ *)
(* Recursive (RLS)                                                     *)
(* ------------------------------------------------------------------ *)

(* Feed a full record through the recursive estimator, batch-style. *)
let rls_feed est ~u ~y =
  Array.iteri (fun t ut -> ignore (Recursive.observe est ~u:ut ~y:y.(t))) u

let models_close ?(tol = 1e-6) (m1 : Arx.model) (m2 : Arx.model) =
  Array.for_all2 (Mat.approx_equal ~tol) m1.Arx.a m2.Arx.a
  && Array.for_all2 (Mat.approx_equal ~tol) m1.Arx.b m2.Arx.b

let test_rls_matches_batch () =
  let u, y = training_data ~noise:0.02 ~length:300 () in
  let batch = Arx.fit ~na:2 ~nb:2 ~u ~y in
  let est = Recursive.create ~na:2 ~nb:2 ~ny:2 ~nu:2 () in
  rls_feed est ~u ~y;
  check_bool "rls = batch ridge" true
    (models_close ~tol:1e-6 batch (Recursive.model est));
  check_int "updates skip warmup" (300 - 2) (Recursive.samples est)

let test_rls_warmup () =
  let est = Recursive.create ~na:2 ~nb:3 ~ny:1 ~nu:1 () in
  check_bool "cold" true (not (Recursive.warm est));
  let one = Vec.of_list [ 1.0 ] in
  check_bool "first sample no error" true
    (Recursive.observe est ~u:one ~y:one = None);
  check_bool "second sample no error" true
    (Recursive.observe est ~u:one ~y:one = None);
  check_bool "warm after horizon" true (Recursive.warm est);
  check_bool "third sample updates" true
    (Recursive.observe est ~u:one ~y:one <> None)

let test_rls_error_shrinks () =
  (* On a deterministic plant the one-step error must collapse as the
     estimate converges. *)
  let u, y = training_data ~length:300 () in
  let est = Recursive.create ~na:2 ~nb:2 ~ny:2 ~nu:2 () in
  let errs = ref [] in
  Array.iteri
    (fun t ut ->
      match Recursive.observe est ~u:ut ~y:y.(t) with
      | Some e -> errs := e :: !errs
      | None -> ())
    u;
  let errs = Array.of_list (List.rev !errs) in
  let n = Array.length errs in
  let mean lo hi =
    let s = ref 0.0 in
    for i = lo to hi - 1 do s := !s +. errs.(i) done;
    !s /. float_of_int (hi - lo)
  in
  check_bool "late errors tiny" true (mean (n - 50) n < 1e-6);
  check_bool "late << early" true (mean (n - 50) n < 0.01 *. mean 0 50)

let test_drift_detector () =
  let d = Recursive.Drift.create ~warmup:20 ~ratio:3.0 () in
  (* Clean phase: residuals around 0.1 — calibrates, never trips. *)
  for i = 0 to 99 do
    let e = 0.1 +. (0.01 *. sin (float_of_int i)) in
    check_bool "clean never trips" false (Recursive.Drift.observe d e)
  done;
  check_bool "calibrated" true (Recursive.Drift.calibrated d);
  check_bool "baseline near level" true
    (Float.abs (Recursive.Drift.baseline d -. 0.1) < 0.02);
  (* Drift: residuals jump 10x — must trip exactly once. *)
  let trips = ref 0 in
  for _ = 0 to 99 do
    if Recursive.Drift.observe d 1.0 then incr trips
  done;
  check_int "trips once" 1 !trips;
  check_bool "latched" true (Recursive.Drift.tripped d);
  Recursive.Drift.reset d;
  check_bool "reset clears" true (not (Recursive.Drift.tripped d))

let test_rls_reset_covariance () =
  let u, y = training_data ~length:200 () in
  let est = Recursive.create ~lambda:0.9 ~na:2 ~nb:2 ~ny:2 ~nu:2 () in
  rls_feed est ~u ~y;
  let before = Recursive.model est in
  Recursive.reset_covariance est;
  (* Resetting covariance keeps the estimate itself. *)
  check_bool "estimate kept" true (models_close before (Recursive.model est))

let test_rls_warm_start () =
  let u, y = training_data ~noise:0.02 ~length:300 () in
  let batch = Arx.fit ~na:2 ~nb:2 ~u ~y in
  let est = Recursive.create ~na:2 ~nb:2 ~ny:2 ~nu:2 () in
  Recursive.warm_start est batch;
  (* The installed prior round-trips exactly through the packed layout. *)
  check_bool "prior installed" true
    (models_close ~tol:1e-12 batch (Recursive.model est));
  (* Shape mismatches are rejected. *)
  let other = Arx.fit ~na:3 ~nb:2 ~u ~y in
  check_bool "shape mismatch rejected" true
    (try
       Recursive.warm_start est other;
       false
     with Invalid_argument _ -> true)

let test_rls_structured_reset () =
  (* Warm-start from the true model, then feed data from a plant whose
     input gains drifted (B scaled 1.5x). With the input-only covariance
     reset the A coefficients must stay pinned at the prior through every
     subsequent update, while the B estimate tracks the drift. *)
  let drifted =
    {
      true_model with
      Arx.b = Array.map (Mat.map (fun x -> 1.5 *. x)) true_b;
    }
  in
  let exc = { Excitation.seed = 5; hold = 2 } in
  let u =
    Excitation.channels exc
      ~levels:[| [| -1.0; 0.0; 1.0 |]; [| -1.0; 1.0 |] |]
      ~length:300
  in
  let y0 = [| Vec.create 2; Vec.create 2 |] in
  let y = Arx.simulate drifted ~u ~y0 in
  let est = Recursive.create ~na:2 ~nb:2 ~ny:2 ~nu:2 () in
  Recursive.warm_start est true_model;
  Recursive.reset_covariance ~only_inputs:true est;
  rls_feed est ~u ~y;
  let m = Recursive.model est in
  check_bool "A pinned at prior" true
    (Array.for_all2 (Mat.approx_equal ~tol:1e-12) true_a m.Arx.a);
  check_bool "B tracked drift" true
    (Array.for_all2 (Mat.approx_equal ~tol:1e-3) drifted.Arx.b m.Arx.b)

let recursive_cases =
  [
    Alcotest.test_case "matches batch fit" `Quick test_rls_matches_batch;
    Alcotest.test_case "warmup bookkeeping" `Quick test_rls_warmup;
    Alcotest.test_case "error shrinks" `Quick test_rls_error_shrinks;
    Alcotest.test_case "drift detector" `Quick test_drift_detector;
    Alcotest.test_case "reset covariance" `Quick test_rls_reset_covariance;
    Alcotest.test_case "warm start" `Quick test_rls_warm_start;
    Alcotest.test_case "structured reset" `Quick test_rls_structured_reset;
  ]

let prop_rls_converges_to_batch =
  (* The satellite property: forgetting 1.0 RLS equals the batch ridge
     fit over the same record, for random orders and dimensions —
     including records whose excitation is rank-deficient (constant
     input), where only the shared ridge prior keeps the problem
     well-posed. *)
  QCheck.Test.make ~name:"rls forgetting 1.0 equals batch fit" ~count:25
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 2) (int_bound 1))
    (fun (na, nb, ny, flat) ->
      let nu = 1 in
      let length = 120 in
      let u =
        if flat = 1 then
          (* Rank-deficient: a constant input excites one direction. *)
          Array.init length (fun _ -> Vec.of_list [ 0.7 ])
        else
          Excitation.channels
            { Excitation.seed = (na * 31) + (nb * 7) + ny; hold = 2 }
            ~levels:[| [| -1.0; 0.0; 1.0 |] |] ~length
      in
      let st = Random.State.make [| na; nb; ny; flat |] in
      let rand_mat r c lim =
        Mat.init r c (fun _ _ -> lim *. (Random.State.float st 2.0 -. 1.0))
      in
      let truth =
        {
          Arx.na;
          nb;
          ny;
          nu;
          a = Array.init na (fun _ -> rand_mat ny ny (0.3 /. float_of_int na));
          b = Array.init nb (fun _ -> rand_mat ny nu 1.0);
        }
      in
      let y0 =
        Array.init (max na (nb - 1) + 1) (fun _ -> Vec.create ny)
      in
      let clean = Arx.simulate truth ~u ~y0 in
      let y =
        Array.map
          (fun v ->
            Vec.map (fun x -> x +. (0.01 *. (Random.State.float st 2.0 -. 1.0))) v)
          clean
      in
      let batch = Arx.fit ~na ~nb ~u ~y in
      let est = Recursive.create ~na ~nb ~ny ~nu () in
      rls_feed est ~u ~y;
      models_close ~tol:1e-5 batch (Recursive.model est))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fit_percent_bounded_above;
      prop_arx_recovery_various_orders;
      prop_rls_converges_to_batch;
    ]


(* ------------------------------------------------------------------ *)
(* Round 2: edge cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_arx_weighted_identity_filter () =
  (* Prefiltering with [1] must reproduce the plain fit exactly. *)
  let u, y = training_data ~length:200 () in
  let plain = Arx.fit ~na:2 ~nb:2 ~u ~y in
  let filtered = Arx.fit_weighted ~na:2 ~nb:2 ~filter:[| 1.0 |] ~u ~y in
  Array.iteri
    (fun i ai ->
      check_bool
        (Printf.sprintf "A%d equal" i)
        true
        (Mat.approx_equal ~tol:1e-9 ai filtered.Arx.a.(i)))
    plain.Arx.a

let test_arx_na_zero_static () =
  (* na = 0 with nb = 1 models a static map. *)
  let u = Array.init 60 (fun i -> Vec.of_list [ Float.of_int (i mod 4) ]) in
  (* Constant offset is not modelled: use zero-mean input to isolate gain. *)
  let u0 = Array.map (fun v -> Vec.of_list [ v.(0) -. 1.5 ]) u in
  let y0 = Array.map (fun v -> Vec.of_list [ 3.0 *. v.(0) ]) u0 in
  let m = Arx.fit ~na:0 ~nb:1 ~u:u0 ~y:y0 in
  check_bool "gain" true (Float.abs (Mat.get m.Arx.b.(0) 0 0 -. 3.0) < 1e-6)

let test_excitation_bad_args () =
  Alcotest.check_raises "no levels" (Invalid_argument "Excitation: no levels")
    (fun () ->
      ignore
        (Excitation.multilevel Excitation.default ~levels:[||] ~length:10));
  Alcotest.check_raises "bad hold"
    (Invalid_argument "Excitation: hold must be positive") (fun () ->
      ignore
        (Excitation.multilevel { Excitation.seed = 1; hold = 0 }
           ~levels:[| 1.0 |] ~length:10))

let test_validate_mismatched_lengths () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Validate.fit_percent: length mismatch") (fun () ->
      ignore
        (Validate.fit_percent
           ~actual:[| Vec.of_list [ 1.0 ] |]
           ~predicted:[||]))

let test_bj_prefilter_shape () =
  (* The Box-Jenkins prefilter is 1 - c1 q^-1 - ...: length nc+1. *)
  let u, y = equation_error_data ~rho:0.5 () in
  let bj = Boxjenkins.fit ~noise_order:3 ~na:2 ~nb:2 ~u ~y () in
  check_int "noise order" 3 (Vec.dim bj.Boxjenkins.noise)

let round2_cases =
  [
    Alcotest.test_case "weighted identity filter" `Quick
      test_arx_weighted_identity_filter;
    Alcotest.test_case "na=0 static" `Quick test_arx_na_zero_static;
    Alcotest.test_case "excitation bad args" `Quick test_excitation_bad_args;
    Alcotest.test_case "validate mismatch" `Quick
      test_validate_mismatched_lengths;
    Alcotest.test_case "bj prefilter shape" `Quick test_bj_prefilter_shape;
  ]

let () =
  Alcotest.run "sysid"
    [
      ( "excitation",
        [
          Alcotest.test_case "levels" `Quick test_excitation_levels;
          Alcotest.test_case "hold" `Quick test_excitation_hold;
          Alcotest.test_case "deterministic" `Quick
            test_excitation_deterministic;
          Alcotest.test_case "channels" `Quick test_excitation_channels;
        ] );
      ( "arx",
        [
          Alcotest.test_case "exact recovery" `Quick test_arx_exact_recovery;
          Alcotest.test_case "training prediction" `Quick
            test_arx_prediction_on_training;
          Alcotest.test_case "noisy recovery" `Quick test_arx_noisy_recovery;
          Alcotest.test_case "to_ss equivalence" `Quick
            test_arx_to_ss_equivalence;
          Alcotest.test_case "feedthrough" `Quick test_arx_feedthrough;
          Alcotest.test_case "stability" `Quick test_arx_stability_check;
          Alcotest.test_case "too short" `Quick test_arx_too_short;
        ] );
      ( "boxjenkins",
        [
          Alcotest.test_case "detects noise color" `Quick
            test_bj_detects_noise_color;
          Alcotest.test_case "iterates" `Quick test_bj_iterates;
          Alcotest.test_case "white noise" `Quick test_bj_white_noise_near_zero;
          Alcotest.test_case "residuals" `Quick test_bj_residuals_shape;
        ] );
      ( "validate",
        [
          Alcotest.test_case "perfect fit" `Quick test_fit_percent_perfect;
          Alcotest.test_case "mean predictor" `Quick
            test_fit_percent_mean_predictor;
          Alcotest.test_case "sine autocorrelation" `Quick
            test_autocorrelation_sine;
          Alcotest.test_case "whiteness" `Quick test_whiteness_of_noise;
          Alcotest.test_case "channel" `Quick test_channel_extraction;
        ] );
      ("edge cases", round2_cases);
      ("recursive", recursive_cases);
      ("properties", qcheck_cases);
    ]
