(* The headline experiment, on one application:

     dune exec examples/multilayer_efficiency.exe [-- <app>]

   Runs the same workload under the industry-style Coordinated heuristic
   and under the full two-layer Yukta design (HW SSV + OS SSV, each with
   its E x D optimizer, coordinating through external signals), and prints
   the energy/delay comparison of Figure 9. *)

open Yukta

let run_and_report scheme workloads =
  let r = Runtime.run scheme workloads in
  let m = r.Runtime.metrics in
  Printf.printf "%-28s time %7.1f s   energy %7.1f J   ExD %10.0f   trips %d\n%!"
    (Runtime.scheme_name scheme)
    m.Board.Xu3.execution_time m.Board.Xu3.total_energy
    m.Board.Xu3.energy_delay m.Board.Xu3.trips;
  m

let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "blackscholes" in
  let workloads = [ Board.Workload.by_name app ] in
  Printf.printf "application: %s (%.0f x 10^9 instructions)\n"
    app
    (Board.Workload.total_ginsts (List.hd workloads));
  Printf.printf "limits: Pbig < %.2f W, Plittle < %.2f W, T < %.0f C\n\n"
    Hw_layer.power_limit_big Hw_layer.power_limit_little Hw_layer.temp_limit;
  Printf.printf "synthesizing controllers (cached after the first run)...\n%!";
  ignore (Designs.hw ());
  ignore (Designs.sw ());
  let base = run_and_report Runtime.Coordinated_heuristic workloads in
  let yukta = run_and_report Runtime.Hw_ssv_os_ssv workloads in
  Printf.printf "\nYukta vs Coordinated heuristic:\n";
  Printf.printf "  execution time: %+.1f%%\n"
    (100.0
    *. ((yukta.Board.Xu3.execution_time /. base.Board.Xu3.execution_time) -. 1.0));
  Printf.printf "  E x D:          %+.1f%%\n"
    (100.0 *. ((yukta.Board.Xu3.energy_delay /. base.Board.Xu3.energy_delay) -. 1.0))
