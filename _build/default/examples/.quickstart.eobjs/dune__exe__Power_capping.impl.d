examples/power_capping.ml: Array Board Designs Float Hw_layer List Printf Runtime Signal Sys Yukta
