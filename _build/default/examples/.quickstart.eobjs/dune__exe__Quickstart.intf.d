examples/quickstart.mli:
