examples/sysid_workflow.ml: Array Control Design Format Hw_layer Linalg Printf String Sysid Training Yukta
