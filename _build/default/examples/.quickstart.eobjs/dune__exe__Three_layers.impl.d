examples/three_layers.ml: Array Board Control Controller Design Designs List Printf Runtime Signal Sysid Workload Xu3 Yukta
