examples/sysid_workflow.mli:
