examples/robust_analysis.ml: Array Control Controller Design Designs Hinf Hw_layer Linalg Printf Signal Ss Ssv Yukta
