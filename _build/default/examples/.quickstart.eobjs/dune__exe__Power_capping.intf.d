examples/power_capping.mli:
