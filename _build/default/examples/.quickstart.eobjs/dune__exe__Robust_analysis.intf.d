examples/robust_analysis.mli:
