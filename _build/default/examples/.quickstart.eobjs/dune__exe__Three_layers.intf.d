examples/three_layers.mli:
