examples/quickstart.ml: Array Control Controller Design Printf Signal Sysid Yukta
