examples/multilayer_efficiency.mli:
