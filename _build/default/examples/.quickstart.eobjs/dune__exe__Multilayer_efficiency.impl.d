examples/multilayer_efficiency.ml: Array Board Designs Hw_layer List Printf Runtime Sys Yukta
