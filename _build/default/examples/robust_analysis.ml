(* Robustness analysis of a synthesized design (Section II-C).

     dune exec examples/robust_analysis.exe

   Rebuilds the hardware layer's Delta-N generalized plant, closes it with
   the synthesized controller, and sweeps the structured singular value
   across frequency: mu <= 1 would certify the designer's full request
   (guardband, quantization, bounds); mu = m > 1 means the same guarantees
   hold with everything scaled by m (the min(s) scaling argument of the
   paper). Also exhibits a worst-case structured perturbation found by the
   lower-bound power iteration. *)

open Yukta
open Control

let () =
  Printf.printf "loading the hardware-layer design (cached)...\n%!";
  let syn = Designs.hw () in
  let spec = Hw_layer.spec () in
  let plant, structure = Design.generalized_plant spec ~model:syn.Design.model in
  let k = Controller.internal syn.Design.controller in
  let closed = Hinf.close_loop plant k in
  Printf.printf "closed loop: %d states, stable = %b\n"
    (Ss.order closed) (Ss.is_stable closed);
  let sweep = Ssv.sweep ~points:30 structure closed in
  Printf.printf "\n%12s %12s\n" "freq (rad/s)" "mu upper";
  Array.iteri
    (fun i w ->
      if i mod 3 = 0 then
        Printf.printf "%12.4f %12.4f\n" w sweep.Ssv.upper_bounds.(i))
    sweep.Ssv.frequencies;
  Printf.printf "\nmu peak (upper bound): %.3f at %.4f rad/s\n" sweep.Ssv.peak
    sweep.Ssv.peak_frequency;
  Printf.printf "mu peak (lower bound): %.3f\n" sweep.Ssv.lower_peak;
  if sweep.Ssv.peak <= 1.0 then
    Printf.printf
      "certified: the +-%.0f%% guardband, quantization and bounds all hold.\n"
      (100.0 *. spec.Design.uncertainty)
  else
    Printf.printf
      "certified with scaling %.2f: guardband and bounds hold scaled by %.2f\n\
       (e.g. the +-%.0f%% performance bound becomes +-%.0f%%).\n"
      sweep.Ssv.peak sweep.Ssv.peak
      (100.0 *. spec.Design.outputs.(0).Signal.bound_fraction)
      (100.0 *. spec.Design.outputs.(0).Signal.bound_fraction *. sweep.Ssv.peak);
  (* A concrete worst-case perturbation at the peak frequency. *)
  let m = Ss.freq_response closed sweep.Ssv.peak_frequency in
  let delta, rho = Ssv.worst_case_delta structure m in
  Printf.printf
    "\nworst-case structured perturbation at the peak: |Delta| = %.3f,\n\
     rho(M Delta) = %.3f (any rho >= 1 at unit |Delta| would break a\n\
     guarantee; the certified margin is the gap to 1).\n"
    (Linalg.Svd.norm2_complex delta)
    rho
