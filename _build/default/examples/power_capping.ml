(* Power capping with fixed targets (the Figure 15(a)/17 usage).

     dune exec examples/power_capping.exe [-- <app>]

   The basic use of a multilayer SSV controller: every output is given a
   fixed target, and the controllers hold the system there — big-cluster
   power at 2.5 W here — through workload phase changes, using only the
   sampled sensors and the quantized knobs. *)

open Yukta

let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "blackscholes" in
  Printf.printf "loading controller designs (cached after the first run)...\n%!";
  let hw = Designs.hw () and sw = Designs.sw () in
  let hw_targets = [| 5.5; 2.5; 0.2; 70.0 |] in
  let sw_targets = [| 1.0; 4.5; 1.0 |] in
  Printf.printf
    "targets: perf 5.5 BIPS, Pbig 2.5 W, Plittle 0.2 W, T 70 C\n\n";
  let trace =
    Runtime.run_fixed_targets ~max_time:80.0 ~hw_design:hw ~sw_design:sw
      ~hw_targets ~sw_targets
      [ Board.Workload.by_name app ]
  in
  Printf.printf "%8s %10s %10s %8s\n" "time(s)" "Pbig(W)" "BIPS" "T(C)";
  Array.iteri
    (fun i (p : Runtime.trace_point) ->
      if i mod 8 = 0 then
        Printf.printf "%8.1f %10.2f %10.2f %8.1f\n" p.Runtime.time
          p.Runtime.power_big p.Runtime.bips p.Runtime.temperature)
    trace;
  (* Steady-state tracking quality. *)
  let errs =
    Array.to_list trace
    |> List.filteri (fun i _ -> i > 40)
    |> List.map (fun (p : Runtime.trace_point) -> p.Runtime.power_big -. 2.5)
  in
  if errs <> [] then begin
    let n = Float.of_int (List.length errs) in
    let mean = List.fold_left ( +. ) 0.0 errs /. n in
    let rms =
      Float.sqrt (List.fold_left (fun a e -> a +. (e *. e)) 0.0 errs /. n)
    in
    Printf.printf
      "\nsteady-state big-cluster power: mean error %+.3f W, rms %.3f W\n"
      mean rms;
    Printf.printf "(designer bound: +-%.2f W)\n"
      (Signal.bound_absolute (Hw_layer.outputs ()).(1))
  end
