(* Quickstart: design an SSV controller for a small system and run it.

     dune exec examples/quickstart.exe

   The flow is the one every Yukta layer follows (Figure 3): declare the
   signals, identify a model from input/output records, run mu-synthesis,
   and invoke the resulting controller every sampling period. Here the
   "system" is a synthetic first-order plant so the example runs in
   milliseconds; see multilayer_efficiency.ml for the full board. *)

open Yukta

let () =
  (* 1. Declare the layer's signals: one knob with discrete settings, one
     goal with a deviation bound. *)
  let knob =
    Signal.input ~name:"knob" ~minimum:0.0 ~maximum:10.0 ~step:0.5 ~weight:1.0
  in
  let goal = Signal.output ~name:"goal" ~lo:0.0 ~hi:20.0 ~bound_fraction:0.1 () in
  let spec =
    {
      Design.layer = "quickstart";
      inputs = [| knob |];
      outputs = [| goal |];
      externals = [||];
      uncertainty = 0.30;  (* +-30% guardband *)
      period = 0.5;
    }
  in

  (* 2. The true system (normally this is the physical platform): a slow
     first-order response, goal ~ 18 * knob_fraction at steady state, plus
     behaviour the model will not capture (the guardband's job). *)
  let state = ref 0.0 in
  let plant knob_value =
    let target = 1.8 *. knob_value in
    state := (0.7 *. !state) +. (0.3 *. target);
    !state
  in

  (* 3. Collect training records by exciting the knob. *)
  let exc = { Sysid.Excitation.seed = 42; hold = 3 } in
  let levels = Control.Quantize.levels knob.Signal.channel in
  let u_seq = Sysid.Excitation.multilevel exc ~levels ~length:300 in
  let u = Array.map (fun v -> [| v |]) u_seq in
  let y = Array.map (fun v -> [| plant v.(0) |]) u in

  (* 4. Identify and synthesize. *)
  let syn = Design.design ~order:2 ~dk_iterations:2 spec ~u ~y in
  Printf.printf "synthesized: %d states, mu peak %.3f, gamma %.3f\n"
    (Controller.order syn.Design.controller)
    syn.Design.mu_peak syn.Design.gamma;
  Printf.printf "guaranteed deviation bound: +-%.2f (designer asked +-%.2f)\n"
    syn.Design.guaranteed_bounds.(0)
    (Signal.bound_absolute goal);

  (* 5. Run the closed loop: track a setpoint of 12, then step to 6. *)
  state := 0.0;
  let ctrl = syn.Design.controller in
  Controller.reset ctrl;
  let y_now = ref (plant 0.0) in
  Printf.printf "\n%6s %8s %8s %8s\n" "step" "target" "goal" "knob";
  for t = 1 to 24 do
    let target = if t <= 12 then 12.0 else 6.0 in
    let u =
      Controller.step ctrl ~measurements:[| !y_now |] ~targets:[| target |]
        ~externals:[||]
    in
    y_now := plant u.(0);
    if t mod 2 = 0 then
      Printf.printf "%6d %8.1f %8.2f %8.1f\n" t target !y_now u.(0)
  done
