(* System identification workflow (Section IV-C).

     dune exec examples/sysid_workflow.exe

   Runs a training application on the simulated board while exciting the
   hardware and scheduling knobs, fits the 4th-order Box-Jenkins-style
   polynomial model of the hardware layer, and validates it: one-step
   FIT%, residual whiteness, and the realized state-space model's
   stability. *)

open Yukta

let () =
  Printf.printf "collecting training records (6 training applications)...\n%!";
  let records = Training.collect ~epochs_per_workload:120 () in
  let n = Array.length records.Training.hw_u in
  Printf.printf "  %d epochs recorded\n" n;

  let spec = Hw_layer.spec () in
  let u_norm, y_norm =
    Design.normalize_records spec ~u:records.Training.hw_u
      ~y:records.Training.hw_y
  in
  Printf.printf "fitting Box-Jenkins (ARX(4,4) + AR noise refinement)...\n%!";
  let bj = Sysid.Boxjenkins.fit ~na:4 ~nb:4 ~u:u_norm ~y:y_norm () in
  Printf.printf "  GLS iterations: %d, noise AR coefficients: [%s]\n"
    bj.Sysid.Boxjenkins.iterations
    (String.concat "; "
       (Array.to_list
          (Array.map (Printf.sprintf "%.3f") bj.Sysid.Boxjenkins.noise)));

  let pred =
    Sysid.Arx.predict_one_step bj.Sysid.Boxjenkins.plant ~u:u_norm ~y:y_norm
  in
  let fit = Sysid.Validate.fit_percent ~actual:y_norm ~predicted:pred in
  let names = [| "performance"; "power_big"; "power_little"; "temperature" |] in
  Printf.printf "one-step prediction fit:\n";
  Array.iteri
    (fun i f -> Printf.printf "  %-14s %6.1f%%\n" names.(i) f)
    fit;

  Printf.printf "residual whiteness (fraction of autocorrelations in the\n";
  Printf.printf "95%% confidence band; 1.0 = white):\n";
  let residuals =
    Sysid.Boxjenkins.residuals bj.Sysid.Boxjenkins.plant ~u:u_norm ~y:y_norm
  in
  Array.iteri
    (fun i name ->
      let series = Sysid.Validate.channel residuals i in
      Printf.printf "  %-14s %6.2f\n" name (Sysid.Validate.whiteness series))
    names;

  let model =
    Sysid.Arx.to_ss bj.Sysid.Boxjenkins.plant ~period:Hw_layer.period
  in
  Printf.printf "state-space realization: order %d, stable = %b\n"
    (Control.Ss.order model)
    (Control.Ss.is_stable model);
  Printf.printf "dc gains (rows: outputs; columns: 4 inputs + 3 externals):\n";
  Format.printf "%a@." Linalg.Mat.pp (Control.Ss.dcgain model)
