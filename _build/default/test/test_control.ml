(* Tests for the control-theory stack: state-space algebra, discretization,
   Lyapunov/Riccati solvers, LQG, H-infinity synthesis, structured singular
   values and D-K iteration. *)

open Linalg
open Control

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mat = Alcotest.testable Mat.pp (Mat.approx_equal ~tol:1e-7)

let m1x1 x = Mat.of_lists [ [ x ] ]

(* ------------------------------------------------------------------ *)
(* Ss                                                                  *)
(* ------------------------------------------------------------------ *)

let first_order ?(domain = Ss.Continuous) a b c d =
  Ss.make ~domain ~a:(m1x1 a) ~b:(m1x1 b) ~c:(m1x1 c) ~d:(m1x1 d) ()

let test_ss_dims () =
  let sys = first_order (-1.0) 1.0 1.0 0.0 in
  check_int "order" 1 (Ss.order sys);
  check_int "inputs" 1 (Ss.inputs sys);
  check_int "outputs" 1 (Ss.outputs sys);
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Ss.make: B row count must match A") (fun () ->
      ignore
        (Ss.make ~a:(Mat.identity 2) ~b:(Mat.create 1 1) ~c:(Mat.create 1 2)
           ~d:(Mat.create 1 1) ()))

let test_ss_dcgain () =
  (* x' = -2x + u, y = 3x: dc gain 1.5. *)
  let sys = first_order (-2.0) 1.0 3.0 0.0 in
  check_float "continuous" 1.5 (Mat.get (Ss.dcgain sys) 0 0);
  (* Discrete x' = 0.5x + u, y = x: dc gain 1/(1-0.5) = 2. *)
  let dsys = first_order ~domain:(Ss.Discrete 1.0) 0.5 1.0 1.0 0.0 in
  check_float "discrete" 2.0 (Mat.get (Ss.dcgain dsys) 0 0)

let test_ss_series_gain () =
  let g1 = first_order (-1.0) 1.0 1.0 0.0 in
  let g2 = first_order (-2.0) 1.0 1.0 0.0 in
  let s = Ss.series g1 g2 in
  check_int "order" 2 (Ss.order s);
  (* dc gains multiply: 1 * 0.5. *)
  check_float_loose "dc" 0.5 (Mat.get (Ss.dcgain s) 0 0)

let test_ss_parallel_gain () =
  let g1 = first_order (-1.0) 1.0 1.0 0.0 in
  let g2 = first_order (-2.0) 1.0 1.0 0.0 in
  check_float_loose "dc sum" 1.5 (Mat.get (Ss.dcgain (Ss.parallel g1 g2)) 0 0)

let test_ss_append () =
  let g1 = Ss.gain 1 2.0 and g2 = Ss.gain 1 3.0 in
  let s = Ss.append g1 g2 in
  check_int "inputs" 2 (Ss.inputs s);
  Alcotest.check mat "block diag d"
    (Mat.of_lists [ [ 2.0; 0.0 ]; [ 0.0; 3.0 ] ])
    s.Ss.d

let test_ss_feedback () =
  (* Plant y = 2u with unit negative feedback: closed loop 2/(1+2). *)
  let g = Ss.gain 1 2.0 and k = Ss.gain 1 1.0 in
  let cl = Ss.feedback g k in
  check_float_loose "static loop" (2.0 /. 3.0) (Mat.get cl.Ss.d 0 0)

let test_ss_feedback_stabilizes () =
  (* Unstable x' = x + u stabilized by u = -3 y. *)
  let g = first_order 1.0 1.0 1.0 0.0 in
  let k = Ss.gain 1 3.0 in
  let cl = Ss.feedback g k in
  check_bool "stable" true (Ss.is_stable cl);
  check_bool "open unstable" false (Ss.is_stable g)

let test_ss_simulate_step () =
  (* Discrete integrator: step input accumulates. *)
  let sys = Ss.integrator 1 in
  let us = Array.make 5 (Vec.of_list [ 1.0 ]) in
  let ys = Ss.simulate sys us in
  check_float "first output is x0" 0.0 ys.(0).(0);
  check_float "accumulates" 4.0 ys.(4).(0)

let test_ss_freq_response () =
  (* Continuous first-order low-pass: |G(jw)| = 1/sqrt(1+w^2) at a=-1. *)
  let sys = first_order (-1.0) 1.0 1.0 0.0 in
  let g = Ss.freq_response sys 1.0 in
  check_float_loose "magnitude" (1.0 /. Float.sqrt 2.0)
    (Complex.norm (Cmat.get g 0 0))

let test_ss_hinf_norm_lowpass () =
  (* Peak of 1/(s+1) is 1 at dc. *)
  let sys = first_order (-1.0) 1.0 1.0 0.0 in
  let n = Ss.hinf_norm sys in
  check_bool "close to 1" true (Float.abs (n -. 1.0) < 1e-3)

let test_ss_hinf_norm_unstable () =
  check_bool "inf" true
    (Ss.hinf_norm (first_order 1.0 1.0 1.0 0.0) = infinity)

let test_ss_h2_norm () =
  (* Discrete x' = a x + u, y = x: H2^2 = sum a^2k = 1/(1-a^2). *)
  let a = 0.5 in
  let sys = first_order ~domain:(Ss.Discrete 1.0) a 1.0 1.0 0.0 in
  check_float_loose "h2" (1.0 /. Float.sqrt (1.0 -. (a *. a))) (Ss.h2_norm sys)

let test_ss_lft_identity () =
  (* P = [[0, I]; [I, 0]] makes F_l(P, K) = K. *)
  let p =
    Ss.make ~domain:(Ss.Discrete 1.0)
      ~a:(Mat.create 0 0) ~b:(Mat.create 0 2)
      ~c:(Mat.create 2 0)
      ~d:(Mat.of_lists [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ])
      ()
  in
  let k = first_order ~domain:(Ss.Discrete 1.0) 0.3 1.0 0.7 0.2 in
  let cl = Ss.lft_lower p k in
  check_float_loose "same dc" (Mat.get (Ss.dcgain k) 0 0)
    (Mat.get (Ss.dcgain cl) 0 0)

let test_ss_transform_invariance () =
  let sys =
    Ss.make ~domain:(Ss.Discrete 1.0)
      ~a:(Mat.of_lists [ [ 0.5; 0.1 ]; [ 0.0; 0.3 ] ])
      ~b:(Mat.of_lists [ [ 1.0 ]; [ 0.5 ] ])
      ~c:(Mat.of_lists [ [ 1.0; 1.0 ] ])
      ~d:(Mat.create 1 1) ()
  in
  let t = Mat.of_lists [ [ 1.0; 0.4 ]; [ -0.2; 1.0 ] ] in
  let sys2 = Ss.transform t sys in
  check_float_loose "dc invariant" (Mat.get (Ss.dcgain sys) 0 0)
    (Mat.get (Ss.dcgain sys2) 0 0);
  check_float_loose "hinf invariant" (Ss.hinf_norm sys) (Ss.hinf_norm sys2)

(* ------------------------------------------------------------------ *)
(* Discretize                                                          *)
(* ------------------------------------------------------------------ *)

let test_zoh_scalar () =
  (* x' = a x + b u: Ad = e^{aT}, Bd = (e^{aT}-1) b / a. *)
  let a = -0.8 and b = 2.0 and t = 0.25 in
  let d = Discretize.c2d_zoh (first_order a b 1.0 0.0) t in
  check_float_loose "ad" (exp (a *. t)) (Mat.get d.Ss.a 0 0);
  check_float_loose "bd" ((exp (a *. t) -. 1.0) *. b /. a) (Mat.get d.Ss.b 0 0)

let test_zoh_preserves_dc () =
  let sys = first_order (-2.0) 1.5 1.0 0.0 in
  let d = Discretize.c2d_zoh sys 0.1 in
  check_float_loose "dc preserved" (Mat.get (Ss.dcgain sys) 0 0)
    (Mat.get (Ss.dcgain d) 0 0)

let test_tustin_roundtrip () =
  let sys =
    Ss.make
      ~a:(Mat.of_lists [ [ -1.0; 0.5 ]; [ 0.0; -3.0 ] ])
      ~b:(Mat.of_lists [ [ 1.0 ]; [ 1.0 ] ])
      ~c:(Mat.of_lists [ [ 1.0; 0.0 ] ])
      ~d:(m1x1 0.1) ()
  in
  let back = Discretize.d2c_tustin (Discretize.c2d_tustin sys 0.2) in
  Alcotest.check mat "a roundtrip" sys.Ss.a back.Ss.a;
  Alcotest.check mat "b roundtrip" sys.Ss.b back.Ss.b;
  Alcotest.check mat "c roundtrip" sys.Ss.c back.Ss.c;
  Alcotest.check mat "d roundtrip" sys.Ss.d back.Ss.d

let test_tustin_preserves_hinf () =
  let sys =
    Ss.make
      ~a:(Mat.of_lists [ [ -0.5; 1.0 ]; [ -1.0; -0.5 ] ])
      ~b:(Mat.of_lists [ [ 1.0 ]; [ 0.0 ] ])
      ~c:(Mat.of_lists [ [ 0.0; 1.0 ] ])
      ~d:(m1x1 0.0) ()
  in
  let d = Discretize.c2d_tustin sys 0.5 in
  let nc = Ss.hinf_norm sys and nd = Ss.hinf_norm d in
  check_bool "norm preserved" true (Float.abs (nc -. nd) /. nc < 0.02)

let test_tustin_preserves_stability () =
  let stable = first_order (-0.3) 1.0 1.0 0.0 in
  check_bool "stable" true
    (Ss.is_stable (Discretize.c2d_tustin stable 1.0));
  let unstable = first_order 0.3 1.0 1.0 0.0 in
  check_bool "unstable" false
    (Ss.is_stable (Discretize.c2d_tustin unstable 1.0))

(* ------------------------------------------------------------------ *)
(* Lyap                                                                *)
(* ------------------------------------------------------------------ *)

let test_stein_scalar () =
  (* x = a^2 x + q -> x = q/(1-a^2). *)
  let a = 0.6 and q = 2.0 in
  let x = Lyap.stein (m1x1 a) (m1x1 q) in
  check_float_loose "scalar stein" (q /. (1.0 -. (a *. a))) (Mat.get x 0 0)

let test_stein_residual () =
  let a = Mat.scale 0.4 (Mat.random ~seed:30 5 5) in
  let q = Mat.symmetrize (Mat.add (Mat.random ~seed:31 5 5) (Mat.scalar 5 6.0)) in
  let x = Lyap.stein a q in
  let res = Mat.sub x (Mat.add (Mat.mul3 a x (Mat.transpose a)) q) in
  check_bool "residual" true (Mat.norm_fro res < 1e-8);
  check_bool "psd" true (Eig.is_positive_semidefinite x)

let test_stein_unstable_raises () =
  Alcotest.check_raises "diverges"
    (Failure "Lyap.stein: iteration diverged (A not Schur stable?)")
    (fun () -> ignore (Lyap.stein (m1x1 1.2) (m1x1 1.0)))

let test_continuous_lyap () =
  let a =
    Mat.of_lists [ [ -1.0; 2.0 ]; [ 0.0; -3.0 ] ]
  in
  let q = Mat.of_lists [ [ 2.0; 0.0 ]; [ 0.0; 1.0 ] ] in
  let x = Lyap.continuous a q in
  let res = Mat.add (Mat.add (Mat.mul a x) (Mat.mul x (Mat.transpose a))) q in
  check_bool "residual" true (Mat.norm_fro res < 1e-8)

let test_gramians () =
  let sys = first_order ~domain:(Ss.Discrete 1.0) 0.5 1.0 1.0 0.0 in
  let p = Lyap.controllability_gramian sys in
  check_float_loose "ctrb gramian" (1.0 /. 0.75) (Mat.get p 0 0);
  let q = Lyap.observability_gramian sys in
  check_float_loose "obsv gramian" (1.0 /. 0.75) (Mat.get q 0 0)

(* ------------------------------------------------------------------ *)
(* Care                                                                *)
(* ------------------------------------------------------------------ *)

let test_care_scalar () =
  (* a=1,b=1,q=1,r=1: x^2 - 2x - 1 = 0 -> x = 1 + sqrt 2. *)
  let x = Care.solve ~a:(m1x1 1.0) ~b:(m1x1 1.0) ~q:(m1x1 1.0) ~r:(m1x1 1.0) in
  check_float_loose "scalar care" (1.0 +. Float.sqrt 2.0) (Mat.get x 0 0)

let test_care_residual_random () =
  let a = Mat.random ~seed:32 4 4 in
  let b = Mat.random ~seed:33 4 2 in
  let q = Mat.add (Mat.symmetrize (Mat.random ~seed:34 4 4)) (Mat.scalar 4 5.0) in
  let r = Mat.identity 2 in
  let x = Care.solve ~a ~b ~q ~r in
  check_bool "residual small" true (Care.residual ~a ~b ~q ~r x < 1e-7);
  check_bool "psd" true (Eig.is_positive_semidefinite ~tol:1e-6 x);
  (* Closed loop A - G X must be Hurwitz. *)
  let g = Mat.mul b (Mat.transpose b) in
  check_bool "stabilizing" true
    (Eig.is_stable_continuous (Mat.sub a (Mat.mul g x)))

let test_care_no_solution () =
  (* Undetectable unstable mode: a = 1, q = 0 -> Hamiltonian eigenvalues
     at +-1 but extraction is inconsistent for stabilizing X >= 0 with
     b = 0 (uncontrollable). *)
  Alcotest.check_raises "uncontrollable"
    (Care.No_solution "sign iteration hit a singular iterate")
    (fun () ->
      ignore
        (Care.solve ~a:(m1x1 0.0) ~b:(m1x1 0.0) ~q:(m1x1 0.0) ~r:(m1x1 1.0)))

(* ------------------------------------------------------------------ *)
(* Dare                                                                *)
(* ------------------------------------------------------------------ *)

let test_dare_scalar_golden () =
  (* a=1,b=1,q=1,r=1: x = golden ratio. *)
  let x = Dare.solve ~a:(m1x1 1.0) ~b:(m1x1 1.0) ~q:(m1x1 1.0) ~r:(m1x1 1.0) in
  check_float_loose "golden ratio" ((1.0 +. Float.sqrt 5.0) /. 2.0)
    (Mat.get x 0 0)

let test_dare_residual_random () =
  let a = Mat.scale 0.9 (Mat.random ~seed:35 4 4) in
  let b = Mat.random ~seed:36 4 2 in
  let q = Mat.add (Mat.symmetrize (Mat.random ~seed:37 4 4)) (Mat.scalar 4 5.0) in
  let r = Mat.identity 2 in
  let x = Dare.solve ~a ~b ~q ~r in
  check_bool "residual small" true (Dare.residual ~a ~b ~q ~r x < 1e-8);
  check_bool "psd" true (Eig.is_positive_semidefinite ~tol:1e-6 x);
  let k = Dare.gain ~a ~b ~r x in
  check_bool "stabilizing" true (Eig.is_stable_discrete (Mat.sub a (Mat.mul b k)))

let test_dare_stabilizes_unstable () =
  let a = Mat.of_lists [ [ 1.2; 1.0 ]; [ 0.0; 1.1 ] ] in
  let b = Mat.of_lists [ [ 0.0 ]; [ 1.0 ] ] in
  let q = Mat.identity 2 and r = m1x1 1.0 in
  let x = Dare.solve ~a ~b ~q ~r in
  let k = Dare.gain ~a ~b ~r x in
  check_bool "closed loop schur" true
    (Eig.is_stable_discrete (Mat.sub a (Mat.mul b k)))

(* ------------------------------------------------------------------ *)
(* Lqg                                                                 *)
(* ------------------------------------------------------------------ *)

let plant_2x1 () =
  Ss.make ~domain:(Ss.Discrete 1.0)
    ~a:(Mat.of_lists [ [ 1.1; 0.4 ]; [ 0.0; 0.9 ] ])
    ~b:(Mat.of_lists [ [ 0.2 ]; [ 1.0 ] ])
    ~c:(Mat.of_lists [ [ 1.0; 0.0 ] ])
    ~d:(Mat.create 1 1) ()

let test_lqg_stabilizes () =
  let plant = plant_2x1 () in
  let k =
    Lqg.synthesize ~plant ~q:(Mat.identity 2) ~r:(m1x1 1.0)
      ~w:(Mat.identity 2) ~v:(m1x1 0.1)
  in
  check_bool "open loop unstable" false (Ss.is_stable plant);
  (* positive feedback closure because the LQG controller already encodes
     u = -K xhat. *)
  let cl = Ss.feedback ~sign:1.0 plant k in
  check_bool "closed loop stable" true (Ss.is_stable cl)

let test_lqr_gain_known () =
  (* Scalar: k = (r + b x b)^-1 b x a with x from dare. *)
  let x = Dare.solve ~a:(m1x1 1.0) ~b:(m1x1 1.0) ~q:(m1x1 1.0) ~r:(m1x1 1.0) in
  let k = Lqg.lqr_gain ~a:(m1x1 1.0) ~b:(m1x1 1.0) ~q:(m1x1 1.0) ~r:(m1x1 1.0) in
  let phi = Mat.get x 0 0 in
  check_float_loose "gain" (phi /. (1.0 +. phi)) (Mat.get k 0 0)

let test_kalman_gain_dual () =
  (* The Kalman gain of (a, c) should equal the transpose of the LQR gain
     story on the dual system: just check the predictor is stable. *)
  let a = Mat.of_lists [ [ 1.05; 0.2 ]; [ 0.0; 0.8 ] ] in
  let c = Mat.of_lists [ [ 1.0; 0.0 ] ] in
  let l = Lqg.kalman_gain ~a ~c ~w:(Mat.identity 2) ~v:(m1x1 0.5) in
  check_bool "predictor stable" true
    (Eig.is_stable_discrete (Mat.sub a (Mat.mul l c)))

(* ------------------------------------------------------------------ *)
(* Hinf                                                                *)
(* ------------------------------------------------------------------ *)

(* Mixed-sensitivity-style plant around the unstable x' = x + u + d:
   z1 = x, z2 = 0.3 u, y = x + 0.1 n, w = [d; n]. *)
let hinf_test_plant () =
  let a = m1x1 1.0 in
  let b = Mat.of_lists [ [ 1.0; 0.0; 1.0 ] ] in
  let c = Mat.of_lists [ [ 1.0 ]; [ 0.0 ]; [ 1.0 ] ] in
  let d =
    Mat.of_lists
      [ [ 0.0; 0.0; 0.0 ]; [ 0.0; 0.0; 0.3 ]; [ 0.0; 0.1; 0.0 ] ]
  in
  { Hinf.sys = Ss.make ~a ~b ~c ~d (); part = { Hinf.nw = 2; nu = 1; nz = 2; ny = 1 } }

let test_hinf_continuous () =
  let plant = hinf_test_plant () in
  let { Hinf.controller; gamma; achieved_norm } = Hinf.synthesize plant in
  let cl = Hinf.close_loop plant controller in
  check_bool "closed loop stable" true (Ss.is_stable cl);
  check_bool "norm within gamma" true (achieved_norm <= (gamma *. 1.05) +. 1e-9);
  check_bool "gamma sensible" true (gamma > 0.1 && gamma < 100.0)

let test_hinf_gamma_monotone () =
  (* Any gamma above the optimum must also be feasible. *)
  let plant = hinf_test_plant () in
  let { Hinf.gamma; _ } = Hinf.synthesize plant in
  (match Hinf.synthesize_at plant (2.0 *. gamma) with
  | Some k ->
    check_bool "still stabilizing" true
      (Ss.is_stable (Hinf.close_loop plant k))
  | None -> Alcotest.fail "2x optimal gamma should be feasible")

let test_hinf_discrete () =
  (* Same design problem after ZOH discretization of the plant dynamics. *)
  let cont = hinf_test_plant () in
  let dsys = Discretize.c2d_zoh cont.Hinf.sys 0.1 in
  let plant = { cont with Hinf.sys = dsys } in
  let { Hinf.controller; gamma; achieved_norm } = Hinf.synthesize plant in
  (match controller.Ss.domain with
  | Ss.Discrete p -> check_float "controller period" 0.1 p
  | Ss.Continuous -> Alcotest.fail "controller should be discrete");
  let cl = Hinf.close_loop plant controller in
  check_bool "stable" true (Ss.is_stable cl);
  check_bool "norm ok" true (achieved_norm <= (gamma *. 1.05) +. 1e-9)

let test_hinf_bad_partition () =
  let plant = hinf_test_plant () in
  let bad = { plant with Hinf.part = { plant.Hinf.part with Hinf.nw = 1 } } in
  Alcotest.check_raises "partition" (Invalid_argument "Hinf: inputs <> nw + nu")
    (fun () -> Hinf.validate_partition bad)

(* ------------------------------------------------------------------ *)
(* Ssv                                                                 *)
(* ------------------------------------------------------------------ *)

let cm_of_real rows = Cmat.of_real (Mat.of_lists rows)

let test_mu_single_full_block () =
  (* With one full block, mu equals the maximum singular value. *)
  let m = cm_of_real [ [ 1.0; 2.0 ]; [ 0.0; 1.5 ] ] in
  let { Ssv.value; _ } = Ssv.mu_upper [ Ssv.Full (2, 2) ] m in
  check_float_loose "mu = sigma_max" (Svd.norm2_complex m) value

let test_mu_diagonal_scalars () =
  (* Diagonal M with scalar blocks: mu = max |m_ii| (both bounds tight). *)
  let m = cm_of_real [ [ 2.0; 0.0 ]; [ 0.0; -3.0 ] ] in
  let s = [ Ssv.Full (1, 1); Ssv.Full (1, 1) ] in
  let ub = (Ssv.mu_upper s m).Ssv.value in
  let lb = Ssv.mu_lower s m in
  check_bool "ub >= 3" true (ub >= 3.0 -. 1e-6);
  check_bool "lb <= ub" true (lb <= ub +. 1e-9);
  check_bool "lb >= 3" true (lb >= 3.0 -. 1e-4)

let test_mu_scaling_beats_sigma () =
  (* Classic example: scaling strictly improves on sigma_max for a
     triangular matrix with large off-diagonal coupling. *)
  let m = cm_of_real [ [ 1.0; 100.0 ]; [ 0.0; 1.0 ] ] in
  let s = [ Ssv.Full (1, 1); Ssv.Full (1, 1) ] in
  let ub = (Ssv.mu_upper s m).Ssv.value in
  check_bool "much smaller than sigma" true (ub < 10.0);
  check_bool "at least rho" true (ub >= 1.0 -. 1e-9)

let test_mu_homogeneous () =
  let m = cm_of_real [ [ 0.5; 0.2 ]; [ 0.1; 0.8 ] ] in
  let s = [ Ssv.Full (1, 1); Ssv.Full (1, 1) ] in
  let v1 = (Ssv.mu_upper s m).Ssv.value in
  let v3 = (Ssv.mu_upper s (Cmat.scale_real 3.0 m)).Ssv.value in
  check_bool "mu(3m) = 3 mu(m)" true (Float.abs (v3 -. (3.0 *. v1)) < 1e-6)

let test_mu_lower_below_upper () =
  let m =
    Cmat.init 3 3 (fun i j ->
        { Complex.re = Float.of_int ((i + j) mod 3) -. 0.7; im = 0.3 *. Float.of_int (i - j) })
  in
  let s = [ Ssv.Full (1, 1); Ssv.Full (2, 2) ] in
  let ub = (Ssv.mu_upper s m).Ssv.value in
  let lb = Ssv.mu_lower s m in
  check_bool "sandwich" true (lb <= ub +. 1e-9);
  check_bool "lower positive" true (lb > 0.0)

let test_mu_worst_case_delta_valid () =
  let m = cm_of_real [ [ 0.9; 0.4 ]; [ -0.3; 1.1 ] ] in
  let s = [ Ssv.Full (1, 1); Ssv.Full (1, 1) ] in
  let delta, rho = Ssv.worst_case_delta s m in
  (* Delta must respect the structure: off-diagonal zero. *)
  check_float "structured 01" 0.0 (Complex.norm (Cmat.get delta 0 1));
  check_float "structured 10" 0.0 (Complex.norm (Cmat.get delta 1 0));
  (* And be a contraction. *)
  check_bool "unit norm" true (Svd.norm2_complex delta <= 1.0 +. 1e-6);
  check_bool "certificate consistent" true
    (rho <= (Ssv.mu_upper s m).Ssv.value +. 1e-6)

let test_mu_repeated_scalar () =
  (* For M = c*I with repeated scalar structure, mu = |c|. *)
  let m = Cmat.scale_real 2.5 (Cmat.identity 3) in
  let s = [ Ssv.Repeated 3 ] in
  let ub = (Ssv.mu_upper s m).Ssv.value in
  let lb = Ssv.mu_lower s m in
  check_float_loose "upper" 2.5 ub;
  check_bool "lower tight" true (lb >= 2.5 -. 1e-4)

let test_mu_validate () =
  let m = Cmat.identity 3 in
  Alcotest.check_raises "tiling"
    (Invalid_argument "Ssv: structure does not tile the matrix") (fun () ->
      Ssv.validate [ Ssv.Full (2, 2) ] m)

let test_mu_sweep_runs () =
  let sys =
    Ss.make ~domain:(Ss.Discrete 0.5)
      ~a:(Mat.of_lists [ [ 0.6; 0.2 ]; [ -0.1; 0.5 ] ])
      ~b:(Mat.identity 2) ~c:(Mat.identity 2) ~d:(Mat.create 2 2) ()
  in
  let s = [ Ssv.Full (1, 1); Ssv.Full (1, 1) ] in
  let sweep = Ssv.sweep ~points:20 s sys in
  check_bool "peak positive" true (sweep.Ssv.peak > 0.0);
  check_bool "lower below upper" true
    (sweep.Ssv.lower_peak <= sweep.Ssv.peak +. 1e-9);
  check_int "grid size" 20 (Array.length sweep.Ssv.upper_bounds)

(* ------------------------------------------------------------------ *)
(* Dk                                                                  *)
(* ------------------------------------------------------------------ *)

let test_dk_runs_and_certifies () =
  let plant = hinf_test_plant () in
  let structure = [ Ssv.Full (1, 1); Ssv.Full (1, 1) ] in
  let r = Dk.synthesize ~iterations:3 ~mu_points:20 ~plant ~structure () in
  check_bool "mu finite" true (Float.is_finite r.Dk.mu_peak);
  check_bool "history recorded" true (List.length r.Dk.history >= 1);
  let cl = Hinf.close_loop plant r.Dk.controller in
  check_bool "stable" true (Ss.is_stable cl)

let test_dk_no_worse_than_hinf () =
  let plant = hinf_test_plant () in
  let structure = [ Ssv.Full (1, 1); Ssv.Full (1, 1) ] in
  let hinf_result = Hinf.synthesize plant in
  let cl = Hinf.close_loop plant hinf_result.Hinf.controller in
  let mu_hinf = (Ssv.sweep ~points:20 structure cl).Ssv.peak in
  let dk = Dk.synthesize ~iterations:3 ~mu_points:20 ~plant ~structure () in
  check_bool "dk <= hinf mu (within tolerance)" true
    (dk.Dk.mu_peak <= (mu_hinf *. 1.05) +. 1e-9)

let test_dk_scale_plant_roundtrip () =
  let plant = hinf_test_plant () in
  let structure = [ Ssv.Full (1, 1); Ssv.Full (1, 1) ] in
  let scaled = Dk.scale_plant plant structure [| 2.0; 1.0 |] in
  (* Scaling with the inverse recovers the original D matrix. *)
  let unscaled = Dk.scale_plant scaled structure [| 0.5; 1.0 |] in
  Alcotest.check mat "d restored" plant.Hinf.sys.Ss.d unscaled.Hinf.sys.Ss.d

(* ------------------------------------------------------------------ *)
(* Quantize                                                            *)
(* ------------------------------------------------------------------ *)

let freq_channel = Quantize.make ~minimum:0.2 ~maximum:2.0 ~step:0.1

let test_quantize_levels () =
  check_int "count" 19 (Quantize.count freq_channel);
  let l = Quantize.levels freq_channel in
  check_float "first" 0.2 l.(0);
  check_float "last" 2.0 l.(18)

let test_quantize_project () =
  check_float "round down" 0.5 (Quantize.project freq_channel 0.52);
  check_float "round up" 0.6 (Quantize.project freq_channel 0.56);
  check_float "clamp low" 0.2 (Quantize.project freq_channel (-1.0));
  check_float "clamp high" 2.0 (Quantize.project freq_channel 99.0)

let test_quantize_radius () =
  check_float "radius" 0.05 (Quantize.quantization_radius freq_channel);
  check_float "span" 1.8 (Quantize.span freq_channel);
  check_float_loose "relative" (0.05 /. 0.9)
    (Quantize.relative_uncertainty freq_channel)

let prop_quantize_idempotent =
  QCheck.Test.make ~name:"projection idempotent" ~count:200
    QCheck.(float_range (-5.0) 5.0)
    (fun x ->
      let p = Quantize.project freq_channel x in
      Float.abs (Quantize.project freq_channel p -. p) < 1e-12)

let prop_quantize_in_range =
  QCheck.Test.make ~name:"projection in range" ~count:200
    QCheck.(float_range (-100.0) 100.0)
    (fun x ->
      let p = Quantize.project freq_channel x in
      p >= 0.2 -. 1e-12 && p <= 2.0 +. 1e-12)

let prop_quantize_error_bounded =
  QCheck.Test.make ~name:"in-range error <= step/2" ~count:200
    QCheck.(float_range 0.2 2.0)
    (fun x ->
      Float.abs (Quantize.project freq_channel x -. x)
      <= (Quantize.quantization_radius freq_channel) +. 1e-12)

(* Property: Stein solution psd for random stable A and psd Q. *)
let prop_stein_psd =
  let gen =
    QCheck.Gen.(
      array_size (return 9) (float_range (-1.0) 1.0)
      |> map (fun data ->
             let a = Mat.scale 0.3 { Mat.rows = 3; cols = 3; data } in
             a))
  in
  QCheck.Test.make ~name:"stein psd" ~count:40
    (QCheck.make ~print:(Format.asprintf "%a" Mat.pp) gen)
    (fun a ->
      let q = Mat.identity 3 in
      let x = Lyap.stein a q in
      Eig.is_positive_semidefinite ~tol:1e-7 x)

let prop_dare_stabilizing =
  let gen =
    QCheck.Gen.(
      pair
        (array_size (return 9) (float_range (-1.2) 1.2))
        (array_size (return 3) (float_range (-1.0) 1.0)))
  in
  QCheck.Test.make ~name:"dare gain stabilizes" ~count:30
    (QCheck.make gen)
    (fun (adata, bdata) ->
      let a = { Mat.rows = 3; cols = 3; data = adata } in
      let b = { Mat.rows = 3; cols = 1; data = bdata } in
      let q = Mat.identity 3 and r = m1x1 1.0 in
      match Dare.solve ~a ~b ~q ~r with
      | x ->
        let k = Dare.gain ~a ~b ~r x in
        Eig.is_stable_discrete ~margin:(-1e-9) (Mat.sub a (Mat.mul b k))
      | exception Dare.No_solution _ -> QCheck.assume_fail ())

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_quantize_idempotent;
      prop_quantize_in_range;
      prop_quantize_error_bounded;
      prop_stein_psd;
      prop_dare_stabilizing;
    ]


(* ------------------------------------------------------------------ *)
(* Round 2: edge cases and failure injection                           *)
(* ------------------------------------------------------------------ *)

let test_ss_mixed_domain_rejected () =
  let cont = first_order (-1.0) 1.0 1.0 0.0 in
  let disc = first_order ~domain:(Ss.Discrete 1.0) 0.5 1.0 1.0 0.0 in
  Alcotest.check_raises "mixed domains"
    (Invalid_argument "Ss.series: mixed time domains") (fun () ->
      ignore (Ss.series cont disc))

let test_ss_static_is_domain_agnostic () =
  let disc = first_order ~domain:(Ss.Discrete 1.0) 0.5 1.0 1.0 0.0 in
  let g = Ss.gain 1 2.0 in
  (* A zero-order gain composes with either domain. *)
  let s = Ss.series g disc in
  check_float_loose "gain propagates" 4.0 (Mat.get (Ss.dcgain s) 0 0)

let test_ss_add_output_disturbance () =
  let sys = first_order ~domain:(Ss.Discrete 1.0) 0.5 1.0 1.0 0.0 in
  let aug = Ss.add_output_disturbance sys in
  check_int "one extra input" 2 (Ss.inputs aug);
  (* The disturbance channel has unit feedthrough. *)
  check_float "feedthrough" 1.0 (Mat.get aug.Ss.d 0 1)

let test_ss_bad_period () =
  Alcotest.check_raises "bad period"
    (Invalid_argument "Ss.make: period must be positive") (fun () ->
      ignore (first_order ~domain:(Ss.Discrete 0.0) 0.5 1.0 1.0 0.0))

let test_hinf_regularizes_rank_deficient_d12 () =
  (* z has no direct u feedthrough at all: D12 = 0 is rank deficient and
     must be regularized internally. *)
  let a = m1x1 (-1.0) in
  let b = Mat.of_lists [ [ 1.0; 1.0 ] ] in
  let c = Mat.of_lists [ [ 1.0 ]; [ 1.0 ] ] in
  let d = Mat.of_lists [ [ 0.0; 0.0 ]; [ 0.1; 0.0 ] ] in
  let plant =
    { Hinf.sys = Ss.make ~a ~b ~c ~d (); part = { Hinf.nw = 1; nu = 1; nz = 1; ny = 1 } }
  in
  let { Hinf.controller; achieved_norm; gamma } = Hinf.synthesize plant in
  check_bool "stable" true (Ss.is_stable (Hinf.close_loop plant controller));
  check_bool "norm ok" true (achieved_norm <= (gamma *. 1.05) +. 1e-9)

let test_dk_structure_mismatch_rejected () =
  let plant = hinf_test_plant () in
  Alcotest.check_raises "tiling"
    (Invalid_argument "Dk.scale_plant: structure does not tile the z/w channels")
    (fun () ->
      ignore (Dk.scale_plant plant [ Ssv.Full (1, 1) ] [| 1.0 |]))

let test_ssv_sweep_continuous () =
  let sys = first_order (-1.0) 1.0 1.0 0.0 in
  let sweep = Ssv.sweep ~points:15 [ Ssv.Full (1, 1) ] sys in
  (* For a SISO low-pass, mu = |G| peaks at dc with value ~1. *)
  check_bool "peak near 1" true (Float.abs (sweep.Ssv.peak -. 1.0) < 0.05)

let test_care_hamiltonian_lqr_equivalence () =
  (* solve_hamiltonian on the standard LQR Hamiltonian must agree with
     solve. *)
  let a = Mat.of_lists [ [ 0.3; 1.0 ]; [ 0.0; -0.5 ] ] in
  let b = Mat.of_lists [ [ 0.0 ]; [ 1.0 ] ] in
  let q = Mat.identity 2 and r = m1x1 1.0 in
  let x1 = Care.solve ~a ~b ~q ~r in
  let g = Mat.mul3 b (Lu.inv r) (Mat.transpose b) in
  let h =
    Mat.blocks [ [ a; Mat.neg g ]; [ Mat.neg q; Mat.neg (Mat.transpose a) ] ]
  in
  let x2 = Care.solve_hamiltonian h in
  Alcotest.check mat "same solution" x1 x2

let test_lyap_observability_gramian_energy () =
  (* For a stable SISO system, C P_o C^T... trace of observability gramian
     equals the output energy of the initial-condition response. *)
  let a = 0.5 in
  let sys = first_order ~domain:(Ss.Discrete 1.0) a 1.0 1.0 0.0 in
  let q = Lyap.observability_gramian sys in
  (* sum over k of (a^k)^2 = 1/(1-a^2). *)
  check_float_loose "gramian" (1.0 /. (1.0 -. (a *. a))) (Mat.get q 0 0)

let test_quantize_count_precision () =
  (* Floating-point steps must not drop the last level. *)
  let c = Quantize.make ~minimum:0.2 ~maximum:2.0 ~step:0.1 in
  let l = Quantize.levels c in
  check_int "19 levels" 19 (Array.length l);
  check_bool "all distinct" true
    (Array.length l = List.length (List.sort_uniq compare (Array.to_list l)))

let round2_cases =
  [
    Alcotest.test_case "ss mixed domain" `Quick test_ss_mixed_domain_rejected;
    Alcotest.test_case "ss static domain-agnostic" `Quick
      test_ss_static_is_domain_agnostic;
    Alcotest.test_case "ss output disturbance" `Quick
      test_ss_add_output_disturbance;
    Alcotest.test_case "ss bad period" `Quick test_ss_bad_period;
    Alcotest.test_case "hinf regularization" `Quick
      test_hinf_regularizes_rank_deficient_d12;
    Alcotest.test_case "dk structure mismatch" `Quick
      test_dk_structure_mismatch_rejected;
    Alcotest.test_case "ssv continuous sweep" `Quick test_ssv_sweep_continuous;
    Alcotest.test_case "care hamiltonian equivalence" `Quick
      test_care_hamiltonian_lqr_equivalence;
    Alcotest.test_case "observability gramian" `Quick
      test_lyap_observability_gramian_energy;
    Alcotest.test_case "quantize level count" `Quick
      test_quantize_count_precision;
  ]


(* ------------------------------------------------------------------ *)
(* Pid                                                                 *)
(* ------------------------------------------------------------------ *)

(* Simple discrete plant driven by the PID: y' = 0.9 y + 0.1 u. *)
let pid_plant () =
  let y = ref 0.0 in
  fun u ->
    y := (0.9 *. !y) +. (0.1 *. u);
    !y

let test_pid_tracks_setpoint () =
  let pid =
    Pid.make ~gains:{ Pid.kp = 2.0; ki = 1.0; kd = 0.0 } ~period:0.1 ()
  in
  let plant = pid_plant () in
  let y = ref 0.0 in
  for _ = 1 to 300 do
    let u = Pid.step pid ~setpoint:2.0 ~measurement:!y in
    y := plant u
  done;
  check_bool "integral action removes offset" true (Float.abs (!y -. 2.0) < 0.02)

let test_pid_antiwindup () =
  (* Saturated command: the integrator must not wind up so far that
     recovery takes forever. *)
  let pid =
    Pid.make ~u_min:(-1.0) ~u_max:1.0
      ~gains:{ Pid.kp = 1.0; ki = 5.0; kd = 0.0 }
      ~period:0.1 ()
  in
  let plant = pid_plant () in
  let y = ref 0.0 in
  (* Unreachable setpoint for a while. *)
  for _ = 1 to 100 do
    y := plant (Pid.step pid ~setpoint:50.0 ~measurement:!y)
  done;
  (* Now an easy setpoint: with anti-windup the command leaves the rail
     within a few steps once the error flips. *)
  let recovered = ref false in
  for _ = 1 to 30 do
    let u = Pid.step pid ~setpoint:0.2 ~measurement:!y in
    y := plant u;
    if u < 1.0 then recovered := true
  done;
  check_bool "recovers from saturation" true !recovered

let test_pid_zn_table () =
  let g = Pid.tune_ziegler_nichols ~ku:4.0 ~tu:2.0 `Pid in
  check_float "kp" 2.4 g.Pid.kp;
  check_float "ki" 2.4 g.Pid.ki;
  check_float "kd" 0.6 g.Pid.kd;
  let p = Pid.tune_ziegler_nichols ~ku:4.0 ~tu:2.0 `P in
  check_float "pure P has no ki" 0.0 p.Pid.ki

let test_pid_reset () =
  let pid =
    Pid.make ~gains:{ Pid.kp = 1.0; ki = 1.0; kd = 0.0 } ~period:0.1 ()
  in
  let u1 = Pid.step pid ~setpoint:1.0 ~measurement:0.0 in
  ignore (Pid.step pid ~setpoint:1.0 ~measurement:0.0);
  Pid.reset pid;
  check_float "reset repeats" u1 (Pid.step pid ~setpoint:1.0 ~measurement:0.0)

let test_pid_relay_autotune () =
  (* A second-order oscillatory plant yields a limit cycle under relay
     feedback. *)
  let x1 = ref 0.1 and x2 = ref 0.0 in
  let plant u =
    (* Discretized mass-spring-damper-ish dynamics. *)
    let nx1 = !x1 +. (0.2 *. !x2) in
    let nx2 = !x2 +. (0.2 *. ((-1.0 *. !x1) -. (0.2 *. !x2) +. u)) in
    x1 := nx1;
    x2 := nx2;
    !x1
  in
  match Pid.relay_autotune ~plant ~period:0.2 () with
  | Some (ku, tu) ->
    check_bool "positive estimates" true (ku > 0.0 && tu > 0.0);
    (* Natural frequency 1 rad/s -> period ~ 2 pi. *)
    check_bool "period plausible" true (tu > 3.0 && tu < 13.0)
  | None -> Alcotest.fail "relay produced no limit cycle"

(* ------------------------------------------------------------------ *)
(* Reduce                                                              *)
(* ------------------------------------------------------------------ *)

let weakly_coupled_system () =
  (* Two modes: a strong slow one and a weak fast one. *)
  Ss.make ~domain:(Ss.Discrete 1.0)
    ~a:(Mat.of_lists [ [ 0.9; 0.0 ]; [ 0.0; 0.2 ] ])
    ~b:(Mat.of_lists [ [ 1.0 ]; [ 0.01 ] ])
    ~c:(Mat.of_lists [ [ 1.0; 0.01 ] ])
    ~d:(m1x1 0.0) ()

let test_reduce_hankel_descending () =
  let s = Reduce.hankel_singular_values (weakly_coupled_system ()) in
  check_int "two values" 2 (Vec.dim s);
  check_bool "descending and dominant" true (s.(0) > 10.0 *. s.(1))

let test_reduce_truncation_accuracy () =
  let sys = weakly_coupled_system () in
  let red = Reduce.balanced_truncation sys ~order:1 in
  check_int "reduced order" 1 (Ss.order red);
  check_bool "stable" true (Ss.is_stable red);
  (* The H-infinity error must respect the a-priori bound. *)
  let err = Ss.hinf_norm (Ss.parallel sys (Ss.gain 1 (-1.0) |> Ss.series red)) in
  let bound = Reduce.error_bound sys ~order:1 in
  check_bool "within twice-sum-of-tail bound" true (err <= bound +. 1e-6);
  (* And the dc gain barely moves for this weakly coupled system. *)
  check_bool "dc preserved" true
    (Float.abs (Mat.get (Ss.dcgain sys) 0 0 -. Mat.get (Ss.dcgain red) 0 0)
     < 0.05 *. Float.abs (Mat.get (Ss.dcgain sys) 0 0))

let test_reduce_tolerance_mode () =
  let sys = weakly_coupled_system () in
  let red = Reduce.truncate_to_tolerance sys ~tol:0.05 in
  check_int "weak mode dropped" 1 (Ss.order red)

let test_reduce_rejects_unstable () =
  let sys = first_order ~domain:(Ss.Discrete 1.0) 1.1 1.0 1.0 0.0 in
  Alcotest.check_raises "unstable"
    (Invalid_argument "Reduce: system must be stable") (fun () ->
      ignore (Reduce.balanced_truncation sys ~order:1))

(* ------------------------------------------------------------------ *)
(* Mpc                                                                 *)
(* ------------------------------------------------------------------ *)

let mpc_plant () =
  Ss.make ~domain:(Ss.Discrete 1.0)
    ~a:(Mat.of_lists [ [ 0.8 ] ])
    ~b:(m1x1 0.5)
    ~c:(m1x1 1.0)
    ~d:(m1x1 0.0) ()

let test_mpc_tracks () =
  let plant = mpc_plant () in
  let mpc =
    Mpc.make ~plant ~horizon:10 ~q:(m1x1 1.0) ~r:(m1x1 0.01) ()
  in
  let x = ref 0.0 in
  let y = ref 0.0 in
  for _ = 1 to 60 do
    let u = Mpc.step mpc ~measurement:[| !y |] ~reference:[| 3.0 |] in
    x := (0.8 *. !x) +. (0.5 *. u.(0));
    y := !x
  done;
  check_bool "tracks the reference" true (Float.abs (!y -. 3.0) < 0.15)

let test_mpc_horizon_and_prediction () =
  let plant = mpc_plant () in
  let mpc = Mpc.make ~plant ~horizon:5 ~q:(m1x1 1.0) ~r:(m1x1 0.1) () in
  check_int "horizon" 5 (Mpc.horizon mpc);
  check_int "no prediction before step" 0 (Array.length (Mpc.predicted_outputs mpc));
  ignore (Mpc.step mpc ~measurement:[| 0.0 |] ~reference:[| 1.0 |]);
  let pred = Mpc.predicted_outputs mpc in
  check_int "prediction horizon" 5 (Array.length pred);
  (* With cheap inputs the anticipated trajectory approaches the target. *)
  check_bool "prediction heads to target" true (pred.(4).(0) > pred.(0).(0) *. 0.9)

let test_mpc_effort_tradeoff () =
  (* Heavier input weighting means smaller first moves. *)
  let plant = mpc_plant () in
  let cheap = Mpc.make ~plant ~horizon:8 ~q:(m1x1 1.0) ~r:(m1x1 0.01) () in
  let costly = Mpc.make ~plant ~horizon:8 ~q:(m1x1 1.0) ~r:(m1x1 10.0) () in
  let u1 = Mpc.step cheap ~measurement:[| 0.0 |] ~reference:[| 1.0 |] in
  let u2 = Mpc.step costly ~measurement:[| 0.0 |] ~reference:[| 1.0 |] in
  check_bool "costly moves less" true (Float.abs u2.(0) < Float.abs u1.(0))

let test_mpc_rejects_bad_dims () =
  let plant = mpc_plant () in
  Alcotest.check_raises "bad q" (Invalid_argument "Mpc.make: Q must be ny x ny")
    (fun () ->
      ignore (Mpc.make ~plant ~horizon:3 ~q:(Mat.identity 2) ~r:(m1x1 1.0) ()))

let round3_cases =
  [
    Alcotest.test_case "pid tracks" `Quick test_pid_tracks_setpoint;
    Alcotest.test_case "pid antiwindup" `Quick test_pid_antiwindup;
    Alcotest.test_case "pid ZN table" `Quick test_pid_zn_table;
    Alcotest.test_case "pid reset" `Quick test_pid_reset;
    Alcotest.test_case "pid relay autotune" `Quick test_pid_relay_autotune;
    Alcotest.test_case "reduce hankel" `Quick test_reduce_hankel_descending;
    Alcotest.test_case "reduce accuracy" `Quick test_reduce_truncation_accuracy;
    Alcotest.test_case "reduce tolerance" `Quick test_reduce_tolerance_mode;
    Alcotest.test_case "reduce unstable" `Quick test_reduce_rejects_unstable;
    Alcotest.test_case "mpc tracks" `Quick test_mpc_tracks;
    Alcotest.test_case "mpc prediction" `Quick test_mpc_horizon_and_prediction;
    Alcotest.test_case "mpc effort tradeoff" `Quick test_mpc_effort_tradeoff;
    Alcotest.test_case "mpc bad dims" `Quick test_mpc_rejects_bad_dims;
  ]


(* ------------------------------------------------------------------ *)
(* Poly and Tf                                                         *)
(* ------------------------------------------------------------------ *)

let test_poly_arith () =
  let p = Poly.of_coefficients [ 1.0; 2.0 ] in
  (* (1 + 2x)^2 = 1 + 4x + 4x^2 *)
  check_bool "square" true
    (Poly.approx_equal (Poly.mul p p) (Poly.of_coefficients [ 1.0; 4.0; 4.0 ]));
  check_bool "sum" true
    (Poly.approx_equal (Poly.add p p) (Poly.of_coefficients [ 2.0; 4.0 ]));
  check_float "eval" 7.0 (Poly.eval p 3.0);
  check_int "degree" 1 (Poly.degree p);
  check_bool "derivative" true
    (Poly.approx_equal (Poly.derivative (Poly.mul p p))
       (Poly.of_coefficients [ 4.0; 8.0 ]))

let test_poly_roots () =
  let p = Poly.of_roots [ 1.0; -2.0; 0.5 ] in
  let rs =
    Poly.roots p |> Array.to_list
    |> List.map (fun (z : Complex.t) -> z.re)
    |> List.sort compare
  in
  (match rs with
  | [ a; b; c ] ->
    check_bool "roots" true
      (Float.abs (a +. 2.0) < 1e-6 && Float.abs (b -. 0.5) < 1e-6
      && Float.abs (c -. 1.0) < 1e-6)
  | _ -> Alcotest.fail "expected three roots");
  check_bool "normalize trims" true
    (Poly.degree (Poly.of_coefficients [ 1.0; 0.0; 0.0 ]) = 0)

let test_tf_roundtrip_ss () =
  (* G(s) = (s + 2) / (s^2 + 3 s + 5). *)
  let g =
    Tf.make ~num:(Poly.of_coefficients [ 2.0; 1.0 ])
      ~den:(Poly.of_coefficients [ 5.0; 3.0; 1.0 ])
      ()
  in
  let sys = Tf.to_ss g in
  check_int "order" 2 (Ss.order sys);
  let g2 = Tf.of_ss sys in
  (* Compare frequency responses (coefficients may differ by scaling). *)
  List.iter
    (fun w ->
      let r1 = Tf.frequency_response g w and r2 = Tf.frequency_response g2 w in
      check_bool
        (Printf.sprintf "response at %g" w)
        true
        (Complex.norm (Complex.sub r1 r2) < 1e-8))
    [ 0.0; 0.5; 2.0; 10.0 ]

let test_tf_matches_ss_freq () =
  (* The canonical realization must agree with Ss.freq_response. *)
  let g =
    Tf.make ~num:(Poly.of_coefficients [ 1.0 ])
      ~den:(Poly.of_coefficients [ 1.0; 1.0 ])
      ()
  in
  let sys = Tf.to_ss g in
  let w = 1.3 in
  let from_ss = Cmat.get (Ss.freq_response sys w) 0 0 in
  let from_tf = Tf.frequency_response g w in
  check_bool "same response" true
    (Complex.norm (Complex.sub from_ss from_tf) < 1e-9)

let test_tf_feedback_and_stability () =
  (* Unstable 1/(s-1) stabilized by gain 3: closed loop 1/(s+2). *)
  let g =
    Tf.make ~num:Poly.one ~den:(Poly.of_coefficients [ -1.0; 1.0 ]) ()
  in
  let k = Tf.make ~num:(Poly.of_coefficients [ 3.0 ]) ~den:Poly.one () in
  check_bool "open unstable" false (Tf.is_stable g);
  let cl = Tf.feedback g k in
  check_bool "closed stable" true (Tf.is_stable cl);
  check_bool "pole at -2" true
    (Float.abs ((Tf.poles cl).(0).Complex.re +. 2.0) < 1e-9)

let test_tf_series_parallel () =
  let g1 = Tf.make ~num:Poly.one ~den:(Poly.of_coefficients [ 1.0; 1.0 ]) () in
  let g2 =
    Tf.make ~num:(Poly.of_coefficients [ 2.0 ])
      ~den:(Poly.of_coefficients [ 2.0; 1.0 ]) ()
  in
  check_float_loose "series dc" 1.0 (Tf.dcgain (Tf.series g1 g2));
  check_float_loose "parallel dc" 2.0 (Tf.dcgain (Tf.parallel g1 g2))

let test_tf_improper_rejected () =
  Alcotest.check_raises "improper"
    (Invalid_argument "Tf.make: improper transfer function") (fun () ->
      ignore
        (Tf.make ~num:(Poly.of_coefficients [ 0.0; 0.0; 1.0 ]) ~den:(Poly.of_coefficients [ 1.0; 1.0 ]) ()))

let test_tf_discrete_dcgain () =
  (* z-domain: G(z) = 1 / (z - 0.5), dc at z=1 is 2. *)
  let g =
    Tf.make ~domain:(Ss.Discrete 1.0) ~num:Poly.one
      ~den:(Poly.of_coefficients [ -0.5; 1.0 ])
      ()
  in
  check_float_loose "dc" 2.0 (Tf.dcgain g);
  check_bool "stable" true (Tf.is_stable g)

let poly_tf_cases =
  [
    Alcotest.test_case "poly arith" `Quick test_poly_arith;
    Alcotest.test_case "poly roots" `Quick test_poly_roots;
    Alcotest.test_case "tf roundtrip" `Quick test_tf_roundtrip_ss;
    Alcotest.test_case "tf vs ss response" `Quick test_tf_matches_ss_freq;
    Alcotest.test_case "tf feedback" `Quick test_tf_feedback_and_stability;
    Alcotest.test_case "tf series/parallel" `Quick test_tf_series_parallel;
    Alcotest.test_case "tf improper" `Quick test_tf_improper_rejected;
    Alcotest.test_case "tf discrete" `Quick test_tf_discrete_dcgain;
  ]

let () =
  Alcotest.run "control"
    [
      ( "ss",
        [
          Alcotest.test_case "dims" `Quick test_ss_dims;
          Alcotest.test_case "dcgain" `Quick test_ss_dcgain;
          Alcotest.test_case "series" `Quick test_ss_series_gain;
          Alcotest.test_case "parallel" `Quick test_ss_parallel_gain;
          Alcotest.test_case "append" `Quick test_ss_append;
          Alcotest.test_case "static feedback" `Quick test_ss_feedback;
          Alcotest.test_case "feedback stabilizes" `Quick
            test_ss_feedback_stabilizes;
          Alcotest.test_case "simulate" `Quick test_ss_simulate_step;
          Alcotest.test_case "freq response" `Quick test_ss_freq_response;
          Alcotest.test_case "hinf norm lowpass" `Quick
            test_ss_hinf_norm_lowpass;
          Alcotest.test_case "hinf norm unstable" `Quick
            test_ss_hinf_norm_unstable;
          Alcotest.test_case "h2 norm" `Quick test_ss_h2_norm;
          Alcotest.test_case "lft identity" `Quick test_ss_lft_identity;
          Alcotest.test_case "transform invariance" `Quick
            test_ss_transform_invariance;
        ] );
      ( "discretize",
        [
          Alcotest.test_case "zoh scalar" `Quick test_zoh_scalar;
          Alcotest.test_case "zoh dc" `Quick test_zoh_preserves_dc;
          Alcotest.test_case "tustin roundtrip" `Quick test_tustin_roundtrip;
          Alcotest.test_case "tustin hinf" `Quick test_tustin_preserves_hinf;
          Alcotest.test_case "tustin stability" `Quick
            test_tustin_preserves_stability;
        ] );
      ( "lyap",
        [
          Alcotest.test_case "stein scalar" `Quick test_stein_scalar;
          Alcotest.test_case "stein residual" `Quick test_stein_residual;
          Alcotest.test_case "stein unstable" `Quick test_stein_unstable_raises;
          Alcotest.test_case "continuous" `Quick test_continuous_lyap;
          Alcotest.test_case "gramians" `Quick test_gramians;
        ] );
      ( "care",
        [
          Alcotest.test_case "scalar" `Quick test_care_scalar;
          Alcotest.test_case "random residual" `Quick test_care_residual_random;
          Alcotest.test_case "no solution" `Quick test_care_no_solution;
        ] );
      ( "dare",
        [
          Alcotest.test_case "golden ratio" `Quick test_dare_scalar_golden;
          Alcotest.test_case "random residual" `Quick test_dare_residual_random;
          Alcotest.test_case "stabilizes" `Quick test_dare_stabilizes_unstable;
        ] );
      ( "lqg",
        [
          Alcotest.test_case "stabilizes" `Quick test_lqg_stabilizes;
          Alcotest.test_case "lqr gain" `Quick test_lqr_gain_known;
          Alcotest.test_case "kalman dual" `Quick test_kalman_gain_dual;
        ] );
      ( "hinf",
        [
          Alcotest.test_case "continuous" `Quick test_hinf_continuous;
          Alcotest.test_case "gamma monotone" `Quick test_hinf_gamma_monotone;
          Alcotest.test_case "discrete" `Quick test_hinf_discrete;
          Alcotest.test_case "bad partition" `Quick test_hinf_bad_partition;
        ] );
      ( "ssv",
        [
          Alcotest.test_case "single full block" `Quick
            test_mu_single_full_block;
          Alcotest.test_case "diagonal scalars" `Quick test_mu_diagonal_scalars;
          Alcotest.test_case "scaling beats sigma" `Quick
            test_mu_scaling_beats_sigma;
          Alcotest.test_case "homogeneous" `Quick test_mu_homogeneous;
          Alcotest.test_case "lower below upper" `Quick
            test_mu_lower_below_upper;
          Alcotest.test_case "worst-case delta" `Quick
            test_mu_worst_case_delta_valid;
          Alcotest.test_case "repeated scalar" `Quick test_mu_repeated_scalar;
          Alcotest.test_case "validate" `Quick test_mu_validate;
          Alcotest.test_case "sweep" `Quick test_mu_sweep_runs;
        ] );
      ( "dk",
        [
          Alcotest.test_case "runs" `Quick test_dk_runs_and_certifies;
          Alcotest.test_case "no worse than hinf" `Quick
            test_dk_no_worse_than_hinf;
          Alcotest.test_case "scale roundtrip" `Quick
            test_dk_scale_plant_roundtrip;
        ] );
      ( "quantize",
        [
          Alcotest.test_case "levels" `Quick test_quantize_levels;
          Alcotest.test_case "project" `Quick test_quantize_project;
          Alcotest.test_case "radius" `Quick test_quantize_radius;
        ] );
      ("edge cases", round2_cases);
      ("pid/reduce/mpc", round3_cases);
      ("poly/tf", poly_tf_cases);
      ("properties", qcheck_cases);
    ]
