(* Development tool: model quality and synthesis feasibility diagnostics. *)

open Linalg

let () =
  let r = Yukta.Designs.get_records () in
  let check name spec u y =
    let model = Yukta.Design.identify spec ~u ~y in
    let u_n, y_n = Yukta.Design.normalize_records spec ~u ~y in
    (* One-step prediction fit of a refit (same data) ARX for reference. *)
    let arx = Sysid.Arx.fit ~na:4 ~nb:4 ~u:u_n ~y:y_n in
    let pred = Sysid.Arx.predict_one_step arx ~u:u_n ~y:y_n in
    let fit = Sysid.Validate.fit_percent ~actual:y_n ~predicted:pred in
    Printf.printf "%s: model order=%d stable=%b rho=%.3f\n" name
      (Control.Ss.order model)
      (Control.Ss.is_stable model)
      (Eig.spectral_radius model.Control.Ss.a);
    Array.iteri (fun i f -> Printf.printf "  output %d fit%% = %.1f\n" i f) fit;
    (* Static gains of the model: input columns vs outputs. *)
    Printf.printf "  dcgain =\n%s\n"
      (Format.asprintf "%a" Mat.pp (Control.Ss.dcgain model));
    model
  in
  let hw_spec = Yukta.Hw_layer.spec () in
  let hw_model = check "HW" hw_spec r.Yukta.Training.hw_u r.Yukta.Training.hw_y in
  let sw_spec = Yukta.Sw_layer.spec () in
  let _ = check "SW" sw_spec r.Yukta.Training.sw_u r.Yukta.Training.sw_y in
  (* Gamma feasibility: plant with tiny vs full guardband. *)
  List.iter
    (fun unc ->
      let spec = Yukta.Hw_layer.spec ~uncertainty:unc () in
      let plant, _ = Yukta.Design.generalized_plant spec ~model:hw_model in
      match Control.Hinf.synthesize plant with
      | { Control.Hinf.gamma; achieved_norm; _ } ->
        Printf.printf "HW uncertainty=%.2f: gamma=%.3f achieved=%.3f\n%!" unc
          gamma achieved_norm
      | exception Control.Hinf.Synthesis_failed m ->
        Printf.printf "HW uncertainty=%.2f: FAILED (%s)\n%!" unc m)
    [ 0.01; 0.10; 0.40 ]
