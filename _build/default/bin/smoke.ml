(* End-to-end smoke run: training, identification, mu-synthesis, and one
   workload under every scheme, with wall-clock timings. Used during
   development and as a quick health check; the real evaluation lives in
   bench/main.exe. *)

let timed label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%6.1fs] %s\n%!" (Unix.gettimeofday () -. t0) label;
  r

let () =
  let records = timed "training data" (fun () -> Yukta.Designs.get_records ()) in
  Printf.printf "  hw record: %d epochs\n%!" (Array.length records.Yukta.Training.hw_u);
  let hw = timed "hw mu-synthesis" (fun () -> Yukta.Designs.hw ()) in
  Printf.printf "  hw: mu=%.3f gamma=%.3f order=%d\n%!" hw.Yukta.Design.mu_peak
    hw.Yukta.Design.gamma
    (Yukta.Controller.order hw.Yukta.Design.controller);
  let sw = timed "sw mu-synthesis" (fun () -> Yukta.Designs.sw ()) in
  Printf.printf "  sw: mu=%.3f gamma=%.3f order=%d\n%!" sw.Yukta.Design.mu_peak
    sw.Yukta.Design.gamma
    (Yukta.Controller.order sw.Yukta.Design.controller);
  ignore (timed "lqg hw" (fun () -> Yukta.Designs.lqg_hw ()));
  ignore (timed "lqg sw" (fun () -> Yukta.Designs.lqg_sw ()));
  ignore (timed "lqg monolithic" (fun () -> Yukta.Designs.lqg_monolithic ()));
  let app = Board.Workload.by_name "blackscholes" in
  List.iter
    (fun scheme ->
      let r =
        timed (Yukta.Runtime.scheme_name scheme) (fun () ->
            Yukta.Runtime.run scheme [ app ])
      in
      let m = r.Yukta.Runtime.metrics in
      Printf.printf "  %-28s time=%7.1fs energy=%8.1fJ exd=%10.1f trips=%d done=%b\n%!"
        (Yukta.Runtime.scheme_name scheme)
        m.Board.Xu3.execution_time m.Board.Xu3.total_energy
        m.Board.Xu3.energy_delay m.Board.Xu3.trips r.Yukta.Runtime.completed)
    Yukta.Runtime.all_schemes
