(* Development tool: dump the HW SSV layer's targets, measurements and
   commands epoch by epoch. *)

open Board

let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "blackscholes" in
  let hw = Yukta.Designs.hw () in
  let ctrl = hw.Yukta.Design.controller in
  let opt = Yukta.Hw_layer.make_optimizer () in
  Yukta.Controller.reset ctrl;
  let board = Xu3.create [ Workload.by_name app ] in
  let ema = ref 0.0 and primed = ref false in
  for i = 1 to 420 do
    if not (Xu3.finished board) then begin
      let o = Xu3.run_epoch board 0.5 in
      let pl =
        Yukta.Heuristics.os_coordinated ~config:(Xu3.config board) ~outputs:o
      in
      Xu3.set_placement board pl;
      let v =
        (o.Xu3.power_big +. o.Xu3.power_little)
        /. (Float.max 0.2 o.Xu3.bips ** 2.0)
      in
      if !primed then ema := (0.7 *. !ema) +. (0.3 *. v)
      else (ema := v; primed := true);
      let meas = Yukta.Hw_layer.measurements o in
      let targets =
        if i mod 5 = 0 then
          Yukta.Optimizer.update opt ~objective:!ema ~measurements:meas
        else Yukta.Optimizer.targets opt
      in
      let u =
        Yukta.Controller.step ctrl ~measurements:meas ~targets
          ~externals:(Yukta.Hw_layer.externals_of_placement (Xu3.placement board))
      in
      let raw = Yukta.Controller.last_raw_command ctrl in
      Xu3.set_config board (Yukta.Hw_layer.config_of_command u);
      Printf.printf
        "%3d t=%5.1f | tgt p=%4.2f P=%4.2f | meas p=%5.2f P=%4.2f Pl=%5.3f T=%4.1f | raw=[%5.2f %5.2f %5.2f %5.2f] u=[%g %g %g %g] obj=%.4f\n"
        i (Xu3.time board) targets.(0) targets.(1) meas.(0) meas.(1) meas.(2)
        meas.(3) raw.(0) raw.(1) raw.(2) raw.(3) u.(0) u.(1) u.(2) u.(3) !ema
    end
  done
