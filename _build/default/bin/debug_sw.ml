(* Development tool: dump the SW SSV layer's commands epoch by epoch while
   the HW SSV layer also runs (the full Yukta scheme). *)

open Board

let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "blackscholes" in
  let hw = Yukta.Designs.hw () and sw = Yukta.Designs.sw () in
  let hw_ctrl = hw.Yukta.Design.controller in
  let sw_ctrl = sw.Yukta.Design.controller in
  Yukta.Controller.reset hw_ctrl;
  Yukta.Controller.reset sw_ctrl;
  let hw_opt = Yukta.Hw_layer.make_optimizer () in
  let sw_opt = Yukta.Sw_layer.make_optimizer () in
  let board = Xu3.create [ Workload.by_name app ] in
  let ema = ref 0.0 and primed = ref false in
  for i = 1 to 240 do
    if not (Xu3.finished board) then begin
      let o = Xu3.run_epoch board 0.5 in
      let v =
        (o.Xu3.power_big +. o.Xu3.power_little)
        /. (Float.max 0.2 o.Xu3.bips ** 2.0)
      in
      if !primed then ema := (0.5 *. !ema) +. (0.5 *. v)
      else (ema := v; primed := true);
      (* SW layer *)
      let sw_meas = Yukta.Sw_layer.measurements o in
      let sw_t =
        if i mod 5 = 0 then
          Yukta.Optimizer.update sw_opt ~objective:!ema ~measurements:sw_meas
        else Yukta.Optimizer.targets sw_opt
      in
      let u_sw =
        Yukta.Controller.step sw_ctrl ~measurements:sw_meas ~targets:sw_t
          ~externals:(Yukta.Sw_layer.externals_of_config (Xu3.config board))
      in
      Xu3.set_placement board (Yukta.Sw_layer.placement_of_command u_sw);
      (* HW layer *)
      let hw_meas = Yukta.Hw_layer.measurements o in
      let hw_t =
        if i mod 5 = 0 then
          Yukta.Optimizer.update hw_opt ~objective:!ema ~measurements:hw_meas
        else Yukta.Optimizer.targets hw_opt
      in
      let u_hw =
        Yukta.Controller.step hw_ctrl ~measurements:hw_meas ~targets:hw_t
          ~externals:
            (Yukta.Hw_layer.externals_of_placement (Xu3.placement board))
      in
      Xu3.set_config board (Yukta.Hw_layer.config_of_command u_hw);
      if i mod 4 = 0 then
        Printf.printf
          "%3d | swt=[%4.1f %4.1f %4.1f] swm=[%4.2f %4.2f %5.2f] pl=[tb=%g tpcb=%.1f tpcl=%.1f] | P=%4.2f p=%5.2f u=[%g %g %g %g] obj=%.4f\n"
          i sw_t.(0) sw_t.(1) sw_t.(2) sw_meas.(0) sw_meas.(1) sw_meas.(2)
          u_sw.(0) u_sw.(1) u_sw.(2) hw_meas.(1) hw_meas.(0) u_hw.(0) u_hw.(1)
          u_hw.(2) u_hw.(3) !ema
    end
  done
