(* Development tool: exhaustive static configuration sweep for one
   workload phase — the ground-truth E x D landscape controllers search. *)

open Board

let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "blackscholes" in
  let w = Workload.by_name app in
  (* Evaluate steady state of a held configuration on the dominant phase. *)
  let eval bc fb lc fl tb tpc_b tpc_l =
    let board = Xu3.create [ w ] in
    Xu3.set_config board
      { Xu3.big_cores = bc; little_cores = lc; freq_big = fb; freq_little = fl };
    Xu3.set_placement board
      { Xu3.threads_big = tb; tpc_big = tpc_b; tpc_little = tpc_l };
    (* Skip the serial prologue, then measure 10 s of steady state. *)
    Xu3.step board 15.0;
    ignore (Xu3.observe board);
    let e0 = Xu3.energy board and t0 = Xu3.time board in
    Xu3.step board 10.0;
    let o = Xu3.observe board in
    let p = (Xu3.energy board -. e0) /. (Xu3.time board -. t0) in
    let rate = p /. (Float.max 0.2 o.Xu3.bips ** 2.0) in
    (rate, o.Xu3.bips, p, o.Xu3.power_big, o.Xu3.power_little, Xu3.trip_count board)
  in
  let results = ref [] in
  List.iter
    (fun bc ->
      List.iter
        (fun fb ->
          List.iter
            (fun lc ->
              List.iter
                (fun fl ->
                  List.iter
                    (fun tb ->
                      List.iter
                        (fun tpc ->
                          let rate, bips, p, pb, pl, trips =
                            eval bc fb lc fl tb tpc tpc
                          in
                          (* Disqualify configs that live above the caps. *)
                          if pb <= 3.3 && pl <= 0.33 && trips = 0 then
                            results :=
                              (rate, (bc, fb, lc, fl, tb, tpc, bips, p))
                              :: !results)
                        [ 1.0; 2.0 ])
                    [ 4; 5; 6; 7; 8 ])
                [ 0.6; 1.0; 1.4 ])
            [ 1; 2; 4 ])
        [ 1.0; 1.2; 1.4; 1.6; 1.8; 2.0 ])
    [ 2; 3; 4 ];
  let sorted = List.sort compare !results in
  Printf.printf "%s: best static configurations (rate = W/BIPS^2)\n" app;
  List.iteri
    (fun i (rate, (bc, fb, lc, fl, tb, tpc, bips, p)) ->
      if i < 12 then
        Printf.printf
          "  rate=%.5f  bc=%d fb=%.1f lc=%d fl=%.1f tb=%d tpc=%.0f  bips=%5.2f P=%4.2f\n"
          rate bc fb lc fl tb tpc bips p)
    sorted
