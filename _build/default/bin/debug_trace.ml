(* Development tool: epoch-by-epoch trace of one scheme on one workload. *)

let () =
  let scheme_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "coord" in
  let app = if Array.length Sys.argv > 2 then Sys.argv.(2) else "blackscholes" in
  let scheme =
    match scheme_name with
    | "coord" -> Yukta.Runtime.Coordinated_heuristic
    | "dec" -> Yukta.Runtime.Decoupled_heuristic
    | "ssv1" -> Yukta.Runtime.Hw_ssv_os_heuristic
    | "ssv2" -> Yukta.Runtime.Hw_ssv_os_ssv
    | "lqgd" -> Yukta.Runtime.Lqg_decoupled
    | "lqgm" -> Yukta.Runtime.Lqg_monolithic
    | _ -> failwith "unknown scheme"
  in
  let w = Board.Workload.by_name app in
  let r = Yukta.Runtime.run ~collect_trace:true scheme [ w ] in
  Printf.printf "# time pbig psensor plittle bips temp fbig bigcores\n";
  Array.iteri
    (fun i (p : Yukta.Runtime.trace_point) ->
      if i mod 4 = 0 then
        Printf.printf "%7.1f %5.2f %5.2f %5.3f %6.2f %5.1f %4.1f %d\n" p.time
          p.power_big p.power_big_sensor p.power_little p.bips p.temperature
          p.freq_big p.big_cores)
    r.Yukta.Runtime.trace;
  let m = r.Yukta.Runtime.metrics in
  Printf.printf "# time=%.1f energy=%.1f exd=%.1f trips=%d\n"
    m.Board.Xu3.execution_time m.Board.Xu3.total_energy m.Board.Xu3.energy_delay
    m.Board.Xu3.trips
