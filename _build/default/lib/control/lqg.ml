open Linalg

let lqr_gain ~a ~b ~q ~r =
  let x = Dare.solve ~a ~b ~q ~r in
  Dare.gain ~a ~b ~r x

(* The filtering Riccati equation is the dual of the control one:
   P = A P A^T - A P C^T (C P C^T + V)^-1 C P A^T + W,
   solved by Dare on the transposed data. Predictor gain
   L = A P C^T (C P C^T + V)^-1. *)
let kalman_gain ~a ~c ~w ~v =
  let p = Dare.solve ~a:(Mat.transpose a) ~b:(Mat.transpose c) ~q:w ~r:v in
  let pct = Mat.mul p (Mat.transpose c) in
  let s = Mat.add (Mat.mul c pct) v in
  Mat.mul a (Lu.solve_right pct s)

let synthesize ~plant ~q ~r ~w ~v =
  (match plant.Ss.domain with
  | Ss.Discrete _ -> ()
  | Ss.Continuous -> invalid_arg "Lqg.synthesize: discrete plants only");
  let a = plant.Ss.a and b = plant.Ss.b and c = plant.Ss.c and d = plant.Ss.d in
  let k = lqr_gain ~a ~b ~q ~r in
  let l = kalman_gain ~a ~c ~w ~v in
  (* Predictor-based compensator:
     xh' = A xh + B u + L (y - C xh - D u), u = -K xh. *)
  let ak =
    Mat.add
      (Mat.sub (Mat.sub a (Mat.mul b k)) (Mat.mul l c))
      (Mat.mul3 l d k)
  in
  Ss.make ~domain:plant.Ss.domain ~a:ak ~b:l ~c:(Mat.neg k)
    ~d:(Mat.create (Mat.dims k |> fst) (Mat.dims l |> snd))
    ()
