(** Conversions between continuous- and discrete-time systems.

    Zero-order hold is exact for piecewise-constant inputs and is used to
    discretize physical models (e.g. the thermal RC network). The bilinear
    (Tustin) transform preserves stability and the H-infinity norm and is
    the bridge used by the discrete H-infinity synthesis path. *)

val c2d_zoh : Ss.t -> float -> Ss.t
(** Zero-order-hold discretization with the given period. *)

val c2d_tustin : Ss.t -> float -> Ss.t
(** Bilinear transform [s = (2/T)(z-1)/(z+1)].
    @raise Linalg.Lu.Singular if the plant has a pole at [2/T]. *)

val d2c_tustin : Ss.t -> Ss.t
(** Inverse bilinear transform [z = (1 + sT/2)/(1 - sT/2)].
    @raise Linalg.Lu.Singular if the plant has a pole at [z = -1]. *)
