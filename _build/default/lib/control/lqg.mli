(** Discrete-time LQG (Linear Quadratic Gaussian) synthesis.

    This is the state-of-the-art MIMO baseline the Yukta paper compares
    against (Pothukuchi et al., ISCA 2016): an LQR state feedback combined
    with a Kalman predictor. Unlike the SSV controllers, LQG accepts no
    output deviation bounds, no input quantization information, no external
    signals, and no uncertainty guardband. *)

val lqr_gain :
  a:Linalg.Mat.t ->
  b:Linalg.Mat.t ->
  q:Linalg.Mat.t ->
  r:Linalg.Mat.t ->
  Linalg.Mat.t
(** Optimal state feedback [K] for [u = -K x].
    @raise Dare.No_solution on unstabilizable data. *)

val kalman_gain :
  a:Linalg.Mat.t ->
  c:Linalg.Mat.t ->
  w:Linalg.Mat.t ->
  v:Linalg.Mat.t ->
  Linalg.Mat.t
(** Steady-state predictor gain [L] for process noise covariance [w] and
    measurement noise covariance [v].
    @raise Dare.No_solution on undetectable data. *)

val synthesize :
  plant:Ss.t ->
  q:Linalg.Mat.t ->
  r:Linalg.Mat.t ->
  w:Linalg.Mat.t ->
  v:Linalg.Mat.t ->
  Ss.t
(** Output-feedback LQG controller (from plant output [y] to plant input
    [u]) for a discrete plant: Kalman predictor plus LQR feedback. The
    returned controller has the plant's sampling period. *)
