open Linalg

type t = {
  plant : Ss.t;
  n : int;
  horizon : int;
  kalman : Mat.t;
  (* Prediction matrices: Y = f x + phi U, with Y the stacked outputs over
     the horizon and U the stacked inputs. *)
  f : Mat.t;
  phi : Mat.t;
  (* Precomputed solver: U* = gain_x * (stacked ref - f x). *)
  solve_gain : Mat.t;
  mutable xhat : Vec.t;
  mutable last_u : Vec.t;
  mutable last_prediction : Vec.t array;
}

let make ~plant ~horizon ~q ~r ?w ?v () =
  (match plant.Ss.domain with
  | Ss.Discrete _ -> ()
  | Ss.Continuous -> invalid_arg "Mpc.make: discrete plants only");
  if horizon < 1 then invalid_arg "Mpc.make: horizon must be >= 1";
  let n = Ss.order plant and nu = Ss.inputs plant and ny = Ss.outputs plant in
  if q.Mat.rows <> ny || q.Mat.cols <> ny then
    invalid_arg "Mpc.make: Q must be ny x ny";
  if r.Mat.rows <> nu || r.Mat.cols <> nu then
    invalid_arg "Mpc.make: R must be nu x nu";
  let w = match w with Some m -> m | None -> Mat.scalar n 0.05 in
  let v = match v with Some m -> m | None -> Mat.scalar ny 0.01 in
  let kalman = Lqg.kalman_gain ~a:plant.Ss.a ~c:plant.Ss.c ~w ~v in
  (* Build F and Phi: y_{k} = C A^{k} x + sum_{j<=k} C A^{k-j-1} B u_j
     (+ D u_k). *)
  let f = Mat.create (horizon * ny) n in
  let phi = Mat.create (horizon * ny) (horizon * nu) in
  let a_pow = Array.make (horizon + 1) (Mat.identity n) in
  for k = 1 to horizon do
    a_pow.(k) <- Mat.mul a_pow.(k - 1) plant.Ss.a
  done;
  for k = 0 to horizon - 1 do
    (* Predictions start one step ahead: y_{k+1} row block k. *)
    Mat.set_block f (k * ny) 0 (Mat.mul plant.Ss.c a_pow.(k + 1));
    for j = 0 to k do
      (* u applied at step j affects y_{k+1} through C A^{k-j} B. The
         direct D term would pair y_{k+1} with u_{k+1}, which is outside
         the decision vector, so it is omitted (identified models here are
         strictly proper one step ahead). *)
      Mat.set_block phi (k * ny) (j * nu)
        (Mat.mul3 plant.Ss.c a_pow.(k - j) plant.Ss.b)
    done
  done;
  (* Solver gain: (Phi^T Qbar Phi + Rbar)^-1 Phi^T Qbar. *)
  let qbar =
    Mat.init (horizon * ny) (horizon * ny) (fun i j ->
        if i / ny = j / ny then Mat.get q (i mod ny) (j mod ny) else 0.0)
  in
  let rbar =
    Mat.init (horizon * nu) (horizon * nu) (fun i j ->
        if i / nu = j / nu then Mat.get r (i mod nu) (j mod nu) else 0.0)
  in
  let h = Mat.add (Mat.mul3 (Mat.transpose phi) qbar phi) rbar in
  let solve_gain = Lu.solve h (Mat.mul (Mat.transpose phi) qbar) in
  {
    plant;
    n;
    horizon;
    kalman;
    f;
    phi;
    solve_gain;
    xhat = Vec.create n;
    last_u = Vec.create nu;
    last_prediction = [||];
  }

let reset t =
  t.xhat <- Vec.create t.n;
  t.last_u <- Vec.create (Ss.inputs t.plant);
  t.last_prediction <- [||]

let step t ~measurement ~reference =
  let ny = Ss.outputs t.plant and nu = Ss.inputs t.plant in
  if Vec.dim measurement <> ny then
    invalid_arg "Mpc.step: measurement dimension mismatch";
  if Vec.dim reference <> ny then
    invalid_arg "Mpc.step: reference dimension mismatch";
  (* Predictor update with the previous input. *)
  let innovation =
    Vec.sub measurement
      (Vec.add
         (Mat.mul_vec t.plant.Ss.c t.xhat)
         (Mat.mul_vec t.plant.Ss.d t.last_u))
  in
  t.xhat <-
    Vec.add
      (Vec.add
         (Mat.mul_vec t.plant.Ss.a t.xhat)
         (Mat.mul_vec t.plant.Ss.b t.last_u))
      (Mat.mul_vec t.kalman innovation);
  (* Horizon solve. *)
  let ref_stack =
    Vec.init (t.horizon * ny) (fun i -> reference.(i mod ny))
  in
  let free_response = Mat.mul_vec t.f t.xhat in
  let u_stack = Mat.mul_vec t.solve_gain (Vec.sub ref_stack free_response) in
  let u0 = Vec.slice u_stack 0 nu in
  t.last_u <- u0;
  (* Record the anticipated outputs for introspection. *)
  let y_stack = Vec.add free_response (Mat.mul_vec t.phi u_stack) in
  t.last_prediction <-
    Array.init t.horizon (fun k -> Vec.slice y_stack (k * ny) ny);
  u0

let horizon t = t.horizon

let predicted_outputs t = t.last_prediction
