(** Balanced truncation model reduction.

    Controller synthesis produces state dimensions that grow with the
    plant and weight orders; a hardware implementation (Section VI-D of
    the paper budgets a 20-state machine) wants the smallest controller
    that preserves the loop. Balanced truncation computes the balanced
    realization — where the controllability and observability gramians are
    equal and diagonal (the Hankel singular values) — and drops the states
    that are hardest to reach {e and} hardest to observe, with the classic
    additive error bound [2 * sum of discarded Hankel values]. *)

val hankel_singular_values : Ss.t -> Linalg.Vec.t
(** Descending Hankel singular values of a stable system. *)

val balanced_truncation : Ss.t -> order:int -> Ss.t
(** Reduce a {e stable} system to the given order.
    @raise Invalid_argument if [order] exceeds the system order or the
    system is unstable. *)

val truncate_to_tolerance : Ss.t -> tol:float -> Ss.t
(** Keep the states whose Hankel values exceed [tol * largest]. *)

val error_bound : Ss.t -> order:int -> float
(** The a-priori H-infinity error bound [2 * sum_{i>order} sigma_i]. *)
