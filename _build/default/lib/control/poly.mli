(** Dense univariate polynomials with real coefficients.

    Coefficients are stored in ascending order of degree:
    [p = c.(0) + c.(1) x + ... + c.(n) x^n]. The zero polynomial is the
    empty (or all-zero) array. Roots are computed as the eigenvalues of
    the companion matrix, reusing the library's QR eigensolver. *)

type t = float array

val zero : t
val one : t

val of_coefficients : float list -> t
(** Ascending order; trailing zeros trimmed. *)

val of_roots : float list -> t
(** Monic polynomial with the given real roots. *)

val degree : t -> int
(** Degree of the trimmed polynomial; [-1] for zero. *)

val normalize : t -> t
(** Trim trailing (near-)zero coefficients. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

val eval : t -> float -> float
(** Horner evaluation. *)

val eval_complex : t -> Complex.t -> Complex.t

val derivative : t -> t

val roots : t -> Complex.t array
(** All complex roots (degree many). @raise Invalid_argument on the zero
    polynomial. *)

val monic : t -> t
(** Divide by the leading coefficient. *)

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
