(** Discrete PID controllers.

    The paper's taxonomy (Table I) starts here: PID is the popular SISO
    workhorse — one goal, one knob, no channels for coordination, no
    uncertainty handling — and Section II-C contrasts its design flow
    (model in, controller out, nothing else specifiable) with SSV
    synthesis. The implementation is the standard positional form with
    derivative filtering and anti-windup clamping, discretized at the
    sampling period. *)

type gains = { kp : float; ki : float; kd : float }

type t

val make :
  ?derivative_filter:float ->
  ?u_min:float ->
  ?u_max:float ->
  gains:gains ->
  period:float ->
  unit ->
  t
(** [derivative_filter] is the pole of the derivative low-pass in (0, 1)
    (default 0.5; 0 disables filtering); [u_min]/[u_max] clamp the command
    with integrator anti-windup. *)

val reset : t -> unit

val step : t -> setpoint:float -> measurement:float -> float
(** One control period: returns the (clamped) command. *)

val tune_ziegler_nichols :
  ku:float -> tu:float -> [ `P | `Pi | `Pid ] -> gains
(** Classic Ziegler-Nichols table from the ultimate gain [ku] and
    oscillation period [tu]. *)

val relay_autotune :
  plant:(float -> float) -> period:float -> ?cycles:int -> ?amplitude:float ->
  unit -> (float * float) option
(** Relay-feedback experiment on a plant step function (input -> next
    measurement): estimates [(ku, tu)] from the induced limit cycle, or
    [None] if no oscillation emerges. *)
