(** Continuous-time algebraic Riccati equation solver.

    Solves [A^T X + X A - X B R^-1 B^T X + Q = 0] for the unique
    symmetric stabilizing solution, by the matrix sign function of the
    associated Hamiltonian (Roberts' method with Byers' determinant
    scaling). This inversion-only algorithm avoids an ordered Schur
    decomposition and is reliable for the modest problem sizes of
    controller synthesis. *)

exception No_solution of string
(** Raised when the Hamiltonian has imaginary-axis eigenvalues, the sign
    iteration fails, or the extracted solution does not stabilize. *)

val solve_hamiltonian : Linalg.Mat.t -> Linalg.Mat.t
(** [solve_hamiltonian h] for a [2n x 2n] Hamiltonian
    [h = [[A, -G]; [-Q, -A^T]]] returns the stabilizing solution [X] of the
    Riccati equation defined by [h]. Works for indefinite [G] and [Q] as
    needed by H-infinity synthesis.
    @raise No_solution as described above. *)

val solve :
  a:Linalg.Mat.t ->
  b:Linalg.Mat.t ->
  q:Linalg.Mat.t ->
  r:Linalg.Mat.t ->
  Linalg.Mat.t
(** Standard LQR-form CARE. [q] must be symmetric PSD and [r] symmetric PD.
    @raise No_solution as described above. *)

val residual :
  a:Linalg.Mat.t ->
  b:Linalg.Mat.t ->
  q:Linalg.Mat.t ->
  r:Linalg.Mat.t ->
  Linalg.Mat.t ->
  float
(** Frobenius norm of the Riccati residual for a candidate solution,
    normalized by [max 1 |X|]. Used by tests. *)
