type gains = { kp : float; ki : float; kd : float }

type t = {
  gains : gains;
  period : float;
  dfilter : float;
  u_min : float;
  u_max : float;
  mutable integral : float;
  mutable prev_error : float;
  mutable dstate : float;
  mutable primed : bool;
}

let make ?(derivative_filter = 0.5) ?(u_min = neg_infinity)
    ?(u_max = infinity) ~gains ~period () =
  if period <= 0.0 then invalid_arg "Pid.make: period must be positive";
  if derivative_filter < 0.0 || derivative_filter >= 1.0 then
    invalid_arg "Pid.make: derivative_filter must be in [0, 1)";
  if not (u_min < u_max) then invalid_arg "Pid.make: empty command range";
  {
    gains;
    period;
    dfilter = derivative_filter;
    u_min;
    u_max;
    integral = 0.0;
    prev_error = 0.0;
    dstate = 0.0;
    primed = false;
  }

let reset t =
  t.integral <- 0.0;
  t.prev_error <- 0.0;
  t.dstate <- 0.0;
  t.primed <- false

let step t ~setpoint ~measurement =
  let e = setpoint -. measurement in
  let de =
    if t.primed then (e -. t.prev_error) /. t.period else 0.0
  in
  t.prev_error <- e;
  t.primed <- true;
  (* Filtered derivative. *)
  t.dstate <- (t.dfilter *. t.dstate) +. ((1.0 -. t.dfilter) *. de);
  let integral_candidate = t.integral +. (e *. t.period) in
  let u_unclamped =
    (t.gains.kp *. e)
    +. (t.gains.ki *. integral_candidate)
    +. (t.gains.kd *. t.dstate)
  in
  let u = Float.min t.u_max (Float.max t.u_min u_unclamped) in
  (* Anti-windup: only integrate when not pushing further into
     saturation. *)
  if u = u_unclamped || (u = t.u_max && e < 0.0) || (u = t.u_min && e > 0.0)
  then t.integral <- integral_candidate;
  u

let tune_ziegler_nichols ~ku ~tu kind =
  match kind with
  | `P -> { kp = 0.5 *. ku; ki = 0.0; kd = 0.0 }
  | `Pi -> { kp = 0.45 *. ku; ki = 0.54 *. ku /. tu; kd = 0.0 }
  | `Pid ->
    { kp = 0.6 *. ku; ki = 1.2 *. ku /. tu; kd = 0.075 *. ku *. tu }

(* Relay feedback (Astrom-Hagglund): drive the plant with a bang-bang
   relay around zero error; the limit cycle's period and amplitude give
   the ultimate gain and period. *)
let relay_autotune ~plant ~period ?(cycles = 8) ?(amplitude = 1.0) () =
  let max_steps = 5000 in
  let y = ref (plant 0.0) in
  let crossings = ref [] in
  let y_max = ref neg_infinity and y_min = ref infinity in
  let step_count = ref 0 in
  let prev_sign = ref 0 in
  while List.length !crossings < (2 * cycles) + 1 && !step_count < max_steps do
    incr step_count;
    let u = if !y >= 0.0 then -.amplitude else amplitude in
    y := plant u;
    y_max := Float.max !y_max !y;
    y_min := Float.min !y_min !y;
    let sign = if !y >= 0.0 then 1 else -1 in
    if !prev_sign <> 0 && sign <> !prev_sign then
      crossings := Float.of_int !step_count :: !crossings;
    prev_sign := sign
  done;
  match !crossings with
  | c ->
    (* Discard the first transient crossings, average the rest. *)
    let c = List.rev c in
    if List.length c < 5 then None
    else begin
      let late = List.filteri (fun i _ -> i >= 2) c in
      let rec diffs = function
        | a :: (b :: _ as rest) -> (b -. a) :: diffs rest
        | _ -> []
      in
      let half_periods = diffs late in
      if half_periods = [] then None
      else begin
        let tu =
          2.0 *. period
          *. (List.fold_left ( +. ) 0.0 half_periods
             /. Float.of_int (List.length half_periods))
        in
        let a = (!y_max -. !y_min) /. 2.0 in
        if a <= 0.0 || tu <= 0.0 then None
        else Some (4.0 *. amplitude /. (Float.pi *. a), tu)
      end
    end
