(** SISO transfer functions.

    The classical rational representation [G = num / den] in [s]
    (continuous) or [z] (discrete), convertible both ways to state space:
    [to_ss] builds the controllable canonical realization, [of_ss]
    recovers the rational form through the Leverrier-Faddeev resolvent
    expansion. Interconnection mirrors {!Ss}. *)

type t = {
  num : Poly.t;
  den : Poly.t;
  domain : Ss.domain;
}

val make : ?domain:Ss.domain -> num:Poly.t -> den:Poly.t -> unit -> t
(** @raise Invalid_argument for a zero denominator or an improper
    transfer function (numerator degree above denominator degree). *)

val poles : t -> Complex.t array
val zeros : t -> Complex.t array

val dcgain : t -> float
(** Gain at [s = 0] (continuous) or [z = 1] (discrete); may be infinite
    for systems with integrators. *)

val eval : t -> Complex.t -> Complex.t
(** Evaluate at a point of the complex plane. *)

val frequency_response : t -> float -> Complex.t
(** At angular frequency [w]: [G(jw)] or [G(e^{jwT})]. *)

val is_stable : t -> bool

val series : t -> t -> t
val parallel : t -> t -> t

val feedback : ?sign:float -> t -> t -> t
(** [feedback g k] is [g / (1 - sign * g * k)] (default negative
    feedback). *)

val to_ss : t -> Ss.t
(** Controllable canonical realization (order = denominator degree). *)

val of_ss : Ss.t -> t
(** Exact rational form of a SISO state-space system.
    @raise Invalid_argument if the system is not SISO. *)

val pp : Format.formatter -> t -> unit
