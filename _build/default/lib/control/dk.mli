(** D-K iteration (mu-synthesis).

    Alternates between a K-step — H-infinity synthesis on the D-scaled
    generalized plant — and a D-step — recomputing the optimal
    structured-singular-value scales of the resulting closed loop and
    absorbing them (as constant scalings) into the plant. The iteration is
    not guaranteed to converge to the global optimum (the joint problem is
    non-convex) but in practice a handful of iterations produces a
    controller whose mu peak certifies robustness: [mu <= 1] means the
    closed loop tolerates every structured perturbation the designer
    declared (uncertainty guardband, quantization, interference) while
    meeting the weighted performance bounds. *)

type result = {
  controller : Ss.t;
  mu_peak : float;      (** Best certified mu upper bound across frequency. *)
  gamma : float;        (** H-infinity level of the winning K-step. *)
  history : float list; (** mu peak after each iteration, oldest first. *)
}

exception Synthesis_failed of string

val scale_plant : Hinf.plant -> Ssv.structure -> float array -> Hinf.plant
(** Absorb per-block scales into the disturbance/performance channels of a
    generalized plant: [z' = D_l z], [w = D_r^-1 w']. *)

val synthesize :
  ?iterations:int ->
  ?mu_points:int ->
  plant:Hinf.plant ->
  structure:Ssv.structure ->
  unit ->
  result
(** Run [iterations] (default 4) D-K rounds and return the controller with
    the lowest certified mu peak. The structure must tile the [nz x nw]
    disturbance-to-performance channel of the plant.
    @raise Synthesis_failed if the very first K-step is infeasible. *)
