open Linalg

let c2d_zoh sys period =
  (match sys.Ss.domain with
  | Ss.Continuous -> ()
  | Ss.Discrete _ -> invalid_arg "Discretize.c2d_zoh: already discrete");
  if period <= 0.0 then invalid_arg "Discretize.c2d_zoh: period must be > 0";
  let n = Ss.order sys and m = Ss.inputs sys in
  if n = 0 then { sys with Ss.domain = Ss.Discrete period }
  else begin
    (* exp([A B; 0 0] T) = [Ad Bd; 0 I]. *)
    let block =
      Mat.blocks
        [
          [ Mat.scale period sys.Ss.a; Mat.scale period sys.Ss.b ];
          [ Mat.create m n; Mat.create m m ];
        ]
    in
    let e = Expm.expm block in
    {
      sys with
      Ss.a = Mat.sub_matrix e 0 0 n n;
      b = Mat.sub_matrix e 0 n n m;
      domain = Ss.Discrete period;
    }
  end

(* Tustin with state scaling: given x' = Ax + Bu continuous,
   Ad = (I + AT/2)(I - AT/2)^-1, Bd = (I - AT/2)^-1 B sqrt(T),
   Cd = sqrt(T) C (I - AT/2)^-1, Dd = D + C (I - AT/2)^-1 B T/2.
   The sqrt(T) split makes the transform norm-preserving (an isometry of
   H-infinity), which is what the synthesis path needs. *)
let c2d_tustin sys period =
  (match sys.Ss.domain with
  | Ss.Continuous -> ()
  | Ss.Discrete _ -> invalid_arg "Discretize.c2d_tustin: already discrete");
  if period <= 0.0 then invalid_arg "Discretize.c2d_tustin: period must be > 0";
  let n = Ss.order sys in
  if n = 0 then { sys with Ss.domain = Ss.Discrete period }
  else begin
    let half = period /. 2.0 in
    let i = Mat.identity n in
    let m_minus = Mat.sub i (Mat.scale half sys.Ss.a) in
    let m_plus = Mat.add i (Mat.scale half sys.Ss.a) in
    let inv_minus = Lu.inv m_minus in
    let ad = Mat.mul m_plus inv_minus in
    let sqt = Float.sqrt period in
    let bd = Mat.scale sqt (Mat.mul inv_minus sys.Ss.b) in
    let cd = Mat.scale sqt (Mat.mul sys.Ss.c inv_minus) in
    let dd =
      Mat.add sys.Ss.d (Mat.scale half (Mat.mul3 sys.Ss.c inv_minus sys.Ss.b))
    in
    { Ss.a = ad; b = bd; c = cd; d = dd; domain = Ss.Discrete period }
  end

let d2c_tustin sys =
  match sys.Ss.domain with
  | Ss.Continuous -> invalid_arg "Discretize.d2c_tustin: already continuous"
  | Ss.Discrete period ->
    let n = Ss.order sys in
    if n = 0 then { sys with Ss.domain = Ss.Continuous }
    else begin
      let i = Mat.identity n in
      let m_plus = Mat.add i sys.Ss.a in
      let inv_plus = Lu.inv m_plus in
      let ac = Mat.scale (2.0 /. period) (Mat.mul (Mat.sub sys.Ss.a i) inv_plus) in
      let bc = Mat.scale (2.0 /. Float.sqrt period) (Mat.mul inv_plus sys.Ss.b) in
      let cc = Mat.scale (2.0 /. Float.sqrt period) (Mat.mul sys.Ss.c inv_plus) in
      let dc =
        Mat.sub sys.Ss.d (Mat.mul3 sys.Ss.c inv_plus sys.Ss.b)
      in
      { Ss.a = ac; b = bc; c = cc; d = dc; domain = Ss.Continuous }
    end
