open Linalg

(* Square-root balanced truncation: factor the gramians P = R R^T and
   Q = L L^T (here via symmetric eigendecomposition), take the SVD of
   L^T R = U S V^T; the projection matrices are
   T = R V S^{-1/2} and W = L U S^{-1/2}, giving the balanced realization
   (W^T A T, W^T B, C T). *)

let gramian_factor g =
  let values, vectors = Eig.symmetric (Mat.symmetrize g) in
  let n = Vec.dim values in
  (* Clip tiny negative eigenvalues from numerical symmetrization. *)
  let roots = Array.map (fun v -> Float.sqrt (Float.max 0.0 v)) values in
  Mat.mul vectors (Mat.diag (Vec.init n (fun i -> roots.(i))))

let balanced_projection sys =
  if not (Ss.is_stable sys) then
    invalid_arg "Reduce: system must be stable";
  let p = Lyap.controllability_gramian sys in
  let q = Lyap.observability_gramian sys in
  let r = gramian_factor p in
  let l = gramian_factor q in
  let u, s, v = Svd.decompose (Mat.mul (Mat.transpose l) r) in
  (r, l, u, s, v)

let hankel_singular_values sys =
  let _, _, _, s, _ = balanced_projection sys in
  s

let balanced_truncation sys ~order =
  let n = Ss.order sys in
  if order <= 0 || order > n then
    invalid_arg "Reduce.balanced_truncation: order out of range";
  if not (Ss.is_stable sys) then invalid_arg "Reduce: system must be stable";
  if order = n then sys
  else begin
    let r, l, u, s, v = balanced_projection sys in
    (* Guard rank deficiency: don't keep states with negligible energy. *)
    let keep = ref order in
    while !keep > 1 && s.(!keep - 1) < 1e-12 *. s.(0) do
      decr keep
    done;
    let k = !keep in
    let s_inv_sqrt =
      Mat.diag (Vec.init k (fun i -> 1.0 /. Float.sqrt s.(i)))
    in
    let vk = Mat.sub_matrix v 0 0 (Mat.dims v |> fst) k in
    let uk = Mat.sub_matrix u 0 0 (Mat.dims u |> fst) k in
    let t = Mat.mul3 r vk s_inv_sqrt in
    let w = Mat.mul3 l uk s_inv_sqrt in
    let wt = Mat.transpose w in
    Ss.make ~domain:sys.Ss.domain ~a:(Mat.mul3 wt sys.Ss.a t)
      ~b:(Mat.mul wt sys.Ss.b) ~c:(Mat.mul sys.Ss.c t) ~d:sys.Ss.d ()
  end

let truncate_to_tolerance sys ~tol =
  let s = hankel_singular_values sys in
  let n = Vec.dim s in
  if n = 0 then sys
  else begin
    let cutoff = tol *. s.(0) in
    let order = ref 0 in
    Array.iter (fun x -> if x > cutoff then incr order) s;
    balanced_truncation sys ~order:(max 1 !order)
  end

let error_bound sys ~order =
  let s = hankel_singular_values sys in
  let acc = ref 0.0 in
  Array.iteri (fun i x -> if i >= order then acc := !acc +. x) s;
  2.0 *. !acc
