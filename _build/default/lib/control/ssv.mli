(** Structured Singular Value (SSV, "mu") analysis.

    Given a complex matrix [M] seen by a structured perturbation
    [Delta = diag(Delta_1, ..., Delta_k)], the SSV is

    [mu(M) = 1 / min { sigma_max(Delta) | det(I - M Delta) = 0 }]

    (and [0] if no structured [Delta] makes the loop singular). Computing
    [mu] exactly is NP-hard; as in practice we compute:
    - an {e upper bound} [min_D sigma_max(D_l M D_r^-1)] over the diagonal
      scalings [D] that commute with the structure (Osborne balancing
      followed by per-block coordinate descent), and
    - a {e lower bound} by a power-like alignment iteration that constructs
      an explicit worst-case [Delta] (any structured [Delta] with
      [rho(M Delta) = r] certifies [mu >= r]).

    A robustly stable/performant design is certified by [mu <= 1] across
    frequency (main loop theorem). *)

type block =
  | Full of int * int
      (** [Full (p, q)]: a full complex block; [Delta_i] is [q x p],
          consuming [p] rows (outputs [z_i]) and [q] columns (inputs
          [w_i]) of [M]. *)
  | Repeated of int
      (** [Repeated n]: repeated complex scalar [delta * I_n]. *)

type structure = block list

val block_rows : structure -> int
(** Total rows of [M] the structure consumes. *)

val block_cols : structure -> int

val validate : structure -> Linalg.Cmat.t -> unit
(** @raise Invalid_argument if the structure does not tile [M]. *)

type bound = {
  value : float;
  scales : float array;  (** One positive scale per block (upper bound). *)
}

val mu_upper : structure -> Linalg.Cmat.t -> bound
(** Scaled-norm upper bound with optimized per-block D scales. *)

val mu_lower : ?restarts:int -> structure -> Linalg.Cmat.t -> float
(** Alignment-iteration lower bound. *)

val worst_case_delta : structure -> Linalg.Cmat.t -> Linalg.Cmat.t * float
(** The structured [Delta] (unit norm) found by the lower-bound search and
    the associated [rho(M Delta)] certificate. *)

type frequency_sweep = {
  peak : float;                  (** Peak upper bound over frequency. *)
  peak_frequency : float;
  peak_scales : float array;     (** D scales at the peak. *)
  lower_peak : float;            (** Peak lower bound over frequency. *)
  frequencies : float array;
  upper_bounds : float array;
}

val sweep : ?points:int -> structure -> Ss.t -> frequency_sweep
(** Evaluate the mu upper bound of a stable system's frequency response
    over a log-spaced grid (plus dc and Nyquist for discrete systems). *)
