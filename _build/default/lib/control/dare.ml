open Linalg

exception No_solution of string

(* SDA-I doubling (Chu, Fan, Lin):
     A_{k+1} = A_k (I + G_k H_k)^-1 A_k
     G_{k+1} = G_k + A_k (I + G_k H_k)^-1 G_k A_k^T
     H_{k+1} = H_k + A_k^T H_k (I + G_k H_k)^-1 A_k
   with A_0 = A, G_0 = B R^-1 B^T, H_0 = Q; H_k converges to X. *)
let solve ~a ~b ~q ~r =
  let n = a.Mat.rows in
  if not (Mat.is_square a) then invalid_arg "Dare.solve: A not square";
  if b.Mat.rows <> n then invalid_arg "Dare.solve: B rows mismatch";
  let g0 =
    try Mat.mul3 b (Lu.inv r) (Mat.transpose b)
    with Lu.Singular -> raise (No_solution "R is singular")
  in
  let ak = ref (Mat.copy a) in
  let gk = ref g0 in
  let hk = ref (Mat.symmetrize q) in
  let i = Mat.identity n in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < 100 do
    incr iter;
    let w = Mat.add i (Mat.mul !gk !hk) in
    let winv =
      try Lu.inv w
      with Lu.Singular -> raise (No_solution "doubling iterate singular")
    in
    let wa = Mat.mul winv !ak in
    let a_next = Mat.mul !ak wa in
    let g_next =
      Mat.symmetrize (Mat.add !gk (Mat.mul3 !ak (Mat.mul winv !gk) (Mat.transpose !ak)))
    in
    let h_next =
      Mat.symmetrize
        (Mat.add !hk (Mat.mul (Mat.transpose !ak) (Mat.mul !hk wa)))
    in
    let delta =
      Mat.norm_fro (Mat.sub h_next !hk) /. Float.max 1.0 (Mat.norm_fro h_next)
    in
    ak := a_next;
    gk := g_next;
    hk := h_next;
    if delta < 1e-14 then converged := true;
    if not (Float.is_finite (Mat.norm_fro h_next)) then
      raise (No_solution "doubling iteration diverged")
  done;
  if not !converged then raise (No_solution "doubling did not converge");
  !hk

let gain ~a ~b ~r x =
  let btx = Mat.mul (Mat.transpose b) x in
  let s = Mat.add r (Mat.mul btx b) in
  Lu.solve s (Mat.mul btx a)

let residual ~a ~b ~q ~r x =
  let k = gain ~a ~b ~r x in
  let atxa = Mat.mul3 (Mat.transpose a) x a in
  let correction =
    Mat.mul (Mat.transpose (Mat.mul (Mat.mul (Mat.transpose b) x) a)) k
  in
  let res = Mat.sub (Mat.add (Mat.sub atxa correction) q) x in
  Mat.norm_fro res /. Float.max 1.0 (Mat.norm_fro x)
