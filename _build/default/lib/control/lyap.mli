(** Lyapunov equation solvers.

    The discrete (Stein) equation [X = A X A^T + Q] is solved by the Smith
    doubling iteration, quadratically convergent for Schur-stable [A]. The
    continuous equation [A X + X A^T + Q = 0] is reduced to a Stein
    equation through the Cayley transform. *)

val stein : Linalg.Mat.t -> Linalg.Mat.t -> Linalg.Mat.t
(** [stein a q] solves [X = A X A^T + Q] for Schur-stable [a]; the result
    is symmetrized. @raise Failure if [a] is not Schur stable (the
    iteration diverges). *)

val continuous : Linalg.Mat.t -> Linalg.Mat.t -> Linalg.Mat.t
(** [continuous a q] solves [A X + X A^T + Q = 0] for Hurwitz-stable [a].
    @raise Failure if [a] is not Hurwitz stable. *)

val controllability_gramian : Ss.t -> Linalg.Mat.t
(** Gramian [P] with [A P A^T - P + B B^T = 0] (discrete) or
    [A P + P A^T + B B^T = 0] (continuous). *)

val observability_gramian : Ss.t -> Linalg.Mat.t
