(** Finite-horizon Model Predictive Control.

    The third MIMO design the paper's taxonomy covers (Table I, via
    [34]): at every period, predict the outputs over a horizon from the
    current state estimate, solve the batch least-squares problem

    [min_U  sum_k |y_k - ref|^2_Q + |u_k|^2_R]

    and apply only the first input (receding horizon). Like LQG — and
    unlike SSV — MPC has no external-signal channels, no deviation-bound
    vocabulary, and no uncertainty guardband; its native strength,
    constraint handling, is represented here by saturating the applied
    command. State estimation uses a steady-state Kalman predictor. *)

type t

val make :
  plant:Ss.t ->
  horizon:int ->
  q:Linalg.Mat.t ->
  r:Linalg.Mat.t ->
  ?w:Linalg.Mat.t ->
  ?v:Linalg.Mat.t ->
  unit ->
  t
(** [q] weights output errors ([ny x ny] PSD), [r] input effort
    ([nu x nu] PD); [w]/[v] are the Kalman covariances (defaults 0.05 I /
    0.01 I). The plant must be discrete.
    @raise Invalid_argument on dimension errors;
    @raise Dare.No_solution if the Kalman design fails. *)

val reset : t -> unit

val step : t -> measurement:Linalg.Vec.t -> reference:Linalg.Vec.t -> Linalg.Vec.t
(** One period: update the state estimate from the measurement, solve the
    horizon problem for the given (constant-over-horizon) reference, and
    return the first input move. *)

val horizon : t -> int

val predicted_outputs : t -> Linalg.Vec.t array
(** The output trajectory the last solve anticipated (for tests and
    introspection); empty before the first {!step}. *)
