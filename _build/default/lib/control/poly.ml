open Linalg

type t = float array

let zero = [||]

let one = [| 1.0 |]

let normalize p =
  let n = ref (Array.length p) in
  while !n > 0 && Float.abs p.(!n - 1) <= 1e-300 do
    decr n
  done;
  Array.sub p 0 !n

let of_coefficients l = normalize (Array.of_list l)

let degree p = Array.length (normalize p) - 1

let add a b =
  let n = max (Array.length a) (Array.length b) in
  normalize
    (Array.init n (fun i ->
         (if i < Array.length a then a.(i) else 0.0)
         +. if i < Array.length b then b.(i) else 0.0))

let scale s p = normalize (Array.map (fun c -> s *. c) p)

let sub a b = add a (scale (-1.0) b)

let mul a b =
  let a = normalize a and b = normalize b in
  if Array.length a = 0 || Array.length b = 0 then zero
  else begin
    let r = Array.make (Array.length a + Array.length b - 1) 0.0 in
    Array.iteri
      (fun i ai -> Array.iteri (fun j bj -> r.(i + j) <- r.(i + j) +. (ai *. bj)) b)
      a;
    normalize r
  end

let of_roots rs =
  List.fold_left (fun acc r -> mul acc [| -.r; 1.0 |]) one rs

let eval p x =
  let acc = ref 0.0 in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let eval_complex p z =
  let acc = ref Complex.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Complex.add (Complex.mul !acc z) { Complex.re = p.(i); im = 0.0 }
  done;
  !acc

let derivative p =
  if Array.length p <= 1 then zero
  else
    normalize
      (Array.init (Array.length p - 1) (fun i -> Float.of_int (i + 1) *. p.(i + 1)))

let monic p =
  let p = normalize p in
  if Array.length p = 0 then invalid_arg "Poly.monic: zero polynomial";
  scale (1.0 /. p.(Array.length p - 1)) p

let roots p =
  let p = monic p in
  let n = Array.length p - 1 in
  if n < 0 then invalid_arg "Poly.roots: zero polynomial"
  else if n = 0 then [||]
  else begin
    (* Companion matrix of the monic polynomial. *)
    let companion =
      Mat.init n n (fun i j ->
          if j = n - 1 then -.p.(i)
          else if i = j + 1 then 1.0
          else 0.0)
    in
    Eig.eigenvalues companion
  end

let approx_equal ?(tol = 1e-9) a b =
  let a = normalize a and b = normalize b in
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a b

let pp fmt p =
  let p = normalize p in
  if Array.length p = 0 then Format.fprintf fmt "0"
  else
    Array.iteri
      (fun i c ->
        if i = 0 then Format.fprintf fmt "%g" c
        else Format.fprintf fmt " %+g x^%d" c i)
      p
