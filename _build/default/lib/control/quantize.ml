type channel = { minimum : float; maximum : float; step : float }

let make ~minimum ~maximum ~step =
  if not (minimum < maximum) then
    invalid_arg "Quantize.make: minimum must be below maximum";
  if not (step > 0.0) then invalid_arg "Quantize.make: step must be positive";
  { minimum; maximum; step }

let count c =
  1 + int_of_float (Float.round ((c.maximum -. c.minimum) /. c.step))

let levels c =
  Array.init (count c) (fun i ->
      Float.min c.maximum (c.minimum +. (Float.of_int i *. c.step)))

let project c x =
  let clamped = Float.min c.maximum (Float.max c.minimum x) in
  let k = Float.round ((clamped -. c.minimum) /. c.step) in
  Float.min c.maximum (c.minimum +. (k *. c.step))

let project_vec channels v =
  if Array.length channels <> Linalg.Vec.dim v then
    invalid_arg "Quantize.project_vec: dimension mismatch";
  Array.mapi (fun i x -> project channels.(i) x) v

let quantization_radius c = c.step /. 2.0

let span c = c.maximum -. c.minimum

let relative_uncertainty c = quantization_radius c /. (span c /. 2.0)
