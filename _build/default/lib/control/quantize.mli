(** Actuator saturation and quantization.

    SSV design takes, for every input, a description of its allowed
    discrete values (Section II-B of the paper): a range plus a step. At
    runtime the controller's continuous command is projected onto that
    grid; at design time the projection error is converted into an
    uncertainty radius that is folded into the guardband, which is exactly
    how the "Delta_in" block of the Delta-N representation is realized. *)

type channel = { minimum : float; maximum : float; step : float }

val make : minimum:float -> maximum:float -> step:float -> channel
(** @raise Invalid_argument unless [minimum < maximum] and [step > 0]. *)

val levels : channel -> float array
(** All representable values, ascending: [minimum, minimum+step, ...]. *)

val count : channel -> int
(** Number of representable values. *)

val project : channel -> float -> float
(** Clamp into range, then round to the nearest grid point. *)

val project_vec : channel array -> Linalg.Vec.t -> Linalg.Vec.t

val quantization_radius : channel -> float
(** Worst-case projection error for in-range commands: [step / 2]. *)

val relative_uncertainty : channel -> float
(** Quantization radius normalized by the half-range: the multiplicative
    uncertainty this input contributes to the guardband. *)

val span : channel -> float
(** [maximum - minimum]. *)
