(** Discrete-time algebraic Riccati equation solver.

    Solves [X = A^T X A - A^T X B (R + B^T X B)^-1 B^T X A + Q] for the
    symmetric stabilizing solution, using the structure-preserving doubling
    algorithm (SDA), which converges quadratically under stabilizability
    and detectability. *)

exception No_solution of string

val solve :
  a:Linalg.Mat.t ->
  b:Linalg.Mat.t ->
  q:Linalg.Mat.t ->
  r:Linalg.Mat.t ->
  Linalg.Mat.t
(** @raise No_solution if the doubling iteration breaks down or fails to
    converge (unstabilizable/undetectable data). *)

val gain : a:Linalg.Mat.t -> b:Linalg.Mat.t -> r:Linalg.Mat.t -> Linalg.Mat.t -> Linalg.Mat.t
(** [gain ~a ~b ~r x] is the optimal feedback gain
    [K = (R + B^T X B)^-1 B^T X A], so that [u = -K x]. *)

val residual :
  a:Linalg.Mat.t ->
  b:Linalg.Mat.t ->
  q:Linalg.Mat.t ->
  r:Linalg.Mat.t ->
  Linalg.Mat.t ->
  float
(** Normalized Frobenius residual of a candidate solution; used by tests. *)
