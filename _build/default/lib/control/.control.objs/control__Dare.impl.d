lib/control/dare.ml: Float Linalg Lu Mat
