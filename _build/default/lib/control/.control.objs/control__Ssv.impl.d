lib/control/ssv.ml: Array Cmat Complex Eig Float Linalg List Mat Random Ss Svd
