lib/control/mpc.ml: Array Linalg Lqg Lu Mat Ss Vec
