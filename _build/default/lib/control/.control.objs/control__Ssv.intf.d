lib/control/ssv.mli: Linalg Ss
