lib/control/reduce.ml: Array Eig Float Linalg Lyap Mat Ss Svd Vec
