lib/control/care.ml: Float Linalg Lu Mat Qr
