lib/control/ss.mli: Complex Format Linalg
