lib/control/quantize.ml: Array Float Linalg
