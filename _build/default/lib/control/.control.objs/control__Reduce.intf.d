lib/control/reduce.mli: Linalg Ss
