lib/control/hinf.ml: Array Care Discretize Eig Float Linalg Lu Mat Option Ss Svd
