lib/control/poly.ml: Array Complex Eig Float Format Linalg List Mat
