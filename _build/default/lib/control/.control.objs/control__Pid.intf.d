lib/control/pid.mli:
