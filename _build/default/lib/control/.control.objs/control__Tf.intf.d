lib/control/tf.mli: Complex Format Poly Ss
