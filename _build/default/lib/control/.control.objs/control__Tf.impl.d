lib/control/tf.ml: Array Complex Float Format Linalg Mat Poly Printf Ss
