lib/control/quantize.mli: Linalg
