lib/control/dk.ml: Array Hinf Linalg List Mat Ss Ssv Vec
