lib/control/discretize.mli: Ss
