lib/control/lqg.ml: Dare Linalg Lu Mat Ss
