lib/control/lyap.mli: Linalg Ss
