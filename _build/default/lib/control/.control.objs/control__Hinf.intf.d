lib/control/hinf.mli: Ss
