lib/control/lyap.ml: Float Linalg Lu Mat Ss
