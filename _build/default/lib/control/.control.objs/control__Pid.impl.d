lib/control/pid.ml: Float List
