lib/control/ss.ml: Array Cmat Complex Eig Float Format Linalg Lu Mat Printf Svd Vec
