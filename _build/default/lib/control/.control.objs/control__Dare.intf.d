lib/control/dare.mli: Linalg
