lib/control/poly.mli: Complex Format
