lib/control/care.mli: Linalg
