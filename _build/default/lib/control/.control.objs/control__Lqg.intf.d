lib/control/lqg.mli: Linalg Ss
