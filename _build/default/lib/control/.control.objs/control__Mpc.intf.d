lib/control/mpc.mli: Linalg Ss
