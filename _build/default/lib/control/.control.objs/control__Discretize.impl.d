lib/control/discretize.ml: Expm Float Linalg Lu Mat Ss
