lib/control/dk.mli: Hinf Ss Ssv
