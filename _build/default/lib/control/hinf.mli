(** H-infinity output-feedback synthesis.

    The generalized plant maps [[w; u] -> [z; y]]: [w] are exogenous inputs
    (disturbances, references, perturbation inputs), [u] the control
    inputs, [z] the regulated outputs (weighted errors, perturbation
    outputs), and [y] the measurements. Synthesis finds a controller
    [u = K y] that internally stabilizes the loop and makes the closed-loop
    norm [||F_l(P,K)||_inf] less than a bound [gamma], minimized by
    bisection.

    Continuous-time plants use the DGKF two-Riccati central controller
    (Doyle, Glover, Khargonekar, Francis 1989), with the Riccati equations
    solved by the matrix sign function. Discrete-time plants are handled
    through the norm-preserving bilinear transform: map the plant to
    continuous time, synthesize, and map the controller back at the same
    sampling period.

    Every candidate controller is validated a posteriori on the true
    closed loop (stability + norm), so the bisection is trustworthy even
    when the plant violates the textbook regularity assumptions (e.g. a
    nonzero [D11]). *)

type partition = {
  nw : int;  (** exogenous inputs *)
  nu : int;  (** control inputs *)
  nz : int;  (** regulated outputs *)
  ny : int;  (** measurements *)
}

type plant = { sys : Ss.t; part : partition }

type result = {
  controller : Ss.t;
  gamma : float;          (** Bisection level at which synthesis succeeded. *)
  achieved_norm : float;  (** Verified closed-loop H-infinity norm. *)
}

exception Synthesis_failed of string

val validate_partition : plant -> unit
(** @raise Invalid_argument if the partition does not match the system
    dimensions. *)

val close_loop : plant -> Ss.t -> Ss.t
(** Closed loop [F_l(P, K)] from [w] to [z]. *)

val synthesize_at : plant -> float -> Ss.t option
(** Attempt synthesis at a fixed [gamma]; [None] if the Riccati conditions
    fail or the resulting controller does not pass validation. *)

val synthesize :
  ?gamma_min:float ->
  ?gamma_max:float ->
  ?rel_tol:float ->
  ?regularize:float ->
  plant ->
  result
(** Bisect [gamma] in [[gamma_min, gamma_max]] (defaults 1e-3 and an
    upper bound found by doubling from 1). [regularize] (default [1e-6])
    adds tiny full-rank terms to [D12]/[D21] when they are rank deficient,
    a standard regularization.
    @raise Synthesis_failed if no feasible [gamma] exists in the range. *)
