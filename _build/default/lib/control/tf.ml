open Linalg

type t = { num : Poly.t; den : Poly.t; domain : Ss.domain }

let make ?(domain = Ss.Continuous) ~num ~den () =
  let num = Poly.normalize num and den = Poly.normalize den in
  if Array.length den = 0 then invalid_arg "Tf.make: zero denominator";
  if Poly.degree num > Poly.degree den then
    invalid_arg "Tf.make: improper transfer function";
  { num; den; domain }

let poles t = Poly.roots t.den

let zeros t = if Array.length t.num = 0 then [||] else Poly.roots t.num

let eval t z = Complex.div (Poly.eval_complex t.num z) (Poly.eval_complex t.den z)

let dcgain t =
  match t.domain with
  | Ss.Continuous -> Poly.eval t.num 0.0 /. Poly.eval t.den 0.0
  | Ss.Discrete _ -> Poly.eval t.num 1.0 /. Poly.eval t.den 1.0

let frequency_response t w =
  match t.domain with
  | Ss.Continuous -> eval t { Complex.re = 0.0; im = w }
  | Ss.Discrete p -> eval t (Complex.exp { Complex.re = 0.0; im = w *. p })

let is_stable t =
  let ps = poles t in
  match t.domain with
  | Ss.Continuous -> Array.for_all (fun (z : Complex.t) -> z.re < 0.0) ps
  | Ss.Discrete _ -> Array.for_all (fun z -> Complex.norm z < 1.0) ps

let same_domain a b =
  match (a.domain, b.domain) with
  | Ss.Continuous, Ss.Continuous -> Ss.Continuous
  | Ss.Discrete p, Ss.Discrete q when Float.abs (p -. q) < 1e-12 ->
    Ss.Discrete p
  | _ -> invalid_arg "Tf: mixed time domains"

let series a b =
  let domain = same_domain a b in
  make ~domain ~num:(Poly.mul a.num b.num) ~den:(Poly.mul a.den b.den) ()

let parallel a b =
  let domain = same_domain a b in
  make ~domain
    ~num:(Poly.add (Poly.mul a.num b.den) (Poly.mul b.num a.den))
    ~den:(Poly.mul a.den b.den) ()

let feedback ?(sign = -1.0) g k =
  let domain = same_domain g k in
  (* g / (1 - sign g k) = g.num k.den / (g.den k.den - sign g.num k.num) *)
  make ~domain
    ~num:(Poly.mul g.num k.den)
    ~den:
      (Poly.sub (Poly.mul g.den k.den)
         (Poly.scale sign (Poly.mul g.num k.num)))
    ()

(* Controllable canonical form of num/den with den monic of degree n:
   A = companion, B = e_n, C from the (strictly proper) numerator after
   removing the direct term D = lead coefficient ratio. *)
let to_ss t =
  let den = Poly.monic t.den in
  let lead = t.den.(Array.length t.den - 1) in
  let num = Poly.scale (1.0 /. lead) t.num in
  let n = Array.length den - 1 in
  if n = 0 then Ss.static_gain ~domain:t.domain (Mat.of_lists [ [ Poly.eval num 0.0 ] ])
  else begin
    let d = if Poly.degree num = n then num.(n) else 0.0 in
    (* Strictly proper remainder: num - d * den. *)
    let rem = Poly.sub num (Poly.scale d den) in
    let a =
      Mat.init n n (fun i j ->
          if i = n - 1 then -.den.(j)
          else if j = i + 1 then 1.0
          else 0.0)
    in
    let b = Mat.init n 1 (fun i _ -> if i = n - 1 then 1.0 else 0.0) in
    let c =
      Mat.init 1 n (fun _ j -> if j < Array.length rem then rem.(j) else 0.0)
    in
    Ss.make ~domain:t.domain ~a ~b ~c ~d:(Mat.of_lists [ [ d ] ]) ()
  end

(* Leverrier-Faddeev: char(s) = s^n + c_{n-1} s^{n-1} + ... and
   (sI - A)^{-1} = (sum_k N_k s^k) / char(s), via the recursion
   N_{n-1} = I; c_{n-k} = -trace(A N_{n-k}) / k; N_{k-1} = A N_k + c_k I. *)
let of_ss sys =
  if Ss.inputs sys <> 1 || Ss.outputs sys <> 1 then
    invalid_arg "Tf.of_ss: SISO systems only";
  let n = Ss.order sys in
  if n = 0 then
    make ~domain:sys.Ss.domain ~num:[| Mat.get sys.Ss.d 0 0 |] ~den:Poly.one ()
  else begin
    let a = sys.Ss.a in
    let char = Array.make (n + 1) 0.0 in
    char.(n) <- 1.0;
    let nk = Array.make n (Mat.identity n) in
    (* nk.(k) is the coefficient matrix of s^k in the adjugate expansion. *)
    nk.(n - 1) <- Mat.identity n;
    for k = 1 to n do
      let m = Mat.mul a nk.(n - k) in
      let c = -.Mat.trace m /. Float.of_int k in
      char.(n - k) <- c;
      if k < n then nk.(n - k - 1) <- Mat.add m (Mat.scale c (Mat.identity n))
    done;
    let b = sys.Ss.b and c = sys.Ss.c and d = Mat.get sys.Ss.d 0 0 in
    let num_strict =
      Array.init n (fun k -> Mat.get (Mat.mul3 c nk.(k) b) 0 0)
    in
    let num = Poly.add num_strict (Poly.scale d char) in
    make ~domain:sys.Ss.domain ~num ~den:char ()
  end

let pp fmt t =
  Format.fprintf fmt "(%a) / (%a)%s" Poly.pp t.num Poly.pp t.den
    (match t.domain with
    | Ss.Continuous -> " in s"
    | Ss.Discrete p -> Printf.sprintf " in z (T=%g)" p)
