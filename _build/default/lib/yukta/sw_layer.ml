(* The software/OS-layer controller specification of Table III. *)

open Linalg

let period = 0.5

let perf_little_range = (0.0, 3.0)

let perf_big_range = (0.0, 12.0)

let delta_sc_range = (-10.0, 10.0)

let inputs ?(weight = 2.0) () =
  [|
    Signal.input ~name:"threads_big" ~minimum:0.0 ~maximum:8.0 ~step:1.0
      ~weight;
    Signal.input ~name:"tpc_big" ~minimum:1.0 ~maximum:2.0 ~step:0.5 ~weight;
    Signal.input ~name:"tpc_little" ~minimum:1.0 ~maximum:2.0 ~step:0.5
      ~weight;
  |]

let outputs ?(bound = 0.20) () =
  let lo_l, hi_l = perf_little_range in
  let lo_b, hi_b = perf_big_range in
  let lo_s, hi_s = delta_sc_range in
  [|
    Signal.output ~name:"performance_little" ~lo:lo_l ~hi:hi_l
      ~bound_fraction:bound ~integral:false ();
    Signal.output ~name:"performance_big" ~lo:lo_b ~hi:hi_b
      ~bound_fraction:bound ~integral:false ();
    Signal.output ~name:"delta_spare_compute" ~lo:lo_s ~hi:hi_s
      ~bound_fraction:bound ();
  |]

(* External signals: all four hardware-layer inputs (Table III). *)
let externals () =
  [|
    {
      Signal.name = "big_cores";
      info =
        Signal.From_input
          (Control.Quantize.make ~minimum:1.0 ~maximum:4.0 ~step:1.0);
    };
    {
      Signal.name = "little_cores";
      info =
        Signal.From_input
          (Control.Quantize.make ~minimum:1.0 ~maximum:4.0 ~step:1.0);
    };
    {
      Signal.name = "freq_big";
      info =
        Signal.From_input
          (Control.Quantize.make ~minimum:0.2 ~maximum:2.0 ~step:0.1);
    };
    {
      Signal.name = "freq_little";
      info =
        Signal.From_input
          (Control.Quantize.make ~minimum:0.2 ~maximum:1.4 ~step:0.1);
    };
  |]

let spec ?(uncertainty = 0.50) ?(input_weight = 2.0) ?(bound = 0.20) () =
  {
    Design.layer = "software";
    inputs = inputs ~weight:input_weight ();
    outputs = outputs ~bound ();
    externals = externals ();
    uncertainty;
    period;
  }

(* The software controller's only goal is to minimize E x D; it relies on
   the hardware controller for the caps. The per-cluster performance
   outputs are observed (their targets track the measurements), while the
   spare-compute difference is the placement knob: its target hill-climbs
   on the measured E x D, biased toward big-cluster slack (threads migrate
   to the big cluster when it can absorb them). *)
let optimizer_roles =
  [| Optimizer.Track; Optimizer.Track; Optimizer.Limited 1.0 |]

let make_optimizer ?(bound = 0.20) () =
  Optimizer.make ~outputs:(outputs ~bound ()) ~roles:optimizer_roles

let measurements (o : Board.Xu3.outputs) =
  [|
    o.Board.Xu3.bips_little;
    o.bips_big;
    o.spare_big -. o.spare_little;
  |]

let externals_of_config (c : Board.Xu3.config) =
  [|
    Float.of_int c.Board.Xu3.big_cores;
    Float.of_int c.little_cores;
    c.freq_big;
    c.freq_little;
  |]

let placement_of_command (u : Vec.t) =
  {
    Board.Xu3.threads_big = int_of_float (Float.round u.(0));
    tpc_big = u.(1);
    tpc_little = u.(2);
  }

let command_of_placement (p : Board.Xu3.placement) =
  [| Float.of_int p.Board.Xu3.threads_big; p.tpc_big; p.tpc_little |]
