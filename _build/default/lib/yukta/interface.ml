type layer_spec = {
  layer : string;
  inputs : Signal.input list;
  outputs : Signal.output list;
  wanted_externals : (string * (float * float)) list;
}

type resolution = {
  externals : Signal.external_signal list;
  unresolved : string list;
  guardband_inflation : float;
}

let inflation_per_unresolved = 0.05

let resolve ~own ~peer =
  let find_input name =
    List.find_opt (fun (i : Signal.input) -> i.Signal.name = name) peer.inputs
  in
  let find_output name =
    List.find_opt (fun (o : Signal.output) -> o.Signal.name = name) peer.outputs
  in
  let unresolved = ref [] in
  let externals =
    List.map
      (fun (name, (lo, hi)) ->
        match find_input name with
        | Some i -> { Signal.name; info = Signal.From_input i.Signal.channel }
        | None ->
          (match find_output name with
          | Some o ->
            {
              Signal.name;
              info =
                Signal.From_output
                  {
                    lo = o.Signal.lo;
                    hi = o.Signal.hi;
                    bound = Signal.bound_absolute o;
                  };
            }
          | None ->
            unresolved := name :: !unresolved;
            { Signal.name; info = Signal.Opaque { lo; hi } }))
      own.wanted_externals
  in
  {
    externals;
    unresolved = List.rev !unresolved;
    guardband_inflation =
      inflation_per_unresolved *. Float.of_int (List.length !unresolved);
  }

let common_outputs a b =
  List.filter_map
    (fun (oa : Signal.output) ->
      match
        List.find_opt (fun (ob : Signal.output) -> ob.Signal.name = oa.Signal.name) b.outputs
      with
      | Some ob ->
        Some (oa.Signal.name, Signal.bound_absolute oa, Signal.bound_absolute ob)
      | None -> None)
    a.outputs
