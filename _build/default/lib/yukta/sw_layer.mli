(** The software/OS-layer controller specification (Table III).

    Inputs (weight 2 — the OS reacts more conservatively than the
    hardware, Section IV-B): threads assigned to the big cluster and the
    average threads per non-idle core in each cluster. Outputs (+-20%
    bounds): per-cluster performance and the spare-compute-capacity
    difference of Eq. 2. External signals: the four hardware-layer inputs.
    Guardband: +-50%.

    Goal: minimize E x D, relying on the hardware controller for the
    power/temperature caps. *)

val period : float

val perf_little_range : float * float
val perf_big_range : float * float
val delta_sc_range : float * float

val inputs : ?weight:float -> unit -> Signal.input array
val outputs : ?bound:float -> unit -> Signal.output array
val externals : unit -> Signal.external_signal array

val spec :
  ?uncertainty:float -> ?input_weight:float -> ?bound:float -> unit -> Design.spec

val optimizer_roles : Optimizer.role array
(** Performance outputs tracked; the spare-compute difference hill-climbs
    on E x D (capped at +1: a mild bias toward big-cluster slack). *)

val make_optimizer : ?bound:float -> unit -> Optimizer.t

(** {1 Board signal plumbing} *)

val measurements : Board.Xu3.outputs -> Linalg.Vec.t
(** [perf_little; perf_big; spare_big - spare_little]. *)

val externals_of_config : Board.Xu3.config -> Linalg.Vec.t
val placement_of_command : Linalg.Vec.t -> Board.Xu3.placement
val command_of_placement : Board.Xu3.placement -> Linalg.Vec.t
