lib/yukta/runtime.ml: Array Board Controller Design Designs Float Heuristics Hw_layer Linalg List Lqg_layer Optimizer Signal Sw_layer Vec Xu3
