lib/yukta/controller.mli: Control Linalg Signal
