lib/yukta/optimizer.ml: Array Float Linalg Signal Vec
