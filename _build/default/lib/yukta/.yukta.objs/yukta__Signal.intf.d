lib/yukta/signal.mli: Control
