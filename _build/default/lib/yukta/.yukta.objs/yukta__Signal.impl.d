lib/yukta/signal.ml: Control
