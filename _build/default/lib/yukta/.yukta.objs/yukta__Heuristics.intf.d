lib/yukta/heuristics.mli: Board
