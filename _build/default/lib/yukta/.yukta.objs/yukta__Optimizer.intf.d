lib/yukta/optimizer.mli: Linalg Signal
