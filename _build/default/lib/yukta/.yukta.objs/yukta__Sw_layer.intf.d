lib/yukta/sw_layer.mli: Board Design Linalg Optimizer Signal
