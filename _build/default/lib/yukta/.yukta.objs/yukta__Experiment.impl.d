lib/yukta/experiment.ml: Board Float List Runtime
