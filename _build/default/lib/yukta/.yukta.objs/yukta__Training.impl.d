lib/yukta/training.ml: Array Board Hw_layer Linalg List Sw_layer Sysid Vec
