lib/yukta/runtime.mli: Board Design Linalg
