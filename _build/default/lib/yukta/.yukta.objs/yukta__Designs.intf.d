lib/yukta/designs.mli: Controller Design Training
