lib/yukta/lqg_layer.mli: Board Control Controller Linalg Optimizer Signal Training
