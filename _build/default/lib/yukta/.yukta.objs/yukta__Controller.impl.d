lib/yukta/controller.ml: Array Control Linalg Signal Vec
