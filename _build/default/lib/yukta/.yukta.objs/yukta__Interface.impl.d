lib/yukta/interface.ml: Float List Signal
