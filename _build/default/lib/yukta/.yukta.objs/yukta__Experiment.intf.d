lib/yukta/experiment.mli: Board Runtime
