lib/yukta/design.ml: Array Control Controller Dk Eig Float Hinf Linalg Mat Reduce Signal Ss Ssv Sysid Vec
