lib/yukta/hw_layer.ml: Array Board Control Design Float Linalg Optimizer Signal Vec
