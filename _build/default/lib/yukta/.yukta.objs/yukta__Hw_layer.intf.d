lib/yukta/hw_layer.mli: Board Design Linalg Optimizer Signal
