lib/yukta/heuristics.ml: Board Dvfs Float Hw_layer Perf Xu3
