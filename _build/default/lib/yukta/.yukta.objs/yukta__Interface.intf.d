lib/yukta/interface.mli: Signal
