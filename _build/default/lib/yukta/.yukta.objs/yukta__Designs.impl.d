lib/yukta/designs.ml: Array Control Controller Design Digest Filename Hw_layer Lazy Lqg_layer Marshal Printf Signal Sw_layer Sys Training
