lib/yukta/lqg_layer.ml: Array Board Control Controller Dare Design Hw_layer Linalg Lqg Mat Optimizer Signal Ss Sw_layer Training Vec
