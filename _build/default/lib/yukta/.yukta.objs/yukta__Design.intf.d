lib/yukta/design.mli: Control Controller Linalg Signal
