lib/yukta/training.mli: Board Linalg
