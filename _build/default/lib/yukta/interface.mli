(** The inter-layer interface exchange of Figure 3.

    After each team selects its layer's signals, the teams exchange
    meta-information: for an external signal that is an {e input} in the
    owning layer, its allowed discrete values; for one that is an
    {e output} there, its deviation bounds. A signal the other layer does
    not export resolves to [Opaque] and the receiving team should inflate
    its uncertainty guardband (Section III-C), which {!resolve} quantifies
    through [guardband_inflation]. *)

type layer_spec = {
  layer : string;
  inputs : Signal.input list;
  outputs : Signal.output list;
  wanted_externals : (string * (float * float)) list;
      (** Names of signals requested from the peer layer, with a fallback
          range used when the peer does not export them. *)
}

type resolution = {
  externals : Signal.external_signal list;
      (** In the order of [wanted_externals]. *)
  unresolved : string list;
      (** Externals that fell back to [Opaque]. *)
  guardband_inflation : float;
      (** Additional uncertainty (absolute fraction, e.g. 0.05 per
          unresolved signal) the layer should add to its guardband. *)
}

val resolve : own:layer_spec -> peer:layer_spec -> resolution
(** Resolve [own.wanted_externals] against the peer's declared signals. *)

val common_outputs : layer_spec -> layer_spec -> (string * float * float) list
(** Outputs declared by both layers, with each side's absolute deviation
    bound — the coordination case discussed for shared outputs (e.g. both
    layers bounding temperature). *)
