(* The heuristic baseline controllers of Table IV.

   Coordinated heuristic: the OS layer is an HMP-style scheduler that
   places threads using the number, type and frequency of the available
   cores; the hardware layer walks frequency up while operation is safe
   and down when measurements approach the limits, and powers the cores
   the thread distribution asks for. Like the vendor stacks it models, it
   carries wide safety margins — tuned once for the worst-case
   application, so typical executions leave headroom unused (the
   steady-state gap visible in Figure 10(a) vs 10(d)).

   Decoupled heuristic: the OS assigns threads round-robin with no regard
   for the hardware state; the hardware layer behaves like the Linux
   "performance" governor — everything at maximum while measurements look
   clean, threshold-rule backoff only after sustained violations. Since
   the board's emergency machinery reacts faster than the governor's
   threshold rules, the system ping-pongs between full speed and emergency
   clamping, which is the oscillation of Figure 10(b). *)

open Board

(* Conservative safety margins of the coordinated heuristic: back off
   above the high water mark, creep up below the low one. *)
let high_water = 0.72

let low_water = 0.58

let temp_high = Hw_layer.temp_limit -. 8.0

let temp_low = Hw_layer.temp_limit -. 12.0

(* ------------------------------------------------------------------ *)
(* OS heuristics                                                       *)
(* ------------------------------------------------------------------ *)

(* HMP-style placement: split threads proportionally to each cluster's
   potential compute capacity (all cores available at the current
   frequency, assuming a generic mix), then spread within the cluster.
   Knows the number, type and frequency of cores — the coordination
   channel of Table IV(a). *)
let os_coordinated ~(config : Xu3.config) ~(outputs : Xu3.outputs) =
  let threads = outputs.Xu3.threads_active in
  if threads = 0 then { Xu3.threads_big = 0; tpc_big = 1.0; tpc_little = 1.0 }
  else begin
    let generic_mem = 0.3 in
    let cap kind freq =
      Float.of_int Dvfs.core_count
      *. Perf.core_throughput ~kind ~freq ~mem_intensity:generic_mem
           ~ipc_scale:1.0 ~threads_on_core:1.0
    in
    let cap_big = cap Dvfs.Big config.Xu3.freq_big in
    let cap_little = cap Dvfs.Little config.Xu3.freq_little in
    let share = cap_big /. Float.max 1e-9 (cap_big +. cap_little) in
    let tb =
      max 0
        (min threads (int_of_float (Float.round (Float.of_int threads *. share))))
    in
    let tl = threads - tb in
    let tpc over =
      Float.max 1.0 (Float.of_int over /. Float.of_int Dvfs.core_count)
    in
    { Xu3.threads_big = tb; tpc_big = tpc tb; tpc_little = tpc tl }
  end

(* Round-robin: threads spread evenly across all eight cores, blind to
   cluster asymmetry and hardware state. *)
let os_round_robin ~(outputs : Xu3.outputs) =
  let threads = outputs.Xu3.threads_active in
  let tb = (threads + 1) / 2 in
  { Xu3.threads_big = tb; tpc_big = 1.0; tpc_little = 1.0 }

(* ------------------------------------------------------------------ *)
(* Hardware heuristics                                                 *)
(* ------------------------------------------------------------------ *)

(* Thermal core control thresholds, as in the Exynos TMU driver: under
   sustained thermal pressure big cores are hotplugged out well before the
   hard limit. *)
let core_control_3 = Hw_layer.temp_limit -. 20.0

let core_control_2 = Hw_layer.temp_limit -. 14.0

(* Coordinated hardware controller: a rate-limited frequency ladder per
   cluster with hysteresis, thread-distribution-driven core counts, and
   TMU-style thermal core control. The interacting thresholds are tuned
   once for the worst case, which is why typical executions sit well below
   the limits (the steady-state gap of Figure 10(a) vs 10(d)). *)
type coordinated_state = { mutable tick : int }

let coordinated_init () = { tick = 0 }

let hw_coordinated ?(state = { tick = 1 }) ~(config : Xu3.config)
    ~(outputs : Xu3.outputs) ~(placement : Xu3.placement) () =
  state.tick <- state.tick + 1;
  (* Governor lag: the vendor ladder re-evaluates every other sample. *)
  let may_move = state.tick mod 2 = 0 in
  let ladder freq power limit temp =
    if not may_move then freq
    else if power > high_water *. limit || temp > temp_high then freq -. 0.1
    else if power < low_water *. limit && temp < temp_low then freq +. 0.1
    else freq
  in
  let threads = outputs.Xu3.threads_active in
  let tb = min threads placement.Xu3.threads_big in
  let tl = threads - tb in
  let cores_for t = max 1 (min Dvfs.core_count t) in
  let big_cap =
    if outputs.Xu3.temperature > core_control_2 then 2
    else if outputs.Xu3.temperature > core_control_3 then 3
    else Dvfs.core_count
  in
  (* The TMU also caps the big-cluster frequency at its trigger levels
     (the interlocked threshold tables of the Exynos thermal driver). *)
  let freq_cap =
    if outputs.Xu3.temperature > core_control_2 then 1.1
    else if outputs.Xu3.temperature > core_control_3 then 1.4
    else Dvfs.f_max Dvfs.Big
  in
  {
    Xu3.big_cores = min big_cap (cores_for tb);
    little_cores = cores_for tl;
    freq_big =
      Float.min freq_cap
        (ladder config.Xu3.freq_big outputs.Xu3.power_big
           Hw_layer.power_limit_big outputs.Xu3.temperature);
    freq_little =
      ladder config.Xu3.freq_little outputs.Xu3.power_little
        Hw_layer.power_limit_little outputs.Xu3.temperature;
  }

type decoupled_state = {
  mutable violation_epochs : int;
  mutable backoff_level : int;
  mutable clean_epochs : int;
}

let decoupled_init () =
  { violation_epochs = 0; backoff_level = 0; clean_epochs = 0 }

let decoupled_reset st =
  st.violation_epochs <- 0;
  st.backoff_level <- 0;
  st.clean_epochs <- 0

(* Decoupled hardware controller: maximum everything while clean. Its
   threshold rules need two consecutive violated samples before acting —
   slower than the board's emergency machinery, which therefore fires
   first and does the actual throttling, after which the governor sees
   clean readings and stays at maximum. *)
let hw_decoupled st ~(outputs : Xu3.outputs) =
  let violation =
    outputs.Xu3.power_big > Hw_layer.power_limit_big
    || outputs.Xu3.power_little > Hw_layer.power_limit_little
    || outputs.Xu3.temperature > Hw_layer.temp_limit
  in
  if violation then begin
    st.violation_epochs <- st.violation_epochs + 1;
    st.clean_epochs <- 0;
    if st.violation_epochs >= 2 then begin
      st.backoff_level <- min 3 (st.backoff_level + 1);
      st.violation_epochs <- 0
    end
  end
  else begin
    st.violation_epochs <- 0;
    st.clean_epochs <- st.clean_epochs + 1;
    if st.clean_epochs >= 2 then begin
      st.backoff_level <- 0;
      st.clean_epochs <- 0
    end
  end;
  match st.backoff_level with
  | 0 ->
    { Xu3.big_cores = 4; little_cores = 4; freq_big = 2.0; freq_little = 1.4 }
  | 1 ->
    { Xu3.big_cores = 4; little_cores = 4; freq_big = 1.5; freq_little = 1.1 }
  | 2 ->
    { Xu3.big_cores = 4; little_cores = 4; freq_big = 1.1; freq_little = 0.8 }
  | _ ->
    { Xu3.big_cores = 3; little_cores = 4; freq_big = 0.8; freq_little = 0.6 }
