(* LQG baseline controllers (Section VI-B).

   The state-of-the-art MIMO comparison point: LQG controllers built from
   the same identified models and the same weights, but without the SSV
   machinery — no external-signal channels (so no coordination), no output
   deviation bounds, no input quantization information, and no uncertainty
   guardband. Two arrangements are evaluated: independent per-layer LQG
   controllers (Decoupled HW LQG + OS LQG) and a single LQG over both
   layers' signals (Monolithic LQG). *)

open Linalg
open Control

let period = 0.5

(* Identify a model using only the layer's own inputs: a decoupled LQG
   controller has no channel for the other layer's signals, so their
   effect lands in the (unmodelled) noise. *)
let identify_own_inputs ~n_own ~u ~y ~outputs ~inputs =
  let spec =
    {
      Design.layer = "lqg";
      inputs;
      outputs;
      externals = [||];
      uncertainty = 0.01;
      period;
    }
  in
  let u_own = Array.map (fun row -> Vec.slice row 0 n_own) u in
  Design.identify spec ~u:u_own ~y

(* LQI tracking compensator: the plant is augmented with one integrator
   per output (xi' = xi + err) so the LQR gain achieves offset-free
   tracking; a Kalman predictor reconstructs the plant state from the
   deviation measurement. The compensator maps the measured deviations to
   input commands, the same signature as the SSV controllers. *)
let synthesize_lqg ?(r_scale = 1.0) ~model ~(outputs : Signal.output array)
    ~(inputs : Signal.input array) () =
  let n = Ss.order model in
  let ny = Ss.outputs model in
  let nu = Ss.inputs model in
  let a = model.Ss.a and b = model.Ss.b and c = model.Ss.c and d = model.Ss.d in
  (* Output weighting mirrors the SSV bounds (inverse-square), input
     weighting the SSV input weights — "weights comparable to our SSV
     controllers" (Section VI-B). *)
  let qy =
    Mat.diag
      (Array.map (fun o -> 1.0 /. (Signal.normalized_bound o ** 2.0)) outputs)
  in
  let r =
    Mat.diag (Array.map (fun i -> r_scale *. (i.Signal.weight ** 2.0)) inputs)
  in
  (* Augmented regulator design. *)
  let zer rr cc = Mat.create rr cc in
  (* Leaky integrators (pole 0.98): linearly dependent outputs (e.g. total
     vs per-cluster performance in the monolithic arrangement) would make
     exact integrators uncontrollable. *)
  let leak = 0.98 in
  let a_aug = Mat.blocks [ [ a; zer n ny ]; [ c; Mat.scalar ny leak ] ] in
  let b_aug = Mat.vcat b d in
  let q_aug =
    Mat.blocks
      [
        [
          Mat.add (Mat.mul3 (Mat.transpose c) qy c) (Mat.scalar n 1e-6);
          zer n ny;
        ];
        [ zer ny n; Mat.scale 0.02 qy ];
      ]
  in
  let x = Dare.solve ~a:a_aug ~b:b_aug ~q:q_aug ~r in
  let k = Dare.gain ~a:a_aug ~b:b_aug ~r x in
  let k1 = Mat.sub_matrix k 0 0 nu n in
  let k2 = Mat.sub_matrix k 0 n nu ny in
  (* Kalman predictor on the original plant. *)
  let l = Lqg.kalman_gain ~a ~c ~w:(Mat.scalar n 0.05) ~v:(Mat.scalar ny 0.01) in
  (* Compensator state [xh; xi], input err, output u = -K1 xh - K2 xi. *)
  let bk1 = Mat.sub b (Mat.mul l d) in
  let ak =
    Mat.blocks
      [
        [
          Mat.sub (Mat.sub a (Mat.mul bk1 k1)) (Mat.mul l c);
          Mat.neg (Mat.mul bk1 k2);
        ];
        [ zer ny n; Mat.scalar ny leak ];
      ]
  in
  let bk = Mat.vcat l (Mat.identity ny) in
  let ck = Mat.hcat (Mat.neg k1) (Mat.neg k2) in
  Ss.make ~domain:model.Ss.domain ~a:ak ~b:bk ~c:ck ~d:(zer nu ny) ()

let wrap ~controller ~inputs ~outputs =
  Controller.make ~controller ~inputs ~outputs ~externals:[||]

let hw_controller (records : Training.records) =
  let inputs = Hw_layer.inputs () and outputs = Hw_layer.outputs () in
  let model =
    identify_own_inputs ~n_own:(Array.length inputs) ~u:records.Training.hw_u
      ~y:records.Training.hw_y ~outputs ~inputs
  in
  wrap ~controller:(synthesize_lqg ~model ~outputs ~inputs ()) ~inputs ~outputs

let sw_controller (records : Training.records) =
  let inputs = Sw_layer.inputs () and outputs = Sw_layer.outputs () in
  let model =
    identify_own_inputs ~n_own:(Array.length inputs) ~u:records.Training.sw_u
      ~y:records.Training.sw_y ~outputs ~inputs
  in
  wrap ~controller:(synthesize_lqg ~model ~outputs ~inputs ()) ~inputs ~outputs

(* Monolithic: every input of both layers in one controller, and the
   union of their outputs with the redundant per-cluster performance
   signals dropped (total performance already covers them; duplicated
   outputs would make the tracking integrators uncontrollable). The
   hardware-layer records already carry [hw inputs; sw inputs] as their
   regressor, so they serve directly as the monolithic input record. *)
let monolithic_inputs () = Array.append (Hw_layer.inputs ()) (Sw_layer.inputs ())

let monolithic_outputs () =
  Array.append (Hw_layer.outputs ())
    [| (Sw_layer.outputs ()).(0); (Sw_layer.outputs ()).(2) |]

let monolithic_measurements (o : Board.Xu3.outputs) =
  let sw = Sw_layer.measurements o in
  Vec.concat (Hw_layer.measurements o) [| sw.(0); sw.(2) |]

let monolithic_controller (records : Training.records) =
  let inputs = monolithic_inputs () and outputs = monolithic_outputs () in
  let y =
    Array.mapi
      (fun t hw_row ->
        let sw = records.Training.sw_y.(t) in
        Vec.concat hw_row [| sw.(0); sw.(2) |])
      records.Training.hw_y
  in
  let spec =
    {
      Design.layer = "lqg-monolithic";
      inputs;
      outputs;
      externals = [||];
      uncertainty = 0.01;
      period;
    }
  in
  let model = Design.identify spec ~u:records.Training.hw_u ~y in
  (* The monolithic controller couples every input to every output; the
     higher effort weighting keeps its larger gain matrix from slamming
     into the protection machinery. *)
  wrap
    ~controller:(synthesize_lqg ~r_scale:8.0 ~model ~outputs ~inputs ())
    ~inputs ~outputs

(* Monolithic optimizer roles: both layers' objectives together. *)
let monolithic_roles =
  Array.append Hw_layer.optimizer_roles
    [| Optimizer.Track; Optimizer.Limited 1.0 |]

let monolithic_optimizer () =
  Optimizer.make ~outputs:(monolithic_outputs ()) ~roles:monolithic_roles
