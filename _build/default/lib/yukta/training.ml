(* Training-run data collection (Section IV-C).

   System identification needs records of the signals each controller
   would actuate and observe, taken while the training applications run
   and the inputs are excited across their allowed values. One board run
   per training application collects the records of both layers
   simultaneously: the hardware layer sees [its 4 inputs; the 3 placement
   signals] -> [perf, power_big, power_little, temp], and the software
   layer sees [the 3 placement signals; the 4 hardware inputs] ->
   [perf_little, perf_big, delta spare-compute]. *)

open Linalg

type records = {
  hw_u : Vec.t array;
  hw_y : Vec.t array;
  sw_u : Vec.t array;
  sw_y : Vec.t array;
}

let epoch = 0.5

(* Excitation levels per signal: the full allowed grids, held for a few
   epochs so the thermal and sensor dynamics are excited too. *)
let excitation_levels =
  [|
    [| 1.0; 2.0; 3.0; 4.0 |] (* big cores *);
    [| 1.0; 2.0; 3.0; 4.0 |] (* little cores *);
    [| 0.4; 0.8; 1.2; 1.6; 2.0 |] (* freq big *);
    [| 0.2; 0.6; 1.0; 1.4 |] (* freq little *);
    [| 0.0; 2.0; 4.0; 6.0; 8.0 |] (* threads big *);
    [| 1.0; 1.5; 2.0; 3.0; 4.0 |] (* tpc big *);
    [| 1.0; 1.5; 2.0; 3.0; 4.0 |] (* tpc little *);
  |]

let collect ?(epochs_per_workload = 220) ?(seed = 5)
    ?(workloads = Board.Workload.training) () =
  let hw_u = ref [] and hw_y = ref [] and sw_u = ref [] and sw_y = ref [] in
  List.iteri
    (fun wi w ->
      let board = Board.Xu3.create [ w ] in
      let exc = { Sysid.Excitation.seed = seed + (31 * wi); hold = 4 } in
      let seq =
        Sysid.Excitation.channels exc ~levels:excitation_levels
          ~length:epochs_per_workload
      in
      let i = ref 0 in
      while !i < epochs_per_workload && not (Board.Xu3.finished board) do
        let s = seq.(!i) in
        incr i;
        let config =
          Board.Xu3.
            {
              big_cores = int_of_float s.(0);
              little_cores = int_of_float s.(1);
              freq_big = s.(2);
              freq_little = s.(3);
            }
        in
        let placement =
          Board.Xu3.
            { threads_big = int_of_float s.(4); tpc_big = s.(5); tpc_little = s.(6) }
        in
        Board.Xu3.set_config board config;
        Board.Xu3.set_placement board placement;
        let o = Board.Xu3.run_epoch board epoch in
        (* Record what the hardware actually ran (the requested values
           after quantization and any emergency clamping) and what the
           sensors reported: identification must see the true
           input-output relation. *)
        let c = Board.Xu3.effective_config board in
        let p = Board.Xu3.placement board in
        let hw_in = Hw_layer.command_of_config c in
        let sw_in = Sw_layer.command_of_placement p in
        hw_u := Vec.concat hw_in sw_in :: !hw_u;
        hw_y := Hw_layer.measurements o :: !hw_y;
        sw_u := Vec.concat sw_in hw_in :: !sw_u;
        sw_y := Sw_layer.measurements o :: !sw_y
      done)
    workloads;
  {
    hw_u = Array.of_list (List.rev !hw_u);
    hw_y = Array.of_list (List.rev !hw_y);
    sw_u = Array.of_list (List.rev !sw_u);
    sw_y = Array.of_list (List.rev !sw_y);
  }
