(** Signal descriptors for SSV controller design (Section III-C).

    A layer team initiates its controller design by declaring, for every
    signal, the information SSV synthesis consumes: allowed discrete values
    and a weight for each input; a deviation bound (as a fraction of the
    observed range) for each output; and, for each external signal, the
    meta-information received from the owning layer through the interface
    exchange.

    All design happens in {e normalized} coordinates: a signal with range
    [[lo, hi]] maps to [[-1, 1]] via its center and half-span. The helpers
    here convert both ways; the runtime controller wrapper applies them at
    every invocation. *)

type input = {
  name : string;
  channel : Control.Quantize.channel;  (** Allowed discrete values. *)
  weight : float;                      (** Eagerness to change (higher =
                                           more conservative). *)
}

type output = {
  name : string;
  lo : float;          (** Smallest value observed during training. *)
  hi : float;          (** Largest value observed during training. *)
  bound_fraction : float;  (** Allowed deviation as a fraction of range,
                               e.g. 0.10 for the critical outputs. *)
  critical : bool;     (** Power/temperature-class outputs. *)
  integral : bool;     (** Demand (near-)offset-free tracking. Disable for
                           outputs whose dynamics are too slow for the
                           control authority (e.g. temperature, which is a
                           stay-under constraint rather than a setpoint). *)
}

(** What the owning layer exports about an external signal (Figure 3):
    discrete values if it is an input there, a deviation bound if an
    output, or nothing (the receiving team then inflates its guardband). *)
type external_info =
  | From_input of Control.Quantize.channel
  | From_output of { lo : float; hi : float; bound : float }
  | Opaque of { lo : float; hi : float }

type external_signal = { name : string; info : external_info }

val input : name:string -> minimum:float -> maximum:float -> step:float -> weight:float -> input

val output :
  name:string ->
  lo:float ->
  hi:float ->
  bound_fraction:float ->
  ?critical:bool ->
  ?integral:bool ->
  unit ->
  output

val bound_absolute : output -> float
(** Allowed absolute deviation: [bound_fraction * (hi - lo)]. *)

(** {1 Normalization} *)

val center_input : input -> float
val half_span_input : input -> float
val center_output : output -> float
val half_span_output : output -> float

val normalize_input : input -> float -> float
val denormalize_input : input -> float -> float
val normalize_output : output -> float -> float
val denormalize_output : output -> float -> float

val external_range : external_signal -> float * float
val normalize_external : external_signal -> float -> float

val normalized_bound : output -> float
(** The deviation bound in normalized units:
    [bound_absolute / half_span]. *)

val quantization_uncertainty : input -> float
(** Relative uncertainty the input's grid contributes (step/2 over
    half-span) — folded into the Delta_in block. *)
