(** Memoized controller designs.

    Training and mu-synthesis are the expensive offline part of the flow
    (once per platform in the paper). Defaults are lazy and shared;
    everything is also cached on disk under [.yukta_cache/],
    content-addressed by the training records and layer specification.
    Set the environment variable [YUKTA_NO_CACHE] to disable the disk
    cache (e.g. when editing the design pipeline itself). *)

val get_records : unit -> Training.records
(** The default training records (computed once per process). *)

val hw : unit -> Design.synthesis
(** The default Table II hardware-layer design. *)

val sw : unit -> Design.synthesis
(** The default Table III software-layer design. *)

val design_hw_with : Design.spec -> Design.synthesis
(** Synthesize a hardware-layer variant (sensitivity studies) against the
    default records. *)

val design_sw_with : Design.spec -> Design.synthesis

val lqg_hw : unit -> Controller.t
(** The decoupled-LQG baselines (Section VI-B). *)

val lqg_sw : unit -> Controller.t
val lqg_monolithic : unit -> Controller.t
