(** The target-search optimizer of Section IV-D.

    An SSV controller tracks whatever targets it is given; to {e minimize}
    a quantity such as E x D, Yukta augments each controller with an
    optimizer that progressively proposes better output targets. Because
    [E x D ~ Power / Perf^2], the optimizer raises the performance target
    a lot while raising power targets a little; when a move makes E x D
    worse it discards it and moves the other way (lower performance a
    little, lower power a lot), eventually settling around the best
    achievable operating point. Targets for limited outputs never exceed
    the cap minus a quarter of the deviation bound: steady state hugs the
    cap while excursions stay clear of the emergency trip thresholds. *)

type role =
  | Maximize          (** Performance-class output: pushed up (target leads
                          the measurement by one deviation bound). *)
  | Track             (** Target follows the measurement exactly: the
                          output is observed, not steered. *)
  | Limited of float  (** Output with a cap: its target hill-climbs on the
                          objective between a floor and the cap. *)
  | Fixed of float    (** Held at a constant target. *)

type t

val make : outputs:Signal.output array -> roles:role array -> t
(** Initial targets: mid-range for [Maximize], the (margin-adjusted) cap
    for [Limited], the given value for [Fixed]. *)

val targets : t -> Linalg.Vec.t

val update : t -> objective:float -> measurements:Linalg.Vec.t -> Linalg.Vec.t
(** Report the objective (e.g. measured E x D rate — lower is better) and
    the current output measurements; returns the next targets to track.
    Limited outputs hill-climb on the objective between a floor and their
    cap (starting at the cap); Maximize outputs lead the measured value by
    one deviation bound. *)

val best_objective : t -> float
(** Best objective seen so far ([infinity] before the first update). *)

val reset : t -> unit
