open Linalg

type role = Maximize | Track | Limited of float | Fixed of float

type t = {
  outputs : Signal.output array;
  roles : role array;
  caps : float array;        (* Highest admissible target per output. *)
  floors : float array;
  mutable current : Vec.t;
  mutable accepted : Vec.t;  (* Targets in effect before the last move. *)
  mutable best : float;      (* Best objective ever seen. *)
  mutable best_targets : Vec.t;  (* Targets that produced it. *)
  mutable previous : float;  (* Objective under the accepted targets. *)
  mutable going_up : bool;
  mutable warmup : int;      (* Updates to skip before hill-climbing. *)
}

(* Step size of the hill climb on limited outputs, as a fraction of the
   cap-to-floor span per retarget. *)
let step_fraction = 0.05

(* Maximize-class targets lead the measured value by one deviation bound:
   a constant upward pull that tracks what the system can actually do
   instead of an arbitrary far-away setpoint. *)
let lead_bounds = 1.0

(* A limited output's target stays a tenth of a bound below its cap: the
   controller keeps excursions within the bound, and the emergency trip
   thresholds sit well above the limits, so steady state hugs the cap the
   way Figure 10(d) shows. *)
let cap_of o role =
  match role with
  | Maximize | Track -> o.Signal.hi
  | Limited limit -> limit -. (0.4 *. Signal.bound_absolute o)
  | Fixed v -> v

(* Hill-climb excursions on limited outputs stay above a floor well inside
   the range: the E x D optimum of memory-bound work sits below the cap,
   but never near idle. *)
let floor_of o role =
  match role with
  | Maximize | Track -> o.Signal.lo
  | Limited limit ->
    let cap = limit -. (0.4 *. Signal.bound_absolute o) in
    o.Signal.lo +. (0.35 *. (cap -. o.Signal.lo))
  | Fixed v -> v

(* The search starts at the cap: it reaches the compute-bound optimum
   immediately and descends only when the measured E x D says so. *)
let initial_target o role =
  match role with
  | Maximize | Track -> Signal.center_output o
  | Limited _ -> cap_of o role
  | Fixed v -> v

let make ~outputs ~roles =
  if Array.length outputs <> Array.length roles then
    invalid_arg "Optimizer.make: outputs/roles length mismatch";
  let current = Array.mapi (fun i o -> initial_target o roles.(i)) outputs in
  {
    outputs;
    roles;
    caps = Array.mapi (fun i o -> cap_of o roles.(i)) outputs;
    floors = Array.mapi (fun i o -> floor_of o roles.(i)) outputs;
    current;
    accepted = Vec.copy current;
    best = infinity;
    best_targets = Vec.copy current;
    previous = infinity;
    going_up = false;
    warmup = 8;
  }

let targets t = Vec.copy t.current

let best_objective t = t.best

let clamp t i v = Float.min t.caps.(i) (Float.max t.floors.(i) v)

(* One hill-climb move on the limited outputs (up = toward the caps). *)
let move t =
  let next = Vec.copy t.current in
  Array.iteri
    (fun i o ->
      match t.roles.(i) with
      | Limited _ ->
        let span = t.caps.(i) -. t.floors.(i) in
        let delta =
          if t.going_up then step_fraction *. span
          else -.step_fraction *. span
        in
        next.(i) <- clamp t i (next.(i) +. delta)
      | Maximize | Track | Fixed _ -> ignore o)
    t.outputs;
  t.current <- next

(* Tolerated relative worsening: phase changes and sensor noise perturb
   the objective, so only a clear regression triggers a reversal. *)
let noise_tolerance = 0.01

(* Regression beyond this factor of the best objective snaps the search
   back to the best-known targets: feedback lag can let a few bad moves
   compound before the objective responds. *)
let recovery_factor = 1.2

(* The remembered best inflates slowly so that optima measured under
   transient conditions (thermal lag, phase boundaries) cannot anchor the
   search forever. *)
let best_decay = 1.02

let update t ~objective ~measurements =
  if Vec.dim measurements <> Array.length t.outputs then
    invalid_arg "Optimizer.update: measurement dimension mismatch";
  if Float.is_finite t.best then t.best <- t.best *. best_decay;
  if objective < t.best then begin
    t.best <- objective;
    t.best_targets <- Vec.copy t.current
  end;
  if t.warmup > 0 then begin
    (* Thermal and scheduling transients dominate the first epochs; hold
       the limited targets at their caps until the plant settles. *)
    t.warmup <- t.warmup - 1;
    t.previous <- objective
  end
  else if objective > t.best *. recovery_factor then begin
    (* Lost the plateau: jump home. *)
    t.previous <- objective;
    t.current <- Vec.copy t.best_targets;
    t.accepted <- Vec.copy t.current;
    t.going_up <- true
  end
  else if objective <= t.previous *. (1.0 +. noise_tolerance) then begin
    (* The last move did not hurt: lock it in and continue. *)
    t.previous <- objective;
    t.accepted <- Vec.copy t.current;
    move t
  end
  else begin
    (* The move hurt: discard it and head the other way. *)
    t.previous <- objective;
    t.current <- Vec.copy t.accepted;
    t.going_up <- not t.going_up;
    move t
  end;
  (* Maximize-class targets chase the measurement from one bound ahead;
     Track-class targets follow it exactly (no pull of their own). *)
  Array.iteri
    (fun i o ->
      match t.roles.(i) with
      | Maximize ->
        t.current.(i) <-
          clamp t i
            (measurements.(i) +. (lead_bounds *. Signal.bound_absolute o))
      | Track -> t.current.(i) <- clamp t i measurements.(i)
      | Limited _ | Fixed _ -> ())
    t.outputs;
  Vec.copy t.current

let reset t =
  Array.iteri
    (fun i o -> t.current.(i) <- initial_target o t.roles.(i))
    t.outputs;
  t.accepted <- Vec.copy t.current;
  t.best <- infinity;
  t.best_targets <- Vec.copy t.current;
  t.previous <- infinity;
  t.going_up <- false;
  t.warmup <- 8
