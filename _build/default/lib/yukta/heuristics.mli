(** The heuristic baseline controllers of Table IV.

    {b Coordinated heuristic} (the evaluation baseline): an HMP-style OS
    scheduler that splits threads by cluster capacity (using the number,
    type and frequency of cores — its coordination channel), and a vendor
    hardware stack: a rate-limited frequency ladder with conservative
    power/thermal watermarks plus TMU-style thermal core control and
    frequency caps. Representative of industry big.LITTLE stacks and of
    their worst-case-tuned margins.

    {b Decoupled heuristic}: round-robin OS placement blind to the
    hardware, and a "performance governor" hardware layer — maximum
    everything while readings look clean, threshold backoff only after
    sustained violations. The board's emergency machinery reacts faster,
    so the system ping-pongs against it (the Figure 10(b) oscillation). *)

val high_water : float
(** Back-off watermark as a fraction of each power limit. *)

val low_water : float
(** Creep-up watermark. *)

val os_coordinated :
  config:Board.Xu3.config -> outputs:Board.Xu3.outputs -> Board.Xu3.placement
(** HMP-style capacity-proportional thread split. *)

val os_round_robin : outputs:Board.Xu3.outputs -> Board.Xu3.placement

type coordinated_state = { mutable tick : int }

val coordinated_init : unit -> coordinated_state

val hw_coordinated :
  ?state:coordinated_state ->
  config:Board.Xu3.config ->
  outputs:Board.Xu3.outputs ->
  placement:Board.Xu3.placement ->
  unit ->
  Board.Xu3.config
(** One epoch of the vendor hardware stack. [config] should be the
    {e effective} configuration (what the chip actually runs). *)

type decoupled_state = {
  mutable violation_epochs : int;
  mutable backoff_level : int;
  mutable clean_epochs : int;
}

val decoupled_init : unit -> decoupled_state
val decoupled_reset : decoupled_state -> unit

val hw_decoupled :
  decoupled_state -> outputs:Board.Xu3.outputs -> Board.Xu3.config
