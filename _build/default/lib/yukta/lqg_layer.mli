(** LQG baseline controllers (Section VI-B).

    The state-of-the-art MIMO comparison point: LQI tracking compensators
    (Kalman predictor + integral-augmented LQR) built from the same
    identified models and comparable weights, but without the SSV
    machinery — no external-signal channels (hence no coordination), no
    output deviation bounds, no input quantization information, and no
    uncertainty guardband. *)

val period : float

val synthesize_lqg :
  ?r_scale:float ->
  model:Control.Ss.t ->
  outputs:Signal.output array ->
  inputs:Signal.input array ->
  unit ->
  Control.Ss.t
(** LQI compensator from measured deviations to input commands. Output
    weighting mirrors the SSV bounds (inverse-square), input weighting the
    SSV input weights scaled by [r_scale] (default 1).
    @raise Control.Dare.No_solution on unstabilizable data. *)

val hw_controller : Training.records -> Controller.t
(** Decoupled hardware LQG: model identified from the layer's own inputs
    only (the other layer's signals land in the noise). *)

val sw_controller : Training.records -> Controller.t

val monolithic_inputs : unit -> Signal.input array
val monolithic_outputs : unit -> Signal.output array

val monolithic_measurements : Board.Xu3.outputs -> Linalg.Vec.t

val monolithic_controller : Training.records -> Controller.t
(** One LQG over both layers' inputs and (deduplicated) outputs. *)

val monolithic_roles : Optimizer.role array
val monolithic_optimizer : unit -> Optimizer.t
