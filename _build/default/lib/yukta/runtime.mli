(** The multilayer runtime (Figures 4, 5 and 7).

    Every 500 ms each layer's controller samples the board and actuates
    its own inputs; SSV controllers additionally read the other layer's
    current inputs as external signals, and their optimizers retarget
    every few epochs from the measured E x D rate. This module wires every
    Table IV scheme (plus the Section VI-B LQG arrangements) to the board
    and runs executions to completion. *)

type scheme =
  | Coordinated_heuristic   (** Table IV(a) — the evaluation baseline. *)
  | Decoupled_heuristic     (** Table IV(b). *)
  | Hw_ssv_os_heuristic     (** Table IV(c): Yukta HW SSV + OS heuristic. *)
  | Hw_ssv_os_ssv           (** Table IV(d): the full Yukta design. *)
  | Lqg_decoupled           (** Section VI-B: per-layer LQG, no channels. *)
  | Lqg_monolithic          (** Section VI-B: one LQG over both layers. *)

val scheme_name : scheme -> string
val all_schemes : scheme list

type trace_point = {
  time : float;
  power_big : float;          (** True instantaneous big-cluster power. *)
  power_big_sensor : float;   (** What the 260 ms sensor reported. *)
  power_little : float;
  bips : float;
  temperature : float;
  freq_big : float;           (** Effective (post-emergency) frequency. *)
  big_cores : int;
}

type result = {
  metrics : Board.Xu3.metrics;
  completed : bool;
  trace : trace_point array;  (** Per-epoch; empty unless requested. *)
}

val run :
  ?max_time:float ->
  ?collect_trace:bool ->
  ?sensor_period:float ->
  scheme ->
  Board.Workload.t list ->
  result
(** Run a scheme to workload completion (or [max_time], default 3000 s).
    SSV/LQG schemes use the default {!Designs}; [sensor_period] overrides
    the power sensor refresh for the sensitivity ablation. *)

(** {1 Custom drivers}

    The pieces the benchmark harness composes for sensitivity studies. *)

type driver = { reset : unit -> unit; act : Board.Xu3.t -> Board.Xu3.outputs -> unit }

val run_driver :
  ?max_time:float ->
  ?collect_trace:bool ->
  ?sensor_period:float ->
  driver ->
  Board.Workload.t list ->
  result

val yukta_full_driver : Design.synthesis -> Design.synthesis -> driver
(** Scheme (d) with explicit (e.g. variant) designs: HW then SW. *)

val yukta_full_no_externals_driver : Design.synthesis -> Design.synthesis -> driver
(** Ablation: the same controllers with their external-signal channels fed
    the constant center value (the coordination channel cut). *)

val yukta_full_fixed_targets_driver : Design.synthesis -> Design.synthesis -> driver
(** Ablation: optimizers replaced by their initial constant targets. *)

val run_fixed_targets :
  ?max_time:float ->
  hw_design:Design.synthesis ->
  sw_design:Design.synthesis ->
  hw_targets:Linalg.Vec.t ->
  sw_targets:Linalg.Vec.t ->
  Board.Workload.t list ->
  trace_point array
(** The fixed-target mode of Sections VI-E1/VI-E3: both controllers track
    the given constant targets; returns the per-epoch trace. *)
