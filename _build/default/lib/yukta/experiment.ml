(* Evaluation drivers: run schemes across the paper's suite and normalize
   to the Coordinated heuristic baseline, as every figure does. *)

type app_result = {
  app : string;
  scheme : Runtime.scheme;
  metrics : Board.Xu3.metrics;
  completed : bool;
}

let run_app ?max_time scheme (name, workloads) =
  let r = Runtime.run ?max_time scheme workloads in
  { app = name; scheme; metrics = r.Runtime.metrics; completed = r.Runtime.completed }

let suite_entries () =
  List.map
    (fun w -> (w.Board.Workload.name, [ w ]))
    Board.Workload.evaluation_suite

let mix_entries () = Board.Workload.mixes

(* Geometric-mean-free averaging as in the paper's bar charts: arithmetic
   mean of per-application normalized values. *)
let average xs = List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)

type normalized_row = {
  name : string;
  exd : (Runtime.scheme * float) list;   (* Normalized E x D per scheme. *)
  time : (Runtime.scheme * float) list;  (* Normalized execution time. *)
}

(* Run [schemes] on every entry and normalize each metric to the first
   scheme in the list (the baseline). *)
let run_suite ?max_time ~schemes entries =
  let baseline =
    match schemes with
    | [] -> invalid_arg "Experiment.run_suite: no schemes"
    | s :: _ -> s
  in
  List.map
    (fun entry ->
      let name = fst entry in
      let results = List.map (fun s -> (s, run_app ?max_time s entry)) schemes in
      let base = (List.assoc baseline results).metrics in
      let exd =
        List.map
          (fun (s, r) ->
            (s, r.metrics.Board.Xu3.energy_delay /. base.Board.Xu3.energy_delay))
          results
      in
      let time =
        List.map
          (fun (s, r) ->
            ( s,
              r.metrics.Board.Xu3.execution_time
              /. base.Board.Xu3.execution_time ))
          results
      in
      { name; exd; time })
    entries

(* Suite averages in the figure-9 layout: SPEC average, PARSEC average,
   and overall average, computed on the normalized values. *)
let averages rows ~spec_names ~parsec_names ~value =
  let pick names =
    List.filter (fun r -> List.mem r.name names) rows
  in
  let avg_of rows_subset scheme =
    average (List.map (fun r -> List.assoc scheme (value r)) rows_subset)
  in
  fun scheme ->
    let sav = avg_of (pick spec_names) scheme in
    let pav = avg_of (pick parsec_names) scheme in
    let avg = avg_of rows scheme in
    (sav, pav, avg)
