(** Training-run data collection (Section IV-C).

    One board run per training application, exciting every actuated
    signal across its allowed grid while recording what each layer's
    controller would see. The hardware layer's record pairs
    [[4 hw inputs; 3 placement signals]] with
    [[perf; power_big; power_little; temp]]; the software layer's pairs
    [[3 placement signals; 4 hw inputs]] with
    [[perf_little; perf_big; delta spare-compute]]. Records are what the
    hardware {e actually ran} (post-quantization, post-emergency) and what
    the sensors reported. *)

type records = {
  hw_u : Linalg.Vec.t array;
  hw_y : Linalg.Vec.t array;
  sw_u : Linalg.Vec.t array;
  sw_y : Linalg.Vec.t array;
}

val collect :
  ?epochs_per_workload:int ->
  ?seed:int ->
  ?workloads:Board.Workload.t list ->
  unit ->
  records
(** Default: 220 epochs on each of the six training applications. *)
