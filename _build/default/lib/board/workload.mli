(** Synthetic workload models.

    The paper evaluates 8-threaded PARSEC programs, 8 copies of SPEC
    CPU2006 programs, and 4+4 heterogeneous mixes. We cannot ship those
    binaries, so each application is modelled by the properties that the
    controllers actually react to: a sequence of phases, each with a thread
    count, an instruction budget, a memory intensity (how much performance
    saturates with frequency) and an ILP factor (peak IPC scale). Profiles
    are chosen to span the same qualitative space: compute-bound vs
    memory-bound, serial+parallel structure, abrupt thread-count changes.

    A {e job} is an application instance making progress on the board; the
    board runs a list of jobs (one for homogeneous workloads, two for the
    paper's mixes). *)

type phase = {
  threads : int;         (** Active threads while this phase runs. *)
  ginsts : float;        (** Instructions to retire in the phase, x10^9. *)
  mem_intensity : float; (** 0 = compute bound, 1 = fully memory bound. *)
  ipc_scale : float;     (** Multiplies the core's peak IPC. *)
  sync_factor : float;   (** Fraction of barrier-synchronized work: 0 for
                             independent copies (SPEC rate), near 1 for
                             lockstep data-parallel phases. Stragglers on
                             slow cores gate this fraction of the
                             throughput. *)
}

type t = { name : string; phases : phase list }

val validate : t -> unit
(** @raise Invalid_argument on empty phases or non-positive budgets. *)

val total_ginsts : t -> float

val max_threads : t -> int

val scale : ?threads:int -> ?ginsts:float -> t -> t
(** Scale every phase's thread count (capped) and instruction budget;
    used to build 4-thread halves for heterogeneous mixes. *)

(** {1 The paper's evaluation suite} *)

val parsec : t list
(** blackscholes, bodytrack, facesim, fluidanimate, raytrace, x264,
    canneal, streamcluster — 8 threads, native-input scale. *)

val spec : t list
(** h264ref, mcf, omnetpp, gamess, gromacs, dealII — 8 copies, train
    inputs. *)

val evaluation_suite : t list
(** [spec @ parsec] in the order of Figure 9. *)

val training : t list
(** swaptions, vips, astar, perlbench, milc, namd — the disjoint training
    set used for system identification. *)

val by_name : string -> t
(** Look up any workload above by name. @raise Not_found otherwise. *)

val synthetic :
  ?seed:int ->
  ?phases:int ->
  ?ginsts:float ->
  ?max_threads:int ->
  unit ->
  t
(** Random phase-structured workload: per-phase thread counts, memory
    intensities, ILP factors and sync fractions drawn from the ranges the
    real suite spans. Deterministic for a given [seed]. Used by the
    robustness property tests and by workload-sweep experiments. *)

val mixes : (string * t list) list
(** The Figure 14 heterogeneous workloads: blmc, stga, blst, mcga — each a
    pair of 4-thread jobs run concurrently. *)
