(** Two-node RC thermal model of the board.

    The hot spot sits on the big cluster: a fast node (seconds) tracks the
    power-weighted die heating and a slow node (tens of seconds) tracks
    package/heat-sink warm-up. Calibrated so that running exactly at the
    paper's power limits (3.3 W big + 0.33 W little) settles just below
    the 79C thermal limit, while an unconstrained burst overshoots and
    forces the emergency heuristics to act. *)

type t

val ambient : float
(** 30 C. *)

val create : unit -> t
(** Board at ambient. *)

val step : t -> power_big:float -> power_little:float -> dt:float -> unit
(** Advance the RC network by [dt] seconds under the given cluster powers. *)

val temperature : t -> float
(** Current hot-spot temperature (C). *)

val steady_state : power_big:float -> power_little:float -> float
(** Temperature reached if the given powers were held forever. *)

val copy : t -> t
