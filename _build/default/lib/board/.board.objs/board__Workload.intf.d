lib/board/workload.mli:
