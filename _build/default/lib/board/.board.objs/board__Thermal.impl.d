lib/board/thermal.ml:
