lib/board/power.ml: Dvfs Float
