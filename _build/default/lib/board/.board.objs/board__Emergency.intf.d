lib/board/emergency.mli:
