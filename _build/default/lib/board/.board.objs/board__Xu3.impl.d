lib/board/xu3.ml: Dvfs Emergency Float List Perf Power Sensors Thermal Workload
