lib/board/sensors.ml: Float Random
