lib/board/thermal.mli:
