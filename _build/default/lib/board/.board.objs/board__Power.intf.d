lib/board/power.mli: Dvfs
