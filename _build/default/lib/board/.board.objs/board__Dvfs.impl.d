lib/board/dvfs.ml: Array Control Float
