lib/board/sensors.mli:
