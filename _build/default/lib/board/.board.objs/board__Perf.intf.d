lib/board/perf.mli: Dvfs
