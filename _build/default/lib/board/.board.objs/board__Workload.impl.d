lib/board/workload.ml: Array List Printf Random
