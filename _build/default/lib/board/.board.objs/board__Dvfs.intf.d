lib/board/dvfs.mli: Control
