lib/board/xu3.mli: Workload
