lib/board/perf.ml: Dvfs Float
