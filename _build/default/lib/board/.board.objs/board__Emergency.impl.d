lib/board/emergency.ml: Float
