(** DVFS tables of the simulated Exynos 5422 big.LITTLE processor.

    The big (Cortex-A15) cluster runs 0.2-2.0 GHz and the little
    (Cortex-A7) cluster 0.2-1.4 GHz, both in 0.1 GHz steps, matching the
    ODROID XU3 ranges the paper actuates on. Voltage follows an affine
    frequency map fitted to published Exynos operating points; power scales
    as [C V^2 f]. *)

type cluster = Big | Little

val cluster_name : cluster -> string

val f_min : cluster -> float
(** 0.2 GHz for both clusters. *)

val f_max : cluster -> float
(** 2.0 GHz (big) / 1.4 GHz (little). *)

val f_step : float
(** 0.1 GHz. *)

val levels : cluster -> float array
(** All frequency levels, ascending. *)

val channel : cluster -> Control.Quantize.channel
(** The quantization descriptor handed to SSV design. *)

val quantize : cluster -> float -> float
(** Project an arbitrary request onto the DVFS table. *)

val voltage : cluster -> float -> float
(** Supply voltage (V) at a given frequency (GHz). *)

val transition_cost_s : float
(** Wall-clock cost of a frequency change (PLL relock), in seconds. *)

val hotplug_cost_s : float
(** Wall-clock cost of turning a core on or off, in seconds. *)

val core_count : int
(** Four cores per cluster. *)
