(** Core performance model.

    A thread's throughput on a core follows a roofline-flavoured law: at
    low frequency it scales with [ipc_peak * f]; as frequency rises, the
    memory-bound fraction of the instruction mix saturates against a fixed
    memory service rate, so the effective IPC falls. Multiplexing several
    threads on one core time-shares its throughput with a small context-
    switch penalty — the behaviour the software controller exploits when it
    packs threads to let the hardware controller power cores off. *)

val ipc_peak : Dvfs.cluster -> float
(** Peak IPC of one core: 2.0 (A15, out-of-order) / 0.9 (A7, in-order). *)

val core_throughput :
  kind:Dvfs.cluster ->
  freq:float ->
  mem_intensity:float ->
  ipc_scale:float ->
  threads_on_core:float ->
  float
(** Instructions per second (in GIPS) retired by one core running
    [threads_on_core] runnable threads of the given character. Zero
    threads yields zero. *)

val cluster_throughput :
  kind:Dvfs.cluster ->
  freq:float ->
  cores_on:int ->
  threads:int ->
  threads_per_core:float ->
  mem_intensity:float ->
  ipc_scale:float ->
  float * int
(** Aggregate GIPS of a cluster and the number of non-idle cores, when
    [threads] threads are spread at [threads_per_core] per non-idle core
    (clamped to what [cores_on] allows). *)

val speedup_big_over_little : mem_intensity:float -> float
(** Convenience ratio used by schedulers: throughput of a big core at
    [f_max] over a little core at its [f_max] for the given mix. *)
