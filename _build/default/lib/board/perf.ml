let ipc_peak = function Dvfs.Big -> 2.0 | Dvfs.Little -> 0.9

(* Memory saturation coefficient: how fast effective IPC degrades as
   frequency grows for memory-bound work. The big core generates more
   outstanding traffic per GHz. *)
let mem_beta = function Dvfs.Big -> 0.5 | Dvfs.Little -> 0.4

(* Throughput lost per extra thread multiplexed on a core (context
   switches, cache thrash). *)
let multiplex_penalty = 0.18

let core_throughput ~kind ~freq ~mem_intensity ~ipc_scale ~threads_on_core =
  if threads_on_core <= 0.0 then 0.0
  else begin
    let ipc_eff =
      ipc_peak kind *. ipc_scale
      /. (1.0 +. (mem_intensity *. mem_beta kind *. freq))
    in
    let sharing =
      Float.max 0.5 (1.0 -. (multiplex_penalty *. (threads_on_core -. 1.0)))
    in
    ipc_eff *. freq *. sharing
  end

let cluster_throughput ~kind ~freq ~cores_on ~threads ~threads_per_core
    ~mem_intensity ~ipc_scale =
  if threads <= 0 || cores_on <= 0 then (0.0, 0)
  else begin
    let tpc = Float.max 1.0 threads_per_core in
    let cores_wanted =
      int_of_float (ceil (Float.of_int threads /. tpc))
    in
    let busy = min cores_on (max 1 cores_wanted) in
    let actual_tpc = Float.of_int threads /. Float.of_int busy in
    let per_core =
      core_throughput ~kind ~freq ~mem_intensity ~ipc_scale
        ~threads_on_core:actual_tpc
    in
    (per_core *. Float.of_int busy, busy)
  end

let speedup_big_over_little ~mem_intensity =
  let big =
    core_throughput ~kind:Dvfs.Big ~freq:(Dvfs.f_max Dvfs.Big)
      ~mem_intensity ~ipc_scale:1.0 ~threads_on_core:1.0
  in
  let little =
    core_throughput ~kind:Dvfs.Little ~freq:(Dvfs.f_max Dvfs.Little)
      ~mem_intensity ~ipc_scale:1.0 ~threads_on_core:1.0
  in
  big /. little
