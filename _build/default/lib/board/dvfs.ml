type cluster = Big | Little

let cluster_name = function Big -> "big" | Little -> "little"

let f_min _ = 0.2

let f_max = function Big -> 2.0 | Little -> 1.4

let f_step = 0.1

let levels c =
  let n = 1 + int_of_float (Float.round ((f_max c -. f_min c) /. f_step)) in
  Array.init n (fun i -> f_min c +. (Float.of_int i *. f_step))

let channel c =
  Control.Quantize.make ~minimum:(f_min c) ~maximum:(f_max c) ~step:f_step

let quantize c f = Control.Quantize.project (channel c) f

(* Near-flat V/F map of the low-power bins: the board operates in a
   leakage-dominated regime where supply voltage barely scales with
   frequency, so cluster power grows essentially linearly in f. This is
   what keeps the energy-delay optimum of compute-bound work at the power
   cap (as on the paper's board) rather than at mid frequency. *)
let voltage c f =
  match c with
  | Big -> 1.03 +. (0.01 *. f)
  | Little -> 1.02 +. (0.012 *. f)

let transition_cost_s = 0.0005

let hotplug_cost_s = 0.002

let core_count = 4
