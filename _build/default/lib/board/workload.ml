type phase = {
  threads : int;
  ginsts : float;
  mem_intensity : float;
  ipc_scale : float;
  sync_factor : float;
}

type t = { name : string; phases : phase list }

let validate { name; phases } =
  if phases = [] then invalid_arg ("Workload " ^ name ^ ": no phases");
  List.iter
    (fun p ->
      if p.threads <= 0 then invalid_arg ("Workload " ^ name ^ ": no threads");
      if p.ginsts <= 0.0 then
        invalid_arg ("Workload " ^ name ^ ": non-positive budget");
      if p.mem_intensity < 0.0 || p.mem_intensity > 1.0 then
        invalid_arg ("Workload " ^ name ^ ": mem_intensity out of [0,1]");
      if p.ipc_scale <= 0.0 then
        invalid_arg ("Workload " ^ name ^ ": non-positive ipc_scale");
      if p.sync_factor < 0.0 || p.sync_factor > 1.0 then
        invalid_arg ("Workload " ^ name ^ ": sync_factor out of [0,1]"))
    phases

let total_ginsts w = List.fold_left (fun acc p -> acc +. p.ginsts) 0.0 w.phases

let max_threads w = List.fold_left (fun acc p -> max acc p.threads) 0 w.phases

let scale ?threads ?ginsts w =
  let tscale p =
    match threads with None -> p.threads | Some t -> min t p.threads
  in
  let gscale =
    match ginsts with
    | None -> 1.0
    | Some g -> g /. total_ginsts w
  in
  {
    w with
    phases =
      List.map
        (fun p -> { p with threads = tscale p; ginsts = p.ginsts *. gscale })
        w.phases;
  }

(* Global budget scale chosen so executions run 150-300 s under the
   baseline controller, the range of the paper's native/train inputs. *)
let duration_scale = 2.5

let ph ?(sync = 0.0) threads ginsts mem_intensity ipc_scale =
  {
    threads;
    ginsts = ginsts *. duration_scale;
    mem_intensity;
    ipc_scale;
    sync_factor = sync;
  }

(* PARSEC with native-input scale: phase structure follows the programs'
   published parallelism profiles (serial prologue for blackscholes and
   raytrace, frame-batch thread variation for x264, barrier-separated
   passes for streamcluster, heavy memory traffic for canneal). *)
let parsec =
  [
    {
      name = "blackscholes";
      phases = [ ph 1 18.0 0.10 1.0; ph ~sync:0.25 8 700.0 0.12 1.05 ];
    };
    {
      name = "bodytrack";
      phases =
        [ ph 1 8.0 0.2 0.9; ph ~sync:0.4 8 240.0 0.30 0.95; ph 1 8.0 0.2 0.9; ph ~sync:0.4 8 240.0 0.30 0.95 ];
    };
    { name = "facesim"; phases = [ ph ~sync:0.45 8 600.0 0.35 0.90 ] };
    { name = "fluidanimate"; phases = [ ph ~sync:0.5 8 560.0 0.40 0.85 ] };
    {
      name = "raytrace";
      phases = [ ph 1 14.0 0.15 1.1; ph ~sync:0.25 8 640.0 0.20 1.10 ];
    };
    {
      name = "x264";
      phases =
        [ ph ~sync:0.25 4 120.0 0.25 1.0; ph ~sync:0.25 8 300.0 0.25 1.0; ph ~sync:0.25 2 60.0 0.25 1.0; ph ~sync:0.25 8 280.0 0.25 1.0 ];
    };
    { name = "canneal"; phases = [ ph ~sync:0.3 8 300.0 0.75 0.60 ] };
    {
      name = "streamcluster";
      phases = [ ph ~sync:0.6 8 330.0 0.70 0.65; ph 1 8.0 0.4 0.8; ph ~sync:0.6 8 160.0 0.70 0.65 ];
    };
  ]

(* SPEC rate-style: 8 identical copies, statistically flat phases. *)
let spec =
  [
    { name = "h264ref"; phases = [ ph 8 800.0 0.15 1.20 ] };
    { name = "mcf"; phases = [ ph 8 230.0 0.90 0.45 ] };
    { name = "omnetpp"; phases = [ ph 8 300.0 0.65 0.60 ] };
    { name = "gamess"; phases = [ ph 8 860.0 0.08 1.25 ] };
    { name = "gromacs"; phases = [ ph 8 780.0 0.12 1.15 ] };
    { name = "dealII"; phases = [ ph 8 600.0 0.35 1.00 ] };
  ]

let evaluation_suite = spec @ parsec

let training =
  [
    { name = "swaptions"; phases = [ ph ~sync:0.15 8 500.0 0.10 1.10 ] };
    { name = "vips"; phases = [ ph 1 10.0 0.3 0.9; ph ~sync:0.3 8 430.0 0.30 0.95 ] };
    { name = "astar"; phases = [ ph 8 340.0 0.50 0.75 ] };
    { name = "perlbench"; phases = [ ph 8 500.0 0.25 1.05 ] };
    { name = "milc"; phases = [ ph 8 280.0 0.80 0.55 ] };
    { name = "namd"; phases = [ ph 8 700.0 0.10 1.15 ] };
  ]

let all = parsec @ spec @ training

let by_name name = List.find (fun w -> w.name = name) all

(* 4-thread halves for the heterogeneous mixes: half the threads, and
   roughly half the instruction budget (PARSEC inputs shrink with thread
   count in the paper's setup; SPEC mixes run 4 copies). *)
let half name =
  let w = by_name name in
  scale ~threads:4 ~ginsts:(total_ginsts w /. 2.0) w

let synthetic ?(seed = 1) ?(phases = 3) ?(ginsts = 600.0) ?(max_threads = 8)
    () =
  if phases < 1 then invalid_arg "Workload.synthetic: need at least one phase";
  let st = Random.State.make [| seed; phases; max_threads |] in
  let weights = Array.init phases (fun _ -> 0.2 +. Random.State.float st 1.0) in
  let total_w = Array.fold_left ( +. ) 0.0 weights in
  let phase i =
    {
      threads = 1 + Random.State.int st max_threads;
      ginsts = ginsts *. weights.(i) /. total_w;
      mem_intensity = Random.State.float st 0.9;
      ipc_scale = 0.5 +. Random.State.float st 0.75;
      sync_factor = Random.State.float st 0.6;
    }
  in
  let w =
    {
      name = Printf.sprintf "synthetic-%d" seed;
      phases = List.init phases phase;
    }
  in
  validate w;
  w

let mixes =
  [
    ("blmc", [ half "blackscholes"; half "mcf" ]);
    ("stga", [ half "streamcluster"; half "gamess" ]);
    ("blst", [ half "blackscholes"; half "streamcluster" ]);
    ("mcga", [ half "mcf"; half "gamess" ]);
  ]

let () = List.iter validate all
