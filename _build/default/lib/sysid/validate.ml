open Linalg

let fit_percent ~actual ~predicted =
  if Array.length actual <> Array.length predicted then
    invalid_arg "Validate.fit_percent: length mismatch";
  let len = Array.length actual in
  if len = 0 then invalid_arg "Validate.fit_percent: empty record";
  let ny = Vec.dim actual.(0) in
  Vec.init ny (fun c ->
      let mean =
        Array.fold_left (fun acc v -> acc +. v.(c)) 0.0 actual
        /. Float.of_int len
      in
      let err = ref 0.0 and dev = ref 0.0 in
      for t = 0 to len - 1 do
        let e = actual.(t).(c) -. predicted.(t).(c) in
        err := !err +. (e *. e);
        let d = actual.(t).(c) -. mean in
        dev := !dev +. (d *. d)
      done;
      if !dev <= 1e-300 then if !err <= 1e-300 then 100.0 else 0.0
      else 100.0 *. (1.0 -. Float.sqrt (!err /. !dev)))

let autocorrelation series n =
  let len = Vec.dim series in
  if len < n + 2 then invalid_arg "Validate.autocorrelation: series too short";
  let mean = Array.fold_left ( +. ) 0.0 series /. Float.of_int len in
  let centered = Vec.map (fun x -> x -. mean) series in
  let denom = Vec.dot centered centered in
  Vec.init n (fun k ->
      let lag = k + 1 in
      let acc = ref 0.0 in
      for t = lag to len - 1 do
        acc := !acc +. (centered.(t) *. centered.(t - lag))
      done;
      if denom <= 1e-300 then 0.0 else !acc /. denom)

let whiteness ?(lags = 10) series =
  let ac = autocorrelation series lags in
  let band = 1.96 /. Float.sqrt (Float.of_int (Vec.dim series)) in
  let inside = Array.fold_left (fun n r -> if Float.abs r <= band then n + 1 else n) 0 ac in
  Float.of_int inside /. Float.of_int lags

let channel record i = Array.map (fun v -> v.(i)) record
