open Linalg

type t = { plant : Arx.model; noise : Vec.t; iterations : int }

let residuals model ~u ~y =
  let pred = Arx.predict_one_step model ~u ~y in
  Array.mapi
    (fun t yt ->
      if t < max model.Arx.na (model.Arx.nb - 1) then Vec.create (Vec.dim yt)
      else Vec.sub yt pred.(t))
    y

(* Fit a scalar AR model pooled across output channels:
   e_c(t) = sum_k c_k e_c(t-k). Pooling keeps the prefilter common to all
   channels, which the GLS refit requires. *)
let fit_noise_ar order res =
  let ny = Vec.dim res.(0) in
  let len = Array.length res in
  let rows = (len - order) * ny in
  if rows <= order then Vec.create order
  else begin
    let phi = Mat.create rows order in
    let target = Vec.create rows in
    let r = ref 0 in
    for t = order to len - 1 do
      for c = 0 to ny - 1 do
        for k = 1 to order do
          Mat.set phi !r (k - 1) res.(t - k).(c)
        done;
        target.(!r) <- res.(t).(c);
        incr r
      done
    done;
    (* Ridge regularization keeps the filter stable-ish when residuals are
       nearly white (coefficients shrink to zero); scaled to the residual
       energy so it never dominates a genuine noise model. *)
    let energy = Vec.dot target target /. Float.of_int rows in
    let lambda = 1e-3 *. Float.of_int rows *. Float.max 1e-12 energy /. 100.0 in
    let phi_aug = Mat.vcat phi (Mat.scalar order (Float.sqrt lambda)) in
    let target_aug = Vec.concat target (Vec.create order) in
    Qr.solve_least_squares phi_aug target_aug
  end

(* The prefilter is the polynomial 1 - c_1 q^-1 - ... - c_nc q^-nc. *)
let prefilter_of_noise noise =
  Vec.concat (Vec.of_list [ 1.0 ]) (Vec.map (fun c -> -.c) noise)

let fit ?(noise_order = 2) ?(max_iterations = 4) ~na ~nb ~u ~y () =
  let plant = ref (Arx.fit ~na ~nb ~u ~y) in
  let noise = ref (Vec.create noise_order) in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    let res = residuals !plant ~u ~y in
    let new_noise = fit_noise_ar noise_order res in
    let delta = Vec.norm_inf (Vec.sub new_noise !noise) in
    noise := new_noise;
    if delta < 1e-4 then converged := true
    else begin
      let filter = prefilter_of_noise new_noise in
      plant := Arx.fit_weighted ~na ~nb ~filter ~u ~y
    end
  done;
  { plant = !plant; noise = !noise; iterations = !iterations }
