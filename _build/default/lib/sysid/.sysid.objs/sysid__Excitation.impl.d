lib/sysid/excitation.ml: Array Linalg Random
