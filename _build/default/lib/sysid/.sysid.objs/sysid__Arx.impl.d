lib/sysid/arx.ml: Array Control Float Linalg Mat Qr Vec
