lib/sysid/validate.ml: Array Float Linalg Vec
