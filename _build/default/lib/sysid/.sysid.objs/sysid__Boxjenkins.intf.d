lib/sysid/boxjenkins.mli: Arx Linalg
