lib/sysid/arx.mli: Control Linalg
