lib/sysid/validate.mli: Linalg
