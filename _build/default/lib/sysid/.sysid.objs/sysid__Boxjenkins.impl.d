lib/sysid/boxjenkins.ml: Array Arx Float Linalg Mat Qr Vec
