lib/sysid/excitation.mli: Linalg
