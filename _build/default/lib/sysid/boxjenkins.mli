(** Box-Jenkins-style model refinement.

    A plain ARX fit is biased when the disturbance is colored, because the
    same polynomial must explain both the plant and the noise. The
    Box-Jenkins family models the noise separately. We implement the
    classic iterative generalized-least-squares procedure (Clarke):

    + fit an ARX model,
    + fit an AR polynomial to its one-step residuals (the noise model),
    + prefilter inputs and outputs by that polynomial and refit,
    + repeat until the noise model stops changing.

    The result is an ARX-structured plant model whose estimate is
    consistent under AR-colored noise, plus the identified noise
    polynomial — the same deliverables MATLAB's [bj] routine feeds into the
    paper's controller design. *)

type t = {
  plant : Arx.model;
  noise : Linalg.Vec.t;  (** AR coefficients [c_1..c_nc] of the noise model
                             [e(t) = c_1 e(t-1) + ... + innovation]. *)
  iterations : int;      (** GLS iterations actually performed. *)
}

val fit :
  ?noise_order:int ->
  ?max_iterations:int ->
  na:int ->
  nb:int ->
  u:Linalg.Vec.t array ->
  y:Linalg.Vec.t array ->
  unit ->
  t
(** Defaults: [noise_order = 2], [max_iterations = 4]. *)

val residuals : Arx.model -> u:Linalg.Vec.t array -> y:Linalg.Vec.t array -> Linalg.Vec.t array
(** One-step-ahead prediction residuals (zero for the warm-up samples). *)
