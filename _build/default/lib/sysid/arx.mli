(** MIMO ARX model estimation by linear least squares.

    The model is

    [y(t) = A_1 y(t-1) + ... + A_na y(t-na)
          + B_0 u(t) + B_1 u(t-1) + ... + B_{nb-1} u(t-nb+1) + e(t)]

    matching the paper's Section IV-C: with [na = 4], [nb = 4] each output
    at time [T] depends on the outputs at [T-1..T-4] and the inputs at
    [T..T-3]. Estimation solves one multi-output least-squares problem;
    {!to_ss} realizes the polynomial model as a state-space system in block
    observer canonical form, which is what controller synthesis consumes. *)

type model = {
  na : int;
  nb : int;
  ny : int;
  nu : int;
  a : Linalg.Mat.t array;  (** [na] matrices of size [ny x ny]. *)
  b : Linalg.Mat.t array;  (** [nb] matrices of size [ny x nu]; [b.(0)] is
                               the direct feedthrough. *)
}

val fit :
  na:int -> nb:int -> u:Linalg.Vec.t array -> y:Linalg.Vec.t array -> model
(** Least-squares fit from input/output records (arrays indexed by time).
    @raise Invalid_argument if the record is shorter than the regression
    horizon or dimensions are inconsistent. *)

val fit_weighted :
  na:int ->
  nb:int ->
  filter:Linalg.Vec.t ->
  u:Linalg.Vec.t array ->
  y:Linalg.Vec.t array ->
  model
(** Like {!fit} after prefiltering every channel of [u] and [y] with the
    FIR filter [filter] (coefficients of [1 - c_1 q^-1 - ...]); the
    generalized-least-squares step used by {!Boxjenkins}. *)

val predict_one_step : model -> u:Linalg.Vec.t array -> y:Linalg.Vec.t array -> Linalg.Vec.t array
(** One-step-ahead predictions over a record (first [max na (nb-1)]
    samples are echoed as-is since they lack history). *)

val simulate : model -> u:Linalg.Vec.t array -> y0:Linalg.Vec.t array -> Linalg.Vec.t array
(** Free-run simulation: past outputs are the model's own predictions.
    [y0] seeds the first [na] outputs. *)

val to_ss : model -> period:float -> Control.Ss.t
(** Block observer canonical realization with [na * ny] states. *)

val stable : model -> bool
(** Schur stability of the free-run dynamics. *)
