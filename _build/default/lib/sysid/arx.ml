open Linalg

type model = {
  na : int;
  nb : int;
  ny : int;
  nu : int;
  a : Mat.t array;
  b : Mat.t array;
}

let horizon na nb = max na (nb - 1)

(* Regressor row at time [t]: [y(t-1); ...; y(t-na); u(t); ...; u(t-nb+1)]. *)
let regressor na nb ~(u : Vec.t array) ~(y : Vec.t array) t =
  let ny = Vec.dim y.(0) and nu = Vec.dim u.(0) in
  let row = Vec.create ((na * ny) + (nb * nu)) in
  for i = 1 to na do
    Array.blit y.(t - i) 0 row ((i - 1) * ny) ny
  done;
  for j = 0 to nb - 1 do
    Array.blit u.(t - j) 0 row ((na * ny) + (j * nu)) nu
  done;
  row

let fit_on ~na ~nb ~u ~y =
  if Array.length u <> Array.length y then
    invalid_arg "Arx.fit: u and y record lengths differ";
  if na < 0 || nb < 1 then invalid_arg "Arx.fit: need na >= 0, nb >= 1";
  let len = Array.length y in
  let h = horizon na nb in
  let ny = Vec.dim y.(0) and nu = Vec.dim u.(0) in
  let rows = len - h in
  let cols = (na * ny) + (nb * nu) in
  if rows < cols then invalid_arg "Arx.fit: record too short for the order";
  let phi = Mat.create rows cols in
  let target = Mat.create rows ny in
  for r = 0 to rows - 1 do
    let t = h + r in
    Mat.set_row phi r (regressor na nb ~u ~y t);
    Mat.set_row target r y.(t)
  done;
  (* Ridge-regularized normal equations via QR on the stacked system keeps
     the fit well-posed when the excitation misses directions. *)
  let lambda = 1e-6 in
  let phi_aug = Mat.vcat phi (Mat.scalar cols (Float.sqrt lambda)) in
  let target_aug = Mat.vcat target (Mat.create cols ny) in
  let theta = Qr.solve_least_squares_mat phi_aug target_aug in
  (* theta is cols x ny; unpack into the coefficient matrices. *)
  let a =
    Array.init na (fun i ->
        Mat.transpose (Mat.sub_matrix theta (i * ny) 0 ny ny))
  in
  let b =
    Array.init nb (fun j ->
        Mat.transpose (Mat.sub_matrix theta ((na * ny) + (j * nu)) 0 nu ny))
  in
  { na; nb; ny; nu; a; b }

let fit ~na ~nb ~u ~y = fit_on ~na ~nb ~u ~y

(* Causal FIR filtering of a vector-valued record, channel-wise:
   v_f(t) = sum_k filter.(k) * v(t-k). *)
let fir_filter filter record =
  let nf = Vec.dim filter in
  Array.mapi
    (fun t _ ->
      let dim = Vec.dim record.(0) in
      let out = Vec.create dim in
      for k = 0 to min (nf - 1) t do
        for c = 0 to dim - 1 do
          out.(c) <- out.(c) +. (filter.(k) *. record.(t - k).(c))
        done
      done;
      out)
    record

let fit_weighted ~na ~nb ~filter ~u ~y =
  fit_on ~na ~nb ~u:(fir_filter filter u) ~y:(fir_filter filter y)

let predict_at model ~u ~y t =
  let phi = regressor model.na model.nb ~u ~y t in
  let ny = model.ny and nu = model.nu in
  let out = Vec.create ny in
  for i = 0 to model.na - 1 do
    let contrib = Mat.mul_vec model.a.(i) (Vec.slice phi (i * ny) ny) in
    for c = 0 to ny - 1 do
      out.(c) <- out.(c) +. contrib.(c)
    done
  done;
  for j = 0 to model.nb - 1 do
    let contrib =
      Mat.mul_vec model.b.(j) (Vec.slice phi ((model.na * ny) + (j * nu)) nu)
    in
    for c = 0 to ny - 1 do
      out.(c) <- out.(c) +. contrib.(c)
    done
  done;
  out

let predict_one_step model ~u ~y =
  let h = horizon model.na model.nb in
  Array.mapi
    (fun t yt -> if t < h then Vec.copy yt else predict_at model ~u ~y t)
    y

let simulate model ~u ~y0 =
  let h = horizon model.na model.nb in
  if Array.length y0 < h then invalid_arg "Arx.simulate: y0 shorter than lag";
  let len = Array.length u in
  let out = Array.make len (Vec.create model.ny) in
  for t = 0 to len - 1 do
    if t < h then out.(t) <- Vec.copy y0.(t)
    else out.(t) <- predict_at model ~u ~y:out t
  done;
  out

(* Block observer canonical form. With p = max(na, nb-1) block rows:
   y = x_1 + B0 u
   x_i' = A_i y + x_{i+1} + B_i u   (x_{p+1} = 0)
   so A(i,1) = A_i, A(i,i+1) = I, B_i' = B_i + A_i B_0, C = [I 0 ...]. *)
let to_ss model ~period =
  let p = max model.na (model.nb - 1) in
  let ny = model.ny and nu = model.nu in
  let ai i = if i < model.na then model.a.(i) else Mat.create ny ny in
  let bi i = if i < model.nb then model.b.(i) else Mat.create ny nu in
  let b0 = bi 0 in
  let n = p * ny in
  let a = Mat.create n n in
  let b = Mat.create n nu in
  for i = 0 to p - 1 do
    Mat.set_block a (i * ny) 0 (ai i);
    if i < p - 1 then
      Mat.set_block a (i * ny) ((i + 1) * ny) (Mat.identity ny);
    Mat.set_block b (i * ny) 0 (Mat.add (bi (i + 1)) (Mat.mul (ai i) b0))
  done;
  let c = Mat.hcat (Mat.identity ny) (Mat.create ny (n - ny)) in
  Control.Ss.make ~domain:(Control.Ss.Discrete period) ~a ~b ~c ~d:b0 ()

let stable model =
  let ss = to_ss model ~period:1.0 in
  Control.Ss.is_stable ss
