type t = { seed : int; hold : int }

let default = { seed = 1; hold = 3 }

let multilevel_state st { hold; _ } ~levels ~length =
  if Array.length levels = 0 then invalid_arg "Excitation: no levels";
  if hold <= 0 then invalid_arg "Excitation: hold must be positive";
  let current = ref levels.(0) in
  Linalg.Vec.init length (fun i ->
      if i mod hold = 0 then
        current := levels.(Random.State.int st (Array.length levels));
      !current)

let multilevel t ~levels ~length =
  let st = Random.State.make [| t.seed; Array.length levels; length |] in
  multilevel_state st t ~levels ~length

let prbs t ~low ~high ~length = multilevel t ~levels:[| low; high |] ~length

let channels t ~levels ~length =
  let n = Array.length levels in
  let per_channel =
    Array.mapi
      (fun c lv ->
        let st = Random.State.make [| t.seed; c; 7919 |] in
        multilevel_state st t ~levels:lv ~length)
      levels
  in
  Array.init length (fun i -> Linalg.Vec.init n (fun c -> per_channel.(c).(i)))
