(** Model validation metrics.

    The identification loop accepts a model only when it reproduces held-out
    data (FIT%) and leaves residuals that look like white noise — both
    standard practice from Ljung and both reported for every Yukta layer
    model. *)

val fit_percent : actual:Linalg.Vec.t array -> predicted:Linalg.Vec.t array -> Linalg.Vec.t
(** Per-channel normalized fit [100 * (1 - |y - yhat| / |y - mean y|)];
    100 is perfect, 0 no better than the mean, negative worse. *)

val autocorrelation : Linalg.Vec.t -> int -> Linalg.Vec.t
(** Normalized autocorrelation of a scalar series at lags [1..n]
    (lag-0 value is 1 by construction and omitted). *)

val whiteness : ?lags:int -> Linalg.Vec.t -> float
(** Fraction of the first [lags] (default 10) autocorrelation values within
    the 95% confidence band [+-1.96/sqrt N]; near 1 means white. *)

val channel : Linalg.Vec.t array -> int -> Linalg.Vec.t
(** Extract channel [i] of a vector-valued record as a scalar series. *)
