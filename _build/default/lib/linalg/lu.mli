(** LU factorization with partial pivoting, and the dense solvers built on
    it (linear solve, inverse, determinant).

    Singularity is reported through [Singular]; callers that can tolerate
    near-singular systems should catch it and regularize. *)

exception Singular
(** Raised when a pivot is exactly zero or numerically negligible. *)

type factors = {
  lu : Mat.t;        (** Packed L (unit lower) and U factors. *)
  perm : int array;  (** Row permutation: original row of pivot row [i]. *)
  sign : float;      (** Permutation parity, [+1.] or [-1.]. *)
}

val factorize : Mat.t -> factors
(** Factor a square matrix. @raise Singular on rank deficiency. *)

val solve_vec : factors -> Vec.t -> Vec.t
(** Solve [a x = b] given [factorize a]. *)

val solve_mat : factors -> Mat.t -> Mat.t
(** Solve [a X = B] column-wise. *)

val solve : Mat.t -> Mat.t -> Mat.t
(** [solve a b] is [a^-1 * b]. @raise Singular if [a] is singular. *)

val solve_right : Mat.t -> Mat.t -> Mat.t
(** [solve_right b a] is [b * a^-1]. @raise Singular if [a] is singular. *)

val inv : Mat.t -> Mat.t
(** Matrix inverse. @raise Singular if singular. *)

val det : Mat.t -> float
(** Determinant; [0.] for singular matrices (does not raise). *)

val cond_estimate : Mat.t -> float
(** Cheap 1-norm condition number estimate ([norm1 a * norm1 (inv a)]);
    [infinity] if singular. *)
