exception Singular

type factors = { lu : Mat.t; perm : int array; sign : float }

(* Doolittle LU with partial pivoting. The pivot tolerance is relative to
   the largest entry of the matrix so that well-scaled singular matrices are
   detected reliably. *)
let factorize a =
  if not (Mat.is_square a) then invalid_arg "Lu.factorize: non-square";
  let n = a.Mat.rows in
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  let tol = 1e-13 *. Float.max 1.0 (Mat.max_abs a) in
  for k = 0 to n - 1 do
    (* Find pivot. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !pivot_row k)
      then pivot_row := i
    done;
    if Float.abs (Mat.get lu !pivot_row k) <= tol then raise Singular;
    if !pivot_row <> k then begin
      let tmp = Mat.row lu k in
      Mat.set_row lu k (Mat.row lu !pivot_row);
      Mat.set_row lu !pivot_row tmp;
      let t = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- t;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let m = Mat.get lu i k /. pivot in
      Mat.set lu i k m;
      if m <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (m *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_vec { lu; perm; _ } b =
  let n = lu.Mat.rows in
  if Vec.dim b <> n then invalid_arg "Lu.solve_vec: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with unit lower triangle. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (Mat.get lu i j *. x.(j))
    done
  done;
  (* Back substitution with the upper triangle. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. Mat.get lu i i
  done;
  x

let solve_mat f b =
  let cols = List.init b.Mat.cols (fun j -> Mat.col b j) in
  let solved = List.map (solve_vec f) cols in
  let r = Mat.create b.Mat.rows b.Mat.cols in
  List.iteri (fun j v -> Mat.set_col r j v) solved;
  r

let solve a b = solve_mat (factorize a) b

let solve_right b a = Mat.transpose (solve (Mat.transpose a) (Mat.transpose b))

let inv a = solve a (Mat.identity a.Mat.rows)

let det a =
  match factorize a with
  | { lu; sign; _ } ->
    let d = ref sign in
    for i = 0 to lu.Mat.rows - 1 do
      d := !d *. Mat.get lu i i
    done;
    !d
  | exception Singular -> 0.0

let cond_estimate a =
  match inv a with
  | ai -> Mat.norm1 a *. Mat.norm1 ai
  | exception Singular -> infinity
