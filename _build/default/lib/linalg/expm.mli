(** Matrix exponential by scaling-and-squaring with a Padé approximant.

    Needed for zero-order-hold discretization of continuous-time models and
    for the RC thermal model of the board simulator. *)

val expm : Mat.t -> Mat.t
(** [expm a] approximates [e^a] using a degree-6 diagonal Padé approximant
    after scaling [a] so its infinity norm is below 0.5, then repeated
    squaring. Accuracy is near machine precision for well-scaled inputs. *)
