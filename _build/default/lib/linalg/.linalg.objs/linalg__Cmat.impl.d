lib/linalg/cmat.ml: Array Complex Float Format Lu Mat
