lib/linalg/eig.ml: Array Cmat Complex Float Mat Vec
