lib/linalg/mat.ml: Array Float Format List Random Vec
