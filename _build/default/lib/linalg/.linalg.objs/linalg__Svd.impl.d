lib/linalg/svd.ml: Array Cmat Float Mat Vec
