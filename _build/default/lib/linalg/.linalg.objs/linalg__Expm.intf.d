lib/linalg/expm.mli: Mat
