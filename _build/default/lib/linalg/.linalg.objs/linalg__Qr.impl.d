lib/linalg/qr.ml: Array Float Lu Mat Vec
