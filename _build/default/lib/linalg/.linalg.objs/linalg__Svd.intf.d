lib/linalg/svd.mli: Cmat Mat Vec
