lib/linalg/cmat.mli: Complex Format Mat Vec
