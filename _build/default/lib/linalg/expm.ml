(* Scaling and squaring with a [6/6] Padé approximant. The classic Higham
   recipe uses degree 13 with sharper scaling thresholds; degree 6 with a
   0.5-norm threshold is ample for the modest accuracy and matrix sizes in
   this project and keeps the code short. *)
let expm a =
  if not (Mat.is_square a) then invalid_arg "Expm.expm: non-square";
  let n = a.Mat.rows in
  let norm = Mat.norm_inf a in
  let s =
    if norm <= 0.5 then 0
    else Stdlib.max 0 (int_of_float (ceil (log (norm /. 0.5) /. log 2.0)))
  in
  let x = Mat.scale (1.0 /. Float.of_int (1 lsl s)) a in
  (* Padé(6,6): N(x) = sum c_k x^k, D(x) = N(-x) with the classic
     coefficients c_k = (12-k)! 6! / (12! k! (6-k)!). *)
  let c = [| 1.0; 0.5; 5.0 /. 44.0; 1.0 /. 66.0; 1.0 /. 792.0; 1.0 /. 15840.0; 1.0 /. 665280.0 |] in
  let powers = Array.make 7 (Mat.identity n) in
  for k = 1 to 6 do
    powers.(k) <- Mat.mul powers.(k - 1) x
  done;
  let num = ref (Mat.create n n) and den = ref (Mat.create n n) in
  for k = 0 to 6 do
    let term = Mat.scale c.(k) powers.(k) in
    num := Mat.add !num term;
    den :=
      (if k land 1 = 0 then Mat.add !den term else Mat.sub !den term)
  done;
  let r = ref (Lu.solve !den !num) in
  for _ = 1 to s do
    r := Mat.mul !r !r
  done;
  !r
