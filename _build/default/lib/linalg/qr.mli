(** QR factorization by Householder reflections.

    For an [m]x[n] matrix with [m >= n], [factorize] produces the thin
    factorization [a = q * r] with [q] of size [m]x[n] having orthonormal
    columns and [r] upper triangular [n]x[n]. The full square [q] is also
    available for orthonormal basis completion. *)

type factors = { q : Mat.t; r : Mat.t }

val factorize : Mat.t -> factors
(** Thin QR of a matrix with [rows >= cols]. *)

val factorize_full : Mat.t -> factors
(** Full QR: [q] is square [m]x[m], [r] is [m]x[n]. *)

val solve_least_squares : Mat.t -> Vec.t -> Vec.t
(** Minimum-residual solution of an overdetermined system [a x ~ b] with
    full column rank [a]. @raise Lu.Singular if rank deficient. *)

val solve_least_squares_mat : Mat.t -> Mat.t -> Mat.t
(** Column-wise least squares with a matrix right-hand side. *)

val orthonormal_columns : ?tol:float -> Mat.t -> bool
(** Check [q^T q = I] to tolerance; used by tests and assertions. *)
