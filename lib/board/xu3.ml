type config = {
  big_cores : int;
  little_cores : int;
  freq_big : float;
  freq_little : float;
}

type placement = { threads_big : int; tpc_big : float; tpc_little : float }

type outputs = {
  bips : float;
  bips_big : float;
  bips_little : float;
  power_big : float;
  power_little : float;
  temperature : float;
  threads_active : int;
  spare_big : float;
  spare_little : float;
}

(* The per-tick remaining-work float lives in its own all-float record:
   stored in [job] (a mixed record) each [<-] would box and run the
   write barrier on every retire pass. *)
type job_rem = { mutable ginst : float }

type job = {
  workload : Workload.t;
  mutable phases_left : Workload.phase list;
  rem : job_rem;  (* Ginst left in the current phase. *)
}

type injector = {
  on_tick : time:float -> unit;
  sense : time:float -> outputs -> outputs;
  transform_config : time:float -> current:config -> config -> config;
  transform_placement :
    time:float -> current:placement -> placement -> placement;
  power_gain : time:float -> float;
  thermal_gain : time:float -> float;
  perf_gain : time:float -> float;
}

let identity_injector =
  {
    on_tick = (fun ~time:_ -> ());
    sense = (fun ~time:_ o -> o);
    transform_config = (fun ~time:_ ~current:_ c -> c);
    transform_placement = (fun ~time:_ ~current:_ p -> p);
    power_gain = (fun ~time:_ -> 1.0);
    thermal_gain = (fun ~time:_ -> 1.0);
    perf_gain = (fun ~time:_ -> 1.0);
  }

(* The per-tick mutable floats live in their own all-float record: OCaml
   stores such records as flat doubles, so each [<-] below is a plain
   store — in the mixed record they would box a fresh float and run the
   write barrier on every one of the ~10 updates per 10 ms tick, which
   profiles as the simulator's single largest cost. *)
type accum = {
  mutable time : float;
  mutable energy : float;
  mutable retired : float;
  mutable dead_time_big : float;     (* Transition penalties, seconds. *)
  mutable dead_time_little : float;
  (* Observation window accumulators. *)
  mutable win_start : float;
  mutable win_insts_big : float;
  mutable win_insts_little : float;
  mutable last_power_big : float;
  mutable last_power_little : float;
}

type t = {
  acc : accum;
  thermal : Thermal.t;
  sensors : Sensors.t;
  emergency : Emergency.t;
  mutable requested : config;
  mutable effective : config;
  mutable placement : placement;
  jobs : job list;
  total_ginsts : float;
  mutable last_busy_big : int;
  mutable last_busy_little : int;
  mutable last_action : Emergency.action;
  mutable power_cap : float option;    (* External total-power cap, watts. *)
  injector : injector option;
}

let tick = 0.01

(* Lost compute per emergency trip (clamp transition, PLL relock,
   pipeline/cache disturbance). *)
let trip_dead_time_s = 0.25

let default_config =
  { big_cores = 2; little_cores = 2; freq_big = 1.0; freq_little = 0.8 }

let clamp_config c =
  {
    big_cores = max 1 (min Dvfs.core_count c.big_cores);
    little_cores = max 1 (min Dvfs.core_count c.little_cores);
    freq_big = Dvfs.quantize Dvfs.Big c.freq_big;
    freq_little = Dvfs.quantize Dvfs.Little c.freq_little;
  }

let clamp_placement p =
  {
    threads_big = max 0 p.threads_big;
    tpc_big = Float.max 1.0 p.tpc_big;
    tpc_little = Float.max 1.0 p.tpc_little;
  }

let job_of_workload w =
  Workload.validate w;
  match w.Workload.phases with
  | [] -> assert false
  | first :: _ ->
    {
      workload = w;
      phases_left = w.Workload.phases;
      rem = { ginst = first.Workload.ginsts };
    }

let create ?(sensor_noise = 0.0) ?(seed = 17)
    ?(sensor_period = Sensors.power_update_period) ?injector workloads =
  if workloads = [] then invalid_arg "Board.create: no workloads";
  let jobs = List.map job_of_workload workloads in
  {
    acc =
      {
        time = 0.0;
        energy = 0.0;
        retired = 0.0;
        dead_time_big = 0.0;
        dead_time_little = 0.0;
        win_start = 0.0;
        win_insts_big = 0.0;
        win_insts_little = 0.0;
        last_power_big = 0.0;
        last_power_little = 0.0;
      };
    thermal = Thermal.create ();
    sensors = Sensors.create ~noise:sensor_noise ~seed ~period:sensor_period ();
    emergency = Emergency.create ();
    requested = default_config;
    effective = default_config;
    placement = { threads_big = 4; tpc_big = 1.0; tpc_little = 1.0 };
    jobs;
    total_ginsts =
      List.fold_left (fun acc w -> acc +. Workload.total_ginsts w) 0.0 workloads;
    last_busy_big = 0;
    last_busy_little = 0;
    power_cap = None;
    last_action =
      {
        Emergency.cap_freq_big = None;
        cap_freq_little = None;
        cap_big_cores = None;
      };
    injector;
  }

let job_finished j = j.phases_left = []

let job_active_phase j =
  match j.phases_left with [] -> None | p :: _ -> Some p

let finished t = List.for_all job_finished t.jobs

let active_threads t =
  List.fold_left
    (fun acc j ->
      match job_active_phase j with
      | Some p -> acc + p.Workload.threads
      | None -> acc)
    0 t.jobs

(* Thread-weighted blend of the active phases' characters. *)
let workload_character t =
  let threads = ref 0.0 and mem = ref 0.0 and ipc = ref 0.0 and sync = ref 0.0 in
  List.iter
    (fun j ->
      match job_active_phase j with
      | Some p ->
        let w = Float.of_int p.Workload.threads in
        threads := !threads +. w;
        mem := !mem +. (w *. p.Workload.mem_intensity);
        ipc := !ipc +. (w *. p.Workload.ipc_scale);
        sync := !sync +. (w *. p.Workload.sync_factor)
      | None -> ())
    t.jobs;
  if !threads = 0.0 then (0.0, 1.0, 0.0)
  else (!mem /. !threads, !ipc /. !threads, !sync /. !threads)

let dvfs_metric = Obs.Metrics.counter "board.dvfs_transitions"
let hotplug_metric = Obs.Metrics.counter "board.hotplug_changes"

let set_config t c =
  let c = clamp_config c in
  (* Actuator faults intercept the request before any accounting: dead
     time and Obs events reflect what the hardware actually applied. The
     hook only ever returns configurations that were themselves clamped
     (the current or an earlier request), so no re-clamp is needed. *)
  let c =
    match t.injector with
    | None -> c
    | Some inj -> inj.transform_config ~time:t.acc.time ~current:t.requested c
  in
  let old = t.requested in
  if c.freq_big <> old.freq_big then
    t.acc.dead_time_big <- t.acc.dead_time_big +. Dvfs.transition_cost_s;
  if c.freq_little <> old.freq_little then
    t.acc.dead_time_little <- t.acc.dead_time_little +. Dvfs.transition_cost_s;
  let plug_changes =
    abs (c.big_cores - old.big_cores) + abs (c.little_cores - old.little_cores)
  in
  if plug_changes > 0 then begin
    let cost = Float.of_int plug_changes *. Dvfs.hotplug_cost_s in
    t.acc.dead_time_big <- t.acc.dead_time_big +. cost;
    t.acc.dead_time_little <- t.acc.dead_time_little +. cost
  end;
  if Obs.Collector.observing () then begin
    let freq_changes =
      (if c.freq_big <> old.freq_big then 1 else 0)
      + if c.freq_little <> old.freq_little then 1 else 0
    in
    if freq_changes > 0 then begin
      Obs.Metrics.incr ~by:freq_changes dvfs_metric;
      Obs.Collector.event ~name:"board.dvfs" ~sim:t.acc.time (fun () ->
          [
            ("freq_big", Obs.Json.Float c.freq_big);
            ("freq_little", Obs.Json.Float c.freq_little);
          ])
    end;
    if plug_changes > 0 then begin
      Obs.Metrics.incr ~by:plug_changes hotplug_metric;
      Obs.Collector.event ~name:"board.hotplug" ~sim:t.acc.time (fun () ->
          [
            ("big_cores", Obs.Json.Int c.big_cores);
            ("little_cores", Obs.Json.Int c.little_cores);
            ("changed", Obs.Json.Int plug_changes);
          ])
    end
  end;
  t.requested <- c

(* Thread migration costs a few milliseconds of lost compute on both
   clusters per changed thread slot. *)
let migration_cost_s = 0.003

let set_placement t p =
  let p = clamp_placement p in
  let p =
    match t.injector with
    | None -> p
    | Some inj -> inj.transform_placement ~time:t.acc.time ~current:t.placement p
  in
  let old = t.placement in
  let moved = abs (p.threads_big - old.threads_big) in
  let repack =
    (if Float.abs (p.tpc_big -. old.tpc_big) > 1e-9 then 1 else 0)
    + if Float.abs (p.tpc_little -. old.tpc_little) > 1e-9 then 1 else 0
  in
  let cost = Float.of_int (moved + repack) *. migration_cost_s in
  t.acc.dead_time_big <- t.acc.dead_time_big +. cost;
  t.acc.dead_time_little <- t.acc.dead_time_little +. cost;
  t.placement <- p

let config t = t.requested

let effective_config t = t.effective

let placement t = t.placement

let spare_capacity ~cores_on ~busy ~threads =
  let idle_on = cores_on - busy in
  Float.of_int idle_on -. Float.of_int (threads - cores_on)

(* Retire [ginst] instructions, distributed across jobs proportionally to
   their active thread counts, advancing phases (with carry). *)
let retire t ginst =
  let remaining = ref ginst in
  let guard = ref 0 in
  while !remaining > 1e-12 && not (finished t) && !guard < 100 do
    incr guard;
    let total_threads = Float.of_int (active_threads t) in
    if total_threads = 0.0 then remaining := 0.0
    else begin
      let batch = !remaining in
      remaining := 0.0;
      List.iter
        (fun j ->
          match j.phases_left with
          | [] -> ()
          | p :: rest ->
            let share =
              batch *. Float.of_int p.Workload.threads /. total_threads
            in
            if share >= j.rem.ginst then begin
              let leftover = share -. j.rem.ginst in
              t.acc.retired <- t.acc.retired +. j.rem.ginst;
              j.phases_left <- rest;
              (match rest with
              | next :: _ -> j.rem.ginst <- next.Workload.ginsts
              | [] -> j.rem.ginst <- 0.0);
              (* Return the leftover to the pool for the next pass. *)
              remaining := !remaining +. leftover
            end
            else begin
              j.rem.ginst <- j.rem.ginst -. share;
              t.acc.retired <- t.acc.retired +. share
            end)
        t.jobs
    end
  done

(* Barrier synchronization: the [sync] fraction of the work proceeds in
   lockstep, gated by the slowest thread (the straggler); the rest
   overlaps freely. Cluster retire rates are the blend of both regimes. *)
let sync_blend ~sync ~tb ~tl ~gips_big ~gips_little =
  if tb + tl = 0 then (0.0, 0.0)
  else begin
    let rate_big =
      if tb > 0 then gips_big /. Float.of_int tb else infinity
    in
    let rate_little =
      if tl > 0 then gips_little /. Float.of_int tl else infinity
    in
    let min_rate = Float.min rate_big rate_little in
    let min_rate = if Float.is_finite min_rate then min_rate else 0.0 in
    let sync_big = Float.of_int tb *. min_rate in
    let sync_little = Float.of_int tl *. min_rate in
    ( (sync *. sync_big) +. ((1.0 -. sync) *. gips_big),
      (sync *. sync_little) +. ((1.0 -. sync) *. gips_little) )
  end

let one_tick t =
  (match t.injector with
  | None -> ()
  | Some inj -> inj.on_tick ~time:t.acc.time);
  let threads = active_threads t in
  let mem, ipc, sync = workload_character t in
  (* Apply the emergency caps decided at the end of the previous tick to
     the requested configuration: this is what the hardware actually
     runs. *)
  let r = t.requested in
  let action = t.last_action in
  let eff =
    match action with
    (* Untripped — the common case — runs the request as-is, with no
       fresh config record. *)
    | { Emergency.cap_freq_big = None; cap_freq_little = None;
        cap_big_cores = None } ->
      r
    | _ ->
      {
        r with
        freq_big =
          (match action.Emergency.cap_freq_big with
          | Some cap -> Float.min cap r.freq_big
          | None -> r.freq_big);
        freq_little =
          (match action.Emergency.cap_freq_little with
          | Some cap -> Float.min cap r.freq_little
          | None -> r.freq_little);
        big_cores =
          (match action.Emergency.cap_big_cores with
          | Some cap -> min cap r.big_cores
          | None -> r.big_cores);
      }
  in
  (* In steady state [eff] is the very record already stored (the
     untripped arm returns [t.requested] unchanged); skipping the
     redundant store skips its write barrier. *)
  if not (eff == t.effective) then t.effective <- eff;
  (* Throughput under the effective configuration. *)
  let tb = min t.placement.threads_big threads in
  let tl = threads - tb in
  let gips_big, busy_big =
    Perf.cluster_throughput ~kind:Dvfs.Big ~freq:eff.freq_big
      ~cores_on:eff.big_cores ~threads:tb ~threads_per_core:t.placement.tpc_big
      ~mem_intensity:mem ~ipc_scale:ipc
  in
  let gips_little, busy_little =
    Perf.cluster_throughput ~kind:Dvfs.Little ~freq:eff.freq_little
      ~cores_on:eff.little_cores ~threads:tl
      ~threads_per_core:t.placement.tpc_little ~mem_intensity:mem
      ~ipc_scale:ipc
  in
  let gips_big, gips_little =
    sync_blend ~sync ~tb ~tl ~gips_big ~gips_little
  in
  (* Workload phase-shift faults scale the retire rate (an IPC drop the
     identified model never saw). *)
  let gips_big, gips_little =
    match t.injector with
    | None -> (gips_big, gips_little)
    | Some inj ->
      let g = inj.perf_gain ~time:t.acc.time in
      (gips_big *. g, gips_little *. g)
  in
  (* Transition/migration dead time eats into this tick's compute. *)
  let eat_dead current available =
    let used = Float.min current available in
    (current -. used, (available -. used) /. available)
  in
  let dead_big, duty_big = eat_dead t.acc.dead_time_big tick in
  let dead_little, duty_little = eat_dead t.acc.dead_time_little tick in
  t.acc.dead_time_big <- dead_big;
  t.acc.dead_time_little <- dead_little;
  let insts_big = gips_big *. tick *. duty_big in
  let insts_little = gips_little *. tick *. duty_little in
  retire t (insts_big +. insts_little);
  t.acc.win_insts_big <- t.acc.win_insts_big +. insts_big;
  t.acc.win_insts_little <- t.acc.win_insts_little +. insts_little;
  t.last_busy_big <- busy_big;
  t.last_busy_little <- busy_little;
  (* Actual power drawn under the effective configuration. *)
  let temp = Thermal.temperature t.thermal in
  let p_big =
    Power.cluster_power_on Dvfs.Big ~cores_on:eff.big_cores
      ~freq:eff.freq_big
      ~utilization:(Float.of_int busy_big /. Float.of_int eff.big_cores)
      ~temperature:temp
  in
  let p_little =
    Power.cluster_power_on Dvfs.Little ~cores_on:eff.little_cores
      ~freq:eff.freq_little
      ~utilization:(Float.of_int busy_little /. Float.of_int eff.little_cores)
      ~temperature:temp
  in
  (* Power-model gain drift scales the actual draw (everything downstream
     — sensors, energy, thermal, protection — sees the drifted plant);
     thermal-resistance drift additionally scales only the heat path. *)
  let p_big, p_little, thermal_g =
    match t.injector with
    | None -> (p_big, p_little, 1.0)
    | Some inj ->
      let g = inj.power_gain ~time:t.acc.time in
      (p_big *. g, p_little *. g, inj.thermal_gain ~time:t.acc.time)
  in
  t.acc.last_power_big <- p_big;
  t.acc.last_power_little <- p_little;
  Thermal.step t.thermal ~power_big:(p_big *. thermal_g)
    ~power_little:(p_little *. thermal_g) ~dt:tick;
  t.acc.energy <- t.acc.energy +. ((p_big +. p_little) *. tick);
  Sensors.refresh t.sensors ~time:t.acc.time ~power_big:p_big
    ~power_little:p_little;
  (* The protection machinery reacts to the actual power and temperature;
     its verdict applies from the next tick. A fresh trip costs dead time
     on both clusters (clamp transition, PLL relock, pipeline flush). *)
  let trips_before = Emergency.trip_count t.emergency in
  let act =
    Emergency.step t.emergency ?cap:t.power_cap ~dt:tick
      ~temperature:(Thermal.temperature t.thermal)
      ~power_big:p_big ~power_little:p_little ()
  in
  (* Untripped, [step] returns the shared [no_caps] constant every tick;
     storing it again would only pay the write barrier. *)
  if not (act == t.last_action) then t.last_action <- act;
  if Emergency.trip_count t.emergency > trips_before then begin
    t.acc.dead_time_big <- t.acc.dead_time_big +. trip_dead_time_s;
    t.acc.dead_time_little <- t.acc.dead_time_little +. trip_dead_time_s
  end;
  t.acc.time <- t.acc.time +. tick

let step t seconds =
  let ticks = max 1 (int_of_float (Float.round (seconds /. tick))) in
  let i = ref 0 in
  while !i < ticks && not (finished t) do
    incr i;
    one_tick t
  done

let observe t =
  let window = Float.max tick (t.acc.time -. t.acc.win_start) in
  let bips_big = t.acc.win_insts_big /. window in
  let bips_little = t.acc.win_insts_little /. window in
  let threads = active_threads t in
  let tb = min t.placement.threads_big threads in
  let tl = threads - tb in
  let power_big, power_little = Sensors.read t.sensors in
  let eff = t.effective in
  let out =
    {
      bips = bips_big +. bips_little;
      bips_big;
      bips_little;
      power_big;
      power_little;
      temperature = Thermal.temperature t.thermal;
      threads_active = threads;
      spare_big =
        spare_capacity ~cores_on:eff.big_cores ~busy:t.last_busy_big
          ~threads:tb;
      spare_little =
        spare_capacity ~cores_on:eff.little_cores ~busy:t.last_busy_little
          ~threads:tl;
    }
  in
  t.acc.win_start <- t.acc.time;
  t.acc.win_insts_big <- 0.0;
  t.acc.win_insts_little <- 0.0;
  (* Sensor faults corrupt only what the controllers observe; the board's
     internal protection machinery keeps seeing the true signals. *)
  match t.injector with
  | None -> out
  | Some inj -> inj.sense ~time:t.acc.time out

let step_hist = Obs.Metrics.histogram "board.step_s"

let run_epoch t epoch =
  if Obs.Collector.enabled () then begin
    let t0 = Obs.Collector.now () in
    step t epoch;
    Obs.Metrics.observe step_hist (Obs.Collector.now () -. t0);
    observe t
  end
  else begin
    step t epoch;
    observe t
  end

let set_power_cap t cap =
  if cap <> t.power_cap then begin
    t.power_cap <- cap;
    if Obs.Collector.observing () then
      Obs.Collector.event ~name:"board.cap" ~sim:t.acc.time (fun () ->
          [
            ( "cap_w",
              match cap with
              | None -> Obs.Json.Null
              | Some w -> Obs.Json.Float w );
          ])
  end

let power_cap t = t.power_cap

let time t = t.acc.time

let energy t = t.acc.energy

let trip_count t = Emergency.trip_count t.emergency

let progress t =
  if t.total_ginsts <= 0.0 then 1.0 else Float.min 1.0 (t.acc.retired /. t.total_ginsts)

type metrics = {
  execution_time : float;
  total_energy : float;
  energy_delay : float;
  trips : int;
}

let metrics t =
  {
    execution_time = t.acc.time;
    total_energy = t.acc.energy;
    energy_delay = t.acc.energy *. t.acc.time;
    trips = trip_count t;
  }

let true_power t = (t.acc.last_power_big, t.acc.last_power_little)

(* True die temperature: unlike [observe]'s outputs, never corrupted by
   an injector's sensor faults — health monitors read this. *)
let temperature t = Thermal.temperature t.thermal
