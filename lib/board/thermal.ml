type t = {
  mutable hotspot : float;
  mutable package : float;
  (* Decay factors for the last-seen [dt]: the simulator steps with a
     fixed 10 ms tick, so the two [exp] calls per step — the bulk of its
     cost — are cached. A different [dt] recomputes, so results are
     always exactly [exp (-dt/tau)]. *)
  mutable last_dt : float;
  mutable a_hot : float;
  mutable a_pkg : float;
}

let ambient = 30.0

(* Thermal resistances (C/W) and time constants (s). The hot-spot node
   weighs the big cluster fully and the little cluster at half (it sits
   off the hot spot); the package node sees total power. *)
let r_hot = 7.5

let r_pkg = 6.2

let tau_hot = 2.5

let tau_pkg = 18.0

let little_weight = 0.5

let create () =
  { hotspot = 0.0; package = 0.0; last_dt = nan; a_hot = 0.0; a_pkg = 0.0 }

let weighted power_big power_little = power_big +. (little_weight *. power_little)

let step t ~power_big ~power_little ~dt =
  if dt <= 0.0 then invalid_arg "Thermal.step: dt must be positive";
  let target_hot = r_hot *. weighted power_big power_little in
  let target_pkg = r_pkg *. (power_big +. power_little) in
  (* Exact first-order update over dt (stable for any dt). *)
  if dt <> t.last_dt then begin
    t.a_hot <- exp (-.dt /. tau_hot);
    t.a_pkg <- exp (-.dt /. tau_pkg);
    t.last_dt <- dt
  end;
  let blend a current target = (a *. current) +. ((1.0 -. a) *. target) in
  t.hotspot <- blend t.a_hot t.hotspot target_hot;
  t.package <- blend t.a_pkg t.package target_pkg

let temperature t = ambient +. t.hotspot +. t.package

let steady_state ~power_big ~power_little =
  ambient
  +. (r_hot *. weighted power_big power_little)
  +. (r_pkg *. (power_big +. power_little))

let copy t =
  {
    hotspot = t.hotspot;
    package = t.package;
    last_dt = t.last_dt;
    a_hot = t.a_hot;
    a_pkg = t.a_pkg;
  }
