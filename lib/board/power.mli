(** Power model of the simulated big.LITTLE processor.

    Per-cluster power is dynamic switching power [n_active C V^2 f a]
    (activity [a] from utilization) plus per-powered-core leakage that
    grows with temperature, plus a small uncore term. Calibrated so that
    the full big cluster at 2 GHz draws well above the paper's 3.3 W
    sustained limit and the little cluster at 1.4 GHz above its 0.33 W
    limit — the emergency heuristics must have something to do. *)

type cluster_load = {
  cores_on : int;        (** Powered cores (hotplug), 0-4. *)
  freq : float;          (** Cluster frequency, GHz. *)
  utilization : float;   (** Mean busy fraction of powered cores, 0-1. *)
  temperature : float;   (** Cluster temperature, Celsius (for leakage). *)
}

val cluster_power : Dvfs.cluster -> cluster_load -> float
(** Cluster power draw in watts. *)

val cluster_power_on :
  Dvfs.cluster ->
  cores_on:int ->
  freq:float ->
  utilization:float ->
  temperature:float ->
  float
(** Same computation with labeled arguments — the per-tick form, which
    does not allocate a {!cluster_load}. *)

val max_power : Dvfs.cluster -> float
(** Power with all cores busy at maximum frequency and 85C. *)

val idle_power : Dvfs.cluster -> float
(** Power with one core on, idle, at minimum frequency and 45C. *)
