type t = {
  noise : float;
  period : float;
  seed : int;
  mutable rng : Random.State.t;
  mutable last_update : float;
  mutable held_big : float;
  mutable held_little : float;
  mutable initialized : bool;
}

let power_update_period = 0.26

let create ?(noise = 0.0) ?(seed = 17) ?(period = power_update_period) () =
  if period <= 0.0 then invalid_arg "Sensors.create: period must be positive";
  {
    noise;
    period;
    seed;
    rng = Random.State.make [| seed |];
    last_update = 0.0;
    held_big = 0.0;
    held_little = 0.0;
    initialized = false;
  }

let corrupt t x =
  if t.noise = 0.0 then x
  else begin
    (* Sum of three uniforms approximates a Gaussian well enough here. *)
    let u () = Random.State.float t.rng 2.0 -. 1.0 in
    let g = (u () +. u () +. u ()) /. 1.732 in
    Float.max 0.0 (x *. (1.0 +. (t.noise *. g)))
  end

let refreshes_metric = Obs.Metrics.counter "sensors.power_refreshes"

let refresh t ~time ~power_big ~power_little =
  if (not t.initialized) || time -. t.last_update >= t.period then begin
    t.held_big <- corrupt t power_big;
    t.held_little <- corrupt t power_little;
    t.last_update <- time;
    t.initialized <- true;
    (* [observing], not [enabled]: the refresh event must also feed the
       flight recorder when only the recorder is on. *)
    if Obs.Collector.observing () then begin
      Obs.Metrics.incr refreshes_metric;
      Obs.Collector.event ~name:"sensors.refresh" ~sim:time (fun () ->
          [
            ("power_big", Obs.Json.Float t.held_big);
            ("power_little", Obs.Json.Float t.held_little);
          ])
    end
  end

let observe_power t ~time ~power_big ~power_little =
  refresh t ~time ~power_big ~power_little;
  (t.held_big, t.held_little)

let reset t =
  t.rng <- Random.State.make [| t.seed |];
  t.last_update <- 0.0;
  t.held_big <- 0.0;
  t.held_little <- 0.0;
  t.initialized <- false

let read t = (t.held_big, t.held_little)
