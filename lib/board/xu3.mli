(** The big.LITTLE board simulator.

    This is the substitute for the physical ODROID XU3: a discrete-time
    simulation (10 ms internal step) of an 8-core big.LITTLE processor
    running a list of jobs, exposing exactly the knobs and signals the
    paper's controllers use.

    {b Actuation} (quantized like the real board): number of powered cores
    per cluster (1-4), per-cluster frequency (DVFS tables), and the thread
    placement triple — #threads on the big cluster, average threads per
    non-idle core in each cluster. Frequency changes and hotplug events
    cost dead time; placement changes cost migration time.

    {b Observation}: window-averaged BIPS per cluster (perf counters),
    cluster power through 260 ms sensors, instantaneous hot-spot
    temperature, and bookkeeping (energy, time, emergency trips).

    {b Built-in protection}: the emergency heuristics of {!Emergency}
    clamp frequency when power or temperature exceed the trip thresholds,
    exactly the machinery a bad controller ping-pongs against.

    Threads of concurrent jobs are assumed statistically interchangeable
    across cores (uniform mixing); this loses per-thread placement detail
    but preserves the aggregate dynamics the controllers observe. *)

type config = {
  big_cores : int;
  little_cores : int;
  freq_big : float;
  freq_little : float;
}

type placement = {
  threads_big : int;   (** Threads assigned to the big cluster; the rest run
                           little. Clamped to the live thread count. *)
  tpc_big : float;     (** Threads per non-idle big core (>= 1). *)
  tpc_little : float;
}

type outputs = {
  bips : float;          (** Total performance over the last window. *)
  bips_big : float;
  bips_little : float;
  power_big : float;     (** Power sensor reading (held between updates). *)
  power_little : float;
  temperature : float;
  threads_active : int;
  spare_big : float;     (** Spare compute capacity, Eq. 2 of the paper. *)
  spare_little : float;
}

type t

(** {1 Fault injection hooks}

    The board exposes its sensor and actuator surfaces to an optional
    injector so fault campaigns (the [Fault] library) can disturb a run
    without forking the simulator. Every hook is called with the current
    simulated time; the identity hooks are bit-transparent (an injector
    whose hooks are all identities produces runs bit-identical to an
    uninjected board). The board itself never constructs a non-identity
    injector — semantics live entirely with the caller. *)
type injector = {
  on_tick : time:float -> unit;
      (** Called at the top of every 10 ms simulation tick — the
          injector's clock (activate/clear timed faults, emit events). *)
  sense : time:float -> outputs -> outputs;
      (** Corrupt what the controllers observe ({!observe} /
          {!run_epoch}); the internal protection machinery still sees
          the true signals. *)
  transform_config : time:float -> current:config -> config -> config;
      (** Intercept a {!set_config} request (already clamped); [current]
          is the configuration the request would replace. Must return a
          valid (clamped) configuration — e.g. [current] for a stuck
          actuator, or an earlier request for a delayed one. *)
  transform_placement :
    time:float -> current:placement -> placement -> placement;
      (** Same for {!set_placement}. *)
  power_gain : time:float -> float;
      (** Multiplies the actual cluster power each tick (power-model
          gain drift: energy, sensors, thermal and protection all see
          the drifted plant). *)
  thermal_gain : time:float -> float;
      (** Additionally multiplies the power feeding the thermal model
          (thermal-resistance drift: a degraded heat path). *)
  perf_gain : time:float -> float;
      (** Multiplies the instruction retire rate (workload phase shift:
          an IPC drop the identified model never saw). *)
}

val identity_injector : injector
(** All hooks transparent; a convenient base to override. *)

val create :
  ?sensor_noise:float ->
  ?seed:int ->
  ?sensor_period:float ->
  ?injector:injector ->
  Workload.t list ->
  t
(** Board at ambient, jobs loaded, default config (2+2 cores at mid
    frequency, threads split evenly). [sensor_period] overrides the power
    sensor's 260 ms refresh (sensitivity studies); [injector] attaches
    fault-injection hooks (default: none — zero overhead). *)

val default_config : config

val set_config : t -> config -> unit
(** Request a hardware configuration; values are clamped/quantized to the
    board's tables, and changes incur transition dead time. *)

val set_placement : t -> placement -> unit

val config : t -> config
(** The currently requested configuration (before emergency clamping). *)

val effective_config : t -> config
(** What the hardware is actually running (after emergency clamping). *)

val placement : t -> placement

val set_power_cap : t -> float option -> unit
(** Impose (or lift, with [None]) an external cap on total board power in
    watts — a rack controller's per-board share of the shared budget.
    Enforcement is by {!Emergency}'s sustained-overage machinery
    (["power_cap"] trips clamp both clusters); boards that never receive
    a cap behave bit-identically to a build without this surface. *)

val power_cap : t -> float option
(** The currently imposed external power cap, if any. *)

val step : t -> float -> unit
(** Advance the simulation by the given number of seconds (internally in
    10 ms ticks). No-op once finished. *)

val run_epoch : t -> float -> outputs
(** Advance one control epoch (e.g. 0.5 s) and return the signals a
    controller samples at its end. *)

val observe : t -> outputs
(** Signals over the window since the last [observe]/[run_epoch]. *)

val finished : t -> bool

val time : t -> float

val energy : t -> float
(** Joules consumed by the two clusters so far. *)

val trip_count : t -> int

val progress : t -> float
(** Fraction of total instructions retired, 0-1. *)

(** {1 Metrics} *)

type metrics = {
  execution_time : float;
  total_energy : float;
  energy_delay : float;  (** E x D. *)
  trips : int;
}

val metrics : t -> metrics
(** Valid once [finished]; meaningful anytime as "so far". *)

val spare_capacity : cores_on:int -> busy:int -> threads:int -> float
(** Eq. 2: [#idle_cores_on - (#threads - #cores_on)]. *)

val true_power : t -> float * float
(** Instantaneous (big, little) cluster power of the last simulation tick
    — the ground truth behind the sensors; used for trace figures. *)

val temperature : t -> float
(** True die temperature now. Unlike the [outputs] of {!observe}, this
    can never be corrupted by an injector's sensor faults — health
    monitors measure the plant, not the sensor. *)
