(** The board's built-in emergency power/thermal heuristics.

    The Exynos TMU driver and the power-limit firmware trip when
    temperature or cluster power stay above preset thresholds; tripping
    clamps the cluster frequency hard (and, for thermal trips, also caps
    the core count) until a cooldown elapses. The paper deliberately keeps
    its controllers below the trip thresholds (its power limits of
    0.33/3.3 W and 79C are chosen just under them); controllers that
    overshoot — the Decoupled heuristic above all — ping-pong against this
    machinery, which is the source of the oscillations in Figure 10. *)

type t

type action = {
  cap_freq_big : float option;     (** Forced big frequency, if tripped. *)
  cap_freq_little : float option;
  cap_big_cores : int option;      (** Forced core cap (thermal trip). *)
}

val thermal_trip : float
(** 85 C: hard thermal trip threshold. *)

val power_trip_big : float
(** 4.2 W sustained trips the big cluster limiter. *)

val power_trip_little : float
(** 0.40 W sustained trips the little cluster limiter. *)

val create : unit -> t

val step :
  t ->
  ?cap:float ->
  dt:float ->
  temperature:float ->
  power_big:float ->
  power_little:float ->
  unit ->
  action
(** Advance the trip state machine by [dt] and return the currently
    enforced caps (all [None] when not tripped).

    [?cap] is an externally imposed limit on {e total} board power
    (big + little), in watts — the per-board share of a rack budget.
    Sustained overage (the same [power_patience] window as the cluster
    limiters) trips a ["power_cap"] clamp on both clusters. Omitting
    [cap] leaves the trip machinery bit-identical to a build without
    it. *)

val tripped : t -> bool

val trip_count : t -> int
(** Total trips since creation — a proxy for how badly a controller
    fights the emergency machinery. *)
