type cluster_load = {
  cores_on : int;
  freq : float;
  utilization : float;
  temperature : float;
}

(* Effective switching capacitance per core in nF-equivalents chosen so
   that 4 A15 cores at 2 GHz / 1.25 V draw about 5.5 W dynamic and
   4 A7 cores at 1.4 GHz / 1.2 V about 0.45 W. *)
let cap_per_core = function Dvfs.Big -> 0.46 | Dvfs.Little -> 0.062

(* Leakage per powered core at 45C, in watts, with a linear temperature
   coefficient (a linearization of the exponential subthreshold term over
   the 40-90C band the board operates in). *)
let leak_per_core = function Dvfs.Big -> 0.055 | Dvfs.Little -> 0.008

let leak_temp_coeff = 0.012

(* Cluster-shared (uncore/L2) power when any core is powered. *)
let uncore = function Dvfs.Big -> 0.08 | Dvfs.Little -> 0.015

(* Idle-but-powered cores still clock-gate most of the pipeline; they see a
   fraction of the busy activity factor. *)
let idle_activity = 0.12

(* Labeled-argument form: the simulator calls this every 10 ms tick, and
   the record wrapper below would allocate per call. *)
let cluster_power_on kind ~cores_on ~freq ~utilization ~temperature =
  if cores_on < 0 || cores_on > Dvfs.core_count then
    invalid_arg "Power.cluster_power: cores_on out of range";
  if cores_on = 0 then 0.0
  else begin
    let utilization = Float.min 1.0 (Float.max 0.0 utilization) in
    let v = Dvfs.voltage kind freq in
    let activity = idle_activity +. ((1.0 -. idle_activity) *. utilization) in
    let dynamic =
      Float.of_int cores_on *. cap_per_core kind *. v *. v *. freq *. activity
    in
    let leak_scale = 1.0 +. (leak_temp_coeff *. (temperature -. 45.0)) in
    let leakage =
      Float.of_int cores_on *. leak_per_core kind *. Float.max 0.2 leak_scale
    in
    dynamic +. leakage +. uncore kind
  end

let cluster_power kind { cores_on; freq; utilization; temperature } =
  cluster_power_on kind ~cores_on ~freq ~utilization ~temperature

let max_power kind =
  cluster_power kind
    {
      cores_on = Dvfs.core_count;
      freq = Dvfs.f_max kind;
      utilization = 1.0;
      temperature = 85.0;
    }

let idle_power kind =
  cluster_power kind
    { cores_on = 1; freq = Dvfs.f_min kind; utilization = 0.0; temperature = 45.0 }
