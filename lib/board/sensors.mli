(** Sensor emulation.

    The ODROID XU3's INA231 power sensors refresh every 260 ms; a
    controller sampling faster sees held values. Temperature is available
    on demand from the on-chip TMU, and instruction counts come from the
    per-core PMU via the perf API (we model them as exact over a window).
    Optional multiplicative noise models sensor error. *)

type t

val create : ?noise:float -> ?seed:int -> ?period:float -> unit -> t
(** [noise] is the relative 1-sigma error on power readings (default 0);
    [period] the refresh interval (default {!power_update_period}). *)

val power_update_period : float
(** 0.26 s. *)

val observe_power :
  t -> time:float -> power_big:float -> power_little:float -> float * float
(** Feed the true instantaneous cluster powers at the given simulation
    time; returns the (held) sensor readings. *)

val refresh : t -> time:float -> power_big:float -> power_little:float -> unit
(** {!observe_power} without materializing the readings — the per-tick
    form for callers that only want the hold state advanced. *)

val reset : t -> unit
(** Restore the creation state: held values, the refresh clock, {e and}
    the noise RNG (re-seeded from the creation seed), so a reset sensor
    replays the identical noise sequence. *)

val read : t -> float * float
(** Last held power readings without feeding new samples (pure read). *)
