type action = {
  cap_freq_big : float option;
  cap_freq_little : float option;
  cap_big_cores : int option;
}

(* All-float so the per-tick state updates are plain stores (no float
   boxing, no write barrier) — this runs every 10 ms simulated tick. *)
type fstate = {
  mutable over_power_big_s : float;    (* Continuous time above threshold. *)
  mutable over_power_little_s : float;
  mutable over_cap_s : float;          (* Time above the external cap. *)
  mutable cap_cooldown : float;        (* Remaining cap clamp time. *)
  mutable thermal_cooldown : float;    (* Remaining thermal clamp time. *)
  mutable power_cooldown_big : float;
  mutable power_cooldown_little : float;
  mutable last_trip_time : float;      (* For escalation. *)
  mutable escalation : float;          (* Clamp-duration multiplier. *)
  mutable clock : float;
}

type t = { f : fstate; mutable trips : int }

let thermal_trip = 85.0

let power_trip_big = 4.2

let power_trip_little = 0.40

(* Sustained-overage window before a power trip fires. *)
let power_patience = 0.6

let thermal_clamp_s = 3.0

let power_clamp_s = 2.5

(* Repeated trips escalate: a controller that keeps slamming into the
   protection machinery gets clamped for progressively longer, as the
   vendor trip tables do. The multiplier decays back once trips stop. *)
let escalation_window = 6.0

let escalation_max = 4.0

let create () =
  {
    f =
      {
        over_power_big_s = 0.0;
        over_power_little_s = 0.0;
        over_cap_s = 0.0;
        cap_cooldown = 0.0;
        thermal_cooldown = 0.0;
        power_cooldown_big = 0.0;
        power_cooldown_little = 0.0;
        last_trip_time = neg_infinity;
        escalation = 1.0;
        clock = 0.0;
      };
    trips = 0;
  }

let trips_metric = Obs.Metrics.counter "emergency.trips"

(* A trip is a flight-recorder dump trigger: the window that led up to
   it (the trip event itself included) is the recorder's reason to
   exist. Registered once here; the collector feed does the dumping. *)
let () = Obs.Recorder.register_trigger ~suffix_field:"kind" "emergency.trip"

let register_trip t ~kind ~value =
  t.trips <- t.trips + 1;
  if t.f.clock -. t.f.last_trip_time < escalation_window then
    t.f.escalation <- Float.min escalation_max (t.f.escalation *. 1.5)
  else t.f.escalation <- 1.0;
  t.f.last_trip_time <- t.f.clock;
  if Obs.Collector.observing () then begin
    Obs.Metrics.incr trips_metric;
    Obs.Collector.event ~name:"emergency.trip" ~sim:t.f.clock (fun () ->
        [
          ("kind", Obs.Json.String kind);
          ("value", Obs.Json.Float value);
          ("trip_index", Obs.Json.Int t.trips);
          ("escalation", Obs.Json.Float t.f.escalation);
        ])
  end

(* The steady-state verdict: shared so an untripped tick — the vast
   majority — returns without allocating. *)
let no_caps =
  { cap_freq_big = None; cap_freq_little = None; cap_big_cores = None }

let step t ?cap ~dt ~temperature ~power_big ~power_little () =
  t.f.clock <- t.f.clock +. dt;
  (* Cooldowns tick first. *)
  t.f.thermal_cooldown <- Float.max 0.0 (t.f.thermal_cooldown -. dt);
  t.f.power_cooldown_big <- Float.max 0.0 (t.f.power_cooldown_big -. dt);
  t.f.power_cooldown_little <- Float.max 0.0 (t.f.power_cooldown_little -. dt);
  (* The externally imposed board cap (rack apportionment) guards total
     board power with the same sustained-overage machinery as the
     per-cluster limiters. With no cap the two fields never leave 0.0,
     so cap-less runs are bit-identical to the pre-cap behaviour. *)
  (match cap with
  | None ->
      if t.f.over_cap_s <> 0.0 then t.f.over_cap_s <- 0.0;
      t.f.cap_cooldown <- Float.max 0.0 (t.f.cap_cooldown -. dt)
  | Some cap ->
      t.f.cap_cooldown <- Float.max 0.0 (t.f.cap_cooldown -. dt);
      let total = power_big +. power_little in
      if total > cap then t.f.over_cap_s <- t.f.over_cap_s +. dt
      else t.f.over_cap_s <- 0.0;
      if t.f.over_cap_s >= power_patience && t.f.cap_cooldown = 0.0 then begin
        register_trip t ~kind:"power_cap" ~value:total;
        t.f.cap_cooldown <- power_clamp_s *. t.f.escalation;
        t.f.over_cap_s <- 0.0
      end);
  (* Thermal trip is immediate. *)
  if temperature >= thermal_trip && t.f.thermal_cooldown = 0.0 then begin
    register_trip t ~kind:"thermal" ~value:temperature;
    t.f.thermal_cooldown <- thermal_clamp_s *. t.f.escalation
  end;
  (* Power trips need sustained overage. *)
  if power_big > power_trip_big then
    t.f.over_power_big_s <- t.f.over_power_big_s +. dt
  else t.f.over_power_big_s <- 0.0;
  if t.f.over_power_big_s >= power_patience && t.f.power_cooldown_big = 0.0 then begin
    register_trip t ~kind:"power_big" ~value:power_big;
    t.f.power_cooldown_big <- power_clamp_s *. t.f.escalation;
    t.f.over_power_big_s <- 0.0
  end;
  if power_little > power_trip_little then
    t.f.over_power_little_s <- t.f.over_power_little_s +. dt
  else t.f.over_power_little_s <- 0.0;
  if t.f.over_power_little_s >= power_patience && t.f.power_cooldown_little = 0.0
  then begin
    register_trip t ~kind:"power_little" ~value:power_little;
    t.f.power_cooldown_little <- power_clamp_s *. t.f.escalation;
    t.f.over_power_little_s <- 0.0
  end;
  if
    t.f.thermal_cooldown = 0.0 && t.f.power_cooldown_big = 0.0
    && t.f.power_cooldown_little = 0.0 && t.f.cap_cooldown = 0.0
  then no_caps
  else
    {
      cap_freq_big =
        (if t.f.thermal_cooldown > 0.0 then Some 0.5
         else if t.f.power_cooldown_big > 0.0 || t.f.cap_cooldown > 0.0 then
           Some 0.6
         else None);
      cap_freq_little =
        (if t.f.thermal_cooldown > 0.0 then Some 0.3
         else if t.f.power_cooldown_little > 0.0 || t.f.cap_cooldown > 0.0 then
           Some 0.4
         else None);
      cap_big_cores = (if t.f.thermal_cooldown > 0.0 then Some 2 else None);
    }

let tripped t =
  t.f.thermal_cooldown > 0.0 || t.f.power_cooldown_big > 0.0
  || t.f.power_cooldown_little > 0.0 || t.f.cap_cooldown > 0.0

let trip_count t = t.trips
