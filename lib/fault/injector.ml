(* The runtime fault machine: replays a schedule against one board run
   through the Xu3 injector hooks. One injector is one run's worth of
   state — campaigns build a fresh one per execution so runs never share
   fault state. *)

open Board

type t = {
  guardband : float;
  faults : Spec.timed array;
  active : bool array;
  (* What the sensors last reported (post-corruption): the value a
     dropout freezes. *)
  mutable last_reported : Xu3.outputs option;
  (* Pending actuation requests, newest first, while a Delayed fault is
     active. *)
  mutable config_requests : (float * Xu3.config) list;
  mutable placement_requests : (float * Xu3.placement) list;
  mutable injections : int;
  mutable clears : int;
}

let make ?(guardband = Schedule.default_guardband) schedule =
  if guardband <= 0.0 then
    invalid_arg "Fault.Injector.make: guardband must be positive";
  let faults = Array.of_list schedule in
  {
    guardband;
    faults;
    active = Array.make (Array.length faults) false;
    last_reported = None;
    config_requests = [];
    placement_requests = [];
    injections = 0;
    clears = 0;
  }

let injections t = t.injections

let clears t = t.clears

let schedule t = Array.to_list t.faults

let injections_metric = Obs.Metrics.counter "fault.injections"

(* Injection events snapshot the flight-recorder window: the dump shows
   what the stack was doing when the fault landed. *)
let () = Obs.Recorder.register_trigger "fault.inject"

let clears_metric = Obs.Metrics.counter "fault.clears"

let fault_fields f =
  match Spec.to_json f with Obs.Json.Obj fields -> fields | _ -> []

let on_tick t ~time =
  Array.iteri
    (fun i f ->
      let now = f.Spec.start <= time && time < Spec.stop f in
      if now && not t.active.(i) then begin
        t.active.(i) <- true;
        t.injections <- t.injections + 1;
        if Obs.Collector.observing () then begin
          Obs.Metrics.incr injections_metric;
          (* Injection is a registered dump trigger: the window shows
             what the stack was doing when the fault landed. *)
          Obs.Collector.event ~name:"fault.inject" ~sim:time (fun () ->
              fault_fields f)
        end
      end
      else if (not now) && t.active.(i) then begin
        t.active.(i) <- false;
        t.clears <- t.clears + 1;
        (* A cleared actuator fault drops its pending request backlog:
           the next command applies normally. *)
        (match f.Spec.fault with
        | Spec.Actuator _ ->
          t.config_requests <- [];
          t.placement_requests <- []
        | _ -> ());
        if Obs.Collector.observing () then begin
          Obs.Metrics.incr clears_metric;
          Obs.Collector.event ~name:"fault.clear" ~sim:time (fun () ->
              fault_fields f)
        end
      end)
    t.faults

(* Fold a function over the active faults. *)
let fold_active t f acc =
  let acc = ref acc in
  Array.iteri (fun i flt -> if t.active.(i) then acc := f !acc flt.Spec.fault)
    t.faults;
  !acc

(* ------------------------------------------------------------------ *)
(* Sensor corruption                                                   *)
(* ------------------------------------------------------------------ *)

(* Apply one sensor fault to an outputs record. A Perf fault transforms
   all three BIPS fields consistently (the per-cluster counters fail
   with the aggregate). *)
let apply_sensor (held : Xu3.outputs option) (o : Xu3.outputs) channel kind =
  let scale_perf factor =
    {
      o with
      Xu3.bips = o.Xu3.bips *. factor;
      bips_big = o.Xu3.bips_big *. factor;
      bips_little = o.Xu3.bips_little *. factor;
    }
  in
  match (channel, kind) with
  | Spec.Perf, Spec.Dropout -> (
    match held with
    | Some h ->
      {
        o with
        Xu3.bips = h.Xu3.bips;
        bips_big = h.Xu3.bips_big;
        bips_little = h.Xu3.bips_little;
      }
    | None -> o)
  | Spec.Perf, Spec.Stuck_at v ->
    scale_perf (v /. Float.max 1e-6 o.Xu3.bips)
  | Spec.Perf, Spec.Spike f -> scale_perf f
  | Spec.Power_big, Spec.Dropout -> (
    match held with
    | Some h -> { o with Xu3.power_big = h.Xu3.power_big }
    | None -> o)
  | Spec.Power_big, Spec.Stuck_at v -> { o with Xu3.power_big = v }
  | Spec.Power_big, Spec.Spike f ->
    { o with Xu3.power_big = o.Xu3.power_big *. f }
  | Spec.Power_little, Spec.Dropout -> (
    match held with
    | Some h -> { o with Xu3.power_little = h.Xu3.power_little }
    | None -> o)
  | Spec.Power_little, Spec.Stuck_at v -> { o with Xu3.power_little = v }
  | Spec.Power_little, Spec.Spike f ->
    { o with Xu3.power_little = o.Xu3.power_little *. f }
  | Spec.Temperature, Spec.Dropout -> (
    match held with
    | Some h -> { o with Xu3.temperature = h.Xu3.temperature }
    | None -> o)
  | Spec.Temperature, Spec.Stuck_at v -> { o with Xu3.temperature = v }
  | Spec.Temperature, Spec.Spike f ->
    { o with Xu3.temperature = o.Xu3.temperature *. f }

let sense t ~time:_ (o : Xu3.outputs) =
  let held = t.last_reported in
  let corrupted =
    fold_active t
      (fun acc fault ->
        match fault with
        | Spec.Sensor (channel, kind) -> apply_sensor held acc channel kind
        | _ -> acc)
      o
  in
  t.last_reported <- Some corrupted;
  corrupted

(* ------------------------------------------------------------------ *)
(* Actuator interception                                               *)
(* ------------------------------------------------------------------ *)

let actuator_state t =
  fold_active t
    (fun (stuck, delay) fault ->
      match fault with
      | Spec.Actuator Spec.Stuck -> (true, delay)
      | Spec.Actuator (Spec.Delayed d) ->
        (stuck, Some (match delay with Some d' -> Float.max d d' | None -> d))
      | _ -> (stuck, delay))
    (false, None)

(* A delay line over the request stream: commands are recorded as they
   arrive and the one issued at least [delay] seconds ago is the one
   that applies now (controllers re-command every epoch, so the line
   stays short). *)
let delayed requests current ~time ~delay =
  match List.find_opt (fun (rt, _) -> rt <= time -. delay) requests with
  | Some (_, v) -> v
  | None -> current

let transform_config t ~time ~current c =
  match actuator_state t with
  | true, _ -> current
  | false, Some delay ->
    t.config_requests <- (time, c) :: t.config_requests;
    delayed t.config_requests current ~time ~delay
  | false, None -> c

let transform_placement t ~time ~current p =
  match actuator_state t with
  | true, _ -> current
  | false, Some delay ->
    t.placement_requests <- (time, p) :: t.placement_requests;
    delayed t.placement_requests current ~time ~delay
  | false, None -> p

(* ------------------------------------------------------------------ *)
(* Plant drift gains                                                   *)
(* ------------------------------------------------------------------ *)

let power_gain t ~time:_ =
  fold_active t
    (fun g fault -> g *. Spec.power_gain ~guardband:t.guardband fault)
    1.0

let thermal_gain t ~time:_ =
  fold_active t
    (fun g fault -> g *. Spec.thermal_gain ~guardband:t.guardband fault)
    1.0

let perf_gain t ~time:_ =
  fold_active t
    (fun g fault -> g *. Spec.perf_gain ~guardband:t.guardband fault)
    1.0

let hooks t =
  {
    Xu3.on_tick = (fun ~time -> on_tick t ~time);
    sense = (fun ~time o -> sense t ~time o);
    transform_config =
      (fun ~time ~current c -> transform_config t ~time ~current c);
    transform_placement =
      (fun ~time ~current p -> transform_placement t ~time ~current p);
    power_gain = (fun ~time -> power_gain t ~time);
    thermal_gain = (fun ~time -> thermal_gain t ~time);
    perf_gain = (fun ~time -> perf_gain t ~time);
  }
