(** Seeded deterministic fault-schedule generation.

    A schedule is just a [Spec.timed list]; this module generates one
    from a seed and a campaign profile such that the same (seed,
    profile) pair always yields the identical schedule — campaigns are
    regenerable experiments, and every scheme in a campaign replays the
    same disturbance sequence. *)

type profile = {
  label : string;      (** For display and JSON. *)
  horizon : float;     (** Faults start within [0.05, 0.65] x horizon and
                           last [0.08, 0.25] x horizon seconds. *)
  count : int;         (** Number of faults drawn. *)
  severity : float;    (** Drift severity, fraction of guardband. *)
  guardband : float;   (** The design guardband severities refer to. *)
}

val default_guardband : float
(** 0.40 — the +-40% default of the hardware-layer spec (Table II). *)

val in_guardband :
  ?horizon:float -> ?count:int -> ?guardband:float -> unit -> profile
(** Severity 0.75: every plant drift stays inside the uncertainty ball
    the SSV synthesis certified. Defaults: 120 s horizon, 6 faults. *)

val out_of_guardband :
  ?horizon:float -> ?count:int -> ?guardband:float -> unit -> profile
(** Severity 2.5: plant drifts leave the certified ball — nothing is
    guaranteed for anyone out here; the question is who degrades
    gracefully. *)

val generate : seed:int -> profile -> Spec.timed list
(** Deterministic: same seed and profile, same schedule (sorted by
    start time). Fault families are stratified — fault [i] cycles
    through sensor, plant-drift, actuator — so every campaign covers
    the vocabulary; only shapes, parameters, and timing are random. *)

val first_start : Spec.timed list -> float option
(** Earliest fault onset; [None] on an empty schedule. *)

val last_clear : Spec.timed list -> float option
(** Latest fault clear time — recovery is measured from here. *)

val to_json : Spec.timed list -> Obs.Json.t
