(** The fault vocabulary: timed disturbances a robustness campaign
    injects into the board simulator.

    Three families, mirroring how a real platform fails around a
    controller:

    - {b sensor faults} corrupt what the control stack observes
      (dropout holds the last reading, stuck-at pins it, spike scales
      it) — the protection machinery keeps seeing the truth;
    - {b actuator faults} intercept configuration/placement commands
      (stuck ignores them, delayed applies them late);
    - {b plant drifts} move the true dynamics away from the identified
      model, with severities expressed as {e fractions of the design
      guardband} (Section V's uncertainty ball): a severity [f] at
      guardband [g] puts the plant at [1 + f*g] times the modeled gain,
      so [f <= 1] stays inside the ball the SSV synthesis certified and
      [f > 1] leaves it. *)

type channel = Perf | Power_big | Power_little | Temperature

type sensor_kind =
  | Dropout            (** Reading freezes at the last pre-fault value. *)
  | Stuck_at of float  (** Reading pinned to a constant. *)
  | Spike of float     (** Reading multiplied by this factor. *)

type actuator_kind =
  | Stuck              (** New commands are ignored; the board keeps the
                           configuration from fault onset. *)
  | Delayed of float   (** Commands apply this many seconds late. *)

type kind =
  | Sensor of channel * sensor_kind
  | Actuator of actuator_kind
      (** Applies to both actuation surfaces (config and placement). *)
  | Power_gain_drift of float          (** Fraction of guardband. *)
  | Thermal_resistance_drift of float  (** Fraction of guardband. *)
  | Workload_phase_shift of float
      (** IPC drop, as a fraction of guardband: retire rate scales by
          [1/(1 + f*g)]. *)

type timed = { start : float; duration : float; fault : kind }

val make : start:float -> duration:float -> kind -> timed
(** @raise Invalid_argument on negative start, non-positive duration,
    or non-positive severity/delay/spike factor. *)

val stop : timed -> float
(** [start +. duration]. *)

val channel_name : channel -> string

val kind_name : kind -> string
(** Short dotted tag, e.g. ["sensor.dropout"] — the [fault.inject]
    event vocabulary. *)

val describe : timed -> string
(** One human-readable line with the timing window. *)

val power_gain : guardband:float -> kind -> float
(** Multiplicative gain on true cluster power (1.0 for non-drift). *)

val thermal_gain : guardband:float -> kind -> float

val perf_gain : guardband:float -> kind -> float

val severity : kind -> float option
(** The numeric parameter of the fault, when it has one. *)

val to_json : timed -> Obs.Json.t
