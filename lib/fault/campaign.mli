(** Robustness campaigns: replay one fault schedule against every given
    scheme and report degradation relative to each scheme's own clean
    run.

    This is the regenerable form of the paper's robustness argument
    (Section V): inside the design guardband the SSV schemes' deviation
    guarantees still hold, so they should degrade least; outside it
    nobody has guarantees and the campaign measures who fails
    gracefully. Each scheme runs twice — once clean, once under a fresh
    {!Injector} over the same schedule — so inflation numbers are
    self-normalized and schedule replay is exact across schemes. *)

type outcome = {
  scheme : Yukta.Schemes.info;
  clean : Board.Xu3.metrics;       (** The scheme's own unfaulted run. *)
  faulted : Board.Xu3.metrics;
  survived : bool;                 (** Faulted run completed in time. *)
  exd_inflation : float;           (** faulted E x D / clean E x D. *)
  extra_trips : int;               (** Emergency trips added by faults. *)
  recovery_s : float option;
      (** Seconds after the last fault clears until the per-epoch E x D
          rate returns to within 20% of its pre-fault mean; [Some 0.] if
          the workload finished before the faults cleared; [None] if it
          never recovers (or no pre-fault reference exists). *)
  injections : int;                (** Faults that actually activated. *)
}

val run :
  ?max_time:float ->
  ?epoch:float ->
  ?guardband:float ->
  ?pool:Parallel.Pool.t ->
  schemes:Yukta.Schemes.info list ->
  workloads:Board.Workload.t list ->
  Spec.timed list ->
  outcome list
(** One clean + one faulted execution per scheme, every faulted run
    replaying the identical schedule through a fresh injector. With
    [pool], schemes fan out to the pool's domains (clean and faulted
    runs stay paired in one cell) and outcomes return in scheme order,
    byte-identical to the serial run. *)

val least_inflated : outcome list -> outcome option
(** The scheme with the smallest E x D inflation — the campaign's
    "winner" recorded in the JSON. *)

val time_to_recover :
  schedule:Spec.timed list ->
  completed:bool ->
  Yukta.Stack.trace_point array ->
  float option
(** The recovery metric on its own (exposed for tests). *)

val to_json : schedule:Spec.timed list -> outcome list -> Obs.Json.t
(** Deterministic (simulated-time-only) JSON: the schedule, per-scheme
    outcomes, and the least-inflated scheme. *)
