(* Seeded deterministic fault-schedule generation. The same (seed,
   profile) pair always yields the identical schedule, so campaigns are
   regenerable experiments: every scheme replays the same disturbance
   sequence, and the robustness figure is reproducible byte for byte. *)

type profile = {
  label : string;
  horizon : float;
  count : int;
  severity : float;
  guardband : float;
}

let default_guardband = 0.40

let in_guardband ?(horizon = 120.0) ?(count = 6)
    ?(guardband = default_guardband) () =
  if horizon <= 0.0 then invalid_arg "Fault.Schedule: horizon must be positive";
  if count < 1 then invalid_arg "Fault.Schedule: count must be at least 1";
  { label = "in-guardband"; horizon; count; severity = 0.75; guardband }

let out_of_guardband ?(horizon = 120.0) ?(count = 6)
    ?(guardband = default_guardband) () =
  if horizon <= 0.0 then invalid_arg "Fault.Schedule: horizon must be positive";
  if count < 1 then invalid_arg "Fault.Schedule: count must be at least 1";
  { label = "out-of-guardband"; horizon; count; severity = 2.5; guardband }

(* Uniform draw in [lo, hi) from the schedule's private RNG. *)
let range st lo hi = lo +. Random.State.float st (hi -. lo)

let channel_of_int = function
  | 0 -> Spec.Perf
  | 1 -> Spec.Power_big
  | 2 -> Spec.Power_little
  | _ -> Spec.Temperature

(* Stuck-at values per channel: plausible low readings that make a
   controller believe it has headroom it does not have. *)
let stuck_value = function
  | Spec.Perf -> 2.0
  | Spec.Power_big -> 1.0
  | Spec.Power_little -> 0.05
  | Spec.Temperature -> 45.0

let draw_sensor st =
  let c = channel_of_int (Random.State.int st 4) in
  match Random.State.int st 3 with
  | 0 -> Spec.Sensor (c, Spec.Dropout)
  | 1 -> Spec.Sensor (c, Spec.Stuck_at (stuck_value c))
  | _ -> Spec.Sensor (c, Spec.Spike (range st 1.3 2.2))

let draw_actuator st =
  match Random.State.int st 2 with
  | 0 -> Spec.Actuator Spec.Stuck
  | _ -> Spec.Actuator (Spec.Delayed (range st 1.0 3.0))

let draw_drift st severity =
  match Random.State.int st 3 with
  | 0 -> Spec.Power_gain_drift severity
  | 1 -> Spec.Thermal_resistance_drift severity
  | _ -> Spec.Workload_phase_shift severity

(* Stratified sampling: fault [i] cycles through the three families
   (sensor, plant drift, actuator) so a campaign covers the vocabulary
   instead of concentrating on whichever family the seed happens to
   favor; only the specific shape and its parameters are random. A
   representative mix keeps the campaign's verdict about the schemes,
   not about the draw. *)
let draw_kind st severity index =
  match index mod 3 with
  | 0 -> draw_sensor st
  | 1 -> draw_drift st severity
  | _ -> draw_actuator st

let generate ~seed profile =
  let st = Random.State.make [| seed; profile.count |] in
  let faults =
    List.init profile.count (fun i ->
        let start = range st (0.05 *. profile.horizon) (0.65 *. profile.horizon) in
        let duration =
          range st (0.08 *. profile.horizon) (0.25 *. profile.horizon)
        in
        let kind = draw_kind st profile.severity i in
        Spec.make ~start ~duration kind)
  in
  List.sort
    (fun (a : Spec.timed) b ->
      match compare a.Spec.start b.Spec.start with
      | 0 -> compare a b
      | c -> c)
    faults

let first_start = function
  | [] -> None
  | schedule ->
    Some
      (List.fold_left
         (fun acc (f : Spec.timed) -> Float.min acc f.Spec.start)
         infinity schedule)

let last_clear = function
  | [] -> None
  | schedule ->
    Some
      (List.fold_left
         (fun acc f -> Float.max acc (Spec.stop f))
         neg_infinity schedule)

let to_json schedule = Obs.Json.List (List.map Spec.to_json schedule)
