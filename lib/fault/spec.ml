(* The fault vocabulary: every disturbance a robustness campaign can
   throw at the board, with a timing window. Severities of the plant
   drifts are expressed as fractions of the controllers' design
   guardband, so "in-guardband" and "out-of-guardband" campaigns are
   defined relative to what the SSV synthesis promised to tolerate. *)

type channel = Perf | Power_big | Power_little | Temperature

type sensor_kind =
  | Dropout
  | Stuck_at of float
  | Spike of float

type actuator_kind =
  | Stuck
  | Delayed of float

type kind =
  | Sensor of channel * sensor_kind
  | Actuator of actuator_kind
  | Power_gain_drift of float
  | Thermal_resistance_drift of float
  | Workload_phase_shift of float

type timed = { start : float; duration : float; fault : kind }

let make ~start ~duration fault =
  if start < 0.0 then invalid_arg "Fault.Spec.make: negative start";
  if duration <= 0.0 then
    invalid_arg "Fault.Spec.make: duration must be positive";
  (match fault with
  | Actuator (Delayed d) when d <= 0.0 ->
    invalid_arg "Fault.Spec.make: delay must be positive"
  | Sensor (_, Spike f) when f <= 0.0 ->
    invalid_arg "Fault.Spec.make: spike factor must be positive"
  | Power_gain_drift f | Thermal_resistance_drift f | Workload_phase_shift f
    ->
    if f <= 0.0 then invalid_arg "Fault.Spec.make: severity must be positive"
  | _ -> ());
  { start; duration; fault }

let stop t = t.start +. t.duration

let channel_name = function
  | Perf -> "perf"
  | Power_big -> "power_big"
  | Power_little -> "power_little"
  | Temperature -> "temperature"

let kind_name = function
  | Sensor (_, Dropout) -> "sensor.dropout"
  | Sensor (_, Stuck_at _) -> "sensor.stuck"
  | Sensor (_, Spike _) -> "sensor.spike"
  | Actuator Stuck -> "actuator.stuck"
  | Actuator (Delayed _) -> "actuator.delayed"
  | Power_gain_drift _ -> "drift.power_gain"
  | Thermal_resistance_drift _ -> "drift.thermal_resistance"
  | Workload_phase_shift _ -> "workload.phase_shift"

let describe t =
  let body =
    match t.fault with
    | Sensor (c, Dropout) ->
      Printf.sprintf "%s sensor dropout (holds last value)" (channel_name c)
    | Sensor (c, Stuck_at v) ->
      Printf.sprintf "%s sensor stuck at %g" (channel_name c) v
    | Sensor (c, Spike f) ->
      Printf.sprintf "%s sensor readings x%g" (channel_name c) f
    | Actuator Stuck -> "actuators stuck (commands ignored)"
    | Actuator (Delayed d) -> Printf.sprintf "actuation delayed %gs" d
    | Power_gain_drift f ->
      Printf.sprintf "power-model gain drift, %g x guardband" f
    | Thermal_resistance_drift f ->
      Printf.sprintf "thermal-resistance drift, %g x guardband" f
    | Workload_phase_shift f ->
      Printf.sprintf "workload phase shift (IPC drop), %g x guardband" f
  in
  Printf.sprintf "[%6.1f s +%5.1f s] %s" t.start t.duration body

(* Guardband-relative severities resolved to multiplicative plant gains.
   A fraction f of guardband g means the true plant sits at (1 + f*g)
   times the identified model's gain: f <= 1 is inside the design's
   uncertainty ball, f > 1 outside it. *)

let power_gain ~guardband = function
  | Power_gain_drift f -> 1.0 +. (f *. guardband)
  | _ -> 1.0

let thermal_gain ~guardband = function
  | Thermal_resistance_drift f -> 1.0 +. (f *. guardband)
  | _ -> 1.0

let perf_gain ~guardband = function
  | Workload_phase_shift f -> 1.0 /. (1.0 +. (f *. guardband))
  | _ -> 1.0

let severity = function
  | Power_gain_drift f | Thermal_resistance_drift f | Workload_phase_shift f
    ->
    Some f
  | Sensor (_, Spike f) -> Some f
  | Actuator (Delayed d) -> Some d
  | Sensor (_, Stuck_at v) -> Some v
  | _ -> None

let to_json t =
  let base =
    [
      ("kind", Obs.Json.String (kind_name t.fault));
      ("start_s", Obs.Json.Float t.start);
      ("duration_s", Obs.Json.Float t.duration);
    ]
  in
  let channel =
    match t.fault with
    | Sensor (c, _) -> [ ("channel", Obs.Json.String (channel_name c)) ]
    | _ -> []
  in
  let sev =
    match severity t.fault with
    | Some f -> [ ("severity", Obs.Json.Float f) ]
    | None -> []
  in
  Obs.Json.Obj (base @ channel @ sev)
