(* Robustness campaigns: replay one fault schedule against every
   registered scheme and report how each degrades relative to its own
   clean run. The campaign is the experiment the paper's robustness
   claim (Section V's guardbands) predicts an outcome for: inside the
   guardband the SSV schemes should keep their deviation guarantees
   while heuristics and LQG drift; outside it nobody has guarantees and
   the question is who degrades gracefully. *)

open Board

type outcome = {
  scheme : Yukta.Schemes.info;
  clean : Xu3.metrics;
  faulted : Xu3.metrics;
  survived : bool;
  exd_inflation : float;
  extra_trips : int;
  recovery_s : float option;
  injections : int;
}

(* The per-epoch E x D rate used for recovery detection: same proxy the
   layer optimizer tracks (power over squared performance). *)
let exd_rate (p : Yukta.Stack.trace_point) =
  (p.Yukta.Stack.power_big +. p.Yukta.Stack.power_little)
  /. (Float.max 0.2 p.Yukta.Stack.bips ** 2.0)

(* Recovery: after the last fault clears at [t_clear], the first epoch
   whose E x D rate returns to within 20% of the pre-fault mean (the
   epochs before the first fault lands). [Some 0.] when the workload
   finished before the faults cleared; [None] when the run never comes
   back (or there is no pre-fault reference to come back to). *)
let recovery_margin = 1.2

let time_to_recover ~schedule ~completed (trace : Yukta.Stack.trace_point array)
    =
  match (Schedule.first_start schedule, Schedule.last_clear schedule) with
  | None, _ | _, None -> None
  | Some t_first, Some t_clear ->
    let pre = ref [] in
    Array.iter
      (fun p -> if p.Yukta.Stack.time < t_first then pre := exd_rate p :: !pre)
      trace;
    (match !pre with
    | [] -> None
    | rates ->
      let reference =
        List.fold_left ( +. ) 0.0 rates /. Float.of_int (List.length rates)
      in
      let after_clear =
        Array.exists (fun p -> p.Yukta.Stack.time >= t_clear) trace
      in
      if not after_clear then if completed then Some 0.0 else None
      else
        let found = ref None in
        Array.iter
          (fun p ->
            if
              !found = None
              && p.Yukta.Stack.time >= t_clear
              && exd_rate p <= recovery_margin *. reference
            then found := Some (p.Yukta.Stack.time -. t_clear))
          trace;
        !found)

let run ?max_time ?epoch ?guardband ?pool ~schemes ~workloads schedule =
  (* One cell per scheme; the clean and faulted runs stay paired inside
     the cell, so parallel fan-out never splits a comparison. The
     single-force rule: building every stack once here warms the design
     memos before any worker starts. *)
  if
    match pool with None -> false | Some p -> Parallel.Pool.jobs p > 1
  then List.iter (fun s -> ignore (Yukta.Schemes.stack s)) schemes;
  Yukta.Experiment.map_cells ?pool
    (fun scheme ->
      let clean_r =
        Yukta.Schemes.run ?max_time ?epoch scheme workloads
      in
      let injector = Injector.make ?guardband schedule in
      let faulted_r =
        Yukta.Schemes.run ?max_time ?epoch ~collect_trace:true
          ~injector:(Injector.hooks injector) scheme workloads
      in
      let clean = clean_r.Yukta.Stack.metrics in
      let faulted = faulted_r.Yukta.Stack.metrics in
      {
        scheme;
        clean;
        faulted;
        survived = faulted_r.Yukta.Stack.completed;
        exd_inflation =
          faulted.Xu3.energy_delay /. clean.Xu3.energy_delay;
        extra_trips = faulted.Xu3.trips - clean.Xu3.trips;
        recovery_s =
          time_to_recover ~schedule
            ~completed:faulted_r.Yukta.Stack.completed
            faulted_r.Yukta.Stack.trace;
        injections = Injector.injections injector;
      })
    schemes

let least_inflated outcomes =
  match outcomes with
  | [] -> None
  | o :: rest ->
    Some
      (List.fold_left
         (fun best o -> if o.exd_inflation < best.exd_inflation then o else best)
         o rest)

let outcome_json o =
  let m_json (m : Xu3.metrics) =
    Obs.Json.Obj
      [
        ("execution_time_s", Obs.Json.Float m.Xu3.execution_time);
        ("energy_j", Obs.Json.Float m.Xu3.total_energy);
        ("exd_js", Obs.Json.Float m.Xu3.energy_delay);
        ("trips", Obs.Json.Int m.Xu3.trips);
      ]
  in
  ( o.scheme.Yukta.Schemes.name,
    Obs.Json.Obj
      [
        ("clean", m_json o.clean);
        ("faulted", m_json o.faulted);
        ("exd_inflation", Obs.Json.Float o.exd_inflation);
        ("extra_trips", Obs.Json.Int o.extra_trips);
        ("survived", Obs.Json.Bool o.survived);
        ( "recovery_s",
          match o.recovery_s with
          | Some s -> Obs.Json.Float s
          | None -> Obs.Json.Null );
        ("injections", Obs.Json.Int o.injections);
      ] )

let to_json ~schedule outcomes =
  Obs.Json.Obj
    [
      ("schedule", Schedule.to_json schedule);
      ("outcomes", Obs.Json.Obj (List.map outcome_json outcomes));
      ( "least_inflated",
        match least_inflated outcomes with
        | Some o -> Obs.Json.String o.scheme.Yukta.Schemes.name
        | None -> Obs.Json.Null );
    ]
