(** The runtime fault machine.

    An injector replays one {!Schedule} against one board execution by
    implementing the {!Board.Xu3.injector} hook record: it activates and
    clears timed faults as the simulated clock advances (emitting
    [fault.inject] / [fault.clear] Obs events and counters), corrupts
    sensor observations, intercepts actuation requests, and reports the
    plant-drift gains.

    One injector is {e one run's worth of state} (held sensor values,
    pending delayed commands, activation flags): build a fresh one per
    execution — {!Campaign} does — and never share one across runs. An
    injector over an empty schedule is bit-transparent: runs through it
    are bit-identical to uninjected runs. *)

type t

val make : ?guardband:float -> Spec.timed list -> t
(** [guardband] resolves drift severities to plant gains (default
    {!Schedule.default_guardband}).
    @raise Invalid_argument on a non-positive guardband. *)

val hooks : t -> Board.Xu3.injector
(** The hook record to pass to [Xu3.create] / [Stack.run]. *)

val injections : t -> int
(** Faults activated so far in this run. *)

val clears : t -> int
(** Faults cleared so far. *)

val schedule : t -> Spec.timed list
