(** The bounded flight recorder.

    A ring buffer that retains the last [capacity] simulated-time event
    records per domain, so an emergency trip or injected fault can dump
    the window that led up to it — causal context without paying for
    full tracing. {!Collector.event} feeds the ring whenever the
    recorder is enabled, even when the collector itself is disabled, so
    recording costs one extra atomic load per instrumentation site plus
    a ring store per emitted event.

    Rings are per-domain (no locks on the hot path); the retained dump
    records are process-global behind a mutex, which is fine because
    dumps only happen on trips and faults.

    Dumps are deterministic: a dump record carries only simulated-time
    data, and when the collector is enabled it is emitted through the
    collector's sink — inside any active {!Collector.capture} scope —
    so parallel replays stay byte-identical. *)

val enabled : unit -> bool
(** One atomic load. *)

val enable : ?capacity:int -> ?max_dumps:int -> unit -> unit
(** Start recording. [capacity] (default [64]) is the per-domain window
    length in events; [max_dumps] (default [64]) bounds how many dump
    records are retained in memory (oldest kept — the first trips are
    the interesting ones; later dumps are still emitted to the
    collector sink, just not retained).
    @raise Invalid_argument when [capacity < 1] or [max_dumps < 0]. *)

val disable : unit -> unit
(** Stop recording. Rings and retained dumps survive until {!clear} so
    they can still be inspected. *)

val capacity : unit -> int
(** The window length set by the last {!enable}. *)

val note : Json.t -> unit
(** Append an already-built event record to this domain's ring,
    evicting the oldest when full. No-op when disabled. *)

(** {1 Dump triggers}

    Instrumentation sites never call {!dump} directly: they register the
    event-name prefixes whose arrival should snapshot the window, and
    the collector's feed ({!note_event}) does the rest. New trigger
    vocabularies (e.g. [adapt.swap]) register a prefix at module-init
    time instead of patching the recorder. *)

val register_trigger : ?suffix_field:string -> string -> unit
(** [register_trigger prefix] makes every event whose name starts with
    [prefix] a dump trigger. The dump reason is the event name; with
    [suffix_field], the named string field of the event is appended as
    [name ^ ":" ^ value] when present (e.g. [emergency.trip:thermal]).
    Process-global and idempotent.
    @raise Invalid_argument on an empty prefix. *)

val triggers : unit -> (string * string option) list
(** Registered [(prefix, suffix_field)] pairs, in registration order. *)

val note_event : name:string -> sim:float -> Json.t -> unit
(** {!note} the record, then {!dump} if [name] matches a registered
    trigger prefix — the triggering event sits in the dumped window,
    last. This is {!Collector.event}'s feed; no-op when disabled. *)

val window : unit -> Json.t list
(** This domain's current ring contents, oldest first. *)

val dump : reason:string -> sim:float -> unit
(** Snapshot this domain's window into a dump record

    [{"type":"dump","name":"recorder.dump","sim_s":...,
      "fields":{"reason":...,"events":N,"window":[...]}}],

    retain it (subject to [max_dumps]) and hand it to the emitter
    installed by {!set_emitter} (the collector forwards it to its sink
    when tracing is on). No-op when disabled. The ring is left intact:
    overlapping windows across nearby trips are intentional. *)

val dumps : unit -> Json.t list
(** Retained dump records, oldest first (across all domains, in dump
    order). *)

val dump_count : unit -> int
(** Total dumps taken since the last {!clear} — counts past the
    [max_dumps] retention bound. *)

val clear : unit -> unit
(** Empty this domain's ring and drop all retained dumps, resetting
    {!dump_count}. *)

val set_emitter : (Json.t -> unit) -> unit
(** Install the downstream for dump records. Wired by {!Collector} at
    module initialization; tests may override it. *)
