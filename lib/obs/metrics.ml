type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable value : float; mutable set : bool }

type histogram = {
  h_name : string;
  buckets : float array;        (* Strictly increasing upper bounds. *)
  counts : int array;           (* length buckets + 1 (overflow). *)
  mutable n : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
}

(* The enumeration list for [dump]; output is sorted by name there, so
   order here is immaterial. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let order : [ `C of counter | `G of gauge | `H of histogram ] list ref = ref []

(* One mutex over registries and metric cells: registration, updates and
   dumps may come from any domain (spans fire inside pool workers).
   Observation cost only matters when collection is enabled, and the
   simulation work per observation dwarfs an uncontended lock. *)
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; count = 0 } in
        Hashtbl.add counters name c;
        order := `C c :: !order;
        c)

let incr ?(by = 1) c = locked (fun () -> c.count <- c.count + by)

let count c = c.count

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
        let g = { g_name = name; value = Float.nan; set = false } in
        Hashtbl.add gauges name g;
        order := `G g :: !order;
        g)

let set g v =
  locked (fun () ->
      g.value <- v;
      g.set <- true)

let value g = g.value

let default_buckets =
  (* 1 us .. 1000 s, four bounds per decade. *)
  Array.init 37 (fun i -> 1e-6 *. (10.0 ** (Float.of_int i /. 4.0)))

let validate_buckets b =
  if Array.length b = 0 then
    invalid_arg "Metrics.histogram: empty bucket array";
  for i = 1 to Array.length b - 1 do
    if b.(i) <= b.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done

let histogram ?buckets name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let buckets =
          match buckets with
          | Some b ->
            validate_buckets b;
            Array.copy b
          | None -> default_buckets
        in
        let h =
          {
            h_name = name;
            buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            n = 0;
            total = 0.0;
            min_v = infinity;
            max_v = neg_infinity;
          }
        in
        Hashtbl.add histograms name h;
        order := `H h :: !order;
        h)

let bucket_index h v =
  (* Binary search for the first upper bound >= v. *)
  let nb = Array.length h.buckets in
  let lo = ref 0 and hi = ref nb in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if h.buckets.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo (* nb means overflow *)

let observe h v =
  locked (fun () ->
      let i = bucket_index h v in
      h.counts.(i) <- h.counts.(i) + 1;
      h.n <- h.n + 1;
      h.total <- h.total +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v)

let percentile h q =
  if h.n = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. Float.of_int h.n in
    let nb = Array.length h.buckets in
    let result = ref h.max_v in
    let cum = ref 0 and stop = ref false in
    let i = ref 0 in
    while (not !stop) && !i <= nb do
      let c = h.counts.(!i) in
      if c > 0 then begin
        let prev = Float.of_int !cum in
        cum := !cum + c;
        if Float.of_int !cum >= rank then begin
          (* Interpolate inside bucket [i], clamped to the observed
             range so single-bucket histograms stay tight. *)
          let lo =
            if !i = 0 then h.min_v else Float.max h.min_v h.buckets.(!i - 1)
          in
          let hi = if !i = nb then h.max_v else Float.min h.max_v h.buckets.(!i) in
          let frac =
            if c = 0 then 0.0 else (rank -. prev) /. Float.of_int c
          in
          result := lo +. (frac *. (hi -. lo));
          stop := true
        end
      end;
      i := !i + 1
    done;
    !result
  end

type summary = {
  count : int;
  total : float;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize h =
  if h.n = 0 then
    {
      count = 0;
      total = 0.0;
      mean = Float.nan;
      min_v = Float.nan;
      max_v = Float.nan;
      p50 = Float.nan;
      p90 = Float.nan;
      p99 = Float.nan;
    }
  else
    {
      count = h.n;
      total = h.total;
      mean = h.total /. Float.of_int h.n;
      min_v = h.min_v;
      max_v = h.max_v;
      p50 = percentile h 0.5;
      p90 = percentile h 0.9;
      p99 = percentile h 0.99;
    }

let reset_all () =
  locked (fun () ->
      Hashtbl.iter (fun _ (c : counter) -> c.count <- 0) counters;
      Hashtbl.iter
        (fun _ g ->
          g.value <- Float.nan;
          g.set <- false)
        gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.n <- 0;
          h.total <- 0.0;
          h.min_v <- infinity;
          h.max_v <- neg_infinity)
        histograms)

(* Dumps sort by name (then type, for the pathological case of one name
   registered as two kinds) so snapshots diff stably across runs and job
   counts — registration order depends on which code path touched a
   metric first. *)
let entry_key = function
  | `C (c : counter) -> (c.c_name, 0)
  | `G (g : gauge) -> (g.g_name, 1)
  | `H (h : histogram) -> (h.h_name, 2)

let dump () =
  locked @@ fun () ->
  List.filter_map
    (function
      | `C (c : counter) ->
        if c.count = 0 then None
        else
          Some
            (Json.Obj
               [
                 ("type", Json.String "counter");
                 ("name", Json.String c.c_name);
                 ("value", Json.Int c.count);
               ])
      | `G g ->
        if not g.set then None
        else
          Some
            (Json.Obj
               [
                 ("type", Json.String "gauge");
                 ("name", Json.String g.g_name);
                 ("value", Json.Float g.value);
               ])
      | `H h ->
        if h.n = 0 then None
        else begin
          let s = summarize h in
          Some
            (Json.Obj
               [
                 ("type", Json.String "histogram");
                 ("name", Json.String h.h_name);
                 ("count", Json.Int s.count);
                 ("total", Json.Float s.total);
                 ("mean", Json.Float s.mean);
                 ("min", Json.Float s.min_v);
                 ("max", Json.Float s.max_v);
                 ("p50", Json.Float s.p50);
                 ("p90", Json.Float s.p90);
                 ("p99", Json.Float s.p99);
               ])
        end)
    (List.sort (fun a b -> compare (entry_key a) (entry_key b)) !order)
