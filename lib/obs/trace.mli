(** Reading and summarizing JSONL trace files written by {!Collector}. *)

type entry = {
  kind : string;   (** ["event"], ["span"], ["counter"], ... *)
  name : string;
  json : Json.t;   (** The whole record, for field access. *)
}

exception Bad_trace of string
(** Raised with the offending line number on malformed input. *)

val read_file : string -> entry list
(** Parse each non-blank line of [path]; raises {!Bad_trace} on a line
    that is not a JSON object with [type] and [name] strings. *)

type span_stat = {
  span_name : string;
  span_count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
}

type event_stat = {
  event_name : string;
  event_count : int;
  first_sim_s : float;
  last_sim_s : float;
}

type summary = {
  spans : span_stat list;      (** Ordered by descending total time. *)
  events : event_stat list;    (** Ordered by descending count. *)
  metrics : entry list;        (** Counter/gauge/histogram records. *)
  dumps : entry list;          (** Flight-recorder dump records, in
                                   stream order. *)
  lines : int;
}

val summarize : entry list -> summary

val render : ?counters:bool -> summary -> string
(** Human-readable tables: span timing, event counts with simulated-time
    extents, the metric records, and a recorder-dump count. With
    [~counters:true], also one line per dump (simulated time, reason,
    window size) and a final-counter table — the [trace --counters]
    view. *)
