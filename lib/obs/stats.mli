(** The mergeable statistics core behind {!Health} and fleet-scale
    aggregation.

    Unlike {!Metrics} — a process-global registry of named cells — these
    are plain per-owner accumulators with a [merge] operation, so
    per-board statistics computed in parallel campaign cells can be
    reduced into fleet aggregates without materializing traces. Merging
    is deterministic: folding cells in a fixed order produces the same
    bits at any job count, because each cell's accumulator depends only
    on its own (simulated, deterministic) stream.

    Nothing here takes a lock; an accumulator belongs to one owner at a
    time (one stack, one reducer). *)

(** {1 Welford mean/variance} *)

module Welford : sig
  (** Numerically stable streaming mean/variance (Welford's online
      algorithm), merged pairwise with the Chan et al. update. *)

  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val mean : t -> float
  (** [nan] when empty. *)

  val variance : t -> float
  (** Population variance (divides by [n]); [nan] when empty. *)

  val std : t -> float

  val min_v : t -> float

  val max_v : t -> float

  val copy : t -> t

  val merge_into : into:t -> t -> unit
  (** [merge_into ~into src] folds [src] into [into]; [src] is left
      untouched. Merging split streams agrees with the single-stream
      result up to floating-point reassociation (the qcheck property in
      the test suite pins the tolerance). *)

  val to_json : t -> Json.t
  (** [{"count":...,"mean":...,"std":...,"min":...,"max":...}] with
      zeros (not [nan]/[null]) for the empty accumulator, so documents
      embedding it stay grep-ably finite. *)
end

(** {1 Mergeable fixed-bucket histograms} *)

module Hist : sig
  (** A fixed-bucket counting histogram whose [merge] is {e exact}
      (integer counts add), unlike any mean-based summary. Bucket
      bounds are strictly increasing upper bounds; values above the
      last bound land in an overflow slot. *)

  type t

  val create : buckets:float array -> t
  (** @raise Invalid_argument on an empty or non-increasing bound
      array. The bound array is copied. *)

  val observe : t -> float -> unit

  val count : t -> int
  (** Total observations. *)

  val buckets : t -> float array
  (** The upper bounds (a copy). *)

  val counts : t -> int array
  (** Per-bucket counts, length [buckets + 1] (last is overflow); a
      copy. *)

  val copy : t -> t

  val merge_into : into:t -> t -> unit
  (** Exact: adds per-bucket counts.
      @raise Invalid_argument when the bucket layouts differ. *)

  val to_json : t -> Json.t
  (** [{"buckets":[...],"counts":[...],"count":N}] — [counts] carries
      the overflow slot last. *)
end
