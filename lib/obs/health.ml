(* Online controller-health accumulators. See health.mli for the model;
   the one design constraint worth restating here is that every update
   is pure observation of simulated-time data — nothing below may feed
   back into the run. *)

let ewma_alpha = 0.05

type layer = {
  label : string;
  mutable decisions : int;
  mutable saturated : int;
  mutable ewma : float;
  mutable ewma_set : bool; (* First sample seeds the EWMA. *)
  err : Stats.Welford.t;
}

type channel = {
  cname : string;
  limit : float;
  trip : float;
  mutable worst : float; (* Max guardband fraction seen; -inf when empty. *)
  mutable violation_s : float;
  frac_hist : Stats.Hist.t;
}

type t = {
  mutable epochs : int;
  mutable sim : float;
  mutable trip_count : int;
  mutable layers : layer list;   (* Newest first; reversed on output. *)
  mutable channels : channel list;
}

let create () =
  { epochs = 0; sim = 0.0; trip_count = 0; layers = []; channels = [] }

let layer t label =
  match List.find_opt (fun l -> String.equal l.label label) t.layers with
  | Some l -> l
  | None ->
    let l =
      {
        label;
        decisions = 0;
        saturated = 0;
        ewma = 0.0;
        ewma_set = false;
        err = Stats.Welford.create ();
      }
    in
    t.layers <- l :: t.layers;
    l

(* Guardband-fraction buckets: quartiles of the band, a 90 % "close
   call" bucket, the trip point, and the overflow slot for time spent
   past it. *)
let fraction_buckets = [| 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 |]

let channel t ~name ~limit ~trip =
  if trip <= limit then invalid_arg "Health.channel: trip <= limit";
  match List.find_opt (fun c -> String.equal c.cname name) t.channels with
  | Some c ->
    if c.limit <> limit || c.trip <> trip then
      invalid_arg "Health.channel: thresholds differ for existing channel";
    c
  | None ->
    let c =
      {
        cname = name;
        limit;
        trip;
        worst = neg_infinity;
        violation_s = 0.0;
        frac_hist = Stats.Hist.create ~buckets:fraction_buckets;
      }
    in
    t.channels <- c :: t.channels;
    c

let note_decision l ~err ~saturated =
  l.decisions <- l.decisions + 1;
  if saturated then l.saturated <- l.saturated + 1;
  if l.ewma_set then l.ewma <- l.ewma +. (ewma_alpha *. (err -. l.ewma))
  else begin
    l.ewma <- err;
    l.ewma_set <- true
  end;
  Stats.Welford.add l.err err

let note_heuristic l = l.decisions <- l.decisions + 1

let observe_channel c ~value ~dt =
  let frac = (value -. c.limit) /. (c.trip -. c.limit) in
  if frac > c.worst then c.worst <- frac;
  if value > c.limit then c.violation_s <- c.violation_s +. dt;
  Stats.Hist.observe c.frac_hist frac

let note_epoch t ~dt =
  t.epochs <- t.epochs + 1;
  t.sim <- t.sim +. dt

let note_trips t n = t.trip_count <- t.trip_count + n

let epochs t = t.epochs

let sim_s t = t.sim

let trips t = t.trip_count

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

let merge_layer ~into:a b =
  (* EWMA is order-dependent, so the merged value is the decision-
     weighted average — approximate, but deterministic and sane. The
     Welford moments underneath are the faithful mergeable summary. *)
  let na = a.decisions and nb = b.decisions in
  if nb > 0 then begin
    if a.ewma_set && b.ewma_set then
      a.ewma <-
        ((a.ewma *. Float.of_int na) +. (b.ewma *. Float.of_int nb))
        /. Float.of_int (na + nb)
    else if b.ewma_set then begin
      a.ewma <- b.ewma;
      a.ewma_set <- true
    end;
    a.decisions <- na + nb;
    a.saturated <- a.saturated + b.saturated;
    Stats.Welford.merge_into ~into:a.err b.err
  end

let merge_channel ~into:a b =
  if a.limit <> b.limit || a.trip <> b.trip then
    invalid_arg "Health.merge_into: channel thresholds differ";
  if b.worst > a.worst then a.worst <- b.worst;
  a.violation_s <- a.violation_s +. b.violation_s;
  Stats.Hist.merge_into ~into:a.frac_hist b.frac_hist

let merge_into ~into src =
  let lb = List.rev src.layers and cb = List.rev src.channels in
  (* A fresh accumulator adopts the source's layout, so reducers can
     start from [create ()] and fold. *)
  let adopting = into.layers = [] && into.channels = [] in
  let la =
    if adopting then List.map (fun l -> layer into l.label) lb
    else List.rev into.layers
  in
  let ca =
    if adopting then
      List.map
        (fun c -> channel into ~name:c.cname ~limit:c.limit ~trip:c.trip)
        cb
    else List.rev into.channels
  in
  if
    List.length la <> List.length lb
    || List.exists2 (fun a b -> not (String.equal a.label b.label)) la lb
  then invalid_arg "Health.merge_into: layer layouts differ";
  if
    List.length ca <> List.length cb
    || List.exists2 (fun a b -> not (String.equal a.cname b.cname)) ca cb
  then invalid_arg "Health.merge_into: channel layouts differ";
  into.epochs <- into.epochs + src.epochs;
  into.sim <- into.sim +. src.sim;
  into.trip_count <- into.trip_count + src.trip_count;
  List.iter2 (fun a b -> merge_layer ~into:a b) la lb;
  List.iter2 (fun a b -> merge_channel ~into:a b) ca cb

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let saturation_duty l =
  if l.decisions = 0 then 0.0
  else Float.of_int l.saturated /. Float.of_int l.decisions

let layer_json l =
  Json.Obj
    [
      ("label", Json.String l.label);
      ("decisions", Json.Int l.decisions);
      ("saturation_duty", Json.Float (saturation_duty l));
      ("err_ewma", Json.Float (if l.ewma_set then l.ewma else 0.0));
      ("err", Stats.Welford.to_json l.err);
    ]

let channel_json c =
  Json.Obj
    [
      ("name", Json.String c.cname);
      ("limit", Json.Float c.limit);
      ("trip", Json.Float c.trip);
      ( "worst_guardband_fraction",
        Json.Float (if c.worst = neg_infinity then 0.0 else c.worst) );
      ("violation_s", Json.Float c.violation_s);
      ("fraction_hist", Stats.Hist.to_json c.frac_hist);
    ]

let to_json t =
  Json.Obj
    [
      ("epochs", Json.Int t.epochs);
      ("sim_s", Json.Float t.sim);
      ("trips", Json.Int t.trip_count);
      ("layers", Json.List (List.rev_map layer_json t.layers));
      ("channels", Json.List (List.rev_map channel_json t.channels));
    ]

let render t =
  let b = Buffer.create 512 in
  Printf.bprintf b "health: epochs=%d sim=%.3fs trips=%d\n" t.epochs t.sim
    t.trip_count;
  let layers = List.rev t.layers in
  if layers <> [] then begin
    Printf.bprintf b "  %-24s %9s %6s %10s %10s %10s\n" "layer" "decisions"
      "sat%" "err-ewma" "err-mean" "err-max";
    List.iter
      (fun l ->
        let mean = Stats.Welford.mean l.err in
        let maxv = Stats.Welford.max_v l.err in
        Printf.bprintf b "  %-24s %9d %6.1f %10.4f %10.4f %10.4f\n" l.label
          l.decisions
          (100.0 *. saturation_duty l)
          (if l.ewma_set then l.ewma else 0.0)
          (if Float.is_nan mean then 0.0 else mean)
          (if Float.is_finite maxv then maxv else 0.0))
      layers
  end;
  let channels = List.rev t.channels in
  if channels <> [] then begin
    Printf.bprintf b "  %-24s %9s %9s %10s %10s\n" "channel" "limit" "trip"
      "worst-gb" "viol-s";
    List.iter
      (fun c ->
        Printf.bprintf b "  %-24s %9.3f %9.3f %10.3f %10.3f\n" c.cname c.limit
          c.trip
          (if c.worst = neg_infinity then 0.0 else c.worst)
          c.violation_s)
      channels
  end;
  Buffer.contents b
