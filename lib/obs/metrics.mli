(** Process-global metric registry: counters, gauges, and fixed-bucket
    histograms with percentile summaries.

    Metrics are cheap mutable cells looked up (or created) by name; sites
    on hot paths should hold the metric value and guard updates behind
    {!Collector.enabled} so a disabled run costs one branch. The registry
    survives {!reset_all} (values are zeroed, instances stay valid), so a
    metric captured at module-initialization time never dangles.

    Registration, updates, {!reset_all} and {!dump} are serialized by an
    internal mutex and safe to call from any domain (pool workers record
    spans concurrently). The read-only accessors ({!count}, {!value},
    {!percentile}, {!summarize}) are unsynchronized snapshots — call
    them from the coordinating domain, not while workers observe. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Get or create the counter registered under [name]. *)

val incr : ?by:int -> counter -> unit

val count : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge

val set : gauge -> float -> unit

val value : gauge -> float
(** Last value set; [nan] if never set since creation/reset. *)

(** {1 Histograms} *)

type histogram

val default_buckets : float array
(** Log-spaced upper bounds from 1 microsecond to 1000 seconds — suitable
    for timing spans. *)

val histogram : ?buckets:float array -> string -> histogram
(** Get or create. [buckets] are strictly increasing upper bounds; values
    above the last bound land in an overflow bucket. The bucket layout of
    an existing histogram is kept (the parameter only applies on
    creation). *)

val observe : histogram -> float -> unit

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0, 1], linearly interpolated within the
    containing bucket and clamped to the observed min/max; [nan] when the
    histogram is empty. *)

type summary = {
  count : int;
  total : float;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : histogram -> summary

(** {1 Registry} *)

val reset_all : unit -> unit
(** Zero every registered metric (instances remain valid). *)

val dump : unit -> Json.t list
(** One JSON record per registered metric with a non-trivial value
    (counters at zero, never-set gauges and empty histograms are
    skipped), sorted by name so snapshots diff stably across runs and
    job counts:
    [{"type":"counter","name":...,"value":...}],
    [{"type":"gauge",...}], and
    [{"type":"histogram","name":...,"count":...,"mean":...,"p50":...}]. *)
