let flag = Atomic.make false

let enabled () = Atomic.get flag

let enable () = Atomic.set flag true

let disable () = Atomic.set flag false

(* Anyone listening at all? Sites that feed both the trace stream and
   the flight recorder guard on this instead of [enabled]. *)
let observing () = Atomic.get flag || Recorder.enabled ()

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

(* The sink, the buffer and the file handle are process-global; every
   access goes through [sink_mutex] so domains never interleave inside a
   line or race the handle. Per-domain capture (below) bypasses the
   global sink entirely, which is how parallel drivers keep trace order
   deterministic: capture per task, replay in input order. *)

let sink_mutex = Mutex.create ()

let locked f =
  Mutex.lock sink_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_mutex) f

let buffer : string list ref = ref []

let buffer_write line = buffer := line :: !buffer

let sink : (string -> unit) ref = ref buffer_write

let out : out_channel option ref = ref None

let set_sink f = locked (fun () -> sink := f)

let buffer_sink () =
  locked (fun () ->
      buffer := [];
      sink := buffer_write)

let drain () =
  locked (fun () ->
      let lines = List.rev !buffer in
      buffer := [];
      lines)

let close_unlocked () =
  (match !out with
  | Some oc ->
    out := None;
    close_out oc
  | None -> ());
  sink := buffer_write

let close () = locked close_unlocked

let open_file path =
  locked (fun () ->
      close_unlocked ();
      let oc = open_out path in
      out := Some oc;
      sink :=
        fun line ->
          output_string oc line;
          output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Per-domain capture                                                  *)
(* ------------------------------------------------------------------ *)

(* When a capture buffer is installed in this domain, emissions land
   there instead of the global sink — no lock, no cross-domain
   interleaving. *)
let capture_key : string list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let emit_line line =
  match Domain.DLS.get capture_key with
  | Some buf -> buf := line :: !buf
  | None -> locked (fun () -> !sink line)

let capture f =
  let buf = ref [] in
  let saved = Domain.DLS.get capture_key in
  Domain.DLS.set capture_key (Some buf);
  let finish () = Domain.DLS.set capture_key saved in
  match f () with
  | v ->
    finish ();
    (v, List.rev !buf)
  | exception exn ->
    finish ();
    raise exn

(* Replayed lines re-enter through [emit_line], so a capture of a replay
   nests the way span scopes do. *)
let replay lines = List.iter emit_line lines

let emit json = emit_line (Json.to_string json)

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

(* Dump records produced by the flight recorder flow into the trace
   stream only when collection is on; the recorder itself works either
   way. Registered here (not in recorder.ml) to keep the dependency
   one-way. *)
let () = Recorder.set_emitter (fun json -> if enabled () then emit json)

(* [fields] is a thunk: payloads are only built when a sink (trace
   stream or flight recorder) will actually consume them, so call sites
   pay a closure, not a JSON tree, when nobody is listening. *)
let event ~name ~sim fields =
  let trace = enabled () in
  let record = Recorder.enabled () in
  if trace || record then begin
    let json =
      Json.Obj
        [
          ("type", Json.String "event");
          ("name", Json.String name);
          ("sim_s", Json.Float sim);
          ("fields", Json.Obj (fields ()));
        ]
    in
    if record then Recorder.note_event ~name ~sim json;
    if trace then emit json
  end

let debug ~name fields =
  if enabled () then
    emit
      (Json.Obj
         [
           ("type", Json.String "debug");
           ("name", Json.String name);
           ("fields", Json.Obj fields);
         ])

(* Durations must come from a clock that NTP steps can't move backwards
   or inflate, so [now] is monotonic (ns since an arbitrary origin). The
   real-time clock survives only for human-readable timestamps. *)
let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let wall_clock () = Unix.gettimeofday ()

let span_hist name = Metrics.histogram ("span." ^ name)

(* Span nesting depth is per-domain: concurrent tasks each carry their
   own stack of open spans. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let record_span_at ~name ~depth:d ~dur_s fields =
  Metrics.observe (span_hist name) dur_s;
  emit
    (Json.Obj
       [
         ("type", Json.String "span");
         ("name", Json.String name);
         ("dur_s", Json.Float dur_s);
         ("depth", Json.Int d);
         ("fields", Json.Obj fields);
       ])

let record_span ~name ~dur_s fields =
  if enabled () then
    record_span_at ~name ~depth:!(Domain.DLS.get depth_key) ~dur_s fields

let span ~name f =
  if not (enabled ()) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let t0 = now () in
    match f () with
    | v ->
      depth := d;
      record_span_at ~name ~depth:d ~dur_s:(now () -. t0) [];
      v
    | exception exn ->
      depth := d;
      record_span_at ~name ~depth:d ~dur_s:(now () -. t0)
        [ ("raised", Json.String (Printexc.to_string exn)) ];
      raise exn
  end

let dump_metrics () = if enabled () then List.iter emit (Metrics.dump ())

(* ------------------------------------------------------------------ *)
(* Scoped collection                                                   *)
(* ------------------------------------------------------------------ *)

let with_collection ?file f =
  let was_enabled = enabled () in
  Metrics.reset_all ();
  (match file with Some path -> open_file path | None -> buffer_sink ());
  enable ();
  let finish () =
    dump_metrics ();
    close ();
    if not was_enabled then disable ()
  in
  match f () with
  | v ->
    finish ();
    v
  | exception exn ->
    finish ();
    raise exn
