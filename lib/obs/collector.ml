let flag = Atomic.make false

let enabled () = Atomic.get flag

let enable () = Atomic.set flag true

let disable () = Atomic.set flag false

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let buffer : string list ref = ref []

let buffer_write line = buffer := line :: !buffer

let sink : (string -> unit) ref = ref buffer_write

let out : out_channel option ref = ref None

let set_sink f = sink := f

let buffer_sink () =
  buffer := [];
  sink := buffer_write

let drain () =
  let lines = List.rev !buffer in
  buffer := [];
  lines

let close () =
  (match !out with
  | Some oc ->
    out := None;
    close_out oc
  | None -> ());
  sink := buffer_write

let open_file path =
  close ();
  let oc = open_out path in
  out := Some oc;
  sink :=
    fun line ->
      output_string oc line;
      output_char oc '\n'

let emit json = !sink (Json.to_string json)

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let event ~name ~sim fields =
  if enabled () then
    emit
      (Json.Obj
         [
           ("type", Json.String "event");
           ("name", Json.String name);
           ("sim_s", Json.Float sim);
           ("fields", Json.Obj fields);
         ])

let now () = Unix.gettimeofday ()

let span_hist name = Metrics.histogram ("span." ^ name)

let depth = ref 0

let record_span_at ~name ~depth:d ~dur_s fields =
  Metrics.observe (span_hist name) dur_s;
  emit
    (Json.Obj
       [
         ("type", Json.String "span");
         ("name", Json.String name);
         ("dur_s", Json.Float dur_s);
         ("depth", Json.Int d);
         ("fields", Json.Obj fields);
       ])

let record_span ~name ~dur_s fields =
  if enabled () then record_span_at ~name ~depth:!depth ~dur_s fields

let span ~name f =
  if not (enabled ()) then f ()
  else begin
    let d = !depth in
    depth := d + 1;
    let t0 = now () in
    match f () with
    | v ->
      depth := d;
      record_span_at ~name ~depth:d ~dur_s:(now () -. t0) [];
      v
    | exception exn ->
      depth := d;
      record_span_at ~name ~depth:d ~dur_s:(now () -. t0)
        [ ("raised", Json.String (Printexc.to_string exn)) ];
      raise exn
  end

let dump_metrics () = if enabled () then List.iter emit (Metrics.dump ())

(* ------------------------------------------------------------------ *)
(* Scoped collection                                                   *)
(* ------------------------------------------------------------------ *)

let with_collection ?file f =
  let was_enabled = enabled () in
  Metrics.reset_all ();
  (match file with Some path -> open_file path | None -> buffer_sink ());
  enable ();
  let finish () =
    dump_metrics ();
    close ();
    if not was_enabled then disable ()
  in
  match f () with
  | v ->
    finish ();
    v
  | exception exn ->
    finish ();
    raise exn
