type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Most strings passing through the encoder (event names, field keys,
   scheme labels) need no escaping; one scan finds those and blits them
   whole instead of walking char by char. *)
let needs_escape s =
  let n = String.length s in
  let rec scan i =
    i < n
    &&
    let c = String.unsafe_get s i in
    c < ' ' || c = '"' || c = '\\' || scan (i + 1)
  in
  scan 0

let escape_slow buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape_to buf s =
  Buffer.add_char buf '"';
  if needs_escape s then escape_slow buf s else Buffer.add_string buf s;
  Buffer.add_char buf '"'

(* The C primitive behind [string_of_float] and printf's %g: identical
   bytes to [Printf.sprintf fmt f] for float conversions, without the
   format-string interpretation that dominates sprintf's cost. Encoding
   floats is the trace stream's hottest operation. *)
external format_float : string -> float -> string = "caml_format_float"

(* Shortest representation that round-trips; forced to contain a '.' or
   exponent so the value re-parses as a float, not an int. Integral
   values (epoch counters, step counts) skip the printf/parse round-trip
   entirely; the magnitude bound keeps them inside %.12g's digit budget
   and the sign check keeps "-0.0" on the slow path. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    let i = Float.to_int f in
    if Float.of_int i = f && Float.abs f < 1e12 && (f <> 0.0 || 1.0 /. f > 0.0)
    then string_of_int i ^ ".0"
    else if
      (* Exact halves — simulated time advances in 0.5 s epochs, so
         [sim_s] nearly always lands here. The non-integrality test
         keeps -0.0 (integral-valued but sign-bearing) out. *)
      Float.of_int i <> f
      && Float.of_int (Float.to_int (2.0 *. f)) = 2.0 *. f
      && Float.abs f < 1e11
    then
      if f > 0.0 || i <> 0 then string_of_int i ^ ".5"
      else "-0.5"
    else begin
      let s =
        let short = format_float "%.12g" f in
        if float_of_string short = f then short else format_float "%.17g" f
      in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
      else s ^ ".0"
    end
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let rec pretty_to buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List xs ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        pretty_to buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj kvs ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        escape_to buf k;
        Buffer.add_string buf ": ";
        pretty_to buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  if pretty then pretty_to buf 0 v else to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let expect_lit c lit value =
  if
    c.pos + String.length lit <= String.length c.src
    && String.sub c.src c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else fail c (Printf.sprintf "expected %S" lit)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad hex digit in \\u escape"

let parse_hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek c with
    | Some ch ->
      v := (!v * 16) + hex_digit c ch;
      advance c
    | None -> fail c "truncated \\u escape"
  done;
  !v

(* Encode one Unicode scalar value as UTF-8. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | None -> fail c "truncated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let code = parse_hex4 c in
          (* Surrogate pair: a high surrogate must be followed by an
             escaped low surrogate; combine them. *)
          let code =
            if code >= 0xD800 && code <= 0xDBFF then begin
              expect c '\\';
              expect c 'u';
              let lo = parse_hex4 c in
              if lo < 0xDC00 || lo > 0xDFFF then
                fail c "invalid low surrogate";
              0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
            end
            else code
          in
          add_utf8 buf code
        | _ -> fail c "unknown escape"));
      loop ()
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let continue = ref true in
  while !continue do
    match peek c with
    | Some ch when is_num_char ch -> advance c
    | _ -> continue := false
  done;
  let s = String.sub c.src start (c.pos - start) in
  if s = "" then fail c "expected a number";
  let is_float = String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c (Printf.sprintf "bad number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> expect_lit c "null" Null
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        items := parse_value c :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some ']' -> advance c
        | _ -> fail c "expected ',' or ']'"
      in
      loop ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        items := (k, v) :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some '}' -> advance c
        | _ -> fail c "expected ',' or '}'"
      in
      loop ();
      Obj (List.rev !items)
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (Float.of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
