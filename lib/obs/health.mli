(** Online controller-health monitors.

    A {!t} accumulates, per stack run, the quantities the paper treats
    as first-class evidence that a controller can be trusted with its
    knobs: per-layer tracking error (EWMA and full {!Stats.Welford}
    moments), actuator saturation duty cycle, guardband proximity per
    physical channel (worst-case fraction of the limit→trip guardband
    consumed, time spent above the limit, and an exact
    {!Stats.Hist} over the fraction), and emergency-trip counts.

    The accumulator is generic — it knows labels, errors and channels,
    not layers or boards — so it lives in [Obs] and is fed by the
    runtime ([Stack.run]/[Layer.step]) each epoch. Updates are
    allocation-light and everything is driven by simulated-time data,
    so enabling health monitoring cannot perturb a run: clean runs stay
    bit-identical.

    Health from parallel campaign cells reduces with {!merge_into}
    (Welford moments via the Chan et al. update, histograms exactly,
    EWMAs as a decision-count-weighted average — the one approximate
    merge, since an EWMA is order-dependent by construction). Folding
    cells in a fixed order yields byte-identical aggregates at any job
    count. *)

type t

type layer
(** Per-layer accumulator, owned by a {!t}. *)

type channel
(** Per-physical-channel guardband accumulator, owned by a {!t}. *)

val create : unit -> t

val layer : t -> string -> layer
(** Find-or-create the accumulator for the layer labelled [label].
    Creation order is output order, so callers register layers in
    stepping order. *)

val channel : t -> name:string -> limit:float -> trip:float -> channel
(** Find-or-create the guardband channel [name] with controller [limit]
    and emergency [trip] threshold.
    @raise Invalid_argument when [trip <= limit], or when [name] exists
    with different thresholds. *)

val ewma_alpha : float
(** Smoothing factor for the tracking-error EWMA ([0.05]). *)

val note_decision : layer -> err:float -> saturated:bool -> unit
(** Record one controlled decision: [err] is the layer's normalized RMS
    tracking error this epoch; [saturated] whether any actuator command
    hit its rail. *)

val note_heuristic : layer -> unit
(** Record one heuristic (non-controlled) decision — counts only. *)

val observe_channel : channel -> value:float -> dt:float -> unit
(** Record the channel at [value] for the last [dt] simulated seconds.
    The guardband fraction is [(value - limit) / (trip - limit)]:
    negative below the limit, [0..1] inside the guardband, above [1]
    past the trip threshold. [dt] accrues to time-in-violation when
    [value > limit]. *)

val note_epoch : t -> dt:float -> unit
(** Account one epoch of [dt] simulated seconds. *)

val note_trips : t -> int -> unit
(** Add [n] emergency trips (callers pass the delta of the board's trip
    counter). *)

val epochs : t -> int

val sim_s : t -> float

val trips : t -> int

val merge_into : into:t -> t -> unit
(** Fold [src] into [into]; [src] is untouched. An [into] with no
    layers and no channels (fresh from {!create}) adopts [src]'s
    layout, so reducers can start from [create ()] and fold.
    @raise Invalid_argument when both sides are populated and their
    layer label sequences or channel definitions differ. *)

val to_json : t -> Json.t
(** Deterministic summary document (layers and channels in creation
    order):
    [{"epochs":..,"sim_s":..,"trips":..,
      "layers":[{"label":..,"decisions":..,"saturation_duty":..,
                 "err_ewma":..,"err":{Welford}}...],
      "channels":[{"name":..,"limit":..,"trip":..,
                   "worst_guardband_fraction":..,"violation_s":..,
                   "fraction_hist":{Hist}}...]}] *)

val render : t -> string
(** Human-readable multi-line table (for [yukta_cli run --health]). *)
