(** The process-global telemetry collector.

    Collection is {e explicitly enabled} and disabled by default; every
    instrumentation site in the stack guards its emission with
    {!enabled}, which reads a single atomic flag, so a disabled run pays
    one branch and allocates nothing. Callers must follow the same
    discipline: build field lists {e inside} an [if Collector.enabled ()]
    branch, never before it.

    Two time domains keep run traces deterministic:

    - {b simulated-time events} ({!event}) carry the board's simulated
      clock and never read the wall clock — two runs of the same
      experiment produce byte-identical event streams;
    - {b wall-clock spans} ({!span}, {!record_span}) time synthesis-side
      code (D-K iteration, H-infinity bisection, experiment drivers)
      where wall time is the measurement.

    Records are encoded as JSONL and handed to the current sink — an
    in-memory buffer by default (see {!drain}), or a file via
    {!open_file}.

    {b Domain safety.} The sink, buffer and file handle are
    process-global and every access is serialized by an internal mutex,
    so concurrent emission from several domains never tears a line. For
    {e reproducible} traces under parallelism, serialization is not
    enough — arrival order would still depend on scheduling — so
    parallel drivers wrap each task in {!capture} (a per-domain buffer
    that bypasses the global sink) and {!replay} the captured lines in
    task input order once the batch completes. Span nesting depth is
    per-domain. *)

val enabled : unit -> bool
(** One atomic load; the only cost a disabled instrumentation site pays. *)

val observing : unit -> bool
(** [enabled () || Recorder.enabled ()] — the guard for sites whose
    events should also reach the flight recorder (board, emergency,
    fault-injection and runtime epoch events). Two atomic loads. *)

val enable : unit -> unit

val disable : unit -> unit

(** {1 Sinks} *)

val set_sink : (string -> unit) -> unit
(** Route encoded JSONL lines (no trailing newline) to [f]. Replaces the
    default in-memory buffer. *)

val buffer_sink : unit -> unit
(** Restore the default in-memory buffer sink (clearing it). *)

val drain : unit -> string list
(** Lines accumulated by the buffer sink, oldest first; clears the
    buffer. Empty when a custom sink is installed. *)

val open_file : string -> unit
(** Send subsequent records to [path] (truncating it). *)

val close : unit -> unit
(** Flush and close the file opened by {!open_file} (no-op otherwise) and
    fall back to the buffer sink. *)

(** {1 Per-domain capture}

    The building blocks of deterministic parallel tracing: run each
    parallel task under {!capture}, then {!replay} the captured lines in
    input order — the resulting stream is byte-identical to a serial
    run's (modulo wall-clock span durations). *)

val capture : (unit -> 'a) -> 'a * string list
(** [capture f] runs [f] with this domain's emissions diverted to a
    fresh local buffer and returns [f]'s result with the captured JSONL
    lines, oldest first. Captures nest (the inner scope shadows the
    outer); other domains are unaffected. If [f] raises, the capture
    scope is popped and the exception propagates (captured lines are
    dropped with it). *)

val replay : string list -> unit
(** Hand already-encoded lines to the current sink in list order — or to
    this domain's active {!capture} scope, so replays nest. *)

(** {1 Emission} *)

val event : name:string -> sim:float -> (unit -> (string * Json.t) list) -> unit
(** Simulated-time event: [{"type":"event","name":...,"sim_s":...,
    "fields":{...}}]. Emitted to the sink when {!enabled}; also noted in
    the {!Recorder} ring when that is enabled. The field list is a
    thunk, forced only when a sink will consume it — uninstrumented runs
    pay one closure per call site, never the JSON construction. Sites
    whose fields are expensive to even close over may still guard on
    {!observing}. *)

val debug : name:string -> (string * Json.t) list -> unit
(** Diagnostic record with neither time domain attached:
    [{"type":"debug","name":...,"fields":{...}}] — for rare anomalies
    in synthesis-side code (no simulated clock, wall time meaningless),
    e.g. an iteration hitting its cap without converging. No-op when
    disabled. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary origin — for durations only.
    Immune to NTP steps; not comparable across processes. Use
    {!wall_clock} for human-readable timestamps. *)

val wall_clock : unit -> float
(** Real-time (Unix epoch) seconds, for display only; may jump under
    clock adjustments, so never difference it. *)

val record_span : name:string -> dur_s:float -> (string * Json.t) list -> unit
(** Record an already-measured wall-clock span; also feeds the
    [span.<name>] histogram so {!Metrics.dump} carries timing summaries.
    No-op when disabled. *)

val span : name:string -> (unit -> 'a) -> 'a
(** Time [f ()] and record it as a span (with its nesting [depth]).
    When disabled, calls [f] directly. Exceptions propagate; the span is
    still recorded with an ["raised"] field. *)

val dump_metrics : unit -> unit
(** Write one JSONL record per non-trivial registered metric (see
    {!Metrics.dump}) to the sink. No-op when disabled. *)

(** {1 Scoped collection} *)

val with_collection : ?file:string -> (unit -> 'a) -> 'a
(** Reset metrics, enable collection (to [file] if given), run [f], dump
    metrics, close the file and disable — restoring the previous
    enabled/sink state even on exceptions. *)
