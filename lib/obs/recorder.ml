let flag = Atomic.make false

let enabled () = Atomic.get flag

let cap = Atomic.make 64

let capacity () = Atomic.get cap

let retention_default = 64

let retention = Atomic.make retention_default

(* ------------------------------------------------------------------ *)
(* Per-domain ring                                                     *)
(* ------------------------------------------------------------------ *)

type ring = {
  slots : Json.t array;
  mutable head : int;  (* Next write position. *)
  mutable count : int; (* min count capacity = live entries. *)
}

(* The ring is created lazily at the first [note] in each domain, sized
   to the capacity in force then; a capacity change takes effect in a
   domain at its next note after [clear] (rings are rebuilt when the
   size no longer matches). *)
let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_ring () =
  let cell = Domain.DLS.get ring_key in
  let want = capacity () in
  match !cell with
  | Some r when Array.length r.slots = want -> r
  | _ ->
    let r = { slots = Array.make want Json.Null; head = 0; count = 0 } in
    cell := Some r;
    r

let note json =
  if enabled () then begin
    let r = current_ring () in
    let n = Array.length r.slots in
    r.slots.(r.head) <- json;
    r.head <- (r.head + 1) mod n;
    if r.count < n then r.count <- r.count + 1
  end

(* ------------------------------------------------------------------ *)
(* Dump triggers                                                       *)
(* ------------------------------------------------------------------ *)

(* Event-name prefixes whose arrival snapshots the window. The list is
   tiny (a handful of registrations at module-init time) and only
   scanned when the recorder is enabled, so a linear scan per noted
   event is fine. Registrations are process-global and idempotent. *)
let triggers_mutex = Mutex.create ()

let trigger_list : (string * string option) list ref = ref []

let register_trigger ?suffix_field prefix =
  if prefix = "" then invalid_arg "Recorder.register_trigger: empty prefix";
  Mutex.lock triggers_mutex;
  if not (List.mem (prefix, suffix_field) !trigger_list) then
    trigger_list := !trigger_list @ [ (prefix, suffix_field) ];
  Mutex.unlock triggers_mutex

let triggers () =
  Mutex.lock triggers_mutex;
  let l = !trigger_list in
  Mutex.unlock triggers_mutex;
  l

let trigger_match name =
  List.find_opt (fun (p, _) -> String.starts_with ~prefix:p name) (triggers ())

let window () =
  match !(Domain.DLS.get ring_key) with
  | None -> []
  | Some r ->
    let n = Array.length r.slots in
    let start = (r.head - r.count + n) mod n in
    List.init r.count (fun i -> r.slots.((start + i) mod n))

(* ------------------------------------------------------------------ *)
(* Dumps                                                               *)
(* ------------------------------------------------------------------ *)

let dumps_mutex = Mutex.create ()

let retained : Json.t list ref = ref [] (* Newest first. *)

let taken = ref 0

let emitter : (Json.t -> unit) ref = ref (fun _ -> ())

let set_emitter f = emitter := f

let dump ~reason ~sim =
  if enabled () then begin
    let events = window () in
    let record =
      Json.Obj
        [
          ("type", Json.String "dump");
          ("name", Json.String "recorder.dump");
          ("sim_s", Json.Float sim);
          ( "fields",
            Json.Obj
              [
                ("reason", Json.String reason);
                ("events", Json.Int (List.length events));
                ("window", Json.List events);
              ] );
        ]
    in
    Mutex.lock dumps_mutex;
    incr taken;
    if !taken <= Atomic.get retention then retained := record :: !retained;
    Mutex.unlock dumps_mutex;
    !emitter record
  end

(* The collector's feed: append the event to the ring, then — if its
   name matches a registered trigger prefix — snapshot the window (the
   triggering event is in the ring, last, by construction). The dump
   reason is the event name, refined by the trigger's suffix field when
   it names a string field of the event (e.g. the trip [kind]). *)
let note_event ~name ~sim json =
  if enabled () then begin
    note json;
    match trigger_match name with
    | None -> ()
    | Some (_, suffix_field) ->
      let reason =
        match suffix_field with
        | None -> name
        | Some field -> (
          match
            Option.bind
              (Option.bind (Json.member "fields" json) (Json.member field))
              Json.to_string_opt
          with
          | Some v -> name ^ ":" ^ v
          | None -> name)
      in
      dump ~reason ~sim
  end

let dumps () =
  Mutex.lock dumps_mutex;
  let l = List.rev !retained in
  Mutex.unlock dumps_mutex;
  l

let dump_count () =
  Mutex.lock dumps_mutex;
  let n = !taken in
  Mutex.unlock dumps_mutex;
  n

let clear () =
  Domain.DLS.get ring_key := None;
  Mutex.lock dumps_mutex;
  retained := [];
  taken := 0;
  Mutex.unlock dumps_mutex

let enable ?(capacity = 64) ?(max_dumps = retention_default) () =
  if capacity < 1 then invalid_arg "Recorder.enable: capacity < 1";
  if max_dumps < 0 then invalid_arg "Recorder.enable: max_dumps < 0";
  Atomic.set cap capacity;
  Atomic.set retention max_dumps;
  Atomic.set flag true

let disable () = Atomic.set flag false
