(** A minimal JSON value type with a hand-rolled encoder and parser.

    Just enough JSON for the observability stack: the collector encodes
    telemetry records as JSONL (one value per line), the bench harness
    writes machine-readable results, and the [trace] CLI subcommand reads
    them back. Encoding escapes every control character, quote and
    backslash; parsing accepts the full escape set including [\uXXXX]
    (decoded to UTF-8), so [of_string (to_string v)] round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact single-line encoding by default (safe for JSONL); [~pretty]
    indents with two spaces. Non-finite floats encode as [null] (JSON has
    no representation for them). *)

val to_buffer : Buffer.t -> t -> unit
(** Compact encoding appended to [buf]. *)

exception Parse_error of string

val of_string : string -> t
(** Parse one JSON value; raises {!Parse_error} on malformed input or
    trailing garbage. Numbers without [.], [e] or [E] that fit in an OCaml
    [int] parse as [Int], everything else as [Float]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member key (Obj ...)] is the first binding of [key], if any; [None]
    on non-objects. *)

val to_float_opt : t -> float option
(** [Float], [Int] (widened); [None] otherwise. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
