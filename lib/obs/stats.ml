(* Mergeable per-owner statistics: Welford mean/variance and exact
   fixed-bucket histograms. No locks — one owner at a time. *)

module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;       (* Sum of squared deviations from the mean. *)
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. Float.of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.n

  let mean t = if t.n = 0 then Float.nan else t.mean

  let variance t = if t.n = 0 then Float.nan else t.m2 /. Float.of_int t.n

  let std t = Float.sqrt (variance t)

  let min_v t = t.min_v

  let max_v t = t.max_v

  let copy t = { t with n = t.n }

  (* Chan et al. pairwise update: exact in the counts, stable in the
     moments. An empty side is an identity. *)
  let merge_into ~into src =
    if src.n <> 0 then
      if into.n = 0 then begin
        into.n <- src.n;
        into.mean <- src.mean;
        into.m2 <- src.m2;
        into.min_v <- src.min_v;
        into.max_v <- src.max_v
      end
      else begin
        let na = Float.of_int into.n and nb = Float.of_int src.n in
        let n = na +. nb in
        let delta = src.mean -. into.mean in
        into.mean <- into.mean +. (delta *. nb /. n);
        into.m2 <- into.m2 +. src.m2 +. (delta *. delta *. na *. nb /. n);
        into.n <- into.n + src.n;
        if src.min_v < into.min_v then into.min_v <- src.min_v;
        if src.max_v > into.max_v then into.max_v <- src.max_v
      end

  let to_json t =
    if t.n = 0 then
      Json.Obj
        [
          ("count", Json.Int 0);
          ("mean", Json.Float 0.0);
          ("std", Json.Float 0.0);
          ("min", Json.Float 0.0);
          ("max", Json.Float 0.0);
        ]
    else
      Json.Obj
        [
          ("count", Json.Int t.n);
          ("mean", Json.Float t.mean);
          ("std", Json.Float (std t));
          ("min", Json.Float t.min_v);
          ("max", Json.Float t.max_v);
        ]
end

module Hist = struct
  type t = {
    bounds : float array;     (* Strictly increasing upper bounds. *)
    slots : int array;        (* length bounds + 1 (overflow). *)
    mutable n : int;
  }

  let validate bounds =
    if Array.length bounds = 0 then
      invalid_arg "Stats.Hist.create: empty bucket array";
    for i = 1 to Array.length bounds - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Stats.Hist.create: buckets must be strictly increasing"
    done

  let create ~buckets =
    validate buckets;
    let bounds = Array.copy buckets in
    { bounds; slots = Array.make (Array.length bounds + 1) 0; n = 0 }

  (* First upper bound >= v, by binary search; length means overflow. *)
  let slot_index t v =
    let nb = Array.length t.bounds in
    let lo = ref 0 and hi = ref nb in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo

  let observe t v =
    let i = slot_index t v in
    t.slots.(i) <- t.slots.(i) + 1;
    t.n <- t.n + 1

  let count t = t.n

  let buckets t = Array.copy t.bounds

  let counts t = Array.copy t.slots

  let copy t = { t with slots = Array.copy t.slots }

  let merge_into ~into src =
    if into.bounds <> src.bounds then
      invalid_arg "Stats.Hist.merge_into: bucket layouts differ";
    Array.iteri (fun i c -> into.slots.(i) <- into.slots.(i) + c) src.slots;
    into.n <- into.n + src.n

  let to_json t =
    Json.Obj
      [
        ( "buckets",
          Json.List
            (Array.to_list (Array.map (fun b -> Json.Float b) t.bounds)) );
        ( "counts",
          Json.List (Array.to_list (Array.map (fun c -> Json.Int c) t.slots))
        );
        ("count", Json.Int t.n);
      ]
end
