type entry = { kind : string; name : string; json : Json.t }

exception Bad_trace of string

let entry_of_line lineno line =
  match Json.of_string line with
  | exception Json.Parse_error msg ->
    raise (Bad_trace (Printf.sprintf "line %d: %s" lineno msg))
  | json -> (
    match
      ( Option.bind (Json.member "type" json) Json.to_string_opt,
        Option.bind (Json.member "name" json) Json.to_string_opt )
    with
    | Some kind, Some name -> { kind; name; json }
    | _ ->
      raise
        (Bad_trace
           (Printf.sprintf "line %d: record lacks \"type\"/\"name\"" lineno)))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             entries := entry_of_line !lineno line :: !entries
         done
       with End_of_file -> ());
      List.rev !entries)

type span_stat = {
  span_name : string;
  span_count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
}

type event_stat = {
  event_name : string;
  event_count : int;
  first_sim_s : float;
  last_sim_s : float;
}

type summary = {
  spans : span_stat list;
  events : event_stat list;
  metrics : entry list;
  dumps : entry list;
  lines : int;
}

let float_field key e =
  match Option.bind (Json.member key e.json) Json.to_float_opt with
  | Some f -> f
  | None -> Float.nan

let group_by_name entries =
  let tbl = Hashtbl.create 16 in
  let names = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.name with
      | Some l -> l := e :: !l
      | None ->
        Hashtbl.add tbl e.name (ref [ e ]);
        names := e.name :: !names)
    entries;
  List.rev_map (fun n -> (n, List.rev !(Hashtbl.find tbl n))) !names

let summarize entries =
  let spans, rest = List.partition (fun e -> e.kind = "span") entries in
  let events, rest = List.partition (fun e -> e.kind = "event") rest in
  let dumps, rest = List.partition (fun e -> e.kind = "dump") rest in
  let span_stats =
    group_by_name spans
    |> List.map (fun (name, es) ->
           let durs = List.map (float_field "dur_s") es in
           let total = List.fold_left ( +. ) 0.0 durs in
           let n = List.length es in
           {
             span_name = name;
             span_count = n;
             total_s = total;
             mean_s = total /. Float.of_int n;
             max_s = List.fold_left Float.max neg_infinity durs;
           })
    |> List.sort (fun a b -> Float.compare b.total_s a.total_s)
  in
  let event_stats =
    group_by_name events
    |> List.map (fun (name, es) ->
           let sims = List.map (float_field "sim_s") es in
           {
             event_name = name;
             event_count = List.length es;
             first_sim_s = List.fold_left Float.min infinity sims;
             last_sim_s = List.fold_left Float.max neg_infinity sims;
           })
    |> List.sort (fun a b -> compare b.event_count a.event_count)
  in
  { spans = span_stats; events = event_stats; metrics = rest; dumps;
    lines = List.length entries }

let dump_field key e =
  Option.bind (Json.member "fields" e.json) (Json.member key)

let render ?(counters = false) s =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%d records\n" s.lines;
  if s.spans <> [] then begin
    pr "\nspans (wall clock)\n";
    pr "  %-32s %8s %12s %12s %12s\n" "name" "count" "total(s)" "mean(ms)"
      "max(ms)";
    List.iter
      (fun st ->
        pr "  %-32s %8d %12.4f %12.4f %12.4f\n" st.span_name st.span_count
          st.total_s (1e3 *. st.mean_s) (1e3 *. st.max_s))
      s.spans
  end;
  if s.events <> [] then begin
    pr "\nevents (simulated time)\n";
    pr "  %-32s %8s %12s %12s\n" "name" "count" "first(s)" "last(s)";
    List.iter
      (fun st ->
        pr "  %-32s %8d %12.2f %12.2f\n" st.event_name st.event_count
          st.first_sim_s st.last_sim_s)
      s.events
  end;
  if s.metrics <> [] then begin
    pr "\nmetrics\n";
    List.iter
      (fun e ->
        match e.kind with
        | "counter" ->
          pr "  counter    %-28s %d\n" e.name
            (Option.value ~default:0
               (Option.bind (Json.member "value" e.json) Json.to_int_opt))
        | "gauge" -> pr "  gauge      %-28s %g\n" e.name (float_field "value" e)
        | "histogram" ->
          pr
            "  histogram  %-28s count %d  mean %.3g  p50 %.3g  p90 %.3g  \
             p99 %.3g  max %.3g\n"
            e.name
            (Option.value ~default:0
               (Option.bind (Json.member "count" e.json) Json.to_int_opt))
            (float_field "mean" e) (float_field "p50" e) (float_field "p90" e)
            (float_field "p99" e) (float_field "max" e)
        | k -> pr "  %-10s %-28s\n" k e.name)
      s.metrics
  end;
  if s.dumps <> [] then begin
    pr "\nrecorder dumps: %d\n" (List.length s.dumps);
    if counters then
      List.iter
        (fun e ->
          pr "  %10.2fs  %-24s %d events\n" (float_field "sim_s" e)
            (Option.value ~default:"?"
               (Option.bind (dump_field "reason" e) Json.to_string_opt))
            (Option.value ~default:0
               (Option.bind (dump_field "events" e) Json.to_int_opt)))
        s.dumps
  end;
  if counters then begin
    let cs = List.filter (fun e -> e.kind = "counter") s.metrics in
    if cs <> [] then begin
      pr "\nfinal counters\n";
      List.iter
        (fun e ->
          pr "  %-32s %d\n" e.name
            (Option.value ~default:0
               (Option.bind (Json.member "value" e.json) Json.to_int_opt)))
        cs
    end
  end;
  Buffer.contents buf
