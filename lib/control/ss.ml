open Linalg

type domain = Continuous | Discrete of float

type t = {
  a : Mat.t;
  b : Mat.t;
  c : Mat.t;
  d : Mat.t;
  domain : domain;
}

let make ?(domain = Continuous) ~a ~b ~c ~d () =
  let n = a.Mat.rows in
  if a.Mat.cols <> n then invalid_arg "Ss.make: A must be square";
  if b.Mat.rows <> n then invalid_arg "Ss.make: B row count must match A";
  if c.Mat.cols <> n then invalid_arg "Ss.make: C column count must match A";
  if d.Mat.rows <> c.Mat.rows || d.Mat.cols <> b.Mat.cols then
    invalid_arg "Ss.make: D must be outputs x inputs";
  (match domain with
  | Discrete p when p <= 0.0 -> invalid_arg "Ss.make: period must be positive"
  | Discrete _ | Continuous -> ());
  { a; b; c; d; domain }

let order sys = sys.a.Mat.rows

let inputs sys = sys.b.Mat.cols

let outputs sys = sys.c.Mat.rows

let static_gain ?(domain = Continuous) d =
  {
    a = Mat.create 0 0;
    b = Mat.create 0 d.Mat.cols;
    c = Mat.create d.Mat.rows 0;
    d;
    domain;
  }

let gain ?domain n g = static_gain ?domain (Mat.scalar n g)

let integrator ?(period = 1.0) n =
  {
    a = Mat.identity n;
    b = Mat.identity n;
    c = Mat.identity n;
    d = Mat.create n n;
    domain = Discrete period;
  }

let is_stable sys =
  order sys = 0
  ||
  match sys.domain with
  | Continuous -> Eig.is_stable_continuous sys.a
  | Discrete _ -> Eig.is_stable_discrete sys.a

let poles sys = Eig.eigenvalues sys.a

let dcgain sys =
  if order sys = 0 then sys.d
  else
    match sys.domain with
    | Continuous -> Mat.sub sys.d (Mat.mul sys.c (Lu.solve sys.a sys.b))
    | Discrete _ ->
      let ima = Mat.sub (Mat.identity (order sys)) sys.a in
      Mat.add sys.d (Mat.mul sys.c (Lu.solve ima sys.b))

let step sys ~x ~u =
  (match sys.domain with
  | Discrete _ -> ()
  | Continuous -> invalid_arg "Ss.step: continuous system");
  let x_next = Vec.add (Mat.mul_vec sys.a x) (Mat.mul_vec sys.b u) in
  let y = Vec.add (Mat.mul_vec sys.c x) (Mat.mul_vec sys.d u) in
  (x_next, y)

(* Allocation-free [step]: the products land in caller scratch ([sx] of
   dimension [order], [sy] of dimension [outputs]) and are then added
   elementwise — the same two-sum-then-add float ops as [step], so results
   are bit-identical. [x_next] must not alias [x] ([y] is computed from the
   old state after [x_next] is written). *)
let step_into sys ~x ~u ~x_next ~y ~sx ~sy =
  (match sys.domain with
  | Discrete _ -> ()
  | Continuous -> invalid_arg "Ss.step_into: continuous system");
  Mat.mul_vec_into ~dst:x_next sys.a x;
  Mat.mul_vec_into ~dst:sx sys.b u;
  Vec.add_into ~dst:x_next x_next sx;
  Mat.mul_vec_into ~dst:y sys.c x;
  Mat.mul_vec_into ~dst:sy sys.d u;
  Vec.add_into ~dst:y y sy

let simulate sys ?x0 us =
  let x = ref (match x0 with Some v -> v | None -> Vec.create (order sys)) in
  Array.map
    (fun u ->
      let x_next, y = step sys ~x:!x ~u in
      x := x_next;
      y)
    us

let same_domain name s1 s2 =
  match (s1.domain, s2.domain) with
  | Continuous, Continuous -> Continuous
  | Discrete p, Discrete q when Float.abs (p -. q) < 1e-12 -> Discrete p
  | _ ->
    (* Static systems are domain-agnostic. *)
    if order s1 = 0 then s2.domain
    else if order s2 = 0 then s1.domain
    else invalid_arg (name ^ ": mixed time domains")

(* [series g1 g2] = g2 o g1. State [x1; x2]. *)
let series g1 g2 =
  if outputs g1 <> inputs g2 then invalid_arg "Ss.series: dimension mismatch";
  let domain = same_domain "Ss.series" g1 g2 in
  let n1 = order g1 and n2 = order g2 in
  let a =
    Mat.blocks
      [
        [ g1.a; Mat.create n1 n2 ];
        [ Mat.mul g2.b g1.c; g2.a ];
      ]
  in
  let b = Mat.vcat g1.b (Mat.mul g2.b g1.d) in
  let c = Mat.hcat (Mat.mul g2.d g1.c) g2.c in
  let d = Mat.mul g2.d g1.d in
  { a; b; c; d; domain }

let parallel g1 g2 =
  if inputs g1 <> inputs g2 || outputs g1 <> outputs g2 then
    invalid_arg "Ss.parallel: dimension mismatch";
  let domain = same_domain "Ss.parallel" g1 g2 in
  let n1 = order g1 and n2 = order g2 in
  let a =
    Mat.blocks [ [ g1.a; Mat.create n1 n2 ]; [ Mat.create n2 n1; g2.a ] ]
  in
  let b = Mat.vcat g1.b g2.b in
  let c = Mat.hcat g1.c g2.c in
  let d = Mat.add g1.d g2.d in
  { a; b; c; d; domain }

let append g1 g2 =
  let domain = same_domain "Ss.append" g1 g2 in
  let n1 = order g1 and n2 = order g2 in
  let a =
    Mat.blocks [ [ g1.a; Mat.create n1 n2 ]; [ Mat.create n2 n1; g2.a ] ]
  in
  let b =
    Mat.blocks
      [
        [ g1.b; Mat.create n1 (inputs g2) ];
        [ Mat.create n2 (inputs g1); g2.b ];
      ]
  in
  let c =
    Mat.blocks
      [
        [ g1.c; Mat.create (outputs g1) n2 ];
        [ Mat.create (outputs g2) n1; g2.c ];
      ]
  in
  let d =
    Mat.blocks
      [
        [ g1.d; Mat.create (outputs g1) (inputs g2) ];
        [ Mat.create (outputs g2) (inputs g1); g2.d ];
      ]
  in
  { a; b; c; d; domain }

let add_output_disturbance sys =
  let p = outputs sys in
  {
    sys with
    b = Mat.hcat sys.b (Mat.create (order sys) p);
    d = Mat.hcat sys.d (Mat.identity p);
  }

(* Closed loop of plant G and controller K with u = sign*K*y + r:
   well-posedness requires I - sign*Dg*Dk invertible. *)
let feedback ?(sign = -1.0) g k =
  if outputs g <> inputs k || outputs k <> inputs g then
    invalid_arg "Ss.feedback: dimension mismatch";
  let domain = same_domain "Ss.feedback" g k in
  let m = inputs g in
  let e = Mat.sub (Mat.identity m) (Mat.scale sign (Mat.mul k.d g.d)) in
  let einv = Lu.inv e in
  (* u = einv (sign*Dk*Cg x_g + sign*Ck x_k + r) *)
  let u_xg = Mat.mul einv (Mat.scale sign (Mat.mul k.d g.c)) in
  let u_xk = Mat.mul einv (Mat.scale sign k.c) in
  let a =
    Mat.blocks
      [
        [ Mat.add g.a (Mat.mul g.b u_xg); Mat.mul g.b u_xk ];
        [
          Mat.mul k.b (Mat.add g.c (Mat.mul g.d u_xg));
          Mat.add k.a (Mat.mul3 k.b g.d u_xk);
        ];
      ]
  in
  let b = Mat.vcat (Mat.mul g.b einv) (Mat.mul3 k.b g.d einv) in
  let c = Mat.hcat (Mat.add g.c (Mat.mul g.d u_xg)) (Mat.mul g.d u_xk) in
  let d = Mat.mul g.d einv in
  { a; b; c; d; domain }

(* Lower LFT: partition P's inputs as [w; u] and outputs as [z; y] with
   (u, y) matched to K; close u = K y. *)
let lft_lower p k =
  let nu = inputs k and ny = outputs k in
  let m_w = inputs p - ny and p_z = outputs p - nu in
  if m_w < 0 || p_z < 0 then invalid_arg "Ss.lft_lower: partition mismatch";
  let domain = same_domain "Ss.lft_lower" p k in
  let np = order p in
  let b1 = Mat.sub_matrix p.b 0 0 np m_w
  and b2 = Mat.sub_matrix p.b 0 m_w np ny in
  let c1 = Mat.sub_matrix p.c 0 0 p_z np
  and c2 = Mat.sub_matrix p.c p_z 0 nu np in
  let d11 = Mat.sub_matrix p.d 0 0 p_z m_w
  and d12 = Mat.sub_matrix p.d 0 m_w p_z ny
  and d21 = Mat.sub_matrix p.d p_z 0 nu m_w
  and d22 = Mat.sub_matrix p.d p_z m_w nu ny in
  (* u = K y, y = C2 x + D21 w + D22 u; well-posedness: I - Dk D22 inv. *)
  let e = Mat.sub (Mat.identity ny) (Mat.mul k.d d22) in
  let einv = Lu.inv e in
  (* y = (I - D22 Dk)^-1 (C2 x_p + D22 Ck x_k + D21 w) -- derive via u. *)
  (* u = Ck x_k + Dk y; y = C2 x_p + D21 w + D22 u
     => u = Ck x_k + Dk (C2 x_p + D21 w + D22 u)
     => (I - Dk D22) u = Ck x_k + Dk C2 x_p + Dk D21 w *)
  let u_xp = Mat.mul einv (Mat.mul k.d c2) in
  let u_xk = Mat.mul einv k.c in
  let u_w = Mat.mul einv (Mat.mul k.d d21) in
  let y_xp = Mat.add c2 (Mat.mul d22 u_xp) in
  let y_xk = Mat.mul d22 u_xk in
  let y_w = Mat.add d21 (Mat.mul d22 u_w) in
  let a =
    Mat.blocks
      [
        [ Mat.add p.a (Mat.mul b2 u_xp); Mat.mul b2 u_xk ];
        [ Mat.mul k.b y_xp; Mat.add k.a (Mat.mul k.b y_xk) ];
      ]
  in
  let b = Mat.vcat (Mat.add b1 (Mat.mul b2 u_w)) (Mat.mul k.b y_w) in
  let c = Mat.hcat (Mat.add c1 (Mat.mul d12 u_xp)) (Mat.mul d12 u_xk) in
  let d = Mat.add d11 (Mat.mul d12 u_w) in
  { a; b; c; d; domain }

let transform t sys =
  let tinv = Lu.inv t in
  {
    sys with
    a = Mat.mul3 tinv sys.a t;
    b = Mat.mul tinv sys.b;
    c = Mat.mul sys.c t;
  }

let freq_response sys w =
  let n = order sys in
  if n = 0 then Cmat.of_real sys.d
  else begin
    let z =
      match sys.domain with
      | Continuous -> { Complex.re = 0.0; im = w }
      | Discrete p -> Complex.exp { Complex.re = 0.0; im = w *. p }
    in
    let x = Cmat.resolvent z (Cmat.of_real sys.a) (Cmat.of_real sys.b) in
    Cmat.add (Cmat.mul (Cmat.of_real sys.c) x) (Cmat.of_real sys.d)
  end

let log_grid lo hi points =
  let llo = log lo and lhi = log hi in
  Array.init points (fun i ->
      exp (llo +. ((lhi -. llo) *. Float.of_int i /. Float.of_int (points - 1))))

let hinf_norm ?(points = 200) sys =
  if not (is_stable sys) then infinity
  else if order sys = 0 then Svd.norm2 sys.d
  else begin
    let wmax =
      match sys.domain with
      | Continuous -> 1e4 *. Float.max 1.0 (Mat.norm_inf sys.a)
      | Discrete p -> Float.pi /. p
    in
    let wmin = wmax /. 1e8 in
    (* Hoist the real->complex conversions of A, B, C, D (and the
       identity) out of the ~240 grid evaluations; the per-frequency
       arithmetic is unchanged from [freq_response]. *)
    let ca = Cmat.of_real sys.a
    and cb = Cmat.of_real sys.b
    and cc = Cmat.of_real sys.c
    and cd = Cmat.of_real sys.d in
    let eval w =
      let z =
        match sys.domain with
        | Continuous -> { Complex.re = 0.0; im = w }
        | Discrete p -> Complex.exp { Complex.re = 0.0; im = w *. p }
      in
      let x = Cmat.resolvent z ca cb in
      Svd.norm2_complex (Cmat.add (Cmat.mul cc x) cd)
    in
    let grid = log_grid wmin wmax points in
    let best_w = ref grid.(0) and best = ref 0.0 in
    Array.iter
      (fun w ->
        let v = eval w in
        if v > !best then begin
          best := v;
          best_w := w
        end)
      grid;
    (* Include w = 0 (dc) and refine locally around the coarse peak. *)
    let dc = Svd.norm2 (dcgain sys) in
    if dc > !best then best := dc;
    let refine lo hi =
      let sub = log_grid (Float.max wmin lo) (Float.min wmax hi) 40 in
      Array.iter (fun w -> best := Float.max !best (eval w)) sub
    in
    refine (!best_w /. 3.0) (!best_w *. 3.0);
    !best
  end

(* Controllability gramian by the doubling iteration
   P_{k+1} = P_k + A_k P_k A_k^T, A_{k+1} = A_k^2; converges for Schur A. *)
let discrete_gramian a b =
  let n = a.Mat.rows in
  (* Preallocated doubling, same float ops as the allocating form:
     update = (A_k P) A_k^T (left association), P += update, A_k <- A_k^2. *)
  let p = Mat.mul b (Mat.transpose b) in
  let ak = ref (Mat.copy a) in
  let ak_next = ref (Mat.create n n) in
  let akt = Mat.create n n in
  let tmp = Mat.create n n in
  let update = Mat.create n n in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < 60 do
    incr iter;
    Mat.transpose_into ~dst:akt !ak;
    Mat.mul_into ~dst:tmp !ak p;
    Mat.mul_into ~dst:update tmp akt;
    Mat.add_into ~dst:p p update;
    Mat.mul_into ~dst:!ak_next !ak !ak;
    let t = !ak in
    ak := !ak_next;
    ak_next := t;
    if Mat.norm_fro update <= 1e-14 *. Float.max 1.0 (Mat.norm_fro p) then
      continue_ := false
  done;
  Mat.symmetrize p

let h2_norm sys =
  match sys.domain with
  | Continuous ->
    invalid_arg "Ss.h2_norm: implemented for discrete systems only"
  | Discrete _ ->
    if not (is_stable sys) then infinity
    else if order sys = 0 then Mat.norm_fro sys.d
    else begin
      let p = discrete_gramian sys.a sys.b in
      let y = Mat.mul3 sys.c p (Mat.transpose sys.c) in
      Float.sqrt
        (Float.max 0.0
           (Mat.trace y +. (Mat.norm_fro sys.d ** 2.0)))
    end

let pp fmt sys =
  let dom =
    match sys.domain with
    | Continuous -> "continuous"
    | Discrete p -> Printf.sprintf "discrete(T=%g)" p
  in
  Format.fprintf fmt
    "@[<v>%s system: %d states, %d inputs, %d outputs@,A =@,%a@,B =@,%a@,C =@,%a@,D =@,%a@]"
    dom (order sys) (inputs sys) (outputs sys) Mat.pp sys.a Mat.pp sys.b
    Mat.pp sys.c Mat.pp sys.d
