open Linalg

exception No_solution of string

(* SDA-I doubling (Chu, Fan, Lin):
     A_{k+1} = A_k (I + G_k H_k)^-1 A_k
     G_{k+1} = G_k + A_k (I + G_k H_k)^-1 G_k A_k^T
     H_{k+1} = H_k + A_k^T H_k (I + G_k H_k)^-1 A_k
   with A_0 = A, G_0 = B R^-1 B^T, H_0 = Q; H_k converges to X. *)
let solve ~a ~b ~q ~r =
  let n = a.Mat.rows in
  if not (Mat.is_square a) then invalid_arg "Dare.solve: A not square";
  if b.Mat.rows <> n then invalid_arg "Dare.solve: B rows mismatch";
  let g0 =
    try Mat.mul3 b (Lu.inv r) (Mat.transpose b)
    with Lu.Singular -> raise (No_solution "R is singular")
  in
  (* Double-buffered iterates (A_k, G_k, H_k) with shared n x n scratch.
     Each product below reproduces the float ops of the allocating
     expression — [mul3] on square operands associates left, so
     A (W^-1 G) A^T becomes (A * t) * A^T. *)
  let ak = ref (Mat.copy a) in
  let gk = ref g0 in
  let hk = ref (Mat.symmetrize q) in
  let a_next = ref (Mat.create n n) in
  let g_next = ref (Mat.create n n) in
  let h_next = ref (Mat.create n n) in
  let i = Mat.identity n in
  let w = Mat.create n n in
  let wa = Mat.create n n in
  let akt = Mat.create n n in
  let t1 = Mat.create n n in
  let t2 = Mat.create n n in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < 100 do
    incr iter;
    Mat.mul_into ~dst:t1 !gk !hk;
    Mat.add_into ~dst:w i t1;
    let winv =
      try Lu.inv w
      with Lu.Singular -> raise (No_solution "doubling iterate singular")
    in
    Mat.mul_into ~dst:wa winv !ak;
    Mat.mul_into ~dst:!a_next !ak wa;
    Mat.transpose_into ~dst:akt !ak;
    Mat.mul_into ~dst:t1 winv !gk;
    Mat.mul_into ~dst:t2 !ak t1;
    Mat.mul_into ~dst:t1 t2 akt;
    Mat.add_into ~dst:t2 !gk t1;
    Mat.symmetrize_into ~dst:!g_next t2;
    Mat.mul_into ~dst:t1 !hk wa;
    Mat.mul_into ~dst:t2 akt t1;
    Mat.add_into ~dst:t1 !hk t2;
    Mat.symmetrize_into ~dst:!h_next t1;
    Mat.sub_into ~dst:t2 !h_next !hk;
    let hnorm = Mat.norm_fro !h_next in
    let delta = Mat.norm_fro t2 /. Float.max 1.0 hnorm in
    let swap r1 r2 =
      let t = !r1 in
      r1 := !r2;
      r2 := t
    in
    swap ak a_next;
    swap gk g_next;
    swap hk h_next;
    if delta < 1e-14 then converged := true;
    if not (Float.is_finite hnorm) then
      raise (No_solution "doubling iteration diverged")
  done;
  if not !converged then raise (No_solution "doubling did not converge");
  !hk

let gain ~a ~b ~r x =
  let btx = Mat.mul (Mat.transpose b) x in
  let s = Mat.add r (Mat.mul btx b) in
  Lu.solve s (Mat.mul btx a)

let residual ~a ~b ~q ~r x =
  let k = gain ~a ~b ~r x in
  let atxa = Mat.mul3 (Mat.transpose a) x a in
  let correction =
    Mat.mul (Mat.transpose (Mat.mul (Mat.mul (Mat.transpose b) x) a)) k
  in
  let res = Mat.sub (Mat.add (Mat.sub atxa correction) q) x in
  Mat.norm_fro res /. Float.max 1.0 (Mat.norm_fro x)
