open Linalg

type result = {
  controller : Ss.t;
  mu_peak : float;
  gamma : float;
  history : float list;
}

exception Synthesis_failed of string

(* Expand per-block scales into diagonal matrices over the z rows and the
   w columns of the plant. *)
let expand_scales structure scales =
  let dz = ref [] and dw = ref [] in
  List.iteri
    (fun i b ->
      let p, q =
        match b with Ssv.Full (p, q) -> (p, q) | Ssv.Repeated n -> (n, n)
      in
      dz := !dz @ List.init p (fun _ -> scales.(i));
      dw := !dw @ List.init q (fun _ -> scales.(i)))
    structure;
  (Vec.of_list !dz, Vec.of_list !dw)

let scale_plant (plant : Hinf.plant) structure scales =
  let { Hinf.nw; nu; nz; ny } = plant.Hinf.part in
  if Ssv.block_rows structure <> nz || Ssv.block_cols structure <> nw then
    invalid_arg "Dk.scale_plant: structure does not tile the z/w channels";
  let dz, dw = expand_scales structure scales in
  let left =
    Mat.diag (Vec.concat dz (Vec.ones ny))
  in
  let right =
    Mat.diag (Vec.concat (Vec.map (fun x -> 1.0 /. x) dw) (Vec.ones nu))
  in
  let sys = plant.Hinf.sys in
  {
    plant with
    Hinf.sys =
      Ss.make ~domain:sys.Ss.domain ~a:sys.Ss.a ~b:(Mat.mul sys.Ss.b right)
        ~c:(Mat.mul left sys.Ss.c)
        ~d:(Mat.mul3 left sys.Ss.d right)
        ();
  }

let iterations_metric = Obs.Metrics.counter "dk.iterations"

let synthesize ?(iterations = 4) ?(mu_points = 40) ~plant ~structure () =
  Hinf.validate_partition plant;
  let t0 = if Obs.Collector.enabled () then Obs.Collector.now () else 0.0 in
  let nb = List.length structure in
  let scales = ref (Array.make nb 1.0) in
  let best = ref None in
  let history = ref [] in
  let stop = ref false in
  let iter = ref 0 in
  while (not !stop) && !iter < iterations do
    incr iter;
    let scaled = scale_plant plant structure !scales in
    let t_k = if Obs.Collector.enabled () then Obs.Collector.now () else 0.0 in
    match Hinf.synthesize scaled with
    | exception Hinf.Synthesis_failed msg ->
      if !best = None then
        raise (Synthesis_failed ("first K-step infeasible: " ^ msg));
      stop := true
    | { Hinf.controller; gamma; _ } ->
      if Obs.Collector.enabled () then
        Obs.Collector.record_span ~name:"dk.k_step"
          ~dur_s:(Obs.Collector.now () -. t_k)
          [ ("iter", Obs.Json.Int !iter); ("gamma", Obs.Json.Float gamma) ];
      (* mu analysis of the true (unscaled) closed loop. *)
      let cl = Hinf.close_loop plant controller in
      if not (Ss.is_stable cl) then begin
        if !best = None then
          raise (Synthesis_failed "K-step produced an unstable closed loop");
        stop := true
      end
      else begin
        (* The D-step: fit new scales from the frequency sweep's peak. *)
        let t_d =
          if Obs.Collector.enabled () then Obs.Collector.now () else 0.0
        in
        let sweep = Ssv.sweep ~points:mu_points structure cl in
        history := sweep.Ssv.peak :: !history;
        (match !best with
        | Some (_, best_mu, _) when best_mu <= sweep.Ssv.peak -> ()
        | _ -> best := Some (controller, sweep.Ssv.peak, gamma));
        scales := sweep.Ssv.peak_scales;
        if Obs.Collector.enabled () then begin
          Obs.Metrics.incr iterations_metric;
          Obs.Collector.record_span ~name:"dk.d_step"
            ~dur_s:(Obs.Collector.now () -. t_d)
            [
              ("iter", Obs.Json.Int !iter);
              ("mu_peak", Obs.Json.Float sweep.Ssv.peak);
              ("gamma", Obs.Json.Float gamma);
              ( "scales",
                Obs.Json.List
                  (Array.to_list
                     (Array.map (fun s -> Obs.Json.Float s) !scales)) );
            ]
        end
      end
  done;
  match !best with
  | None -> raise (Synthesis_failed "no iteration produced a controller")
  | Some (controller, mu_peak, gamma) ->
    if Obs.Collector.enabled () then
      Obs.Collector.record_span ~name:"dk.synthesize"
        ~dur_s:(Obs.Collector.now () -. t0)
        [
          ("iterations", Obs.Json.Int !iter);
          ("mu_peak", Obs.Json.Float mu_peak);
          ("gamma", Obs.Json.Float gamma);
          ( "mu_history",
            Obs.Json.List
              (List.map (fun m -> Obs.Json.Float m) (List.rev !history)) );
        ];
    { controller; mu_peak; gamma; history = List.rev !history }
