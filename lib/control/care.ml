open Linalg

exception No_solution of string

(* Matrix sign function by the scaled Newton iteration
   Z <- (c Z + (c Z)^-1) / 2 with Byers' determinant scaling
   c = |det Z|^(-1/m). Converges globally quadratically when Z has no
   imaginary-axis eigenvalues. *)
let sign_function z0 =
  let m = z0.Mat.rows in
  (* Double-buffered Newton iterate: znext and the convergence residual
     are computed into preallocated scratch with exactly the float ops of
     the allocating expression
     [scale 0.5 (add (scale c z) (scale (1/c) zinv))]. *)
  let z = ref (Mat.copy z0) in
  let znext = ref (Mat.create m m) in
  let t1 = Mat.create m m in
  let t2 = Mat.create m m in
  let diff = Mat.create m m in
  let err = ref infinity in
  let iter = ref 0 in
  while !err > 1e-12 && !iter < 100 do
    incr iter;
    let zinv =
      try Lu.inv !z
      with Lu.Singular ->
        raise (No_solution "sign iteration hit a singular iterate")
    in
    let d = Lu.det !z in
    if d = 0.0 || not (Float.is_finite d) then
      raise (No_solution "sign iteration: degenerate determinant");
    let c = Float.abs d ** (-1.0 /. Float.of_int m) in
    let c = if Float.is_finite c && c > 0.0 then c else 1.0 in
    Mat.scale_into ~dst:t1 c !z;
    Mat.scale_into ~dst:t2 (1.0 /. c) zinv;
    Mat.add_into ~dst:t1 t1 t2;
    Mat.scale_into ~dst:!znext 0.5 t1;
    Mat.sub_into ~dst:diff !znext !z;
    err := Mat.norm_fro diff /. Float.max 1.0 (Mat.norm_fro !znext);
    let t = !z in
    z := !znext;
    znext := t
  done;
  if !err > 1e-6 then
    raise (No_solution "sign iteration did not converge (eigenvalues near the imaginary axis?)");
  !z

(* From S = sign(H), the stabilizing solution satisfies
   [S12; S22 + I] X = -[S11 + I; S21] (overdetermined, consistent). *)
let solve_hamiltonian h =
  let two_n = h.Mat.rows in
  if two_n mod 2 <> 0 || not (Mat.is_square h) then
    invalid_arg "Care.solve_hamiltonian: needs square 2n x 2n input";
  let n = two_n / 2 in
  let s = sign_function h in
  let s11 = Mat.sub_matrix s 0 0 n n in
  let s12 = Mat.sub_matrix s 0 n n n in
  let s21 = Mat.sub_matrix s n 0 n n in
  let s22 = Mat.sub_matrix s n n n n in
  let i = Mat.identity n in
  let lhs = Mat.vcat s12 (Mat.add s22 i) in
  let rhs = Mat.neg (Mat.vcat (Mat.add s11 i) s21) in
  let x =
    try Qr.solve_least_squares_mat lhs rhs
    with Lu.Singular ->
      raise (No_solution "rank-deficient sign-function extraction")
  in
  (* Consistency check: the overdetermined system must actually be solved. *)
  let resid = Mat.norm_fro (Mat.sub (Mat.mul lhs x) rhs) in
  if resid > 1e-6 *. Float.max 1.0 (Mat.norm_fro rhs) then
    raise (No_solution "no stabilizing solution (inconsistent extraction)");
  Mat.symmetrize x

let solve ~a ~b ~q ~r =
  let g = Mat.mul3 b (Lu.inv r) (Mat.transpose b) in
  let h =
    Mat.blocks [ [ a; Mat.neg g ]; [ Mat.neg q; Mat.neg (Mat.transpose a) ] ]
  in
  solve_hamiltonian h

let residual ~a ~b ~q ~r x =
  let g = Mat.mul3 b (Lu.inv r) (Mat.transpose b) in
  let res =
    Mat.add
      (Mat.sub
         (Mat.add (Mat.mul (Mat.transpose a) x) (Mat.mul x a))
         (Mat.mul3 x g x))
      q
  in
  Mat.norm_fro res /. Float.max 1.0 (Mat.norm_fro x)
