open Linalg

type block = Full of int * int | Repeated of int

type structure = block list

let rows_of = function Full (p, _) -> p | Repeated n -> n

let cols_of = function Full (_, q) -> q | Repeated n -> n

let block_rows s = List.fold_left (fun acc b -> acc + rows_of b) 0 s

let block_cols s = List.fold_left (fun acc b -> acc + cols_of b) 0 s

let validate s m =
  if s = [] then invalid_arg "Ssv: empty structure";
  List.iter
    (fun b ->
      if rows_of b <= 0 || cols_of b <= 0 then
        invalid_arg "Ssv: non-positive block size")
    s;
  let r, c = Cmat.dims m in
  if block_rows s <> r || block_cols s <> c then
    invalid_arg "Ssv: structure does not tile the matrix"

type bound = { value : float; scales : float array }

(* Row/column offsets of each block within M. *)
let offsets s =
  let n = List.length s in
  let roff = Array.make n 0 and coff = Array.make n 0 in
  let _ =
    List.fold_left
      (fun (i, r, c) b ->
        roff.(i) <- r;
        coff.(i) <- c;
        (i + 1, r + rows_of b, c + cols_of b))
      (0, 0, 0) s
  in
  (roff, coff)

(* sigma_max(D_l M D_r^-1) for per-block scalar scales d. [dst] lets the
   coordinate-descent loop reuse one scratch matrix across its ~50 evals;
   every entry is overwritten (the structure tiles M), so no clearing is
   needed. *)
let scaled_norm ?dst s (roff, coff) m d =
  let blocks = Array.of_list s in
  let r, c = Cmat.dims m in
  let scaled =
    match dst with
    | Some x when Cmat.dims x = (r, c) -> x
    | Some _ -> invalid_arg "Ssv.scaled_norm: dst dimension mismatch"
    | None -> Cmat.create r c
  in
  Array.iteri
    (fun i bi ->
      Array.iteri
        (fun j bj ->
          let f = d.(i) /. d.(j) in
          for p = 0 to rows_of bi - 1 do
            for q = 0 to cols_of bj - 1 do
              Cmat.set scaled (roff.(i) + p) (coff.(j) + q)
                (Complex.mul
                   { Complex.re = f; im = 0.0 }
                   (Cmat.get m (roff.(i) + p) (coff.(j) + q)))
            done
          done)
        blocks)
    blocks;
  Svd.norm2_complex scaled

let mu_upper s m =
  validate s m;
  let off = offsets s in
  let nb = List.length s in
  let d = Array.make nb 1.0 in
  if nb = 1 then { value = Svd.norm2_complex m; scales = d }
  else begin
    let blocks = Array.of_list s in
    let roff, coff = off in
    (* Osborne-style balancing on block Frobenius norms. *)
    for _sweep = 1 to 25 do
      for i = 0 to nb - 1 do
        let row = ref 0.0 and col = ref 0.0 in
        for j = 0 to nb - 1 do
          if j <> i then begin
            (* Block (i, j) of the scaled matrix: factor d_i / d_j. *)
            for p = 0 to rows_of blocks.(i) - 1 do
              for q = 0 to cols_of blocks.(j) - 1 do
                let z = Cmat.get m (roff.(i) + p) (coff.(j) + q) in
                let f = d.(i) /. d.(j) in
                row := !row +. (f *. f *. Complex.norm2 z)
              done
            done;
            for p = 0 to rows_of blocks.(j) - 1 do
              for q = 0 to cols_of blocks.(i) - 1 do
                let z = Cmat.get m (roff.(j) + p) (coff.(i) + q) in
                let f = d.(j) /. d.(i) in
                col := !col +. (f *. f *. Complex.norm2 z)
              done
            done
          end
        done;
        if !row > 1e-300 && !col > 1e-300 then
          d.(i) <- d.(i) *. ((!col /. !row) ** 0.25)
      done
    done;
    (* Coordinate-descent refinement of sigma_max over log d_i. *)
    let scratch = Cmat.create (fst (Cmat.dims m)) (snd (Cmat.dims m)) in
    let eval d = scaled_norm ~dst:scratch s off m d in
    let refine_coordinate i =
      let best = ref (eval d) in
      let base = d.(i) in
      let try_factor f =
        d.(i) <- base *. f;
        let v = eval d in
        if v < !best -. 1e-12 then best := v else d.(i) <- base
      in
      let factors = [ 0.5; 0.7; 0.85; 0.95; 1.05; 1.2; 1.4; 2.0 ] in
      List.iter
        (fun f ->
          let current = d.(i) in
          try_factor (f *. current /. base);
          if d.(i) = base then d.(i) <- current)
        factors
    in
    for _pass = 1 to 3 do
      for i = 0 to nb - 1 do
        refine_coordinate i
      done
    done;
    (* Normalize so the last scale is 1 (scales are projective). *)
    let dn = d.(nb - 1) in
    let d = Array.map (fun x -> x /. dn) d in
    { value = scaled_norm ~dst:scratch s off m d; scales = d }
  end

(* Build the aligning Delta for the current iterate: given z = M w, each
   block maps z_i back to a vector aligned with w_i with unit gain. Any
   such Delta has sigma_max <= 1, so rho(M Delta) is a certified lower
   bound. *)
let align_delta s (roff, coff) w z =
  let blocks = Array.of_list s in
  let total_r = Array.fold_left (fun a b -> a + rows_of b) 0 blocks in
  let total_c = Array.fold_left (fun a b -> a + cols_of b) 0 blocks in
  let delta = Cmat.create total_c total_r in
  Array.iteri
    (fun i b ->
      match b with
      | Full (p, q) ->
        (* Delta_i = w_i z_i^H / (|w_i| |z_i|): rank one, unit norm. *)
        let wi = Array.sub w coff.(i) q in
        let zi = Array.sub z roff.(i) p in
        let nw =
          Float.sqrt (Array.fold_left (fun a x -> a +. Complex.norm2 x) 0.0 wi)
        in
        let nz =
          Float.sqrt (Array.fold_left (fun a x -> a +. Complex.norm2 x) 0.0 zi)
        in
        if nw > 1e-300 && nz > 1e-300 then
          for r = 0 to q - 1 do
            for c = 0 to p - 1 do
              Cmat.set delta (coff.(i) + r) (roff.(i) + c)
                (Complex.div
                   (Complex.mul wi.(r) (Complex.conj zi.(c)))
                   { Complex.re = nw *. nz; im = 0.0 })
            done
          done
      | Repeated n ->
        (* delta = phase of z_i^H w_i, repeated on the diagonal. *)
        let wi = Array.sub w coff.(i) n in
        let zi = Array.sub z roff.(i) n in
        let inner =
          Array.fold_left
            (fun acc k ->
              Complex.add acc (Complex.mul wi.(k) (Complex.conj zi.(k))))
            Complex.zero
            (Array.init n (fun k -> k))
        in
        let mag = Complex.norm inner in
        let phase =
          if mag > 1e-300 then
            Complex.div inner { Complex.re = mag; im = 0.0 }
          else Complex.one
        in
        for k = 0 to n - 1 do
          Cmat.set delta (coff.(i) + k) (roff.(i) + k) phase
        done)
    blocks;
  delta

let mu_lower_search s m restarts =
  let off = offsets s in
  let _, c = Cmat.dims m in
  let best = ref 0.0 in
  let best_delta = ref (Cmat.create c (fst (Cmat.dims m))) in
  let st = Random.State.make [| 7; c |] in
  for trial = 0 to restarts - 1 do
    (* Random complex start vector. *)
    let w =
      ref
        (Array.init c (fun _ ->
             {
               Complex.re = Random.State.float st 2.0 -. 1.0;
               im = Random.State.float st 2.0 -. 1.0;
             }))
    in
    ignore trial;
    for _iter = 1 to 30 do
      let z = Cmat.mul_vec m !w in
      let delta = align_delta s off !w z in
      let w_next = Cmat.mul_vec delta z in
      let n =
        Float.sqrt
          (Array.fold_left (fun a x -> a +. Complex.norm2 x) 0.0 w_next)
      in
      if n > 1e-300 then
        w := Array.map (fun x -> Complex.div x { Complex.re = n; im = 0.0 }) w_next
    done;
    let z = Cmat.mul_vec m !w in
    let delta = align_delta s off !w z in
    let rho = Eig.spectral_radius_complex (Cmat.mul m delta) in
    if rho > !best then begin
      best := rho;
      best_delta := delta
    end
  done;
  (!best_delta, !best)

let mu_lower ?(restarts = 4) s m =
  validate s m;
  snd (mu_lower_search s m restarts)

let worst_case_delta s m =
  validate s m;
  mu_lower_search s m 6

type frequency_sweep = {
  peak : float;
  peak_frequency : float;
  peak_scales : float array;
  lower_peak : float;
  frequencies : float array;
  upper_bounds : float array;
}

let sweep ?(points = 60) s sys =
  let wmax =
    match sys.Ss.domain with
    | Ss.Continuous -> 1e4 *. Float.max 1.0 (Mat.norm_inf sys.Ss.a)
    | Ss.Discrete p -> Float.pi /. p
  in
  let wmin = wmax /. 1e6 in
  let llo = log wmin and lhi = log wmax in
  let frequencies =
    Array.init points (fun i ->
        exp (llo +. ((lhi -. llo) *. Float.of_int i /. Float.of_int (points - 1))))
  in
  let nb = List.length s in
  let peak = ref 0.0
  and peak_frequency = ref frequencies.(0)
  and peak_scales = ref (Array.make nb 1.0)
  and lower_peak = ref 0.0 in
  let upper_bounds =
    Array.map
      (fun w ->
        let m = Ss.freq_response sys w in
        let { value; scales } = mu_upper s m in
        if value > !peak then begin
          peak := value;
          peak_frequency := w;
          peak_scales := scales
        end;
        let lb = mu_lower ~restarts:2 s m in
        if lb > !lower_peak then lower_peak := lb;
        value)
      frequencies
  in
  {
    peak = !peak;
    peak_frequency = !peak_frequency;
    peak_scales = !peak_scales;
    lower_peak = !lower_peak;
    frequencies;
    upper_bounds;
  }
