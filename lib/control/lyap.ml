open Linalg

let stein a q =
  if not (Mat.is_square a) then invalid_arg "Lyap.stein: non-square";
  if a.Mat.rows <> q.Mat.rows || not (Mat.is_square q) then
    invalid_arg "Lyap.stein: Q dimension mismatch";
  let n = a.Mat.rows in
  (* Doubling with preallocated iterates: each pass computes
     update = A_k X A_k^T (left association, as [mul3] picks for square
     operands), X += update, A_k <- A_k^2 — the same float ops as the
     allocating version, on reused buffers. *)
  let x = Mat.copy q in
  let ak = ref (Mat.copy a) in
  let ak_next = ref (Mat.create n n) in
  let akt = Mat.create n n in
  let tmp = Mat.create n n in
  let update = Mat.create n n in
  let iter = ref 0 in
  let done_ = ref false in
  while not !done_ do
    incr iter;
    Mat.transpose_into ~dst:akt !ak;
    Mat.mul_into ~dst:tmp !ak x;
    Mat.mul_into ~dst:update tmp akt;
    Mat.add_into ~dst:x x update;
    Mat.mul_into ~dst:!ak_next !ak !ak;
    let t = !ak in
    ak := !ak_next;
    ak_next := t;
    let xnorm = Mat.norm_fro x in
    if !iter > 100 || not (Float.is_finite xnorm) then
      failwith "Lyap.stein: iteration diverged (A not Schur stable?)"
    else if Mat.norm_fro update <= 1e-14 *. Float.max 1.0 xnorm then
      done_ := true
  done;
  Mat.symmetrize x

(* Cayley reduction: with Ad = (I + hA)(I - hA)^-1 and
   Qd = 2h (I - hA)^-1 Q (I - hA)^-T, the Stein solution of (Ad, Qd)
   solves the continuous equation. h > 0 is a free scaling; pick it from
   the norm of A to keep (I - hA) well conditioned. *)
let continuous a q =
  if not (Mat.is_square a) then invalid_arg "Lyap.continuous: non-square";
  let n = a.Mat.rows in
  let h = 1.0 /. Float.max 1.0 (Mat.norm_inf a) in
  let i = Mat.identity n in
  let m_minus = Mat.sub i (Mat.scale h a) in
  let inv_minus = Lu.inv m_minus in
  let ad = Mat.mul (Mat.add i (Mat.scale h a)) inv_minus in
  let qd =
    Mat.scale (2.0 *. h) (Mat.mul3 inv_minus q (Mat.transpose inv_minus))
  in
  match stein ad qd with
  | x -> x
  | exception Failure _ ->
    failwith "Lyap.continuous: iteration diverged (A not Hurwitz stable?)"

let controllability_gramian sys =
  let bbt = Mat.mul sys.Ss.b (Mat.transpose sys.Ss.b) in
  match sys.Ss.domain with
  | Ss.Discrete _ -> stein sys.Ss.a bbt
  | Ss.Continuous -> continuous sys.Ss.a bbt

let observability_gramian sys =
  let ctc = Mat.mul (Mat.transpose sys.Ss.c) sys.Ss.c in
  match sys.Ss.domain with
  | Ss.Discrete _ -> stein (Mat.transpose sys.Ss.a) ctc
  | Ss.Continuous -> continuous (Mat.transpose sys.Ss.a) ctc
