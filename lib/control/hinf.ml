open Linalg

type partition = { nw : int; nu : int; nz : int; ny : int }

type plant = { sys : Ss.t; part : partition }

type result = { controller : Ss.t; gamma : float; achieved_norm : float }

exception Synthesis_failed of string

let validate_partition { sys; part } =
  if part.nw < 0 || part.nu <= 0 || part.nz < 0 || part.ny <= 0 then
    invalid_arg "Hinf: partition sizes must be positive";
  if Ss.inputs sys <> part.nw + part.nu then
    invalid_arg "Hinf: inputs <> nw + nu";
  if Ss.outputs sys <> part.nz + part.ny then
    invalid_arg "Hinf: outputs <> nz + ny"

type pieces = {
  a : Mat.t;
  b1 : Mat.t;
  b2 : Mat.t;
  c1 : Mat.t;
  c2 : Mat.t;
  d11 : Mat.t;
  d12 : Mat.t;
  d21 : Mat.t;
  d22 : Mat.t;
}

let extract { sys; part } =
  let n = Ss.order sys in
  let { nw; nu; nz; ny } = part in
  {
    a = sys.Ss.a;
    b1 = Mat.sub_matrix sys.Ss.b 0 0 n nw;
    b2 = Mat.sub_matrix sys.Ss.b 0 nw n nu;
    c1 = Mat.sub_matrix sys.Ss.c 0 0 nz n;
    c2 = Mat.sub_matrix sys.Ss.c nz 0 ny n;
    d11 = Mat.sub_matrix sys.Ss.d 0 0 nz nw;
    d12 = Mat.sub_matrix sys.Ss.d 0 nw nz nu;
    d21 = Mat.sub_matrix sys.Ss.d nz 0 ny nw;
    d22 = Mat.sub_matrix sys.Ss.d nz nw ny nu;
  }

let close_loop plant k = Ss.lft_lower plant.sys k

(* Ensure D12 has full column rank and D21 full row rank by augmenting the
   plant with epsilon-weighted control penalties / measurement noise. The
   controller synthesized for the augmented plant is validated against the
   original plant, so the perturbation only needs to make synthesis
   well-posed, not be negligible in theory. *)
let regularized eps plant =
  let p = extract plant in
  let { nw; nu; nz; ny } = plant.part in
  let n = Ss.order plant.sys in
  let need_d12 = Svd.rank p.d12 < nu in
  let need_d21 = Svd.rank p.d21 < ny in
  if (not need_d12) && not need_d21 then plant
  else begin
    let nz' = if need_d12 then nz + nu else nz in
    let nw' = if need_d21 then nw + ny else nw in
    (* New input layout: [w; w_extra; u]; output: [z; z_extra; y]. *)
    let b1' = if need_d21 then Mat.hcat p.b1 (Mat.create n ny) else p.b1 in
    let c1' = if need_d12 then Mat.vcat p.c1 (Mat.create nu n) else p.c1 in
    let d11' =
      let base = p.d11 in
      let base = if need_d21 then Mat.hcat base (Mat.create nz ny) else base in
      if need_d12 then Mat.vcat base (Mat.create nu (Mat.dims base |> snd))
      else base
    in
    let d12' =
      if need_d12 then Mat.vcat p.d12 (Mat.scalar nu eps) else p.d12
    in
    let d21' =
      if need_d21 then Mat.hcat p.d21 (Mat.scale eps (Mat.identity ny))
      else p.d21
    in
    let b = Mat.hcat b1' p.b2 in
    let c = Mat.vcat c1' p.c2 in
    let d =
      Mat.blocks [ [ d11'; d12' ]; [ d21'; p.d22 ] ]
    in
    {
      sys =
        Ss.make ~domain:plant.sys.Ss.domain ~a:p.a ~b ~c ~d ();
      part = { nw = nw'; nu; nz = nz'; ny };
    }
  end

(* DGKF central controller at a fixed gamma for a continuous plant with
   full-rank D12/D21. Returns None when a Riccati condition fails. *)
let central_controller_continuous plant gamma =
  let p = extract plant in
  let n = Ss.order plant.sys in
  let { nu; ny; _ } = plant.part in
  let g2 = gamma *. gamma in
  (* Input/output scalings making D12^T D12 = I and D21 D21^T = I. *)
  let u1, s1, v1 = Svd.decompose p.d12 in
  if s1.(nu - 1) <= 0.0 then None
  else begin
    let s1_inv = Mat.diag (Array.map (fun x -> 1.0 /. x) s1) in
    let su = Mat.mul v1 s1_inv in
    let b2n = Mat.mul p.b2 su in
    let d12n = u1 in
    let u2, s2, v2 = Svd.decompose p.d21 in
    if s2.(ny - 1) <= 0.0 then None
    else begin
      let s2_inv = Mat.diag (Array.map (fun x -> 1.0 /. x) s2) in
      let sy = Mat.mul s2_inv (Mat.transpose u2) in
      let c2n = Mat.mul sy p.c2 in
      let d21n = Mat.transpose v2 in
      let at = Mat.sub p.a (Mat.mul3 b2n (Mat.transpose d12n) p.c1) in
      let proj12 =
        Mat.sub (Mat.identity (Mat.dims p.c1 |> fst))
          (Mat.mul d12n (Mat.transpose d12n))
      in
      let c1t_sq = Mat.mul3 (Mat.transpose p.c1) proj12 p.c1 in
      let hx =
        Mat.blocks
          [
            [
              at;
              Mat.sub
                (Mat.scale (1.0 /. g2) (Mat.mul p.b1 (Mat.transpose p.b1)))
                (Mat.mul b2n (Mat.transpose b2n));
            ];
            [ Mat.neg c1t_sq; Mat.neg (Mat.transpose at) ];
          ]
      in
      let ab = Mat.sub p.a (Mat.mul3 p.b1 (Mat.transpose d21n) c2n) in
      let proj21 =
        Mat.sub (Mat.identity (Mat.dims p.b1 |> snd))
          (Mat.mul (Mat.transpose d21n) d21n)
      in
      let b1t_sq = Mat.mul3 p.b1 proj21 (Mat.transpose p.b1) in
      let hy =
        Mat.blocks
          [
            [
              Mat.transpose ab;
              Mat.sub
                (Mat.scale (1.0 /. g2) (Mat.mul (Mat.transpose p.c1) p.c1))
                (Mat.mul (Mat.transpose c2n) c2n);
            ];
            [ Mat.neg b1t_sq; Mat.neg ab ];
          ]
      in
      match
        (Care.solve_hamiltonian hx, Care.solve_hamiltonian hy)
      with
      | exception Care.No_solution _ -> None
      | exception Lu.Singular -> None
      | x, y ->
        let psd m = Eig.is_positive_semidefinite ~tol:1e-6 m in
        if not (psd x && psd y) then None
        else if Eig.spectral_radius (Mat.mul x y) >= g2 *. 0.999999 then None
        else begin
          let f =
            Mat.neg
              (Mat.add (Mat.mul (Mat.transpose b2n) x)
                 (Mat.mul (Mat.transpose d12n) p.c1))
          in
          let l =
            Mat.neg
              (Mat.add (Mat.mul y (Mat.transpose c2n))
                 (Mat.mul p.b1 (Mat.transpose d21n)))
          in
          match
            Lu.inv (Mat.sub (Mat.identity n) (Mat.scale (1.0 /. g2) (Mat.mul y x)))
          with
          | exception Lu.Singular -> None
          | z ->
            let zl = Mat.mul z l in
            let ahat =
              Mat.add
                (Mat.add
                   (Mat.add p.a
                      (Mat.scale (1.0 /. g2)
                         (Mat.mul3 p.b1 (Mat.transpose p.b1) x)))
                   (Mat.mul b2n f))
                (Mat.mul zl
                   (Mat.add c2n
                      (Mat.scale (1.0 /. g2)
                         (Mat.mul3 d21n (Mat.transpose p.b1) x))))
            in
            (* Map the normalized controller back: u = su * u~, y~ = sy * y,
               then undo the D22 feedthrough. *)
            let bk = Mat.mul (Mat.neg zl) sy in
            let ck = Mat.mul su f in
            (* D22 feedthrough correction: the formulas above assume the
               measurement does not see u directly, so close that loop:
               A_K = ahat - B_K D22 C_K (controller D is zero). *)
            let ak = Mat.sub ahat (Mat.mul3 bk p.d22 ck) in
            Some
              (Ss.make ~domain:Ss.Continuous ~a:ak ~b:bk ~c:ck
                 ~d:(Mat.create nu ny) ())
        end
    end
  end

let validated plant k gamma =
  match close_loop plant k with
  | cl ->
    if Ss.is_stable cl then begin
      let norm = Ss.hinf_norm cl in
      if norm <= gamma *. 1.05 +. 1e-9 then Some norm else None
    end
    else None
  | exception _ -> None

let synthesize_at_full plant gamma =
  validate_partition plant;
  let reg = regularized 1e-6 plant in
  let continuous_plant, back =
    match plant.sys.Ss.domain with
    | Ss.Continuous -> (reg, fun k -> k)
    | Ss.Discrete period ->
      ( { reg with sys = Discretize.d2c_tustin reg.sys },
        fun k -> Discretize.c2d_tustin k period )
  in
  match central_controller_continuous continuous_plant gamma with
  | None -> None
  | Some k_cont ->
    let k = back k_cont in
    (match validated plant k gamma with
    | Some norm -> Some (k, norm)
    | None -> None)
  | exception _ -> None

let synthesize_at plant gamma = Option.map fst (synthesize_at_full plant gamma)

let synthesis_calls_metric = Obs.Metrics.counter "hinf.synthesize_calls"
let gamma_steps_metric = Obs.Metrics.counter "hinf.gamma_steps"

let synthesize ?(gamma_min = 1e-3) ?(gamma_max = 0.0) ?(rel_tol = 1e-3)
    ?regularize:(_ = 1e-6) plant =
  validate_partition plant;
  let t0 = if Obs.Collector.enabled () then Obs.Collector.now () else 0.0 in
  (* Find a feasible upper bound by doubling if none was given. *)
  let upper = ref (if gamma_max > 0.0 then gamma_max else 1.0) in
  let best = ref None in
  let tries = ref 0 in
  while !best = None && !tries < 24 do
    incr tries;
    (match synthesize_at_full plant !upper with
    | Some (k, norm) -> best := Some (k, !upper, norm)
    | None -> if gamma_max > 0.0 then tries := 24 else upper := !upper *. 2.0)
  done;
  match !best with
  | None -> raise (Synthesis_failed "no feasible gamma found")
  | Some (k0, g0, n0) ->
    let lo = ref gamma_min and hi = ref g0 in
    let best_k = ref k0 and best_g = ref g0 and best_n = ref n0 in
    let iterations = ref 0 in
    while (!hi -. !lo) /. !hi > rel_tol && !iterations < 60 do
      incr iterations;
      let mid = Float.sqrt (!lo *. !hi) in
      match synthesize_at_full plant mid with
      | Some (k, norm) ->
        hi := mid;
        best_k := k;
        best_g := mid;
        best_n := norm
      | None -> lo := mid
    done;
    if Obs.Collector.enabled () then begin
      Obs.Metrics.incr synthesis_calls_metric;
      Obs.Metrics.incr ~by:(!tries + !iterations) gamma_steps_metric;
      Obs.Collector.record_span ~name:"hinf.synthesize"
        ~dur_s:(Obs.Collector.now () -. t0)
        [
          ("gamma", Obs.Json.Float !best_g);
          ("achieved_norm", Obs.Json.Float !best_n);
          ("feasibility_steps", Obs.Json.Int !tries);
          ("bisection_steps", Obs.Json.Int !iterations);
        ]
    end;
    { controller = !best_k; gamma = !best_g; achieved_norm = !best_n }
