(** Linear time-invariant systems in state-space form.

    A system is [x' = A x + B u], [y = C x + D u], where [x'] is the time
    derivative (continuous time) or the next-step state (discrete time with
    a sampling period). Interconnection operators (series, parallel,
    feedback, LFTs) are the building blocks used by the synthesis routines
    and by the Yukta layer-composition code. *)

type domain =
  | Continuous
  | Discrete of float  (** Sampling period in seconds. *)

type t = {
  a : Linalg.Mat.t;
  b : Linalg.Mat.t;
  c : Linalg.Mat.t;
  d : Linalg.Mat.t;
  domain : domain;
}

val make :
  ?domain:domain ->
  a:Linalg.Mat.t ->
  b:Linalg.Mat.t ->
  c:Linalg.Mat.t ->
  d:Linalg.Mat.t ->
  unit ->
  t
(** Build a system, checking dimension consistency (default continuous).
    @raise Invalid_argument on inconsistent dimensions. *)

val order : t -> int
(** State dimension. *)

val inputs : t -> int

val outputs : t -> int

val static_gain : ?domain:domain -> Linalg.Mat.t -> t
(** Zero-order system [y = D u]. *)

val gain : ?domain:domain -> int -> float -> t
(** Static diagonal gain [y = g u] on [n] channels. *)

val integrator : ?period:float -> int -> t
(** Discrete integrator bank: [x' = x + u], [y = x] on [n] channels
    (default period 1). Used to add integral action to tracking loops. *)

val is_stable : t -> bool
(** Hurwitz (continuous) or Schur (discrete) stability of [A]. *)

val poles : t -> Complex.t array

val dcgain : t -> Linalg.Mat.t
(** Steady-state gain: [D - C A^-1 B] (continuous), or
    [C (I - A)^-1 B + D] (discrete).
    @raise Linalg.Lu.Singular for systems with integrators. *)

(** {1 Simulation (discrete systems)} *)

val step : t -> x:Linalg.Vec.t -> u:Linalg.Vec.t -> Linalg.Vec.t * Linalg.Vec.t
(** [step sys ~x ~u] is [(x_next, y)]. *)

val step_into :
  t ->
  x:Linalg.Vec.t ->
  u:Linalg.Vec.t ->
  x_next:Linalg.Vec.t ->
  y:Linalg.Vec.t ->
  sx:Linalg.Vec.t ->
  sy:Linalg.Vec.t ->
  unit
(** Allocation-free [step]: writes the next state into [x_next] and the
    output into [y], using caller-provided scratch [sx] (dimension
    [order]) and [sy] (dimension [outputs]). Bit-identical to [step].
    [x_next] must not alias [x]. *)

val simulate : t -> ?x0:Linalg.Vec.t -> Linalg.Vec.t array -> Linalg.Vec.t array
(** Drive a discrete system with an input sequence from initial state [x0]
    (default zero); returns the output sequence (same length). *)

(** {1 Interconnection} *)

val series : t -> t -> t
(** [series g1 g2] is [g2 * g1]: the output of [g1] feeds [g2]. *)

val parallel : t -> t -> t
(** Sum of outputs, shared input. *)

val append : t -> t -> t
(** Block-diagonal: stacks inputs, outputs and states. *)

val add_output_disturbance : t -> t
(** Augment with an extra input added directly to the outputs (identity
    feedthrough): models output disturbances / external signals entering
    additively. *)

val feedback : ?sign:float -> t -> t -> t
(** [feedback plant controller] closes the loop
    [u = sign * K y + r] (default [sign = -1.], negative feedback), giving
    the closed-loop system from [r] to the plant output.
    @raise Linalg.Lu.Singular if the algebraic loop is ill-posed. *)

val lft_lower : t -> t -> t
(** Lower linear fractional transformation [F_l(P, K)]: [P] partitioned
    with its {e last} [inputs K] inputs and {e last} [outputs K] outputs
    connected to [K]. This is the standard plant/controller closure. *)

val transform : Linalg.Mat.t -> t -> t
(** Similarity transform [x = T z]: returns the system in [z] coordinates. *)

(** {1 Frequency domain} *)

val freq_response : t -> float -> Linalg.Cmat.t
(** [freq_response sys w] is [C (jw I - A)^-1 B + D] for continuous
    systems, and [C (e^{jwT} I - A)^-1 B + D] for discrete ones, at angular
    frequency [w] (rad/s). *)

val hinf_norm : ?points:int -> t -> float
(** Peak singular value of the frequency response over a logarithmic
    frequency grid (with local refinement around the peak). For unstable
    systems returns [infinity]. *)

val h2_norm : t -> float
(** Discrete H2 norm via the controllability gramian.
    @raise Invalid_argument for continuous systems with [D <> 0]. *)

val pp : Format.formatter -> t -> unit
