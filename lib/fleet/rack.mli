(** The rack-layer controller: one shared power budget apportioned over
    N per-board stacks, re-decided each rack epoch from measured
    per-board power and progress.

    This is the N-layer generalisation one level above {!Yukta.Stack}:
    the rack measures its boards the way a layer measures its board, and
    actuates per-board caps the way a layer actuates configurations
    (the caps flow into each board's {!Board.Emergency} enforcement and
    each controlled layer's target rewrite — see [Stack.run ?cap]).

    Three policies, in ascending sophistication:
    - {e even-split} — the static baseline: every board gets cap/N,
      forever, measurements ignored;
    - {e proportional} — a heuristic: per-board demand is EWMA-estimated
      from measured power (inflated when a board is pressed against its
      cap) and the budget is water-filled proportionally to demand;
    - {e feedback} — proportional demand shares plus an LQR trim loop on
      total measured power (scalar DARE gain via {!Yukta.Designs},
      cached in [.yukta_cache/]) that safely oversubscribes sustained
      headroom, and a progress tilt toward laggards to compress the
      finish-time spread.

    Everything is plain arithmetic over arrays in board-index order:
    stepping is deterministic at any job count. *)

type policy = Even_split | Proportional | Feedback

val policy_name : policy -> string
(** ["even-split"], ["proportional"], ["feedback"]. *)

val policy_of_string : string -> policy option
(** Accepts the names above plus the aliases [even], [static], [prop]
    and [lqg] (case-insensitive). *)

val board_ceiling : float
(** The most a board can sustainedly draw (the sum of the emergency
    power-trip thresholds); demand estimates and allocations saturate
    here. *)

type t

val make :
  ?floor:float ->
  ?gain:float ->
  policy:policy ->
  boards:int ->
  cap:float ->
  unit ->
  t
(** A rack controller for [boards] boards sharing [cap] watts. [floor]
    is the per-board minimum allocation (default 0.45 W, clamped to the
    fair share); [gain] overrides the feedback trim gain (default: the
    cached {!Yukta.Designs.rack_gain}, only consulted for the feedback
    policy). Initial apportionment is the even split.
    @raise Invalid_argument on [boards < 1] or a non-positive [cap]. *)

val policy : t -> policy
(** The apportionment policy this controller runs. *)

val cap : t -> float
(** The shared rack budget, watts (fixed at {!make} time). *)

val caps : t -> float array
(** The current per-board apportionment, watts. The returned array is
    the controller's own state: read it, don't write it. *)

val trim : t -> float
(** The feedback policy's current budget multiplier (1.0 otherwise). *)

val step :
  t ->
  power:float array ->
  progress:float array ->
  active:bool array ->
  unit
(** One rack epoch: fold the per-board measurements (average power over
    the last rack epoch, fraction of work retired, still-running flag)
    into the demand estimates and recompute {!caps}. Inactive boards
    are held at the floor and excluded from the budget fight.
    @raise Invalid_argument when array lengths differ from the board
    count. *)
