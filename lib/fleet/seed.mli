(** Deterministic per-board seed derivation.

    A fleet run owns one [fleet_seed]; every per-board RNG consumer
    (workload generator, sensor noise, ...) derives its seed as a pure
    hash of [(fleet_seed, board, stream)]. Board [i] therefore behaves
    identically whatever the fleet size, board construction order or job
    count — the determinism contract behind the [-j1]/[-j8]
    byte-identity of fleet aggregates. *)

val derive : fleet_seed:int -> board:int -> stream:int -> int
(** A non-negative (30-bit) seed for the given board and stream.
    [stream] separates independent consumers on one board (0 =
    workload, 1 = sensors by convention).
    @raise Invalid_argument on a negative [board]. *)
