(** The streaming fleet driver: N boards, each under its own
    {!Yukta.Stack}, sharing one rack power budget apportioned by
    {!Rack} each rack epoch.

    The driver keeps persistent per-board state (board + stack) across
    rack epochs. Each rack epoch it fans the still-running boards out
    over a {!Parallel.Pool} — every board steps
    [rack_epoch / epoch] control epochs under its current cap — and
    folds the per-board samples (average power, progress, finished)
    into mergeable accumulators {e in board order} via the pool's
    streaming [map_reduce]: no per-board result list is ever
    materialized, and the folded aggregates are byte-identical at any
    job count (collector events are captured per board and replayed in
    order). Per-board RNG seeds derive from the fleet seed via {!Seed},
    so results are also independent of board count and ordering. *)

type config = {
  boards : int;
  cap : float;              (** Shared rack budget, watts. *)
  policy : Rack.policy;
  scheme : string;          (** Scheme key for every board's stack. *)
  seed : int;               (** Fleet seed; per-board seeds derive. *)
  epoch : float;            (** Board control epoch, seconds. *)
  rack_epoch : float;       (** Rack decision period, seconds. *)
  max_time : float;         (** Simulated horizon, seconds. *)
  ginsts : float;           (** Per-board workload size, Ginsts. *)
}

val config :
  ?cap_per_board:float ->
  ?policy:Rack.policy ->
  ?scheme:string ->
  ?seed:int ->
  ?epoch:float ->
  ?rack_epoch:float ->
  ?max_time:float ->
  ?ginsts:float ->
  boards:int ->
  unit ->
  config
(** Defaults: 1.6 W/board shared budget (contended — the uncapped
    per-board budget is {!Yukta.Hw_layer.board_power_budget} = 3.63 W),
    feedback policy, the ["coord"] scheme (no synthesis needed), seed
    42, 0.5 s epochs, 2 s rack epochs, 240 s horizon, 60 Ginsts of
    synthetic (per-board heterogeneous) work.
    @raise Invalid_argument on [boards < 1], a non-positive budget, or
    [epoch]/[rack_epoch] that don't satisfy [0 < epoch <= rack_epoch]. *)

type result = {
  cfg : config;
  rack_epochs : int;
  board_epochs : int;       (** Total control epochs stepped, fleet-wide. *)
  completed : int;          (** Boards that finished their work. *)
  makespan : float;         (** Latest board clock at the end, seconds. *)
  energy : float;           (** Fleet joules. *)
  exd : float;              (** Fleet E x D: [energy * makespan]. *)
  cap_violation_s : float;  (** Rack-epoch time with measured total power
                                above the budget. *)
  trips : int;              (** Emergency trips, fleet-wide. *)
  power : Obs.Stats.Welford.t;
      (** Per-board-rack-epoch average power samples. *)
}

val run : ?pool:Parallel.Pool.t -> config -> result
(** Run the fleet to completion or the horizon. Without a pool (or with
    a 1-job pool) everything steps inline in the caller; the parallel
    and serial paths produce bit-identical results. *)

val json : result -> Obs.Json.t
(** The deterministic ["fleet"] result block (config echo + aggregate
    metrics). Contains no wall-clock fields, so it is byte-identical
    across job counts; throughput (boards x epochs / wall second) is the
    harness's to report. *)
