(* Deterministic per-board seed derivation (splitmix64-style finalizer).

   Every board's RNG seeds are pure functions of (fleet_seed, board
   index, stream), so a fleet run is reproducible and board i's
   behaviour is independent of how many other boards exist, in which
   order they are built, and how many domains step them. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let golden = 0x9e3779b97f4a7c15L

let derive ~fleet_seed ~board ~stream =
  if board < 0 then invalid_arg "Seed.derive: negative board index";
  let open Int64 in
  let z =
    add
      (mul (of_int fleet_seed) golden)
      (add (mul (of_int (board + 1)) 0xbf58476d1ce4e5b9L) (of_int stream))
  in
  (* Mask to 30 bits: positive on every OCaml int size. *)
  to_int (logand (mix64 z) 0x3FFFFFFFL)
