(* The streaming fleet driver: persistent per-board state stepped in
   rack epochs, fanned out over the domain pool, folded back into
   mergeable accumulators in board order. No per-board result list is
   ever materialized — a 1024-board run holds the boards themselves
   plus O(window) in-flight samples. *)

open Board
open Yukta

type config = {
  boards : int;
  cap : float;              (* Shared rack budget, watts. *)
  policy : Rack.policy;
  scheme : string;          (* Scheme key for every board's stack. *)
  seed : int;               (* Fleet seed; per-board seeds derive. *)
  epoch : float;            (* Board control epoch, seconds. *)
  rack_epoch : float;       (* Rack decision period, seconds. *)
  max_time : float;         (* Simulated horizon, seconds. *)
  ginsts : float;           (* Per-board workload size, Ginsts. *)
}

let config ?(cap_per_board = 1.6) ?(policy = Rack.Feedback) ?(scheme = "coord")
    ?(seed = 42) ?(epoch = Stack.default_epoch) ?(rack_epoch = 2.0)
    ?(max_time = 240.0) ?(ginsts = 60.0) ~boards () =
  if boards < 1 then invalid_arg "Sim.config: boards must be >= 1";
  if not (cap_per_board > 0.0) then
    invalid_arg "Sim.config: cap_per_board must be positive";
  if not (epoch > 0.0 && rack_epoch >= epoch) then
    invalid_arg "Sim.config: need 0 < epoch <= rack_epoch";
  {
    boards;
    cap = cap_per_board *. float_of_int boards;
    policy;
    scheme;
    seed;
    epoch;
    rack_epoch;
    max_time;
    ginsts;
  }

type result = {
  cfg : config;
  rack_epochs : int;
  board_epochs : int;       (* Total control epochs stepped, fleet-wide. *)
  completed : int;
  makespan : float;         (* Latest board clock at the end, seconds. *)
  energy : float;           (* Fleet joules. *)
  exd : float;              (* energy * makespan. *)
  cap_violation_s : float;  (* Rack-epoch time with measured total > cap. *)
  trips : int;              (* Emergency trips, fleet-wide. *)
  power : Obs.Stats.Welford.t;  (* Per-board-rack-epoch average power. *)
}

(* Persistent per-board state; owned by exactly one task per rack epoch. *)
type board_state = {
  index : int;
  board : Xu3.t;
  stack : Stack.t;
}

(* What one board reports back from one rack epoch — the only value that
   crosses domains, folded into accumulators immediately. *)
type sample = {
  s_index : int;
  s_epochs : int;
  s_power : float;          (* Average watts over the stepped span. *)
  s_progress : float;
  s_finished : bool;
}

let make_board cfg info i =
  let workload =
    Workload.synthetic
      ~seed:(Seed.derive ~fleet_seed:cfg.seed ~board:i ~stream:0)
      ~ginsts:cfg.ginsts ()
  in
  let board =
    Xu3.create
      ~seed:(Seed.derive ~fleet_seed:cfg.seed ~board:i ~stream:1)
      [ workload ]
  in
  let stack = Schemes.stack info in
  Stack.reset stack;
  { index = i; board; stack }

let step_board cfg ~epochs ~cap st =
  Xu3.set_power_cap st.board (Some cap);
  let t0 = Xu3.time st.board in
  let e0 = Xu3.energy st.board in
  let stepped = ref 0 in
  for _ = 1 to epochs do
    if not (Xu3.finished st.board) then begin
      let o = Xu3.run_epoch st.board cfg.epoch in
      Stack.step ~cap st.stack st.board o;
      incr stepped
    end
  done;
  let dt = Xu3.time st.board -. t0 in
  {
    s_index = st.index;
    s_epochs = !stepped;
    s_power =
      (if dt > 0.0 then (Xu3.energy st.board -. e0) /. dt else 0.0);
    s_progress = Xu3.progress st.board;
    s_finished = Xu3.finished st.board;
  }

let run ?pool cfg =
  let info = Schemes.find_exn cfg.scheme in
  let n = cfg.boards in
  (* Build every board before fan-out: stack construction forces the
     scheme's memoized designs exactly once (the single-force rule). *)
  let states = Array.init n (make_board cfg info) in
  let rack = Rack.make ~policy:cfg.policy ~boards:n ~cap:cfg.cap () in
  let power = Array.make n 0.0 in
  let progress = Array.make n 0.0 in
  let active = Array.make n true in
  let pw = Obs.Stats.Welford.create () in
  let board_epochs = ref 0 in
  let rack_epochs = ref 0 in
  let remaining = ref n in
  let violation = ref 0.0 in
  let epoch_power = ref 0.0 in
  let epochs_per_rack =
    max 1 (int_of_float (Float.round (cfg.rack_epoch /. cfg.epoch)))
  in
  let fold_sample s =
    let i = s.s_index in
    power.(i) <- s.s_power;
    progress.(i) <- s.s_progress;
    board_epochs := !board_epochs + s.s_epochs;
    if s.s_epochs > 0 then begin
      Obs.Stats.Welford.add pw s.s_power;
      epoch_power := !epoch_power +. s.s_power
    end;
    if s.s_finished && active.(i) then begin
      active.(i) <- false;
      decr remaining
    end
  in
  while
    !remaining > 0
    && (float_of_int !rack_epochs *. cfg.rack_epoch)
       < cfg.max_time -. 1e-9
  do
    let caps = Rack.caps rack in
    (* Only still-running boards are stepped; the item list shrinks as
       the fleet drains, but in index order, so the fold stays
       deterministic. *)
    let items =
      Array.fold_right
        (fun st acc -> if active.(st.index) then st :: acc else acc)
        states []
    in
    epoch_power := 0.0;
    (match pool with
    | Some p when Parallel.Pool.jobs p > 1 ->
      (* Collector events from board steps are captured per board and
         replayed in board order — the fold is byte-identical to the
         serial path. *)
      Parallel.Pool.map_reduce p
        ~map:(fun st ->
          Obs.Collector.capture (fun () ->
              step_board cfg ~epochs:epochs_per_rack ~cap:caps.(st.index) st))
        ~init:()
        ~reduce:(fun () (s, lines) ->
          Obs.Collector.replay lines;
          fold_sample s)
        items
    | _ ->
      List.iter
        (fun st ->
          fold_sample
            (step_board cfg ~epochs:epochs_per_rack ~cap:caps.(st.index) st))
        items);
    if !epoch_power > cfg.cap then violation := !violation +. cfg.rack_epoch;
    Rack.step rack ~power ~progress ~active;
    incr rack_epochs
  done;
  let makespan =
    Array.fold_left (fun m st -> Float.max m (Xu3.time st.board)) 0.0 states
  in
  let energy =
    Array.fold_left (fun e st -> e +. Xu3.energy st.board) 0.0 states
  in
  let trips =
    Array.fold_left (fun t st -> t + Xu3.trip_count st.board) 0 states
  in
  {
    cfg;
    rack_epochs = !rack_epochs;
    board_epochs = !board_epochs;
    completed = n - !remaining;
    makespan;
    energy;
    exd = energy *. makespan;
    cap_violation_s = !violation;
    trips;
    power = pw;
  }

let json r =
  let c = r.cfg in
  Obs.Json.Obj
    [
      ("policy", Obs.Json.String (Rack.policy_name c.policy));
      ("boards", Obs.Json.Int c.boards);
      ("cap_w", Obs.Json.Float c.cap);
      ("scheme", Obs.Json.String c.scheme);
      ("seed", Obs.Json.Int c.seed);
      ("epoch_s", Obs.Json.Float c.epoch);
      ("rack_epoch_s", Obs.Json.Float c.rack_epoch);
      ("max_time_s", Obs.Json.Float c.max_time);
      ("ginsts", Obs.Json.Float c.ginsts);
      ("rack_epochs", Obs.Json.Int r.rack_epochs);
      ("board_epochs", Obs.Json.Int r.board_epochs);
      ("completed", Obs.Json.Int r.completed);
      ("makespan_s", Obs.Json.Float r.makespan);
      ("energy_j", Obs.Json.Float r.energy);
      ("exd_js", Obs.Json.Float r.exd);
      ("cap_violation_s", Obs.Json.Float r.cap_violation_s);
      ("trips", Obs.Json.Int r.trips);
      ("board_power_w", Obs.Stats.Welford.to_json r.power);
    ]
