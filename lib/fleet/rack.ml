(* The rack layer: one controller above N per-board stacks, apportioning
   a shared power budget each rack epoch from measured per-board power
   and progress. Everything here is plain float arithmetic over arrays
   in index order — deterministic at any job count by construction. *)

type policy = Even_split | Proportional | Feedback

let policy_name = function
  | Even_split -> "even-split"
  | Proportional -> "proportional"
  | Feedback -> "feedback"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "even" | "even-split" | "even_split" | "static" -> Some Even_split
  | "prop" | "proportional" -> Some Proportional
  | "feedback" | "lqg" -> Some Feedback
  | _ -> None

(* A board can never productively draw more than the emergency limiters
   allow for a sustained stretch; demand estimates saturate there. *)
let board_ceiling = Board.Emergency.power_trip_big +. Board.Emergency.power_trip_little

(* No allocation drops below this (keeps a throttled board above idle so
   it can still make progress and report demand). *)
let default_floor = 0.45

(* Demand EWMA smoothing and the cap-limited inflation factor: a board
   drawing at (or pressed against) its cap is assumed to want more. *)
let ewma_alpha = 0.5

let pressed_fraction = 0.92

let inflation = 1.25

type t = {
  policy : policy;
  cap : float;                  (* Shared budget, watts. *)
  floor : float;
  gain : float;                 (* Feedback trim gain (DARE-derived). *)
  demand : float array;         (* EWMA per-board demand estimate, W. *)
  caps : float array;           (* Current apportionment, watts. *)
  mutable trim : float;         (* Feedback budget multiplier. *)
}

let make ?floor ?gain ~policy ~boards ~cap () =
  if boards < 1 then invalid_arg "Rack.make: boards must be >= 1";
  if not (cap > 0.0) then invalid_arg "Rack.make: cap must be positive";
  let fair = cap /. float_of_int boards in
  let floor =
    match floor with
    | Some f -> Float.min f fair
    | None -> Float.min default_floor fair
  in
  let gain =
    match gain with
    | Some g -> g
    | None -> (
        match policy with
        | Feedback -> Yukta.Designs.rack_gain ()
        | Even_split | Proportional -> 0.0)
  in
  {
    policy;
    cap;
    floor;
    gain;
    demand = Array.make boards (Float.min fair board_ceiling);
    caps = Array.make boards fair;
    trim = 1.0;
  }

let policy t = t.policy

let cap t = t.cap

let caps t = t.caps

let trim t = t.trim

(* Weighted water-filling: start every unfrozen board at [floor],
   distribute the remaining budget proportionally to weight, freeze
   boards that hit [board_ceiling] and redistribute their overflow.
   Each pass either freezes a board or exhausts the budget, so the loop
   runs at most [boards] times. *)
let waterfill ~floor ~budget ~weights ~frozen out =
  let n = Array.length weights in
  let extra = ref (budget -. (float_of_int n *. floor)) in
  for i = 0 to n - 1 do
    out.(i) <- floor
  done;
  let continue_ = ref (!extra > 1e-9) in
  while !continue_ do
    let wsum = ref 0.0 in
    for i = 0 to n - 1 do
      if not frozen.(i) then wsum := !wsum +. weights.(i)
    done;
    if !wsum <= 1e-12 then continue_ := false
    else begin
      let gave = ref 0.0 in
      let any_frozen = ref false in
      for i = 0 to n - 1 do
        if not frozen.(i) && weights.(i) > 0.0 then begin
          let give = !extra *. weights.(i) /. !wsum in
          let room = board_ceiling -. out.(i) in
          if give >= room then begin
            out.(i) <- board_ceiling;
            gave := !gave +. room;
            frozen.(i) <- true;
            any_frozen := true
          end
          else begin
            out.(i) <- out.(i) +. give;
            gave := !gave +. give
          end
        end
      done;
      extra := !extra -. !gave;
      continue_ := !any_frozen && !extra > 1e-9
    end
  done

let step t ~power ~progress ~active =
  let n = Array.length t.caps in
  if
    Array.length power <> n
    || Array.length progress <> n
    || Array.length active <> n
  then invalid_arg "Rack.step: measurement arrays must match board count";
  match t.policy with
  | Even_split -> () (* Static: the baseline never moves. *)
  | Proportional | Feedback ->
    (* 1. Demand estimation. A board pressed against its cap is
       cap-limited: its true demand is above what it drew, so the
       sample inflates past the cap before the EWMA folds it in. *)
    for i = 0 to n - 1 do
      if active.(i) then begin
        let sample =
          if power.(i) >= pressed_fraction *. t.caps.(i) then
            Float.min board_ceiling
              (Float.max power.(i) (t.caps.(i) *. inflation))
          else power.(i)
        in
        let d = ((1.0 -. ewma_alpha) *. t.demand.(i)) +. (ewma_alpha *. sample) in
        t.demand.(i) <- Float.max t.floor (Float.min board_ceiling d)
      end
      else t.demand.(i) <- 0.0
    done;
    (* 2. Feedback budget trim: integrate the normalized headroom error
       with the DARE gain, so sustained underdraw (caps are limits, not
       consumption) safely oversubscribes the budget and sustained
       overdraw pulls it back. The heuristic policy runs with trim 1. *)
    let budget =
      match t.policy with
      | Feedback ->
        let total = ref 0.0 in
        for i = 0 to n - 1 do
          if active.(i) then total := !total +. power.(i)
        done;
        let err = (t.cap -. !total) /. t.cap in
        t.trim <- Float.max 0.8 (Float.min 1.3 (t.trim +. (t.gain *. err)));
        t.cap *. t.trim
      | Even_split | Proportional -> t.cap
    in
    (* 3. Apportionment: water-fill on demand weights. Feedback also
       tilts toward laggards (lower progress) to compress the spread of
       finish times — makespan is what multiplies fleet E x D. *)
    let weights = Array.make n 0.0 in
    let frozen = Array.make n false in
    for i = 0 to n - 1 do
      if active.(i) then
        weights.(i) <-
          (match t.policy with
          | Feedback -> t.demand.(i) *. (1.0 +. (0.5 *. (1.0 -. progress.(i))))
          | Even_split | Proportional -> t.demand.(i))
      else frozen.(i) <- true
    done;
    waterfill ~floor:t.floor ~budget ~weights ~frozen t.caps
