(** Evaluation drivers: run scheme sets across workload suites and
    normalize every metric to the first scheme (the baseline), the way
    every figure in the paper's evaluation reports its bars.

    Suites are keyed by registry entries ({!Schemes.info}), so any
    registered scheme — two layers or ten — joins a suite unchanged. *)

type app_result = {
  app : string;
  scheme : Schemes.info;
  metrics : Board.Xu3.metrics;
  completed : bool;
  health : Obs.Health.t;  (** The cell's controller-health monitors. *)
}

val run_app :
  ?max_time:float -> Schemes.info -> string * Board.Workload.t list -> app_result

val suite_entries : unit -> (string * Board.Workload.t list) list
(** The Figure 9 suite: 6 SPEC + 8 PARSEC applications, one job each. *)

val mix_entries : unit -> (string * Board.Workload.t list) list
(** The Figure 14 heterogeneous mixes (two 4-thread jobs each). *)

val average : float list -> float
(** Arithmetic mean. @raise Invalid_argument on an empty list. *)

type normalized_row = {
  name : string;
  exd : (Schemes.info * float) list;   (** Normalized E x D per scheme. *)
  time : (Schemes.info * float) list;  (** Normalized execution time. *)
  raw : (Schemes.info * app_result) list;
      (** The un-normalized per-scheme results behind the ratios. *)
}

val map_cells :
  ?pool:Parallel.Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every cell of an evaluation grid, preserving input
    order. Without a pool (or with a 1-job pool) this is [List.map];
    with a parallel pool, cells fan out through the pool's streaming
    [map_reduce], each wrapped in [Obs.Collector.capture], and the
    captured trace lines are replayed in input order as each cell's
    result streams back — so serial and parallel runs produce identical
    results {e and} identical trace streams (modulo wall-clock span
    durations), and no intermediate captured-trace list is ever
    materialized. Cells must be independent: fresh stack, fresh board,
    no writes to shared state. *)

val run_suite :
  ?max_time:float ->
  ?pool:Parallel.Pool.t ->
  schemes:Schemes.info list ->
  (string * Board.Workload.t list) list ->
  normalized_row list
(** Run every scheme on every entry; normalize to the first scheme.
    With [pool], the [(scheme, app)] cells run on the pool's domains
    (after a single-force warm-up of every scheme's designs in the
    calling domain) and rows reassemble in entry order — the output is
    byte-identical to the serial run's. *)

val averages :
  normalized_row list ->
  spec_names:string list ->
  parsec_names:string list ->
  value:(normalized_row -> (Schemes.info * float) list) ->
  Schemes.info ->
  float * float * float
(** [(SAv, PAv, Avg)] — the SPEC, PARSEC and overall averages of the
    Figure 9 bar layout. A subset with no matching rows averages to
    [nan] (rendered blank by the table printers). *)

val suite_json : normalized_row list -> Obs.Json.t
(** Machine-readable form of a suite: per-app rows with raw and
    normalized E x D / execution-time metrics per scheme, plus suite
    averages — the shape [bench --json] embeds per figure. *)

val suite_health_json : normalized_row list -> Obs.Json.t
(** Fleet health: every row's per-scheme {!Obs.Health} accumulators
    merged into one aggregate per scheme (keyed by scheme name). The
    fold runs in row order regardless of how the cells were scheduled,
    so the block is byte-identical at any job count. *)
