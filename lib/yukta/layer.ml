(* A single resource-control layer: heuristic or controlled, stepped
   once per epoch by a Stack. *)

open Linalg
open Board

(* Retarget interval: the optimizer moves every few epochs so the
   controller has time to settle on each target set. *)
let optimizer_interval = 5

(* Exponentially averaged E x D rate: instantaneous power over squared
   performance is the per-epoch proxy for E x D (Section IV-D). *)
let exd_rate (o : Xu3.outputs) =
  (o.Xu3.power_big +. o.Xu3.power_little)
  /. (Float.max 0.2 o.Xu3.bips ** 2.0)

type exd_tracker = { mutable ema : float; mutable primed : bool }

let exd_tracker () = { ema = 0.0; primed = false }

let exd_update t o =
  let v = exd_rate o in
  if t.primed then t.ema <- (0.5 *. t.ema) +. (0.5 *. v)
  else begin
    t.ema <- v;
    t.primed <- true
  end;
  t.ema

type targets =
  | Optimized of Optimizer.t
  | Fixed of Vec.t

type controlled = {
  mutable controller : Controller.t;
  mutable targets : targets;
  tracker : exd_tracker;
  measure : Xu3.outputs -> Vec.t;
  mutable externals : Xu3.t -> Vec.t;
  actuate : Xu3.t -> Vec.t -> unit;
  on_reset : unit -> unit;
  mutable epoch_index : int;
  (* Rewrites the target vector when an external power cap is active
     (rack apportionment); must return a fresh vector, never mutate its
     argument. None (or no cap): targets pass through untouched. *)
  cap_targets : (cap:float -> Vec.t -> Vec.t) option;
}

type heuristic = {
  h_reset : unit -> unit;
  h_act : Xu3.t -> Xu3.outputs -> unit;
  mutable h_epoch : int;
}

type kind = Heuristic of heuristic | Controlled of controlled

type t = {
  label : string;
  measures_ : string array;
  actuates_ : string array;
  kind : kind;
}

let heuristic ~label ?(measures = [||]) ?(actuates = [||])
    ?(reset = fun () -> ()) ~act () =
  {
    label;
    measures_ = measures;
    actuates_ = actuates;
    kind = Heuristic { h_reset = reset; h_act = act; h_epoch = 0 };
  }

let controlled ~label ?(measures = [||]) ?(actuates = [||])
    ?(on_reset = fun () -> ()) ?cap_targets ~controller ~targets ~measure
    ~externals ~actuate () =
  {
    label;
    measures_ = measures;
    actuates_ = actuates;
    kind =
      Controlled
        {
          controller;
          targets;
          tracker = exd_tracker ();
          measure;
          externals;
          actuate;
          on_reset;
          epoch_index = 0;
          cap_targets;
        };
  }

let label t = t.label
let measures t = t.measures_
let actuates t = t.actuates_

let is_controlled t =
  match t.kind with Controlled _ -> true | Heuristic _ -> false

let as_controlled op t =
  match t.kind with
  | Controlled c -> c
  | Heuristic _ ->
    invalid_arg (Printf.sprintf "Layer.%s: %s is a heuristic layer" op t.label)

let controller t = (as_controlled "controller" t).controller

(* Hot-swap: install a re-synthesized controller mid-run with bumpless
   transfer from the incumbent. Swapping before the first step makes no
   sense (there is no operating point to transfer), so adapt loops only
   swap between epochs. *)
let swap_controller t controller =
  let c = as_controlled "swap_controller" t in
  Controller.bumpless_from controller ~from:c.controller;
  c.controller <- controller

let with_externals t externals =
  let c = as_controlled "with_externals" t in
  { t with kind = Controlled { c with externals } }

let with_fixed_targets t targets =
  let c = as_controlled "with_fixed_targets" t in
  { t with kind = Controlled { c with targets = Fixed targets } }

let reset t =
  match t.kind with
  | Heuristic h ->
    h.h_epoch <- 0;
    h.h_reset ()
  | Controlled c ->
    Controller.reset c.controller;
    (match c.targets with
    | Optimized o -> Optimizer.reset o
    | Fixed _ -> ());
    c.tracker.ema <- 0.0;
    c.tracker.primed <- false;
    c.epoch_index <- 0;
    c.on_reset ()

let floats_json v =
  Obs.Json.List (Array.to_list (Array.map (fun x -> Obs.Json.Float x) v))

let decisions_metric = Obs.Metrics.counter "runtime.decisions"

let step ?health ?cap t board o =
  match t.kind with
  | Heuristic h ->
    h.h_epoch <- h.h_epoch + 1;
    h.h_act board o;
    (match health with
    | Some hl -> Obs.Health.note_heuristic hl
    | None -> ());
    if Obs.Collector.observing () then begin
      Obs.Metrics.incr decisions_metric;
      Obs.Collector.event ~name:"runtime.decision" ~sim:(Xu3.time board)
        (fun () ->
          [
            ("layer", Obs.Json.String t.label);
            ("epoch", Obs.Json.Int h.h_epoch);
            ("kind", Obs.Json.String "heuristic");
          ])
    end
  | Controlled c ->
    c.epoch_index <- c.epoch_index + 1;
    let objective = exd_update c.tracker o in
    let meas = c.measure o in
    let targets =
      match c.targets with
      | Fixed v -> v
      | Optimized opt ->
        if c.epoch_index mod optimizer_interval = 0 then
          Optimizer.update opt ~objective ~measurements:meas
        else Optimizer.targets opt
    in
    let targets =
      match (cap, c.cap_targets) with
      | Some cap, Some rewrite -> rewrite ~cap targets
      | _ -> targets
    in
    let u =
      Controller.step c.controller ~measurements:meas ~targets
        ~externals:(c.externals board)
    in
    c.actuate board u;
    (match health with
    | Some hl ->
      Obs.Health.note_decision hl
        ~err:(Controller.last_tracking_error c.controller)
        ~saturated:(Controller.last_saturated c.controller)
    | None -> ());
    if Obs.Collector.observing () then begin
      Obs.Metrics.incr decisions_metric;
      Obs.Collector.event ~name:"runtime.decision" ~sim:(Xu3.time board)
        (fun () ->
          (* The pre-quantization normalized command shows which inputs
             the controller drove into saturation this epoch. *)
          let raw = Controller.last_raw_command c.controller in
          let saturated =
            Array.fold_left
              (fun acc x ->
                if Float.abs x >= 1.0 -. 1e-9 then acc + 1 else acc)
              0 raw
          in
          [
            ("layer", Obs.Json.String t.label);
            ("epoch", Obs.Json.Int c.epoch_index);
            ("kind", Obs.Json.String "controlled");
            ("objective_exd", Obs.Json.Float objective);
            ("measurements", floats_json meas);
            ("targets", floats_json targets);
            ("command", floats_json u);
            ("saturated_inputs", Obs.Json.Int saturated);
          ])
    end

module Wire = struct
  type 'a wire = { mutable value : 'a; default : 'a }

  let create default = { value = default; default }
  let set w v = w.value <- v
  let get w = w.value
  let reset w = w.value <- w.default
end
