(* Memoized controller designs.

   Training-data collection and mu-synthesis are the expensive, offline
   part of the flow (they happen once per platform in the paper). The
   default records and designs are computed lazily, shared by every
   experiment, and additionally cached on disk (content-addressed by the
   training records and the layer specification) so repeated benchmark
   runs skip re-synthesis. Set YUKTA_NO_CACHE=1 to disable the disk
   cache.

   Domain safety: the lazy memos and the disk cache are process-global,
   and OCaml 5 raises if two domains force one suspension concurrently,
   so every public entry point takes [memo_mutex]. The mutex is not
   reentrant; internal code below assumes the lock is already held and
   must never call a public (locking) entry point. Parallel drivers
   should still force everything once before fan-out ([prepare], or
   building the stacks they will run) so workers hit warmed memos
   instead of serializing on the lock. *)

let memo_mutex = Mutex.create ()

let with_memo_lock f =
  Mutex.lock memo_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock memo_mutex) f

let records = lazy (Training.collect ())

(* Lock held from here down. *)

let get_records_unlocked () = Lazy.force records

(* ------------------------------------------------------------------ *)
(* Disk cache                                                          *)
(* ------------------------------------------------------------------ *)

let cache_dir = ".yukta_cache"

let cache_enabled () = Sys.getenv_opt "YUKTA_NO_CACHE" = None

let digest_of_key key = Digest.to_hex (Digest.string key)

let cache_path key = Filename.concat cache_dir (digest_of_key key ^ ".bin")

let cache_load : type a. string -> a option =
 fun key ->
  if not (cache_enabled ()) then None
  else begin
    let path = cache_path key in
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let v =
        match Marshal.from_channel ic with
        | v -> Some (v : a)
        | exception _ -> None
      in
      close_in ic;
      v
    end
    else None
  end

(* Alongside every [.bin] sits a one-line [.meta] sidecar naming what
   the digest holds — the cache keys themselves embed marshalled
   fingerprints, so the sidecar is what `yukta_cli cache` lists.

   Writes are write-to-temp + rename: the memo mutex serializes domains
   within one process, but nothing serializes *processes* (two sweep
   shards cache-missing the same design concurrently), and a reader
   must never observe a half-written blob. A unique temp name per
   process in the same directory plus [Sys.rename] (atomic on POSIX)
   makes the visible file always complete; colliding renames of the
   same key are idempotent because both writers marshal the same value.
   DESIGN.md section 9 states the rule. *)
let write_atomically path write =
  let tmp =
    Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
  in
  let oc = open_out_bin tmp in
  (match write oc with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  match Sys.rename tmp path with
  | () -> ()
  | exception Sys_error _ ->
    (* A concurrent writer won the rename on a platform where it is not
       a silent replace; its bytes are equivalent, so just clean up. *)
    (try Sys.remove tmp with Sys_error _ -> ())

let cache_store ?label key v =
  if cache_enabled () then begin
    (* Racing [mkdir] from two processes: losing the race is success. *)
    if not (Sys.file_exists cache_dir) then (
      try Sys.mkdir cache_dir 0o755
      with Sys_error _ when Sys.file_exists cache_dir -> ());
    write_atomically (cache_path key) (fun oc -> Marshal.to_channel oc v []);
    match label with
    | None -> ()
    | Some label ->
      write_atomically
        (Filename.concat cache_dir (digest_of_key key ^ ".meta"))
        (fun oc -> output_string oc (label ^ "\n"))
  end

(* The cache key covers everything that determines a design: the training
   records, the layer spec, and a schema version to bump when the design
   pipeline itself changes. *)
let schema_version = 1

let spec_fingerprint (spec : Design.spec) =
  Marshal.to_string
    ( spec.Design.layer,
      Array.map
        (fun (i : Signal.input) ->
          ( i.Signal.name,
            i.Signal.channel.Control.Quantize.minimum,
            i.Signal.channel.Control.Quantize.maximum,
            i.Signal.channel.Control.Quantize.step,
            i.Signal.weight ))
        spec.Design.inputs,
      Array.map
        (fun (o : Signal.output) ->
          (o.Signal.name, o.Signal.lo, o.Signal.hi, o.Signal.bound_fraction,
           o.Signal.integral))
        spec.Design.outputs,
      Array.length spec.Design.externals,
      spec.Design.uncertainty,
      spec.Design.period )
    []

let records_fingerprint r =
  Marshal.to_string
    ( Array.length r.Training.hw_u,
      (if Array.length r.Training.hw_u > 0 then r.Training.hw_u.(7) else [||]),
      (if Array.length r.Training.hw_y > 0 then r.Training.hw_y.(7) else [||]),
      (if Array.length r.Training.sw_y > 0 then r.Training.sw_y.(7) else [||]) )
    []

let design_key kind spec =
  Printf.sprintf "design-v%d-%s-%s-%s" schema_version kind
    (spec_fingerprint spec)
    (records_fingerprint (get_records_unlocked ()))

let cached_design kind spec compute =
  let key = design_key kind spec in
  match cache_load key with
  | Some (d : Design.synthesis) -> d
  | None ->
    let d = compute () in
    cache_store ~label:(Printf.sprintf "ssv %s design (%s)" kind spec.Design.layer)
      key d;
    d

let design_hw_unlocked spec =
  cached_design "hw" spec (fun () ->
      let r = get_records_unlocked () in
      Design.design spec ~u:r.Training.hw_u ~y:r.Training.hw_y)

let design_sw_unlocked spec =
  cached_design "sw" spec (fun () ->
      let r = get_records_unlocked () in
      Design.design spec ~u:r.Training.sw_u ~y:r.Training.sw_y)

let hw_default = lazy (design_hw_unlocked (Hw_layer.spec ()))

let sw_default = lazy (design_sw_unlocked (Sw_layer.spec ()))

let cached_controller kind compute =
  let key =
    Printf.sprintf "lqg-v%d-%s-%s" schema_version kind
      (records_fingerprint (get_records_unlocked ()))
  in
  match cache_load key with
  | Some (c : Controller.t) -> c
  | None ->
    let c = compute () in
    cache_store ~label:(Printf.sprintf "lqg %s controller" kind) key c;
    c

let lqg_hw_default =
  lazy
    (cached_controller "hw" (fun () ->
         Lqg_layer.hw_controller (get_records_unlocked ())))

let lqg_sw_default =
  lazy
    (cached_controller "sw" (fun () ->
         Lqg_layer.sw_controller (get_records_unlocked ())))

let lqg_mono_default =
  lazy
    (cached_controller "mono" (fun () ->
         Lqg_layer.monolithic_controller (get_records_unlocked ())))

(* The rack layer's feedback design: the budget-tracking loop is a
   scalar integrator plant (total fleet power responds within one rack
   epoch to a cap change), so its LQR reduces to one DARE-derived gain.
   Cached like the layer designs — the key is the plant/weights alone,
   no training records needed. *)
let rack_q = 1.0

let rack_r = 4.0

let rack_gain_unlocked () =
  let key =
    Printf.sprintf "rack-v%d-q%.17g-r%.17g" schema_version rack_q rack_r
  in
  match cache_load key with
  | Some (g : float) -> g
  | None ->
    let m x = Linalg.Mat.of_lists [ [ x ] ] in
    let a = m 1.0 and b = m 1.0 in
    let x = Control.Dare.solve ~a ~b ~q:(m rack_q) ~r:(m rack_r) in
    let g = Linalg.Mat.get (Control.Dare.gain ~a ~b ~r:(m rack_r) x) 0 0 in
    cache_store ~label:"rack feedback gain" key g;
    g

let rack_default = lazy (rack_gain_unlocked ())

(* ------------------------------------------------------------------ *)
(* Public (locking) entry points                                       *)
(* ------------------------------------------------------------------ *)

let get_records () = with_memo_lock get_records_unlocked

let design_hw_with spec = with_memo_lock (fun () -> design_hw_unlocked spec)

let design_sw_with spec = with_memo_lock (fun () -> design_sw_unlocked spec)

let hw () = with_memo_lock (fun () -> Lazy.force hw_default)

let sw () = with_memo_lock (fun () -> Lazy.force sw_default)

let lqg_hw () = with_memo_lock (fun () -> Lazy.force lqg_hw_default)

let lqg_sw () = with_memo_lock (fun () -> Lazy.force lqg_sw_default)

let lqg_monolithic () = with_memo_lock (fun () -> Lazy.force lqg_mono_default)

let rack_gain () = with_memo_lock (fun () -> Lazy.force rack_default)

let prepare () =
  with_memo_lock (fun () ->
      ignore (get_records_unlocked ());
      ignore (Lazy.force hw_default);
      ignore (Lazy.force sw_default);
      ignore (Lazy.force lqg_hw_default);
      ignore (Lazy.force lqg_sw_default);
      ignore (Lazy.force lqg_mono_default);
      ignore (Lazy.force rack_default))
