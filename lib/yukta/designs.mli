(** Memoized controller designs.

    Training and mu-synthesis are the expensive offline part of the flow
    (once per platform in the paper). Defaults are lazy and shared;
    everything is also cached on disk under [.yukta_cache/],
    content-addressed by the training records and layer specification.
    Set the environment variable [YUKTA_NO_CACHE] to disable the disk
    cache (e.g. when editing the design pipeline itself).

    All entry points are serialized by an internal mutex, so concurrent
    first use from several domains is safe (unsynchronized concurrent
    [Lazy.force] would raise in OCaml 5, and two domains could race a
    cache file). Parallel drivers should still call {!prepare} — or
    build the stacks they are about to run — {e once, before fan-out},
    so the expensive synthesis happens exactly once instead of workers
    queuing on the lock; see the concurrency notes in [DESIGN.md]. *)

val cache_dir : string
(** The on-disk cache directory, [.yukta_cache]. Every entry is a
    [<digest>.bin] Marshal blob, with a one-line [<digest>.meta]
    sidecar naming what it holds (what [yukta_cli cache] lists). *)

val get_records : unit -> Training.records
(** The default training records (computed once per process). *)

val hw : unit -> Design.synthesis
(** The default Table II hardware-layer design. *)

val sw : unit -> Design.synthesis
(** The default Table III software-layer design. *)

val design_hw_with : Design.spec -> Design.synthesis
(** Synthesize a hardware-layer variant (sensitivity studies) against the
    default records. *)

val design_sw_with : Design.spec -> Design.synthesis

val lqg_hw : unit -> Controller.t
(** The decoupled-LQG baselines (Section VI-B). *)

val lqg_sw : unit -> Controller.t
val lqg_monolithic : unit -> Controller.t

val rack_gain : unit -> float
(** The rack layer's budget-tracking feedback gain: the LQR of a scalar
    integrator plant (total fleet power vs. the cap trim), solved by the
    same DARE machinery as the LQG baselines and cached in
    [.yukta_cache/] (keyed by plant weights only — no training records).
    Used by [Fleet.Rack]'s feedback policy. *)

val prepare : unit -> unit
(** Force every default memo (records, both SSV designs, all three LQG
    baselines) under the lock — the single-force-before-fan-out step of
    parallel drivers. Idempotent; later calls are cheap. *)
