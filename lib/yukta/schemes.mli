(** The first-class scheme registry.

    A {e scheme} is a named stack of layers — one row of the paper's
    Table IV, one of the Section VI-B LQG arrangements, or any other
    registered composition. The registry is the single source of the
    name, abbreviation, CLI key and description every consumer (the
    bench harness, the CLI, the experiment drivers) prints, replacing
    the three tables they used to copy.

    Entries are pure data; {!stack} builds a fresh, runnable stack for
    an entry (controller designs are memoized by {!Designs}, so only
    the per-run state is new). *)

type info = {
  name : string;         (** Display name, e.g. ["Yukta: HW SSV+OS SSV"]. *)
  abbrev : string;       (** Column-width tag, e.g. ["HWssv+OSssv"]. *)
  key : string;          (** Canonical CLI key, e.g. ["yukta"]. *)
  aliases : string list; (** Extra keys that keep parsing. *)
  description : string;
  citation : string;     (** Where the paper defines it, e.g. ["Table IV(d)"]. *)
  layers : string list;  (** Layer labels in stepping order. *)
}

val all : info list
(** Registered schemes, in the paper's presentation order. *)

val find : string -> info option
(** Look up by key or alias (exact), or by abbreviation, display name
    or key case-insensitively. *)

val find_exn : string -> info
(** @raise Invalid_argument with the list of valid keys. *)

val stack : info -> Stack.t
(** A fresh stack for the entry. SSV/LQG schemes use the default
    {!Designs} (synthesized on first use, then memoized). *)

val run :
  ?max_time:float ->
  ?collect_trace:bool ->
  ?sensor_period:float ->
  ?epoch:float ->
  ?injector:Board.Xu3.injector ->
  info ->
  Board.Workload.t list ->
  Stack.result
(** [Stack.run] on a fresh {!stack} (same optional arguments). *)

(** {1 Layer and stack builders}

    The pieces the bench harness composes for sensitivity studies, and
    the constructors behind the registered entries. *)

val hw_ssv_layer : Design.synthesis -> Layer.t
(** The Table II hardware layer around an (e.g. variant) synthesis. *)

val sw_ssv_layer : Design.synthesis -> Layer.t
(** The Table III software layer. *)

val lqg_hw_layer : Controller.t -> Layer.t
val lqg_sw_layer : Controller.t -> Layer.t
val lqg_monolithic_layer : Controller.t -> Layer.t

val qos_layer : ?target_fps:float -> unit -> Layer.t
(** The demonstration third layer (Section III-D): a per-application
    QoS governor above the OS layer. A constant-target SSV-style
    compensator holds a frame-rate target by trading the application's
    quality knob (work per frame), reading the hardware frequency — its
    only view of the layers below — as an external signal. *)

val yukta_full_stack : Design.synthesis -> Design.synthesis -> Stack.t
(** Scheme (d) with explicit designs: HW under OS ([hw] last). *)

val hw_ssv_os_heuristic_stack : Design.synthesis -> Stack.t
(** Scheme (c) with an explicit hardware design: the SSV hardware layer
    under the coordinated OS scheduler heuristic — the single-SSV-layer
    arrangement the design-space sweep explores. *)

val yukta_no_externals_stack : Design.synthesis -> Design.synthesis -> Stack.t
(** Ablation: the same controllers with their external-signal channels
    fed the constant center value (the coordination channel cut). *)

val yukta_fixed_targets_stack : Design.synthesis -> Design.synthesis -> Stack.t
(** Ablation: optimizers replaced by their initial constant targets. *)

val fixed_targets_stack :
  hw_design:Design.synthesis ->
  sw_design:Design.synthesis ->
  hw_targets:Linalg.Vec.t ->
  sw_targets:Linalg.Vec.t ->
  Stack.t
(** The fixed-target mode of Sections VI-E1/VI-E3: both controllers
    track the given constant targets. *)
