(* Evaluation drivers: run schemes across the paper's suite and normalize
   to the Coordinated heuristic baseline, as every figure does. Rows are
   keyed by registry entries ({!Schemes.info}), so any registered scheme —
   including stacks of more than two layers — joins a suite unchanged. *)

type app_result = {
  app : string;
  scheme : Schemes.info;
  metrics : Board.Xu3.metrics;
  completed : bool;
  health : Obs.Health.t;
}

let run_app ?max_time scheme (name, workloads) =
  let t0 = if Obs.Collector.enabled () then Obs.Collector.now () else 0.0 in
  let r = Schemes.run ?max_time scheme workloads in
  let result =
    {
      app = name;
      scheme;
      metrics = r.Stack.metrics;
      completed = r.Stack.completed;
      health = r.Stack.health;
    }
  in
  if Obs.Collector.enabled () then
    Obs.Collector.record_span ~name:"experiment.app"
      ~dur_s:(Obs.Collector.now () -. t0)
      [
        ("app", Obs.Json.String name);
        ("scheme", Obs.Json.String scheme.Schemes.name);
        ("exd_js", Obs.Json.Float r.Stack.metrics.Board.Xu3.energy_delay);
        ( "execution_time_s",
          Obs.Json.Float r.Stack.metrics.Board.Xu3.execution_time );
      ];
  result

let suite_entries () =
  List.map
    (fun w -> (w.Board.Workload.name, [ w ]))
    Board.Workload.evaluation_suite

let mix_entries () = Board.Workload.mixes

(* Geometric-mean-free averaging as in the paper's bar charts: arithmetic
   mean of per-application normalized values. *)
let average = function
  | [] -> invalid_arg "Experiment.average: empty list"
  | xs -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)

type normalized_row = {
  name : string;
  exd : (Schemes.info * float) list;   (* Normalized E x D per scheme. *)
  time : (Schemes.info * float) list;  (* Normalized execution time. *)
  raw : (Schemes.info * app_result) list;  (* Un-normalized results. *)
}

(* Apply [f] to every grid cell, in order or fanned out to [pool]. Every
   cell is independent and deterministic (fresh stack, fresh board), so
   the two paths compute identical results; per-domain capture plus
   in-stream replay in input order makes the collector's trace stream
   identical too (modulo wall-clock span durations). The parallel path
   rides the pool's streaming [map_reduce]: each cell's captured trace
   lines are replayed the moment its slot folds, rather than after the
   whole grid has materialized. *)
let map_cells ?pool f cells =
  match pool with
  | None -> List.map f cells
  | Some p when Parallel.Pool.jobs p <= 1 -> List.map f cells
  | Some p ->
    List.rev
      (Parallel.Pool.map_reduce p
         ~map:(fun c -> Obs.Collector.capture (fun () -> f c))
         ~init:[]
         ~reduce:(fun acc (v, lines) ->
           Obs.Collector.replay lines;
           v :: acc)
         cells)

let parallel_active pool =
  match pool with None -> false | Some p -> Parallel.Pool.jobs p > 1

(* Chunk [xs] into rows of [k] (cells are flattened entry-major). *)
let rec group k xs =
  match xs with
  | [] -> []
  | xs ->
    let rec split n acc rest =
      if n = 0 then (List.rev acc, rest)
      else
        match rest with
        | x :: tl -> split (n - 1) (x :: acc) tl
        | [] -> invalid_arg "Experiment.group: ragged grid"
    in
    let row, rest = split k [] xs in
    row :: group k rest

(* Run [schemes] on every entry and normalize each metric to the first
   scheme in the list (the baseline). *)
let run_suite ?max_time ?pool ~schemes entries =
  let baseline =
    match schemes with
    | [] -> invalid_arg "Experiment.run_suite: no schemes"
    | s :: _ -> s
  in
  (* Single-force before fan-out: building each scheme's stack once in
     the coordinating domain warms every design memo the grid needs
     (Designs serializes forcing, but workers should not queue on it). *)
  if parallel_active pool then
    List.iter (fun s -> ignore (Schemes.stack s)) schemes;
  let cells =
    List.concat_map
      (fun entry -> List.map (fun s -> (entry, s)) schemes)
      entries
  in
  let results =
    map_cells ?pool (fun (entry, s) -> (s, run_app ?max_time s entry)) cells
  in
  List.map2
    (fun entry results ->
      let name = fst entry in
      let base = (List.assoc baseline results).metrics in
      let exd =
        List.map
          (fun (s, r) ->
            (s, r.metrics.Board.Xu3.energy_delay /. base.Board.Xu3.energy_delay))
          results
      in
      let time =
        List.map
          (fun (s, r) ->
            ( s,
              r.metrics.Board.Xu3.execution_time
              /. base.Board.Xu3.execution_time ))
          results
      in
      { name; exd; time; raw = results })
    entries
    (group (List.length schemes) results)

(* Suite averages in the figure-9 layout: SPEC average, PARSEC average,
   and overall average, computed on the normalized values. An empty
   subset (e.g. a reduced suite with no PARSEC entries) averages to nan,
   which the table printers render as a blank column. *)
let averages rows ~spec_names ~parsec_names ~value =
  let pick names =
    List.filter (fun r -> List.mem r.name names) rows
  in
  let avg_of rows_subset scheme =
    match rows_subset with
    | [] -> Float.nan
    | _ -> average (List.map (fun r -> List.assoc scheme (value r)) rows_subset)
  in
  fun scheme ->
    let sav = avg_of (pick spec_names) scheme in
    let pav = avg_of (pick parsec_names) scheme in
    let avg = avg_of rows scheme in
    (sav, pav, avg)

(* JSON rendering of a suite: per-app, per-scheme raw and normalized
   metrics in the shape bench's [--json] output embeds. *)
let row_json (r : normalized_row) =
  Obs.Json.Obj
    [
      ("app", Obs.Json.String r.name);
      ( "schemes",
        Obs.Json.Obj
          (List.map
             (fun ((s : Schemes.info), (a : app_result)) ->
               let m = a.metrics in
               ( s.Schemes.name,
                 Obs.Json.Obj
                   [
                     ("exd_norm", Obs.Json.Float (List.assoc s r.exd));
                     ("time_norm", Obs.Json.Float (List.assoc s r.time));
                     ("exd_js", Obs.Json.Float m.Board.Xu3.energy_delay);
                     ( "execution_time_s",
                       Obs.Json.Float m.Board.Xu3.execution_time );
                     ("energy_j", Obs.Json.Float m.Board.Xu3.total_energy);
                     ("trips", Obs.Json.Int m.Board.Xu3.trips);
                     ("completed", Obs.Json.Bool a.completed);
                   ] ))
             r.raw) );
    ]

(* Fleet health: fold every row's per-scheme health into one aggregate
   per scheme, always in row order — the fold is independent of how the
   cells were scheduled, so the block is byte-identical at any -j. *)
let suite_health_json rows =
  let schemes =
    match rows with [] -> [] | r :: _ -> List.map fst r.raw
  in
  Obs.Json.Obj
    (List.map
       (fun (s : Schemes.info) ->
         let merged = Obs.Health.create () in
         List.iter
           (fun r ->
             let a = List.assoc s r.raw in
             Obs.Health.merge_into ~into:merged a.health)
           rows;
         (s.Schemes.name, Obs.Health.to_json merged))
       schemes)

let suite_json rows =
  let schemes =
    match rows with [] -> [] | r :: _ -> List.map fst r.raw
  in
  let avg value scheme =
    match rows with
    | [] -> Float.nan
    | _ -> average (List.map (fun r -> List.assoc scheme (value r)) rows)
  in
  Obs.Json.Obj
    [
      ("rows", Obs.Json.List (List.map row_json rows));
      ( "averages",
        Obs.Json.Obj
          (List.map
             (fun (s : Schemes.info) ->
               ( s.Schemes.name,
                 Obs.Json.Obj
                   [
                     ("exd_norm", Obs.Json.Float (avg (fun r -> r.exd) s));
                     ("time_norm", Obs.Json.Float (avg (fun r -> r.time) s));
                   ] ))
             schemes) );
    ]
