(** A single resource-control layer — the unit {!Stack} composes.

    The paper's methodology (Section III) treats every layer the same
    way: once per epoch it samples the board, computes new settings for
    the inputs it owns, and actuates them; SSV/LQG layers additionally
    read other layers' current inputs as external signals and may carry
    a target-search optimizer. This module packages both species behind
    one value so the runtime composes any number of them:

    - {e heuristic} layers are (possibly stateful) decision procedures
      ([act]) — the Table IV baselines;
    - {e controlled} layers wrap a synthesized {!Controller} plus either
      an {!Optimizer} (retargeting every {!optimizer_interval} epochs on
      the measured E x D rate) or constant targets (the fixed-target
      modes of Sections VI-E1/VI-E3).

    Each layer declares its measurement and actuation surfaces (signal
    names) so stacks can be described and audited; both kinds emit one
    [runtime.decision] event per epoch when the Obs collector is on. *)

open Linalg

(** How a controlled layer obtains the targets it tracks. *)
type targets =
  | Optimized of Optimizer.t
      (** Retarget every {!optimizer_interval} epochs from the measured
          E x D rate (Section IV-D). *)
  | Fixed of Vec.t  (** Track these constant targets forever. *)

type t

val heuristic :
  label:string ->
  ?measures:string array ->
  ?actuates:string array ->
  ?reset:(unit -> unit) ->
  act:(Board.Xu3.t -> Board.Xu3.outputs -> unit) ->
  unit ->
  t
(** A decision-procedure layer. [reset] restores any internal state at
    the start of an execution (default: nothing). *)

val controlled :
  label:string ->
  ?measures:string array ->
  ?actuates:string array ->
  ?on_reset:(unit -> unit) ->
  ?cap_targets:(cap:float -> Vec.t -> Vec.t) ->
  controller:Controller.t ->
  targets:targets ->
  measure:(Board.Xu3.outputs -> Vec.t) ->
  externals:(Board.Xu3.t -> Vec.t) ->
  actuate:(Board.Xu3.t -> Vec.t -> unit) ->
  unit ->
  t
(** A controller-driven layer. [measure] extracts this layer's output
    vector from a board observation; [externals] reads the current
    values of its external signals (usually other layers' inputs, via
    the board); [actuate] applies the command vector. [on_reset] runs in
    addition to the controller/optimizer resets (e.g. to restore a
    layer-private knob).

    [cap_targets], if given, rewrites the epoch's target vector whenever
    {!step} receives an external power cap — e.g. scaling power-limit
    targets to the board's share of a rack budget. It must return a
    fresh vector (the incoming targets may be optimizer- or caller-owned
    state) and must be the identity for caps at or above the layer's
    uncapped budget, so cap-less runs stay bit-identical. *)

val label : t -> string

val measures : t -> string array
(** Declared measurement surface (signal names), for display/audit. *)

val actuates : t -> string array
(** Declared actuation surface (signal names). *)

val is_controlled : t -> bool

val controller : t -> Controller.t
(** The mounted controller of a controlled layer.
    @raise Invalid_argument on a heuristic layer. *)

val swap_controller : t -> Controller.t -> unit
(** Replace a controlled layer's controller mid-run (adaptive
    re-synthesis). The incoming controller receives a
    {!Controller.bumpless_from} transfer from the incumbent, so the
    layer's next actuation equals what the incumbent just commanded;
    its own dynamics take over from the following epoch. Only
    meaningful after the layer has stepped at least once.
    @raise Invalid_argument on a heuristic layer or on controller
    dimension mismatch. *)

val with_externals : t -> (Board.Xu3.t -> Vec.t) -> t
(** The same controlled layer with its external-signal wiring replaced
    (e.g. constant center values — the coordination-ablation channel
    cut). The controller and optimizer objects are shared with the
    original, so reset one stack at a time.
    @raise Invalid_argument on a heuristic layer. *)

val with_fixed_targets : t -> Vec.t -> t
(** The same controlled layer with its optimizer replaced by constant
    targets (the optimizer-ablation and fixed-target modes).
    @raise Invalid_argument on a heuristic layer. *)

val reset : t -> unit
(** Start-of-execution reset: controller state, optimizer, E x D
    tracker, epoch counter, and any layer-private state. *)

val step :
  ?health:Obs.Health.layer ->
  ?cap:float ->
  t ->
  Board.Xu3.t ->
  Board.Xu3.outputs ->
  unit
(** One epoch: sample, decide, actuate; emits a [runtime.decision]
    event when the Obs collector (or flight recorder) is on. With
    [?health], also feeds the layer's accumulator — one decision per
    epoch, with tracking error and saturation for controlled layers.
    Health feeding is pure observation: it cannot change the run.

    [?cap] is the external total-board-power cap active this epoch (a
    rack controller's per-board share). Controlled layers built with
    [cap_targets] rewrite their targets under it; heuristic layers
    ignore it and rely on the board's {!Board.Emergency} cap enforcement
    alone. Omitting [cap] is bit-identical to pre-cap behaviour. *)

val optimizer_interval : int
(** Epochs between optimizer retargets (the controller settles on each
    target set in between). *)

(** {1 Inter-layer wiring}

    Most external signals travel through the board itself (a layer
    actuates its inputs there; any other layer reads them back). A
    [Wire.t] carries a value the board does not hold — e.g. the OS
    layer's un-clamped placement decision consumed by the hardware
    heuristic the same epoch, or an application-level knob. The
    producing layer [set]s it during its step; consumers [get] it
    later in the stack order. *)
module Wire : sig
  type 'a wire

  val create : 'a -> 'a wire
  (** [create default] — [reset] restores [default]. *)

  val set : 'a wire -> 'a -> unit
  val get : 'a wire -> 'a
  val reset : 'a wire -> unit
end
