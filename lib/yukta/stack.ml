(* An N-layer control stack and the one stepping loop every execution
   mode shares. *)

open Board

type t = { label : string; layers : Layer.t list }

let make ?(label = "stack") layers =
  if layers = [] then invalid_arg "Stack.make: empty layer list";
  let labels = List.map Layer.label layers in
  if List.length (List.sort_uniq compare labels) <> List.length labels then
    invalid_arg
      (Printf.sprintf "Stack.make: duplicate layer labels in [%s]"
         (String.concat "; " labels));
  { label; layers }

let label t = t.label
let layers t = t.layers
let reset t = List.iter Layer.reset t.layers
let step ?cap t board o =
  List.iter (fun l -> Layer.step ?cap l board o) t.layers

let default_epoch = 0.5

type trace_point = {
  time : float;
  power_big : float;
  power_big_sensor : float;
  power_little : float;
  bips : float;
  temperature : float;
  freq_big : float;
  big_cores : int;
}

type result = {
  metrics : Xu3.metrics;
  completed : bool;
  trace : trace_point array;
  health : Obs.Health.t;
}

let trace_point board (o : Xu3.outputs) =
  let pb, pl = Xu3.true_power board in
  let eff = Xu3.effective_config board in
  {
    time = Xu3.time board;
    power_big = pb;
    power_big_sensor = o.Xu3.power_big;
    power_little = pl;
    bips = o.Xu3.bips;
    temperature = o.Xu3.temperature;
    freq_big = eff.Xu3.freq_big;
    big_cores = eff.Xu3.big_cores;
  }

let epochs_metric = Obs.Metrics.counter "runtime.epochs"

(* The per-epoch record is built once and drives both consumers: the
   in-memory [result.trace] array and the collector's event stream carry
   the same data by construction. The whole block is skipped — one
   branch, no allocation — when neither consumer is active. *)
let emit_epoch_event (p : trace_point) =
  Obs.Metrics.incr epochs_metric;
  Obs.Collector.event ~name:"runtime.epoch" ~sim:p.time (fun () ->
    [
      ("power_big", Obs.Json.Float p.power_big);
      ("power_big_sensor", Obs.Json.Float p.power_big_sensor);
      ("power_little", Obs.Json.Float p.power_little);
      ("bips", Obs.Json.Float p.bips);
      ("temperature", Obs.Json.Float p.temperature);
      ("freq_big", Obs.Json.Float p.freq_big);
      ("big_cores", Obs.Json.Int p.big_cores);
    ])

let record_epoch board o ~collect trace =
  if collect || Obs.Collector.observing () then begin
    let p = trace_point board o in
    if collect then trace := p :: !trace;
    if Obs.Collector.observing () then emit_epoch_event p
  end

(* The guardband channels every stack monitors: the evaluation's
   controller limits (Section V-A) against the board's emergency trip
   thresholds. *)
let health_channels health =
  (* Sequenced lets, not a tuple: creation order is output order. *)
  let pb =
    Obs.Health.channel health ~name:"power_big"
      ~limit:Hw_layer.power_limit_big ~trip:Emergency.power_trip_big
  in
  let pl =
    Obs.Health.channel health ~name:"power_little"
      ~limit:Hw_layer.power_limit_little ~trip:Emergency.power_trip_little
  in
  let temp =
    Obs.Health.channel health ~name:"temperature" ~limit:Hw_layer.temp_limit
      ~trip:Emergency.thermal_trip
  in
  (pb, pl, temp)

(* The single stepping loop, reified: every execution mode — the batch
   [run] below, the serving sessions, the benches — advances epochs
   through the same [step_epoch], so a session that hosts a stepper is
   bit-identical to a batch run of the same stack by construction. *)
type stepper = {
  s_stack : t;
  board : Xu3.t;
  epoch : float;
  cap_stream : (float -> float option) option;
  health : Obs.Health.t;
  hlayers : Obs.Health.layer list;
  ch_pb : Obs.Health.channel;
  ch_pl : Obs.Health.channel;
  ch_temp : Obs.Health.channel;
  mutable last_time : float;
  mutable last_trips : int;
  mutable epochs : int;
}

let stepper ?sensor_period ?(epoch = default_epoch) ?injector ?cap t workloads
    =
  if not (epoch > 0.0) then
    invalid_arg "Stack.stepper: epoch must be positive";
  let board = Xu3.create ?sensor_period ?injector workloads in
  reset t;
  (* Health monitoring is always on: it is pure observation of
     simulated-time data (true power/temperature, trip counts, the
     controllers' own step buffers), so it cannot perturb the run. *)
  let health = Obs.Health.create () in
  let hlayers =
    List.map (fun l -> Obs.Health.layer health (Layer.label l)) t.layers
  in
  let ch_pb, ch_pl, ch_temp = health_channels health in
  {
    s_stack = t;
    board;
    epoch;
    cap_stream = cap;
    health;
    hlayers;
    ch_pb;
    ch_pl;
    ch_temp;
    last_time = Xu3.time board;
    last_trips = Xu3.trip_count board;
    epochs = 0;
  }

let board s = s.board
let stack s = s.s_stack
let health s = s.health
let time s = Xu3.time s.board
let finished s = Xu3.finished s.board
let epoch_count s = s.epochs

let step_epoch s =
  if Xu3.finished s.board then None
  else begin
    (* Sample the cap stream at epoch start: the value governs both the
       board's emergency enforcement during the epoch and the layers'
       target rewrites after it. Cap-less runs never touch the board. *)
    let cap_now =
      match s.cap_stream with
      | None -> None
      | Some stream ->
        let c = stream (Xu3.time s.board) in
        Xu3.set_power_cap s.board c;
        c
    in
    let o = Xu3.run_epoch s.board s.epoch in
    List.iter2
      (fun l hl -> Layer.step ~health:hl ?cap:cap_now l s.board o)
      s.s_stack.layers s.hlayers;
    let now = Xu3.time s.board in
    let dt = now -. s.last_time in
    s.last_time <- now;
    let pb, pl = Xu3.true_power s.board in
    Obs.Health.observe_channel s.ch_pb ~value:pb ~dt;
    Obs.Health.observe_channel s.ch_pl ~value:pl ~dt;
    Obs.Health.observe_channel s.ch_temp ~value:(Xu3.temperature s.board) ~dt;
    Obs.Health.note_epoch s.health ~dt;
    let trips = Xu3.trip_count s.board in
    Obs.Health.note_trips s.health (trips - s.last_trips);
    s.last_trips <- trips;
    s.epochs <- s.epochs + 1;
    Some o
  end

let complete_event s =
  if Obs.Collector.observing () then begin
    let m = Xu3.metrics s.board in
    Obs.Collector.event ~name:"runtime.run_complete" ~sim:(Xu3.time s.board)
      (fun () ->
        [
          ("stack", Obs.Json.String s.s_stack.label);
          ("layers", Obs.Json.Int (List.length s.s_stack.layers));
          ("execution_time_s", Obs.Json.Float m.Xu3.execution_time);
          ("energy_j", Obs.Json.Float m.Xu3.total_energy);
          ("energy_delay_js", Obs.Json.Float m.Xu3.energy_delay);
          ("trips", Obs.Json.Int m.Xu3.trips);
          ("completed", Obs.Json.Bool (Xu3.finished s.board));
        ])
  end

let result_of_stepper s ~trace =
  {
    metrics = Xu3.metrics s.board;
    completed = Xu3.finished s.board;
    trace = Array.of_list (List.rev trace);
    health = s.health;
  }

let run ?(max_time = 3000.0) ?(collect_trace = false) ?sensor_period ?epoch
    ?injector ?cap t workloads =
  let s = stepper ?sensor_period ?epoch ?injector ?cap t workloads in
  let trace = ref [] in
  let continue = ref true in
  while !continue && Xu3.time s.board < max_time do
    match step_epoch s with
    | None -> continue := false
    | Some o -> record_epoch s.board o ~collect:collect_trace trace
  done;
  complete_event s;
  result_of_stepper s ~trace:!trace
