(** An N-layer control stack: the multilayer runtime of Figures 4, 5
    and 7, generalized from the paper's HW+OS prototype to any number
    of {!Layer}s.

    Every 500 ms (the power-sensor-limited invocation period of Section
    V-A) the stack steps its layers {e in declared order} against the
    same board observation: each layer samples, decides and actuates
    before the next runs, so a lower layer sees the settings a higher
    layer just applied (the paper steps the OS layer before the
    hardware layer). External signals travel through the board itself —
    a layer actuates its inputs there and any other layer reads them
    back — or through a {!Layer.Wire} for values the board does not
    hold.

    This module owns the single stepping loop every execution mode
    shares: scheme runs, ablations, fixed-target studies and sensor
    sweeps are all stacks, differing only in their layer lists. *)

type t

val make : ?label:string -> Layer.t list -> t
(** [make layers] — stepped first-to-last each epoch.
    @raise Invalid_argument on an empty list or duplicate labels. *)

val label : t -> string

val layers : t -> Layer.t list
(** In stepping order. *)

val reset : t -> unit
(** Reset every layer (start of an execution). *)

val step : ?cap:float -> t -> Board.Xu3.t -> Board.Xu3.outputs -> unit
(** One epoch: step every layer in declared order. [?cap] is the
    external total-power cap active this epoch, forwarded to every
    {!Layer.step}; the caller is responsible for also imposing it on
    the board ({!Board.Xu3.set_power_cap}) — {!run} does both. *)

val default_epoch : float
(** The default invocation period, seconds (0.5 — the power-sensor-
    limited period of Section V-A). Override per run with [run ?epoch]. *)

type trace_point = {
  time : float;
  power_big : float;          (** True instantaneous big-cluster power. *)
  power_big_sensor : float;   (** What the 260 ms sensor reported. *)
  power_little : float;
  bips : float;
  temperature : float;
  freq_big : float;           (** Effective (post-emergency) frequency. *)
  big_cores : int;
}

type result = {
  metrics : Board.Xu3.metrics;
  completed : bool;
  trace : trace_point array;  (** Per-epoch; empty unless requested. *)
  health : Obs.Health.t;      (** Always-on controller-health monitors:
                                  per-layer tracking error/saturation,
                                  guardband channels, trip counts. Pure
                                  observation — it never perturbs the
                                  run. *)
}

(** {1 Incremental stepping}

    The stepping loop, reified as a value: a [stepper] owns a fresh
    board and advances it one epoch per {!step_epoch} call, doing
    exactly what one iteration of {!run}'s loop does — cap sampling,
    layer stepping, health feeding. {!run} itself is implemented on a
    stepper, so any driver that hosts one (a serving session, a bench)
    produces bit-identical decisions to a batch run of the same stack
    by construction. *)

type stepper

val stepper :
  ?sensor_period:float ->
  ?epoch:float ->
  ?injector:Board.Xu3.injector ->
  ?cap:(float -> float option) ->
  t ->
  Board.Workload.t list ->
  stepper
(** Create a board for [workloads], reset the stack and bind the two.
    Options as in {!run}. The stack is reset here — mounting one stack
    on two live steppers shares controller state and is an error.
    @raise Invalid_argument on a non-positive [epoch]. *)

val step_epoch : stepper -> Board.Xu3.outputs option
(** Advance one epoch; [None] once the workloads have finished (the
    caller owns any wall-clock or simulated-time budget — {!run} stops
    at [max_time]). Emits the usual [runtime.decision] / [runtime.epoch]
    events via the layers when the Obs collector is on. *)

val board : stepper -> Board.Xu3.t
val stack : stepper -> t
val health : stepper -> Obs.Health.t
val time : stepper -> float
(** Current simulated time. *)

val finished : stepper -> bool
val epoch_count : stepper -> int
(** Epochs stepped so far. *)

val complete_event : stepper -> unit
(** Emit the [runtime.run_complete] summary event (when observing);
    {!run} calls this once its loop exits. *)

val result_of_stepper : stepper -> trace:trace_point list -> result
(** Package the stepper's final state as a {!result}. [trace] is the
    caller-collected per-epoch list, newest first (as {!run} builds
    it); pass [[]] when not collecting. *)

val run :
  ?max_time:float ->
  ?collect_trace:bool ->
  ?sensor_period:float ->
  ?epoch:float ->
  ?injector:Board.Xu3.injector ->
  ?cap:(float -> float option) ->
  t ->
  Board.Workload.t list ->
  result
(** Run the stack to workload completion (or [max_time], default
    3000 s). [sensor_period] overrides the power-sensor refresh for the
    sensitivity ablation; [epoch] the stepping period (default
    {!default_epoch}; must be positive); [injector] attaches
    fault-injection hooks to the board (robustness campaigns). Emits
    per-epoch [runtime.epoch] events and a [runtime.run_complete]
    summary when the Obs collector is on.

    [cap] is a time-varying external power-cap stream: sampled at each
    epoch start with the current simulated time, the returned watts (or
    [None] for uncapped) are imposed on the board and forwarded to
    every layer's step. Not supplying [cap] is bit-identical to a
    cap-less build; so is a stream that always returns [None].
    @raise Invalid_argument on a non-positive [epoch]. *)
