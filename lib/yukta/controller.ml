open Linalg

(* The per-step buffers ([x]/[x_next] double buffer, [dy], [last_raw],
   [sx]/[sy] scratch, [out]) are all preallocated at [make]/[copy] time so
   a steady-state [step] allocates nothing. They are private to one [t];
   [copy] gives every buffer a fresh allocation (domain safety). *)
type t = {
  core : Control.Ss.t;
  inputs : Signal.input array;
  outputs : Signal.output array;
  externals : Signal.external_signal array;
  mutable x : Vec.t;
  mutable x_next : Vec.t;
  dy : Vec.t;
  last_raw : Vec.t;
  sx : Vec.t;
  sy : Vec.t;
  out : Vec.t;
  (* One-step output hold installed by [bumpless_from]: the next [step]
     advances state normally but emits exactly these (raw, quantized)
     commands, making the first post-swap actuation equal the last
     pre-swap one by construction. *)
  mutable hold : (Vec.t * Vec.t) option;
}

let make ~controller ~inputs ~outputs ~externals =
  let n_meas = Array.length outputs + Array.length externals in
  if Control.Ss.inputs controller <> n_meas then
    invalid_arg "Controller.make: controller inputs <> outputs + externals";
  if Control.Ss.outputs controller <> Array.length inputs then
    invalid_arg "Controller.make: controller outputs <> layer inputs";
  (match controller.Control.Ss.domain with
  | Control.Ss.Discrete _ -> ()
  | Control.Ss.Continuous ->
    invalid_arg "Controller.make: runtime controller must be discrete");
  let n = Control.Ss.order controller in
  let ni = Array.length inputs in
  {
    core = controller;
    inputs;
    outputs;
    externals;
    x = Vec.create n;
    x_next = Vec.create n;
    dy = Vec.create n_meas;
    last_raw = Vec.create ni;
    sx = Vec.create n;
    sy = Vec.create ni;
    out = Vec.create ni;
    hold = None;
  }

let reset t =
  Array.fill t.x 0 (Vec.dim t.x) 0.0;
  t.hold <- None

(* A private state copy over the shared (immutable) core and signal
   specs. Memoized designs hand out one [t] per process; every stack
   must copy it so concurrently running stacks never share [x] or any
   of the step buffers. *)
let copy t =
  let n = Control.Ss.order t.core in
  let ni = Array.length t.inputs in
  {
    t with
    x = Vec.create n;
    x_next = Vec.create n;
    dy = Vec.create (Vec.dim t.dy);
    last_raw = Vec.create ni;
    sx = Vec.create n;
    sy = Vec.create ni;
    out = Vec.create ni;
    hold = None;
  }

let step t ~measurements ~targets ~externals =
  if Vec.dim measurements <> Array.length t.outputs then
    invalid_arg "Controller.step: measurement dimension mismatch";
  if Vec.dim targets <> Array.length t.outputs then
    invalid_arg "Controller.step: target dimension mismatch";
  if Vec.dim externals <> Array.length t.externals then
    invalid_arg "Controller.step: external dimension mismatch";
  (* dy = [normalized output deviations; normalized externals]. *)
  let no = Array.length t.outputs in
  for i = 0 to no - 1 do
    t.dy.(i) <-
      (measurements.(i) -. targets.(i)) /. Signal.half_span_output t.outputs.(i)
  done;
  for i = 0 to Array.length t.externals - 1 do
    t.dy.(no + i) <- Signal.normalize_external t.externals.(i) externals.(i)
  done;
  Control.Ss.step_into t.core ~x:t.x ~u:t.dy ~x_next:t.x_next ~y:t.last_raw
    ~sx:t.sx ~sy:t.sy;
  let xt = t.x in
  t.x <- t.x_next;
  t.x_next <- xt;
  for i = 0 to Array.length t.inputs - 1 do
    let inp = t.inputs.(i) in
    let raw = Signal.denormalize_input inp t.last_raw.(i) in
    t.out.(i) <- Control.Quantize.project inp.Signal.channel raw
  done;
  (match t.hold with
  | Some (raw, out) ->
    Array.blit raw 0 t.last_raw 0 (Vec.dim t.last_raw);
    Array.blit out 0 t.out 0 (Vec.dim t.out);
    t.hold <- None
  | None -> ());
  t.out

(* Bumpless transfer (hand-off between two controllers mid-run): align
   the incoming controller's state so its raw command at the hand-off
   operating point reproduces the outgoing controller's last raw
   command — solve C x = u_raw_old - D dy_old in (ridge-regularized)
   least squares; the regularizer keeps the solve well-posed when C is
   wide (more states than commands, the usual case) and picks the
   near-minimum-norm alignment. The residual quantization-level bump is
   removed exactly by a one-step output hold of the outgoing
   controller's last commands, so the first post-swap actuation equals
   the last pre-swap actuation by construction while the new state
   advances under the real dynamics from step one. *)
let bumpless_from t ~from =
  if Array.length t.inputs <> Array.length from.inputs then
    invalid_arg "Controller.bumpless_from: command dimension mismatch";
  if Vec.dim t.dy <> Vec.dim from.dy then
    invalid_arg "Controller.bumpless_from: measurement dimension mismatch";
  let ni = Array.length t.inputs in
  let n = Control.Ss.order t.core in
  let dd = Mat.mul_vec t.core.Control.Ss.d from.dy in
  let rhs = Vec.create (ni + n) in
  for i = 0 to ni - 1 do
    rhs.(i) <- from.last_raw.(i) -. dd.(i)
  done;
  let aug = Mat.vcat t.core.Control.Ss.c (Mat.scalar n (Float.sqrt 1e-6)) in
  let x0 = Qr.solve_least_squares aug rhs in
  Array.blit x0 0 t.x 0 n;
  Array.blit from.dy 0 t.dy 0 (Vec.dim t.dy);
  t.hold <- Some (Vec.copy from.last_raw, Vec.copy from.out)

let last_raw_command t = Vec.copy t.last_raw

(* Health-path accessors: read the step buffers in place (valid until
   the next [step]), so feeding a monitor allocates nothing. *)

let last_tracking_error t =
  let no = Array.length t.outputs in
  if no = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to no - 1 do
      acc := !acc +. (t.dy.(i) *. t.dy.(i))
    done;
    Float.sqrt (!acc /. Float.of_int no)
  end

let saturation_eps = 1e-9

let last_saturated t =
  let sat = ref false in
  for i = 0 to Vec.dim t.last_raw - 1 do
    if Float.abs t.last_raw.(i) >= 1.0 -. saturation_eps then sat := true
  done;
  !sat

let order t = Control.Ss.order t.core

let period t =
  match t.core.Control.Ss.domain with
  | Control.Ss.Discrete p -> p
  | Control.Ss.Continuous -> assert false

type cost = {
  states : int;
  inputs : int;
  outputs_and_externals : int;
  multiply_accumulates : int;
  storage_bytes : int;
}

(* Equations 3-4 need (N + I) x (N + O + E) multiply-accumulates for the
   combined [A B; C D] map, and the same number of 32-bit coefficients
   plus the state vector. *)
let cost t =
  let n = Control.Ss.order t.core in
  let i = Array.length t.inputs in
  let oe = Array.length t.outputs + Array.length t.externals in
  let mac = (n + i) * (n + oe) in
  {
    states = n;
    inputs = i;
    outputs_and_externals = oe;
    multiply_accumulates = mac;
    storage_bytes = 4 * (mac + n);
  }

let internal t = t.core
