open Linalg

(* The per-step buffers ([x]/[x_next] double buffer, [dy], [last_raw],
   [sx]/[sy] scratch, [out]) are all preallocated at [make]/[copy] time so
   a steady-state [step] allocates nothing. They are private to one [t];
   [copy] gives every buffer a fresh allocation (domain safety). *)
type t = {
  core : Control.Ss.t;
  inputs : Signal.input array;
  outputs : Signal.output array;
  externals : Signal.external_signal array;
  mutable x : Vec.t;
  mutable x_next : Vec.t;
  dy : Vec.t;
  last_raw : Vec.t;
  sx : Vec.t;
  sy : Vec.t;
  out : Vec.t;
}

let make ~controller ~inputs ~outputs ~externals =
  let n_meas = Array.length outputs + Array.length externals in
  if Control.Ss.inputs controller <> n_meas then
    invalid_arg "Controller.make: controller inputs <> outputs + externals";
  if Control.Ss.outputs controller <> Array.length inputs then
    invalid_arg "Controller.make: controller outputs <> layer inputs";
  (match controller.Control.Ss.domain with
  | Control.Ss.Discrete _ -> ()
  | Control.Ss.Continuous ->
    invalid_arg "Controller.make: runtime controller must be discrete");
  let n = Control.Ss.order controller in
  let ni = Array.length inputs in
  {
    core = controller;
    inputs;
    outputs;
    externals;
    x = Vec.create n;
    x_next = Vec.create n;
    dy = Vec.create n_meas;
    last_raw = Vec.create ni;
    sx = Vec.create n;
    sy = Vec.create ni;
    out = Vec.create ni;
  }

let reset t = Array.fill t.x 0 (Vec.dim t.x) 0.0

(* A private state copy over the shared (immutable) core and signal
   specs. Memoized designs hand out one [t] per process; every stack
   must copy it so concurrently running stacks never share [x] or any
   of the step buffers. *)
let copy t =
  let n = Control.Ss.order t.core in
  let ni = Array.length t.inputs in
  {
    t with
    x = Vec.create n;
    x_next = Vec.create n;
    dy = Vec.create (Vec.dim t.dy);
    last_raw = Vec.create ni;
    sx = Vec.create n;
    sy = Vec.create ni;
    out = Vec.create ni;
  }

let step t ~measurements ~targets ~externals =
  if Vec.dim measurements <> Array.length t.outputs then
    invalid_arg "Controller.step: measurement dimension mismatch";
  if Vec.dim targets <> Array.length t.outputs then
    invalid_arg "Controller.step: target dimension mismatch";
  if Vec.dim externals <> Array.length t.externals then
    invalid_arg "Controller.step: external dimension mismatch";
  (* dy = [normalized output deviations; normalized externals]. *)
  let no = Array.length t.outputs in
  for i = 0 to no - 1 do
    t.dy.(i) <-
      (measurements.(i) -. targets.(i)) /. Signal.half_span_output t.outputs.(i)
  done;
  for i = 0 to Array.length t.externals - 1 do
    t.dy.(no + i) <- Signal.normalize_external t.externals.(i) externals.(i)
  done;
  Control.Ss.step_into t.core ~x:t.x ~u:t.dy ~x_next:t.x_next ~y:t.last_raw
    ~sx:t.sx ~sy:t.sy;
  let xt = t.x in
  t.x <- t.x_next;
  t.x_next <- xt;
  for i = 0 to Array.length t.inputs - 1 do
    let inp = t.inputs.(i) in
    let raw = Signal.denormalize_input inp t.last_raw.(i) in
    t.out.(i) <- Control.Quantize.project inp.Signal.channel raw
  done;
  t.out

let last_raw_command t = Vec.copy t.last_raw

(* Health-path accessors: read the step buffers in place (valid until
   the next [step]), so feeding a monitor allocates nothing. *)

let last_tracking_error t =
  let no = Array.length t.outputs in
  if no = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to no - 1 do
      acc := !acc +. (t.dy.(i) *. t.dy.(i))
    done;
    Float.sqrt (!acc /. Float.of_int no)
  end

let saturation_eps = 1e-9

let last_saturated t =
  let sat = ref false in
  for i = 0 to Vec.dim t.last_raw - 1 do
    if Float.abs t.last_raw.(i) >= 1.0 -. saturation_eps then sat := true
  done;
  !sat

let order t = Control.Ss.order t.core

let period t =
  match t.core.Control.Ss.domain with
  | Control.Ss.Discrete p -> p
  | Control.Ss.Continuous -> assert false

type cost = {
  states : int;
  inputs : int;
  outputs_and_externals : int;
  multiply_accumulates : int;
  storage_bytes : int;
}

(* Equations 3-4 need (N + I) x (N + O + E) multiply-accumulates for the
   combined [A B; C D] map, and the same number of 32-bit coefficients
   plus the state vector. *)
let cost t =
  let n = Control.Ss.order t.core in
  let i = Array.length t.inputs in
  let oe = Array.length t.outputs + Array.length t.externals in
  let mac = (n + i) * (n + oe) in
  {
    states = n;
    inputs = i;
    outputs_and_externals = oe;
    multiply_accumulates = mac;
    storage_bytes = 4 * (mac + n);
  }

let internal t = t.core
