open Linalg

type t = {
  core : Control.Ss.t;
  inputs : Signal.input array;
  outputs : Signal.output array;
  externals : Signal.external_signal array;
  mutable x : Vec.t;
  mutable last_raw : Vec.t;
}

let make ~controller ~inputs ~outputs ~externals =
  let n_meas = Array.length outputs + Array.length externals in
  if Control.Ss.inputs controller <> n_meas then
    invalid_arg "Controller.make: controller inputs <> outputs + externals";
  if Control.Ss.outputs controller <> Array.length inputs then
    invalid_arg "Controller.make: controller outputs <> layer inputs";
  (match controller.Control.Ss.domain with
  | Control.Ss.Discrete _ -> ()
  | Control.Ss.Continuous ->
    invalid_arg "Controller.make: runtime controller must be discrete");
  {
    core = controller;
    inputs;
    outputs;
    externals;
    x = Vec.create (Control.Ss.order controller);
    last_raw = Vec.create (Array.length inputs);
  }

let reset t = t.x <- Vec.create (Control.Ss.order t.core)

(* A private state copy over the shared (immutable) core and signal
   specs. Memoized designs hand out one [t] per process; every stack
   must copy it so concurrently running stacks never share [x]. *)
let copy t =
  {
    t with
    x = Vec.create (Control.Ss.order t.core);
    last_raw = Vec.create (Array.length t.inputs);
  }

let step t ~measurements ~targets ~externals =
  if Vec.dim measurements <> Array.length t.outputs then
    invalid_arg "Controller.step: measurement dimension mismatch";
  if Vec.dim targets <> Array.length t.outputs then
    invalid_arg "Controller.step: target dimension mismatch";
  if Vec.dim externals <> Array.length t.externals then
    invalid_arg "Controller.step: external dimension mismatch";
  (* dy = [normalized output deviations; normalized externals]. *)
  let deviations =
    Array.mapi
      (fun i o ->
        (measurements.(i) -. targets.(i)) /. Signal.half_span_output o)
      t.outputs
  in
  let ext_norm =
    Array.mapi (fun i e -> Signal.normalize_external e externals.(i)) t.externals
  in
  let dy = Vec.concat deviations ext_norm in
  let x_next, u_norm = Control.Ss.step t.core ~x:t.x ~u:dy in
  t.x <- x_next;
  t.last_raw <- u_norm;
  Array.mapi
    (fun i inp ->
      let raw = Signal.denormalize_input inp u_norm.(i) in
      Control.Quantize.project inp.Signal.channel raw)
    t.inputs

let last_raw_command t = Vec.copy t.last_raw

let order t = Control.Ss.order t.core

let period t =
  match t.core.Control.Ss.domain with
  | Control.Ss.Discrete p -> p
  | Control.Ss.Continuous -> assert false

type cost = {
  states : int;
  inputs : int;
  outputs_and_externals : int;
  multiply_accumulates : int;
  storage_bytes : int;
}

(* Equations 3-4 need (N + I) x (N + O + E) multiply-accumulates for the
   combined [A B; C D] map, and the same number of 32-bit coefficients
   plus the state vector. *)
let cost t =
  let n = Control.Ss.order t.core in
  let i = Array.length t.inputs in
  let oe = Array.length t.outputs + Array.length t.externals in
  let mac = (n + i) * (n + oe) in
  {
    states = n;
    inputs = i;
    outputs_and_externals = oe;
    multiply_accumulates = mac;
    storage_bytes = 4 * (mac + n);
  }

let internal t = t.core
