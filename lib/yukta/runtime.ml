(* Compatibility façade: the historical scheme variants, mapped onto
   the Layer/Stack/Schemes architecture. *)

type scheme =
  | Coordinated_heuristic
  | Decoupled_heuristic
  | Hw_ssv_os_heuristic
  | Hw_ssv_os_ssv
  | Lqg_decoupled
  | Lqg_monolithic

let key_of_scheme = function
  | Coordinated_heuristic -> "coord"
  | Decoupled_heuristic -> "decoupled"
  | Hw_ssv_os_heuristic -> "hw-ssv"
  | Hw_ssv_os_ssv -> "yukta"
  | Lqg_decoupled -> "lqg-dec"
  | Lqg_monolithic -> "lqg-mono"

let info s = Schemes.find_exn (key_of_scheme s)

let scheme_name s = (info s).Schemes.name

let all_schemes =
  [
    Coordinated_heuristic;
    Decoupled_heuristic;
    Hw_ssv_os_heuristic;
    Hw_ssv_os_ssv;
    Lqg_decoupled;
    Lqg_monolithic;
  ]

type trace_point = Stack.trace_point = {
  time : float;
  power_big : float;
  power_big_sensor : float;
  power_little : float;
  bips : float;
  temperature : float;
  freq_big : float;
  big_cores : int;
}

type result = Stack.result = {
  metrics : Board.Xu3.metrics;
  completed : bool;
  trace : trace_point array;
  health : Obs.Health.t;
}

let run ?max_time ?collect_trace ?sensor_period ?epoch ?injector scheme
    workloads =
  Schemes.run ?max_time ?collect_trace ?sensor_period ?epoch ?injector
    (info scheme) workloads

let run_fixed_targets ?max_time ?epoch ~hw_design ~sw_design ~hw_targets
    ~sw_targets workloads =
  let stack =
    Schemes.fixed_targets_stack ~hw_design ~sw_design ~hw_targets ~sw_targets
  in
  (Stack.run ?max_time ?epoch ~collect_trace:true stack workloads).trace
