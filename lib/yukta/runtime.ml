(* The multilayer runtime (Figures 4, 5 and 7).

   Every 500 ms (the power-sensor-limited invocation period of Section
   V-A) each layer's controller samples the board and actuates its own
   inputs; the SSV controllers additionally read the other layer's current
   inputs as external signals, and their optimizers retarget every few
   epochs from the measured E x D rate. *)

open Linalg
open Board

type scheme =
  | Coordinated_heuristic
  | Decoupled_heuristic
  | Hw_ssv_os_heuristic
  | Hw_ssv_os_ssv
  | Lqg_decoupled
  | Lqg_monolithic

let scheme_name = function
  | Coordinated_heuristic -> "Coordinated heuristic"
  | Decoupled_heuristic -> "Decoupled heuristic"
  | Hw_ssv_os_heuristic -> "Yukta: HW SSV+OS heuristic"
  | Hw_ssv_os_ssv -> "Yukta: HW SSV+OS SSV"
  | Lqg_decoupled -> "Decoupled HW LQG+OS LQG"
  | Lqg_monolithic -> "Monolithic LQG"

let all_schemes =
  [
    Coordinated_heuristic;
    Decoupled_heuristic;
    Hw_ssv_os_heuristic;
    Hw_ssv_os_ssv;
    Lqg_decoupled;
    Lqg_monolithic;
  ]

type trace_point = {
  time : float;
  power_big : float;         (* True instantaneous big-cluster power. *)
  power_big_sensor : float;
  power_little : float;
  bips : float;
  temperature : float;
  freq_big : float;
  big_cores : int;
}

type result = {
  metrics : Xu3.metrics;
  completed : bool;
  trace : trace_point array;
}

let epoch = 0.5

(* Retarget interval: the optimizer moves every few epochs so the
   controller has time to settle on each target set. *)
let optimizer_interval = 5

(* Exponentially averaged E x D rate: instantaneous power over squared
   performance is the per-epoch proxy for E x D (Section IV-D). *)
let exd_rate (o : Xu3.outputs) =
  (o.Xu3.power_big +. o.Xu3.power_little)
  /. (Float.max 0.2 o.Xu3.bips ** 2.0)

type exd_tracker = { mutable ema : float; mutable primed : bool }

let exd_tracker () = { ema = 0.0; primed = false }

let exd_update t o =
  let v = exd_rate o in
  if t.primed then t.ema <- (0.5 *. t.ema) +. (0.5 *. v)
  else begin
    t.ema <- v;
    t.primed <- true
  end;
  t.ema

(* One layer driven by an SSV (or LQG) controller plus optimizer. *)
type controlled_layer = {
  label : string;               (* "hw" / "sw" / "mono", for telemetry. *)
  controller : Controller.t;
  optimizer : Optimizer.t;
  tracker : exd_tracker;
  measurements : Xu3.outputs -> Vec.t;
  external_values : Xu3.t -> Vec.t;
  apply : Xu3.t -> Vec.t -> unit;
  mutable epoch_index : int;
}

let layer_reset l =
  Controller.reset l.controller;
  Optimizer.reset l.optimizer;
  l.tracker.ema <- 0.0;
  l.tracker.primed <- false;
  l.epoch_index <- 0

let floats_json v =
  Obs.Json.List (Array.to_list (Array.map (fun x -> Obs.Json.Float x) v))

let decisions_metric = Obs.Metrics.counter "runtime.decisions"

let layer_step l board o =
  l.epoch_index <- l.epoch_index + 1;
  let objective = exd_update l.tracker o in
  let meas = l.measurements o in
  let targets =
    if l.epoch_index mod optimizer_interval = 0 then
      Optimizer.update l.optimizer ~objective ~measurements:meas
    else Optimizer.targets l.optimizer
  in
  let u =
    Controller.step l.controller ~measurements:meas ~targets
      ~externals:(l.external_values board)
  in
  l.apply board u;
  if Obs.Collector.enabled () then begin
    (* The pre-quantization normalized command shows which inputs the
       controller drove into saturation this epoch. *)
    let raw = Controller.last_raw_command l.controller in
    let saturated =
      Array.fold_left
        (fun acc x -> if Float.abs x >= 1.0 -. 1e-9 then acc + 1 else acc)
        0 raw
    in
    Obs.Metrics.incr decisions_metric;
    Obs.Collector.event ~name:"runtime.decision" ~sim:(Xu3.time board)
      [
        ("layer", Obs.Json.String l.label);
        ("epoch", Obs.Json.Int l.epoch_index);
        ("objective_exd", Obs.Json.Float objective);
        ("measurements", floats_json meas);
        ("targets", floats_json targets);
        ("command", floats_json u);
        ("saturated_inputs", Obs.Json.Int saturated);
      ]
  end

let hw_ssv_layer (syn : Design.synthesis) =
  {
    label = "hw";
    controller = syn.Design.controller;
    optimizer = Hw_layer.make_optimizer ();
    tracker = exd_tracker ();
    measurements = Hw_layer.measurements;
    external_values =
      (fun board -> Hw_layer.externals_of_placement (Xu3.placement board));
    apply =
      (fun board u -> Xu3.set_config board (Hw_layer.config_of_command u));
    epoch_index = 0;
  }

let sw_ssv_layer (syn : Design.synthesis) =
  {
    label = "sw";
    controller = syn.Design.controller;
    optimizer = Sw_layer.make_optimizer ();
    tracker = exd_tracker ();
    measurements = Sw_layer.measurements;
    external_values =
      (fun board -> Sw_layer.externals_of_config (Xu3.config board));
    apply =
      (fun board u -> Xu3.set_placement board (Sw_layer.placement_of_command u));
    epoch_index = 0;
  }

let lqg_hw_layer controller =
  {
    label = "hw";
    controller;
    optimizer = Hw_layer.make_optimizer ();
    tracker = exd_tracker ();
    measurements = Hw_layer.measurements;
    external_values = (fun _ -> [||]);
    apply =
      (fun board u -> Xu3.set_config board (Hw_layer.config_of_command u));
    epoch_index = 0;
  }

let lqg_sw_layer controller =
  {
    label = "sw";
    controller;
    optimizer = Sw_layer.make_optimizer ();
    tracker = exd_tracker ();
    measurements = Sw_layer.measurements;
    external_values = (fun _ -> [||]);
    apply =
      (fun board u -> Xu3.set_placement board (Sw_layer.placement_of_command u));
    epoch_index = 0;
  }

let lqg_monolithic_layer controller =
  {
    label = "mono";
    controller;
    optimizer = Lqg_layer.monolithic_optimizer ();
    tracker = exd_tracker ();
    measurements = Lqg_layer.monolithic_measurements;
    external_values = (fun _ -> [||]);
    apply =
      (fun board u ->
        Xu3.set_config board (Hw_layer.config_of_command (Vec.slice u 0 4));
        Xu3.set_placement board
          (Sw_layer.placement_of_command (Vec.slice u 4 3)));
    epoch_index = 0;
  }

(* Per-epoch action of each scheme: heuristic layers are pure functions of
   the observation; controlled layers carry state. *)
type driver = {
  reset : unit -> unit;
  act : Xu3.t -> Xu3.outputs -> unit;
}

let coordinated_driver () =
  let st = Heuristics.coordinated_init () in
  {
    reset = (fun () -> st.Heuristics.tick <- 0);
    act =
      (fun board o ->
        let placement =
          Heuristics.os_coordinated ~config:(Xu3.config board) ~outputs:o
        in
        Xu3.set_placement board placement;
        let config =
          Heuristics.hw_coordinated ~state:st
            ~config:(Xu3.effective_config board)
            ~outputs:o ~placement ()
        in
        Xu3.set_config board config);
  }

let decoupled_driver () =
  let st = Heuristics.decoupled_init () in
  {
    reset = (fun () -> Heuristics.decoupled_reset st);
    act =
      (fun board o ->
        Xu3.set_placement board (Heuristics.os_round_robin ~outputs:o);
        Xu3.set_config board (Heuristics.hw_decoupled st ~outputs:o));
  }

let hw_ssv_os_heuristic_driver syn =
  let hw = hw_ssv_layer syn in
  {
    reset = (fun () -> layer_reset hw);
    act =
      (fun board o ->
        (* The OS heuristic of scheme (c) is the scheduler of the
           Coordinated heuristic (Table IV); the TMU-style core control
           lives in the hardware layer, which is the SSV controller
           here. *)
        let placement =
          Heuristics.os_coordinated ~config:(Xu3.config board) ~outputs:o
        in
        Xu3.set_placement board placement;
        layer_step hw board o);
  }

let yukta_full_driver hw_syn sw_syn =
  let hw = hw_ssv_layer hw_syn and sw = sw_ssv_layer sw_syn in
  {
    reset =
      (fun () ->
        layer_reset hw;
        layer_reset sw);
    act =
      (fun board o ->
        (* Both layers sample the same observation; each reads the other's
           current inputs as external signals. *)
        layer_step sw board o;
        layer_step hw board o);
  }

let lqg_decoupled_driver hw_ctrl sw_ctrl =
  let hw = lqg_hw_layer hw_ctrl and sw = lqg_sw_layer sw_ctrl in
  {
    reset =
      (fun () ->
        layer_reset hw;
        layer_reset sw);
    act =
      (fun board o ->
        layer_step sw board o;
        layer_step hw board o);
  }

let lqg_monolithic_driver ctrl =
  let mono = lqg_monolithic_layer ctrl in
  {
    reset = (fun () -> layer_reset mono);
    act = (fun board o -> layer_step mono board o);
  }

let driver_of_scheme = function
  | Coordinated_heuristic -> coordinated_driver ()
  | Decoupled_heuristic -> decoupled_driver ()
  | Hw_ssv_os_heuristic -> hw_ssv_os_heuristic_driver (Designs.hw ())
  | Hw_ssv_os_ssv -> yukta_full_driver (Designs.hw ()) (Designs.sw ())
  | Lqg_decoupled -> lqg_decoupled_driver (Designs.lqg_hw ()) (Designs.lqg_sw ())
  | Lqg_monolithic -> lqg_monolithic_driver (Designs.lqg_monolithic ())

let trace_point board (o : Xu3.outputs) =
  let pb, pl = Xu3.true_power board in
  let eff = Xu3.effective_config board in
  {
    time = Xu3.time board;
    power_big = pb;
    power_big_sensor = o.Xu3.power_big;
    power_little = pl;
    bips = o.Xu3.bips;
    temperature = o.Xu3.temperature;
    freq_big = eff.Xu3.freq_big;
    big_cores = eff.Xu3.big_cores;
  }

let epochs_metric = Obs.Metrics.counter "runtime.epochs"

(* The per-epoch record is built once and drives both consumers: the
   in-memory [result.trace] array and the collector's event stream carry
   the same data by construction (they used to be two separate code
   paths). The whole block is skipped — one branch, no allocation — when
   neither consumer is active. *)
let emit_epoch_event (p : trace_point) =
  Obs.Metrics.incr epochs_metric;
  Obs.Collector.event ~name:"runtime.epoch" ~sim:p.time
    [
      ("power_big", Obs.Json.Float p.power_big);
      ("power_big_sensor", Obs.Json.Float p.power_big_sensor);
      ("power_little", Obs.Json.Float p.power_little);
      ("bips", Obs.Json.Float p.bips);
      ("temperature", Obs.Json.Float p.temperature);
      ("freq_big", Obs.Json.Float p.freq_big);
      ("big_cores", Obs.Json.Int p.big_cores);
    ]

let record_epoch board o ~collect trace =
  if collect || Obs.Collector.enabled () then begin
    let p = trace_point board o in
    if collect then trace := p :: !trace;
    if Obs.Collector.enabled () then emit_epoch_event p
  end

let run_driver ?(max_time = 3000.0) ?(collect_trace = false) ?sensor_period
    driver workloads =
  let board = Xu3.create ?sensor_period workloads in
  driver.reset ();
  let trace = ref [] in
  while (not (Xu3.finished board)) && Xu3.time board < max_time do
    let o = Xu3.run_epoch board epoch in
    driver.act board o;
    record_epoch board o ~collect:collect_trace trace
  done;
  if Obs.Collector.enabled () then begin
    let m = Xu3.metrics board in
    Obs.Collector.event ~name:"runtime.run_complete" ~sim:(Xu3.time board)
      [
        ("execution_time_s", Obs.Json.Float m.Xu3.execution_time);
        ("energy_j", Obs.Json.Float m.Xu3.total_energy);
        ("energy_delay_js", Obs.Json.Float m.Xu3.energy_delay);
        ("trips", Obs.Json.Int m.Xu3.trips);
        ("completed", Obs.Json.Bool (Xu3.finished board));
      ]
  end;
  {
    metrics = Xu3.metrics board;
    completed = Xu3.finished board;
    trace = Array.of_list (List.rev !trace);
  }

let run ?max_time ?collect_trace ?sensor_period scheme workloads =
  run_driver ?max_time ?collect_trace ?sensor_period
    (driver_of_scheme scheme)
    workloads

(* Fixed-target mode (Sections VI-E1 and VI-E3): the optimizers are
   replaced by constant targets so tracking quality itself is visible. *)
let run_fixed_targets ?(max_time = 120.0) ~hw_design ~sw_design ~hw_targets
    ~sw_targets workloads =
  let hw : Design.synthesis = hw_design and sw : Design.synthesis = sw_design in
  Controller.reset hw.Design.controller;
  Controller.reset sw.Design.controller;
  let board = Xu3.create workloads in
  let trace = ref [] in
  while (not (Xu3.finished board)) && Xu3.time board < max_time do
    let o = Xu3.run_epoch board epoch in
    let u_sw =
      Controller.step sw.Design.controller
        ~measurements:(Sw_layer.measurements o) ~targets:sw_targets
        ~externals:(Sw_layer.externals_of_config (Xu3.config board))
    in
    Xu3.set_placement board (Sw_layer.placement_of_command u_sw);
    let u_hw =
      Controller.step hw.Design.controller
        ~measurements:(Hw_layer.measurements o) ~targets:hw_targets
        ~externals:(Hw_layer.externals_of_placement (Xu3.placement board))
    in
    Xu3.set_config board (Hw_layer.config_of_command u_hw);
    record_epoch board o ~collect:true trace
  done;
  Array.of_list (List.rev !trace)

(* ------------------------------------------------------------------ *)
(* Ablation drivers (DESIGN.md section 4)                              *)
(* ------------------------------------------------------------------ *)

(* Coordination value: the same SSV controllers with their external-signal
   channels fed the center value (no information flows between layers). *)
let yukta_full_no_externals_driver hw_syn sw_syn =
  let hw = hw_ssv_layer hw_syn and sw = sw_ssv_layer sw_syn in
  let hw_n = Array.length (Hw_layer.externals ()) in
  let sw_n = Array.length (Sw_layer.externals ()) in
  let hw_centers _ =
    Array.map
      (fun e ->
        let lo, hi = Signal.external_range e in
        (lo +. hi) /. 2.0)
      (Hw_layer.externals ())
  in
  let sw_centers _ =
    Array.map
      (fun e ->
        let lo, hi = Signal.external_range e in
        (lo +. hi) /. 2.0)
      (Sw_layer.externals ())
  in
  ignore hw_n;
  ignore sw_n;
  let hw = { hw with external_values = hw_centers } in
  let sw = { sw with external_values = sw_centers } in
  {
    reset =
      (fun () ->
        layer_reset hw;
        layer_reset sw);
    act =
      (fun board o ->
        layer_step sw board o;
        layer_step hw board o);
  }

(* Optimizer value: both controllers track their initial targets forever. *)
let yukta_full_fixed_targets_driver hw_syn sw_syn =
  let hw : Design.synthesis = hw_syn and sw : Design.synthesis = sw_syn in
  let hw_targets = Optimizer.targets (Hw_layer.make_optimizer ()) in
  let sw_targets = Optimizer.targets (Sw_layer.make_optimizer ()) in
  {
    reset =
      (fun () ->
        Controller.reset hw.Design.controller;
        Controller.reset sw.Design.controller);
    act =
      (fun board o ->
        let u_sw =
          Controller.step sw.Design.controller
            ~measurements:(Sw_layer.measurements o) ~targets:sw_targets
            ~externals:(Sw_layer.externals_of_config (Xu3.config board))
        in
        Xu3.set_placement board (Sw_layer.placement_of_command u_sw);
        let u_hw =
          Controller.step hw.Design.controller
            ~measurements:(Hw_layer.measurements o) ~targets:hw_targets
            ~externals:(Hw_layer.externals_of_placement (Xu3.placement board))
        in
        Xu3.set_config board (Hw_layer.config_of_command u_hw));
  }
