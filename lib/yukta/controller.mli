(** The runtime SSV controller state machine (Section VI-D).

    The synthesized controller is the discrete LTI system of Equations 3-4:

    [x(T+1) = A x(T) + B dy(T)]
    [u(T)   = C x(T) + D dy(T)]

    where [dy] stacks the output deviations from their targets and the
    external signals (all in the normalized design coordinates), and [u]
    is the vector of new input settings. This module wraps the normalized
    LTI core with the de/normalization and the per-channel projection onto
    each input's allowed discrete values, and reports the implementation
    cost figures the paper quotes (N = 20 states, ~700 fixed-point
    operations, ~2.6 KB for the hardware controller). *)

type t

val make :
  controller:Control.Ss.t ->
  inputs:Signal.input array ->
  outputs:Signal.output array ->
  externals:Signal.external_signal array ->
  t
(** Wrap a synthesized controller whose measurement vector is
    [[output deviations; externals]] and whose command vector matches
    [inputs]. @raise Invalid_argument on dimension mismatch. *)

val reset : t -> unit
(** Zero the controller state (start of an execution). *)

val copy : t -> t
(** A fresh controller over the same (immutable) LTI core and signal
    specs, with zeroed state. Memoized designs hand out a single shared
    instance per process; every stack copies the controllers it mounts,
    so two stacks — or two domains — never share the state vector. *)

val step :
  t ->
  measurements:Linalg.Vec.t ->
  targets:Linalg.Vec.t ->
  externals:Linalg.Vec.t ->
  Linalg.Vec.t
(** One control invocation: physical-unit measurements, targets and
    external values in; quantized physical-unit input settings out.
    The returned vector is a buffer owned by the controller and reused
    by the next [step] — copy it if you need it to survive. A
    steady-state invocation performs no allocation. *)

val bumpless_from : t -> from:t -> unit
(** Prepare [t] to take over from [from] mid-run without an actuation
    bump: [t]'s state is aligned (ridge least squares on [C x = u_raw -
    D dy] at [from]'s last operating point) and a one-step output hold
    of [from]'s last commands is installed, so [t]'s {e first} [step]
    emits exactly [from]'s last raw and quantized commands while the
    aligned state already advances under the new dynamics. Both
    controllers must share command and measurement dimensions; only
    meaningful when [from] has stepped at least once.
    @raise Invalid_argument on dimension mismatch. *)

val last_raw_command : t -> Linalg.Vec.t
(** The pre-quantization command of the last [step] (normalized units);
    exposed for the quantization-ablation bench. *)

val last_tracking_error : t -> float
(** RMS of the last [step]'s normalized output deviations (the first
    block of [dy]; externals excluded). Reads the step buffer in place
    — no allocation — and is only meaningful right after a [step]. *)

val last_saturated : t -> bool
(** Whether any pre-quantization command of the last [step] sat at a
    normalized rail ([|u| >= 1]). Same in-place, allocation-free
    contract as {!last_tracking_error}. *)

val order : t -> int

val period : t -> float

type cost = {
  states : int;
  inputs : int;
  outputs_and_externals : int;
  multiply_accumulates : int;  (** Per invocation; each is one multiply
                                   plus one add (the paper counts both,
                                   i.e. twice this figure). *)
  storage_bytes : int;         (** 32-bit fixed point as in the paper. *)
}

val cost : t -> cost

val internal : t -> Control.Ss.t
(** The normalized LTI core (for analysis and tests). *)
