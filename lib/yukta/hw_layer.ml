(* The hardware-layer controller specification of Table II. *)

open Linalg

(* The power/temperature limits used throughout the evaluation (Section
   V-A): just below the board's emergency trip thresholds. *)
let power_limit_big = 3.3

let power_limit_little = 0.33

let temp_limit = 79.0

let period = 0.5

(* Output ranges observed when characterizing the board with the training
   applications (Section IV-A): the deviation bounds are fractions of
   these ranges. *)
let perf_range = (0.0, 12.0)

let power_big_range = (0.0, 6.0)

let power_little_range = (0.0, 0.7)

let temp_range = (30.0, 95.0)

let inputs ?(weight = 1.0) () =
  [|
    Signal.input ~name:"big_cores" ~minimum:1.0 ~maximum:4.0 ~step:1.0 ~weight;
    Signal.input ~name:"little_cores" ~minimum:1.0 ~maximum:4.0 ~step:1.0
      ~weight;
    Signal.input ~name:"freq_big" ~minimum:0.2 ~maximum:2.0 ~step:0.1 ~weight;
    Signal.input ~name:"freq_little" ~minimum:0.2 ~maximum:1.4 ~step:0.1
      ~weight;
  |]

let outputs ?(perf_bound = 0.20) ?(critical_bound = 0.10) () =
  let lo_p, hi_p = perf_range in
  let lo_b, hi_b = power_big_range in
  let lo_l, hi_l = power_little_range in
  let lo_t, hi_t = temp_range in
  [|
    Signal.output ~name:"performance" ~lo:lo_p ~hi:hi_p
      ~bound_fraction:perf_bound ~integral:false ();
    Signal.output ~name:"power_big" ~lo:lo_b ~hi:hi_b
      ~bound_fraction:critical_bound ~critical:true ();
    Signal.output ~name:"power_little" ~lo:lo_l ~hi:hi_l
      ~bound_fraction:critical_bound ~critical:true ();
    Signal.output ~name:"temperature" ~lo:lo_t ~hi:hi_t
      ~bound_fraction:critical_bound ~critical:true ~integral:false ();
  |]

(* External signals: the three software-layer inputs (Table II), with
   their discrete values as exchanged through the interface. *)
let externals () =
  [|
    {
      Signal.name = "threads_big";
      info =
        Signal.From_input
          (Control.Quantize.make ~minimum:0.0 ~maximum:8.0 ~step:1.0);
    };
    {
      Signal.name = "tpc_big";
      info =
        Signal.From_input
          (Control.Quantize.make ~minimum:1.0 ~maximum:2.0 ~step:0.5);
    };
    {
      Signal.name = "tpc_little";
      info =
        Signal.From_input
          (Control.Quantize.make ~minimum:1.0 ~maximum:2.0 ~step:0.5);
    };
  |]

let spec ?(uncertainty = 0.40) ?(input_weight = 1.0) ?(perf_bound = 0.20)
    ?(critical_bound = 0.10) () =
  {
    Design.layer = "hardware";
    inputs = inputs ~weight:input_weight ();
    outputs = outputs ~perf_bound ~critical_bound ();
    externals = externals ();
    uncertainty;
    period;
  }

(* External rack caps: a board's uncapped budget is the sum of the two
   cluster power limits; a cap below it scales both power targets by the
   same fraction (temperature and performance targets are left to the
   controller). At or above the budget the rewrite is the identity —
   returning the argument itself keeps cap-less stacks bit-identical. *)
let board_power_budget = power_limit_big +. power_limit_little

let cap_targets ~cap (targets : Vec.t) =
  if cap >= board_power_budget then targets
  else begin
    let s = Float.max 0.05 (cap /. board_power_budget) in
    let t = Array.copy targets in
    t.(1) <- Float.min t.(1) (power_limit_big *. s);
    t.(2) <- Float.min t.(2) (power_limit_little *. s);
    t
  end

(* Optimizer roles (Section IV-D): maximize performance subject to the
   power and temperature caps. *)
let optimizer_roles =
  [|
    Optimizer.Maximize;
    Optimizer.Limited power_limit_big;
    Optimizer.Limited power_limit_little;
    Optimizer.Limited temp_limit;
  |]

let make_optimizer ?(perf_bound = 0.20) ?(critical_bound = 0.10) () =
  Optimizer.make ~outputs:(outputs ~perf_bound ~critical_bound ()) ~roles:optimizer_roles

(* Signal extraction from the board. *)

let measurements (o : Board.Xu3.outputs) =
  [| o.Board.Xu3.bips; o.power_big; o.power_little; o.temperature |]

let externals_of_placement (p : Board.Xu3.placement) =
  [| Float.of_int p.Board.Xu3.threads_big; p.tpc_big; p.tpc_little |]

let config_of_command (u : Vec.t) =
  {
    Board.Xu3.big_cores = int_of_float (Float.round u.(0));
    little_cores = int_of_float (Float.round u.(1));
    freq_big = u.(2);
    freq_little = u.(3);
  }

let command_of_config (c : Board.Xu3.config) =
  [|
    Float.of_int c.Board.Xu3.big_cores;
    Float.of_int c.little_cores;
    c.freq_big;
    c.freq_little;
  |]
