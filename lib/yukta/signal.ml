type input = {
  name : string;
  channel : Control.Quantize.channel;
  weight : float;
}

type output = {
  name : string;
  lo : float;
  hi : float;
  bound_fraction : float;
  critical : bool;
  integral : bool;
}

type external_info =
  | From_input of Control.Quantize.channel
  | From_output of { lo : float; hi : float; bound : float }
  | Opaque of { lo : float; hi : float }

type external_signal = { name : string; info : external_info }

let input ~name ~minimum ~maximum ~step ~weight =
  if weight <= 0.0 then invalid_arg "Signal.input: weight must be positive";
  { name; channel = Control.Quantize.make ~minimum ~maximum ~step; weight }

let output ~name ~lo ~hi ~bound_fraction ?(critical = false)
    ?(integral = true) () =
  if not (lo < hi) then invalid_arg "Signal.output: empty range";
  if bound_fraction <= 0.0 || bound_fraction > 1.0 then
    invalid_arg "Signal.output: bound_fraction must be in (0, 1]";
  { name; lo; hi; bound_fraction; critical; integral }

let bound_absolute o = o.bound_fraction *. (o.hi -. o.lo)

let center_input i =
  (i.channel.Control.Quantize.minimum +. i.channel.Control.Quantize.maximum)
  /. 2.0

let half_span_input i = Control.Quantize.span i.channel /. 2.0

let center_output o = (o.lo +. o.hi) /. 2.0

let half_span_output o = (o.hi -. o.lo) /. 2.0

let normalize_input i x = (x -. center_input i) /. half_span_input i

let denormalize_input i x = center_input i +. (x *. half_span_input i)

let normalize_output o x = (x -. center_output o) /. half_span_output o

let denormalize_output o x = center_output o +. (x *. half_span_output o)

let external_range e =
  match e.info with
  | From_input ch -> (ch.Control.Quantize.minimum, ch.Control.Quantize.maximum)
  | From_output { lo; hi; _ } -> (lo, hi)
  | Opaque { lo; hi } -> (lo, hi)

(* Inlined per-case (rather than via [external_range]) so the per-step
   hot path allocates no range tuple. *)
let normalize_external e x =
  let norm lo hi = (x -. ((lo +. hi) /. 2.0)) /. ((hi -. lo) /. 2.0) in
  match e.info with
  | From_input ch ->
    norm ch.Control.Quantize.minimum ch.Control.Quantize.maximum
  | From_output { lo; hi; _ } -> norm lo hi
  | Opaque { lo; hi } -> norm lo hi

let normalized_bound o = bound_absolute o /. half_span_output o

let quantization_uncertainty i =
  Control.Quantize.relative_uncertainty i.channel
