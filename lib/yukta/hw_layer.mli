(** The hardware-layer controller specification (Table II).

    Inputs: number of big/little cores (1-4) and the two cluster
    frequencies (DVFS grids), all with weight 1. Outputs: total
    performance (+-20% bound) and the three critical signals — big/little
    cluster power and hot-spot temperature (+-10% bounds). External
    signals: the three software-layer inputs. Guardband: +-40%.

    Goal: minimize E x D subject to
    [Power_big < 3.3 W], [Power_little < 0.33 W], [Temp < 79 C]
    (the limits sit just below the board's emergency trip thresholds,
    Section V-A). *)

val power_limit_big : float
val power_limit_little : float
val temp_limit : float

val period : float
(** 0.5 s — the power-sensor-limited invocation period. *)

val perf_range : float * float
(** Output ranges observed during board characterization; deviation
    bounds are fractions of these. *)

val power_big_range : float * float
val power_little_range : float * float
val temp_range : float * float

val inputs : ?weight:float -> unit -> Signal.input array
(** The four Table II inputs ([weight] defaults to the paper's 1). *)

val outputs :
  ?perf_bound:float -> ?critical_bound:float -> unit -> Signal.output array
(** The four Table II outputs (default bounds +-20% / +-10%). *)

val externals : unit -> Signal.external_signal array
(** The three software-layer inputs, with their discrete values as
    exchanged through the Figure 3 interface. *)

val spec :
  ?uncertainty:float ->
  ?input_weight:float ->
  ?perf_bound:float ->
  ?critical_bound:float ->
  unit ->
  Design.spec
(** The full layer specification; the optional arguments are the knobs the
    Section VI-E sensitivity studies turn. *)

val board_power_budget : float
(** The board's uncapped total power budget:
    [power_limit_big + power_limit_little]. A rack cap at or above this
    changes nothing; below it, {!cap_targets} scales proportionally. *)

val cap_targets : cap:float -> Linalg.Vec.t -> Linalg.Vec.t
(** Target rewrite under an external total-power cap, for
    [Layer.controlled ~cap_targets]: both power targets are clamped to
    their limit scaled by [cap / board_power_budget] (floored at 5%).
    Identity — the very same vector — for [cap >= board_power_budget]. *)

val optimizer_roles : Optimizer.role array
(** Maximize performance; power and temperature capped at the limits. *)

val make_optimizer :
  ?perf_bound:float -> ?critical_bound:float -> unit -> Optimizer.t

(** {1 Board signal plumbing} *)

val measurements : Board.Xu3.outputs -> Linalg.Vec.t
(** [perf; power_big; power_little; temperature] from a board sample. *)

val externals_of_placement : Board.Xu3.placement -> Linalg.Vec.t

val config_of_command : Linalg.Vec.t -> Board.Xu3.config
(** Interpret a (quantized) controller command as a board configuration. *)

val command_of_config : Board.Xu3.config -> Linalg.Vec.t
