(* The scheme registry: every named layer composition (Table IV, the
   Section VI-B LQG arrangements, the three-layer demo) with the
   metadata every consumer prints, plus the layer/stack builders the
   bench harness reuses for sensitivity studies. *)

open Linalg
open Board

(* ------------------------------------------------------------------ *)
(* Layer builders                                                      *)
(* ------------------------------------------------------------------ *)

let input_names inputs =
  Array.map (fun (i : Signal.input) -> i.Signal.name) inputs

let output_names outputs =
  Array.map (fun (o : Signal.output) -> o.Signal.name) outputs

(* Memoized designs share one Controller.t per process; every layer
   mounts a copy so concurrently running stacks never share the
   controller's state vector (see {!Controller.copy}). *)

let hw_ssv_layer (syn : Design.synthesis) =
  Layer.controlled ~label:"hw"
    ~measures:(output_names (Hw_layer.outputs ()))
    ~actuates:(input_names (Hw_layer.inputs ()))
    ~cap_targets:Hw_layer.cap_targets
    ~controller:(Controller.copy syn.Design.controller)
    ~targets:(Layer.Optimized (Hw_layer.make_optimizer ()))
    ~measure:Hw_layer.measurements
    ~externals:(fun board ->
      Hw_layer.externals_of_placement (Xu3.placement board))
    ~actuate:(fun board u ->
      Xu3.set_config board (Hw_layer.config_of_command u))
    ()

let sw_ssv_layer (syn : Design.synthesis) =
  Layer.controlled ~label:"sw"
    ~measures:(output_names (Sw_layer.outputs ()))
    ~actuates:(input_names (Sw_layer.inputs ()))
    ~controller:(Controller.copy syn.Design.controller)
    ~targets:(Layer.Optimized (Sw_layer.make_optimizer ()))
    ~measure:Sw_layer.measurements
    ~externals:(fun board -> Sw_layer.externals_of_config (Xu3.config board))
    ~actuate:(fun board u ->
      Xu3.set_placement board (Sw_layer.placement_of_command u))
    ()

let lqg_hw_layer controller =
  Layer.controlled ~label:"hw"
    ~measures:(output_names (Hw_layer.outputs ()))
    ~actuates:(input_names (Hw_layer.inputs ()))
    ~cap_targets:Hw_layer.cap_targets
    ~controller:(Controller.copy controller)
    ~targets:(Layer.Optimized (Hw_layer.make_optimizer ()))
    ~measure:Hw_layer.measurements
    ~externals:(fun _ -> [||])
    ~actuate:(fun board u ->
      Xu3.set_config board (Hw_layer.config_of_command u))
    ()

let lqg_sw_layer controller =
  Layer.controlled ~label:"sw"
    ~measures:(output_names (Sw_layer.outputs ()))
    ~actuates:(input_names (Sw_layer.inputs ()))
    ~controller:(Controller.copy controller)
    ~targets:(Layer.Optimized (Sw_layer.make_optimizer ()))
    ~measure:Sw_layer.measurements
    ~externals:(fun _ -> [||])
    ~actuate:(fun board u ->
      Xu3.set_placement board (Sw_layer.placement_of_command u))
    ()

let lqg_monolithic_layer controller =
  Layer.controlled ~label:"mono"
    ~measures:(output_names (Lqg_layer.monolithic_outputs ()))
    ~actuates:(input_names (Lqg_layer.monolithic_inputs ()))
    ~controller:(Controller.copy controller)
    ~targets:(Layer.Optimized (Lqg_layer.monolithic_optimizer ()))
    ~measure:Lqg_layer.monolithic_measurements
    ~externals:(fun _ -> [||])
    ~actuate:(fun board u ->
      Xu3.set_config board (Hw_layer.config_of_command (Vec.slice u 0 4));
      Xu3.set_placement board
        (Sw_layer.placement_of_command (Vec.slice u 4 3)))
    ()

(* The Table IV OS scheduler as a layer of its own: schemes (a) and (c)
   run it above their hardware layer. *)
let os_coordinated_layer ?placement_wire () =
  Layer.heuristic ~label:"os"
    ~measures:[| "bips_big"; "bips_little"; "threads_active" |]
    ~actuates:(input_names (Sw_layer.inputs ()))
    ~reset:(fun () ->
      match placement_wire with Some w -> Layer.Wire.reset w | None -> ())
    ~act:(fun board o ->
      let placement =
        Heuristics.os_coordinated ~config:(Xu3.config board) ~outputs:o
      in
      (match placement_wire with
      | Some w -> Layer.Wire.set w (Some placement)
      | None -> ());
      Xu3.set_placement board placement)
    ()

(* The demonstration third layer: a per-application QoS governor above
   the OS. Work per frame is proportional to the quality level; the
   measured frame rate is the board's throughput over that cost. A
   hand-built leaky-integral compensator (the constant-target SSV
   option of Section III-D) trades quality for the frame target,
   reading the hardware frequency — its only view of the layers
   below — as an external signal. *)
let qos_quality_default = 3.0

let qos_ginst_per_frame quality = 0.04 +. (0.05 *. quality)

let qos_layer ?(target_fps = 30.0) () =
  let quality = ref qos_quality_default in
  let quality_knob =
    Signal.input ~name:"quality" ~minimum:1.0 ~maximum:5.0 ~step:0.5
      ~weight:1.0
  in
  let fps_output =
    Signal.output ~name:"fps" ~lo:0.0 ~hi:120.0 ~bound_fraction:0.1 ()
  in
  let freq_external =
    {
      Signal.name = "freq_big";
      info =
        Signal.From_input
          (Control.Quantize.make ~minimum:0.2 ~maximum:2.0 ~step:0.1);
    }
  in
  (* x(T+1) = 0.9 x + 0.25 dfps; u = x + 0.4 dfps + 0.05 freq: an
     integrating compensator with direct feedthrough. The loop gain is
     negative (higher quality costs more work per frame, so the frame
     rate falls), so a positive compensator gain closes a stable
     negative-feedback loop around the frame target. *)
  let core =
    Control.Ss.make ~domain:(Control.Ss.Discrete 0.5)
      ~a:(Mat.of_lists [ [ 0.9 ] ])
      ~b:(Mat.of_lists [ [ 0.25; 0.0 ] ])
      ~c:(Mat.of_lists [ [ 1.0 ] ])
      ~d:(Mat.of_lists [ [ 0.4; 0.05 ] ])
      ()
  in
  let controller =
    Controller.make ~controller:core ~inputs:[| quality_knob |]
      ~outputs:[| fps_output |] ~externals:[| freq_external |]
  in
  Layer.controlled ~label:"qos" ~measures:[| "fps" |]
    ~actuates:[| "quality" |]
    ~on_reset:(fun () -> quality := qos_quality_default)
    ~controller
    ~targets:(Layer.Fixed [| target_fps |])
    ~measure:(fun o ->
      [| o.Xu3.bips /. qos_ginst_per_frame !quality |])
    ~externals:(fun board ->
      [| (Xu3.effective_config board).Xu3.freq_big |])
    ~actuate:(fun _board u -> quality := u.(0))
    ()

(* ------------------------------------------------------------------ *)
(* Stack builders                                                      *)
(* ------------------------------------------------------------------ *)

let coordinated_stack () =
  (* The hardware heuristic consumes the OS layer's un-clamped placement
     decision the same epoch; the board only stores the clamped one, so
     the layers share a wire. *)
  let wire = Layer.Wire.create None in
  let st = Heuristics.coordinated_init () in
  let hw =
    Layer.heuristic ~label:"hw"
      ~measures:[| "power_big"; "power_little"; "temperature" |]
      ~actuates:(input_names (Hw_layer.inputs ()))
      ~reset:(fun () -> st.Heuristics.tick <- 0)
      ~act:(fun board o ->
        let placement =
          match Layer.Wire.get wire with
          | Some p -> p
          | None -> Xu3.placement board
        in
        let config =
          Heuristics.hw_coordinated ~state:st
            ~config:(Xu3.effective_config board)
            ~outputs:o ~placement ()
        in
        Xu3.set_config board config)
      ()
  in
  Stack.make ~label:"coordinated"
    [ os_coordinated_layer ~placement_wire:wire (); hw ]

let decoupled_stack () =
  let st = Heuristics.decoupled_init () in
  let os =
    Layer.heuristic ~label:"os" ~measures:[| "threads_active" |]
      ~actuates:(input_names (Sw_layer.inputs ()))
      ~act:(fun board o ->
        Xu3.set_placement board (Heuristics.os_round_robin ~outputs:o))
      ()
  in
  let hw =
    Layer.heuristic ~label:"hw"
      ~measures:[| "power_big"; "power_little"; "temperature" |]
      ~actuates:(input_names (Hw_layer.inputs ()))
      ~reset:(fun () -> Heuristics.decoupled_reset st)
      ~act:(fun board o ->
        Xu3.set_config board (Heuristics.hw_decoupled st ~outputs:o))
      ()
  in
  Stack.make ~label:"decoupled" [ os; hw ]

let hw_ssv_os_heuristic_stack syn =
  (* The OS heuristic of scheme (c) is the scheduler of the Coordinated
     heuristic (Table IV); the TMU-style core control lives in the
     hardware layer, which is the SSV controller here. *)
  Stack.make ~label:"hw-ssv"
    [ os_coordinated_layer (); hw_ssv_layer syn ]

let yukta_full_stack hw_syn sw_syn =
  (* Both layers sample the same observation; each reads the other's
     current inputs as external signals through the board. *)
  Stack.make ~label:"yukta" [ sw_ssv_layer sw_syn; hw_ssv_layer hw_syn ]

let lqg_decoupled_stack hw_ctrl sw_ctrl =
  Stack.make ~label:"lqg-dec" [ lqg_sw_layer sw_ctrl; lqg_hw_layer hw_ctrl ]

let lqg_monolithic_stack ctrl =
  Stack.make ~label:"lqg-mono" [ lqg_monolithic_layer ctrl ]

let three_layer_stack () =
  Stack.make ~label:"three-layer"
    [
      qos_layer ();
      sw_ssv_layer (Designs.sw ());
      hw_ssv_layer (Designs.hw ());
    ]

(* Coordination-value ablation: the same SSV controllers with their
   external-signal channels fed the constant center value (no
   information flows between layers). *)
let externals_centers externs =
  let centers =
    Array.map
      (fun e ->
        let lo, hi = Signal.external_range e in
        (lo +. hi) /. 2.0)
      externs
  in
  fun _board -> centers

let yukta_no_externals_stack hw_syn sw_syn =
  Stack.make ~label:"yukta-no-externals"
    [
      Layer.with_externals (sw_ssv_layer sw_syn)
        (externals_centers (Sw_layer.externals ()));
      Layer.with_externals (hw_ssv_layer hw_syn)
        (externals_centers (Hw_layer.externals ()));
    ]

(* Optimizer-value ablation: both controllers track their initial
   targets forever. *)
let yukta_fixed_targets_stack hw_syn sw_syn =
  Stack.make ~label:"yukta-fixed-targets"
    [
      Layer.with_fixed_targets (sw_ssv_layer sw_syn)
        (Optimizer.targets (Sw_layer.make_optimizer ()));
      Layer.with_fixed_targets (hw_ssv_layer hw_syn)
        (Optimizer.targets (Hw_layer.make_optimizer ()));
    ]

let fixed_targets_stack ~hw_design ~sw_design ~hw_targets ~sw_targets =
  Stack.make ~label:"fixed-targets"
    [
      Layer.with_fixed_targets (sw_ssv_layer sw_design) sw_targets;
      Layer.with_fixed_targets (hw_ssv_layer hw_design) hw_targets;
    ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type info = {
  name : string;
  abbrev : string;
  key : string;
  aliases : string list;
  description : string;
  citation : string;
  layers : string list;
}

let table : (info * (unit -> Stack.t)) list =
  [
    ( {
        name = "Coordinated heuristic";
        abbrev = "CoordHeur";
        key = "coord";
        aliases = [ "coordinated" ];
        description =
          "HMP-style OS scheduler over a vendor hardware ladder with \
           worst-case margins (the evaluation baseline)";
        citation = "Table IV(a)";
        layers = [ "os"; "hw" ];
      },
      coordinated_stack );
    ( {
        name = "Decoupled heuristic";
        abbrev = "DecHeur";
        key = "decoupled";
        aliases = [ "dec" ];
        description =
          "Round-robin OS placement over a performance-governor hardware \
           layer; no coordination";
        citation = "Table IV(b)";
        layers = [ "os"; "hw" ];
      },
      decoupled_stack );
    ( {
        name = "Yukta: HW SSV+OS heuristic";
        abbrev = "HWssv+OSheur";
        key = "hw-ssv";
        aliases = [ "hwssv" ];
        description =
          "SSV hardware controller under the coordinated OS scheduler";
        citation = "Table IV(c)";
        layers = [ "os"; "hw" ];
      },
      fun () -> hw_ssv_os_heuristic_stack (Designs.hw ()) );
    ( {
        name = "Yukta: HW SSV+OS SSV";
        abbrev = "HWssv+OSssv";
        key = "yukta";
        aliases = [ "yukta-full"; "ssv" ];
        description =
          "The full Yukta design: coordinated SSV controllers in both \
           layers, external signals exchanged each epoch";
        citation = "Table IV(d)";
        layers = [ "sw"; "hw" ];
      },
      fun () -> yukta_full_stack (Designs.hw ()) (Designs.sw ()) );
    ( {
        name = "Decoupled HW LQG+OS LQG";
        abbrev = "DecLQG";
        key = "lqg-dec";
        aliases = [ "lqg-decoupled" ];
        description =
          "Independent per-layer LQG controllers; no external-signal \
           channels";
        citation = "Section VI-B";
        layers = [ "sw"; "hw" ];
      },
      fun () -> lqg_decoupled_stack (Designs.lqg_hw ()) (Designs.lqg_sw ()) );
    ( {
        name = "Monolithic LQG";
        abbrev = "MonoLQG";
        key = "lqg-mono";
        aliases = [ "lqg-monolithic" ];
        description = "One LQG controller over both layers' signals";
        citation = "Section VI-B";
        layers = [ "mono" ];
      },
      fun () -> lqg_monolithic_stack (Designs.lqg_monolithic ()) );
    ( {
        name = "QoS+Yukta (3 layers)";
        abbrev = "QoS+SSV^2";
        key = "three-layer";
        aliases = [ "3layer"; "qos" ];
        description =
          "A per-application QoS frame-rate governor above the full \
           two-layer Yukta stack: three coordinated layers";
        citation = "Section III-D";
        layers = [ "qos"; "sw"; "hw" ];
      },
      three_layer_stack );
  ]

let all = List.map fst table

let find key =
  let lower = String.lowercase_ascii key in
  let matches (i, _) =
    i.key = key
    || List.mem key i.aliases
    || String.lowercase_ascii i.key = lower
    || String.lowercase_ascii i.abbrev = lower
    || String.lowercase_ascii i.name = lower
  in
  match List.find_opt matches table with
  | Some (i, _) -> Some i
  | None -> None

let find_exn key =
  match find key with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Schemes.find_exn: unknown scheme %S (one of: %s)" key
         (String.concat ", " (List.map (fun i -> i.key) all)))

let stack info =
  match List.find_opt (fun (i, _) -> i.key = info.key) table with
  | Some (_, build) -> build ()
  | None ->
    invalid_arg
      (Printf.sprintf "Schemes.stack: %S is not a registered scheme"
         info.key)

let run ?max_time ?collect_trace ?sensor_period ?epoch ?injector info
    workloads =
  Stack.run ?max_time ?collect_trace ?sensor_period ?epoch ?injector
    (stack info) workloads
