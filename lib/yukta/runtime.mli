(** Compatibility façade over the {!Layer}/{!Stack}/{!Schemes}
    architecture.

    The original runtime hardwired the two-layer prototype: one
    stepping loop per execution mode, one driver per scheme. All of
    that now lives in {!Stack} (the one loop) and {!Schemes} (the
    registry and builders); this module keeps the historical variant
    API for existing callers. New code should consume the registry
    directly. *)

type scheme =
  | Coordinated_heuristic   (** Table IV(a) — the evaluation baseline. *)
  | Decoupled_heuristic     (** Table IV(b). *)
  | Hw_ssv_os_heuristic     (** Table IV(c): Yukta HW SSV + OS heuristic. *)
  | Hw_ssv_os_ssv           (** Table IV(d): the full Yukta design. *)
  | Lqg_decoupled           (** Section VI-B: per-layer LQG, no channels. *)
  | Lqg_monolithic          (** Section VI-B: one LQG over both layers. *)

val info : scheme -> Schemes.info
(** The registry entry behind a variant. *)

val scheme_name : scheme -> string
(** [(info s).Schemes.name]. *)

val all_schemes : scheme list
(** The six two-layer schemes, in the registry's order. The registry
    ({!Schemes.all}) may list more — e.g. the three-layer demo — that
    have no variant here. *)

type trace_point = Stack.trace_point = {
  time : float;
  power_big : float;          (** True instantaneous big-cluster power. *)
  power_big_sensor : float;   (** What the 260 ms sensor reported. *)
  power_little : float;
  bips : float;
  temperature : float;
  freq_big : float;           (** Effective (post-emergency) frequency. *)
  big_cores : int;
}

type result = Stack.result = {
  metrics : Board.Xu3.metrics;
  completed : bool;
  trace : trace_point array;  (** Per-epoch; empty unless requested. *)
  health : Obs.Health.t;      (** Always-on health monitors (see
                                  {!Stack.result}). *)
}

val run :
  ?max_time:float ->
  ?collect_trace:bool ->
  ?sensor_period:float ->
  ?epoch:float ->
  ?injector:Board.Xu3.injector ->
  scheme ->
  Board.Workload.t list ->
  result
(** [Schemes.run] on the variant's registry entry (same optional
    arguments, including the stepping [epoch] and fault [injector]). *)

val run_fixed_targets :
  ?max_time:float ->
  ?epoch:float ->
  hw_design:Design.synthesis ->
  sw_design:Design.synthesis ->
  hw_targets:Linalg.Vec.t ->
  sw_targets:Linalg.Vec.t ->
  Board.Workload.t list ->
  trace_point array
(** The fixed-target mode of Sections VI-E1/VI-E3: both controllers track
    the given constant targets; returns the per-epoch trace.
    [Schemes.fixed_targets_stack] under [Stack.run ~collect_trace]. *)
