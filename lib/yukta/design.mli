(** The per-layer SSV controller design pipeline (Figure 3, right side).

    Given a layer specification (signals, bounds, weights, guardband) and
    input/output records from training runs, the pipeline:

    + normalizes all signals to the design coordinates,
    + identifies a 4th-order MIMO polynomial model (Box-Jenkins style) and
      realizes it as a state-space system,
    + assembles the generalized plant of the Delta-N representation
      (Figure 2): a multiplicative output-uncertainty block sized by the
      {e uncertainty guardband}, an input block sized by each input's
      {e quantization}, and a fictitious performance block enforcing the
      designer's {e output deviation bounds} against unit references and
      disturbances, with the {e input weights} penalizing actuator effort,
    + runs D-K iteration (mu-synthesis) and wraps the winning controller
      in the runtime state machine.

    [mu_peak <= 1] certifies the requested guardband/bounds combination;
    when [mu_peak > 1] the guarantees hold scaled by [mu_peak] (the
    [SSV(N, Delta, B, W)] scaling argument of Section II-C), which
    {!field-guaranteed_bounds} reports per output. *)

type spec = {
  layer : string;
  inputs : Signal.input array;
  outputs : Signal.output array;
  externals : Signal.external_signal array;
  uncertainty : float;  (** Guardband, e.g. 0.40 for +-40%. *)
  period : float;       (** Controller invocation period, seconds. *)
}

val validate_spec : spec -> unit

val stabilize : Control.Ss.t -> Control.Ss.t
(** Shrink a marginally unstable identified model's dynamics just
    inside the unit circle (spectral radius scaled to 0.99 when at or
    above 0.995): synthesis needs a stabilizable nominal model, and the
    guardband absorbs the small modelling lie. Identity on comfortably
    stable models. Online re-identification uses this on RLS models
    before re-synthesis, exactly as {!identify} does on batch fits. *)

val normalize_records :
  spec ->
  u:Linalg.Vec.t array ->
  y:Linalg.Vec.t array ->
  Linalg.Vec.t array * Linalg.Vec.t array
(** Physical-unit records (u rows are [inputs; externals]) to design
    coordinates. *)

val identify :
  ?order:int -> spec -> u:Linalg.Vec.t array -> y:Linalg.Vec.t array -> Control.Ss.t
(** Identify the layer model from {e physical-unit} training records
    (default polynomial order 4, as in the paper). The returned model is
    discrete at [spec.period], in normalized coordinates, inputs ordered
    [controlled inputs; externals]; its dynamics are nudged inside the unit
    circle if the raw fit is unstable. *)

val generalized_plant :
  ?ignore_quantization:bool ->
  spec ->
  model:Control.Ss.t ->
  Control.Hinf.plant * Control.Ssv.structure
(** The Delta-N generalized plant and its block structure
    [[Delta_model; Delta_in; Delta_perf]]. With [ignore_quantization] the
    Delta_in block is collapsed to epsilon — the continuous-unbounded
    input assumption of the non-SSV designs (used by the ablation). *)

type synthesis = {
  controller : Controller.t;
  mu_peak : float;       (** Certified SSV upper bound across frequency. *)
  gamma : float;         (** H-infinity level of the winning K-step. *)
  guaranteed_bounds : float array;
      (** Achieved absolute deviation bound per output:
          [mu_peak * designer bound] (equal to the designer's bound when
          [mu_peak <= 1]). *)
  model : Control.Ss.t;
}

val synthesize :
  ?dk_iterations:int ->
  ?mu_points:int ->
  ?reduce_order:int ->
  ?ignore_quantization:bool ->
  spec ->
  model:Control.Ss.t ->
  synthesis
(** Run mu-synthesis (default 3 D-K iterations) and wrap the result.
    [reduce_order] balance-truncates the controller toward a hardware
    state budget (Section VI-D); the reduction is kept only when the
    reduced closed loop stays stable with a certificate no more than 10%
    worse.
    @raise Control.Dk.Synthesis_failed when no stabilizing design exists. *)

val design :
  ?order:int ->
  ?dk_iterations:int ->
  ?reduce_order:int ->
  spec ->
  u:Linalg.Vec.t array ->
  y:Linalg.Vec.t array ->
  synthesis
(** [identify] followed by [synthesize]: the whole Figure 3 right column. *)
