open Linalg
open Control

type spec = {
  layer : string;
  inputs : Signal.input array;
  outputs : Signal.output array;
  externals : Signal.external_signal array;
  uncertainty : float;
  period : float;
}

let validate_spec spec =
  if Array.length spec.inputs = 0 then
    invalid_arg "Design: a layer needs at least one input";
  if Array.length spec.outputs = 0 then
    invalid_arg "Design: a layer needs at least one output";
  if spec.uncertainty <= 0.0 then
    invalid_arg "Design: guardband must be positive";
  if spec.period <= 0.0 then invalid_arg "Design: period must be positive"

let normalize_records spec ~u ~y =
  let nu = Array.length spec.inputs and ne = Array.length spec.externals in
  let u_norm =
    Array.map
      (fun row ->
        if Vec.dim row <> nu + ne then
          invalid_arg "Design.normalize_records: u row dimension mismatch";
        Vec.init (nu + ne) (fun i ->
            if i < nu then Signal.normalize_input spec.inputs.(i) row.(i)
            else Signal.normalize_external spec.externals.(i - nu) row.(i)))
      u
  in
  let y_norm =
    Array.map
      (fun row ->
        if Vec.dim row <> Array.length spec.outputs then
          invalid_arg "Design.normalize_records: y row dimension mismatch";
        Array.mapi
          (fun i v -> Signal.normalize_output spec.outputs.(i) v)
          row)
      y
  in
  (u_norm, y_norm)

(* Shrink the state dynamics just inside the unit circle when the raw
   identification returns a marginally unstable fit: controller synthesis
   needs a stabilizable nominal model, and the guardband absorbs the
   (small) modelling lie. *)
let stabilize model =
  let rho = Eig.spectral_radius model.Ss.a in
  if rho < 0.995 then model
  else { model with Ss.a = Mat.scale (0.99 /. rho) model.Ss.a }

let identify ?(order = 4) spec ~u ~y =
  validate_spec spec;
  let t0 = if Obs.Collector.enabled () then Obs.Collector.now () else 0.0 in
  let u_norm, y_norm = normalize_records spec ~u ~y in
  let bj =
    Sysid.Boxjenkins.fit ~na:order ~nb:order ~u:u_norm ~y:y_norm ()
  in
  let model =
    stabilize (Sysid.Arx.to_ss bj.Sysid.Boxjenkins.plant ~period:spec.period)
  in
  if Obs.Collector.enabled () then
    Obs.Collector.record_span ~name:"design.identify"
      ~dur_s:(Obs.Collector.now () -. t0)
      [
        ("layer", Obs.Json.String spec.layer);
        ("order", Obs.Json.Int order);
        ("samples", Obs.Json.Int (Array.length u));
      ];
  model

(* Performance weight dynamics: each tracking-error channel is filtered by
   hf * (z - zero) / (z - pole): the high-frequency gain [hf] below 1
   accepts bound-sized transients (any loop has sensitivity ~1 at high
   frequency), while the dc gain hf*(1-zero)/(1-pole) = 6 demands
   near-offset-free tracking. Outputs marked non-integral get a static
   weight (zero = pole). *)
let weight_pole = 0.995

let weight_zero o = if o.Signal.integral then 0.93 else weight_pole

let weight_hf = 0.45

let generalized_plant ?(ignore_quantization = false) spec ~model =
  validate_spec spec;
  let nu = Array.length spec.inputs in
  let ne = Array.length spec.externals in
  let no = Array.length spec.outputs in
  if Ss.inputs model <> nu + ne then
    invalid_arg "Design.generalized_plant: model inputs <> inputs + externals";
  if Ss.outputs model <> no then
    invalid_arg "Design.generalized_plant: model outputs mismatch";
  let n = Ss.order model in
  let bu = Mat.sub_matrix model.Ss.b 0 0 n nu in
  let be = Mat.sub_matrix model.Ss.b 0 nu n ne in
  let c = model.Ss.c in
  let du = Mat.sub_matrix model.Ss.d 0 0 no nu in
  let de = Mat.sub_matrix model.Ss.d 0 nu no ne in
  let dg = spec.uncertainty in
  let dq =
    if ignore_quantization then
      (* The LQG-style assumption of Section VI-B: inputs are continuous
         and unbounded, so no Delta_in energy is budgeted. A tiny epsilon
         keeps D12 full rank. *)
      Mat.scalar (Array.length spec.inputs) 1e-4
    else Mat.diag (Array.map Signal.quantization_uncertainty spec.inputs)
  in
  let w_e =
    Mat.diag
      (Array.map
         (fun o -> weight_hf /. Signal.normalized_bound o)
         spec.outputs)
  in
  (* The designer's input weights are expressed in "paper units" (1 for
     the hardware layer, 2 for the software layer); one paper unit maps to
     0.4 in the normalized loop, the scale at which weight 1 gives the
     modest-speed no-oscillation response of Figure 17. *)
  let w_u =
    Mat.diag (Array.map (fun i -> 0.4 *. i.Signal.weight) spec.inputs)
  in
  let zer r cl = Mat.create r cl in
  let ine = Mat.identity ne and ino = Mat.identity no in
  (* The error in physical (normalized) coordinates, as a function of the
     exogenous channels and u: err = C x + [I Du -I De] w + Du u. *)
  let err_d = Mat.blocks [ [ ino; du; Mat.neg ino; de; du ] ] in
  (* Augmented state: [x; x_w] with one weight state per output,
     x_w' = pole * x_w + err. *)
  let a_aug =
    Mat.blocks
      [ [ model.Ss.a; zer n no ]; [ c; Mat.scalar no weight_pole ] ]
  in
  (* Inputs of P: [w_unc(no); w_q(nu); r(no); e(ne); u(nu)]. *)
  let b_aug =
    Mat.vcat (Mat.blocks [ [ zer n no; bu; zer n no; be; bu ] ]) err_d
  in
  (* z_e = W_e (diag(pole - zero_i) x_w + err). *)
  let wdiff =
    Mat.diag
      (Array.map (fun o -> weight_pole -. weight_zero o) spec.outputs)
  in
  (* Outputs of P: [z_unc(no); z_q(nu); z_e(no); z_u(nu); err(no); e(ne)]. *)
  let cmat =
    Mat.blocks
      [
        [ Mat.scale dg c; zer no no ];
        [ zer nu n; zer nu no ];
        [ Mat.mul w_e c; Mat.mul w_e wdiff ];
        [ zer nu n; zer nu no ];
        [ c; zer no no ];
        [ zer ne n; zer ne no ];
      ]
  in
  let d =
    Mat.blocks
      [
        (* z_unc *)
        [ zer no no; Mat.scale dg du; zer no no; Mat.scale dg de; Mat.scale dg du ];
        (* z_q *)
        [ zer nu no; zer nu nu; zer nu no; zer nu ne; dq ];
        (* z_e *)
        [ w_e; Mat.mul w_e du; Mat.neg w_e; Mat.mul w_e de; Mat.mul w_e du ];
        (* z_u *)
        [ zer nu no; zer nu nu; zer nu no; zer nu ne; w_u ];
        (* err = y_tot - r *)
        [ ino; du; Mat.neg ino; de; du ];
        (* e measurement *)
        [ zer ne no; zer ne nu; zer ne no; ine; zer ne nu ];
      ]
  in
  let sys = Ss.make ~domain:model.Ss.domain ~a:a_aug ~b:b_aug ~c:cmat ~d () in
  let part =
    {
      Hinf.nw = no + nu + no + ne;
      nu;
      nz = no + nu + no + nu;
      ny = no + ne;
    }
  in
  let structure =
    [
      Ssv.Full (no, no);            (* Delta_model: the guardband. *)
      Ssv.Full (nu, nu);            (* Delta_in: quantization. *)
      Ssv.Full (no + nu, no + ne);  (* Delta_perf: main-loop block. *)
    ]
  in
  ({ Hinf.sys; part }, structure)

type synthesis = {
  controller : Controller.t;
  mu_peak : float;
  gamma : float;
  guaranteed_bounds : float array;
  model : Control.Ss.t;
}

let synthesize ?(dk_iterations = 3) ?(mu_points = 30) ?reduce_order
    ?ignore_quantization spec ~model =
  let t0 = if Obs.Collector.enabled () then Obs.Collector.now () else 0.0 in
  let plant, structure = generalized_plant ?ignore_quantization spec ~model in
  let result = Dk.synthesize ~iterations:dk_iterations ~mu_points ~plant ~structure () in
  (* Optional balanced-truncation of the controller toward a hardware
     budget (Section VI-D); kept only if the reduced loop stays stable
     and certified no worse. *)
  let result =
    match reduce_order with
    | Some n
      when n > 0
           && n < Ss.order result.Dk.controller
           && Ss.is_stable result.Dk.controller -> (
      match Reduce.balanced_truncation result.Dk.controller ~order:n with
      | reduced -> (
        match Hinf.close_loop plant reduced with
        | cl when Ss.is_stable cl ->
          let sweep = Ssv.sweep ~points:mu_points structure cl in
          if sweep.Ssv.peak <= result.Dk.mu_peak *. 1.1 then
            { result with Dk.controller = reduced; mu_peak = sweep.Ssv.peak }
          else result
        | _ -> result
        | exception _ -> result)
      | exception _ -> result)
    | _ -> result
  in
  let scale = Float.max 1.0 result.Dk.mu_peak in
  let guaranteed_bounds =
    Array.map (fun o -> scale *. Signal.bound_absolute o) spec.outputs
  in
  if Obs.Collector.enabled () then
    Obs.Collector.record_span ~name:"design.synthesize"
      ~dur_s:(Obs.Collector.now () -. t0)
      [
        ("layer", Obs.Json.String spec.layer);
        ("mu_peak", Obs.Json.Float result.Dk.mu_peak);
        ("gamma", Obs.Json.Float result.Dk.gamma);
        ("controller_order", Obs.Json.Int (Ss.order result.Dk.controller));
      ];
  {
    controller =
      Controller.make ~controller:result.Dk.controller ~inputs:spec.inputs
        ~outputs:spec.outputs ~externals:spec.externals;
    mu_peak = result.Dk.mu_peak;
    gamma = result.Dk.gamma;
    guaranteed_bounds;
    model;
  }

let design ?order ?dk_iterations ?reduce_order spec ~u ~y =
  let model = identify ?order spec ~u ~y in
  synthesize ?dk_iterations ?reduce_order spec ~model
