(* The serving wire protocol: newline-delimited JSON over a stream
   socket. One request per line in, one or more response lines out.
   Parsing is total — every malformed line maps to an [Error] the
   session answers with a non-fatal error record, never an exception. *)

module Json = Obs.Json

let version = 1

type drift = {
  start : float;
  duration : float;
  severity : float; (* Fraction of the certified guardband. *)
  kind : string; (* power_gain | thermal_gain | perf_gain. *)
}

type request =
  | Hello of { client : string option }
  | Configure of {
      scheme : string;
      app : string;
      epoch : float option;
      adapt : bool;
      drift : drift option;
    }
  | Step of { count : int }
  | Health
  | Drain
  | Close

let drift_kinds = [ "power_gain"; "thermal_gain"; "perf_gain" ]

let mem key json = Json.member key json

let str_field key json = Option.bind (mem key json) Json.to_string_opt

let float_field key json = Option.bind (mem key json) Json.to_float_opt

let int_field key json = Option.bind (mem key json) Json.to_int_opt

let bool_field key json =
  match mem key json with Some (Json.Bool b) -> Some b | _ -> None

let parse_drift json =
  match mem "drift" json with
  | None | Some Json.Null -> Ok None
  | Some d -> (
    let kind = Option.value (str_field "kind" d) ~default:"power_gain" in
    if not (List.mem kind drift_kinds) then
      Error
        (Printf.sprintf "drift.kind must be one of %s"
           (String.concat ", " drift_kinds))
    else
      match (float_field "start" d, float_field "severity" d) with
      | Some start, Some severity ->
        let duration =
          Option.value (float_field "duration" d) ~default:Float.infinity
        in
        if start < 0.0 || duration <= 0.0 then
          Error "drift.start must be >= 0 and drift.duration > 0"
        else Ok (Some { start; duration; severity; kind })
      | _ -> Error "drift needs numeric start and severity")

let request_of_json json =
  match str_field "type" json with
  | None -> Error "missing \"type\""
  | Some "hello" -> Ok (Hello { client = str_field "client" json })
  | Some "configure" -> (
    match str_field "scheme" json with
    | None -> Error "configure needs a \"scheme\""
    | Some scheme -> (
      let app = Option.value (str_field "app" json) ~default:"blackscholes" in
      let adapt = Option.value (bool_field "adapt" json) ~default:false in
      match parse_drift json with
      | Error e -> Error e
      | Ok drift ->
        Ok (Configure { scheme; app; epoch = float_field "epoch" json; adapt; drift })
      ))
  | Some "step" ->
    let count = Option.value (int_field "count" json) ~default:1 in
    if count < 1 then Error "step.count must be >= 1" else Ok (Step { count })
  | Some "health" -> Ok Health
  | Some "drain" -> Ok Drain
  | Some "close" -> Ok Close
  | Some other -> Error (Printf.sprintf "unknown request type %S" other)

let request_of_line line =
  match Json.of_string line with
  | json -> request_of_json json
  | exception Json.Parse_error msg -> Error ("malformed JSON: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let line json = Json.to_string json

let welcome () =
  line
    (Json.Obj
       [
         ("type", Json.String "welcome");
         ("server", Json.String "yukta");
         ("version", Json.Int version);
         ( "schemes",
           Json.List
             (List.map
                (fun (i : Yukta.Schemes.info) -> Json.String i.Yukta.Schemes.key)
                Yukta.Schemes.all) );
       ])

let configured ~session ~scheme ~layers ~adapt =
  line
    (Json.Obj
       [
         ("type", Json.String "configured");
         ("session", Json.Int session);
         ("scheme", Json.String scheme);
         ("layers", Json.List (List.map (fun l -> Json.String l) layers));
         ("adapt", Json.Bool adapt);
       ])

let error ?(fatal = false) msg =
  line
    (Json.Obj
       [
         ("type", Json.String "error");
         ("message", Json.String msg);
         ("fatal", Json.Bool fatal);
       ])

let busy ~retry_after_ms =
  line
    (Json.Obj
       [
         ("type", Json.String "busy");
         ("retry_after_ms", Json.Int retry_after_ms);
       ])

let closed () = line (Json.Obj [ ("type", Json.String "closed") ])

let summary_fields (m : Board.Xu3.metrics) ~completed =
  [
    ("execution_time_s", Json.Float m.Board.Xu3.execution_time);
    ("energy_j", Json.Float m.Board.Xu3.total_energy);
    ("energy_delay_js", Json.Float m.Board.Xu3.energy_delay);
    ("trips", Json.Int m.Board.Xu3.trips);
    ("completed", Json.Bool completed);
  ]

let frame ~epoch ~sim ~(o : Board.Xu3.outputs) ~(config : Board.Xu3.config)
    ~(placement : Board.Xu3.placement) ~done_ =
  line
    (Json.Obj
       [
         ("type", Json.String "frame");
         ("epoch", Json.Int epoch);
         ("sim_s", Json.Float sim);
         ( "observation",
           Json.Obj
             [
               ("bips", Json.Float o.Board.Xu3.bips);
               ("power_big", Json.Float o.Board.Xu3.power_big);
               ("power_little", Json.Float o.Board.Xu3.power_little);
               ("temperature", Json.Float o.Board.Xu3.temperature);
               ("threads_active", Json.Int o.Board.Xu3.threads_active);
             ] );
         ( "decision",
           Json.Obj
             [
               ("big_cores", Json.Int config.Board.Xu3.big_cores);
               ("little_cores", Json.Int config.Board.Xu3.little_cores);
               ("freq_big", Json.Float config.Board.Xu3.freq_big);
               ("freq_little", Json.Float config.Board.Xu3.freq_little);
               ("threads_big", Json.Int placement.Board.Xu3.threads_big);
               ("tpc_big", Json.Float placement.Board.Xu3.tpc_big);
               ("tpc_little", Json.Float placement.Board.Xu3.tpc_little);
             ] );
         ("done", Json.Bool done_);
       ])

let end_of_run ~sim ~metrics ~completed =
  line
    (Json.Obj
       (("type", Json.String "end")
       :: ("sim_s", Json.Float sim)
       :: summary_fields metrics ~completed))

let drained ~epochs ~sim ~metrics ~completed =
  line
    (Json.Obj
       (("type", Json.String "drained")
       :: ("epochs", Json.Int epochs)
       :: ("sim_s", Json.Float sim)
       :: summary_fields metrics ~completed))

let health_snapshot health =
  line
    (Json.Obj
       [ ("type", Json.String "health"); ("health", Obs.Health.to_json health) ])

let adapt_notification ~name ~epoch ~sim fields =
  line
    (Json.Obj
       ([
          ("type", Json.String "adapt");
          ("name", Json.String name);
          ("epoch", Json.Int epoch);
          ("sim_s", Json.Float sim);
        ]
       @ fields))
