(* The per-session adaptation engine: recursive identification of the
   hardware layer over the live epoch stream, a prediction-error drift
   detector, and — on a trip — a D-K re-synthesis on a background
   domain whose controller is hot-swapped into the running layer with
   bumpless transfer.

   Everything runs in the same normalized coordinates as the offline
   design flow: u = [effective config; placement] and y = the layer
   measurements, recorded after the epoch exactly as [Training.collect]
   records them, normalized by the layer spec's signal ranges. With no
   plant drift the estimator is pure observation — the session's
   decisions are bit-identical to a frozen run. *)

open Board

(* A controller swap is a flight-recorder dump trigger: the window
   leading up to it shows the drift the detector saw. *)
let () = Obs.Recorder.register_trigger "adapt.swap"

let swaps_metric = Obs.Metrics.counter "adapt.swaps"

let drift_metric = Obs.Metrics.counter "adapt.drifts"

type event =
  | Drift_detected of { epoch : int; level : float; baseline : float }
  | Swapped of {
      epoch : int;
      latency_epochs : int;
      latency_s : float;
      mu_peak : float;
    }
  | Synthesis_failed of { epoch : int; message : string }

type status =
  | Idle
  | Relearning of int
      (* Epochs left before launching synthesis: the covariance was
         just re-inflated, and the estimate needs a window of
         post-drift samples or the new design would fit the old
         plant. *)
  | Synthesizing of Yukta.Design.synthesis Parallel.Task.t

type t = {
  layer : Yukta.Layer.t;
  spec : Yukta.Design.spec;
  est : Sysid.Recursive.t;
  detector : Sysid.Recursive.Drift.detector;
  mutable status : status;
  mutable swaps : int;
  mutable attempts : int; (* Synthesis attempts this drift episode. *)
  mutable drift_mark : (int * float) option; (* epoch, sim at detection *)
  mutable last_latency : (int * float) option;
  mutable armed : bool; (* [pre_step] captured this epoch's input. *)
  mutable seen_trips : int; (* Board trip count at the last sample. *)
  (* Scratch for the normalized sample. *)
  u_norm : Linalg.Vec.t;
  y_norm : Linalg.Vec.t;
}

(* Identification order: the paper's na = nb = 4 (Section IV-C), the
   same order the offline [Design.identify] default fits. *)
let id_order = 4

(* Post-drift samples absorbed (under a re-inflated covariance) before
   re-synthesis launches. *)
let relearn_epochs = 20

(* A re-design is only installed when its certified SSV peak clears this
   gate; a worse certificate means the online model is still garbage
   (closed-loop data with no excitation), and flying the incumbent
   beats flying an uncertified design. The offline hw design sits near
   mu 5, so the gate admits a moderately degraded re-fit and rejects
   nonsense (including NaN, which fails the comparison). *)
let mu_gate = 25.0

(* Gated / failed syntheses re-enter the re-learning window this many
   times before the episode is abandoned and the detector re-armed. *)
let max_attempts = 3

(* The warm-start prior: the batch ARX fit over the offline training
   records, in normalized design coordinates — the same data the
   cached offline design was identified from. Shared per process; the
   collection is a few thousand simulated epochs (milliseconds). *)
let prior =
  lazy
    (let spec = Yukta.Hw_layer.spec () in
     let r = Yukta.Training.collect () in
     let u, y =
       Yukta.Design.normalize_records spec ~u:r.Yukta.Training.hw_u
         ~y:r.Yukta.Training.hw_y
     in
     Sysid.Arx.fit ~na:id_order ~nb:id_order ~u ~y)

let create ~layer () =
  if not (Yukta.Layer.is_controlled layer) then
    invalid_arg "Adapt.create: layer is not controlled";
  let spec = Yukta.Hw_layer.spec () in
  let nu =
    Array.length spec.Yukta.Design.inputs
    + Array.length spec.Yukta.Design.externals
  in
  let ny = Array.length spec.Yukta.Design.outputs in
  (* Forgetting is kept gentle: closed-loop data has almost no
     excitation, and aggressive forgetting inflates the covariance in
     the unexcited directions (classic windup) until the estimate
     disintegrates. Adaptation speed comes from the covariance reset at
     a drift trip, not from the steady-state forgetting rate. *)
  let est =
    Sysid.Recursive.create ~lambda:0.999 ~na:id_order ~nb:id_order ~ny ~nu ()
  in
  (* Start at the offline model with a unit-covariance prior: the
     session only ever sees closed-loop data, which cannot support a
     from-scratch fit but easily corrects a drifted gain. The dynamics
     block is pinned immediately (zero covariance) — only the input
     gains ever adapt. *)
  Sysid.Recursive.warm_start ~delta:1.0 est (Lazy.force prior);
  Sysid.Recursive.reset_covariance ~delta:1.0 ~only_inputs:true est;
  {
    layer;
    spec;
    est;
    detector = Sysid.Recursive.Drift.create ~alpha:0.1 ~warmup:30 ~ratio:2.5 ();
    status = Idle;
    swaps = 0;
    attempts = 0;
    drift_mark = None;
    last_latency = None;
    armed = false;
    seen_trips = 0;
    u_norm = Linalg.Vec.create nu;
    y_norm = Linalg.Vec.create ny;
  }

(* The adaptable layer of a stack: the controlled layer labeled "hw"
   (the one whose spec this engine re-synthesizes against). *)
let for_stack stack =
  match
    List.find_opt
      (fun l -> Yukta.Layer.label l = "hw" && Yukta.Layer.is_controlled l)
      (Yukta.Stack.layers stack)
  with
  | Some layer -> Some (create ~layer ())
  | None -> None

let swaps t = t.swaps

let last_latency t = t.last_latency

(* u and y exactly as [Training.collect] pairs them: the configuration
   the hardware actually ran {e during} the epoch (post-quantization,
   post-emergency) against the measurements of that same epoch. The
   layers actuate after the plant advances, so by the time an epoch's
   outputs exist the board already carries the next epoch's commands —
   [pre_step] must capture the input before the epoch runs. *)
let pre_step t board =
  let c = Xu3.effective_config board in
  let p = Xu3.placement board in
  let u_phys =
    Linalg.Vec.concat
      (Yukta.Hw_layer.command_of_config c)
      (Yukta.Hw_layer.externals_of_placement p)
  in
  let inputs = t.spec.Yukta.Design.inputs in
  let externals = t.spec.Yukta.Design.externals in
  let ni = Array.length inputs in
  for i = 0 to ni - 1 do
    t.u_norm.(i) <- Yukta.Signal.normalize_input inputs.(i) u_phys.(i)
  done;
  for j = 0 to Array.length externals - 1 do
    t.u_norm.(ni + j) <-
      Yukta.Signal.normalize_external externals.(j) u_phys.(ni + j)
  done;
  t.armed <- true

let sample_outputs t (o : Xu3.outputs) =
  let y_phys = Yukta.Hw_layer.measurements o in
  Array.iteri
    (fun i out -> t.y_norm.(i) <- Yukta.Signal.normalize_output out y_phys.(i))
    t.spec.Yukta.Design.outputs

(* The online re-design runs a cheaper D-K pass than the offline flow
   (one iteration, a coarser mu grid): the session needs a certified
   controller for the drifted plant in seconds, not the polished
   offline optimum — the guardband covers the remaining slack. *)
let synthesize_now t =
  let model =
    Yukta.Design.stabilize
      (Sysid.Arx.to_ss (Sysid.Recursive.model t.est)
         ~period:t.spec.Yukta.Design.period)
  in
  Yukta.Design.synthesize ~dk_iterations:1 ~mu_points:15 t.spec ~model

let observing () = Obs.Collector.observing ()

let emit_event ~name ~sim fields =
  if observing () then Obs.Collector.event ~name ~sim (fun () -> fields)

let observe t ~epoch board o =
  let sim = Xu3.time board in
  sample_outputs t o;
  (* An epoch in which a protection trip fired is a lie as a training
     pair: the actuation changed mid-epoch, so the captured input is
     not what produced the outputs. Such epochs (common exactly when a
     drift has the frozen controller trip-cycling) are skipped — fed
     to neither the estimator nor the detector — or the identified
     gains come out with the wrong sign and the re-design collapses to
     the actuation floor. *)
  let trips = Xu3.trip_count board in
  let clamped = trips > t.seen_trips in
  t.seen_trips <- trips;
  let err =
    if t.armed && not clamped then begin
      t.armed <- false;
      Sysid.Recursive.observe t.est ~u:t.u_norm ~y:t.y_norm
    end
    else begin
      t.armed <- false;
      None (* No honest capture for this epoch: skip the sample. *)
    end
  in
  let events = ref [] in
  (* Count down the re-learning window — only absorbed samples advance
     it — and launch the background design once the estimate has seen
     enough of the drifted plant. *)
  (match (t.status, err) with
  | Relearning n, Some _ ->
    t.status <-
      (if n > 1 then Relearning (n - 1)
       else Synthesizing (Parallel.Task.spawn (fun () -> synthesize_now t)))
  | _ -> ());
  (* A gated or failed synthesis re-enters the learning window (more
     post-drift data may rescue the model) until the episode's attempt
     budget runs out; then the incumbent keeps flying and the detector
     re-arms for a persisting drift. *)
  let synthesis_rejected t ~epoch ~sim ~message events =
    emit_event ~name:"adapt.failed" ~sim
      [
        ("layer", Obs.Json.String (Yukta.Layer.label t.layer));
        ("epoch", Obs.Json.Int epoch);
        ("message", Obs.Json.String message);
      ];
    events := Synthesis_failed { epoch; message } :: !events;
    if t.attempts < max_attempts then
      t.status <- Relearning relearn_epochs
    else begin
      t.attempts <- 0;
      t.drift_mark <- None;
      Sysid.Recursive.Drift.reset t.detector
    end
  in
  (* Collect a finished background synthesis first, so a swap lands the
     epoch the design completes. *)
  (match t.status with
  | Synthesizing task when Parallel.Task.finished task -> (
    t.status <- Idle;
    t.attempts <- t.attempts + 1;
    match Parallel.Task.await task with
    | syn when not (syn.Yukta.Design.mu_peak <= mu_gate) ->
      synthesis_rejected t ~epoch ~sim events
        ~message:
          (Printf.sprintf "design rejected: mu %.1f above gate %.1f"
             syn.Yukta.Design.mu_peak mu_gate)
    | syn ->
      t.attempts <- 0;
      Yukta.Layer.swap_controller t.layer
        (Yukta.Controller.copy syn.Yukta.Design.controller);
      t.swaps <- t.swaps + 1;
      let d_epoch, d_sim =
        match t.drift_mark with Some (e, s) -> (e, s) | None -> (epoch, sim)
      in
      let latency_epochs = epoch - d_epoch in
      let latency_s = sim -. d_sim in
      t.drift_mark <- None;
      t.last_latency <- Some (latency_epochs, latency_s);
      (* The swapped-in design tracks the drifted plant: re-baseline the
         detector against the new closed loop. *)
      Sysid.Recursive.Drift.reset t.detector;
      Obs.Metrics.incr swaps_metric;
      emit_event ~name:"adapt.swap" ~sim
        [
          ("layer", Obs.Json.String (Yukta.Layer.label t.layer));
          ("epoch", Obs.Json.Int epoch);
          ("latency_epochs", Obs.Json.Int latency_epochs);
          ("latency_s", Obs.Json.Float latency_s);
          ("mu_peak", Obs.Json.Float syn.Yukta.Design.mu_peak);
        ];
      events :=
        Swapped
          {
            epoch;
            latency_epochs;
            latency_s;
            mu_peak = syn.Yukta.Design.mu_peak;
          }
        :: !events
    | exception exn ->
      synthesis_rejected t ~epoch ~sim events
        ~message:(Printexc.to_string exn))
  | _ -> ());
  (* Feed the detector; fire a re-synthesis when it trips. *)
  (match err with
  | None -> ()
  | Some e ->
    if Sysid.Recursive.Drift.observe t.detector e && t.status = Idle then begin
      let level = Sysid.Recursive.Drift.level t.detector in
      let baseline = Sysid.Recursive.Drift.baseline t.detector in
      t.drift_mark <- Some (epoch, sim);
      Obs.Metrics.incr drift_metric;
      emit_event ~name:"adapt.drift" ~sim
        [
          ("layer", Obs.Json.String (Yukta.Layer.label t.layer));
          ("epoch", Obs.Json.Int epoch);
          ("level", Obs.Json.Float level);
          ("baseline", Obs.Json.Float baseline);
        ];
      events := Drift_detected { epoch; level; baseline } :: !events;
      (* Let the estimate move toward the drifted plant, then re-design
         against what it learns. The reset is structured: only the
         input-gain block re-inflates, pinning the dynamics at the
         offline prior — an unstructured reset would spread the
         correction across the dynamics coefficients (closed-loop data
         is nearly rank one) and wreck the model's frequency response,
         and the re-design with it. *)
      Sysid.Recursive.reset_covariance ~delta:1e-2 ~only_inputs:true t.est;
      t.attempts <- 0;
      t.status <- Relearning relearn_epochs
    end);
  List.rev !events

let finish t =
  match t.status with
  | Idle | Relearning _ -> t.status <- Idle
  | Synthesizing task ->
    (* Join the domain; a failed synthesis is already irrelevant. *)
    (try ignore (Parallel.Task.await task) with _ -> ());
    t.status <- Idle
