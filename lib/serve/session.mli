(** One serving session: a transport-free request-line → response-line
    state machine over a server-hosted scheme run.

    Lifecycle: [hello] → [configure] (builds a fresh
    {!Yukta.Stack.stepper} over a new board, optionally with an
    injected plant drift and an {!Adapt} engine) → any number of
    [step]/[health] → [drain] or [close].

    The split between {!enqueue} and {!process} is what lets one
    single-threaded server loop host many sessions fairly:

    - {!enqueue} applies {e backpressure}: past [max_queue] buffered
      request lines it rejects with a [busy] response carrying
      [retry_after_ms] instead of buffering without bound;
    - {!process} drains the queue under an {e epoch budget}; a [step]
      larger than the remaining budget is split, its remainder carried
      to the next call, so a greedy session cannot starve others. A
      [drain] streams the rest of the run under the same budget across
      as many {!process} calls as it takes, and is additionally capped
      at [Stack.run]'s default simulated [max_time] — a degraded plant
      that never finishes cannot spin the server forever (the [drained]
      summary then reports [completed = false]).

    Request handling is crash-isolated: a malformed line or an
    exception inside a handler becomes a non-fatal [error] response and
    the session keeps serving. *)

type t

val create : ?max_queue:int -> ?retry_after_ms:int -> id:int -> unit -> t
(** [max_queue] (default 64) bounds the inbound queue; [retry_after_ms]
    (default 50) is the hint carried by backpressure rejections.
    @raise Invalid_argument when [max_queue < 1]. *)

val id : t -> int

val enqueue : t -> string -> [ `Accepted | `Rejected of string ]
(** Buffer one request line. [`Rejected line] carries the response to
    send immediately: [busy] when the queue is full, a fatal [error]
    when the session is closed. *)

val process : ?budget:int -> t -> string list
(** Handle queued requests, stepping at most [budget] epochs (default
    unlimited), and return the response lines in order. Stops early
    when the budget is exhausted; call again (possibly after serving
    other sessions) to continue. *)

val pending : t -> int
(** Queued requests not yet fully processed (including a budget-split
    [step] remainder). *)

val closed : t -> bool
(** The session saw [close] (or {!finish}); it answers nothing more. *)

val frames_served : t -> int
(** Frame lines emitted so far (one per stepped epoch). *)

val errors : t -> int
(** Malformed or mis-sequenced requests answered with an [error] line. *)

val swaps : t -> int
(** Adaptive controller swaps performed by this session's run. *)

val finish : t -> unit
(** Force-close: join any in-flight synthesis and mark the session
    closed. Idempotent; the server calls this on disconnect. *)
