(* The serving front end: one single-threaded [Unix.select] loop
   multiplexing any number of NDJSON connections, each bound to one
   {!Session}.

   Per-connection state is a partial inbound line, an outbound byte
   buffer, and an activity stamp. Every iteration: accept, read
   (splitting complete lines into the session queue, with backpressure
   rejections answered immediately), process each session under the
   fairness budget, write what the sockets will take, and sweep idle or
   finished connections. All socket errors and handler exceptions are
   contained to their own connection — the loop and the other sessions
   keep running. *)

type address = Unix_path of string | Tcp of string * int

type conn = {
  fd : Unix.file_descr;
  session : Session.t;
  mutable partial : string; (* Inbound bytes after the last newline. *)
  outbuf : Buffer.t;
  mutable sent : int; (* Bytes of [outbuf] already written. *)
  mutable last_activity : float;
  mutable dropping : bool; (* Close once [outbuf] drains. *)
}

type stats = {
  mutable accepted : int;
  mutable active : int;
  mutable frames : int;
  mutable swaps : int;
  mutable errors : int;
}

type t = {
  listen_fd : Unix.file_descr;
  sockaddr : Unix.sockaddr;
  cleanup_path : string option;
  idle_timeout : float;
  step_budget : int;
  max_line : int;
  mutable conns : conn list;
  mutable next_id : int;
  mutable stopping : bool;
  stats : stats;
}

let default_step_budget = 256

let default_idle_timeout = 30.0

let default_max_line = 65536

let sockaddr_of_address = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let inet =
      if host = "" || host = "*" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    Unix.ADDR_INET (inet, port)

let create ?(idle_timeout = default_idle_timeout)
    ?(step_budget = default_step_budget) ?(max_line = default_max_line)
    address =
  if idle_timeout <= 0.0 then
    invalid_arg "Server.create: idle_timeout must be positive";
  if step_budget < 1 then
    invalid_arg "Server.create: step_budget must be >= 1";
  let sockaddr = sockaddr_of_address address in
  let domain = Unix.domain_of_sockaddr sockaddr in
  let cleanup_path =
    match address with
    | Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Some path
    | Tcp _ -> None
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.SO_REUSEADDR true
   with Unix.Unix_error _ -> ());
  Unix.bind fd sockaddr;
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  {
    listen_fd = fd;
    sockaddr = Unix.getsockname fd;
    cleanup_path;
    idle_timeout;
    step_budget;
    max_line;
    conns = [];
    next_id = 1;
    stopping = false;
    stats = { accepted = 0; active = 0; frames = 0; swaps = 0; errors = 0 };
  }

let address t = t.sockaddr

let port t =
  match t.sockaddr with Unix.ADDR_INET (_, p) -> Some p | _ -> None

let stop t = t.stopping <- true

let stats t =
  let s = t.stats in
  (* Fold live sessions in so the snapshot is current mid-run. *)
  let frames = ref s.frames and swaps = ref s.swaps and errors = ref s.errors in
  List.iter
    (fun c ->
      frames := !frames + Session.frames_served c.session;
      swaps := !swaps + Session.swaps c.session;
      errors := !errors + Session.errors c.session)
    t.conns;
  (s.accepted, List.length t.conns, !frames, !swaps, !errors)

let queue_line conn line =
  Buffer.add_string conn.outbuf line;
  Buffer.add_char conn.outbuf '\n'

let drop t conn =
  if List.memq conn t.conns then begin
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    t.stats.frames <- t.stats.frames + Session.frames_served conn.session;
    t.stats.swaps <- t.stats.swaps + Session.swaps conn.session;
    t.stats.errors <- t.stats.errors + Session.errors conn.session;
    Session.finish conn.session;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let accept_ready t now =
  match Unix.accept t.listen_fd with
  | fd, _peer ->
    Unix.set_nonblock fd;
    let session = Session.create ~id:t.next_id () in
    t.next_id <- t.next_id + 1;
    t.stats.accepted <- t.stats.accepted + 1;
    t.conns <-
      {
        fd;
        session;
        partial = "";
        outbuf = Buffer.create 1024;
        sent = 0;
        last_activity = now;
        dropping = false;
      }
      :: t.conns
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()

(* Feed complete inbound lines to the session, answering backpressure
   rejections immediately. Oversized lines (no newline within
   [max_line] bytes) are dropped with a fatal error: an unframed peer
   would otherwise grow the buffer forever. *)
let ingest t conn data =
  conn.last_activity <- Unix.gettimeofday ();
  let buf = conn.partial ^ data in
  let parts = String.split_on_char '\n' buf in
  let rec feed = function
    | [] -> ()
    | [ rest ] ->
      if String.length rest > t.max_line then begin
        conn.partial <- "";
        queue_line conn
          (Protocol.error ~fatal:true
             (Printf.sprintf "line exceeds %d bytes" t.max_line));
        conn.dropping <- true
      end
      else conn.partial <- rest
    | line :: tl ->
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      (if line <> "" then
         match Session.enqueue conn.session line with
         | `Accepted -> ()
         | `Rejected response -> queue_line conn response);
      feed tl
  in
  feed parts

let read_ready t conn =
  let chunk = Bytes.create 4096 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop t conn (* Peer closed; mid-stream disconnects land here. *)
  | n -> ingest t conn (Bytes.sub_string chunk 0 n)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop t conn

let write_ready t conn =
  let data = Buffer.to_bytes conn.outbuf in
  let len = Bytes.length data - conn.sent in
  if len > 0 then
    match Unix.write conn.fd data conn.sent len with
    | n ->
      conn.sent <- conn.sent + n;
      conn.last_activity <- Unix.gettimeofday ();
      if conn.sent = Bytes.length data then begin
        Buffer.clear conn.outbuf;
        conn.sent <- 0
      end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> drop t conn

let pending_out conn = Buffer.length conn.outbuf - conn.sent > 0

(* One loop iteration; [timeout] bounds the select wait. *)
let iterate ?(timeout = 0.2) t =
  let now = Unix.gettimeofday () in
  let reads = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
  let writes =
    List.filter_map
      (fun c -> if pending_out c then Some c.fd else None)
      t.conns
  in
  let readable, writable, _ =
    try Unix.select reads writes [] timeout
    with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
  in
  if List.mem t.listen_fd readable && not t.stopping then accept_ready t now;
  List.iter
    (fun conn ->
      if List.mem conn.fd readable && not conn.dropping then
        try read_ready t conn with _ -> drop t conn)
    t.conns;
  (* Let every session advance under the fairness budget; responses are
     queued for the next writable window. Handler crashes are contained
     to their connection. *)
  List.iter
    (fun conn ->
      if not conn.dropping then
        try
          let lines = Session.process ~budget:t.step_budget conn.session in
          if lines <> [] then begin
            List.iter (queue_line conn) lines;
            conn.last_activity <- Unix.gettimeofday ()
          end
        with _ -> drop t conn)
    t.conns;
  List.iter
    (fun conn -> if List.mem conn.fd writable then write_ready t conn)
    t.conns;
  (* Sweep: flushed-and-finished, and idle connections. *)
  let now = Unix.gettimeofday () in
  List.iter
    (fun conn ->
      if pending_out conn then ()
      else if conn.dropping || Session.closed conn.session then drop t conn
      else if
        Session.pending conn.session = 0
        && now -. conn.last_activity > t.idle_timeout
      then begin
        queue_line conn (Protocol.error ~fatal:true "idle timeout");
        conn.dropping <- true
      end)
    t.conns

let shutdown t =
  List.iter (fun conn -> drop t conn) t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.cleanup_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let run ?(once = false) t =
  let finished () =
    t.stopping || (once && t.stats.accepted > 0 && t.conns = [])
  in
  (try
     while not (finished ()) do
       iterate t
     done
   with exn ->
     shutdown t;
     raise exn);
  shutdown t
