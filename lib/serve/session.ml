(* One serving session: a transport-free state machine from request
   lines to response lines. The server owns sockets and scheduling; a
   session owns one scheme run — a live {!Yukta.Stack.stepper} over a
   server-hosted board — plus an optional {!Adapt} engine.

   Two-phase operation keeps many sessions fair on one loop:
   [enqueue] bounds the inbound queue (backpressure answers [busy] with
   a retry hint instead of buffering without limit), and [process]
   drains it under an epoch budget, so one session streaming a huge
   [step] cannot starve its neighbours. Everything a request does is
   crash-isolated: an exception becomes a non-fatal [error] line and
   the session keeps serving. *)

type run = {
  stepper : Yukta.Stack.stepper;
  scheme : Yukta.Schemes.info;
  adapt : Adapt.t option;
  mutable completion_emitted : bool;
}

type state = Fresh | Configured of run | Closed

type t = {
  id : int;
  max_queue : int;
  retry_after_ms : int;
  queue : string Queue.t;
  mutable carry : int; (* Leftover epochs of a budget-split [step]. *)
  mutable draining : bool; (* A [drain] is streaming to completion. *)
  mutable state : state;
  mutable served : int; (* Frames emitted over the session lifetime. *)
  mutable errors : int;
  mutable past_swaps : int; (* Swaps of already-finished runs. *)
}

let default_queue = 64

let default_retry_after_ms = 50

let create ?(max_queue = default_queue)
    ?(retry_after_ms = default_retry_after_ms) ~id () =
  if max_queue < 1 then invalid_arg "Session.create: max_queue must be >= 1";
  {
    id;
    max_queue;
    retry_after_ms;
    queue = Queue.create ();
    carry = 0;
    draining = false;
    state = Fresh;
    served = 0;
    errors = 0;
    past_swaps = 0;
  }

let id t = t.id

let closed t = t.state = Closed

let pending t =
  Queue.length t.queue + if t.carry > 0 || t.draining then 1 else 0

let frames_served t = t.served

let errors t = t.errors

let swaps t =
  t.past_swaps
  + match t.state with
    | Configured { adapt = Some a; _ } -> Adapt.swaps a
    | _ -> 0

let enqueue t line =
  if t.state = Closed then
    `Rejected (Protocol.error ~fatal:true "session closed")
  else if Queue.length t.queue >= t.max_queue then
    `Rejected (Protocol.busy ~retry_after_ms:t.retry_after_ms)
  else begin
    Queue.push line t.queue;
    `Accepted
  end

(* App names resolve like the CLI's: a registered mix, else a single
   workload. *)
let workloads_of_app app =
  match List.assoc_opt app Board.Workload.mixes with
  | Some ws -> ws
  | None -> [ Board.Workload.by_name app ]

let injector_of_drift (d : Protocol.drift) =
  let fault =
    match d.Protocol.kind with
    | "thermal_gain" -> Fault.Spec.Thermal_resistance_drift d.Protocol.severity
    | "perf_gain" -> Fault.Spec.Workload_phase_shift d.Protocol.severity
    | _ -> Fault.Spec.Power_gain_drift d.Protocol.severity
  in
  Fault.Injector.hooks
    (Fault.Injector.make
       [
         Fault.Spec.make ~start:d.Protocol.start ~duration:d.Protocol.duration
           fault;
       ])

let finish_run t =
  match t.state with
  | Configured r ->
    Option.iter
      (fun a ->
        Adapt.finish a;
        t.past_swaps <- t.past_swaps + Adapt.swaps a)
      r.adapt
  | Fresh | Closed -> ()

(* Emit the run-complete summary exactly once, as [Stack.run] does. *)
let note_completion r =
  if (not r.completion_emitted) && Yukta.Stack.finished r.stepper then begin
    r.completion_emitted <- true;
    Yukta.Stack.complete_event r.stepper
  end

let do_configure t ~scheme ~app ~epoch ~adapt ~drift =
  match Yukta.Schemes.find scheme with
  | None ->
    t.errors <- t.errors + 1;
    [ Protocol.error (Printf.sprintf "unknown scheme %S" scheme) ]
  | Some info ->
    let workloads = workloads_of_app app in
    let injector = Option.map injector_of_drift drift in
    let stack = Yukta.Schemes.stack info in
    let stepper = Yukta.Stack.stepper ?epoch ?injector stack workloads in
    let engine =
      if adapt then Adapt.for_stack (Yukta.Stack.stack stepper) else None
    in
    finish_run t;
    t.carry <- 0;
    t.draining <- false;
    t.state <-
      Configured
        { stepper; scheme = info; adapt = engine; completion_emitted = false };
    [
      Protocol.configured ~session:t.id ~scheme:info.Yukta.Schemes.key
        ~layers:info.Yukta.Schemes.layers ~adapt:(engine <> None);
    ]

let run_required t k =
  match t.state with
  | Configured r -> k r
  | Fresh ->
    t.errors <- t.errors + 1;
    [ Protocol.error "not configured: send a configure request first" ]
  | Closed -> [ Protocol.error ~fatal:true "session closed" ]

(* One epoch: advance the plant, frame the decision, append any
   adaptation notices. [advanced = false] means the run had already
   ended and an [end] summary was emitted instead of a frame. *)
let step_once t r =
  (* The input the plant is about to run, for online identification —
     after the epoch the board carries the next epoch's commands. *)
  (match r.adapt with
  | Some engine -> Adapt.pre_step engine (Yukta.Stack.board r.stepper)
  | None -> ());
  match Yukta.Stack.step_epoch r.stepper with
  | None ->
    note_completion r;
    let board = Yukta.Stack.board r.stepper in
    ( [
        Protocol.end_of_run ~sim:(Board.Xu3.time board)
          ~metrics:(Board.Xu3.metrics board)
          ~completed:(Board.Xu3.finished board);
      ],
      false )
  | Some o ->
    let board = Yukta.Stack.board r.stepper in
    let epoch = Yukta.Stack.epoch_count r.stepper in
    let sim = Yukta.Stack.time r.stepper in
    let adapt_lines =
      match r.adapt with
      | None -> []
      | Some engine ->
        List.map
          (fun ev ->
            match ev with
            | Adapt.Drift_detected { epoch; level; baseline } ->
              Protocol.adapt_notification ~name:"adapt.drift" ~epoch ~sim
                [
                  ("level", Obs.Json.Float level);
                  ("baseline", Obs.Json.Float baseline);
                ]
            | Adapt.Swapped { epoch; latency_epochs; latency_s; mu_peak } ->
              Protocol.adapt_notification ~name:"adapt.swap" ~epoch ~sim
                [
                  ("latency_epochs", Obs.Json.Int latency_epochs);
                  ("latency_s", Obs.Json.Float latency_s);
                  ("mu_peak", Obs.Json.Float mu_peak);
                ]
            | Adapt.Synthesis_failed { epoch; message } ->
              Protocol.adapt_notification ~name:"adapt.failed" ~epoch ~sim
                [ ("message", Obs.Json.String message) ])
          (Adapt.observe engine ~epoch board o)
    in
    let done_ = Yukta.Stack.finished r.stepper in
    if done_ then note_completion r;
    t.served <- t.served + 1;
    let frame =
      Protocol.frame ~epoch ~sim ~o
        ~config:(Board.Xu3.effective_config board)
        ~placement:(Board.Xu3.placement board)
        ~done_
    in
    (frame :: adapt_lines, true)

(* A drain free-runs the rest of the workload, so it must be bounded:
   a degraded plant (or a hostile request) could otherwise spin the
   server forever. The cap matches [Stack.run]'s default [max_time] —
   any well-formed run ends well before it. *)
let drain_max_time = 3000.0

(* Stream drain epochs under the budget. When the run ends — or the
   simulated-time cap trips — emit the [drained] summary and leave
   drain mode. Otherwise [t.draining] stays set and the next [process]
   call resumes here, so a long drain shares the loop fairly. *)
let drain_chunk t r ~budget =
  let lines = ref [] in
  let stepped = ref 0 in
  let ended = ref false in
  while
    (not !ended) && !stepped < max 1 budget
    && Yukta.Stack.time r.stepper < drain_max_time
  do
    let out, advanced = step_once t r in
    lines := List.rev_append out !lines;
    if advanced then incr stepped else ended := true
  done;
  if !ended || Yukta.Stack.time r.stepper >= drain_max_time then begin
    t.draining <- false;
    Option.iter Adapt.finish r.adapt;
    let board = Yukta.Stack.board r.stepper in
    lines :=
      Protocol.drained
        ~epochs:(Yukta.Stack.epoch_count r.stepper)
        ~sim:(Board.Xu3.time board)
        ~metrics:(Board.Xu3.metrics board)
        ~completed:(Board.Xu3.finished board)
      :: !lines
  end;
  (List.rev !lines, !stepped)

(* Step up to [budget] epochs toward a request for [count]; leftover
   epochs wait in [t.carry] for the next [process] call. Returns the
   response lines and the epochs actually stepped. *)
let step_epochs t r ~count ~budget =
  let lines = ref [] in
  let stepped = ref 0 in
  let ended = ref false in
  while (not !ended) && !stepped < count && !stepped < budget do
    let out, advanced = step_once t r in
    lines := List.rev_append out !lines;
    if advanced then incr stepped else ended := true
  done;
  t.carry <- (if !ended then 0 else count - !stepped);
  (List.rev !lines, !stepped)

(* Handle one parsed request under the remaining epoch [budget];
   returns the response lines and the epochs it consumed. *)
let handle t request ~budget =
  match request with
  | Protocol.Hello _ -> ([ Protocol.welcome () ], 0)
  | Protocol.Configure { scheme; app; epoch; adapt; drift } ->
    (do_configure t ~scheme ~app ~epoch ~adapt ~drift, 0)
  | Protocol.Step { count } ->
    let cost = ref 0 in
    let lines =
      run_required t (fun r ->
          let out, stepped = step_epochs t r ~count ~budget in
          cost := stepped;
          out)
    in
    (lines, !cost)
  | Protocol.Health ->
    ( run_required t (fun r ->
          [ Protocol.health_snapshot (Yukta.Stack.health r.stepper) ]),
      0 )
  | Protocol.Drain ->
    let cost = ref 0 in
    let lines =
      run_required t (fun r ->
          t.draining <- true;
          let out, stepped = drain_chunk t r ~budget in
          cost := stepped;
          out)
    in
    (lines, !cost)
  | Protocol.Close ->
    finish_run t;
    t.state <- Closed;
    ([ Protocol.closed () ], 0)

let process ?(budget = max_int) t =
  let out = ref [] in
  let spent = ref 0 in
  (* Resume a budget-split step or an in-progress drain before
     touching the queue. *)
  (match t.state with
  | Configured r when t.carry > 0 ->
    let count = t.carry in
    t.carry <- 0;
    let lines, stepped = step_epochs t r ~count ~budget in
    spent := !spent + stepped;
    out := List.rev_append lines !out
  | Configured r when t.draining ->
    let lines, stepped = drain_chunk t r ~budget in
    spent := !spent + stepped;
    out := List.rev_append lines !out
  | _ ->
    t.carry <- 0;
    t.draining <- false);
  let continue = ref true in
  while
    !continue && (not (Queue.is_empty t.queue)) && t.carry = 0
    && (not t.draining) && !spent < max 1 budget
  do
    let line = Queue.pop t.queue in
    if t.state = Closed then begin
      (* A closed session answers nothing further. *)
      Queue.clear t.queue;
      continue := false
    end
    else
      match Protocol.request_of_line line with
      | Error msg ->
        t.errors <- t.errors + 1;
        out := Protocol.error msg :: !out
      | Ok request -> (
        match handle t request ~budget:(budget - !spent) with
        | lines, cost ->
          spent := !spent + cost;
          out := List.rev_append lines !out
        | exception exn ->
          t.errors <- t.errors + 1;
          out :=
            Protocol.error
              (Printf.sprintf "internal error: %s" (Printexc.to_string exn))
            :: !out)
  done;
  List.rev !out

let finish t =
  finish_run t;
  t.state <- Closed
