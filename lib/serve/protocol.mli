(** The serving wire protocol: newline-delimited JSON over a stream
    socket (reusing {!Obs.Json}). One request object per line in; one
    or more response lines out. {!request_of_line} is total — malformed
    input becomes an [Error] string the session answers with a
    non-fatal [error] record, never an exception. *)

val version : int
(** Protocol version, echoed in the [welcome] line; a client should
    refuse to speak to a server with a different one. *)

(** An injected plant drift, scheduled at configure time (simulated
    seconds; severity as a fraction of the certified guardband, kind
    one of [power_gain]/[thermal_gain]/[perf_gain]). *)
type drift = {
  start : float;
  duration : float;
  severity : float;
  kind : string;
}

type request =
  | Hello of { client : string option }
  | Configure of {
      scheme : string;  (** Registry key ({!Yukta.Schemes.find}). *)
      app : string;     (** Workload or mix name (default blackscholes). *)
      epoch : float option;  (** Stepping period override, seconds. *)
      adapt : bool;     (** Online ID + re-synthesis on drift. *)
      drift : drift option;
    }
  | Step of { count : int }
  | Health
  | Drain
  | Close

val request_of_line : string -> (request, string) result
(** Parse one request line; [Error] describes what was malformed (bad
    JSON, unknown type, missing field) and never raises. *)

(** {1 Response encoders} — each returns one encoded line (no
    trailing newline). *)

val welcome : unit -> string
(** The greeting line: protocol {!version} and server identity. *)

val configured :
  session:int -> scheme:string -> layers:string list -> adapt:bool -> string
(** Acknowledges [configure]: the session id, the resolved scheme and
    its layer labels, and whether adaptation is armed. *)

val error : ?fatal:bool -> string -> string
(** An error record; [fatal] (default [false]) tells the client the
    session is closing. *)

val busy : retry_after_ms:int -> string
(** Back-pressure: the server is at capacity; retry after the given
    delay. *)

val closed : unit -> string
(** Acknowledges [close]; the last line of a session. *)

val frame :
  epoch:int ->
  sim:float ->
  o:Board.Xu3.outputs ->
  config:Board.Xu3.config ->
  placement:Board.Xu3.placement ->
  done_:bool ->
  string
(** One epoch's result: the sensor observation and the actuation
    decision in force after the layers stepped. *)

val end_of_run :
  sim:float -> metrics:Board.Xu3.metrics -> completed:bool -> string
(** Response to a [step] past the end of the workloads. *)

val drained :
  epochs:int ->
  sim:float ->
  metrics:Board.Xu3.metrics ->
  completed:bool ->
  string
(** Response to [drain]: the run stepped to completion (or the
    horizon), with final metrics. *)

val health_snapshot : Obs.Health.t -> string
(** Response to [health]: the current per-layer monitor values
    ({!Obs.Health.to_json}). *)

val adapt_notification :
  name:string ->
  epoch:int ->
  sim:float ->
  (string * Obs.Json.t) list ->
  string
(** Out-of-band adaptation notice ([adapt.drift], [adapt.swap],
    [adapt.failed]) appended after the frame that triggered it. *)
