(** Online adaptation for a serving session: recursive identification,
    drift detection, and background controller re-synthesis.

    Every epoch the engine records the hardware layer's (input, output)
    pair in the same normalized coordinates the offline design flow
    trains on, feeds them to a {!Sysid.Recursive} estimator, and hands
    the one-step prediction error to a self-calibrating
    {!Sysid.Recursive.Drift} detector. When the detector trips, a fresh
    D-K synthesis against the current recursive model runs on a
    background domain ({!Parallel.Task}); the session keeps stepping on
    the incumbent controller, and the epoch the design lands it is
    hot-swapped in with bumpless transfer ({!Yukta.Layer.swap_controller}
    — the first post-swap actuation equals the last pre-swap one).

    The swap is recorded as an [adapt.swap] Obs event registered as a
    flight-recorder dump trigger, so the {!Obs.Recorder} window leading
    up to every swap is preserved.

    Observation is pure until a swap happens: with no drift the detector
    never trips (it calibrates on the session's own clean residuals), so
    an adaptive session's decisions are bit-identical to a frozen one. *)

type event =
  | Drift_detected of { epoch : int; level : float; baseline : float }
  | Swapped of {
      epoch : int;
      latency_epochs : int;  (** Epochs from detection to swap. *)
      latency_s : float;     (** Simulated seconds from detection to swap. *)
      mu_peak : float;       (** Certified SSV peak of the new design. *)
    }
  | Synthesis_failed of { epoch : int; message : string }

type t

val create : layer:Yukta.Layer.t -> unit -> t
(** Adapt the given controlled layer against the hardware-layer spec.
    @raise Invalid_argument on a heuristic layer. *)

val for_stack : Yukta.Stack.t -> t option
(** Engine for the stack's controlled ["hw"] layer, or [None] when the
    scheme has no such layer (heuristic baselines). *)

val pre_step : t -> Board.Xu3.t -> unit
(** Capture the input the hardware is about to run — call {e before}
    the epoch advances. The layers actuate after the plant, so by the
    time an epoch's outputs exist the board already carries the next
    epoch's commands; without this capture the epoch's sample is
    skipped (identification would otherwise be misaligned by one
    epoch). *)

val observe : t -> epoch:int -> Board.Xu3.t -> Board.Xu3.outputs -> event list
(** Absorb one completed epoch (call after the layers have stepped,
    with the matching {!pre_step} capture). Collects any finished
    background synthesis (performing the swap), then updates the
    estimator and detector — possibly launching a new synthesis.
    Returns the adaptation events of this epoch, oldest first. *)

val swaps : t -> int
(** Controller swaps performed so far. *)

val last_latency : t -> (int * float) option
(** Detection-to-swap latency of the most recent swap, as
    [(epochs, simulated seconds)]. *)

val finish : t -> unit
(** Join any in-flight synthesis domain (discarding its result). Call
    before abandoning the engine so no domain is leaked. *)
