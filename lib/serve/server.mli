(** The serving front end: a single-threaded [Unix.select] loop
    multiplexing NDJSON connections over a Unix or TCP socket, one
    {!Session} per connection.

    Sessions are fully isolated from each other: a malformed message, a
    handler crash, or a mid-stream disconnect affects only its own
    connection — the loop and every other session keep running. Each
    iteration gives every session at most [step_budget] epochs, so a
    session streaming a huge [step] shares the loop fairly. Idle
    connections (no traffic, nothing queued) are closed with a fatal
    [idle timeout] error after [idle_timeout] seconds. *)

type address = Unix_path of string | Tcp of string * int
(** [Tcp ("", port)] / [Tcp ("*", port)] bind the loopback address;
    port [0] binds an ephemeral port (see {!port}). *)

type t

val create :
  ?idle_timeout:float -> ?step_budget:int -> ?max_line:int -> address -> t
(** Bind and listen. [idle_timeout] (default 30 s) sweeps silent
    connections; [step_budget] (default 256) is the per-session epoch
    budget per loop iteration; [max_line] (default 64 KiB) bounds one
    request line — an unframed peer is disconnected with a fatal error
    instead of growing the buffer forever. A pre-existing Unix socket
    path is unlinked first (and removed again on shutdown).
    @raise Invalid_argument on a non-positive [idle_timeout] or
    [step_budget]; [Unix.Unix_error] when the bind fails. *)

val address : t -> Unix.sockaddr
(** The bound address (after ephemeral-port resolution). *)

val port : t -> int option
(** The bound TCP port; [None] for a Unix socket. *)

val run : ?once:bool -> t -> unit
(** Serve until {!stop} is called (from a signal handler, typically).
    With [once], return after the first accepted connection — and any
    concurrent ones — have all disconnected: the CI smoke mode. Always
    closes every connection and the listening socket (removing a Unix
    socket file) before returning, including on exceptions. *)

val iterate : ?timeout:float -> t -> unit
(** One loop iteration (select, read, process, write, sweep) waiting at
    most [timeout] (default 0.2 s) — exposed for tests that drive the
    loop inline. *)

val stop : t -> unit
(** Make {!run} return after the current iteration. Safe to call from
    a signal handler. *)

val stats : t -> int * int * int * int * int
(** [(accepted, active, frames, swaps, errors)] — totals over the
    server lifetime, including live sessions. *)
