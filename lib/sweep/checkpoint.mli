(** Per-shard sweep checkpoints: resumable JSONL result logs.

    Every shard of a sweep owns one append-only JSONL file under the
    checkpoint directory. The first line is a header naming the schema
    and the plan fingerprint; each subsequent line records one evaluated
    point (its axis assignment, the three frontier objectives, and the
    informational synthesis wall time). The reduce phase appends and
    flushes a line as each result streams back, so a killed shard keeps
    every completed point; a rerun {!load}s the file, folds the recorded
    results straight into the frontier, and evaluates only what is
    missing.

    A header whose fingerprint does not match the current plan aborts
    the resume (the space, probe or sampling changed under the
    checkpoint); a trailing partial line — the signature of a kill
    mid-append — is dropped silently. *)

val path : dir:string -> fingerprint:string -> shard:int -> shards:int -> string
(** The shard's checkpoint file,
    [DIR/sweep-FINGERPRINT-shard-I-of-N.jsonl] (shard indices are
    1-based in file names, as on the command line). *)

type record = {
  entry : Frontier.entry;
  synth_wall_s : float;
      (** Wall-clock seconds the point spent in design synthesis when it
          was first evaluated — near zero on a [.yukta_cache/] hit.
          Informational: never part of the frontier artifact. *)
}

exception Mismatch of string
(** Raised by {!load} when the file's header disagrees with the
    expected fingerprint (or is not a checkpoint header at all). *)

val load : fingerprint:string -> string -> record list
(** The records of an existing checkpoint file, oldest first; [[]] when
    the file does not exist. Unparseable trailing data (a partial last
    line) is ignored; an unparseable line {e followed by} further valid
    lines raises {!Mismatch} (the file is corrupt, not just truncated).
    @raise Mismatch on a foreign or fingerprint-mismatched file. *)

val append_channel : fingerprint:string -> existing:bool -> string -> out_channel
(** Open the checkpoint for appending, creating the directory as
    needed. With [existing = false] the header line is written first;
    with [existing = true] a partial trailing line left by a kill is
    truncated away first, so new records never glue onto it. The caller
    owns the channel ({!append} flushes after every record). *)

val append : out_channel -> record -> unit
(** Append one record line and flush, so the line survives a kill
    immediately after the call. *)
